package repro_test

import "math/rand"

// newRand returns a seeded PRNG for benchmark setup.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
