// Benchmarks regenerating the evaluation: one benchmark per table/figure
// (E1–E8, matching EXPERIMENTS.md and cmd/bench) plus microbenchmarks of the
// hot substrates. Protocol benchmarks report domain metrics (msgs/op,
// rounds/op) alongside wall time; absolute times are simulator times, but
// the *shapes* — quadratic RBC, cubic consensus traffic, constant rounds
// with the common coin, the Ben-Or crossover — are the reproduction targets.
package repro_test

import (
	"fmt"
	"runtime"
	"strings"
	"testing"

	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/gf256"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/runner"
	"repro/internal/shamir"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// consensusOnce runs one consensus instance and reports domain metrics.
func consensusOnce(b *testing.B, cfg runner.Config) {
	b.Helper()
	var msgs, rounds float64
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		res, err := runner.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 {
			b.Fatalf("violations: %v", res.Violations)
		}
		msgs += float64(res.Messages)
		rounds += res.MeanRounds
	}
	b.ReportMetric(msgs/float64(b.N), "msgs/op")
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
}

// BenchmarkE1RBCMessages regenerates Table 1: reliable-broadcast cost per
// broadcast as n grows (expected shape: n + 2n²).
func BenchmarkE1RBCMessages(b *testing.B) {
	for _, n := range []int{4, 7, 10, 16, 31} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var msgs float64
			for i := 0; i < b.N; i++ {
				res, err := runner.RunRBC(runner.RBCConfig{
					N: n, F: quorum.MaxByzantine(n), Byzantine: 0, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Violations) > 0 {
					b.Fatalf("violations: %v", res.Violations)
				}
				msgs += float64(res.Messages)
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/op")
		})
	}
}

// BenchmarkE2Resilience regenerates Table 2's hardest cells: consensus at
// f = ⌊(n−1)/3⌋ under the liar adversary with rushed Byzantine traffic.
func BenchmarkE2Resilience(b *testing.B) {
	for _, n := range []int{4, 7, 10} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			consensusOnce(b, runner.Config{
				N: n, F: quorum.MaxByzantine(n), Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
				Adversary: runner.AdvLiar, Scheduler: runner.SchedRushByz,
				Inputs: runner.InputSplit,
			})
		})
	}
}

// BenchmarkE3LocalCoinRounds regenerates Figure 1: rounds with private
// coins (expected shape: cheap when unanimous, growing with n when split).
func BenchmarkE3LocalCoinRounds(b *testing.B) {
	for _, inputs := range []runner.Inputs{runner.InputUnanimous1, runner.InputSplit} {
		for _, n := range []int{4, 7, 10} {
			b.Run(fmt.Sprintf("%s/n=%d", inputs, n), func(b *testing.B) {
				consensusOnce(b, runner.Config{
					N: n, F: quorum.MaxByzantine(n), Byzantine: -1,
					Protocol: runner.ProtocolBracha, Coin: runner.CoinLocal,
					Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
					Inputs: inputs,
				})
			})
		}
	}
}

// BenchmarkE4CommonCoinRounds regenerates Figure 2: rounds with the common
// coin (expected shape: small constant, flat in n).
func BenchmarkE4CommonCoinRounds(b *testing.B) {
	for _, n := range []int{4, 7, 10, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			consensusOnce(b, runner.Config{
				N: n, F: quorum.MaxByzantine(n), Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
				Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
				Inputs: runner.InputSplit,
			})
		})
	}
}

// BenchmarkE5MessageComplexity regenerates Table 3: total consensus traffic
// versus n (expected shape: ~n³ per round, constant rounds).
func BenchmarkE5MessageComplexity(b *testing.B) {
	for _, n := range []int{4, 7, 10, 13, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			consensusOnce(b, runner.Config{
				N: n, F: quorum.MaxByzantine(n), Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
				Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
				Inputs: runner.InputSplit,
			})
		})
	}
}

// BenchmarkE6Crossover regenerates Figure 3: Bracha versus Ben-Or at a
// fault level beyond Ben-Or's n > 5f (expected shape: Bracha clean, Ben-Or
// slow or failing — failures are tolerated here and reported as fails/op).
func BenchmarkE6Crossover(b *testing.B) {
	b.Run("bracha/n=7 f=2", func(b *testing.B) {
		consensusOnce(b, runner.Config{
			N: 7, F: 2, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvEquivocator, Scheduler: runner.SchedRushByz,
			Inputs: runner.InputSplit,
		})
	})
	b.Run("benor/n=7 f=2", func(b *testing.B) {
		var fails float64
		for i := 0; i < b.N; i++ {
			res, err := runner.Run(runner.Config{
				N: 7, F: 2, Byzantine: -1,
				Protocol: runner.ProtocolBenOr, Coin: runner.CoinLocal,
				Adversary: runner.AdvEquivocator, Scheduler: runner.SchedRushByz,
				Inputs: runner.InputSplit, Seed: int64(i),
				MaxRounds: 60, MaxDeliveries: 300_000,
			})
			if err != nil {
				b.Fatal(err)
			}
			if len(res.Violations) > 0 || !res.AllDecided {
				fails++
			}
		}
		b.ReportMetric(fails/float64(b.N), "fails/op")
	})
}

// BenchmarkE7Tightness regenerates Table 4's attack row: the split-brain
// adversary with f+1 colluders (expected shape: ~1 violation per run).
func BenchmarkE7Tightness(b *testing.B) {
	var broken float64
	for i := 0; i < b.N; i++ {
		res, err := runner.Run(runner.Config{
			N: 4, F: 1, Byzantine: 2,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvSplitBrain, Scheduler: runner.SchedRushByz,
			Inputs: runner.InputSplit, Seed: int64(i),
			MaxRounds: 50, MaxDeliveries: 300_000,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Violations) > 0 || !res.AllDecided {
			broken++
		}
	}
	b.ReportMetric(broken/float64(b.N), "broken/op")
}

// BenchmarkE8Throughput regenerates Figure 4: one full consensus instance
// per iteration — ns/op here is the library's real decision latency on this
// hardware, per system size.
func BenchmarkE8Throughput(b *testing.B) {
	for _, n := range []int{4, 7, 10, 16} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			consensusOnce(b, runner.Config{
				N: n, F: quorum.MaxByzantine(n), Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
				Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
				Inputs: runner.InputRandom,
			})
		})
	}
}

// BenchmarkE9ACS regenerates Table 5 (extension): one full Asynchronous
// Common Subset agreement per iteration — n reliable broadcasts plus n
// binary consensus instances multiplexed over one network.
func BenchmarkE9ACS(b *testing.B) {
	for _, n := range []int{4, 7} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f := quorum.MaxByzantine(n)
			spec := quorum.MustNew(n, f)
			peers := types.Processes(n)
			for i := 0; i < b.N; i++ {
				seed := int64(i)
				dealers := make([]*coin.Dealer, n+1)
				for j := 1; j <= n; j++ {
					dealers[j] = coin.NewDealer(spec, seed+int64(j)*77)
				}
				net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
				if err != nil {
					b.Fatal(err)
				}
				nodes := make([]*acs.Node, 0, n-f)
				for _, p := range peers[:n-f] {
					p := p
					nd, err := acs.New(acs.Config{
						Me: p, Peers: peers, Spec: spec,
						NewCoin: func(inst int) coin.Coin {
							return coin.NewCommon(p, peers, dealers[inst])
						},
						Input: fmt.Sprintf("batch-%v", p),
					})
					if err != nil {
						b.Fatal(err)
					}
					nodes = append(nodes, nd)
					if err := net.Add(nd); err != nil {
						b.Fatal(err)
					}
				}
				if _, err := net.Run(func() bool {
					for _, nd := range nodes {
						if _, ok := nd.Output(); !ok {
							return false
						}
					}
					return true
				}); err != nil {
					b.Fatal(err)
				}
				out, ok := nodes[0].Output()
				if !ok || len(out) < spec.Quorum() {
					b.Fatalf("subset too small: %d", len(out))
				}
			}
		})
	}
}

// ---- substrate microbenchmarks ----------------------------------------

func BenchmarkGF256Mul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= gf256.Mul(byte(i), byte(i>>8))
	}
	_ = acc
}

func BenchmarkShamirSplit(b *testing.B) {
	secret := []byte{0xAB}
	rng := newRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.Split(secret, 31, 11, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShamirReconstruct(b *testing.B) {
	secret := []byte{0xAB}
	shares, err := shamir.Split(secret, 31, 11, newRand(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := shamir.Reconstruct(shares[:11], 11); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireEncodeStep(b *testing.B) {
	sm := types.StepMessage{Round: 12, Step: types.Step3, V: types.One, D: true}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wire.EncodeStep(sm); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireRoundTripRBC(b *testing.B) {
	p := &types.RBCPayload{
		Phase: types.KindRBCEcho,
		ID:    types.InstanceID{Sender: 9, Tag: types.Tag{Round: 3, Step: types.Step2}},
		Body:  strings.Repeat("x", 16),
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf, err := wire.EncodePayload(p)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := wire.DecodePayload(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireAppendPayload measures the pooled append-style encode path
// introduced for the zero-allocation delivery loop (expect 0 allocs/op;
// compare BenchmarkWireRoundTripRBC, which allocates per call).
func BenchmarkWireAppendPayload(b *testing.B) {
	p := &types.RBCPayload{
		Phase: types.KindRBCEcho,
		ID:    types.InstanceID{Sender: 9, Tag: types.Tag{Round: 3, Step: types.Step2}},
		Body:  strings.Repeat("x", 16),
	}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.AppendPayload((*buf)[:0], p)
		if err != nil {
			b.Fatal(err)
		}
		*buf = out[:0]
	}
}

// BenchmarkWireAppendStep measures the canonical step-body encode that
// core.broadcastStep performs once per (round, step).
func BenchmarkWireAppendStep(b *testing.B) {
	sm := types.StepMessage{Round: 12, Step: types.Step3, V: types.One, D: true}
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.AppendStep((*buf)[:0], sm)
		if err != nil {
			b.Fatal(err)
		}
		*buf = out[:0]
	}
}

// BenchmarkRBCEchoCounting measures the echo/ready counting path: one
// Broadcaster absorbing a full round of echoes and readies per instance.
// The seed implementation allocated nested map[string]map[ProcessID]bool
// per body; the bitset tallies amortize to well under one alloc per vote.
func BenchmarkRBCEchoCounting(b *testing.B) {
	const n = 16
	spec := quorum.MustNew(n, quorum.MaxByzantine(n))
	peers := types.Processes(n)
	bc := rbc.New(2, peers, spec)
	out := make([]types.Message, 0, 4*n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := types.InstanceID{Sender: 1, Tag: types.Tag{Seq: i + 1}}
		echo := &types.RBCPayload{Phase: types.KindRBCEcho, ID: id, Body: "body"}
		ready := &types.RBCPayload{Phase: types.KindRBCReady, ID: id, Body: "body"}
		for _, p := range peers {
			out, _ = bc.AppendHandle(out[:0], p, echo)
		}
		for _, p := range peers {
			out, _ = bc.AppendHandle(out[:0], p, ready)
		}
	}
	_ = out
}

// bounceNode is a minimal sim.Node that replies to every delivery,
// recycling its output buffer: together with the concrete queue and the
// dense node table it makes the simulator's delivery loop allocation-free,
// which this benchmark demonstrates (expect ~0 allocs/op).
type bounceNode struct {
	id  types.ProcessID
	out []types.Message
}

func (n *bounceNode) ID() types.ProcessID    { return n.id }
func (n *bounceNode) Done() bool             { return false }
func (n *bounceNode) Start() []types.Message { return nil }
func (n *bounceNode) Deliver(m types.Message) []types.Message {
	out := n.out
	n.out = nil
	return append(out, types.Message{From: n.id, To: m.From, Payload: m.Payload})
}
func (n *bounceNode) Recycle(msgs []types.Message) {
	if cap(msgs) > cap(n.out) {
		n.out = msgs[:0]
	}
}

// kickNode opens the rally with one message to peer.
type kickNode struct {
	bounceNode
	peer types.ProcessID
}

func (n *kickNode) Start() []types.Message {
	return []types.Message{{From: n.bounceNode.id, To: n.peer, Payload: &types.DecidePayload{V: types.One}}}
}

// BenchmarkSimDeliveryHotPath measures the full per-delivery cost of the
// simulator — queue pop, dense node lookup, dispatch, reply queueing —
// with b.N deliveries per run.
func BenchmarkSimDeliveryHotPath(b *testing.B) {
	b.ReportAllocs()
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 20},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	a := &kickNode{bounceNode: bounceNode{id: 1}, peer: 2}
	c := &bounceNode{id: 2}
	if err := net.Add(a); err != nil {
		b.Fatal(err)
	}
	if err := net.Add(c); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}

// BenchmarkSweep contrasts serial and all-core execution of the same
// 32-seed consensus sweep: ns/op is whole-sweep wall clock, so the ratio
// between the two sub-benchmarks is the multi-core speedup.
func BenchmarkSweep(b *testing.B) {
	cfg := runner.Config{
		N: 7, F: 2, Byzantine: -1,
		Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
		Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
		Inputs: runner.InputSplit,
	}
	seeds := make([]int64, 32)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{fmt.Sprintf("workers=max(%d)", runtime.GOMAXPROCS(0)), 0},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				results, err := runner.SweepSeeds(cfg, seeds, tc.workers)
				if err != nil {
					b.Fatal(err)
				}
				for _, res := range results {
					if len(res.Violations) > 0 {
						b.Fatalf("violations: %v", res.Violations)
					}
				}
			}
		})
	}
}

func BenchmarkCommonCoinRound(b *testing.B) {
	spec := quorum.MustNew(7, 2)
	peers := types.Processes(7)
	dealer := coin.NewDealer(spec, 1)
	coins := make([]*coin.Common, 7)
	for i, p := range peers {
		coins[i] = coin.NewCommon(p, peers, dealer)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		round := i + 1
		var all []types.Message
		for _, c := range coins {
			all = append(all, c.Release(round)...)
		}
		for _, m := range all {
			p, ok := m.Payload.(*types.CoinSharePayload)
			if !ok {
				continue
			}
			coins[m.To-1].HandleShare(m.From, p)
		}
		if _, ok := coins[0].Value(round); !ok {
			b.Fatal("coin not reconstructed")
		}
	}
}
