// Acsbatch: Asynchronous Common Subset in action — the HoneyBadgerBFT batch
// pattern. Every replica contributes its pending transaction batch; ACS
// (internal/acs, built purely from the paper's reliable broadcast + binary
// consensus) makes all correct replicas agree on the same set of at least
// n−f batches, which they then order deterministically and "execute".
// Two Byzantine replicas are silent; their batches simply don't make it in.
//
// Run with:
//
//	go run ./examples/acsbatch
package main

import (
	"fmt"
	"log"

	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n    = 7
		f    = 2
		seed = 4242
	)
	spec, err := quorum.New(n, f)
	if err != nil {
		return err
	}
	peers := types.Processes(n)

	// One coin dealer per binary instance (instances are independent).
	dealers := make([]*coin.Dealer, n+1)
	for i := 1; i <= n; i++ {
		dealers[i] = coin.NewDealer(spec, seed+int64(i)*13)
	}

	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 40}, Seed: seed})
	if err != nil {
		return err
	}
	nodes := make([]*acs.Node, 0, n-f)
	for _, p := range peers[:n-f] { // p6, p7 Byzantine-silent
		p := p
		node, err := acs.New(acs.Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(inst int) coin.Coin {
				return coin.NewCommon(p, peers, dealers[inst])
			},
			Input: fmt.Sprintf("batch{tx-%d-1, tx-%d-2, tx-%d-3}", p, p, p),
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
		if err := net.Add(node); err != nil {
			return err
		}
		fmt.Printf("%v contributes %s\n", p, fmt.Sprintf("batch{tx-%d-*}", p))
	}

	stats, err := net.Run(func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Output(); !ok {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}

	first, _ := nodes[0].Output()
	fmt.Printf("\nagreed subset (%d of %d inputs, %d messages):\n", len(first), n, stats.Sent)
	for _, p := range first {
		fmt.Printf("  %v -> %s\n", p.Proposer, p.Value)
	}
	for _, nd := range nodes[1:] {
		got, _ := nd.Output()
		if len(got) != len(first) {
			return fmt.Errorf("subset size mismatch at %v", nd.ID())
		}
		for i := range got {
			if got[i] != first[i] {
				return fmt.Errorf("subset mismatch at %v: %v vs %v", nd.ID(), got[i], first[i])
			}
		}
	}
	fmt.Printf("\nall %d correct replicas agreed on the same batch set — a HoneyBadger round.\n", len(nodes))
	return nil
}
