// Replicatedlog: a totally ordered command log built from repeated binary
// consensus — the workload that makes asynchronous BFT consensus matter in
// practice (the architecture HoneyBadgerBFT later industrialized on top of
// exactly this primitive).
//
// The reduction per log slot is the classic one: a rotating proposer
// disseminates its candidate command by Bracha reliable broadcast; once a
// replica holds the candidate it runs binary consensus (instance = slot,
// using the library's instance namespacing) on committing it. RBC agreement
// fixes the payload, binary agreement fixes the commit decision, so every
// correct replica builds the same log — here with one crashed replica (p4)
// tolerated throughout.
//
// Skipping a slot whose proposer is dead requires voting 0 without having
// seen a candidate, which in a purely asynchronous system needs either
// timeouts (partial synchrony) or the full asynchronous-common-subset
// construction; both are outside this example, so the rotation covers the
// live replicas only.
//
// Run with:
//
//	go run ./examples/replicatedlog
package main

import (
	"fmt"
	"log"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/types"
)

const (
	n        = 4
	f        = 1
	slots    = 6
	seed     = 7
	dissemNS = 1000 // Tag.Seq namespace for candidate dissemination
)

// replica glues candidate dissemination (one shared RBC) to one consensus
// node per slot, buffering traffic for slots it has not reached yet.
type replica struct {
	me    types.ProcessID
	peers []types.ProcessID
	spec  quorum.Spec

	bcast   *rbc.Broadcaster
	node    *core.Node
	slot    int
	cands   map[int]string
	pending map[int][]types.Message

	logEntries []string
}

func newReplica(me types.ProcessID, peers []types.ProcessID, spec quorum.Spec) *replica {
	return &replica{
		me:      me,
		peers:   peers,
		spec:    spec,
		bcast:   rbc.New(me, peers, spec),
		cands:   make(map[int]string),
		pending: make(map[int][]types.Message),
	}
}

func (r *replica) ID() types.ProcessID { return r.me }
func (r *replica) Done() bool          { return false }

// Start disseminates slot 0's candidate if this replica proposes it.
func (r *replica) Start() []types.Message { return r.propose(0) }

// propose broadcasts the candidate for a slot when this replica is its
// proposer. The rotation covers the live replicas p1..p3.
func (r *replica) propose(slot int) []types.Message {
	live := r.peers[:len(r.peers)-1] // p4 is crashed
	if live[slot%len(live)] != r.me {
		return nil
	}
	payload := fmt.Sprintf("cmd-%d-from-%v", slot, r.me)
	return r.bcast.Broadcast(types.Tag{Seq: dissemNS + slot}, payload)
}

func (r *replica) Deliver(m types.Message) []types.Message {
	var out []types.Message
	switch inst, kind := classify(m); kind {
	case trafficDissemination:
		msgs, deliveries := r.bcast.Handle(m.From, m.Payload.(*types.RBCPayload))
		out = append(out, msgs...)
		for _, d := range deliveries {
			r.cands[d.ID.Tag.Seq-dissemNS] = d.Body
		}
	case trafficConsensus:
		switch {
		case inst == r.slot && r.node != nil:
			out = append(out, r.node.Deliver(m)...)
		case inst >= r.slot:
			r.pending[inst] = append(r.pending[inst], m) // not started yet: buffer
		default:
			// Past instance: this replica already finished it.
		}
	}
	out = append(out, r.step()...)
	return out
}

type trafficKind int

const (
	trafficDissemination trafficKind = iota + 1
	trafficConsensus
)

// classify maps a message to its consensus instance or to dissemination.
func classify(m types.Message) (int, trafficKind) {
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		if p.ID.Tag.Seq >= dissemNS {
			return 0, trafficDissemination
		}
		return p.ID.Tag.Seq, trafficConsensus
	case *types.DecidePayload:
		return p.Instance, trafficConsensus
	default:
		return 0, trafficConsensus
	}
}

// step starts the current slot's consensus once its candidate arrived, and
// finalizes the slot once consensus decided.
func (r *replica) step() []types.Message {
	var out []types.Message
	for r.slot < slots {
		if r.node == nil {
			cand, ok := r.cands[r.slot]
			if !ok {
				return out // still waiting for the candidate
			}
			_ = cand
			node, err := core.New(core.Config{
				Me: r.me, Peers: r.peers, Spec: r.spec,
				Coin:     coin.NewLocal(seed + int64(r.me)*100 + int64(r.slot)),
				Proposal: types.One, // candidate in hand: vote commit
				Instance: r.slot,
			})
			if err != nil {
				panic(err) // static configuration cannot fail
			}
			r.node = node
			out = append(out, node.Start()...)
			for _, m := range r.pending[r.slot] {
				out = append(out, node.Deliver(m)...)
			}
			delete(r.pending, r.slot)
		}
		v, decided := r.node.Decided()
		if !decided || !r.node.Done() {
			return out
		}
		if v == types.One {
			r.logEntries = append(r.logEntries, r.cands[r.slot])
		} else {
			r.logEntries = append(r.logEntries, fmt.Sprintf("(slot %d skipped)", r.slot))
		}
		r.slot++
		r.node = nil
		out = append(out, r.propose(r.slot)...)
	}
	return out
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	spec, err := quorum.New(n, f)
	if err != nil {
		return err
	}
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 30}, Seed: seed})
	if err != nil {
		return err
	}
	replicas := make([]*replica, 0, n-f)
	for _, p := range peers[:n-f] { // p4 crashed at time zero
		rep := newReplica(p, peers, spec)
		replicas = append(replicas, rep)
		if err := net.Add(rep); err != nil {
			return err
		}
	}
	stats, err := net.Run(func() bool {
		for _, rep := range replicas {
			if rep.slot < slots {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}
	for _, rep := range replicas {
		if rep.slot < slots {
			return fmt.Errorf("%v finished only %d/%d slots", rep.me, rep.slot, slots)
		}
	}

	fmt.Printf("replicated log after %d slots (%d messages, p4 crashed):\n\n", slots, stats.Sent)
	for i := 0; i < slots; i++ {
		fmt.Printf("slot %d: %s\n", i, replicas[0].logEntries[i])
	}
	for _, rep := range replicas[1:] {
		for i := 0; i < slots; i++ {
			if rep.logEntries[i] != replicas[0].logEntries[i] {
				return fmt.Errorf("log divergence at %v slot %d: %q vs %q",
					rep.me, i, rep.logEntries[i], replicas[0].logEntries[i])
			}
		}
	}
	fmt.Printf("\nall %d replicas built identical logs.\n", len(replicas))
	return nil
}
