// Checkpointedlog: the replicated log with protocol-level checkpointing and
// state transfer (internal/smr + internal/ckpt) — a replica is killed
// mid-run, loses everything, and catches back up WITHOUT replaying the log.
//
// Four replicas commit a stream of "set k v" commands. Every 8 slots each
// replica snapshots its state machine, digests (snapshot, log frontier)
// into a checkpoint, and broadcasts a signed vote; 2f+1 matching votes
// certify the cut, and everything below it — log entries, RBC digest
// records, dealer state — is released, so the log runs in O(interval)
// memory however long it grows.
//
// Replica p4 is crashed a third of the way in and revived with empty state
// (sim.Restart). Everything sent to it during the outage is gone, so RBC
// totality cannot save it: its peers' in-flight READYs were delivered to a
// corpse. Instead it observes live traffic an interval ahead of its own
// frontier, broadcasts a state-transfer request, verifies the returned
// certificate (2f+1 vote MACs) and snapshot (digest match), installs the
// cut as its new log base, and commits the live slots onward.
//
// Run with:
//
//	go run ./examples/checkpointedlog
package main

import (
	"fmt"
	"log"

	"repro/internal/adversary"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := runner.RestartCatchupSpec(4, 64, 8, 2024)
	res, err := runner.RunSMR(cfg)
	if err != nil {
		return err
	}
	if res.Exhausted {
		return fmt.Errorf("delivery budget exhausted before catch-up")
	}
	if res.Mismatches != 0 {
		return fmt.Errorf("%d cross-replica log mismatches", res.Mismatches)
	}

	fmt.Printf("checkpointed log: n=%d, %d slots, cut every %d, p%d killed and revived\n\n",
		cfg.N, cfg.Slots, cfg.CheckpointEvery, res.VictimID)
	fmt.Printf("cluster:  committed %v slots, certified cut %d\n", res.Committed, res.CertifiedCut)
	fmt.Printf("          log digest %016x, state digest %016x (at slot %d)\n",
		res.LogDigest, res.StateDigest, cfg.Slots)
	fmt.Printf("residue:  %d log entries, %d RBC digest records retained cluster-wide\n",
		res.LogRetained, res.RBCRecords)
	fmt.Printf("          (an uncheckpointed run would retain all %d entries and %d records)\n\n",
		cfg.N*cfg.Slots, cfg.N*cfg.Slots)
	fmt.Printf("victim:   %d state transfer(s); installed certified base %d,\n",
		res.Transfers, res.VictimBase)
	fmt.Printf("          then committed %d slots itself up to frontier %d\n",
		res.VictimCommitted, res.VictimSlot)
	fmt.Printf("          full-history log digest %016x — bitwise equal to an\n", res.VictimLogDigest)
	fmt.Printf("          uninterrupted replica's, with zero slots replayed.\n\n")

	// Round two: the same kill/revive, but now one of the victim's peers is
	// Byzantine — it answers every transfer request with a stale
	// certificate, wasting the catch-up round. The victim detects the
	// staleness, marks the responder bad for the epoch, and re-requests
	// from the next peer immediately; and because the attacker's underlying
	// replica still commits honestly, the hostile run's digests must equal
	// the clean run's bitwise.
	hostile := cfg
	hostile.Attack = adversary.CkptStaleResponder
	hostile.Byzantine = 1
	hres, err := runner.RunSMR(hostile)
	if err != nil {
		return err
	}
	if hres.Mismatches != 0 || hres.Exhausted {
		return fmt.Errorf("hostile run: mismatches=%d exhausted=%v", hres.Mismatches, hres.Exhausted)
	}
	fmt.Printf("hostile:  rerun with a stale-responder among the victim's peers\n")
	fmt.Printf("          victim saw %d stale response(s), retried past them %d time(s),\n",
		hres.StaleResponses, hres.VictimRetries)
	fmt.Printf("          still installed %d transfer(s) and committed %d slots itself\n",
		hres.Transfers, hres.VictimCommitted)
	if hres.LogDigest != res.LogDigest || hres.StateDigest != res.StateDigest {
		return fmt.Errorf("hostile run digests diverged: log %016x/%016x state %016x/%016x",
			hres.LogDigest, res.LogDigest, hres.StateDigest, res.StateDigest)
	}
	fmt.Printf("          digests bitwise equal to the clean run: the attack changed\n")
	fmt.Printf("          traffic, never what commits.\n")
	return nil
}
