// Quickstart: seven processes — two of them Byzantine-silent — reach
// binary consensus with Bracha's PODC-84 protocol over the simulated
// asynchronous network, using the Rabin-style common coin.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n    = 7
		f    = 2
		seed = 2024
	)
	spec, err := quorum.New(n, f)
	if err != nil {
		return err
	}
	peers := types.Processes(n)

	// The asynchronous network: messages may be reordered arbitrarily;
	// everything is deterministic given the seed.
	net, err := sim.New(sim.Config{
		Scheduler: sim.UniformDelay{Min: 1, Max: 50},
		Seed:      seed,
	})
	if err != nil {
		return err
	}

	// The common-coin dealer predistributes one hidden random bit per round
	// (Shamir-shared, threshold f+1, MAC-authenticated).
	dealer := coin.NewDealer(spec, seed)

	// Five correct processes propose a mix of 0s and 1s. Processes p6 and
	// p7 are Byzantine: here they simply crashed before the run — we just
	// never add them to the network.
	proposals := []types.Value{1, 0, 1, 1, 0}
	nodes := make([]*core.Node, 0, n-f)
	for i, p := range peers[:n-f] {
		node, err := core.New(core.Config{
			Me:       p,
			Peers:    peers,
			Spec:     spec,
			Coin:     coin.NewCommon(p, peers, dealer),
			Proposal: proposals[i],
		})
		if err != nil {
			return err
		}
		nodes = append(nodes, node)
		if err := net.Add(node); err != nil {
			return err
		}
		fmt.Printf("%v proposes %v\n", p, proposals[i])
	}

	// Pump the network until every correct process has decided and halted.
	stats, err := net.Run(func() bool {
		for _, nd := range nodes {
			if !nd.Done() {
				return false
			}
		}
		return true
	})
	if err != nil {
		return err
	}

	fmt.Printf("\nnetwork: %d messages sent, %d delivered, sim-time %d\n",
		stats.Sent, stats.Delivered, stats.End)
	for _, nd := range nodes {
		v, ok := nd.Decided()
		if !ok {
			return fmt.Errorf("%v did not decide", nd.ID())
		}
		fmt.Printf("%v decided %v in round %d\n", nd.ID(), v, nd.DecidedRound())
	}
	return nil
}
