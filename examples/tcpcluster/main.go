// Tcpcluster: the same Bracha consensus nodes, deployed over real TCP
// sockets on loopback with HMAC-authenticated frames — the deployment shape
// of this library. Four endpoints listen on ephemeral ports, exchange their
// address book, and reach consensus on a split input.
//
// Run with:
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/types"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		n    = 4
		f    = 1
		seed = 99
	)
	spec, err := quorum.New(n, f)
	if err != nil {
		return err
	}
	peers := types.Processes(n)
	master := []byte("example-deployment-master-secret")
	dealer := coin.NewDealer(spec, seed)
	proposals := []types.Value{1, 0, 1, 0}

	// Listen on ephemeral loopback ports and build the address book.
	endpoints := make([]*transport.TCPNode, n)
	addrs := make(map[types.ProcessID]string, n)
	for i, p := range peers {
		ep, err := transport.ListenTCP(p, "127.0.0.1:0", master)
		if err != nil {
			return err
		}
		defer func() { _ = ep.Close() }()
		endpoints[i] = ep
		addrs[p] = ep.Addr()
		fmt.Printf("%v listening on %s\n", p, ep.Addr())
	}

	// Bind a consensus node to each endpoint and start pumping.
	drivers := make([]*transport.Driver, n)
	for i, p := range peers {
		endpoints[i].SetPeers(addrs)
		node, err := core.New(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewCommon(p, peers, dealer),
			Proposal: proposals[i],
		})
		if err != nil {
			return err
		}
		fmt.Printf("%v proposes %v\n", p, proposals[i])
		drivers[i] = transport.NewDriver(node, endpoints[i])
	}
	for _, d := range drivers {
		d.Run()
	}

	// Wait for every node to decide and halt, then report.
	fmt.Println()
	for i, d := range drivers {
		if !d.WaitUntil(func(nd sim.Node) bool { return nd.Done() }, 30*time.Second) {
			return fmt.Errorf("%v did not finish in time", peers[i])
		}
		d.Inspect(func(nd sim.Node) {
			v, _ := nd.(*core.Node).Decided()
			fmt.Printf("%v decided %v in round %d (over real TCP)\n",
				nd.ID(), v, nd.(*core.Node).DecidedRound())
		})
	}
	for _, d := range drivers {
		d.Close()
	}
	return nil
}
