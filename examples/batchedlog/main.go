// Batchedlog: the replicated log with batched proposals and pipelined
// dissemination (internal/smr Batch/Depth) — the throughput engine.
//
// One slot of Bracha-style agreement costs ~7n³ message deliveries whether
// the decided body carries one command or a batch of them, so the way to
// commit more entries per unit of network work is to make each agreement
// instance carry more: a proposer drains up to Batch commands from its
// bounded submit queue into one canonical batch body (internal/wire), the
// cluster agrees on the body once, and every replica unbatches it at commit
// time into per-command log entries — same entries, same order, same
// chained digests, a batch-size fraction of the consensus rounds.
//
// Pipelining is the orthogonal knob: with Depth > 1 a proposer disseminates
// the candidates for its next turns while the current slot's agreement is
// still deciding, overlapping RBC latency with agreement latency. Agreement
// itself stays sequential — slot s+1 cannot decide before slot s — so
// pipelining shows up as reduced virtual end-to-end time, not reduced
// deliveries, and it changes nothing about what commits.
//
// The example runs the same committed-entry target across a batch × depth
// grid (runner.RunThroughput) and prints the scaling, then re-runs the
// checkpointed kill/revive scenario of examples/checkpointedlog with
// batching and pipelining on, to show the PR 5 invariant survives: the
// revived replica catches up by state transfer and its digests match the
// cluster's bitwise.
//
// Run with:
//
//	go run ./examples/batchedlog
package main

import (
	"fmt"
	"log"

	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const entries = 48
	points, err := runner.RunThroughput(runner.ThroughputConfig{
		N: 4, F: 1,
		Entries: entries,
		Batches: []int{1, 4, 16},
		Depths:  []int{1, 2},
		Seed:    2026,
	})
	if err != nil {
		return err
	}

	fmt.Printf("batched log: n=4 f=1, %d committed entries per grid point\n\n", entries)
	fmt.Printf("%-6s %-6s %-7s %-11s %-12s %-13s %s\n",
		"batch", "depth", "slots", "deliveries", "ent/kdeliv", "virtual-time", "log digest")
	var base *runner.ThroughputPoint
	for _, p := range points {
		if p.Mismatches != 0 || p.SubmitDropped != 0 || p.DuplicateCommands != 0 || p.Exhausted {
			return fmt.Errorf("unhealthy grid point batch=%d depth=%d: %+v", p.Batch, p.Depth, p)
		}
		if base == nil {
			base = p
		}
		fmt.Printf("%-6d %-6d %-7d %-11d %-12.2f %-13d %016x\n",
			p.Batch, p.Depth, p.Slots, p.Deliveries,
			p.EntriesPerKDeliveries(), int64(p.EndTime), p.LogDigest)
	}
	last := points[len(points)-1]
	fmt.Printf("\nbatch %d commits the same entries in %dx fewer agreement rounds\n",
		last.Batch, base.Slots/last.Slots)
	fmt.Printf("(%.1fx the entries per delivery); depth 2 overlaps dissemination with\n",
		last.EntriesPerKDeliveries()/base.EntriesPerKDeliveries())
	fmt.Printf("agreement, cutting virtual time without touching what commits.\n\n")

	// Kill/revive with batching and pipelining on: the checkpoint plane and
	// state transfer must behave exactly as they do unbatched — the victim
	// installs a certified cut, never re-proposes a consumed command, never
	// drops an unconsumed one, and ends with the cluster's digests.
	cfg := runner.RestartCatchupSpec(4, 64, 8, 2024)
	cfg.Batch = 4
	cfg.Depth = 2
	res, err := runner.RunSMR(cfg)
	if err != nil {
		return err
	}
	switch {
	case res.Exhausted:
		return fmt.Errorf("delivery budget exhausted before catch-up")
	case res.VictimDown:
		return fmt.Errorf("victim never revived")
	case res.Mismatches != 0:
		return fmt.Errorf("%d cross-replica log mismatches", res.Mismatches)
	case res.DuplicateCommands != 0:
		return fmt.Errorf("%d commands committed twice across the install jump", res.DuplicateCommands)
	}
	fmt.Printf("batched restart-catchup: p%d killed and revived at batch=%d depth=%d\n",
		res.VictimID, cfg.Batch, cfg.Depth)
	fmt.Printf("victim:   %d state transfer(s), installed base %d, frontier %d\n",
		res.Transfers, res.VictimBase, res.VictimSlot)
	fmt.Printf("cluster:  %d entries committed, log digest %016x, 0 duplicates, 0 drops\n",
		res.Entries, res.LogDigest)
	return nil
}
