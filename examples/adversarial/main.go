// Adversarial: Bracha consensus under active attack. A "liar" Byzantine
// process runs the real protocol but inverts every value it sends, the
// scheduler rushes Byzantine traffic ahead of honest traffic and delays the
// links between two halves of the correct processes — and the protocol
// still decides, safely, every time. The same harness then swaps in the
// Ben-Or 1983 baseline beyond its n > 5f bound and watches it fall over.
//
// Run with:
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"

	"repro/internal/check"
	"repro/internal/runner"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("== Bracha under liar adversary + rushing/partition scheduler ==")
	for seed := int64(1); seed <= 5; seed++ {
		res, err := runner.Run(runner.Config{
			N: 7, F: 2, Byzantine: -1,
			Protocol:  runner.ProtocolBracha,
			Coin:      runner.CoinCommon,
			Adversary: runner.AdvLiar,
			Scheduler: runner.SchedPartition,
			Inputs:    runner.InputSplit,
			Seed:      seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("seed %d: decided=%v mean-rounds=%.1f msgs=%d violations=%s\n",
			seed, res.AllDecided, res.MeanRounds, res.Messages, check.Render(res.Violations))
		if len(res.Violations) > 0 {
			return fmt.Errorf("unexpected violation under attack")
		}
	}

	fmt.Println("\n== Ben-Or (1983 baseline) beyond its n > 5f bound, same attack ==")
	failures := 0
	for seed := int64(1); seed <= 5; seed++ {
		res, err := runner.Run(runner.Config{
			N: 7, F: 2, Byzantine: -1, // f=2 > ⌈7/5⌉−1: out of Ben-Or's range
			Protocol:  runner.ProtocolBenOr,
			Coin:      runner.CoinLocal,
			Adversary: runner.AdvEquivocator,
			Scheduler: runner.SchedRushByz,
			Inputs:    runner.InputSplit,
			Seed:      seed,
			MaxRounds: 60, MaxDeliveries: 300_000,
		})
		if err != nil {
			return err
		}
		ok := res.AllDecided && len(res.Violations) == 0
		if !ok {
			failures++
		}
		fmt.Printf("seed %d: decided=%v violations=%s\n",
			seed, res.AllDecided, check.Render(res.Violations))
	}
	fmt.Printf("\nBen-Or failed %d/5 runs beyond its resilience; Bracha failed 0/5 at the same f.\n", failures)
	fmt.Println("That gap — n > 5f to the optimal n > 3f — is the contribution of the paper.")
	return nil
}
