package sim

import "repro/internal/types"

// Restart wraps a protocol node in a deterministic crash/recover schedule —
// the simulator-side half of checkpoint state transfer (internal/ckpt). The
// wrapped node processes CrashAfter deliveries normally, then crashes: its
// state is discarded outright, and the next ReviveAfter deliveries evaporate
// exactly as a dead process's inbox would (in-flight messages to a crashed
// process are lost, which is precisely what makes post-restart catch-up by
// replay impossible and state transfer necessary). The delivery after the
// outage constructs a fresh node from the factory — empty log, empty state,
// as a rebooted process would come back — and resumes with the fresh node's
// Start output plus that delivery.
//
// Both thresholds count deliveries to this node, so the schedule is a pure
// function of the run like everything else in the simulator: no clocks, no
// goroutines, bitwise replayable.
type Restart struct {
	factory func() Node
	inner   Node
	id      types.ProcessID

	crashAfter  int // deliveries processed before the crash
	reviveAfter int // further deliveries dropped before the fresh node starts

	processed int
	dropped   int
	down      bool
	restarted bool
}

// NewRestart wraps factory's node in a crash at crashAfter deliveries and a
// revival after exactly reviveAfter further deliveries have been dropped
// (the first delivery beyond the outage is the fresh node's first input). The factory is called once
// immediately (the initial node) and once at revival; both nodes must report
// the same ID.
func NewRestart(factory func() Node, crashAfter, reviveAfter int) *Restart {
	inner := factory()
	return &Restart{
		factory:     factory,
		inner:       inner,
		id:          inner.ID(),
		crashAfter:  crashAfter,
		reviveAfter: reviveAfter,
	}
}

var (
	_ Node     = (*Restart)(nil)
	_ Recycler = (*Restart)(nil)
)

// ID implements Node.
func (r *Restart) ID() types.ProcessID { return r.id }

// Done implements Node: a crashed process is not done — its inbox must keep
// draining (into the void) so the revival threshold is reached.
func (r *Restart) Done() bool {
	if r.down {
		return false
	}
	return r.inner.Done()
}

// Down reports whether the node is currently crashed.
func (r *Restart) Down() bool { return r.down }

// Restarted reports whether the crash/revival cycle has completed.
func (r *Restart) Restarted() bool { return r.restarted }

// Inner returns the current wrapped node (the fresh one after revival) —
// for harness inspection only.
func (r *Restart) Inner() Node { return r.inner }

// Start implements Node.
func (r *Restart) Start() []types.Message { return r.inner.Start() }

// Deliver implements Node.
func (r *Restart) Deliver(m types.Message) []types.Message {
	if r.down {
		if r.dropped < r.reviveAfter {
			r.dropped++
			return nil // the outage: messages to a crashed process are lost
		}
		// Revival: a fresh node boots and this delivery is the first it
		// sees. Its Start and Deliver emissions combine into one result
		// (allocated once per run — revival is a cold path), and the inner
		// buffers recycle immediately.
		r.down = false
		r.restarted = true
		r.inner = r.factory()
		if r.inner.ID() != r.id {
			panic("sim: restart factory changed the node's ID")
		}
		var out []types.Message
		started := r.inner.Start()
		out = append(out, started...)
		r.recycleInner(started)
		delivered := r.inner.Deliver(m)
		out = append(out, delivered...)
		r.recycleInner(delivered)
		return out
	}
	out := r.inner.Deliver(m)
	r.processed++
	if !r.restarted && r.processed >= r.crashAfter {
		// Crash after this delivery completes: the node's entire state —
		// log, application state, protocol instances — is dropped.
		r.down = true
		r.inner = nil
	}
	return out
}

// Recycle implements Recycler, handing consumed slices back to the wrapped
// node. (The one revival emission is backed by a fresh array; passing it on
// to the inner node is a plain buffer donation, not an aliasing hazard.)
func (r *Restart) Recycle(msgs []types.Message) {
	if r.inner == nil {
		return
	}
	r.recycleInner(msgs)
}

func (r *Restart) recycleInner(msgs []types.Message) {
	if rec, ok := r.inner.(Recycler); ok {
		rec.Recycle(msgs)
	}
}
