// Package sim is the asynchronous network the paper assumes: a
// discrete-event message-passing simulator in which delivery order is fully
// controlled by a pluggable Scheduler. Time is abstract (int64 ticks); the
// only guarantee the default schedulers provide is the model's — every
// message between correct processes is eventually delivered, in any order.
//
// Protocol nodes are passive deterministic state machines (see Node): the
// simulator feeds them one message at a time and queues whatever they emit.
// All randomness flows from the run's seed, so any execution — including the
// adversarially scheduled ones — replays exactly.
//
// # Determinism contract
//
// A run is a pure function of (registered nodes, scheduler, seed): the event
// queue is a strict total order on (delivery time, send sequence), nodes are
// started in registration order, and the only randomness is the run's seeded
// RNG. Nothing in a Network reads clocks, goroutine identity, or global
// state. This contract is what makes executions replayable byte for byte,
// and it is what runner.Sweep relies on to fan independent runs across
// worker goroutines: each run owns its Network outright, so runs scheduled
// on different workers — in any order, at any parallelism — produce
// identical results. Optimizations to this package must preserve the
// contract (see the replay-equality tests in internal/runner).
package sim

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/trace"
	"repro/internal/types"
)

// Time is abstract simulation time.
type Time int64

// Drop is the sentinel a Scheduler returns to drop a message entirely.
// Dropping correct-to-correct traffic leaves the asynchronous model (which
// promises eventual delivery); it exists for failure-injection tests.
const Drop Time = -1

// Node is a deterministic protocol state machine. Implementations must not
// spawn goroutines, read clocks, or use global randomness: all inputs arrive
// via Start and Deliver, and all outputs are returned messages.
type Node interface {
	// ID returns the process identifier; it must be constant.
	ID() types.ProcessID
	// Start is called once before any delivery and returns the node's
	// initial messages.
	Start() []types.Message
	// Deliver hands the node one message addressed to it and returns the
	// messages this triggers.
	Deliver(m types.Message) []types.Message
	// Done reports that the node needs no further input (it halted).
	// The network stops delivering to done nodes.
	Done() bool
}

// Recycler is an optional Node extension for allocation-free runs. After
// the Network has copied every message of a Start or Deliver result into
// its queue, it hands the slice back through Recycle; the node may then
// reuse the backing array for a later result. Nodes that retain references
// to slices they returned must not implement Recycler. Drivers other than
// Network (unit tests, transport pumps) are free to never call it — a node
// must treat Recycle as a pure optimization hint.
type Recycler interface {
	Recycle(msgs []types.Message)
}

// OutBuffer is the canonical Recycler implementation, embedded by every
// protocol node that participates in the zero-allocation delivery loop: the
// driver hands back a consumed slice through Recycle, Take claims it (empty,
// possibly with capacity) for the next emission, and ownership of the
// backing array ping-pongs between the two — no allocation once warm. The
// same protocol nests: a layered node (ACS, SMR) takes the driver's role
// for its inner consensus instances, copying their emissions into its own
// buffer and recycling theirs straight back.
type OutBuffer struct {
	out []types.Message
}

// Recycle implements Recycler: keep the largest returned backing array.
func (b *OutBuffer) Recycle(msgs []types.Message) {
	if cap(msgs) > cap(b.out) {
		b.out = msgs[:0]
	}
}

// Take claims the recycled buffer; ownership transfers to the returned
// slice until the next Recycle.
func (b *OutBuffer) Take() []types.Message {
	out := b.out
	b.out = nil
	return out
}

// Scheduler decides when (at what abstract time) a message sent at `now` is
// delivered, or Drop to discard it. seq is a unique, monotonically increasing
// per-send number schedulers may use for deterministic tie-breaking; rng is
// the run's seeded randomness.
type Scheduler interface {
	Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time
}

// Duplicator is an optional Scheduler extension for families that can
// deliver one send more than once (lossy links duplicate frames; see
// LossyDelay). After Deliver schedules the primary copy of a message at
// `at`, the network asks Duplicate whether a stale duplicate of the same
// message also arrives, and at what time. The duplicate is a real
// transmission: it counts as a sent message, is charged wire bytes, and is
// delivered like any other event, so protocols must be idempotent to it —
// which quorum-counting protocols are by construction. Duplicate is never
// called for a dropped primary.
type Duplicator interface {
	Duplicate(m types.Message, at, now Time, rng *rand.Rand) (Time, bool)
}

// Config configures a Network.
type Config struct {
	// Scheduler orders deliveries; required.
	Scheduler Scheduler
	// Seed feeds the run's private RNG.
	Seed int64
	// MaxDeliveries bounds the run (0 means DefaultMaxDeliveries). Runs
	// that exhaust it report Exhausted — for consensus runs that is a
	// liveness failure, which experiment E7 relies on detecting.
	MaxDeliveries int
	// Recorder, when enabled, receives SEND/DELIVER/DROP events.
	Recorder *trace.Recorder
	// Sizer, when non-nil, is charged once per sent message (after spoof
	// rejection, before scheduling — scheduler-dropped messages still hit
	// the wire and still count) and its results accumulate in Stats.Bytes.
	// It must be a pure function of the message; runner wires it to
	// wire.MessageSize so the total is bytes-on-the-wire under the real
	// codec without ever encoding.
	Sizer func(types.Message) int
	// Telemetry, when non-nil, is charged with per-kind counts, bytes and
	// queue-to-delivery latencies as the run executes, and mirrors the
	// network clock so protocol layers holding the same sink can stamp
	// phase marks (see telemetry.go). Nil costs one branch per send and
	// per delivery.
	Telemetry *Telemetry
}

// DefaultMaxDeliveries is the per-run event budget when none is given.
const DefaultMaxDeliveries = 2_000_000

// Stats summarizes a run.
type Stats struct {
	Sent      int   // messages handed to the network
	Delivered int   // messages delivered to nodes
	Dropped   int   // messages dropped (scheduler Drop or spoof rejection)
	Spoofed   int   // messages rejected because From != emitting node
	Bytes     int64 // total Config.Sizer bytes over sent messages (0 without a Sizer)
	End       Time  // time of the last delivery
	Exhausted bool  // the delivery budget ran out before quiescence
}

// maxDenseID bounds the dense node table. Process IDs at or below it are
// resolved by a single slice index on the delivery path; larger (or
// pathological) IDs fall back to the registration map, so a hostile ID
// cannot force a giant allocation.
const maxDenseID = 1 << 16

// Network is the simulator instance. Not safe for concurrent use: a run is a
// single-threaded deterministic event loop.
type Network struct {
	cfg   Config
	rng   *rand.Rand
	dup   Duplicator               // cfg.Scheduler's optional duplication hook (nil if absent)
	nodes map[types.ProcessID]Node // registry (duplicate detection, sparse IDs)
	dense []Node                   // dense[id] fast path for the delivery loop
	order []types.ProcessID        // Start order (insertion order, for determinism)

	queue eventQueue
	seq   uint64
	now   Time
	stats Stats

	started bool
}

// ErrNoScheduler is returned by New when Config.Scheduler is nil.
var ErrNoScheduler = errors.New("sim: config requires a scheduler")

// ErrDuplicateNode is returned by Add when a process ID is registered twice.
var ErrDuplicateNode = errors.New("sim: duplicate node")

// New creates an empty network.
func New(cfg Config) (*Network, error) {
	if cfg.Scheduler == nil {
		return nil, ErrNoScheduler
	}
	if cfg.MaxDeliveries <= 0 {
		cfg.MaxDeliveries = DefaultMaxDeliveries
	}
	dup, _ := cfg.Scheduler.(Duplicator)
	return &Network{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		dup:   dup,
		nodes: make(map[types.ProcessID]Node),
	}, nil
}

// Add registers a node. All nodes must be added before Run.
func (n *Network) Add(node Node) error {
	if n.started {
		return errors.New("sim: cannot add nodes after Run")
	}
	id := node.ID()
	if _, dup := n.nodes[id]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicateNode, id)
	}
	n.nodes[id] = node
	if i := int(id); i > 0 && i <= maxDenseID {
		// Grow by appending so ascending registrations (the 1..n common
		// case) amortize to O(n) instead of reallocating per Add.
		for i >= len(n.dense) {
			n.dense = append(n.dense, nil)
		}
		n.dense[i] = node
	}
	n.order = append(n.order, id)
	return nil
}

// lookup resolves a destination process to its node (nil if unknown).
func (n *Network) lookup(id types.ProcessID) Node {
	if i := int(id); i > 0 && i < len(n.dense) {
		return n.dense[i]
	}
	return n.nodes[id]
}

// Rand exposes the run's RNG so co-operating components (adversarial
// schedulers) share the same deterministic randomness stream.
func (n *Network) Rand() *rand.Rand { return n.rng }

// Run pumps the event loop until quiescence (empty queue), until stop
// returns true (checked after every delivery; nil means never), or until the
// delivery budget is exhausted. It returns the run's statistics and may be
// called only once.
func (n *Network) Run(stop func() bool) (Stats, error) {
	if n.started {
		return Stats{}, errors.New("sim: Run called twice")
	}
	n.started = true
	for _, id := range n.order {
		node := n.nodes[id]
		n.dispatch(node, node.Start())
	}
	for n.queue.Len() > 0 {
		if n.stats.Delivered >= n.cfg.MaxDeliveries {
			n.stats.Exhausted = true
			break
		}
		ev := n.queue.pop()
		n.now = ev.at
		tele := n.cfg.Telemetry
		if tele != nil {
			tele.now = n.now
		}
		dst := n.lookup(ev.msg.To)
		if dst == nil || dst.Done() {
			// Unknown destination or halted node: the message evaporates.
			n.stats.Dropped++
			if tele != nil {
				tele.Kinds[kindIndex(ev.msg)].Dropped++
			}
			n.record(trace.Event{Time: int64(n.now), Kind: trace.KindDrop, P: ev.msg.To, Msg: ev.msg, Seq: ev.seq, Note: "destination done or unknown"})
			continue
		}
		n.stats.Delivered++
		n.stats.End = n.now
		if tele != nil {
			ks := &tele.Kinds[kindIndex(ev.msg)]
			ks.Delivered++
			ks.Latency.Observe(int64(n.now - ev.sent))
		}
		n.record(trace.Event{Time: int64(n.now), Kind: trace.KindDeliver, P: ev.msg.To, Msg: ev.msg, Seq: ev.seq})
		// Everything recorded while this delivery's handler runs — the
		// sends it emits, the decides and round advances it triggers — is
		// causally due to this message: stamp it as the parent (see
		// trace.Recorder.SetParent and internal/obs).
		n.setParent(ev.seq)
		n.dispatch(dst, dst.Deliver(ev.msg))
		n.setParent(0)
		if stop != nil && stop() {
			break
		}
	}
	return n.stats, nil
}

// dispatch queues a node's output and, once every message has been copied
// into the event queue, offers the slice back to the node for reuse. Empty
// slices are recycled too: most deliveries of a consensus run emit nothing
// (sub-threshold echoes, unreconstructed coin shares), and dropping the
// buffer there would force a fresh allocation at the next emitting
// delivery.
func (n *Network) dispatch(node Node, msgs []types.Message) {
	if msgs == nil {
		return
	}
	n.send(node, msgs)
	if r, ok := node.(Recycler); ok {
		r.Recycle(msgs)
	}
}

// send queues the messages emitted by node, enforcing authenticated links:
// a message whose From is not the emitting node is rejected (and counted),
// exactly as an authenticated channel would reject a forged frame.
func (n *Network) send(node Node, msgs []types.Message) {
	tele := n.cfg.Telemetry
	for _, m := range msgs {
		if m.From != node.ID() {
			n.stats.Spoofed++
			n.stats.Dropped++
			if tele != nil {
				tele.Kinds[kindIndex(m)].Dropped++
			}
			n.record(trace.Event{Time: int64(n.now), Kind: trace.KindDrop, P: node.ID(), Msg: m, Note: "spoofed sender"})
			continue
		}
		n.seq++
		at := n.cfg.Scheduler.Deliver(m, n.now, n.seq, n.rng)
		n.stats.Sent++
		var sz int64
		if n.cfg.Sizer != nil {
			sz = int64(n.cfg.Sizer(m))
			n.stats.Bytes += sz
		}
		if tele != nil {
			ks := &tele.Kinds[kindIndex(m)]
			ks.Sent++
			ks.Bytes += sz
		}
		n.record(trace.Event{Time: int64(n.now), Kind: trace.KindSend, P: node.ID(), Msg: m, Seq: n.seq})
		if at < n.now {
			if at == Drop {
				n.stats.Dropped++
				if tele != nil {
					tele.Kinds[kindIndex(m)].Dropped++
				}
				n.record(trace.Event{Time: int64(n.now), Kind: trace.KindDrop, P: node.ID(), Msg: m, Seq: n.seq, Note: "scheduler drop"})
				continue
			}
			at = n.now // schedulers cannot deliver into the past
		}
		n.queue.push(event{at: at, seq: n.seq, sent: n.now, msg: m})
		if n.dup != nil {
			if dat, ok := n.dup.Duplicate(m, at, n.now, n.rng); ok {
				if dat < n.now {
					dat = n.now
				}
				n.seq++
				n.stats.Sent++
				n.stats.Bytes += sz
				if tele != nil {
					ks := &tele.Kinds[kindIndex(m)]
					ks.Sent++
					ks.Bytes += sz
				}
				n.record(trace.Event{Time: int64(n.now), Kind: trace.KindSend, P: node.ID(), Msg: m, Seq: n.seq})
				n.queue.push(event{at: dat, seq: n.seq, sent: n.now, msg: m})
			}
		}
	}
}

func (n *Network) record(e trace.Event) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.Record(e)
	}
}

func (n *Network) setParent(seq uint64) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.SetParent(seq)
	}
}
