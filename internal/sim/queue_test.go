package sim

import (
	"container/heap"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/types"
)

// TestQueuePopsTotalOrder: the 4-ary heap must pop the unique ascending
// (at, seq) sequence for any insertion pattern — the property that makes it
// a drop-in replacement for the seed's container/heap queue (same total
// order, therefore byte-identical executions).
func TestQueuePopsTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		n := 1 + rng.Intn(300)
		events := make([]event, n)
		for i := range events {
			events[i] = event{at: Time(rng.Intn(40)), seq: uint64(i + 1)}
		}
		rng.Shuffle(n, func(i, j int) { events[i], events[j] = events[j], events[i] })
		// Interleave pushes and pops to stress the reusable backing array.
		popped := make([]event, 0, n)
		for _, e := range events {
			q.push(e)
			if rng.Intn(4) == 0 && q.Len() > 0 {
				popped = append(popped, q.pop())
			}
		}
		for q.Len() > 0 {
			popped = append(popped, q.pop())
		}
		if len(popped) != n {
			t.Fatalf("popped %d of %d events", len(popped), n)
		}
		// An interleaved pop may legitimately precede a later push of an
		// earlier event, but any suffix popped after all pushes must be
		// sorted; the all-pushed-then-popped tail dominates, so check the
		// global order on a second, pop-only pass instead.
		var q2 eventQueue
		for _, e := range events {
			q2.push(e)
		}
		got := make([]event, 0, n)
		for q2.Len() > 0 {
			got = append(got, q2.pop())
		}
		want := append([]event(nil), events...)
		sort.Slice(want, func(i, j int) bool { return want[i].before(want[j]) })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: pop %d = %+v, want %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestQueueMatchesBoxedHeap cross-checks the 4-ary heap against a replica
// of the seed's container/heap implementation on identical random input.
func TestQueueMatchesBoxedHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var q eventQueue
	var b boxedQueue
	for i := 0; i < 2000; i++ {
		e := event{at: Time(rng.Intn(100)), seq: uint64(i + 1)}
		q.push(e)
		heap.Push(&b, e)
	}
	for q.Len() > 0 {
		got, want := q.pop(), heap.Pop(&b).(event)
		if got != want {
			t.Fatalf("4-ary pop %+v, container/heap pop %+v", got, want)
		}
	}
	if b.Len() != 0 {
		t.Fatalf("boxed heap still holds %d events", b.Len())
	}
}

// TestDenseLookupFallback: IDs beyond the dense table must still resolve
// through the registration map, and giant IDs must not blow up memory.
func TestDenseLookupFallback(t *testing.T) {
	net, err := New(Config{Scheduler: Immediate{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	big := types.ProcessID(maxDenseID + 1000)
	small := types.ProcessID(3)
	sink := &sinkNode{id: big}
	if err := net.Add(&oneShotNode{id: small, peer: big}); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(sink); err != nil {
		t.Fatal(err)
	}
	if len(net.dense) > maxDenseID+1 {
		t.Fatalf("dense table grew to %d entries for ID %v", len(net.dense), big)
	}
	stats, err := net.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if sink.got != 1 || stats.Delivered != 1 {
		t.Fatalf("sparse-ID node received %d messages (delivered %d), want 1", sink.got, stats.Delivered)
	}
}

// oneShotNode sends one message to peer at start.
type oneShotNode struct {
	id, peer types.ProcessID
}

func (p *oneShotNode) ID() types.ProcessID { return p.id }
func (p *oneShotNode) Start() []types.Message {
	return []types.Message{{From: p.id, To: p.peer, Payload: &types.DecidePayload{V: types.One}}}
}
func (p *oneShotNode) Deliver(types.Message) []types.Message { return nil }
func (p *oneShotNode) Done() bool                            { return false }

// sinkNode counts deliveries.
type sinkNode struct {
	id  types.ProcessID
	got int
}

func (s *sinkNode) ID() types.ProcessID                   { return s.id }
func (s *sinkNode) Start() []types.Message                { return nil }
func (s *sinkNode) Deliver(types.Message) []types.Message { s.got++; return nil }
func (s *sinkNode) Done() bool                            { return false }

// boxedQueue replicates the seed implementation's container/heap event
// queue: the comparison baseline for both the cross-check test above and
// the allocation microbenchmarks.
type boxedQueue []event

func (q boxedQueue) Len() int { return len(q) }
func (q boxedQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q boxedQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *boxedQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *boxedQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// queueBacklog models the delivery loop's queue traffic: a standing
// backlog with one push+pop per simulated delivery.
const queueBacklog = 1024

// BenchmarkQueuePushPop measures the concrete-typed 4-ary heap on the
// delivery hot path (expect 0 allocs/op once the backing array is grown).
func BenchmarkQueuePushPop(b *testing.B) {
	var q eventQueue
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < queueBacklog; i++ {
		q.push(event{at: Time(rng.Intn(1000)), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(event{at: Time(rng.Intn(1000)), seq: uint64(queueBacklog + i)})
		_ = q.pop()
	}
}

// BenchmarkQueuePushPopBoxedHeap measures the seed implementation's
// container/heap queue on the same workload (expect 1-2 allocs/op from
// interface boxing) — the before/after pair for the ≥50% allocation
// reduction acceptance criterion.
func BenchmarkQueuePushPopBoxedHeap(b *testing.B) {
	var q boxedQueue
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < queueBacklog; i++ {
		heap.Push(&q, event{at: Time(rng.Intn(1000)), seq: uint64(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heap.Push(&q, event{at: Time(rng.Intn(1000)), seq: uint64(queueBacklog + i)})
		_ = heap.Pop(&q).(event)
	}
}
