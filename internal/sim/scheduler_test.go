package sim

import (
	"math/rand"
	"testing"

	"repro/internal/types"
)

func msg(from, to types.ProcessID) types.Message {
	return types.Message{From: from, To: to, Payload: &types.DecidePayload{V: types.One}}
}

func TestHoldUntil(t *testing.T) {
	rule := HoldUntil(100, 3)
	if at := rule(msg(1, 3), 7, 5); at != 102 {
		t.Errorf("held delivery at %d, want 102 (hold time + jitter)", at)
	}
	if at := rule(msg(1, 2), 7, 5); at != 7 {
		t.Errorf("unrelated destination delayed: %d, want 7", at)
	}
	if at := rule(msg(1, 3), 150, 149); at != 150 {
		t.Errorf("post-hold delivery delayed: %d, want 150", at)
	}
}

func TestHealPartition(t *testing.T) {
	a := []types.ProcessID{1, 2}
	b := []types.ProcessID{3, 4}
	rule := HealPartition(200, a, b)
	if at := rule(msg(1, 3), 10, 8); at != 202 {
		t.Errorf("cross traffic at %d, want 202", at)
	}
	if at := rule(msg(3, 2), 10, 8); at != 202 {
		t.Errorf("reverse cross traffic at %d, want 202", at)
	}
	if at := rule(msg(1, 2), 10, 8); at != 10 {
		t.Errorf("intra-group traffic delayed: %d", at)
	}
	if at := rule(msg(5, 1), 10, 8); at != 10 {
		t.Errorf("outsider traffic delayed: %d", at)
	}
	if at := rule(msg(1, 3), 250, 249); at != 250 {
		t.Errorf("post-heal traffic delayed: %d", at)
	}
}

// TestReorderDelayReverses: consecutive sends within a span arrive in
// reverse order, and every delivery lands within (now, now+Span].
func TestReorderDelayReverses(t *testing.T) {
	s := ReorderDelay{Span: 10}
	rng := rand.New(rand.NewSource(1))
	var prev Time
	for seq := uint64(1); seq <= 9; seq++ {
		at := s.Deliver(msg(1, 2), 100, seq, rng)
		if at <= 100 || at > 110 {
			t.Fatalf("seq %d delivered at %d, outside (100, 110]", seq, at)
		}
		if seq > 1 && at >= prev {
			t.Fatalf("seq %d at %d not before seq %d at %d", seq, at, seq-1, prev)
		}
		prev = at
	}
	// Degenerate spans fall back to immediate-next-tick delivery.
	if at := (ReorderDelay{Span: 1}).Deliver(msg(1, 2), 5, 3, rng); at != 6 {
		t.Errorf("span 1 delivered at %d, want 6", at)
	}
}

// TestReorderDelayLiveness: a full run under the reorder scheduler still
// delivers everything (no message is postponed forever).
func TestReorderDelayLiveness(t *testing.T) {
	net, err := New(Config{Scheduler: ReorderDelay{Span: 16}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := &countNode{id: 1, peer: 2, kick: true, sendUpTo: 50}
	b := &countNode{id: 2, peer: 1}
	if err := net.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := net.Add(b); err != nil {
		t.Fatal(err)
	}
	stats, err := net.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered == 0 || stats.Dropped != 0 {
		t.Errorf("stats = %+v", stats)
	}
	if b.got == 0 {
		t.Error("receiver saw nothing")
	}
}

// countNode bounces a bounded rally for the liveness test.
type countNode struct {
	id, peer types.ProcessID
	kick     bool
	sendUpTo int
	sent     int
	got      int
}

func (n *countNode) ID() types.ProcessID { return n.id }
func (n *countNode) Done() bool          { return false }

func (n *countNode) Start() []types.Message {
	if !n.kick {
		return nil
	}
	n.sent++
	return []types.Message{msg(n.id, n.peer)}
}

func (n *countNode) Deliver(types.Message) []types.Message {
	n.got++
	if n.sent >= n.sendUpTo && n.sendUpTo > 0 {
		return nil
	}
	n.sent++
	return []types.Message{msg(n.id, n.peer)}
}
