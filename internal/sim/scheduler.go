package sim

import (
	"math/rand"
	"sync"

	"repro/internal/types"
)

// UniformDelay delivers each message after an independent uniform random
// delay in [Min, Max]. It models a fair asynchronous network: arbitrary
// per-message delays, hence arbitrary reordering, but eventual delivery.
type UniformDelay struct {
	Min, Max Time
}

// Deliver implements Scheduler.
func (s UniformDelay) Deliver(_ types.Message, now Time, _ uint64, rng *rand.Rand) Time {
	lo, hi := s.Min, s.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	return now + lo + Time(rng.Int63n(int64(hi-lo)+1))
}

// FIFODelay is UniformDelay constrained to per-link FIFO order: a message on
// link (from, to) is never delivered before an earlier message on the same
// link. This is the "FIFO authenticated links" variant that descendants of
// the paper often assume; Bracha's protocol needs only eventual delivery, and
// experiment A3 compares the two.
type FIFODelay struct {
	Min, Max Time

	mu   sync.Mutex
	last map[link]Time
}

type link struct{ from, to types.ProcessID }

// NewFIFODelay returns a FIFO scheduler with the given delay range.
func NewFIFODelay(min, max Time) *FIFODelay {
	return &FIFODelay{Min: min, Max: max, last: make(map[link]Time)}
}

// Deliver implements Scheduler.
func (s *FIFODelay) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := UniformDelay{Min: s.Min, Max: s.Max}.Deliver(m, now, seq, rng)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := link{from: m.From, to: m.To}
	if prev, ok := s.last[l]; ok && at <= prev {
		at = prev + 1
	}
	s.last[l] = at
	return at
}

// Rule post-processes a base scheduler's decision for one message. Returning
// Drop discards the message; any other value replaces the delivery time.
type Rule func(m types.Message, at Time, now Time) Time

// Compose wraps a base scheduler with rules applied in order. It is how
// adversarial schedules are built from reusable pieces (delay these links,
// rush those senders, drop that traffic).
type Compose struct {
	Base  Scheduler
	Rules []Rule
}

// Deliver implements Scheduler.
func (c Compose) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := c.Base.Deliver(m, now, seq, rng)
	for _, r := range c.Rules {
		if at == Drop {
			return Drop
		}
		at = r(m, at, now)
	}
	return at
}

// DelayLinks returns a Rule adding extra delay to every message on the given
// links — the adversary's basic tool for holding back traffic between chosen
// correct processes.
func DelayLinks(extra Time, links ...[2]types.ProcessID) Rule {
	set := make(map[link]bool, len(links))
	for _, l := range links {
		set[link{from: l[0], to: l[1]}] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[link{from: m.From, to: m.To}] {
			return at + extra
		}
		return at
	}
}

// RushFrom returns a Rule delivering every message sent by the given
// processes immediately (at the current time): the classic "rushing
// adversary" whose messages always arrive first.
func RushFrom(ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		if set[m.From] {
			return now
		}
		return at
	}
}

// DropLinks returns a Rule dropping all traffic on the given links. Dropping
// correct-to-correct traffic violates the asynchronous model's eventual
// delivery; use only in failure-injection tests (the point is to watch the
// checkers catch the resulting liveness loss).
func DropLinks(links ...[2]types.ProcessID) Rule {
	set := make(map[link]bool, len(links))
	for _, l := range links {
		set[link{from: l[0], to: l[1]}] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[link{from: m.From, to: m.To}] {
			return Drop
		}
		return at
	}
}

// DropFrom returns a Rule dropping every message sent by the given processes
// (simulates a crash of those senders at time zero when applied from the
// start).
func DropFrom(ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[m.From] {
			return Drop
		}
		return at
	}
}

// HoldUntil returns a Rule that holds every message addressed to the given
// processes until at least time t — the crash-then-rejoin scenario: the
// victims are unreachable for a prefix of the run and then receive everything
// at once (a crash-restart with redelivery). Unlike DropFrom this stays
// inside the asynchronous model: every message is still eventually delivered,
// so liveness must survive the rejoin flood.
func HoldUntil(t Time, ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		if set[m.To] && at < t {
			// Carry the base scheduler's jitter past the hold so held
			// messages keep a deterministic but shuffled arrival order.
			return t + (at - now)
		}
		return at
	}
}

// HealPartition returns a Rule that freezes all traffic between two groups
// until the heal time, after which the network behaves normally — the
// network-split-then-heal scenario. During the split each side sees only
// itself (plus any process in neither group, e.g. Byzantine colluders, whose
// traffic is unaffected); at heal the queued cross-partition messages arrive
// in a burst.
func HealPartition(heal Time, groupA, groupB []types.ProcessID) Rule {
	inA := make(map[types.ProcessID]bool, len(groupA))
	for _, p := range groupA {
		inA[p] = true
	}
	inB := make(map[types.ProcessID]bool, len(groupB))
	for _, p := range groupB {
		inB[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		cross := (inA[m.From] && inB[m.To]) || (inB[m.From] && inA[m.To])
		if cross && at < heal {
			return heal + (at - now)
		}
		return at
	}
}

// ReorderDelay is an adversarial reordering scheduler: within a sliding span
// of Span ticks it delivers newest-first (a message's delay shrinks as its
// send sequence number grows), so consecutive sends arrive in reverse order
// and later traffic routinely overtakes earlier traffic. Delivery always
// happens within (now, now+Span], so eventual delivery — the only guarantee
// the asynchronous model makes — still holds.
type ReorderDelay struct {
	Span Time
}

// Deliver implements Scheduler.
func (s ReorderDelay) Deliver(_ types.Message, now Time, seq uint64, _ *rand.Rand) Time {
	span := s.Span
	if span < 2 {
		return now + 1
	}
	return now + span - Time(seq%uint64(span))
}

// Immediate delivers everything with zero delay in send order — useful for
// unit tests that want synchronous, predictable executions.
type Immediate struct{}

// Deliver implements Scheduler.
func (Immediate) Deliver(_ types.Message, now Time, _ uint64, _ *rand.Rand) Time { return now }
