package sim

import (
	"math/rand"
	"sync"

	"repro/internal/types"
)

// UniformDelay delivers each message after an independent uniform random
// delay in [Min, Max]. It models a fair asynchronous network: arbitrary
// per-message delays, hence arbitrary reordering, but eventual delivery.
type UniformDelay struct {
	Min, Max Time
}

// Deliver implements Scheduler.
func (s UniformDelay) Deliver(_ types.Message, now Time, _ uint64, rng *rand.Rand) Time {
	lo, hi := s.Min, s.Max
	if hi < lo {
		lo, hi = hi, lo
	}
	return now + lo + Time(rng.Int63n(int64(hi-lo)+1))
}

// FIFODelay is UniformDelay constrained to per-link FIFO order: a message on
// link (from, to) is never delivered before an earlier message on the same
// link. This is the "FIFO authenticated links" variant that descendants of
// the paper often assume; Bracha's protocol needs only eventual delivery, and
// experiment A3 compares the two.
type FIFODelay struct {
	Min, Max Time

	mu   sync.Mutex
	last map[link]Time
}

type link struct{ from, to types.ProcessID }

// NewFIFODelay returns a FIFO scheduler with the given delay range.
func NewFIFODelay(min, max Time) *FIFODelay {
	return &FIFODelay{Min: min, Max: max, last: make(map[link]Time)}
}

// Deliver implements Scheduler.
func (s *FIFODelay) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := UniformDelay{Min: s.Min, Max: s.Max}.Deliver(m, now, seq, rng)
	s.mu.Lock()
	defer s.mu.Unlock()
	l := link{from: m.From, to: m.To}
	if prev, ok := s.last[l]; ok && at <= prev {
		at = prev + 1
	}
	s.last[l] = at
	return at
}

// Rule post-processes a base scheduler's decision for one message. Returning
// Drop discards the message; any other value replaces the delivery time.
type Rule func(m types.Message, at Time, now Time) Time

// Compose wraps a base scheduler with rules applied in order. It is how
// adversarial schedules are built from reusable pieces (delay these links,
// rush those senders, drop that traffic).
type Compose struct {
	Base  Scheduler
	Rules []Rule
}

// Deliver implements Scheduler.
func (c Compose) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := c.Base.Deliver(m, now, seq, rng)
	for _, r := range c.Rules {
		if at == Drop {
			return Drop
		}
		at = r(m, at, now)
	}
	return at
}

// Duplicate implements Duplicator by forwarding to the base scheduler, so a
// duplicating family (LossyDelay) keeps duplicating under composed rules.
// The duplicate copy itself bypasses the rules: it is the link's artifact,
// not a fresh send the adversary reschedules. Bases without the extension
// never duplicate.
func (c Compose) Duplicate(m types.Message, at, now Time, rng *rand.Rand) (Time, bool) {
	if d, ok := c.Base.(Duplicator); ok {
		return d.Duplicate(m, at, now, rng)
	}
	return 0, false
}

// DelayLinks returns a Rule adding extra delay to every message on the given
// links — the adversary's basic tool for holding back traffic between chosen
// correct processes.
func DelayLinks(extra Time, links ...[2]types.ProcessID) Rule {
	set := make(map[link]bool, len(links))
	for _, l := range links {
		set[link{from: l[0], to: l[1]}] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[link{from: m.From, to: m.To}] {
			return at + extra
		}
		return at
	}
}

// RushFrom returns a Rule delivering every message sent by the given
// processes immediately (at the current time): the classic "rushing
// adversary" whose messages always arrive first.
func RushFrom(ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		if set[m.From] {
			return now
		}
		return at
	}
}

// DropLinks returns a Rule dropping all traffic on the given links. Dropping
// correct-to-correct traffic violates the asynchronous model's eventual
// delivery; use only in failure-injection tests (the point is to watch the
// checkers catch the resulting liveness loss).
func DropLinks(links ...[2]types.ProcessID) Rule {
	set := make(map[link]bool, len(links))
	for _, l := range links {
		set[link{from: l[0], to: l[1]}] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[link{from: m.From, to: m.To}] {
			return Drop
		}
		return at
	}
}

// DropFrom returns a Rule dropping every message sent by the given processes
// (simulates a crash of those senders at time zero when applied from the
// start).
func DropFrom(ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, _ Time) Time {
		if set[m.From] {
			return Drop
		}
		return at
	}
}

// HoldUntil returns a Rule that holds every message addressed to the given
// processes until at least time t — the crash-then-rejoin scenario: the
// victims are unreachable for a prefix of the run and then receive everything
// at once (a crash-restart with redelivery). Unlike DropFrom this stays
// inside the asynchronous model: every message is still eventually delivered,
// so liveness must survive the rejoin flood.
func HoldUntil(t Time, ps ...types.ProcessID) Rule {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		if set[m.To] && at < t {
			// Carry the base scheduler's jitter past the hold so held
			// messages keep a deterministic but shuffled arrival order.
			return t + (at - now)
		}
		return at
	}
}

// HealPartition returns a Rule that freezes all traffic between two groups
// until the heal time, after which the network behaves normally — the
// network-split-then-heal scenario. During the split each side sees only
// itself (plus any process in neither group, e.g. Byzantine colluders, whose
// traffic is unaffected); at heal the queued cross-partition messages arrive
// in a burst.
func HealPartition(heal Time, groupA, groupB []types.ProcessID) Rule {
	inA := make(map[types.ProcessID]bool, len(groupA))
	for _, p := range groupA {
		inA[p] = true
	}
	inB := make(map[types.ProcessID]bool, len(groupB))
	for _, p := range groupB {
		inB[p] = true
	}
	return func(m types.Message, at, now Time) Time {
		cross := (inA[m.From] && inB[m.To]) || (inB[m.From] && inA[m.To])
		if cross && at < heal {
			return heal + (at - now)
		}
		return at
	}
}

// ReorderDelay is an adversarial reordering scheduler: within a sliding span
// of Span ticks it delivers newest-first (a message's delay shrinks as its
// send sequence number grows), so consecutive sends arrive in reverse order
// and later traffic routinely overtakes earlier traffic. Delivery always
// happens within (now, now+Span], so eventual delivery — the only guarantee
// the asynchronous model makes — still holds.
type ReorderDelay struct {
	Span Time
}

// Deliver implements Scheduler.
func (s ReorderDelay) Deliver(_ types.Message, now Time, seq uint64, _ *rand.Rand) Time {
	span := s.Span
	if span < 2 {
		return now + 1
	}
	return now + span - Time(seq%uint64(span))
}

// Immediate delivers everything with zero delay in send order — useful for
// unit tests that want synchronous, predictable executions.
type Immediate struct{}

// Deliver implements Scheduler.
func (Immediate) Deliver(_ types.Message, now Time, _ uint64, _ *rand.Rand) Time { return now }

// LossyDelay models lossy, duplicating, jittery links under ARQ: each send
// is retransmitted until a copy gets through — every lost attempt (LossPct%
// each, independently) adds RetransmitLag to the delivery delay — and with
// DupPct% probability a stale duplicate of the frame also arrives later.
// Loss therefore converts to delay, never to silence, so the asynchronous
// model's eventual-delivery guarantee survives arbitrarily hostile loss
// rates; duplicates exercise the idempotence that quorum counting provides
// by construction. All randomness flows from the run RNG, so a lossy run
// replays exactly like any other.
type LossyDelay struct {
	Base          UniformDelay
	LossPct       int  // per-attempt loss probability, percent (clamped to 95)
	DupPct        int  // per-send duplication probability, percent
	RetransmitLag Time // extra delay per lost attempt
}

// Deliver implements Scheduler.
func (s LossyDelay) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := s.Base.Deliver(m, now, seq, rng)
	loss := s.LossPct
	if loss > 95 {
		loss = 95 // a link that never delivers leaves the model
	}
	for loss > 0 && int(rng.Int63n(100)) < loss {
		at += s.RetransmitLag
	}
	return at
}

// Duplicate implements Duplicator: a duplicate, when one occurs, trails the
// primary copy by a fresh jitter in (0, RetransmitLag].
func (s LossyDelay) Duplicate(_ types.Message, at, _ Time, rng *rand.Rand) (Time, bool) {
	if s.DupPct <= 0 || int(rng.Int63n(100)) >= s.DupPct {
		return 0, false
	}
	lag := s.RetransmitLag
	if lag < 1 {
		lag = 1
	}
	return at + 1 + Time(rng.Int63n(int64(lag))), true
}

// TopologyDelay is the local-broadcast / topology-constrained model (Khan &
// Vaidya): processes are arranged on a ring and a process reaches only the
// neighbours within Degree ring hops directly. Traffic between non-adjacent
// processes is relayed along the ring overlay, paying HopLag extra delay per
// hop past the first; the graph is connected for any Degree ≥ 1, so every
// message is still eventually delivered — but the effective diameter
// ⌈(n/2)/Degree⌉ stretches delivery times, which is exactly the liveness
// coordinate the parameter search explores. Processes outside 1..N (foreign
// IDs a Byzantine node might address) are treated as adjacent to everyone.
type TopologyDelay struct {
	Base   UniformDelay
	N      int  // ring size (process IDs 1..N)
	Degree int  // direct reach in ring hops (clamped to ≥ 1)
	HopLag Time // extra delay per relay hop
}

// Deliver implements Scheduler.
func (s TopologyDelay) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	at := s.Base.Deliver(m, now, seq, rng)
	return at + s.HopLag*Time(s.hops(m.From, m.To)-1)
}

// hops returns the relay distance between two processes (at least 1; 1 for
// loopback and foreign IDs).
func (s TopologyDelay) hops(from, to types.ProcessID) int {
	fi, ti := int(from), int(to)
	if fi < 1 || fi > s.N || ti < 1 || ti > s.N || fi == ti {
		return 1
	}
	d := fi - ti
	if d < 0 {
		d = -d
	}
	if ring := s.N - d; ring < d {
		d = ring
	}
	deg := s.Degree
	if deg < 1 {
		deg = 1
	}
	return (d + deg - 1) / deg
}
