package sim

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

// pingNode sends one message to each peer at start and counts deliveries.
// If chatty, it replies to every delivery until budget messages are sent.
type pingNode struct {
	id      types.ProcessID
	peers   []types.ProcessID
	got     []types.Message
	chatty  bool
	budget  int
	done    bool
	spoofAs types.ProcessID // when set, Start emits a message forged as this sender
}

func (p *pingNode) ID() types.ProcessID { return p.id }

func (p *pingNode) Start() []types.Message {
	msgs := types.Broadcast(p.id, p.peers, &types.DecidePayload{V: types.One})
	if p.spoofAs != types.NoProcess {
		msgs = append(msgs, types.Message{From: p.spoofAs, To: p.peers[0], Payload: &types.DecidePayload{}})
	}
	return msgs
}

func (p *pingNode) Deliver(m types.Message) []types.Message {
	p.got = append(p.got, m)
	if p.chatty && p.budget > 0 {
		p.budget--
		return []types.Message{{From: p.id, To: m.From, Payload: m.Payload}}
	}
	return nil
}

func (p *pingNode) Done() bool { return p.done }

func newNet(t *testing.T, cfg Config) *Network {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewRequiresScheduler(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoScheduler) {
		t.Fatalf("error = %v, want ErrNoScheduler", err)
	}
}

func TestAddRejectsDuplicates(t *testing.T) {
	n := newNet(t, Config{Scheduler: Immediate{}})
	if err := n.Add(&pingNode{id: 1}); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(&pingNode{id: 1}); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("error = %v, want ErrDuplicateNode", err)
	}
}

func TestAllMessagesDelivered(t *testing.T) {
	schedulers := map[string]Scheduler{
		"immediate": Immediate{},
		"uniform":   UniformDelay{Min: 1, Max: 50},
		"fifo":      NewFIFODelay(1, 50),
	}
	for name, sched := range schedulers {
		t.Run(name, func(t *testing.T) {
			n := newNet(t, Config{Scheduler: sched, Seed: 7})
			ps := types.Processes(4)
			nodes := make([]*pingNode, 4)
			for i := range nodes {
				nodes[i] = &pingNode{id: ps[i], peers: ps}
				if err := n.Add(nodes[i]); err != nil {
					t.Fatal(err)
				}
			}
			stats, err := n.Run(nil)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Sent != 16 || stats.Delivered != 16 {
				t.Errorf("sent/delivered = %d/%d, want 16/16", stats.Sent, stats.Delivered)
			}
			for _, node := range nodes {
				if len(node.got) != 4 {
					t.Errorf("%v received %d messages, want 4", node.id, len(node.got))
				}
			}
		})
	}
}

func TestRunTwiceFails(t *testing.T) {
	n := newNet(t, Config{Scheduler: Immediate{}})
	if _, err := n.Run(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(nil); err == nil {
		t.Fatal("second Run must fail")
	}
	if err := n.Add(&pingNode{id: 9}); err == nil {
		t.Fatal("Add after Run must fail")
	}
}

func TestSpoofedSenderRejected(t *testing.T) {
	rec := trace.New(0)
	n := newNet(t, Config{Scheduler: Immediate{}, Recorder: rec})
	ps := types.Processes(2)
	a := &pingNode{id: 1, peers: ps[1:], spoofAs: 2}
	b := &pingNode{id: 2, peers: nil}
	if err := n.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(b); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spoofed != 1 {
		t.Errorf("Spoofed = %d, want 1", stats.Spoofed)
	}
	if len(b.got) != 1 { // only the genuine message
		t.Errorf("b received %d messages, want 1", len(b.got))
	}
	drops := rec.ByKind(trace.KindDrop)
	if len(drops) != 1 || drops[0].Note != "spoofed sender" {
		t.Errorf("drop events = %v", drops)
	}
}

// dropAll discards every message — the scheduler-drop path.
type dropAll struct{}

func (dropAll) Deliver(types.Message, Time, uint64, *rand.Rand) Time { return Drop }

func TestSizerAccounting(t *testing.T) {
	size := func(m types.Message) int { return 10 }

	t.Run("counts every sent message", func(t *testing.T) {
		n := newNet(t, Config{Scheduler: Immediate{}, Sizer: size})
		ps := types.Processes(4)
		for _, p := range ps {
			if err := n.Add(&pingNode{id: p, peers: ps}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if want := int64(stats.Sent) * 10; stats.Bytes != want || stats.Sent != 16 {
			t.Errorf("Bytes = %d (Sent %d), want %d", stats.Bytes, stats.Sent, want)
		}
	})

	t.Run("spoofed messages never hit the wire", func(t *testing.T) {
		n := newNet(t, Config{Scheduler: Immediate{}, Sizer: size})
		ps := types.Processes(2)
		if err := n.Add(&pingNode{id: 1, peers: ps[1:], spoofAs: 2}); err != nil {
			t.Fatal(err)
		}
		if err := n.Add(&pingNode{id: 2}); err != nil {
			t.Fatal(err)
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bytes != int64(stats.Sent)*10 || stats.Spoofed != 1 {
			t.Errorf("Bytes = %d with Sent = %d Spoofed = %d", stats.Bytes, stats.Sent, stats.Spoofed)
		}
	})

	t.Run("scheduler-dropped messages still count", func(t *testing.T) {
		// A dropped message was sent — it crossed the sender's NIC — so the
		// bandwidth meter charges it even though it never arrives.
		n := newNet(t, Config{Scheduler: dropAll{}, Sizer: size})
		ps := types.Processes(2)
		for _, p := range ps {
			if err := n.Add(&pingNode{id: p, peers: ps}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Delivered != 0 || stats.Bytes != int64(stats.Sent)*10 {
			t.Errorf("Delivered = %d Bytes = %d Sent = %d", stats.Delivered, stats.Bytes, stats.Sent)
		}
	})

	t.Run("nil sizer meters nothing", func(t *testing.T) {
		n := newNet(t, Config{Scheduler: Immediate{}})
		ps := types.Processes(2)
		for _, p := range ps {
			if err := n.Add(&pingNode{id: p, peers: ps}); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Bytes != 0 {
			t.Errorf("Bytes = %d without a Sizer", stats.Bytes)
		}
	})
}

func TestBudgetExhaustion(t *testing.T) {
	// Two chatty nodes ping-pong forever; the budget must stop them.
	n := newNet(t, Config{Scheduler: Immediate{}, MaxDeliveries: 100})
	ps := types.Processes(2)
	a := &pingNode{id: 1, peers: ps, chatty: true, budget: 1 << 30}
	b := &pingNode{id: 2, peers: ps, chatty: true, budget: 1 << 30}
	if err := n.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(b); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Exhausted {
		t.Error("expected budget exhaustion")
	}
	if stats.Delivered != 100 {
		t.Errorf("Delivered = %d, want 100", stats.Delivered)
	}
}

func TestStopPredicate(t *testing.T) {
	n := newNet(t, Config{Scheduler: Immediate{}})
	ps := types.Processes(3)
	var count int
	nodes := make([]*pingNode, 3)
	for i := range nodes {
		nodes[i] = &pingNode{id: ps[i], peers: ps}
		if err := n.Add(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(func() bool {
		count++
		return count >= 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 2 {
		t.Errorf("Delivered = %d, want 2 (stopped early)", stats.Delivered)
	}
}

func TestDoneNodesReceiveNothing(t *testing.T) {
	n := newNet(t, Config{Scheduler: Immediate{}})
	ps := types.Processes(2)
	a := &pingNode{id: 1, peers: ps[1:]}
	b := &pingNode{id: 2, done: true}
	if err := n.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(b); err != nil {
		t.Fatal(err)
	}
	stats, err := n.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.got) != 0 {
		t.Errorf("done node received %d messages", len(b.got))
	}
	if stats.Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", stats.Dropped)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []types.Message {
		n := newNet(t, Config{Scheduler: UniformDelay{Min: 1, Max: 100}, Seed: 42})
		ps := types.Processes(5)
		nodes := make([]*pingNode, 5)
		for i := range nodes {
			nodes[i] = &pingNode{id: ps[i], peers: ps, chatty: true, budget: 3}
			if err := n.Add(nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := n.Run(nil); err != nil {
			t.Fatal(err)
		}
		var all []types.Message
		for _, node := range nodes {
			all = append(all, node.got...)
		}
		return all
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].From != b[i].From || a[i].To != b[i].To {
			t.Fatalf("delivery %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFIFOOrderPreserved(t *testing.T) {
	// One sender, many messages to the same peer: the receiver must see them
	// in send order under FIFODelay even with large random delays.
	n := newNet(t, Config{Scheduler: NewFIFODelay(1, 1000), Seed: 3})
	recv := &pingNode{id: 2}
	sender := &burstNode{id: 1, to: 2, count: 50}
	if err := n.Add(sender); err != nil {
		t.Fatal(err)
	}
	if err := n.Add(recv); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(recv.got) != 50 {
		t.Fatalf("received %d, want 50", len(recv.got))
	}
	for i, m := range recv.got {
		p, ok := m.Payload.(*types.PlainPayload)
		if !ok || p.Round != i {
			t.Fatalf("delivery %d out of order: %v", i, m)
		}
	}
}

// burstNode sends `count` numbered messages to one peer at start.
type burstNode struct {
	id    types.ProcessID
	to    types.ProcessID
	count int
}

func (b *burstNode) ID() types.ProcessID { return b.id }
func (b *burstNode) Start() []types.Message {
	msgs := make([]types.Message, b.count)
	for i := range msgs {
		msgs[i] = types.Message{
			From:    b.id,
			To:      b.to,
			Payload: &types.PlainPayload{Round: i, Step: types.Step1},
		}
	}
	return msgs
}
func (b *burstNode) Deliver(types.Message) []types.Message { return nil }
func (b *burstNode) Done() bool                            { return false }

func TestSchedulerRules(t *testing.T) {
	t.Run("drop links", func(t *testing.T) {
		n := newNet(t, Config{Scheduler: Compose{
			Base:  Immediate{},
			Rules: []Rule{DropLinks([2]types.ProcessID{1, 2})},
		}})
		ps := types.Processes(3)
		nodes := make([]*pingNode, 3)
		for i := range nodes {
			nodes[i] = &pingNode{id: ps[i], peers: ps}
			if err := n.Add(nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Dropped != 1 {
			t.Errorf("Dropped = %d, want 1", stats.Dropped)
		}
		if len(nodes[1].got) != 2 { // p2 misses p1's message
			t.Errorf("p2 received %d, want 2", len(nodes[1].got))
		}
	})
	t.Run("drop from", func(t *testing.T) {
		n := newNet(t, Config{Scheduler: Compose{
			Base:  Immediate{},
			Rules: []Rule{DropFrom(3)},
		}})
		ps := types.Processes(3)
		nodes := make([]*pingNode, 3)
		for i := range nodes {
			nodes[i] = &pingNode{id: ps[i], peers: ps}
			if err := n.Add(nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Dropped != 3 {
			t.Errorf("Dropped = %d, want 3", stats.Dropped)
		}
	})
	t.Run("rush from beats delay", func(t *testing.T) {
		// p3's messages are rushed; everyone else is slow. p2 must receive
		// p3's message before p1's.
		n := newNet(t, Config{
			Scheduler: Compose{
				Base:  UniformDelay{Min: 100, Max: 200},
				Rules: []Rule{RushFrom(3)},
			},
			Seed: 1,
		})
		ps := types.Processes(3)
		nodes := make([]*pingNode, 3)
		for i := range nodes {
			nodes[i] = &pingNode{id: ps[i], peers: []types.ProcessID{2}}
			if err := n.Add(nodes[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := n.Run(nil); err != nil {
			t.Fatal(err)
		}
		if len(nodes[1].got) != 3 {
			t.Fatalf("p2 received %d, want 3", len(nodes[1].got))
		}
		if nodes[1].got[0].From != 3 {
			t.Errorf("first delivery from %v, want p3 (rushed)", nodes[1].got[0].From)
		}
	})
	t.Run("delay links pushes delivery later", func(t *testing.T) {
		n := newNet(t, Config{
			Scheduler: Compose{
				Base:  Immediate{},
				Rules: []Rule{DelayLinks(1000, [2]types.ProcessID{1, 2})},
			},
		})
		ps := types.Processes(2)
		a := &pingNode{id: 1, peers: []types.ProcessID{2}}
		b := &pingNode{id: 2, peers: []types.ProcessID{1}}
		_ = ps
		if err := n.Add(a); err != nil {
			t.Fatal(err)
		}
		if err := n.Add(b); err != nil {
			t.Fatal(err)
		}
		stats, err := n.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		if stats.End != 1000 {
			t.Errorf("End = %d, want 1000 (delayed link dominates)", stats.End)
		}
	})
}

func TestUniformDelaySwappedBounds(t *testing.T) {
	// Max < Min must not panic; bounds are normalized.
	n := newNet(t, Config{Scheduler: UniformDelay{Min: 50, Max: 1}, Seed: 1})
	a := &pingNode{id: 1, peers: []types.ProcessID{1}}
	if err := n.Add(a); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(a.got) != 1 {
		t.Errorf("self delivery missing")
	}
}
