package sim

// Telemetry plane tests: per-kind charging agrees with Stats, phase marks
// flow through Now/Observe, causal parents stamp SEND events with the
// delivery that triggered them, and — the contract CI gates — the delivery
// path with telemetry AND tracing disabled allocates nothing.

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/types"
)

// relayNode forwards every delivery to a fixed peer, recycling its output
// buffer: an endless two-node ping-pong with a zero-allocation steady state.
type relayNode struct {
	id, to types.ProcessID
	OutBuffer
}

func (r *relayNode) ID() types.ProcessID { return r.id }
func (r *relayNode) Start() []types.Message {
	return []types.Message{{From: r.id, To: r.to, Payload: &types.PlainPayload{Round: 1, Step: types.Step1}}}
}
func (r *relayNode) Deliver(m types.Message) []types.Message {
	out := r.Take()
	return append(out, types.Message{From: r.id, To: r.to, Payload: m.Payload})
}
func (r *relayNode) Done() bool { return false }

// relayPair builds a two-node relay network.
func relayPair(tb testing.TB, cfg Config) *Network {
	tb.Helper()
	n, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	if err := n.Add(&relayNode{id: 1, to: 2}); err != nil {
		tb.Fatal(err)
	}
	if err := n.Add(&relayNode{id: 2, to: 1}); err != nil {
		tb.Fatal(err)
	}
	return n
}

// TestTelemetryMatchesStats: the per-kind totals sum to exactly the run's
// Stats counters, bytes included, and every delivered message contributed
// one latency observation.
func TestTelemetryMatchesStats(t *testing.T) {
	tele := NewTelemetry()
	n := relayPair(t, Config{
		Scheduler:     UniformDelay{Min: 1, Max: 20},
		Seed:          3,
		MaxDeliveries: 500,
		Telemetry:     tele,
		Sizer:         func(types.Message) int { return 7 },
	})
	stats, err := n.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	var sent, delivered, dropped, bytes, latObs int64
	for k := range tele.Kinds {
		sent += tele.Kinds[k].Sent
		delivered += tele.Kinds[k].Delivered
		dropped += tele.Kinds[k].Dropped
		bytes += tele.Kinds[k].Bytes
		latObs += tele.Kinds[k].Latency.Count
	}
	if sent != int64(stats.Sent) || delivered != int64(stats.Delivered) || dropped != int64(stats.Dropped) {
		t.Errorf("telemetry totals (%d/%d/%d) != stats (%d/%d/%d)",
			sent, delivered, dropped, stats.Sent, stats.Delivered, stats.Dropped)
	}
	if bytes != stats.Bytes || bytes != tele.TotalBytes() {
		t.Errorf("telemetry bytes %d (total %d) != stats bytes %d", bytes, tele.TotalBytes(), stats.Bytes)
	}
	if latObs != int64(stats.Delivered) {
		t.Errorf("latency observations %d != deliveries %d", latObs, stats.Delivered)
	}
	// All traffic in this fixture is PLAIN; the dense table must show it
	// there and nowhere else.
	if tele.Kinds[types.KindPlain].Sent != sent {
		t.Errorf("PLAIN sent = %d, want all %d", tele.Kinds[types.KindPlain].Sent, sent)
	}
}

// TestTelemetrySpoofAndDropCharged: spoofed and scheduler-dropped messages
// charge the per-kind Dropped counter.
func TestTelemetrySpoofAndDropCharged(t *testing.T) {
	tele := NewTelemetry()
	n := newNet(t, Config{Scheduler: Compose{
		Base:  Immediate{},
		Rules: []Rule{DropLinks([2]types.ProcessID{1, 2})},
	}, Telemetry: tele})
	ps := types.Processes(3)
	for i := range ps {
		nd := &pingNode{id: ps[i], peers: ps}
		if i == 0 {
			nd.spoofAs = 3 // p1 also forges one message as p3
		}
		if err := n.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := n.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Spoofed != 1 {
		t.Fatalf("Spoofed = %d, want 1", stats.Spoofed)
	}
	var dropped int64
	for k := range tele.Kinds {
		dropped += tele.Kinds[k].Dropped
	}
	if dropped != int64(stats.Dropped) {
		t.Errorf("telemetry dropped %d != stats dropped %d", dropped, stats.Dropped)
	}
}

// TestCausalParentStamping: with a Recorder attached, every DELIVER event
// carries its wire seq, and every SEND emitted from a delivery handler
// carries that delivery's seq as Parent; Start-emitted sends have Parent 0.
func TestCausalParentStamping(t *testing.T) {
	rec := trace.New(0)
	n := relayPair(t, Config{
		Scheduler:     UniformDelay{Min: 1, Max: 5},
		Seed:          11,
		MaxDeliveries: 50,
		Recorder:      rec,
	})
	if _, err := n.Run(nil); err != nil {
		t.Fatal(err)
	}
	deliverSeq := make(map[uint64]bool)
	for _, e := range rec.ByKind(trace.KindDeliver) {
		if e.Seq == 0 {
			t.Fatalf("DELIVER without seq: %v", e)
		}
		deliverSeq[e.Seq] = true
	}
	sends := rec.ByKind(trace.KindSend)
	var rootSends, chained int
	for _, e := range sends {
		if e.Seq == 0 {
			t.Fatalf("SEND without seq: %v", e)
		}
		if e.Parent == 0 {
			rootSends++
			continue
		}
		if !deliverSeq[e.Parent] {
			t.Fatalf("SEND parent %d is not a delivered seq: %v", e.Parent, e)
		}
		chained++
	}
	if rootSends != 2 {
		t.Errorf("root sends = %d, want 2 (one Start emission per node)", rootSends)
	}
	if chained == 0 {
		t.Error("no causally chained sends recorded")
	}
}

// TestTelemetryPhaseObserve: Observe charges the phase histogram with
// now-start in the network's clock.
func TestTelemetryPhaseObserve(t *testing.T) {
	tele := NewTelemetry()
	tele.now = 100
	tele.Observe(PhaseRoundDecide, 60)
	if got := tele.Phases[PhaseRoundDecide].Sum; got != 40 {
		t.Errorf("phase sum = %d, want 40", got)
	}
	// Nil sink: marks and observations are free no-ops.
	var nilTele *Telemetry
	if nilTele.Now() != 0 {
		t.Error("nil sink Now() != 0")
	}
	nilTele.Observe(PhaseRoundDecide, 0) // must not panic
	nilTele.Merge(tele)                  // must not panic
}

// BenchmarkSimDisabledDelivery is the CI-gated number for the observability
// plane: the raw network delivery loop with telemetry AND tracing disabled
// (both nil) must stay at 0 allocs/op — the seam is free when unused.
func BenchmarkSimDisabledDelivery(b *testing.B) {
	n := relayPair(b, Config{
		Scheduler:     UniformDelay{Min: 1, Max: 20},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := n.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}

// BenchmarkSimTelemetryOverhead is the same loop with the sink attached —
// the price of enabling the plane (amortized-zero allocations: histogram
// buckets grow once, integer charging thereafter).
func BenchmarkSimTelemetryOverhead(b *testing.B) {
	n := relayPair(b, Config{
		Scheduler:     UniformDelay{Min: 1, Max: 20},
		Seed:          1,
		MaxDeliveries: b.N,
		Telemetry:     NewTelemetry(),
		Sizer:         func(types.Message) int { return 7 },
	})
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := n.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}
