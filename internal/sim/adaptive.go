package sim

import (
	"math/rand"
	"sync"

	"repro/internal/types"
)

// AdaptiveDelay is an adaptive adversary schedule: the scheduler sees every
// message, so it reconstructs each correct process's protocol round from the
// traffic it carries and targets extra delay at whichever correct process is
// closest to the decision frontier — the one whose observed round is
// highest. The classical uniform adversary spreads its delay blindly; this
// one concentrates it exactly where progress is being made, re-aiming as the
// frontier moves, which is the strongest position a scheduling-only
// adversary has.
//
// With Rush set, the Byzantine colluders' traffic is additionally rushed —
// but only when addressed to the current victim: the traffic-triggered
// variant of the classic rush rule. Instead of always arriving first
// everywhere, hostile messages arrive first precisely where the protocol is
// hottest, so the victim observes Byzantine traffic ahead of its own
// quorum's.
//
// Everything is a deterministic function of the observed message sequence
// and the run RNG, so adaptive runs replay exactly. Delays are bounded
// (TargetLag per message), so eventual delivery — the asynchronous model's
// only guarantee — still holds.
type AdaptiveDelay struct {
	base      UniformDelay
	targetLag Time
	rush      bool

	mu          sync.Mutex
	byz         map[types.ProcessID]bool
	round       map[types.ProcessID]int
	victim      types.ProcessID // 0 until any round is observed
	victimRound int
}

// NewAdaptive returns an adaptive-adversary scheduler over the given base
// delay. byz names the Byzantine colluders: their traffic never moves the
// frontier estimate (an adversary does not chase its own noise), and with
// rush set it is rushed at the victim.
func NewAdaptive(base UniformDelay, targetLag Time, rush bool, byz []types.ProcessID) *AdaptiveDelay {
	set := make(map[types.ProcessID]bool, len(byz))
	for _, p := range byz {
		set[p] = true
	}
	return &AdaptiveDelay{
		base:      base,
		targetLag: targetLag,
		rush:      rush,
		byz:       set,
		round:     make(map[types.ProcessID]int),
	}
}

// Deliver implements Scheduler.
func (s *AdaptiveDelay) Deliver(m types.Message, now Time, seq uint64, rng *rand.Rand) Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := payloadRound(m.Payload); ok && !s.byz[m.From] {
		if r > s.round[m.From] {
			s.round[m.From] = r
			// The victim is the correct process at the highest observed
			// round; ties break toward the lowest ID, so the choice is a
			// pure function of the observation sequence.
			if r > s.victimRound || (r == s.victimRound && (s.victim == 0 || m.From < s.victim)) {
				s.victim, s.victimRound = m.From, r
			}
		}
	}
	at := s.base.Deliver(m, now, seq, rng)
	if m.To != s.victim || s.victim == 0 {
		return at
	}
	if s.rush && s.byz[m.From] {
		return now // traffic-triggered rush: hostile traffic lands first at the frontier
	}
	return at + s.targetLag
}

// payloadRound extracts the protocol round a message speaks for, when it has
// one — the adaptive adversary's only sensor.
func payloadRound(p types.Payload) (int, bool) {
	switch v := p.(type) {
	case *types.RBCPayload:
		return v.ID.Tag.Round, true
	case *types.RBCFragPayload:
		return v.ID.Tag.Round, true
	case *types.RBCSumPayload:
		return v.ID.Tag.Round, true
	case *types.CoinSharePayload:
		return v.Round, true
	case *types.PlainPayload:
		return v.Round, true
	default:
		return 0, false
	}
}
