package sim

// The telemetry plane: an optional per-kind/per-phase sink the network and
// the protocol layers charge as a run executes. sim.Stats answers "how much
// traffic did this run cost in total"; Telemetry answers "which message
// kinds and which protocol phases the cost went to" — the per-phase
// visibility needed to explain WHY a hostile schedule (the adaptive-cliff
// summit) is slow where a merely chaotic one (reorder) is not.
//
// # Determinism and cost contract
//
// A Telemetry sink is charged only from the single-threaded event loop of
// one Network (and from the nodes that loop drives), so its state is a pure
// function of (config, seed) like everything else in a run. All aggregation
// state is integer (metrics.Hist), so Merge is exactly associative and
// commutative — per-run sinks from a parallel sweep fold to bit-identical
// totals in any order, at any worker count.
//
// When Config.Telemetry is nil the network pays one predictable branch per
// send and per delivery and the protocol layers pay a nil-receiver method
// call; nothing allocates. The 0 allocs/op delivery gate holds with
// telemetry disabled, pinned by BenchmarkSimDisabledDelivery.

import (
	"sort"

	"repro/internal/metrics"
	"repro/internal/types"
)

// Phase identifies one protocol-level latency segment. Each phase gets a
// histogram of "ticks from the segment's start mark to its end mark",
// stamped by the layer that owns the state machine (see the package docs of
// internal/rbc, internal/core, internal/smr).
type Phase uint8

// The measured phases.
const (
	// PhaseRBCEchoQuorum: RBC instance first seen → echo quorum reached
	// (this process sends READY because ⌈(n+f+1)/2⌉ echoes agree).
	PhaseRBCEchoQuorum Phase = iota
	// PhaseRBCReadyQuorum: RBC instance first seen → 2f+1 readies observed.
	PhaseRBCReadyQuorum
	// PhaseRBCDeliver: RBC instance first seen → body delivered. Equal to
	// the ready quorum in plain mode; later in coded mode when fragments
	// still have to arrive for the decode.
	PhaseRBCDeliver
	// PhaseRoundDecide: consensus round entered → decision (recorded once,
	// at the deciding round).
	PhaseRoundDecide
	// PhaseCkptCertify: checkpoint vote cast → certificate assembled.
	PhaseCkptCertify
	// PhaseCkptInstall: state-transfer request sent → snapshot installed.
	PhaseCkptInstall

	// PhaseCount bounds the dense phase table.
	PhaseCount
)

var phaseNames = [...]string{
	PhaseRBCEchoQuorum:  "rbc-echo-quorum",
	PhaseRBCReadyQuorum: "rbc-ready-quorum",
	PhaseRBCDeliver:     "rbc-deliver",
	PhaseRoundDecide:    "round-decide",
	PhaseCkptCertify:    "ckpt-certify",
	PhaseCkptInstall:    "ckpt-install",
}

// String implements fmt.Stringer (alloc-free, stable for unknown phases).
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "phase(?)"
}

// KindStats aggregates one payload kind's wire activity: counts, bytes under
// the run's Sizer, and the queue-to-delivery latency distribution in sim
// ticks.
type KindStats struct {
	Sent      int64        `json:"sent"`
	Delivered int64        `json:"delivered"`
	Dropped   int64        `json:"dropped"`
	Bytes     int64        `json:"bytes"`
	Latency   metrics.Hist `json:"latency"`
}

// Telemetry is the per-run sink. Allocate one with NewTelemetry and hand it
// to Config.Telemetry; the network charges every send, drop and delivery,
// and protocol layers holding the same pointer stamp phase marks. All
// methods are nil-receiver safe — a disabled plane is a nil pointer, not a
// flag.
type Telemetry struct {
	// now mirrors the network's clock so passive protocol nodes (which
	// never see sim time directly) can read Now() for start marks and have
	// Observe charge end marks, without widening the Node interface.
	now Time

	Kinds  [types.KindCount]KindStats
	Phases [PhaseCount]metrics.Hist
}

// NewTelemetry returns an empty sink.
func NewTelemetry() *Telemetry { return &Telemetry{} }

// Now returns the current sim time (0 on a nil sink — marks taken while
// disabled are never observed, so the value is irrelevant).
func (t *Telemetry) Now() Time {
	if t == nil {
		return 0
	}
	return t.now
}

// Observe charges phase p with the latency from start to the current sim
// time. No-op on a nil sink.
func (t *Telemetry) Observe(p Phase, start Time) {
	if t == nil {
		return
	}
	t.Phases[p].Observe(int64(t.now - start))
}

// kindIndex maps a message to its dense kind slot (0 — never a valid kind —
// for anything malformed, so hostile payloads cannot index out of range).
func kindIndex(m types.Message) int {
	if m.Payload == nil {
		return 0
	}
	if k := int(m.Payload.Kind()); k > 0 && k < types.KindCount {
		return k
	}
	return 0
}

// Merge folds another sink into t elementwise. Exactly associative and
// commutative (integer state throughout), so sweep aggregation is
// worker-order independent.
func (t *Telemetry) Merge(o *Telemetry) {
	if t == nil || o == nil {
		return
	}
	for i := range t.Kinds {
		t.Kinds[i].Sent += o.Kinds[i].Sent
		t.Kinds[i].Delivered += o.Kinds[i].Delivered
		t.Kinds[i].Dropped += o.Kinds[i].Dropped
		t.Kinds[i].Bytes += o.Kinds[i].Bytes
		t.Kinds[i].Latency.Merge(o.Kinds[i].Latency)
	}
	for i := range t.Phases {
		t.Phases[i].Merge(o.Phases[i])
	}
}

// KindReport is one payload kind's row in a Report, with the kind rendered
// by name and headline latency figures pre-extracted for human diffing.
type KindReport struct {
	Kind       string       `json:"kind"`
	Sent       int64        `json:"sent"`
	Delivered  int64        `json:"delivered"`
	Dropped    int64        `json:"dropped,omitempty"`
	Bytes      int64        `json:"bytes"`
	LatencyP50 int64        `json:"latency_p50"`
	LatencyP99 int64        `json:"latency_p99"`
	Latency    metrics.Hist `json:"latency"`
}

// PhaseReport is one phase's row in a Report.
type PhaseReport struct {
	Phase string       `json:"phase"`
	Count int64        `json:"count"`
	P50   int64        `json:"p50"`
	P99   int64        `json:"p99"`
	Max   int64        `json:"max"`
	Hist  metrics.Hist `json:"hist"`
}

// Report is the canonical serializable rendering of a sink: kinds with any
// activity in kind order, phases with any observations in phase order. A
// pure function of the sink state, so two bitwise-equal sinks render to
// byte-identical JSON — what the CI telemetry determinism smoke diffs.
type Report struct {
	Kinds  []KindReport  `json:"kinds"`
	Phases []PhaseReport `json:"phases"`
}

// Report renders the sink.
func (t *Telemetry) Report() Report {
	var r Report
	if t == nil {
		return r
	}
	for k := range t.Kinds {
		ks := &t.Kinds[k]
		if ks.Sent == 0 && ks.Delivered == 0 && ks.Dropped == 0 {
			continue
		}
		r.Kinds = append(r.Kinds, KindReport{
			Kind:       types.Kind(k).String(),
			Sent:       ks.Sent,
			Delivered:  ks.Delivered,
			Dropped:    ks.Dropped,
			Bytes:      ks.Bytes,
			LatencyP50: ks.Latency.Quantile(0.50),
			LatencyP99: ks.Latency.Quantile(0.99),
			Latency:    ks.Latency,
		})
	}
	for p := range t.Phases {
		h := &t.Phases[p]
		if h.Count == 0 {
			continue
		}
		r.Phases = append(r.Phases, PhaseReport{
			Phase: Phase(p).String(),
			Count: h.Count,
			P50:   h.Quantile(0.50),
			P99:   h.Quantile(0.99),
			Max:   h.Max,
			Hist:  *h,
		})
	}
	return r
}

// TotalBytes returns the sink's wire-byte total (matches Stats.Bytes when
// the same Sizer fed both).
func (t *Telemetry) TotalBytes() int64 {
	if t == nil {
		return 0
	}
	var sum int64
	for i := range t.Kinds {
		sum += t.Kinds[i].Bytes
	}
	return sum
}

// TopKindsByBytes returns the kind names carrying the most bytes, heaviest
// first (ties broken by kind order — deterministic).
func (t *Telemetry) TopKindsByBytes(n int) []string {
	if t == nil {
		return nil
	}
	type kb struct {
		k int
		b int64
	}
	var all []kb
	for k := range t.Kinds {
		if t.Kinds[k].Bytes > 0 {
			all = append(all, kb{k, t.Kinds[k].Bytes})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].b != all[j].b {
			return all[i].b > all[j].b
		}
		return all[i].k < all[j].k
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for _, e := range all[:n] {
		out = append(out, types.Kind(e.k).String())
	}
	return out
}
