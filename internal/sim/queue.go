package sim

import "repro/internal/types"

// event is a queued delivery. sent is the time the message was handed to
// the network — kept alongside the delivery time so the telemetry plane can
// charge queue-to-delivery latency without a side table.
type event struct {
	at   Time
	seq  uint64
	sent Time
	msg  types.Message
}

// before is the queue's strict total order: time first, then the unique
// per-send sequence number. Because seq never repeats, no two events
// compare equal, so ANY correct min-heap pops the one and only ascending
// (at, seq) sequence — which is why replacing container/heap's binary heap
// with this 4-ary one cannot change delivery order.
func (e event) before(o event) bool {
	if e.at != o.at {
		return e.at < o.at
	}
	return e.seq < o.seq
}

// eventQueue is a concrete-typed 4-ary min-heap on (at, seq). Compared to
// the seed's container/heap implementation it removes the two per-operation
// interface boxings (heap.Push(x any) and heap.Pop() any, one allocation
// each) and halves tree depth, at the cost of comparing up to four children
// per sift-down level. The backing array is retained across pops, so a run
// reaches its high-water queue size once and never allocates on the
// delivery path again.
type eventQueue struct {
	a []event
}

// Len returns the number of queued events.
func (q *eventQueue) Len() int { return len(q.a) }

// push inserts an event.
func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	// Sift up.
	i := len(q.a) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !q.a[i].before(q.a[parent]) {
			break
		}
		q.a[i], q.a[parent] = q.a[parent], q.a[i]
		i = parent
	}
}

// pop removes and returns the minimum event. It must not be called on an
// empty queue.
func (q *eventQueue) pop() event {
	top := q.a[0]
	last := len(q.a) - 1
	q.a[0] = q.a[last]
	q.a[last] = event{} // drop the payload reference for the GC
	q.a = q.a[:last]
	// Sift down, choosing the smallest of up to four children.
	i := 0
	for {
		first := 4*i + 1
		if first >= last {
			break
		}
		min := first
		end := first + 4
		if end > last {
			end = last
		}
		for c := first + 1; c < end; c++ {
			if q.a[c].before(q.a[min]) {
				min = c
			}
		}
		if !q.a[min].before(q.a[i]) {
			break
		}
		q.a[i], q.a[min] = q.a[min], q.a[i]
		i = min
	}
	return top
}
