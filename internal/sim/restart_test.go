package sim

import (
	"testing"

	"repro/internal/types"
)

// echoNode emits one reply per delivery and counts its lifetime.
type echoNode struct {
	id        types.ProcessID
	delivered int
	started   bool
	gen       int
}

func (n *echoNode) ID() types.ProcessID { return n.id }
func (n *echoNode) Done() bool          { return false }
func (n *echoNode) Start() []types.Message {
	n.started = true
	return nil
}
func (n *echoNode) Deliver(m types.Message) []types.Message {
	n.delivered++
	return nil
}

func TestRestartCrashesDropsAndRevivesDeterministically(t *testing.T) {
	gen := 0
	var current *echoNode
	factory := func() Node {
		gen++
		current = &echoNode{id: 9, gen: gen}
		return current
	}
	r := NewRestart(factory, 3, 4)
	if r.ID() != 9 || r.Down() || r.Restarted() {
		t.Fatal("fresh wrapper state wrong")
	}
	r.Start()
	if !current.started {
		t.Fatal("Start not forwarded")
	}
	first := current

	m := types.Message{From: 1, To: 9, Payload: &types.PlainPayload{Round: 1, Step: types.Step1}}
	// Three deliveries process normally, then the crash.
	for i := 0; i < 3; i++ {
		r.Deliver(m)
	}
	if first.delivered != 3 {
		t.Fatalf("pre-crash node saw %d deliveries, want 3", first.delivered)
	}
	if !r.Down() {
		t.Fatal("no crash after CrashAfter deliveries")
	}
	if r.Done() {
		t.Fatal("a crashed node must not report done (its inbox keeps draining)")
	}
	// Exactly four evaporate; the fifth revives a fresh node and delivers to it.
	for i := 0; i < 4; i++ {
		if out := r.Deliver(m); out != nil {
			t.Fatal("outage delivery produced output")
		}
		if !r.Down() {
			t.Fatal("revived early")
		}
	}
	r.Deliver(m)
	if r.Down() || !r.Restarted() {
		t.Fatal("no revival after ReviveAfter dropped deliveries")
	}
	if current == first || current.gen != 2 {
		t.Fatal("revival did not construct a fresh node")
	}
	if !current.started || current.delivered != 1 {
		t.Fatalf("fresh node started=%v delivered=%d, want started with the revival delivery", current.started, current.delivered)
	}
	if first.delivered != 3 {
		t.Fatal("crashed node received post-crash traffic")
	}
	// One cycle only: the fresh node keeps running past CrashAfter.
	for i := 0; i < 10; i++ {
		r.Deliver(m)
	}
	if r.Down() {
		t.Fatal("wrapper crashed a second time")
	}
	if r.Inner() != current {
		t.Fatal("Inner does not expose the live node")
	}
}

func TestRestartFactoryMustKeepID(t *testing.T) {
	gen := 0
	factory := func() Node {
		gen++
		return &echoNode{id: types.ProcessID(gen)}
	}
	r := NewRestart(factory, 1, 1)
	m := types.Message{From: 1, To: 1, Payload: &types.PlainPayload{Round: 1, Step: types.Step1}}
	r.Deliver(m) // crash
	r.Deliver(m) // the one outage delivery evaporates
	defer func() {
		if recover() == nil {
			t.Fatal("ID-changing factory did not panic at revival")
		}
	}()
	r.Deliver(m) // revival with a different ID must panic
}
