// Package obs analyzes recorded traces: it walks the causal parent links
// (trace.Event.Seq/Parent, stamped by the simulator) backward from each
// decision to recover the decision's critical path — the unique chain of
// message deliveries that actually triggered it — and attributes the
// decision time to wire latency and handler ("think") time, broken down by
// payload kind.
//
// The chain is exact, not heuristic: the simulator is single-threaded, so
// every event recorded while a delivery's handler runs is causally due to
// that delivery, and each event has exactly one parent. A decision at time T
// therefore decomposes as
//
//	T = Σ wire(hop) + Σ think(hop)
//
// over its chain: each hop's wire time is delivery time minus send time, and
// its think time is the gap between the previous hop's delivery and this
// hop's send (the handler work — quorum counting, validation — that led the
// process to emit it). The root hop's think time is its send time (emitted
// during Start at t = 0). That identity is pinned by the package tests.
//
// This is the longest causal chain by construction: any other causal
// ancestor path of the decision ends at a delivery that did NOT trip the
// deciding threshold — the quorum message that arrived last is the one on
// the recorded chain.
package obs

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/types"
)

// Hop is one message on a decision's critical path, in causal order (the
// hop's message was sent because the previous hop's message was delivered).
type Hop struct {
	Seq         uint64          `json:"seq"`
	Kind        string          `json:"kind"`
	From        types.ProcessID `json:"from"`
	To          types.ProcessID `json:"to"`
	SentAt      int64           `json:"sent_at"`
	DeliveredAt int64           `json:"delivered_at"`
	Wire        int64           `json:"wire"`
	Think       int64           `json:"think"`
}

// KindShare is one payload kind's share of a critical path.
type KindShare struct {
	Kind  string `json:"kind"`
	Hops  int    `json:"hops"`
	Wire  int64  `json:"wire"`
	Think int64  `json:"think"`
}

// Decision is one process's decision and its reconstructed critical path.
type Decision struct {
	P     types.ProcessID `json:"p"`
	V     types.Value     `json:"v"`
	Round int             `json:"round"`
	At    int64           `json:"at"`
	Hops  int             `json:"hops"`
	Wire  int64           `json:"wire"`
	Think int64           `json:"think"`
	// Truncated reports that the walk stopped at a hop whose parent events
	// were not in the trace (recorder limit reached): Wire/Think then cover
	// only the recovered suffix and need not sum to At.
	Truncated bool        `json:"truncated,omitempty"`
	ByKind    []KindShare `json:"by_kind"`
	Path      []Hop       `json:"path"`
}

// Report is the critical-path analysis of one trace: the first decision of
// every deciding process, in process order.
type Report struct {
	Decisions []Decision `json:"decisions"`
}

// Analyze reconstructs the critical path of every first-per-process DECIDE
// event in the trace.
func Analyze(events []trace.Event) Report {
	sendBySeq := make(map[uint64]int)
	deliverBySeq := make(map[uint64]int)
	for i, e := range events {
		switch e.Kind {
		case trace.KindSend:
			if e.Seq != 0 {
				sendBySeq[e.Seq] = i
			}
		case trace.KindDeliver:
			if e.Seq != 0 {
				deliverBySeq[e.Seq] = i
			}
		}
	}

	var report Report
	decided := make(map[types.ProcessID]bool)
	for _, e := range events {
		if e.Kind != trace.KindDecide || decided[e.P] {
			continue
		}
		decided[e.P] = true
		report.Decisions = append(report.Decisions, walk(e, events, sendBySeq, deliverBySeq))
	}
	sort.SliceStable(report.Decisions, func(i, j int) bool {
		return report.Decisions[i].P < report.Decisions[j].P
	})
	return report
}

// walk follows parent links from one decide event back to a Start-emitted
// root, building the hop chain in causal (root-first) order.
func walk(decide trace.Event, events []trace.Event, sendBySeq, deliverBySeq map[uint64]int) Decision {
	d := Decision{P: decide.P, V: decide.V, Round: decide.Round, At: decide.Time}
	// Protocol nodes are clockless — their DECIDE events carry Time 0. The
	// decision happened while its parent message's delivery handler ran, so
	// that delivery's network-stamped time IS the decision time.
	if di, ok := deliverBySeq[decide.Parent]; ok && events[di].Time > d.At {
		d.At = events[di].Time
	}
	// Collect decision-first, reverse at the end. Bounded by the event
	// count so a corrupt trace (seq cycle) cannot loop forever.
	var rev []Hop
	seq := decide.Parent
	for steps := 0; seq != 0 && steps <= len(events); steps++ {
		si, haveSend := sendBySeq[seq]
		di, haveDeliver := deliverBySeq[seq]
		if !haveSend || !haveDeliver {
			d.Truncated = true
			break
		}
		send, deliver := events[si], events[di]
		hop := Hop{
			Seq:         seq,
			Kind:        payloadKind(send.Msg),
			From:        send.Msg.From,
			To:          send.Msg.To,
			SentAt:      send.Time,
			DeliveredAt: deliver.Time,
			Wire:        deliver.Time - send.Time,
		}
		rev = append(rev, hop)
		seq = send.Parent
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	// Think time: gap between the previous hop's delivery (0 for the root)
	// and this hop's send.
	prevDelivered := int64(0)
	for i := range rev {
		rev[i].Think = rev[i].SentAt - prevDelivered
		prevDelivered = rev[i].DeliveredAt
	}
	d.Path = rev
	d.Hops = len(rev)
	shares := make(map[string]*KindShare)
	for _, h := range rev {
		d.Wire += h.Wire
		d.Think += h.Think
		s, ok := shares[h.Kind]
		if !ok {
			s = &KindShare{Kind: h.Kind}
			shares[h.Kind] = s
		}
		s.Hops++
		s.Wire += h.Wire
		s.Think += h.Think
	}
	for _, s := range shares {
		d.ByKind = append(d.ByKind, *s)
	}
	sort.Slice(d.ByKind, func(i, j int) bool { return d.ByKind[i].Kind < d.ByKind[j].Kind })
	return d
}

// payloadKind names a message's payload kind ("?" for a missing payload).
func payloadKind(m types.Message) string {
	if m.Payload == nil {
		return "?"
	}
	return m.Payload.Kind().String()
}

// Totals aggregates the per-decision kind shares across every decision —
// the per-kind critical-path attribution experiment E16 tabulates.
func (r Report) Totals() []KindShare {
	shares := make(map[string]*KindShare)
	for _, d := range r.Decisions {
		for _, ks := range d.ByKind {
			s, ok := shares[ks.Kind]
			if !ok {
				s = &KindShare{Kind: ks.Kind}
				shares[ks.Kind] = s
			}
			s.Hops += ks.Hops
			s.Wire += ks.Wire
			s.Think += ks.Think
		}
	}
	out := make([]KindShare, 0, len(shares))
	for _, s := range shares {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// MeanDecisionTime returns the mean decision time across decisions (0 with
// none).
func (r Report) MeanDecisionTime() float64 {
	if len(r.Decisions) == 0 {
		return 0
	}
	var sum int64
	for _, d := range r.Decisions {
		sum += d.At
	}
	return float64(sum) / float64(len(r.Decisions))
}

// String renders a compact human summary: one line per decision plus the
// aggregated kind attribution.
func (r Report) String() string {
	var b strings.Builder
	for _, d := range r.Decisions {
		trunc := ""
		if d.Truncated {
			trunc = " (truncated)"
		}
		fmt.Fprintf(&b, "%v decided %v in round %d at t=%d: %d hops, wire=%d think=%d%s\n",
			d.P, d.V, d.Round, d.At, d.Hops, d.Wire, d.Think, trunc)
	}
	if totals := r.Totals(); len(totals) > 0 {
		b.WriteString("critical-path attribution by kind:\n")
		for _, s := range totals {
			fmt.Fprintf(&b, "  %-10s hops=%-5d wire=%-8d think=%d\n", s.Kind, s.Hops, s.Wire, s.Think)
		}
	}
	return b.String()
}
