package obs_test

// Critical-path tests: a hand-built trace with known timings pins the exact
// decomposition, and a real traced consensus run pins the structural
// invariants (every decision reconstructs to a chain whose wire + think
// times sum to the decision time).

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/trace"
	"repro/internal/types"
)

// TestAnalyzeSyntheticChain: a three-event causal chain decomposes exactly.
//
//	t=0  p1 sends seq 1 (Start)          wire 5
//	t=5  p2 delivers seq 1, thinks 2
//	t=7  p2 sends seq 2 (parent 1)       wire 4
//	t=11 p1 delivers seq 2, decides
func TestAnalyzeSyntheticChain(t *testing.T) {
	pay := &types.DecidePayload{V: types.One}
	events := []trace.Event{
		{Time: 0, Kind: trace.KindSend, P: 1, Seq: 1, Msg: types.Message{From: 1, To: 2, Payload: pay}},
		{Time: 5, Kind: trace.KindDeliver, P: 2, Seq: 1, Msg: types.Message{From: 1, To: 2, Payload: pay}},
		{Time: 7, Kind: trace.KindSend, P: 2, Seq: 2, Parent: 1, Msg: types.Message{From: 2, To: 1, Payload: pay}},
		{Time: 11, Kind: trace.KindDeliver, P: 1, Seq: 2, Msg: types.Message{From: 2, To: 1, Payload: pay}},
		{Time: 11, Kind: trace.KindDecide, P: 1, Parent: 2, V: types.One, Round: 1},
	}
	r := obs.Analyze(events)
	if len(r.Decisions) != 1 {
		t.Fatalf("decisions = %d, want 1", len(r.Decisions))
	}
	d := r.Decisions[0]
	if d.P != 1 || d.V != types.One || d.At != 11 || d.Truncated {
		t.Fatalf("decision = %+v", d)
	}
	if d.Hops != 2 {
		t.Fatalf("hops = %d, want 2", d.Hops)
	}
	if d.Wire != 9 || d.Think != 2 {
		t.Fatalf("wire/think = %d/%d, want 9/2", d.Wire, d.Think)
	}
	if d.Wire+d.Think != d.At {
		t.Fatalf("wire+think = %d, want decision time %d", d.Wire+d.Think, d.At)
	}
	// Causal order: root hop first.
	if d.Path[0].Seq != 1 || d.Path[1].Seq != 2 {
		t.Fatalf("path order = %d,%d, want 1,2", d.Path[0].Seq, d.Path[1].Seq)
	}
	if d.Path[0].Think != 0 || d.Path[1].Think != 2 {
		t.Fatalf("think per hop = %d,%d, want 0,2", d.Path[0].Think, d.Path[1].Think)
	}
	if len(d.ByKind) != 1 || d.ByKind[0].Kind != "DECIDE" || d.ByKind[0].Hops != 2 {
		t.Fatalf("by-kind = %+v", d.ByKind)
	}
}

// TestAnalyzeTruncatedChain: a decide whose parent send never made it into
// the trace is flagged, not fabricated.
func TestAnalyzeTruncatedChain(t *testing.T) {
	events := []trace.Event{
		{Time: 9, Kind: trace.KindDecide, P: 3, Parent: 77, V: types.Zero, Round: 2},
	}
	r := obs.Analyze(events)
	if len(r.Decisions) != 1 || !r.Decisions[0].Truncated || r.Decisions[0].Hops != 0 {
		t.Fatalf("report = %+v", r)
	}
}

// TestAnalyzeRealRun: every decision of a traced Bracha run reconstructs to
// a non-trivial chain satisfying the wire+think identity, ending at a
// Start-emitted root.
func TestAnalyzeRealRun(t *testing.T) {
	res, err := runner.Run(runner.Config{
		N: 4, F: 1,
		Protocol:  runner.ProtocolBracha,
		Coin:      runner.CoinCommon,
		Adversary: runner.AdvNone,
		Scheduler: runner.SchedUniform,
		Inputs:    runner.InputSplit,
		Seed:      42,
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := obs.Analyze(res.Recorder.Events())
	if len(r.Decisions) != 4 {
		t.Fatalf("decisions = %d, want 4", len(r.Decisions))
	}
	for _, d := range r.Decisions {
		if d.Truncated {
			t.Fatalf("%v: truncated chain in an untruncated trace", d.P)
		}
		if d.Hops == 0 {
			t.Fatalf("%v: empty critical path", d.P)
		}
		if d.Wire+d.Think != d.At {
			t.Fatalf("%v: wire %d + think %d != decision time %d", d.P, d.Wire, d.Think, d.At)
		}
		if root := d.Path[0]; root.SentAt != root.Think {
			// The root hop's think time is its send time by definition.
			t.Fatalf("%v: root think %d != root send time %d", d.P, root.Think, root.SentAt)
		}
	}
	if r.MeanDecisionTime() <= 0 {
		t.Fatal("mean decision time not positive")
	}
	if s := r.String(); s == "" {
		t.Fatal("empty rendering")
	}
}
