package coin

// Low-watermark tests for the dealer: pruning must release memoized
// sharings, refuse to re-deal pruned rounds (a re-deal would mint shares
// whose MACs contradict ones already on the wire), and leave the dealing
// stream of live rounds byte-identical to an unpruned dealer's.

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

func TestDealerPruneReleasesRounds(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	d := NewDealer(spec, 11)
	for r := 1; r <= 8; r++ {
		if s, _ := d.ShareFor(1, r); s == "" {
			t.Fatalf("round %d: empty share before pruning", r)
		}
	}
	if got := d.RoundsRetained(); got != 8 {
		t.Fatalf("RoundsRetained = %d, want 8", got)
	}
	d.Prune(6)
	if got := d.RoundsRetained(); got != 3 {
		t.Errorf("RoundsRetained after Prune(6) = %d, want 3 (rounds 6..8)", got)
	}
	// The watermark never regresses.
	d.Prune(2)
	if got := d.RoundsRetained(); got != 3 {
		t.Errorf("Prune(2) after Prune(6) changed retention: %d, want 3", got)
	}
}

// TestDealerPrunedRoundNeverRedealt: asking for a pruned round returns
// empty strings and must not touch the RNG — the sharings of rounds dealt
// afterwards stay identical to an unpruned dealer's, which is what keeps
// replays byte-stable under the low-watermark.
func TestDealerPrunedRoundNeverRedealt(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	pruned := NewDealer(spec, 42)
	plain := NewDealer(spec, 42)
	for r := 1; r <= 5; r++ {
		ps, pm := pruned.ShareFor(2, r)
		qs, qm := plain.ShareFor(2, r)
		if ps != qs || pm != qm {
			t.Fatalf("round %d: dealers with one seed disagree before pruning", r)
		}
	}
	pruned.Prune(4)
	if s, m := pruned.ShareFor(2, 2); s != "" || m != "" {
		t.Errorf("pruned round 2 re-dealt: share %q mac %q, want empty", s, m)
	}
	if v := pruned.SecretFor(2); v != types.Zero {
		t.Errorf("pruned round 2 secret = %v, want zero value", v)
	}
	// Rounds dealt after the prune must match the unpruned stream exactly:
	// the refusal above consumed no randomness.
	for r := 6; r <= 10; r++ {
		ps, pm := pruned.ShareFor(2, r)
		qs, qm := plain.ShareFor(2, r)
		if ps == "" || ps != qs || pm != qm {
			t.Errorf("round %d: post-prune dealing diverged from the unpruned stream", r)
		}
	}
}

// TestDealerVerifiesSharesForPrunedRounds: verification is keyed by round-
// independent MAC keys, so a straggler's ancient share still verifies after
// the sharing itself was released — the catch-up half of the dealer's
// windowing contract (the per-process endpoints drop such shares by their
// own floor before any lookup).
func TestDealerVerifiesSharesForPrunedRounds(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	d := NewDealer(spec, 7)
	share, mac := d.ShareFor(3, 1)
	if share == "" {
		t.Fatal("no share for round 1")
	}
	d.Prune(10)
	if !d.VerifyShare(3, 1, share, mac) {
		t.Error("genuine share for a pruned round no longer verifies")
	}
	if d.VerifyShare(2, 1, share, mac) {
		t.Error("share verified for the wrong process after pruning")
	}
}
