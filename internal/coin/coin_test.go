package coin

import (
	"math"
	"testing"

	"repro/internal/quorum"
	"repro/internal/shamir"
	"repro/internal/types"
)

func TestLocalCoinDeterministic(t *testing.T) {
	a := NewLocal(7)
	b := NewLocal(7)
	for r := 1; r <= 100; r++ {
		va, oka := a.Value(r)
		vb, okb := b.Value(r)
		if !oka || !okb {
			t.Fatalf("local coin unavailable at round %d", r)
		}
		if va != vb {
			t.Fatalf("same seed diverged at round %d", r)
		}
		if !va.Valid() {
			t.Fatalf("invalid coin value %v", va)
		}
	}
}

func TestLocalCoinIsFair(t *testing.T) {
	// Over many (seed, round) pairs, the bit frequency must be near 1/2.
	ones := 0
	const trials = 20000
	for i := 0; i < trials; i++ {
		c := NewLocal(int64(i))
		v, _ := c.Value(i % 50)
		if v == types.One {
			ones++
		}
	}
	ratio := float64(ones) / trials
	if math.Abs(ratio-0.5) > 0.02 {
		t.Errorf("coin bias: P(1) = %.3f", ratio)
	}
}

func TestLocalCoinIndependentAcrossSeeds(t *testing.T) {
	// Different seeds must disagree on some rounds (they are independent
	// flips, not copies).
	a := NewLocal(1)
	b := NewLocal(2)
	same := 0
	for r := 1; r <= 200; r++ {
		va, _ := a.Value(r)
		vb, _ := b.Value(r)
		if va == vb {
			same++
		}
	}
	if same == 0 || same == 200 {
		t.Errorf("seeds 1 and 2 agreed on %d/200 rounds; expected a mix", same)
	}
}

func TestLocalCoinNoMessages(t *testing.T) {
	c := NewLocal(1)
	if msgs := c.Release(3); msgs != nil {
		t.Errorf("local coin emitted messages: %v", msgs)
	}
	c.HandleShare(1, &types.CoinSharePayload{Round: 3}) // must be a no-op
	if v, ok := c.Value(3); !ok || !v.Valid() {
		t.Error("local coin must stay available")
	}
}

func TestIdealCoinMatching(t *testing.T) {
	a := NewIdeal(99)
	b := NewIdeal(99)
	for r := 1; r <= 50; r++ {
		va, _ := a.Value(r)
		vb, _ := b.Value(r)
		if va != vb {
			t.Fatalf("ideal coin mismatch at round %d", r)
		}
	}
	if msgs := a.Release(1); msgs != nil {
		t.Error("ideal coin must not send messages")
	}
	a.HandleShare(2, nil) // must not panic
}

func newCommonSet(t *testing.T, n, f int, seed int64) (*Dealer, []*Common) {
	t.Helper()
	spec := quorum.MustNew(n, f)
	d := NewDealer(spec, seed)
	peers := types.Processes(n)
	cs := make([]*Common, n)
	for i := range cs {
		cs[i] = NewCommon(peers[i], peers, d)
	}
	return d, cs
}

// deliverAll routes every share message among the given endpoints.
func deliverAll(cs []*Common, msgs []types.Message) {
	for _, m := range msgs {
		p, ok := m.Payload.(*types.CoinSharePayload)
		if !ok {
			continue
		}
		idx := int(m.To) - 1
		if idx >= 0 && idx < len(cs) {
			cs[idx].HandleShare(m.From, p)
		}
	}
}

func TestCommonCoinMatchingAndTermination(t *testing.T) {
	_, cs := newCommonSet(t, 7, 2, 11)
	for round := 1; round <= 20; round++ {
		var all []types.Message
		for _, c := range cs {
			all = append(all, c.Release(round)...)
		}
		if len(all) != 7*7 {
			t.Fatalf("round %d: %d share messages, want 49", round, len(all))
		}
		deliverAll(cs, all)
		var first types.Value
		for i, c := range cs {
			v, ok := c.Value(round)
			if !ok {
				t.Fatalf("round %d: process %d has no value", round, i+1)
			}
			if i == 0 {
				first = v
			} else if v != first {
				t.Fatalf("round %d: mismatch %v vs %v", round, v, first)
			}
		}
	}
}

func TestCommonCoinMatchesDealerSecret(t *testing.T) {
	d, cs := newCommonSet(t, 4, 1, 5)
	var all []types.Message
	for _, c := range cs {
		all = append(all, c.Release(9)...)
	}
	deliverAll(cs, all)
	v, ok := cs[0].Value(9)
	if !ok {
		t.Fatal("no value")
	}
	if v != d.SecretFor(9) {
		t.Errorf("reconstructed %v, dealer secret %v", v, d.SecretFor(9))
	}
}

func TestCommonCoinWithWithheldShares(t *testing.T) {
	// f processes withhold (Byzantine silence): the rest must still
	// reconstruct from n−f ≥ f+1 shares.
	_, cs := newCommonSet(t, 7, 2, 3)
	var all []types.Message
	for i, c := range cs {
		if i < 2 { // p1, p2 Byzantine-silent
			continue
		}
		all = append(all, c.Release(1)...)
	}
	deliverAll(cs, all)
	for i := 2; i < 7; i++ {
		if _, ok := cs[i].Value(1); !ok {
			t.Fatalf("p%d failed to reconstruct with %d shares", i+1, 5)
		}
	}
}

func TestCommonCoinInsufficientShares(t *testing.T) {
	// Only f processes release: nobody reconstructs (threshold is f+1).
	_, cs := newCommonSet(t, 7, 2, 3)
	var all []types.Message
	for i := 0; i < 2; i++ {
		all = append(all, cs[i].Release(1)...)
	}
	deliverAll(cs, all)
	for i, c := range cs {
		if _, ok := c.Value(1); ok {
			t.Fatalf("p%d reconstructed from only f shares", i+1)
		}
	}
}

func TestCommonCoinRejectsForgedShares(t *testing.T) {
	d, cs := newCommonSet(t, 4, 1, 8)
	target := cs[3]

	// A fabricated share with a bogus MAC must be ignored.
	target.HandleShare(1, &types.CoinSharePayload{Round: 1, Share: "\x01\x42", MAC: "nope"})
	// A genuine share replayed under a different sender must be ignored.
	share, mac := d.ShareFor(1, 1)
	target.HandleShare(2, &types.CoinSharePayload{Round: 1, Share: share, MAC: mac})
	// A genuine share replayed for a different round must be ignored.
	target.HandleShare(1, &types.CoinSharePayload{Round: 2, Share: share, MAC: mac})

	if _, ok := target.Value(1); ok {
		t.Fatal("reconstructed from forged/replayed shares")
	}

	// Two genuine shares (f+1 = 2) must then succeed.
	target.HandleShare(1, &types.CoinSharePayload{Round: 1, Share: share, MAC: mac})
	s2, m2 := d.ShareFor(2, 1)
	target.HandleShare(2, &types.CoinSharePayload{Round: 1, Share: s2, MAC: m2})
	v, ok := target.Value(1)
	if !ok || v != d.SecretFor(1) {
		t.Fatalf("genuine shares failed: ok=%v v=%v want %v", ok, v, d.SecretFor(1))
	}
}

func TestCommonCoinDuplicateSharesDoNotHelp(t *testing.T) {
	d, cs := newCommonSet(t, 7, 2, 8)
	target := cs[0]
	share, mac := d.ShareFor(1, 1)
	for i := 0; i < 10; i++ {
		target.HandleShare(1, &types.CoinSharePayload{Round: 1, Share: share, MAC: mac})
	}
	if _, ok := target.Value(1); ok {
		t.Fatal("one process's share repeated 10 times reached the threshold")
	}
}

func TestCommonCoinReleaseIdempotent(t *testing.T) {
	_, cs := newCommonSet(t, 4, 1, 8)
	first := cs[0].Release(1)
	if len(first) != 4 {
		t.Fatalf("first release sent %d messages, want 4", len(first))
	}
	if again := cs[0].Release(1); again != nil {
		t.Fatalf("second release sent %d messages, want 0", len(again))
	}
}

func TestCommonCoinIsFairAcrossRounds(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	d := NewDealer(spec, 1234)
	ones := 0
	const rounds = 2000
	for r := 1; r <= rounds; r++ {
		if d.SecretFor(r) == types.One {
			ones++
		}
	}
	ratio := float64(ones) / rounds
	if math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("dealer bias: P(1) = %.3f", ratio)
	}
}

func TestDealerDeterministicAcrossInstances(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	d1 := NewDealer(spec, 77)
	d2 := NewDealer(spec, 77)
	for r := 1; r <= 50; r++ {
		if d1.SecretFor(r) != d2.SecretFor(r) {
			t.Fatalf("dealers with equal seeds diverged at round %d", r)
		}
	}
	// And lazily dealing in a different order must not change outcomes for
	// rounds already dealt... rounds dealt in different orders may differ —
	// determinism is guaranteed for identical access patterns, which is what
	// replays have. Verify same-order access matches share-wise.
	s1, m1 := d1.ShareFor(2, 3)
	s2, m2 := d2.ShareFor(2, 3)
	if s1 != s2 || m1 != m2 {
		t.Error("share predistribution diverged across identical dealers")
	}
}

func TestDealerShareForUnknownProcess(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	d := NewDealer(spec, 1)
	if s, m := d.ShareFor(99, 1); s != "" || m != "" {
		t.Error("out-of-range process must get empty shares")
	}
	if s, m := d.ShareFor(0, 1); s != "" || m != "" {
		t.Error("process 0 must get empty shares")
	}
}

func TestShareCodec(t *testing.T) {
	s, ok := decodeShare("")
	if ok {
		t.Errorf("decoded empty share: %+v", s)
	}
	if _, ok := decodeShare("x"); ok {
		t.Error("decoded 1-byte share")
	}
	orig := encodeShare(shamir.Share{X: 3, Y: []byte{9, 8}})
	got, ok := decodeShare(orig)
	if !ok || got.X != 3 || len(got.Y) != 2 || got.Y[0] != 9 {
		t.Errorf("round trip failed: %+v", got)
	}
}
