// Package coin provides the randomization sources of Bracha's protocol:
//
//   - Local: each process flips a private fair coin (what the PODC-84
//     protocol assumes by default, following Ben-Or). Termination holds with
//     probability 1, but a full-information adversary can keep disagreement
//     alive for an expected-exponential number of rounds.
//   - Common: a Rabin-style predistributed common coin. A trusted dealer
//     Shamir-shares one random bit per round (threshold f+1, so f Byzantine
//     processes learn nothing); processes exchange authenticated shares when
//     the protocol releases the coin and reconstruct the same bit. This is
//     the variant that gives constant expected rounds.
//   - Ideal: a test-only coin that is common and immediate (no messages),
//     for isolating consensus logic from coin mechanics in unit tests.
//
// All coins are deterministic functions of their seeds, keeping experiment
// runs reproducible.
//
// # Windowing contract
//
// Per-round coin state is pruned at two levels with two distinct floors.
// Each process's Common endpoint implements Pruner: the consensus core
// prunes it by the *local* decided frontier, dropping stored shares, MACs,
// release flags, and memoized values below the floor, and floor-checking
// late shares before any work — a pruned round's share is dropped on
// arrival, never stored, never answered. The shared Dealer prunes its
// memoized sharings by a *cluster-wide low-watermark* (the minimum current
// round across all processes, threaded through the runner), because a round
// only one straggler still needs must stay dealt until that straggler
// passes it; see the contract on Dealer for why pruned rounds are never
// re-dealt. What a pruned round promises late messages: silence — exactly
// the messages an unpruned endpoint would have sent, since release happens
// only after the round's coin can no longer be queried.
package coin

import (
	"repro/internal/types"
)

// Coin is the interface the consensus core uses. Implementations are driven
// entirely by the node's event loop: no goroutines, no clocks.
type Coin interface {
	// Release begins obtaining the coin for a round and returns any
	// messages to send (share broadcasts for the common coin). Calling
	// Release again for the same round is a no-op.
	Release(round int) []types.Message
	// HandleShare processes an incoming coin-share payload. Invalid or
	// irrelevant shares are ignored (Byzantine shares must not block or
	// bias reconstruction).
	HandleShare(from types.ProcessID, p *types.CoinSharePayload)
	// Value returns the coin for the round, if available. Local coins are
	// always available; the common coin becomes available once f+1 valid
	// shares for the round arrived (after Release).
	Value(round int) (types.Value, bool)
}

// Pruner is an optional Coin extension for per-round state pruning. Prune
// releases every per-round resource (stored shares, MACs, memoized values)
// for rounds below the floor, and drops late shares for those rounds on
// arrival instead of storing them. The consensus core calls it as rounds
// decide, so long executions keep only a sliding window of coin state; a
// pruned round's value must never be asked for again (the core only queries
// its current round). Coins without per-round state (Local, Ideal) simply
// don't implement it.
type Pruner interface {
	Prune(below int)
}

// mix64 is SplitMix64's finalizer: a bijective avalanche mix used to derive
// independent-looking bits from (seed, round) pairs deterministically.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// bitFor derives a fair bit from a seed and round.
func bitFor(seed int64, round int) types.Value {
	return types.Value(mix64(mix64(uint64(seed))^uint64(round)) & 1)
}

// Local is the Ben-Or-style private coin: every process flips independently.
type Local struct {
	seed int64
}

// NewLocal returns a private coin for one process. Distinct processes must
// use distinct seeds (the harness derives them from the run seed and the
// process ID).
func NewLocal(seed int64) *Local { return &Local{seed: seed} }

// Release implements Coin (no messages needed).
func (l *Local) Release(int) []types.Message { return nil }

// HandleShare implements Coin (local coins have no shares).
func (l *Local) HandleShare(types.ProcessID, *types.CoinSharePayload) {}

// Value implements Coin; a local coin is always available.
func (l *Local) Value(round int) (types.Value, bool) { return bitFor(l.seed, round), true }

// Ideal is a test-only common coin: all processes constructed with the same
// seed observe the same bit, immediately, with no message exchange. It
// deliberately has no unpredictability — adversarial tests exploit exactly
// that to script worst-case schedules.
type Ideal struct {
	seed int64
}

// NewIdeal returns an ideal coin; give every process the same seed.
func NewIdeal(seed int64) *Ideal { return &Ideal{seed: seed} }

// Release implements Coin.
func (c *Ideal) Release(int) []types.Message { return nil }

// HandleShare implements Coin.
func (c *Ideal) HandleShare(types.ProcessID, *types.CoinSharePayload) {}

// Value implements Coin.
func (c *Ideal) Value(round int) (types.Value, bool) { return bitFor(c.seed, round), true }
