package coin

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/auth"
	"repro/internal/quorum"
	"repro/internal/shamir"
	"repro/internal/types"
)

// Dealer is the trusted setup of the Rabin-style common coin. For every
// round it samples one random bit, Shamir-shares it with threshold f+1 over
// GF(2^8), and MACs each share so a Byzantine process cannot inject
// fabricated shares. Rounds are dealt lazily and memoized, so the coin
// supports unbounded protocol executions; with a fixed seed the dealing is
// reproducible.
//
// The trust model is exactly the paper's (via Rabin, FOCS 1983): the dealer
// is honest and acts only before the execution; during the execution it is
// just a lookup table each process holds a slice of.
//
// # Windowing contract (the cluster low-watermark)
//
// The memoized per-round sharings are shared state: every process's Common
// endpoint reads the same table, so no single process may prune it by its
// own round. Prune takes a *cluster-wide low-watermark* — a round no
// process will ever release or look up again, in practice the minimum
// current round across the cluster (rounds only advance, and a process only
// calls ShareFor for its current round), which the runner threads through
// its delivery loop. Below the watermark the sharings and secrets are
// dropped and never re-dealt: ShareFor for a pruned round returns empty
// strings rather than touching the RNG, because re-dealing would mint a
// *different* sharing whose MACs disagree with shares already on the wire.
// Share *verification* needs no per-round state at all (the MAC keys are
// round-independent), so a straggler's ancient share still verifies at
// peers — whose own Common endpoints floor-check and drop it before any
// lookup — and the watermark never threatens totality or agreement.
type Dealer struct {
	spec quorum.Spec
	keys *auth.DealerKeys

	mu      sync.Mutex
	rng     *rand.Rand
	rounds  map[int][]shamir.Share
	secrets map[int]types.Value
	// floor is the cluster low-watermark: rounds below it are pruned and
	// must never be dealt (or re-dealt).
	floor int
}

// NewDealer creates a dealer for the given system spec, deterministically
// derived from seed. Shamir sharing over GF(2^8) limits the system to
// n ≤ 255 processes.
func NewDealer(spec quorum.Spec, seed int64) *Dealer {
	return &Dealer{
		spec:    spec,
		keys:    auth.NewDealerKeys(auth.DeriveKey(seedKey(seed), "dealer")),
		rng:     rand.New(rand.NewSource(seed)),
		rounds:  make(map[int][]shamir.Share),
		secrets: make(map[int]types.Value),
	}
}

func seedKey(seed int64) []byte {
	return []byte(fmt.Sprintf("coin-dealer-%d", seed))
}

// deal lazily creates the sharing for a round. Rounds below the low-
// watermark are never dealt: their original sharing is gone, and a re-deal
// would draw fresh randomness and contradict shares already distributed.
func (d *Dealer) deal(round int) []shamir.Share {
	d.mu.Lock()
	defer d.mu.Unlock()
	if round < d.floor {
		return nil
	}
	if ss, ok := d.rounds[round]; ok {
		return ss
	}
	bit := types.Value(d.rng.Intn(2))
	// One secret byte whose low bit is the coin; threshold f+1 means f
	// colluding processes hold a degree-f polynomial's worth of nothing.
	ss, err := shamir.Split([]byte{byte(bit)}, d.spec.N(), d.spec.F()+1, d.rng)
	if err != nil {
		// Split fails only on invalid (n, threshold); the quorum.Spec
		// invariants (n ≥ 1, 0 ≤ f < n) rule that out.
		panic(fmt.Sprintf("coin: dealing round %d: %v", round, err))
	}
	d.rounds[round] = ss
	d.secrets[round] = bit
	return ss
}

// ShareFor returns process p's authenticated share for a round — the
// predistribution lookup. It returns wire-ready opaque strings.
func (d *Dealer) ShareFor(p types.ProcessID, round int) (share, mac string) {
	ss := d.deal(round)
	idx := int(p) - 1
	if idx < 0 || idx >= len(ss) {
		return "", ""
	}
	raw := encodeShare(ss[idx])
	return raw, string(d.keys.SignShare(p, round, []byte(raw)))
}

// VerifyShare checks that a received share is the one dealt to p for round.
func (d *Dealer) VerifyShare(p types.ProcessID, round int, share, mac string) bool {
	return d.keys.VerifyShare(p, round, []byte(share), []byte(mac))
}

// SecretFor exposes the round's bit. It exists for tests and for modelling
// the strongest adversary (one that has broken the coin's secrecy);
// protocol code never calls it. For rounds below the low-watermark the
// secret is gone; the zero value is returned.
func (d *Dealer) SecretFor(round int) types.Value {
	d.deal(round)
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.secrets[round]
}

// Prune releases the memoized sharings and secrets of every round below the
// cluster low-watermark (see the windowing contract above). The caller
// asserts that no process will release or query those rounds again; the
// runner derives that from the minimum current round across the cluster.
// Pruned rounds are never re-dealt — ShareFor answers them with empty
// strings — so the dealing stream for live rounds is unaffected and replays
// stay byte-identical.
func (d *Dealer) Prune(below int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if below <= d.floor {
		return
	}
	d.floor = below
	for r := range d.rounds {
		if r < below {
			delete(d.rounds, r)
		}
	}
	for r := range d.secrets {
		if r < below {
			delete(d.secrets, r)
		}
	}
}

// RoundsRetained returns how many per-round sharings the dealer currently
// memoizes — bounded by the spread between the fastest process's round and
// the low-watermark under runner-driven pruning; linear in rounds without.
func (d *Dealer) RoundsRetained() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.rounds)
}

// Spec returns the system spec the dealer was set up for.
func (d *Dealer) Spec() quorum.Spec { return d.spec }

// encodeShare flattens a share to an opaque string: X followed by Y.
func encodeShare(s shamir.Share) string {
	buf := make([]byte, 0, 1+len(s.Y))
	buf = append(buf, s.X)
	buf = append(buf, s.Y...)
	return string(buf)
}

// decodeShare parses encodeShare output.
func decodeShare(raw string) (shamir.Share, bool) {
	if len(raw) < 2 {
		return shamir.Share{}, false
	}
	return shamir.Share{X: raw[0], Y: []byte(raw[1:])}, true
}

// Common is one process's endpoint of the dealer coin.
type Common struct {
	me     types.ProcessID
	peers  []types.ProcessID
	spec   quorum.Spec
	dealer *Dealer

	released map[int]bool
	shares   map[int]map[types.ProcessID]shamir.Share
	values   map[int]types.Value
	// floor is the pruning watermark: per-round state below it has been
	// released and late shares for those rounds are dropped on arrival.
	floor int
}

// NewCommon returns the coin endpoint for process me. All processes of a run
// share the same dealer (their slice of the predistributed table) and the
// same peer list.
func NewCommon(me types.ProcessID, peers []types.ProcessID, dealer *Dealer) *Common {
	ps := append([]types.ProcessID(nil), peers...)
	return &Common{
		me:       me,
		peers:    ps,
		spec:     dealer.Spec(),
		dealer:   dealer,
		released: make(map[int]bool),
		shares:   make(map[int]map[types.ProcessID]shamir.Share),
		values:   make(map[int]types.Value),
	}
}

var _ Coin = (*Common)(nil)

// Release implements Coin: broadcast this process's share for the round
// (including to itself, so its own share is counted on delivery).
func (c *Common) Release(round int) []types.Message {
	if round < c.floor || c.released[round] {
		return nil
	}
	c.released[round] = true
	share, mac := c.dealer.ShareFor(c.me, round)
	if share == "" {
		return nil
	}
	p := &types.CoinSharePayload{Round: round, Share: share, MAC: mac}
	return types.Broadcast(c.me, c.peers, p)
}

// HandleShare implements Coin: verify, store, and reconstruct at f+1 valid
// shares. Shares for pruned rounds are dropped before any allocation or MAC
// work: a straggler's ancient share must not regrow released state.
func (c *Common) HandleShare(from types.ProcessID, p *types.CoinSharePayload) {
	if p == nil || p.Round < c.floor {
		return
	}
	if _, done := c.values[p.Round]; done {
		return
	}
	if !c.dealer.VerifyShare(from, p.Round, p.Share, p.MAC) {
		return // forged or corrupted share
	}
	s, ok := decodeShare(p.Share)
	if !ok || s.X != byte(from) {
		return // a genuine MAC binds X to the sender, but stay defensive
	}
	byRound := c.shares[p.Round]
	if byRound == nil {
		byRound = make(map[types.ProcessID]shamir.Share)
		c.shares[p.Round] = byRound
	}
	byRound[from] = s
	threshold := c.spec.F() + 1
	if len(byRound) < threshold {
		return
	}
	ss := make([]shamir.Share, 0, len(byRound))
	for _, sh := range byRound {
		ss = append(ss, sh)
	}
	// Deterministic reconstruction order (any f+1 valid shares agree, but
	// determinism keeps replays byte-identical).
	sortShares(ss)
	secret, err := shamir.Reconstruct(ss[:threshold], threshold)
	if err != nil {
		return
	}
	c.values[p.Round] = types.Value(secret[0] & 1)
	delete(c.shares, p.Round) // no longer needed
}

// Value implements Coin.
func (c *Common) Value(round int) (types.Value, bool) {
	v, ok := c.values[round]
	return v, ok
}

var _ Pruner = (*Common)(nil)

// Prune implements Pruner: release the release-flags, unreconstructed share
// sets (the share+MAC strings are the dominant per-round retention), and
// memoized values of every round below the floor. The maps stay bounded by
// the pruning window, so arbitrarily long executions keep a constant coin
// footprint. Message behaviour is untouched: pruned rounds were already
// released, and their values are never queried again.
func (c *Common) Prune(below int) {
	if below <= c.floor {
		return
	}
	c.floor = below
	for r := range c.released {
		if r < below {
			delete(c.released, r)
		}
	}
	for r := range c.shares {
		if r < below {
			delete(c.shares, r)
		}
	}
	for r := range c.values {
		if r < below {
			delete(c.values, r)
		}
	}
}

// sortShares orders shares by X (insertion sort; at most f+1 ≤ 255 items).
func sortShares(ss []shamir.Share) {
	for i := 1; i < len(ss); i++ {
		for j := i; j > 0 && ss[j].X < ss[j-1].X; j-- {
			ss[j], ss[j-1] = ss[j-1], ss[j]
		}
	}
}
