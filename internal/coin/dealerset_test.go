package coin

import (
	"testing"

	"repro/internal/quorum"
)

func TestDealerSetPerSlotDealersAreIndependentAndDeterministic(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	a := NewDealerSet(spec, 7)
	b := NewDealerSet(spec, 7)

	// Same slot, same seed → bit-identical shares; different slots draw
	// independent randomness (at least one differing share in 8 rounds).
	differ := false
	for round := 1; round <= 8; round++ {
		sa, ma := a.For(3).ShareFor(1, round)
		sb, mb := b.For(3).ShareFor(1, round)
		if sa != sb || ma != mb {
			t.Fatalf("slot 3 round %d: same seed dealt different shares", round)
		}
		s2, _ := a.For(4).ShareFor(1, round)
		if s2 != sa {
			differ = true
		}
	}
	if !differ {
		t.Fatal("slots 3 and 4 dealt identical sharings across 8 rounds")
	}
	if a.For(3) != a.For(3) {
		t.Fatal("For is not memoized")
	}
}

func TestDealerSetReleaseBelowBoundsRetention(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	s := NewDealerSet(spec, 11)
	for slot := 0; slot < 64; slot++ {
		s.For(slot).ShareFor(1, 1) // deal one round per slot
	}
	if got := s.DealersRetained(); got != 64 {
		t.Fatalf("retained %d dealers, want 64", got)
	}
	if got := s.RoundsRetained(); got != 64 {
		t.Fatalf("retained %d dealt rounds, want 64", got)
	}
	if got := s.ReleaseBelow(48); got != 48 {
		t.Fatalf("released %d dealers, want 48", got)
	}
	if got := s.DealersRetained(); got != 16 {
		t.Fatalf("retained %d dealers after release, want 16", got)
	}
	// Release is monotone; a lower cut releases nothing.
	if got := s.ReleaseBelow(10); got != 0 {
		t.Fatalf("lower release dropped %d dealers", got)
	}

	// A straggler's late lookup below the cut reconstructs the dealer
	// deterministically: identical shares, verifiable MACs.
	fresh := NewDealerSet(spec, 11)
	share, mac := s.For(5).ShareFor(2, 1)
	wantShare, wantMAC := fresh.For(5).ShareFor(2, 1)
	if share != wantShare || mac != wantMAC {
		t.Fatal("re-created dealer dealt different shares than the original")
	}
	if !s.For(5).VerifyShare(2, 1, share, mac) {
		t.Fatal("re-created dealer rejects its own share")
	}
	// The re-created dealer is memoized again and released by the floor on
	// the next release call.
	s.ReleaseBelow(49)
	if got := s.DealersRetained(); got != 15 {
		t.Fatalf("retained %d dealers after re-release, want 15", got)
	}
}
