package coin

import (
	"sync"

	"repro/internal/quorum"
)

// DealerSet manages the per-slot dealers of a replicated log. Every slot's
// consensus instance needs its own dealer (instances must not share coin
// state; see core.Config.Instance), so a long-lived log accumulates one
// dealer — sharings, secrets, MAC keys — per slot ever started: the last
// cluster-shared retainer that grows without bound on infinite executions.
//
// ReleaseBelow is the checkpoint hook that retires them: once a cut is
// certified, no correct process will ever run (or re-run) a slot below it —
// a process missing those slots is served state transfer, not consensus —
// so the dealers below the cut are dead. Release is idempotent and, unlike
// a round-level dealer prune, may safely "re-create" a released dealer on a
// late For call: per-slot seeds are derived deterministically, so a
// re-created dealer deals bit-identical sharings and its MACs agree with
// every share already on the wire. (Contrast Dealer.Prune, where re-dealing
// *within* one dealer would contradict distributed shares; here the whole
// dealer is reconstructed from its seed, not re-randomized.)
type DealerSet struct {
	mu      sync.Mutex
	spec    quorum.Spec
	seed    int64
	dealers map[int]*Dealer
	floor   int
}

// NewDealerSet creates a per-slot dealer registry deterministically derived
// from seed.
func NewDealerSet(spec quorum.Spec, seed int64) *DealerSet {
	return &DealerSet{
		spec:    spec,
		seed:    seed,
		dealers: make(map[int]*Dealer),
	}
}

// slotSeed mixes the base seed with the slot (splitmix64-style) so per-slot
// dealers draw independent, reproducible randomness.
func slotSeed(seed int64, slot int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(int64(slot))*0xBF58476D1CE4E5B9 + 0x2545F4914F6CDD1D
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// For returns the dealer of one slot, creating it on first use. Slots below
// the release floor are reconstructed deterministically but re-memoized (a
// straggler verifying ancient shares gets identical answers), to be released
// again by the next ReleaseBelow.
func (s *DealerSet) For(slot int) *Dealer {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.dealers[slot]
	if !ok {
		d = NewDealer(s.spec, slotSeed(s.seed, slot))
		s.dealers[slot] = d
	}
	return d
}

// ReleaseBelow drops every dealer for slots below the cut, returning how
// many it released. The caller asserts a certified checkpoint covers the
// released slots (see the type comment for why re-creation is nevertheless
// safe).
func (s *DealerSet) ReleaseBelow(cut int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cut > s.floor {
		s.floor = cut
	}
	released := 0
	for slot := range s.dealers {
		if slot < s.floor {
			delete(s.dealers, slot)
			released++
		}
	}
	return released
}

// DealersRetained returns how many per-slot dealers the set currently holds
// — bounded by the spread between the live frontier and the certified cut
// under checkpoint-driven release, linear in slots without it.
func (s *DealerSet) DealersRetained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.dealers)
}

// RoundsRetained sums the memoized per-round sharings across all retained
// dealers (the E12 "dealer rounds" column).
func (s *DealerSet) RoundsRetained() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, d := range s.dealers {
		total += d.RoundsRetained()
	}
	return total
}
