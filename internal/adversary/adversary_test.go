package adversary

import (
	"testing"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/types"
	"repro/internal/wire"
)

func TestSilent(t *testing.T) {
	s := &Silent{Me: 3}
	if s.ID() != 3 {
		t.Errorf("ID = %v", s.ID())
	}
	if s.Start() != nil || s.Deliver(types.Message{}) != nil {
		t.Error("silent node produced output")
	}
	if s.Done() {
		t.Error("silent node reported done (it should linger as a non-participant)")
	}
}

func TestDecideForger(t *testing.T) {
	peers := types.Processes(4)
	d := &DecideForger{Me: 4, Peers: peers, V: types.One}
	msgs := d.Start()
	if len(msgs) != 4 {
		t.Fatalf("sent %d forged DECIDEs, want 4", len(msgs))
	}
	for _, m := range msgs {
		p, ok := m.Payload.(*types.DecidePayload)
		if !ok || p.V != types.One || m.From != 4 {
			t.Errorf("unexpected forged message %v", m)
		}
	}
	if d.Deliver(msgs[0]) != nil {
		t.Error("forger must stay quiet after start")
	}
}

func TestEquivocatorSplitsSends(t *testing.T) {
	peers := types.Processes(4)
	e := &Equivocator{Me: 4, Peers: peers}
	msgs := e.Start()
	if len(msgs) != 4 {
		t.Fatalf("start sent %d messages, want 4 conflicting SENDs", len(msgs))
	}
	values := map[types.ProcessID]types.Value{}
	for _, m := range msgs {
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok || p.Phase != types.KindRBCSend {
			t.Fatalf("unexpected payload %v", m)
		}
		sm, err := wire.DecodeStep(p.Body)
		if err != nil {
			t.Fatalf("equivocator produced undecodable body: %v", err)
		}
		values[m.To] = sm.V
	}
	if values[1] == values[4] {
		t.Error("equivocator sent the same value to both halves")
	}
}

func TestEquivocatorJoinsObservedSlots(t *testing.T) {
	peers := types.Processes(4)
	e := &Equivocator{Me: 4, Peers: peers}
	e.Start()
	// p1 opens round 2 step 1: the equivocator must join with its own
	// conflicting instance plus double echo/ready of p1's instance.
	body, err := wire.EncodeStep(types.StepMessage{Round: 2, Step: types.Step1, V: types.One})
	if err != nil {
		t.Fatal(err)
	}
	in := types.Message{From: 1, To: 4, Payload: &types.RBCPayload{
		Phase: types.KindRBCSend,
		ID:    types.InstanceID{Sender: 1, Tag: types.Tag{Round: 2, Step: types.Step1}},
		Body:  body,
	}}
	out := e.Deliver(in)
	// 4 conflicting SENDs + 2 values × 2 phases × 4 peers = 20.
	if len(out) != 20 {
		t.Fatalf("deliver produced %d messages, want 20", len(out))
	}
	// Same slot again: no repeat.
	if again := e.Deliver(in); len(again) != 0 {
		t.Fatalf("equivocator repeated itself: %d messages", len(again))
	}
}

func TestLiarFlipsOwnSends(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)
	liar, err := NewLiar(core.Config{
		Me: 4, Peers: peers, Spec: spec,
		Coin:     coin.NewIdeal(1),
		Proposal: types.One,
	})
	if err != nil {
		t.Fatal(err)
	}
	msgs := liar.Start()
	if len(msgs) != 4 {
		t.Fatalf("start sent %d messages, want 4", len(msgs))
	}
	for _, m := range msgs {
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok {
			t.Fatalf("unexpected payload %v", m)
		}
		sm, err := wire.DecodeStep(p.Body)
		if err != nil {
			t.Fatal(err)
		}
		if sm.V != types.Zero { // proposal 1 flipped to 0
			t.Errorf("liar sent %v, want flipped 0", sm.V)
		}
	}
	if liar.Done() {
		t.Error("liar must never report done")
	}
	if liar.ID() != 4 {
		t.Errorf("ID = %v", liar.ID())
	}
}

func TestSplitBrainIsolatesWorlds(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)
	sb, err := NewSplitBrain(3, peers, spec,
		[]types.ProcessID{1}, []types.ProcessID{2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if sb.ID() != 3 {
		t.Errorf("ID = %v", sb.ID())
	}
	msgs := sb.Start()
	for _, m := range msgs {
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok {
			continue
		}
		sm, err := wire.DecodeStep(p.Body)
		if err != nil {
			t.Fatal(err)
		}
		switch m.To {
		case 1: // world A: value 0
			if sm.V != types.Zero {
				t.Errorf("world A leak: %v to p1", sm.V)
			}
		case 2: // world B: value 1
			if sm.V != types.One {
				t.Errorf("world B leak: %v to p2", sm.V)
			}
		case 3, 4: // fellow Byzantine: receives both worlds
		default:
			t.Errorf("unexpected destination %v", m.To)
		}
	}
	if sb.Done() {
		t.Error("split-brain must never report done")
	}
}

func TestSplitBrainRoutesByWorld(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)
	sb, err := NewSplitBrain(3, peers, spec,
		[]types.ProcessID{1}, []types.ProcessID{2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	sb.Start()
	// A message from p1 (group A) must only ever produce group-A or
	// Byzantine-destined output.
	body, err := wire.EncodeStep(types.StepMessage{Round: 1, Step: types.Step1, V: types.Zero})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.Deliver(types.Message{From: 1, To: 3, Payload: &types.RBCPayload{
		Phase: types.KindRBCSend,
		ID:    types.InstanceID{Sender: 1, Tag: types.Tag{Round: 1, Step: types.Step1}},
		Body:  body,
	}})
	for _, m := range out {
		if m.To == 2 {
			t.Errorf("world A reaction leaked to p2: %v", m)
		}
	}
}

func TestPlainEquivocator(t *testing.T) {
	peers := types.Processes(6)
	e := NewPlainEquivocator(6, peers)
	msgs := e.Start()
	if len(msgs) != 6 {
		t.Fatalf("start sent %d, want 6", len(msgs))
	}
	seen := map[types.Value]int{}
	for _, m := range msgs {
		p, ok := m.Payload.(*types.PlainPayload)
		if !ok || p.Round != 1 || p.Step != types.Step1 {
			t.Fatalf("unexpected payload %v", m)
		}
		seen[p.V]++
	}
	if seen[0] != 3 || seen[1] != 3 {
		t.Errorf("split = %v, want 3/3", seen)
	}
	// Phase 2 equivocation carries conflicting D proposals.
	out := e.Deliver(types.Message{From: 1, To: 6, Payload: &types.PlainPayload{Round: 1, Step: types.Step2, V: 1, D: true}})
	if len(out) != 6 {
		t.Fatalf("phase-2 equivocation sent %d, want 6", len(out))
	}
	for _, m := range out {
		p := m.Payload.(*types.PlainPayload)
		if !p.D {
			t.Error("phase-2 equivocation must carry D proposals")
		}
	}
	// Repeat and garbage are inert.
	if len(e.Deliver(types.Message{From: 2, To: 6, Payload: &types.PlainPayload{Round: 1, Step: types.Step2, V: 0}})) != 0 {
		t.Error("slot repeated")
	}
	if len(e.Deliver(types.Message{From: 2, To: 6, Payload: &types.DecidePayload{}})) != 0 {
		t.Error("non-plain payload triggered output")
	}
	if e.Done() || e.ID() != 6 {
		t.Error("identity accessors wrong")
	}
}

func TestAccessorsAndRouting(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)

	t.Run("forger identity", func(t *testing.T) {
		d := &DecideForger{Me: 2, Peers: peers, V: types.Zero}
		if d.ID() != 2 || d.Done() {
			t.Error("forger accessors wrong")
		}
	})
	t.Run("equivocator identity", func(t *testing.T) {
		e := &Equivocator{Me: 4, Peers: peers}
		e.Start()
		if e.ID() != 4 || e.Done() {
			t.Error("equivocator accessors wrong")
		}
		// Non-RBC payloads are inert.
		if out := e.Deliver(types.Message{From: 1, To: 4, Payload: &types.DecidePayload{}}); out != nil {
			t.Error("equivocator reacted to non-RBC payload")
		}
	})
	t.Run("liar deliver path", func(t *testing.T) {
		liar, err := NewLiar(core.Config{
			Me: 4, Peers: peers, Spec: spec,
			Coin: coin.NewIdeal(1), Proposal: types.Zero,
		})
		if err != nil {
			t.Fatal(err)
		}
		liar.Start()
		// Deliver a DECIDE: forwarded to the inner node, output corrupted
		// (no SENDs in it, so unchanged).
		out := liar.Deliver(types.Message{From: 1, To: 4, Payload: &types.DecidePayload{V: types.One}})
		if out != nil {
			t.Errorf("single DECIDE produced output: %v", out)
		}
	})
	t.Run("liar config error", func(t *testing.T) {
		if _, err := NewLiar(core.Config{Me: 4, Peers: peers, Spec: spec}); err == nil {
			t.Error("NewLiar accepted a config without a coin")
		}
	})
	t.Run("split-brain config error", func(t *testing.T) {
		_, err := NewSplitBrain(9, peers, spec, peers[:1], peers[1:2], 1)
		if err == nil {
			t.Error("NewSplitBrain accepted a me outside peers")
		}
	})
}

func TestSplitBrainColluderRouting(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)
	sb, err := NewSplitBrain(3, peers, spec,
		[]types.ProcessID{1}, []types.ProcessID{2}, 42)
	if err != nil {
		t.Fatal(err)
	}
	sb.Start()

	// A colluder's (p4) world-1 RBC message must only trigger world-B (and
	// Byzantine) output.
	body, err := wire.EncodeStep(types.StepMessage{Round: 1, Step: types.Step1, V: types.One})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.Deliver(types.Message{From: 4, To: 3, Payload: &types.RBCPayload{
		Phase: types.KindRBCSend,
		ID:    types.InstanceID{Sender: 4, Tag: types.Tag{Round: 1, Step: types.Step1}},
		Body:  body,
	}})
	for _, m := range out {
		if m.To == 1 {
			t.Errorf("world-1 colluder traffic leaked to group A: %v", m)
		}
	}

	// A colluder's DECIDE(0) routes to world A only.
	out = sb.Deliver(types.Message{From: 4, To: 3, Payload: &types.DecidePayload{V: types.Zero}})
	for _, m := range out {
		if m.To == 2 {
			t.Errorf("world-0 DECIDE leaked to group B: %v", m)
		}
	}

	// A valueless colluder payload (coin share) goes to both worlds without
	// leaking across.
	out = sb.Deliver(types.Message{From: 4, To: 3, Payload: &types.CoinSharePayload{Round: 1}})
	_ = out // both personalities may ignore it; just exercising the path
}

func TestCrashAfter(t *testing.T) {
	peers := types.Processes(4)
	spec := quorum.MustNew(4, 1)
	c, err := NewCrashAfter(core.Config{
		Me: 4, Peers: peers, Spec: spec,
		Coin: coin.NewIdeal(1), Proposal: types.One,
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() != 4 || c.Done() || c.Crashed() {
		t.Fatal("fresh crash-after accessors wrong")
	}
	if msgs := c.Start(); len(msgs) == 0 {
		t.Fatal("crash-after must participate before the crash")
	}
	m := types.Message{From: 1, To: 4, Payload: &types.DecidePayload{V: types.One}}
	c.Deliver(m) // budget 2 -> 1
	if c.Crashed() {
		t.Fatal("crashed early")
	}
	c.Deliver(m) // budget 1 -> 0: crash (duplicate DECIDE is inert input, that's fine)
	if !c.Crashed() {
		t.Fatal("did not crash at budget exhaustion")
	}
	if out := c.Deliver(m); out != nil {
		t.Fatal("crashed node produced output")
	}
	if c.Done() {
		t.Fatal("crashed is not done")
	}

	t.Run("zero budget crashes at start", func(t *testing.T) {
		c2, err := NewCrashAfter(core.Config{
			Me: 4, Peers: peers, Spec: spec,
			Coin: coin.NewIdeal(1), Proposal: types.One,
		}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if msgs := c2.Start(); msgs != nil {
			t.Fatal("zero-budget node sent messages")
		}
		if !c2.Crashed() {
			t.Fatal("zero-budget node did not crash")
		}
	})
	t.Run("config error", func(t *testing.T) {
		if _, err := NewCrashAfter(core.Config{Me: 4, Peers: peers, Spec: spec}, 5); err == nil {
			t.Fatal("NewCrashAfter accepted a coinless config")
		}
	})
}
