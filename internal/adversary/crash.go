package adversary

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/types"
)

// CrashAfter runs the real protocol correctly and then crashes after a
// fixed number of deliveries — the classic mid-protocol crash. It is
// strictly nastier than Silent: its partial traffic is already woven into
// other processes' quorums when it stops, so thresholds must be robust to a
// participant vanishing between steps (and even mid-broadcast: some peers
// got its ECHO, others never will).
type CrashAfter struct {
	inner  *core.Node
	budget int
	dead   bool
}

// NewCrashAfter builds a node that behaves correctly for `deliveries`
// incoming messages and then crashes.
func NewCrashAfter(cfg core.Config, deliveries int) (*CrashAfter, error) {
	n, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("adversary: crash-after: %w", err)
	}
	return &CrashAfter{inner: n, budget: deliveries}, nil
}

var _ sim.Node = (*CrashAfter)(nil)

// ID implements sim.Node.
func (c *CrashAfter) ID() types.ProcessID { return c.inner.ID() }

// Start implements sim.Node.
func (c *CrashAfter) Start() []types.Message {
	if c.budget <= 0 {
		c.dead = true
		return nil
	}
	return c.inner.Start()
}

// Deliver implements sim.Node.
func (c *CrashAfter) Deliver(m types.Message) []types.Message {
	if c.dead {
		return nil
	}
	c.budget--
	out := c.inner.Deliver(m)
	if c.budget <= 0 {
		c.dead = true
		// The crash may land mid-output: deliver only a prefix, modelling
		// a process dying halfway through its send loop.
		if len(out) > 1 {
			out = out[:len(out)/2]
		}
	}
	return out
}

// Done implements sim.Node: a crashed process is not "done" (done nodes
// have finished successfully); it is simply unresponsive.
func (c *CrashAfter) Done() bool { return false }

// Crashed reports whether the crash has happened (for tests).
func (c *CrashAfter) Crashed() bool { return c.dead }
