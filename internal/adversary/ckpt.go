package adversary

// Checkpoint-plane Byzantine behaviours. Each one runs a genuine replica —
// the consensus traffic it originates is honest, it stays in the proposer
// rotation, and its state machine commits the same log as everyone else —
// and deviates only in the checkpoint subsystem, which makes it the
// strongest plausible attacker there: every hostile message is
// protocol-shaped and must be defeated by verification, not by
// pattern-matching. The behaviours map one-to-one onto the defenses in
// internal/ckpt:
//
//   - CkptCutEquivocate: a different (StateDigest, LogDigest) per receiver,
//     each correctly self-signed. Legal for a Byzantine voter (it holds its
//     own link keys); defeated by per-digest match counting — the
//     equivocating vote never matches the honest quorum's digests anywhere.
//   - CkptMACForge: garbage or wrong-length MAC vectors on its own votes,
//     plus forged certificates claiming honest voters over a poisoned but
//     digest-consistent snapshot. Defeated by per-receiver MAC verification
//     (a forger cannot produce a correct voter's entry for a correct pair).
//   - CkptFutureSpam: self-signed votes for dozens of far-future cuts per
//     interval, pressuring the tracker's pending-cut cap and inflating the
//     frontier hint. Defeated by largest-first eviction (spam displaces
//     spam, honest low cuts certify) and by the request pacer (an inflated
//     frontier costs bounded, deduplicated transfer requests).
//   - CkptStaleResponder: answers state-transfer requests with the previous
//     certificate instead of the latest. Defeated by the requester's
//     stale-response detection and immediate fallback to the next peer.
//   - CkptCorruptResponder: answers with the latest certificate but a
//     corrupted snapshot (bit-flipped or truncated, alternating). Defeated
//     by the snapshot-digest check in VerifyCertPayload and the same
//     fallback loop.

import (
	"fmt"

	"repro/internal/ckpt"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/types"
)

// CkptAttack selects a CkptByzantine behaviour.
type CkptAttack int

// The checkpoint-plane attacks.
const (
	CkptCutEquivocate CkptAttack = iota + 1
	CkptMACForge
	CkptFutureSpam
	CkptStaleResponder
	CkptCorruptResponder
)

// CkptAttacks lists every checkpoint-plane attack, in definition order —
// the iteration surface for CLIs and sweeps.
func CkptAttacks() []CkptAttack {
	return []CkptAttack{
		CkptCutEquivocate, CkptMACForge, CkptFutureSpam,
		CkptStaleResponder, CkptCorruptResponder,
	}
}

// ParseCkptAttack resolves an attack by its String() name.
func ParseCkptAttack(name string) (CkptAttack, error) {
	for _, a := range CkptAttacks() {
		if a.String() == name {
			return a, nil
		}
	}
	return 0, fmt.Errorf("unknown checkpoint attack %q (see -scenarios for the list)", name)
}

// String implements fmt.Stringer.
func (a CkptAttack) String() string {
	switch a {
	case CkptCutEquivocate:
		return "cut-equivocate"
	case CkptMACForge:
		return "mac-forge"
	case CkptFutureSpam:
		return "future-spam"
	case CkptStaleResponder:
		return "stale-responder"
	case CkptCorruptResponder:
		return "corrupt-responder"
	default:
		return fmt.Sprintf("CkptAttack(%d)", int(a))
	}
}

// futureSpamCuts is how many far-future cuts a CkptFutureSpam attacker votes
// for at every interval — comfortably past the default pending-cut cap, so
// the eviction path is exercised, not just approached.
const futureSpamCuts = ckpt.DefaultMaxPendingCuts + 32

// CkptByzantine wraps a genuine smr.Replica and corrupts only its
// checkpoint-plane behaviour according to Kind. See the file comment for the
// attack catalogue.
type CkptByzantine struct {
	kind  CkptAttack
	inner *smr.Replica
	auth  *ckpt.Authority
	spec  quorum.Spec
	me    types.ProcessID
	peers []types.ProcessID
	// others is peers without me (fan-out of self-originated forgeries).
	others   []types.ProcessID
	interval int

	tick          int // deterministic alternation counter for MAC/snapshot corruption
	lastForgedCut int // highest cut a forged certificate / spam volley went out for

	// Responder attacks cache the inner replica's transfer payloads: cur is
	// the latest certificate with its snapshot, prev the one before it (what
	// a stale responder serves).
	lastCut int
	prev    *types.CkptCertPayload
	cur     *types.CkptCertPayload
}

// NewCkptByzantine builds a checkpoint-plane attacker over a genuine replica
// configured by cfg (which must enable checkpointing — the attack surface).
// The attacker signs its forgeries with its own legitimately held link keys,
// exactly what a compromised replica could do.
func NewCkptByzantine(kind CkptAttack, cfg smr.Config) (*CkptByzantine, error) {
	if kind < CkptCutEquivocate || kind > CkptCorruptResponder {
		return nil, fmt.Errorf("adversary: unknown checkpoint attack %d", int(kind))
	}
	if cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("adversary: %v requires checkpointing enabled", kind)
	}
	inner, err := smr.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("adversary: %v: %w", kind, err)
	}
	b := &CkptByzantine{
		kind:     kind,
		inner:    inner,
		auth:     ckpt.NewAuthority(cfg.CheckpointSecret, cfg.Me, cfg.Peers),
		spec:     cfg.Spec,
		me:       cfg.Me,
		peers:    cfg.Peers,
		interval: cfg.CheckpointEvery,
	}
	for _, p := range cfg.Peers {
		if p != cfg.Me {
			b.others = append(b.others, p)
		}
	}
	return b, nil
}

var _ sim.Node = (*CkptByzantine)(nil)

// ID implements sim.Node.
func (b *CkptByzantine) ID() types.ProcessID { return b.me }

// Done implements sim.Node: the attacker halts with its inner replica (it
// stays in the proposer rotation, so the cluster needs it live).
func (b *CkptByzantine) Done() bool { return b.inner.Done() }

// Inner exposes the wrapped honest replica for harness inspection (its log
// and machine commit honestly; only checkpoint traffic is corrupted).
func (b *CkptByzantine) Inner() *smr.Replica { return b.inner }

// Start implements sim.Node.
func (b *CkptByzantine) Start() []types.Message {
	return b.corrupt(b.inner.Start())
}

// Deliver implements sim.Node. Responder attacks intercept state-transfer
// requests — the inner replica never sees them, the attacker answers in its
// place; everything else feeds the genuine replica and its emissions pass
// through the attack's outbound corruption.
func (b *CkptByzantine) Deliver(m types.Message) []types.Message {
	if req, ok := m.Payload.(*types.CkptRequestPayload); ok &&
		(b.kind == CkptStaleResponder || b.kind == CkptCorruptResponder) {
		return b.serveBad(m.From, req)
	}
	return b.corrupt(b.inner.Deliver(m))
}

// Recycle implements sim.Recycler by handing buffers back to the inner
// replica (self-originated slices are donations, same as sim.Restart).
func (b *CkptByzantine) Recycle(msgs []types.Message) { b.inner.Recycle(msgs) }

// corrupt applies the outbound half of the attack to the inner replica's
// emissions.
func (b *CkptByzantine) corrupt(msgs []types.Message) []types.Message {
	switch b.kind {
	case CkptCutEquivocate:
		for i, m := range msgs {
			v, ok := m.Payload.(*types.CkptVotePayload)
			if !ok {
				continue
			}
			// A different checkpoint per receiver, each correctly signed
			// with this replica's own keys: the strongest equivocation a
			// Byzantine voter can produce.
			c := ckpt.Checkpoint{
				Slot:        v.Slot,
				StateDigest: v.StateDigest ^ ckptMix(uint64(int64(m.To))),
				LogDigest:   v.LogDigest ^ ckptMix(uint64(int64(m.To))+1),
			}
			msgs[i].Payload = &types.CkptVotePayload{
				Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
				MACs: b.auth.SignVector(c),
			}
		}
	case CkptMACForge:
		var forged int
		for i, m := range msgs {
			v, ok := m.Payload.(*types.CkptVotePayload)
			if !ok {
				continue
			}
			if v.Slot > b.lastForgedCut && forged == 0 {
				forged = v.Slot // append one certificate forgery per cut, below
			}
			// Own votes go out with hostile MAC vectors, alternating between
			// the two malformed shapes: wrong length (rejected before any
			// verification) and right length with garbage entries (rejected
			// per receiver by the link-key check).
			b.tick++
			var macs []string
			if b.tick%2 == 0 {
				macs = []string{"truncated"}
			} else {
				macs = make([]string, len(b.peers))
				for j := range macs {
					macs[j] = fmt.Sprintf("forged-%d-%d", v.Slot, j)
				}
			}
			msgs[i].Payload = &types.CkptVotePayload{
				Slot: v.Slot, StateDigest: v.StateDigest, LogDigest: v.LogDigest, MACs: macs,
			}
		}
		if forged > 0 {
			b.lastForgedCut = forged
			msgs = b.appendForgedCert(msgs, forged+b.interval)
		}
	case CkptFutureSpam:
		var cut int
		for _, m := range msgs {
			if v, ok := m.Payload.(*types.CkptVotePayload); ok && v.Slot > b.lastForgedCut {
				cut = v.Slot
				break
			}
		}
		if cut > 0 {
			// The genuine vote goes out untouched; alongside it, a volley of
			// correctly self-signed votes for far-future cuts — legal
			// messages that pressure the pending-cut cap and inflate the
			// frontier hint at every receiver.
			b.lastForgedCut = cut
			for i := 1; i <= futureSpamCuts; i++ {
				c := ckpt.Checkpoint{
					Slot:        cut + i*b.interval,
					StateDigest: ckptMix(uint64(i)),
					LogDigest:   ckptMix(uint64(i) + 7),
				}
				msgs = types.AppendBroadcast(msgs, b.me, b.others, &types.CkptVotePayload{
					Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
					MACs: b.auth.SignVector(c),
				})
			}
		}
	case CkptStaleResponder, CkptCorruptResponder:
		b.refreshCache()
	}
	return msgs
}

// appendForgedCert broadcasts a certificate forgery for a future cut: a
// quorum of *honest* voter identities (plus the forger's own, genuinely
// signed, vote — maximal plausibility) over a poisoned snapshot whose digest
// is self-consistent. Only the MAC verification of the claimed honest votes
// stands between this and a hostile install.
func (b *CkptByzantine) appendForgedCert(msgs []types.Message, cut int) []types.Message {
	snapshot := fmt.Sprintf("#1\npoisoned state at cut %d\n", cut)
	c := ckpt.Checkpoint{Slot: cut, StateDigest: ckpt.Digest(snapshot), LogDigest: ckptMix(uint64(cut))}
	voters := []types.ProcessID{b.me}
	macs := [][]string{b.auth.SignVector(c)}
	garbage := make([]string, len(b.peers))
	for i := range garbage {
		garbage[i] = "no-such-mac"
	}
	for _, p := range b.peers {
		if len(voters) >= b.spec.Decide() {
			break
		}
		if p != b.me {
			voters = append(voters, p)
			macs = append(macs, garbage)
		}
	}
	return types.AppendBroadcast(msgs, b.me, b.others, &types.CkptCertPayload{
		Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
		Voters: voters, VoteMACs: macs, Snapshot: snapshot,
	})
}

// refreshCache tracks the inner replica's latest two transfer payloads for
// the responder attacks.
func (b *CkptByzantine) refreshCache() {
	cutNow := b.inner.CertifiedCut()
	if cutNow == b.lastCut {
		return
	}
	if p, ok := b.inner.TransferPayload(true); ok {
		b.prev, b.cur = b.cur, p
		b.lastCut = cutNow
	}
}

// serveBad answers an intercepted state-transfer request hostilely: the
// stale responder serves the previous certificate (valid but old), the
// corrupt responder serves the latest certificate with a mangled snapshot
// (bit-flipped or truncated, alternating). Either way the requester must
// detect it and fall over to the next peer.
func (b *CkptByzantine) serveBad(from types.ProcessID, _ *types.CkptRequestPayload) []types.Message {
	b.refreshCache()
	switch b.kind {
	case CkptStaleResponder:
		if b.prev == nil {
			return nil // no stale certificate to serve yet
		}
		return []types.Message{{From: b.me, To: from, Payload: b.prev}}
	case CkptCorruptResponder:
		if b.cur == nil {
			return nil
		}
		cp := *b.cur
		b.tick++
		if b.tick%2 == 0 && len(cp.Snapshot) > 1 {
			cp.Snapshot = cp.Snapshot[:len(cp.Snapshot)/2+1]
		} else {
			flipped := []byte(cp.Snapshot)
			flipped[0] ^= 0x80
			cp.Snapshot = string(flipped)
		}
		return []types.Message{{From: b.me, To: from, Payload: &cp}}
	}
	return nil
}

// ckptMix spreads a small integer into a nonzero 64-bit perturbation
// (splitmix-style multiply) for equivocating and spam digests.
func ckptMix(x uint64) uint64 {
	x = (x + 1) * 0x9e3779b97f4a7c15
	x ^= x >> 31
	return x | 1
}
