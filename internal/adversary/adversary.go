// Package adversary implements Byzantine process behaviours for fault
// injection. Each strategy is a sim.Node that deviates from the protocol in
// a characteristic way:
//
//   - Silent: crashes at time zero (the paper's minimal fault).
//   - DecideForger: floods forged DECIDE gadget messages, probing the f+1
//     amplification threshold.
//   - Equivocator: attacks reliable broadcast — conflicting SENDs to
//     different halves of the system plus double ECHOs/READYs for every
//     instance it observes.
//   - Liar: runs the real consensus state machine but flips the value in
//     every step message it originates — the strongest *plausible* attacker,
//     since its traffic is protocol-shaped and must be defeated by
//     validation rather than by pattern-matching.
//   - SplitBrain: runs one correct-looking personality per partition of the
//     correct processes, showing each side a unanimous world with a
//     different value. Against a correctly-sized system it is harmless;
//     with f beyond ⌊(n−1)/3⌋ it produces real agreement violations
//     (experiment E7, the tightness of the resilience bound).
package adversary

import (
	"fmt"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// Silent is a process that crashed before sending anything.
type Silent struct {
	Me types.ProcessID
}

var _ sim.Node = (*Silent)(nil)

// ID implements sim.Node.
func (s *Silent) ID() types.ProcessID { return s.Me }

// Start implements sim.Node.
func (s *Silent) Start() []types.Message { return nil }

// Deliver implements sim.Node.
func (s *Silent) Deliver(types.Message) []types.Message { return nil }

// Done implements sim.Node.
func (s *Silent) Done() bool { return false }

// DecideForger broadcasts a forged DECIDE(V) to everyone at start and then
// goes quiet. With at most f forgers and an amplification threshold of f+1,
// correct processes must never act on the forgeries.
type DecideForger struct {
	Me    types.ProcessID
	Peers []types.ProcessID
	V     types.Value
}

var _ sim.Node = (*DecideForger)(nil)

// ID implements sim.Node.
func (d *DecideForger) ID() types.ProcessID { return d.Me }

// Start implements sim.Node.
func (d *DecideForger) Start() []types.Message {
	return types.Broadcast(d.Me, d.Peers, &types.DecidePayload{V: d.V})
}

// Deliver implements sim.Node.
func (d *DecideForger) Deliver(types.Message) []types.Message { return nil }

// Done implements sim.Node.
func (d *DecideForger) Done() bool { return false }

// Equivocator attacks reliable broadcast. For every consensus slot it
// observes (via other processes' SENDs), it broadcasts its own instance with
// value 0 to the first half of the peers and value 1 to the second half,
// and it ECHOs and READYs both values of every instance it sees. Under
// n > 3f this cannot break RBC agreement — the tests assert exactly that —
// but it maximizes wasted traffic and ambiguity.
type Equivocator struct {
	Me    types.ProcessID
	Peers []types.ProcessID

	acted map[types.Tag]bool
	fed   map[types.InstanceID]bool
}

var _ sim.Node = (*Equivocator)(nil)

// ID implements sim.Node.
func (e *Equivocator) ID() types.ProcessID { return e.Me }

// Start implements sim.Node: open round 1 with an equivocating SEND.
func (e *Equivocator) Start() []types.Message {
	e.acted = make(map[types.Tag]bool)
	e.fed = make(map[types.InstanceID]bool)
	return e.equivocateSlot(types.Tag{Round: 1, Step: types.Step1})
}

// Deliver implements sim.Node.
func (e *Equivocator) Deliver(m types.Message) []types.Message {
	p, ok := m.Payload.(*types.RBCPayload)
	if !ok {
		return nil
	}
	var out []types.Message
	// Join every slot other processes are active in, equivocating.
	out = append(out, e.equivocateSlot(p.ID.Tag)...)
	// Fan both possible bodies of this instance as ECHO and READY, once.
	if !e.fed[p.ID] && p.ID.Sender != e.Me {
		e.fed[p.ID] = true
		for _, v := range []types.Value{types.Zero, types.One} {
			body, err := encodeStepFor(p.ID.Tag, v)
			if err != nil {
				continue
			}
			for _, phase := range []types.Kind{types.KindRBCEcho, types.KindRBCReady} {
				pl := &types.RBCPayload{Phase: phase, ID: p.ID, Body: body}
				out = append(out, types.Broadcast(e.Me, e.Peers, pl)...)
			}
		}
	}
	return out
}

// Done implements sim.Node.
func (e *Equivocator) Done() bool { return false }

// equivocateSlot opens this process's own RBC instance for a slot with
// conflicting SENDs: 0 to the first half of the peers, 1 to the rest.
func (e *Equivocator) equivocateSlot(tag types.Tag) []types.Message {
	if e.acted[tag] || !tag.Step.Valid() || tag.Round < 1 {
		return nil
	}
	e.acted[tag] = true
	id := types.InstanceID{Sender: e.Me, Tag: tag}
	var out []types.Message
	half := len(e.Peers) / 2
	for i, peer := range e.Peers {
		v := types.Zero
		if i >= half {
			v = types.One
		}
		body, err := encodeStepFor(tag, v)
		if err != nil {
			return nil
		}
		out = append(out, types.Message{
			From:    e.Me,
			To:      peer,
			Payload: &types.RBCPayload{Phase: types.KindRBCSend, ID: id, Body: body},
		})
	}
	return out
}

func encodeStepFor(tag types.Tag, v types.Value) (string, error) {
	return wire.EncodeStep(types.StepMessage{Round: tag.Round, Step: tag.Step, V: v})
}

// Liar runs a genuine consensus node but inverts the value in every step
// message it originates (SENDs of its own instances). All other traffic —
// echoes, readies, coin shares — is forwarded unchanged, so its behaviour is
// maximally protocol-shaped.
type Liar struct {
	inner *core.Node
}

// NewLiar builds a lying node over the real consensus implementation.
func NewLiar(cfg core.Config) (*Liar, error) {
	n, err := core.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("adversary: liar: %w", err)
	}
	return &Liar{inner: n}, nil
}

var _ sim.Node = (*Liar)(nil)

// ID implements sim.Node.
func (l *Liar) ID() types.ProcessID { return l.inner.ID() }

// Start implements sim.Node.
func (l *Liar) Start() []types.Message { return l.corrupt(l.inner.Start()) }

// Deliver implements sim.Node.
func (l *Liar) Deliver(m types.Message) []types.Message { return l.corrupt(l.inner.Deliver(m)) }

// Done implements sim.Node: a liar never halts voluntarily.
func (l *Liar) Done() bool { return false }

// corrupt flips the value inside this process's own SEND bodies.
func (l *Liar) corrupt(msgs []types.Message) []types.Message {
	for i, m := range msgs {
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok || p.Phase != types.KindRBCSend || p.ID.Sender != l.inner.ID() {
			continue
		}
		sm, err := wire.DecodeStep(p.Body)
		if err != nil {
			continue
		}
		sm.V = sm.V.Not()
		body, err := wire.EncodeStep(sm)
		if err != nil {
			continue
		}
		flipped := *p
		flipped.Body = body
		msgs[i].Payload = &flipped
	}
	return msgs
}

// SplitBrain shows each of two partitions of the correct processes an
// internally consistent but mutually contradictory execution: personality A
// participates towards partition A proposing 0, personality B towards
// partition B proposing 1. Traffic from partition A feeds personality A
// only, and personality A's output is delivered to partition A (and fellow
// Byzantine processes) only.
type SplitBrain struct {
	me     types.ProcessID
	groupA map[types.ProcessID]bool
	groupB map[types.ProcessID]bool
	pers   [2]*core.Node
}

// NewSplitBrain creates the split-brain node. groupA and groupB partition
// the correct processes; fellow Byzantine processes receive both
// personalities' traffic (they collude). The personalities use ideal coins
// derived from seed so colluders agree on every pretended coin flip.
func NewSplitBrain(me types.ProcessID, peers []types.ProcessID, spec quorum.Spec,
	groupA, groupB []types.ProcessID, seed int64) (*SplitBrain, error) {
	sb := &SplitBrain{
		me:     me,
		groupA: toSet(groupA),
		groupB: toSet(groupB),
	}
	for i, proposal := range []types.Value{types.Zero, types.One} {
		n, err := core.New(core.Config{
			Me:       me,
			Peers:    peers,
			Spec:     spec,
			Coin:     coin.NewIdeal(seed + int64(i)),
			Proposal: proposal,
		})
		if err != nil {
			return nil, fmt.Errorf("adversary: split-brain personality %d: %w", i, err)
		}
		sb.pers[i] = n
	}
	return sb, nil
}

var _ sim.Node = (*SplitBrain)(nil)

// ID implements sim.Node.
func (s *SplitBrain) ID() types.ProcessID { return s.me }

// Start implements sim.Node.
func (s *SplitBrain) Start() []types.Message {
	out := s.filter(s.pers[0].Start(), s.groupA)
	return append(out, s.filter(s.pers[1].Start(), s.groupB)...)
}

// Deliver implements sim.Node: traffic from partition members feeds the
// matching personality; traffic from fellow Byzantine colluders is routed by
// the value world its payload belongs to (world A runs on value 0, world B
// on value 1 — the runner assigns proposals accordingly), falling back to
// both personalities when the payload carries no value.
func (s *SplitBrain) Deliver(m types.Message) []types.Message {
	feedA, feedB := false, false
	switch {
	case s.groupA[m.From]:
		feedA = true
	case s.groupB[m.From]:
		feedB = true
	default: // fellow Byzantine
		switch worldOf(m.Payload) {
		case 0:
			feedA = true
		case 1:
			feedB = true
		default:
			feedA, feedB = true, true
		}
	}
	var out []types.Message
	if feedA {
		out = append(out, s.filter(s.pers[0].Deliver(m), s.groupA)...)
	}
	if feedB {
		out = append(out, s.filter(s.pers[1].Deliver(m), s.groupB)...)
	}
	return out
}

// worldOf extracts the value world a payload belongs to, or -1 if it has no
// recognizable value.
func worldOf(p types.Payload) int {
	switch v := p.(type) {
	case *types.RBCPayload:
		if sm, err := wire.DecodeStep(v.Body); err == nil {
			return int(sm.V)
		}
		return -1
	case *types.DecidePayload:
		return int(v.V)
	default:
		return -1
	}
}

// Done implements sim.Node.
func (s *SplitBrain) Done() bool { return false }

func (s *SplitBrain) isByz(p types.ProcessID) bool {
	return !s.groupA[p] && !s.groupB[p]
}

// filter keeps only messages destined for the given partition or for fellow
// Byzantine processes.
func (s *SplitBrain) filter(msgs []types.Message, group map[types.ProcessID]bool) []types.Message {
	out := msgs[:0]
	for _, m := range msgs {
		if group[m.To] || s.isByz(m.To) {
			out = append(out, m)
		}
	}
	return out
}

func toSet(ps []types.ProcessID) map[types.ProcessID]bool {
	set := make(map[types.ProcessID]bool, len(ps))
	for _, p := range ps {
		set[p] = true
	}
	return set
}
