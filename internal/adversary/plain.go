package adversary

import (
	"repro/internal/sim"
	"repro/internal/types"
)

// PlainEquivocator attacks the Ben-Or baseline, which exchanges raw
// point-to-point messages with no reliable broadcast: the attacker tells the
// first half of the peers one value and the second half the other, in every
// slot it observes — including conflicting phase-2 decision proposals. This
// is precisely the equivocation that reliable broadcast exists to prevent,
// and it is what drags Ben-Or down once f reaches n/5 (experiment E6).
type PlainEquivocator struct {
	Me    types.ProcessID
	Peers []types.ProcessID

	acted map[plainSlot]bool
}

type plainSlot struct {
	round int
	phase types.Step
}

var _ sim.Node = (*PlainEquivocator)(nil)

// NewPlainEquivocator creates the Ben-Or attacker.
func NewPlainEquivocator(me types.ProcessID, peers []types.ProcessID) *PlainEquivocator {
	return &PlainEquivocator{Me: me, Peers: peers, acted: make(map[plainSlot]bool)}
}

// ID implements sim.Node.
func (e *PlainEquivocator) ID() types.ProcessID { return e.Me }

// Start implements sim.Node.
func (e *PlainEquivocator) Start() []types.Message {
	return e.equivocate(plainSlot{round: 1, phase: types.Step1})
}

// Deliver implements sim.Node: join (and poison) every slot it sees.
func (e *PlainEquivocator) Deliver(m types.Message) []types.Message {
	p, ok := m.Payload.(*types.PlainPayload)
	if !ok {
		return nil
	}
	if p.Round < 1 || (p.Step != types.Step1 && p.Step != types.Step2) {
		return nil
	}
	return e.equivocate(plainSlot{round: p.Round, phase: p.Step})
}

// Done implements sim.Node.
func (e *PlainEquivocator) Done() bool { return false }

func (e *PlainEquivocator) equivocate(s plainSlot) []types.Message {
	if e.acted[s] {
		return nil
	}
	e.acted[s] = true
	out := make([]types.Message, 0, len(e.Peers))
	half := len(e.Peers) / 2
	for i, peer := range e.Peers {
		v := types.Zero
		if i >= half {
			v = types.One
		}
		out = append(out, types.Message{
			From: e.Me,
			To:   peer,
			Payload: &types.PlainPayload{
				Round: s.round,
				Step:  s.phase,
				V:     v,
				D:     s.phase == types.Step2, // conflicting decision proposals
			},
		})
	}
	return out
}
