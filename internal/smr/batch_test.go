package smr

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// TestSMRSubmitBounds: the submit queue is bounded and signals rejection —
// a saturated or halted replica must not silently retain every command a
// client ever offers.
func TestSMRSubmitBounds(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	rep, err := New(Config{
		Me: 2, Peers: peers, Spec: spec,
		NewCoin:    func(int) coin.Coin { return coin.NewIdeal(1) },
		Machine:    newKV(),
		QueueLimit: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Submit("set a 1") || !rep.Submit("set b 2") {
		t.Fatal("submissions within the bound rejected")
	}
	if rep.Submit("set c 3") {
		t.Fatal("submission beyond QueueLimit accepted")
	}
	if rep.Dropped() != 1 || rep.QueueLen() != 2 {
		t.Fatalf("dropped=%d queue=%d, want 1 and 2", rep.Dropped(), rep.QueueLen())
	}

	// A Done replica will never propose again: accepting would leak forever.
	replicas, _ := buildSMR(t, 4, 1, 1, 4, 2)
	done := replicas[0]
	if !done.Done() {
		t.Fatal("precondition: cluster run left replica not Done")
	}
	if done.Submit("set late 1") {
		t.Fatal("Done replica accepted a submission")
	}
	if done.Dropped() == 0 {
		t.Fatal("Done-replica rejection not counted")
	}

	// With batching on, a command that cannot fit any batch body is
	// rejected at the door instead of wedging the proposer.
	big, err := New(Config{
		Me: 2, Peers: peers, Spec: spec,
		NewCoin: func(int) coin.Coin { return coin.NewIdeal(1) },
		Machine: newKV(),
		Batch:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if big.Submit(string(make([]byte, wire.MaxBatchBytes+1))) {
		t.Fatal("unencodable oversized command accepted with batching on")
	}
}

// buildBatchedSMR wires an all-live batched, pipelined cluster: each
// replica preloads `per` commands and the cluster runs maxSlots slots.
func buildBatchedSMR(t *testing.T, n, f, maxSlots, batch, depth, per int, seed int64) ([]*Replica, []*kvMachine) {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, n)
	machines := make([]*kvMachine, 0, n)
	for _, p := range peers {
		p := p
		m := newKV()
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(seed + int64(p)*1000 + int64(slot))
			},
			Machine:  m,
			MaxSlots: maxSlots,
			Batch:    batch,
			Depth:    depth,
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < per; c++ {
			if !rep.Submit(fmt.Sprintf("set k%d-%d v%d", p, c, c)) {
				t.Fatalf("preload submission %d rejected at %v", c, p)
			}
		}
		replicas = append(replicas, rep)
		machines = append(machines, m)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, rep := range replicas {
			if !rep.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return replicas, machines
}

// TestSMRBatchedClusterAgrees: with batching and pipelining on, all
// replicas commit identical multi-entry logs, every proposer's commands
// land in submission order, and the state machines apply identically.
func TestSMRBatchedClusterAgrees(t *testing.T) {
	const n, slots, batch, depth, per = 4, 8, 3, 2, 6
	replicas, machines := buildBatchedSMR(t, n, 1, slots, batch, depth, per, 5)
	first := replicas[0].Log()
	for _, rep := range replicas[1:] {
		if !reflect.DeepEqual(rep.Log(), first) {
			t.Fatalf("batched log divergence:\n%v\nvs\n%v", rep.Log(), first)
		}
	}
	for _, m := range machines[1:] {
		if !reflect.DeepEqual(m.applied, machines[0].applied) {
			t.Fatalf("apply-order divergence: %v vs %v", m.applied, machines[0].applied)
		}
	}
	// Every replica preloaded 2 turns' worth of full batches: the log holds
	// batch entries per slot, indexed 0..batch-1, ordered by (slot, index).
	if want := slots * batch; len(first) != want {
		t.Fatalf("log has %d entries for %d slots at batch %d, want %d", len(first), slots, batch, want)
	}
	for i, e := range first {
		if e.Slot != i/batch || e.Index != i%batch {
			t.Fatalf("entry %d at (slot %d, index %d), want (%d, %d)", i, e.Slot, e.Index, i/batch, i%batch)
		}
	}
	// Per-proposer commands commit in submission order.
	next := map[types.ProcessID]int{}
	for _, e := range first {
		want := fmt.Sprintf("set k%d-%d v%d", e.Proposer, next[e.Proposer], next[e.Proposer])
		if e.Command != want {
			t.Fatalf("slot %d.%d from %v committed %q, want %q", e.Slot, e.Index, e.Proposer, e.Command, want)
		}
		next[e.Proposer]++
	}
	// LogSince serves whole-slot tails across the batched log.
	tail := replicas[0].LogSince(slots - 2)
	if len(tail) != 2*batch || tail[0].Slot != slots-2 || tail[0].Index != 0 {
		t.Fatalf("LogSince(%d) returned %d entries starting (%d,%d)", slots-2, len(tail), tail[0].Slot, tail[0].Index)
	}
}

// TestSMRBatchedCheckpointTruncation: checkpoint cuts truncate a batched
// log on slot boundaries and the chained digests still agree.
func TestSMRBatchedCheckpointTruncation(t *testing.T) {
	const n, slots, every, batch = 4, 12, 4, 3
	spec := quorum.MustNew(n, 1)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, n)
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(7 + int64(p)*1000 + int64(slot))
			},
			Machine:          NewKVMachine(),
			MaxSlots:         slots,
			Batch:            batch,
			CheckpointEvery:  every,
			CheckpointSecret: []byte("test-cluster"),
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 9; c++ {
			rep.Submit(fmt.Sprintf("set k%d-%d %d", p, c, c))
		}
		replicas = append(replicas, rep)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, rep := range replicas {
			if !rep.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	first := replicas[0]
	for _, rep := range replicas {
		if rep.Base() == 0 {
			t.Errorf("%v never truncated its batched log", rep.ID())
		}
		// Truncation lands on a slot boundary: the retained tail starts at
		// index 0 of the base slot.
		tail := rep.LogSince(0)
		if len(tail) > 0 && (tail[0].Slot != rep.Base() || tail[0].Index != 0) {
			t.Errorf("%v retained tail starts (%d,%d), want (%d,0)", rep.ID(), tail[0].Slot, tail[0].Index, rep.Base())
		}
		if rep.LogDigest() != first.LogDigest() {
			t.Errorf("%v log digest %x, want %x", rep.ID(), rep.LogDigest(), first.LogDigest())
		}
	}
}

// TestInstallJumpQueueConsume is the install-jump property test: a replica
// catching up by state transfer consumes exactly what its skipped proposing
// turns would have taken — never re-proposing a consumed command at a later
// slot, never dropping an unconsumed one — across batch sizes × pipeline
// depths × jump cuts × queue sizes. The consumption policy is checked
// against an independent mirror of proposalTake, and the post-jump
// proposals are decoded and compared chunk-for-chunk.
func TestInstallJumpQueueConsume(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	for _, batch := range []int{1, 2, 3} {
		for _, depth := range []int{1, 2, 5} {
			for cut := 2; cut <= 14; cut += 3 {
				for _, m := range []int{0, 1, 4, 9, 17} {
					name := fmt.Sprintf("batch=%d/depth=%d/cut=%d/cmds=%d", batch, depth, cut, m)
					t.Run(name, func(t *testing.T) {
						rep, err := New(Config{
							Me: 1, Peers: peers, Spec: spec,
							NewCoin:          func(int) coin.Coin { return coin.NewIdeal(1) },
							Machine:          NewKVMachine(),
							Batch:            batch,
							Depth:            depth,
							CheckpointEvery:  4,
							CheckpointSecret: []byte("t"),
						})
						if err != nil {
							t.Fatal(err)
						}
						cmds := make([]string, m)
						for i := range cmds {
							cmds[i] = fmt.Sprintf("set k%d v%d", i, i)
							if !rep.Submit(cmds[i]) {
								t.Fatalf("submission %d rejected", i)
							}
						}

						// Mirror of the replica's consumption policy:
						// rotation[0] is p1, so p1's turns are s % 4 == 0.
						mine := func(s int) bool { return s%4 == 0 }
						take := func(left int) int {
							if left == 0 {
								return 0
							}
							k := 1
							if batch > 1 {
								k = batch
							}
							if k > left {
								k = left
							}
							return k
						}
						eff := depth
						if eff < 1 {
							eff = 1
						}
						pos := 0
						wait := map[int]bool{}
						chunks := map[int][2]int{} // disseminated turn -> [start, end) of cmds
						proposeMirror := func(from, to int) {
							for s := from; s < to; s++ {
								if !mine(s) || wait[s] {
									continue
								}
								k := take(m - pos)
								chunks[s] = [2]int{pos, pos + k}
								wait[s] = true
								pos += k
							}
						}
						proposeMirror(0, eff) // Start's dissemination window
						for s := 0; s < cut; s++ {
							if !mine(s) || wait[s] {
								continue
							}
							k := take(m - pos)
							if k == 0 {
								break
							}
							pos += k
						}

						// Drive the replica: Start, then a synthetic verified
						// transfer install jumping to the cut (Adopt and
						// install do not re-verify; onCkpt's gate did that).
						bodies := map[int]string{} // slot -> disseminated body
						collect := func(msgs []types.Message) {
							for _, msg := range msgs {
								p, ok := msg.Payload.(*types.RBCPayload)
								if !ok || p.Phase != types.KindRBCSend || p.ID.Tag.Seq < dissemNS {
									continue
								}
								bodies[p.ID.Tag.Seq-dissemNS] = p.Body
							}
						}
						collect(rep.Start())
						snapshot := NewKVMachine().Snapshot()
						cert := ckpt.Certificate{Checkpoint: ckpt.Checkpoint{
							Slot:        cut,
							StateDigest: ckpt.Digest(snapshot),
							LogDigest:   0xfeed,
						}}
						collect(rep.install(nil, cert, snapshot))
						proposeMirror(cut, cut+eff) // install's trailing propose

						if rep.Slot() != cut || rep.Transfers() != 1 {
							t.Fatalf("install did not land: slot=%d transfers=%d", rep.Slot(), rep.Transfers())
						}
						// Nothing unconsumed dropped: the queue is exactly the
						// unconsumed suffix, in order.
						want := cmds[pos:]
						if len(rep.queue) != len(want) {
							t.Fatalf("queue after install = %q, want suffix %q", rep.queue, want)
						}
						for i := range want {
							if rep.queue[i] != want[i] {
								t.Fatalf("queue after install = %q, want suffix %q", rep.queue, want)
							}
						}
						// Nothing consumed re-proposed: each disseminated turn
						// carries exactly its mirror chunk (noop when empty),
						// and chunks are disjoint by construction.
						for s, want := range chunks {
							body, ok := bodies[s]
							if !ok {
								if s >= cut && wait[s] && s < eff {
									continue // disseminated pre-jump, survives the install
								}
								t.Fatalf("turn %d never disseminated", s)
							}
							wantCmds := cmds[want[0]:want[1]]
							switch {
							case len(wantCmds) == 0:
								if body != Noop {
									t.Fatalf("turn %d = %q, want noop", s, body)
								}
							case batch <= 1:
								if body != wantCmds[0] {
									t.Fatalf("turn %d = %q, want %q", s, body, wantCmds[0])
								}
							default:
								got, err := wire.DecodeBatch(body)
								if err != nil {
									t.Fatalf("turn %d body undecodable: %v", s, err)
								}
								if !reflect.DeepEqual(got, wantCmds) {
									t.Fatalf("turn %d = %q, want %q", s, got, wantCmds)
								}
							}
						}
					})
				}
			}
		}
	}
}

// BenchmarkSMRBatchedDelivery is BenchmarkSMRDelivery with the batched,
// pipelined proposal path live (batch 8, depth 2, queues preloaded): the
// zero-allocation delivery gate must hold when proposing turns encode
// batch bodies and commits unbatch them (both amortize across the slot's
// thousands of deliveries, like the per-slot consensus setup).
func BenchmarkSMRBatchedDelivery(b *testing.B) {
	const n, f = 16, 5
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 25},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(int64(p)*1000 + int64(slot))
			},
			Machine: newKV(),
			Batch:   8,
			Depth:   2,
		})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4096; c++ {
			rep.Submit(fmt.Sprintf("set k%d-%d v%d", p, c, c))
		}
		if err := net.Add(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}
