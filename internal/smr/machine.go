package smr

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Snapshotter extends StateMachine with deterministic serialization — the
// application contract for protocol-level checkpointing (Config.
// CheckpointEvery). Snapshot must be a pure function of the applied command
// sequence, identical at every correct replica after the same log prefix:
// the checkpoint subsystem digests it into the certified StateDigest, and
// state transfer installs it verbatim at a restarted replica via Restore.
type Snapshotter interface {
	StateMachine
	// Snapshot serializes the complete application state.
	Snapshot() string
	// Restore replaces the application state with a snapshot previously
	// produced by Snapshot (on any replica).
	Restore(snapshot string) error
}

// KVMachine is the reference Snapshotter: a deterministic key-value store
// driven by "set <key> <value>" commands. It is what the runner harness,
// the experiments, and the examples replicate; tests use it to compare
// state digests across replicas and runs.
type KVMachine struct {
	state   map[string]string
	applied int
}

// NewKVMachine returns an empty store.
func NewKVMachine() *KVMachine { return &KVMachine{state: make(map[string]string)} }

// Apply implements StateMachine.
func (m *KVMachine) Apply(cmd string) error {
	m.applied++
	parts := strings.Fields(cmd)
	if len(parts) != 3 || parts[0] != "set" {
		return fmt.Errorf("smr: bad command %q", cmd)
	}
	m.state[parts[1]] = parts[2]
	return nil
}

// Get returns a key's value ("" if unset).
func (m *KVMachine) Get(key string) string { return m.state[key] }

// Applied returns how many commands have been applied (including malformed
// ones, which count but mutate nothing — every replica rejects them
// identically).
func (m *KVMachine) Applied() int { return m.applied }

// Snapshot implements Snapshotter: the applied count followed by the state
// as sorted "key value" lines. Sorting makes the encoding a pure function
// of the state, whatever map iteration order the runtime picks; the space
// separator makes it injective, because Apply's field-splitting guarantees
// keys and values never contain whitespace (an '='-separated encoding would
// let the states {"a=b": "c"} and {"a": "b=c"} collide on the same
// snapshot, and a restored replica would diverge under an identical
// StateDigest).
func (m *KVMachine) Snapshot() string {
	keys := make([]string, 0, len(m.state))
	for k := range m.state {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	fmt.Fprintf(&b, "#%d\n", m.applied)
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte(' ')
		b.WriteString(m.state[k])
		b.WriteByte('\n')
	}
	return b.String()
}

// Restore implements Snapshotter.
func (m *KVMachine) Restore(snapshot string) error {
	lines := strings.Split(snapshot, "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "#") {
		return fmt.Errorf("smr: malformed snapshot header")
	}
	applied, err := strconv.Atoi(lines[0][1:])
	if err != nil {
		return fmt.Errorf("smr: malformed snapshot header: %v", err)
	}
	state := make(map[string]string, len(lines))
	for _, line := range lines[1:] {
		if line == "" {
			continue
		}
		k, v, ok := strings.Cut(line, " ")
		if !ok {
			return fmt.Errorf("smr: malformed snapshot line %q", line)
		}
		state[k] = v
	}
	m.state = state
	m.applied = applied
	return nil
}
