package smr

import (
	"errors"
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// buildCkptSMR wires an all-live checkpointing cluster and runs it until
// every replica committed maxSlots slots.
func buildCkptSMR(t *testing.T, n, f, maxSlots, every int, seed int64) []*Replica {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, n)
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(seed + int64(p)*1000 + int64(slot))
			},
			Machine:          NewKVMachine(),
			MaxSlots:         maxSlots,
			CheckpointEvery:  every,
			CheckpointSecret: []byte("test-cluster"),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep.Submit("set a 1")
		rep.Submit("set b 2")
		replicas = append(replicas, rep)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, rep := range replicas {
			if !rep.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return replicas
}

func TestCheckpointCertifiesTruncatesAndAgrees(t *testing.T) {
	const slots, every = 16, 4
	replicas := buildCkptSMR(t, 4, 1, slots, every, 3)
	first := replicas[0]
	for _, rep := range replicas {
		if got := rep.CertifiedCut(); got < slots-2*every {
			t.Errorf("%v certified cut %d, want ≥ %d", rep.ID(), got, slots-2*every)
		}
		if rep.Base() == 0 {
			t.Errorf("%v never truncated its log (base 0 after %d slots)", rep.ID(), slots)
		}
		if got, want := rep.LogLen(), slots-rep.Base(); got != want {
			t.Errorf("%v retains %d entries from base %d, want %d", rep.ID(), got, rep.Base(), want)
		}
		// The chained digest covers the full history even though the prefix
		// entries are gone — so all replicas still prove the same log.
		if rep.LogDigest() != first.LogDigest() {
			t.Errorf("%v log digest %x, %v has %x", rep.ID(), rep.LogDigest(), first.ID(), first.LogDigest())
		}
		sd, ok := rep.StateDigest()
		fd, _ := first.StateDigest()
		if !ok || sd != fd {
			t.Errorf("%v state digest %x ok=%v, want %x", rep.ID(), sd, ok, fd)
		}
		// Residue below the cut is gone: the dissemination layer retains
		// records only for slots at or above the cut.
		if got := rep.RBCCompacted(); got > slots-rep.CertifiedCut()+1 {
			t.Errorf("%v retains %d digest records past the cut", rep.ID(), got)
		}
	}
}

func TestCheckpointLogSinceServesTailAcrossTruncation(t *testing.T) {
	replicas := buildCkptSMR(t, 4, 1, 12, 4, 9)
	rep := replicas[0]
	if rep.Base() == 0 {
		t.Fatal("precondition: no truncation happened")
	}
	// LogSince below the base silently starts at the base.
	tail := rep.LogSince(0)
	if len(tail) != rep.LogLen() {
		t.Fatalf("LogSince(0) returned %d entries, retained %d", len(tail), rep.LogLen())
	}
	if tail[0].Slot != rep.Base() {
		t.Fatalf("LogSince(0) starts at %d, base %d", tail[0].Slot, rep.Base())
	}
	// A cursor past the frontier yields nothing.
	if got := rep.LogSince(rep.Slot()); got != nil {
		t.Fatalf("LogSince(frontier) = %v", got)
	}
	// Log() equals the retained tail.
	full := rep.Log()
	if len(full) != len(tail) || full[0] != tail[0] {
		t.Fatal("Log() and LogSince(0) disagree about the retained tail")
	}
}

func TestCheckpointConfigValidation(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	base := Config{
		Me: 1, Peers: peers, Spec: spec,
		NewCoin:          func(int) coin.Coin { return coin.NewIdeal(1) },
		Machine:          NewKVMachine(),
		CheckpointEvery:  4,
		CheckpointSecret: []byte("s"),
	}
	if _, err := New(base); err != nil {
		t.Fatalf("valid checkpoint config rejected: %v", err)
	}
	noSnap := base
	noSnap.Machine = plainMachine{}
	if _, err := New(noSnap); !errors.Is(err, ErrNoSnapshotter) {
		t.Errorf("non-Snapshotter machine: err = %v", err)
	}
	noSecret := base
	noSecret.CheckpointSecret = nil
	if _, err := New(noSecret); !errors.Is(err, ErrNoCkptSecret) {
		t.Errorf("missing secret: err = %v", err)
	}
}

// plainMachine implements only StateMachine.
type plainMachine struct{}

func (plainMachine) Apply(string) error { return nil }

func TestKVMachineSnapshotRoundTrip(t *testing.T) {
	m := NewKVMachine()
	cmds := []string{"set a 1", "set b 2", "set a 3", "garbage", "set z/9 ok", "set a=b c"}
	for _, c := range cmds {
		m.Apply(c) //nolint:errcheck — the malformed command is intentional
	}
	snap := m.Snapshot()
	restored := NewKVMachine()
	if err := restored.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Snapshot() != snap {
		t.Fatal("snapshot round trip not idempotent")
	}
	if restored.Get("a") != "3" || restored.Get("b") != "2" || restored.Get("z/9") != "ok" {
		t.Fatal("restored state wrong")
	}
	// Keys containing '=' must survive the round trip distinctly: the
	// encoding is space-separated precisely because {"a=b": "c"} and
	// {"a": "b=c"} would collide under an '='-separated one.
	if restored.Get("a=b") != "c" || restored.Get("a") != "3" {
		t.Fatalf("'='-bearing key collapsed: a=b→%q a→%q", restored.Get("a=b"), restored.Get("a"))
	}
	if restored.Applied() != len(cmds) {
		t.Fatalf("restored applied = %d, want %d", restored.Applied(), len(cmds))
	}
	if err := restored.Restore("no-header"); err == nil {
		t.Error("malformed snapshot accepted")
	}
	if err := restored.Restore("#3\nbroken-line\n"); err == nil {
		t.Error("malformed snapshot line accepted")
	}
}
