package smr

import (
	"reflect"
	"testing"

	"repro/internal/types"
)

// This file pins the checkpoint plane's rejection behavior against
// malformed payload *shapes*: every hostile shape must be rejected
// silently — no protocol-state change, no output traffic — and the cheap
// structural rejections (length checks that fire before any MAC is even
// computed) must stay allocation-free, so a flood of garbage votes or
// certificates costs the receiver nothing but the delivery itself.

// ckptStateFingerprint captures every piece of replica state a rejected
// payload must leave untouched.
type ckptStateFingerprint struct {
	slot         int
	base         int
	logLen       int
	logDigest    uint64
	stateDigest  uint64
	certifiedCut int
	pendingCuts  int
	log          []Entry
}

func fingerprint(rep *Replica) ckptStateFingerprint {
	sd, _ := rep.StateDigest()
	return ckptStateFingerprint{
		slot:         rep.Slot(),
		base:         rep.Base(),
		logLen:       rep.LogLen(),
		logDigest:    rep.LogDigest(),
		stateDigest:  sd,
		certifiedCut: rep.CertifiedCut(),
		pendingCuts:  rep.PendingCuts(),
		log:          rep.Log(),
	}
}

// malformedCkptPayloads is the hostile shape battery. structural == true
// marks the shapes rejected by pure length/count checks — those must also
// be allocation-free.
func malformedCkptPayloads(n int) []struct {
	name       string
	payload    types.Payload
	structural bool
} {
	quorumVoters := func(k int) []types.ProcessID {
		v := make([]types.ProcessID, k)
		for i := range v {
			v[i] = types.ProcessID(i + 1)
		}
		return v
	}
	vecs := func(k, entries int) [][]string {
		m := make([][]string, k)
		for i := range m {
			row := make([]string, entries)
			for j := range row {
				row[j] = "garbage-mac"
			}
			m[i] = row
		}
		return m
	}
	return []struct {
		name       string
		payload    types.Payload
		structural bool
	}{
		{
			name:       "vote/short-mac-vector",
			payload:    &types.CkptVotePayload{Slot: 1 << 20, StateDigest: 1, LogDigest: 2, MACs: []string{"x", "y"}},
			structural: true,
		},
		{
			name:       "vote/nil-mac-vector",
			payload:    &types.CkptVotePayload{Slot: 1 << 20, StateDigest: 1, LogDigest: 2},
			structural: true,
		},
		{
			name:       "vote/oversized-mac-vector",
			payload:    &types.CkptVotePayload{Slot: 1 << 20, StateDigest: 1, LogDigest: 2, MACs: vecs(1, n+3)[0]},
			structural: true,
		},
		{
			name: "vote/garbage-macs",
			// Right length, hostile bytes: rejected by the HMAC check itself
			// (this path hashes, so it is exempt from the 0-alloc gate).
			payload: &types.CkptVotePayload{Slot: 1 << 20, StateDigest: 1, LogDigest: 2, MACs: vecs(1, n)[0]},
		},
		{
			name: "cert/voter-mac-count-mismatch",
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
				Voters: quorumVoters(3), VoteMACs: vecs(2, n),
			},
			structural: true,
		},
		{
			name: "cert/sub-quorum",
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
				Voters: quorumVoters(2), VoteMACs: vecs(2, n),
			},
			structural: true,
		},
		{
			name: "cert/empty",
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
			},
			structural: true,
		},
		{
			name: "cert/snapshot-without-quorum",
			// A snapshot riding a voteless certificate: the quorum check
			// rejects it before the snapshot is even digested.
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
				Snapshot: "#1\npoisoned\n",
			},
			structural: true,
		},
		{
			name: "cert/duplicate-voters",
			// Shape-valid counts, duplicated identity: caught by the
			// distinct-voter scan (allocates its seen-set, so not 0-alloc).
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
				Voters:   []types.ProcessID{1, 1, 2},
				VoteMACs: vecs(3, n),
			},
		},
		{
			name: "cert/garbage-quorum",
			payload: &types.CkptCertPayload{
				Slot: 1 << 20, StateDigest: 1, LogDigest: 2,
				Voters: quorumVoters(3), VoteMACs: vecs(3, n),
			},
		},
	}
}

// TestMalformedCkptPayloadsRejectedSilently: every hostile shape leaves the
// receiver byte-identical — same slot, same log, same digests, same
// certified cut, same pending-vote table — and produces no output traffic.
func TestMalformedCkptPayloadsRejectedSilently(t *testing.T) {
	const n = 4
	replicas := buildCkptSMR(t, n, 1, 8, 4, 11)
	rep := replicas[0]
	from := replicas[1].ID()
	for _, tc := range malformedCkptPayloads(n) {
		t.Run(tc.name, func(t *testing.T) {
			before := fingerprint(rep)
			out := rep.Deliver(types.Message{From: from, To: rep.ID(), Payload: tc.payload})
			if len(out) != 0 {
				t.Errorf("rejection produced %d output messages: %v", len(out), out)
			}
			after := fingerprint(rep)
			if !reflect.DeepEqual(before, after) {
				t.Errorf("state changed across rejection:\nbefore %+v\nafter  %+v", before, after)
			}
		})
	}
}

// TestMalformedCkptPayloadsRejectAllocFree: the structural rejections —
// wrong MAC-vector length, voter/MAC count mismatch, sub-quorum — fire on
// length checks alone and must not allocate, so shape spam cannot pressure
// the receiver's allocator. (AllocsPerRun's warm-up call absorbs any lazy
// first-use initialization.)
func TestMalformedCkptPayloadsRejectAllocFree(t *testing.T) {
	const n = 4
	replicas := buildCkptSMR(t, n, 1, 8, 4, 13)
	rep := replicas[0]
	from := replicas[1].ID()
	for _, tc := range malformedCkptPayloads(n) {
		if !tc.structural {
			continue
		}
		t.Run(tc.name, func(t *testing.T) {
			m := types.Message{From: from, To: rep.ID(), Payload: tc.payload}
			if allocs := testing.AllocsPerRun(100, func() {
				if out := rep.Deliver(m); len(out) != 0 {
					t.Fatalf("rejection produced output: %v", out)
				}
			}); allocs != 0 {
				t.Errorf("structural rejection allocates %.1f allocs/op, want 0", allocs)
			}
		})
	}
}
