// Package smr builds state machine replication — a totally ordered,
// Byzantine-fault-tolerant command log — from the paper's primitives. It is
// the library form of the reduction shown in examples/replicatedlog:
//
//	slot s: the rotation's proposer disseminates its next command with
//	        Bracha reliable broadcast (so the payload cannot equivocate);
//	        every replica, once it holds the candidate, runs binary
//	        consensus instance s on committing it; a 1-decision appends the
//	        candidate to the log and applies it to the deterministic state
//	        machine.
//
// Agreement of the log follows from RBC agreement (same payload) plus
// binary agreement (same commit decision) per slot, and induction over
// slots. Proposers with nothing to say propose an explicit no-op so the log
// always advances.
//
// Liveness requires every proposer in the rotation to be live: a purely
// asynchronous system cannot distinguish a crashed proposer from a slow one
// (that is FLP talking), so skipping dead proposers' slots needs either
// timeouts (partial synchrony) or the asynchronous-common-subset
// construction (internal/acs). Configure Rotation with the processes you
// expect to be live; crashed non-proposers are tolerated up to f as usual.
package smr

import (
	"errors"
	"fmt"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

// dissemNS is the Tag.Seq namespace for candidate dissemination; binary
// consensus instances use Seq = slot+1 (1-based, slot numbering is 0-based).
const dissemNS = 1 << 20

// Noop is the explicit empty command a proposer submits when its queue is
// empty on its turn.
const Noop = "\x00noop"

// StateMachine is the deterministic application a Replica drives. Apply is
// called exactly once per committed non-noop command, in log order, with
// identical sequences at every correct replica.
type StateMachine interface {
	Apply(cmd string) error
}

// Entry is one committed log position.
type Entry struct {
	Slot     int
	Proposer types.ProcessID
	Command  string
}

// Config configures a Replica.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption.
	Spec quorum.Spec
	// NewCoin builds the coin for one slot's consensus instance. Required.
	NewCoin func(slot int) coin.Coin
	// Rotation lists the proposers, round-robin by slot. Every member must
	// be live for the log to advance. Defaults to Peers.
	Rotation []types.ProcessID
	// Machine receives committed commands. Required.
	Machine StateMachine
	// MaxSlots stops the replica after that many commits (0 = unbounded).
	MaxSlots int
	// Window is the per-round retention window handed to every slot's
	// consensus instance (0 = the core default); see core.Config.Window.
	Window int
	// Recorder, when enabled, receives protocol events.
	Recorder *trace.Recorder
}

// Replica is one state-machine-replication participant. Deterministic
// state machine (sim.Node); not safe for concurrent use.
type Replica struct {
	cfg  Config
	spec quorum.Spec

	values *rbc.Broadcaster

	slot    int
	bin     *core.Node
	cands   map[int]string
	pending map[int][]types.Message
	queue   []string
	waiting map[int]bool // slots whose proposal we already disseminated

	log []Entry

	// The embedded recycled output buffer (see sim.OutBuffer). Together
	// with the append-style RBC path and the inner consensus node's own
	// recycling (emissions are copied into out and the slice handed back,
	// see deliverBin), a steady-state SMR delivery allocates nothing;
	// per-slot setup (the consensus instance, its coin) amortizes across
	// the slot's thousands of deliveries.
	sim.OutBuffer
}

// Config errors.
var (
	ErrNoCoinFactory = errors.New("smr: config requires NewCoin")
	ErrNoMachine     = errors.New("smr: config requires a state machine")
	ErrBadPeers      = errors.New("smr: peers must include me and match spec size")
)

// New creates a replica.
func New(cfg Config) (*Replica, error) {
	if cfg.NewCoin == nil {
		return nil, ErrNoCoinFactory
	}
	if cfg.Machine == nil {
		return nil, ErrNoMachine
	}
	if len(cfg.Peers) != cfg.Spec.N() {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	if len(cfg.Rotation) == 0 {
		cfg.Rotation = cfg.Peers
	}
	return &Replica{
		cfg:     cfg,
		spec:    cfg.Spec,
		values:  rbc.New(cfg.Me, cfg.Peers, cfg.Spec),
		cands:   make(map[int]string),
		pending: make(map[int][]types.Message),
		waiting: make(map[int]bool),
	}, nil
}

var (
	_ sim.Node     = (*Replica)(nil)
	_ sim.Recycler = (*Replica)(nil)
)

// ID implements sim.Node.
func (r *Replica) ID() types.ProcessID { return r.cfg.Me }

// Done implements sim.Node: true once MaxSlots commits happened.
func (r *Replica) Done() bool {
	return r.cfg.MaxSlots > 0 && r.slot >= r.cfg.MaxSlots
}

// Start implements sim.Node.
func (r *Replica) Start() []types.Message { return r.propose(r.Take()) }

// Submit enqueues a command for this replica's future proposing turns. It
// never sends anything itself: dissemination happens when a turn begins (at
// Start or on slot advance), so Submit may be called before the replica is
// started — turns that have already begun proposed what they had (possibly
// a noop) and later commands wait for the next turn.
func (r *Replica) Submit(cmd string) {
	r.queue = append(r.queue, cmd)
}

// Log returns the committed entries so far (copy).
func (r *Replica) Log() []Entry { return append([]Entry(nil), r.log...) }

// Slot returns the next undecided slot index.
func (r *Replica) Slot() int { return r.slot }

// RBCLiveInstances and RBCCompacted expose the dissemination layer's
// windowing state: full-fidelity instances retained vs slots released to
// compact delivered-digest records (diagnostics for the windowing tests).
func (r *Replica) RBCLiveInstances() int { return r.values.Instances() }

// RBCCompacted returns how many dissemination instances have been released
// to compact delivered-digest records.
func (r *Replica) RBCCompacted() int { return r.values.Compacted() }

// proposer returns the proposer of a slot.
func (r *Replica) proposer(slot int) types.ProcessID {
	return r.cfg.Rotation[slot%len(r.cfg.Rotation)]
}

// propose disseminates this replica's candidate for the current slot if it
// is the proposer and has not disseminated yet, appending into out.
func (r *Replica) propose(out []types.Message) []types.Message {
	if r.Done() || r.proposer(r.slot) != r.cfg.Me || r.waiting[r.slot] {
		return out
	}
	cmd := Noop
	if len(r.queue) > 0 {
		cmd = r.queue[0]
		r.queue = r.queue[1:]
	}
	r.waiting[r.slot] = true
	return r.values.AppendBroadcast(out, types.Tag{Seq: dissemNS + r.slot}, cmd)
}

// Deliver implements sim.Node.
func (r *Replica) Deliver(m types.Message) []types.Message {
	if r.Done() {
		return nil
	}
	out := r.Take()
	switch inst, kind := classify(m); kind {
	case trafficValues:
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok {
			break
		}
		var deliveries []rbc.Delivery
		out, deliveries = r.values.AppendHandle(out, m.From, p)
		for _, d := range deliveries {
			slot := d.ID.Tag.Seq - dissemNS
			if slot < 0 || d.ID.Sender != r.proposer(slot) {
				continue // only the slot's proposer may fill it
			}
			if _, dup := r.cands[slot]; !dup {
				r.cands[slot] = d.Body
			}
		}
	case trafficBinary:
		switch {
		case inst == r.slot+1 && r.bin != nil:
			out = r.deliverBin(out, m)
		case inst > r.slot && inst <= r.slot+1_000_000:
			r.pending[inst] = append(r.pending[inst], m)
		}
	case trafficCoin:
		if r.bin != nil {
			out = r.deliverBin(out, m)
		}
	}
	return r.step(out)
}

// deliverBin feeds one message to the current slot's consensus instance,
// copies its emissions into out, and hands the instance's slice straight
// back for reuse (the inner zero-allocation loop).
func (r *Replica) deliverBin(out []types.Message, m types.Message) []types.Message {
	msgs := r.bin.Deliver(m)
	out = append(out, msgs...)
	r.bin.Recycle(msgs)
	return out
}

type trafficKind int

const (
	trafficValues trafficKind = iota + 1
	trafficBinary
	trafficCoin
)

func classify(m types.Message) (int, trafficKind) {
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		if p.ID.Tag.Seq >= dissemNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.DecidePayload:
		return p.Instance, trafficBinary
	case *types.CoinSharePayload:
		return 0, trafficCoin
	default:
		return 0, trafficBinary
	}
}

// step starts the current slot's consensus once its candidate arrived and
// finalizes slots as they decide, appending all emissions to out.
func (r *Replica) step(out []types.Message) []types.Message {
	for !r.Done() {
		if r.bin == nil {
			if _, ok := r.cands[r.slot]; !ok {
				return out
			}
			bin, err := core.New(core.Config{
				Me: r.cfg.Me, Peers: r.cfg.Peers, Spec: r.spec,
				Coin:     r.cfg.NewCoin(r.slot),
				Proposal: types.One, // candidate in hand
				Instance: r.slot + 1,
				Window:   r.cfg.Window,
				Recorder: r.cfg.Recorder,
			})
			if err != nil {
				panic(fmt.Sprintf("smr: starting slot %d: %v", r.slot, err))
			}
			r.bin = bin
			msgs := bin.Start()
			out = append(out, msgs...)
			bin.Recycle(msgs)
			for _, m := range r.pending[r.slot+1] {
				out = r.deliverBin(out, m)
			}
			delete(r.pending, r.slot+1)
		}
		v, decided := r.bin.Decided()
		if !decided || !r.bin.Done() {
			return out
		}
		if v == types.One {
			cmd := r.cands[r.slot]
			r.log = append(r.log, Entry{Slot: r.slot, Proposer: r.proposer(r.slot), Command: cmd})
			if cmd != Noop {
				if err := r.cfg.Machine.Apply(cmd); err != nil {
					r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
						Note: fmt.Sprintf("apply slot %d: %v", r.slot, err)})
				}
			}
		} else {
			r.log = append(r.log, Entry{Slot: r.slot, Proposer: r.proposer(r.slot), Command: ""})
		}
		// Per-slot pruning, the log layer's version of the per-round
		// invariant: a slot's candidate, dissemination flag, and RBC
		// dissemination instance are dead once the slot commits, so a long
		// log keeps a bounded working set instead of every candidate ever
		// proposed. The RBC instance compacts to a delivered-digest record
		// (a no-op while non-terminal; see internal/rbc's windowing
		// contract), so late echoes from lagging replicas still meet the
		// exact silence the full state would have given them.
		r.values.Compact(types.InstanceID{
			Sender: r.proposer(r.slot),
			Tag:    types.Tag{Seq: dissemNS + r.slot},
		})
		delete(r.cands, r.slot)
		delete(r.waiting, r.slot)
		r.slot++
		r.bin = nil
		out = r.propose(out)
	}
	return out
}

func (r *Replica) record(e trace.Event) {
	if r.cfg.Recorder.Enabled() {
		r.cfg.Recorder.Record(e)
	}
}
