// Package smr builds state machine replication — a totally ordered,
// Byzantine-fault-tolerant command log — from the paper's primitives. It is
// the library form of the reduction shown in examples/replicatedlog:
//
//	slot s: the rotation's proposer disseminates its next command with
//	        Bracha reliable broadcast (so the payload cannot equivocate);
//	        every replica, once it holds the candidate, runs binary
//	        consensus instance s on committing it; a 1-decision appends the
//	        candidate to the log and applies it to the deterministic state
//	        machine.
//
// Agreement of the log follows from RBC agreement (same payload) plus
// binary agreement (same commit decision) per slot, and induction over
// slots. Proposers with nothing to say propose an explicit no-op so the log
// always advances.
//
// Liveness requires every proposer in the rotation to be live: a purely
// asynchronous system cannot distinguish a crashed proposer from a slow one
// (that is FLP talking), so skipping dead proposers' slots needs either
// timeouts (partial synchrony) or the asynchronous-common-subset
// construction (internal/acs). Configure Rotation with the processes you
// expect to be live; crashed non-proposers are tolerated up to f as usual.
//
// # Batching and pipelined dissemination
//
// One slot of agreement costs the same ~7n³ deliveries whatever its body
// carries, so throughput scales with how much each instance decides. With
// Config.Batch > 1 a proposing turn drains up to Batch commands from the
// bounded submit queue (Submit returns an accepted-bool; see QueueLimit)
// into one canonical batch body (wire.EncodeBatch), and the decided slot
// unbatches into one log Entry per command — applied and digest-folded
// individually, atomically within the slot, so checkpoint cuts, state
// transfer, and the durable suffix detector all see the same entry stream
// they would unbatched. With Config.Depth > 1 a replica disseminates the
// candidates for its own turns up to Depth-1 slots past the agreement
// frontier, overlapping RBC with the current slot's agreement; agreement
// itself stays strictly sequential, so pipelining reduces end-to-end
// latency, never the per-slot delivery count or what commits. Both knobs
// default to the pre-batching behavior (Batch, Depth <= 1), bitwise.
//
// # Checkpointing and state transfer
//
// With Config.CheckpointEvery set, the replica layers the protocol-level
// checkpoint subsystem (internal/ckpt) over the log. Every CheckpointEvery
// slots it snapshots its Snapshotter machine, folds the log frontier into a
// Checkpoint{Slot, StateDigest, LogDigest}, and broadcasts a signed vote;
// 2f+1 matching votes certify the cut. A certified cut becomes the new log
// base: committed entries below it are truncated (the chained LogDigest
// still covers them), the dissemination instances and digest records of
// pre-cut slots are dropped outright, superseded snapshots and votes are
// released, and Config.OnCertified lets the embedding harness retire
// cluster-shared per-slot state (coin dealers). Steady-state memory is then
// O(window + interval) instead of O(slots committed).
//
// The catch-up path that makes the release safe: a replica observing
// traffic at least one checkpoint interval ahead of its own frontier — a
// restarted process whose in-flight messages are gone, or one lagging past
// the window — sends a targeted state-transfer request to one peer at a
// time, rotating deterministically. The peer answers with the latest
// certificate plus the snapshot at its cut (deduplicated per requester,
// cut, and retry nonce); the replica verifies the votes and the snapshot
// digest, installs the snapshot as its new base, and rejoins the live
// slots, committing onward through the ordinary protocol. Nothing
// uncertified is ever installed, and a response that comes back stale or
// unverifiable falls over to the next peer immediately (bounded per
// responder), so a Byzantine responder can delay one round-trip but never
// stall catch-up. With Config.Store set the latest certified checkpoint
// also persists to disk, which is what lets a whole-cluster power cycle
// recover with nobody left to transfer from.
package smr

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// dissemNS is the Tag.Seq namespace for candidate dissemination; binary
// consensus instances use Seq = slot+1 (1-based, slot numbering is 0-based).
const dissemNS = 1 << 20

// Noop is the explicit empty command a proposer submits when its queue is
// empty on its turn.
const Noop = "\x00noop"

// DefaultQueueLimit bounds the submit queue when Config.QueueLimit is zero.
// Submissions beyond the bound are rejected (Submit returns false) and
// counted, so a halted or saturated replica cannot silently retain every
// command a client ever offers.
const DefaultQueueLimit = 1 << 14

// StateMachine is the deterministic application a Replica drives. Apply is
// called exactly once per committed non-noop command, in log order, with
// identical sequences at every correct replica.
type StateMachine interface {
	Apply(cmd string) error
}

// Entry is one committed log position. A slot commits one entry without
// batching; with Config.Batch > 1 a decided batch body unbatches into one
// entry per bundled command, ordered by Index within the slot.
type Entry struct {
	Slot int
	// Index is the entry's position within its slot's batch (0 for the
	// first or only entry).
	Index    int
	Proposer types.ProcessID
	Command  string
}

// Config configures a Replica.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption.
	Spec quorum.Spec
	// NewCoin builds the coin for one slot's consensus instance. Required.
	NewCoin func(slot int) coin.Coin
	// Rotation lists the proposers, round-robin by slot. Every member must
	// be live for the log to advance. Defaults to Peers.
	Rotation []types.ProcessID
	// Machine receives committed commands. Required.
	Machine StateMachine
	// MaxSlots stops the replica after that many commits (0 = unbounded).
	MaxSlots int
	// Batch caps how many queued commands one proposing turn bundles into a
	// single dissemination body (0 or 1 = one raw command per slot: the
	// pre-batching behavior and wire format, bitwise). With Batch > 1 the
	// turn encodes up to Batch queued commands as one canonical batch body
	// (wire.EncodeBatch) and the decided slot unbatches into one log Entry
	// per command, so agreement cost is paid once per batch.
	Batch int
	// Depth is the dissemination pipeline depth: how many of this replica's
	// upcoming proposing turns disseminate ahead of the agreement frontier
	// (0 or 1 = only the current slot, the pre-pipelining behavior).
	// Agreement stays strictly sequential — slot s+1's instance starts only
	// after slot s decides, because coin shares carry no instance tag to
	// route concurrent instances by — but with Depth > 1 the RBC for turns
	// in [slot, slot+Depth) runs while slot's agreement is still deciding,
	// hiding dissemination latency behind agreement.
	Depth int
	// QueueLimit bounds the submit queue (0 = DefaultQueueLimit, negative =
	// unbounded). Submit rejects and counts commands beyond the bound.
	QueueLimit int
	// Coded switches candidate dissemination — the plane carrying batch
	// bodies — to erasure-coded reliable broadcast (see internal/rbc). The
	// per-slot agreement instances stay uncoded (their bodies are one step
	// message each). The committed log is byte-identical either way; only
	// dissemination's wire format and bandwidth change.
	Coded bool
	// Window is the per-round retention window handed to every slot's
	// consensus instance (0 = the core default); see core.Config.Window.
	Window int
	// CheckpointEvery enables protocol-level checkpointing with the given
	// cut cadence in slots (0 = off). Requires Machine to implement
	// Snapshotter and a shared CheckpointSecret. See the package doc's
	// checkpointing section.
	CheckpointEvery int
	// CheckpointSecret is the master secret from which the checkpoint
	// subsystem derives its pairwise vote-authentication link keys
	// (trusted setup, as for the transport keyring: each process is dealt
	// only its own links). All replicas of a deployment must share the
	// same master; required when CheckpointEvery > 0.
	CheckpointSecret []byte
	// MaxPendingCuts overrides the checkpoint tracker's pending-cut cap
	// (0 = ckpt.DefaultMaxPendingCuts): how many distinct uncertified cuts
	// may hold votes before deterministic largest-first eviction kicks in.
	MaxPendingCuts int
	// Store, when set, persists the latest certified checkpoint (certificate,
	// snapshot, committed log suffix) through atomic temp-file+rename writes,
	// and New restores from it: the replica verifies the stored certificate
	// exactly like a network transfer, installs the snapshot, and resumes at
	// the cut — which is what lets a whole-cluster power cycle recover with
	// no peer ahead to transfer from. A missing, torn, or corrupted record
	// falls back to an empty start and network state transfer. Requires
	// CheckpointEvery > 0.
	Store *ckpt.Store
	// OnCertified, when set, is called each time this replica's highest
	// certified cut advances, with the release floor (the certified cut
	// capped at the replica's own frontier). It fires before the pre-cut
	// log entries are truncated, so a harness tailing the log via LogSince
	// can drain them first; embedding harnesses also use it to retire
	// cluster-shared per-slot state such as coin.DealerSet entries below
	// the cut. Cuts installed by state transfer fire it too (with the
	// installed cut; the log was already empty).
	OnCertified func(cut int)
	// Recorder, when enabled, receives protocol events.
	Recorder *trace.Recorder
	// Telemetry, when set, receives checkpoint-plane phase marks
	// (vote→certify, request→install) and is forwarded to the
	// dissemination broadcaster and each slot's binary instance. Nil
	// disables all charging.
	Telemetry *sim.Telemetry
}

// Replica is one state-machine-replication participant. Deterministic
// state machine (sim.Node); not safe for concurrent use.
type Replica struct {
	cfg  Config
	spec quorum.Spec

	values *rbc.Broadcaster

	slot    int
	bin     *core.Node
	cands   map[int]string
	pending map[int][]types.Message
	queue   []string
	dropped int          // submissions rejected by the queue bound or after Done
	waiting map[int]bool // slots whose proposal we already disseminated

	// log holds the committed entries from base upward; entries below base
	// were truncated at a certified checkpoint cut and are summarized by
	// logDigest, the chained digest over the complete history [0, slot).
	log       []Entry
	base      int
	logDigest uint64

	// Checkpointing state (nil/zero with CheckpointEvery == 0).
	tracker      *ckpt.Tracker
	snap         Snapshotter
	others       []types.ProcessID // peers excluding this replica (vote fan-out)
	frontier     int               // highest slot named by live traffic
	sinceRequest int               // deliveries until the next transfer request may fire
	transfers    int               // state transfers installed

	// Telemetry phase-mark start times (zero-valued without a sink).
	voteAt map[int]sim.Time // cut slot → time this replica's own vote was cast
	reqAt  sim.Time         // time the current transfer-request epoch opened

	// Transfer retry/fallback state: requests are targeted (one peer at a
	// time, rotating deterministically by nonce), and a response that comes
	// back stale or unverifiable immediately re-requests from the next peer
	// — bounded per catch-up epoch by the per-responder dedup in reqBad.
	reqNonce       int                      // strictly increasing request counter (the wire nonce)
	reqBad         map[types.ProcessID]bool // responders that answered badly this epoch
	retries        int                      // reactive re-requests sent after a bad response
	staleResponses int                      // full responses at or below our own frontier
	badResponses   int                      // responses that failed certificate/snapshot verification

	// Durable-store state (nil/zero without Config.Store).
	store            *ckpt.Store
	storeErrors      int                         // failed saves, corrupt or unverifiable loads
	restoredCut      int                         // cut installed from disk at boot (0 = none)
	restoreSuffix    map[suffixKey]ckpt.LogEntry // persisted suffix entries awaiting re-commit
	suffixDivergence int                         // re-committed entries that contradicted the suffix

	// The embedded recycled output buffer (see sim.OutBuffer). Together
	// with the append-style RBC path and the inner consensus node's own
	// recycling (emissions are copied into out and the slice handed back,
	// see deliverBin), a steady-state SMR delivery allocates nothing;
	// per-slot setup (the consensus instance, its coin) amortizes across
	// the slot's thousands of deliveries.
	sim.OutBuffer
}

// Config errors.
var (
	ErrNoCoinFactory = errors.New("smr: config requires NewCoin")
	ErrNoMachine     = errors.New("smr: config requires a state machine")
	ErrBadPeers      = errors.New("smr: peers must include me and match spec size")
	ErrNoSnapshotter = errors.New("smr: checkpointing requires a Snapshotter machine")
	ErrNoCkptSecret  = errors.New("smr: checkpointing requires a cluster secret")
	ErrStoreNoCkpt   = errors.New("smr: a durable store requires checkpointing")
)

// New creates a replica.
func New(cfg Config) (*Replica, error) {
	if cfg.NewCoin == nil {
		return nil, ErrNoCoinFactory
	}
	if cfg.Machine == nil {
		return nil, ErrNoMachine
	}
	if len(cfg.Peers) != cfg.Spec.N() {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	if len(cfg.Rotation) == 0 {
		cfg.Rotation = cfg.Peers
	}
	newRBC := rbc.New
	if cfg.Coded {
		newRBC = rbc.NewCoded
	}
	r := &Replica{
		cfg:       cfg,
		spec:      cfg.Spec,
		values:    newRBC(cfg.Me, cfg.Peers, cfg.Spec),
		cands:     make(map[int]string),
		pending:   make(map[int][]types.Message),
		waiting:   make(map[int]bool),
		logDigest: ckpt.InitialLogDigest,
	}
	r.values.SetTelemetry(cfg.Telemetry)
	if cfg.Store != nil && cfg.CheckpointEvery <= 0 {
		return nil, ErrStoreNoCkpt
	}
	if cfg.CheckpointEvery > 0 {
		snap, ok := cfg.Machine.(Snapshotter)
		if !ok {
			return nil, fmt.Errorf("%w: %T", ErrNoSnapshotter, cfg.Machine)
		}
		if len(cfg.CheckpointSecret) == 0 {
			return nil, ErrNoCkptSecret
		}
		tracker, err := ckpt.NewTracker(cfg.Me, cfg.Spec,
			ckpt.NewAuthority(cfg.CheckpointSecret, cfg.Me, cfg.Peers), cfg.CheckpointEvery)
		if err != nil {
			return nil, err
		}
		if cfg.MaxPendingCuts > 0 {
			tracker.SetMaxPendingCuts(cfg.MaxPendingCuts)
		}
		r.snap = snap
		r.tracker = tracker
		for _, p := range cfg.Peers {
			if p != cfg.Me {
				r.others = append(r.others, p)
			}
		}
		r.store = cfg.Store
		r.restoreFromStore()
	}
	return r, nil
}

// restoreFromStore boots the replica from its durable record, if one exists
// and survives the same verification gate as a network state transfer:
// checksum and strict decode in the store, then the certificate's MAC
// quorum and the snapshot digest here. On success the replica resumes *at
// the cut* — slot, base, log digest, and machine state all jump there — and
// the persisted log suffix becomes a cross-restart divergence detector:
// the suffix slots re-commit through ordinary consensus, and any
// re-committed entry that contradicts the persisted one is counted in
// suffixDivergence. Every failure (no record, torn file, corruption,
// unverifiable certificate, unrestorable snapshot) degrades to an empty
// start and network state transfer.
func (r *Replica) restoreFromStore() {
	if r.store == nil {
		return
	}
	rec, err := r.store.Load()
	if err != nil {
		if !errors.Is(err, ckpt.ErrNoRecord) {
			r.storeErrors++
			r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
				Note: fmt.Sprintf("ckpt store load rejected: %v", err)})
		}
		return
	}
	cert, ok := r.tracker.VerifyCertPayload(&rec.Cert)
	if !ok || cert.Slot <= 0 {
		r.storeErrors++
		r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
			Note: "ckpt store record failed certificate verification"})
		return
	}
	if err := r.snap.Restore(rec.Cert.Snapshot); err != nil {
		r.storeErrors++
		r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
			Note: fmt.Sprintf("ckpt store restore failed: %v", err)})
		return
	}
	r.slot = cert.Slot
	r.base = cert.Slot
	r.logDigest = cert.LogDigest
	r.frontier = cert.Slot
	r.restoredCut = cert.Slot
	r.tracker.Adopt(cert, rec.Cert.Snapshot)
	if len(rec.Suffix) > 0 {
		r.restoreSuffix = make(map[suffixKey]ckpt.LogEntry, len(rec.Suffix))
		for _, e := range rec.Suffix {
			if e.Slot >= cert.Slot {
				r.restoreSuffix[suffixKey{e.Slot, e.Index}] = e
			}
		}
	}
}

// suffixKey addresses one persisted suffix entry: batched proposals commit
// several entries per slot, so slot alone does not identify an entry.
type suffixKey struct{ slot, index int }

var (
	_ sim.Node     = (*Replica)(nil)
	_ sim.Recycler = (*Replica)(nil)
)

// ID implements sim.Node.
func (r *Replica) ID() types.ProcessID { return r.cfg.Me }

// Done implements sim.Node: true once MaxSlots commits happened.
func (r *Replica) Done() bool {
	return r.cfg.MaxSlots > 0 && r.slot >= r.cfg.MaxSlots
}

// Start implements sim.Node. A replica restored from its durable store also
// announces its certified cut (a bare certificate, no snapshot): after a
// whole-cluster power cycle the replicas may boot at different persisted
// cuts, and the announcement is what lets the ones behind discover the gap
// and catch up through ordinary state transfer.
func (r *Replica) Start() []types.Message {
	out := r.propose(r.Take())
	if r.restoredCut > 0 {
		if p, ok := r.tracker.CertPayload(false); ok {
			out = types.AppendBroadcast(out, r.cfg.Me, r.others, p)
		}
	}
	return out
}

// Submit enqueues a command for this replica's future proposing turns and
// reports whether it was accepted. It never sends anything itself:
// dissemination happens when a turn begins (at Start or on slot advance),
// so Submit may be called before the replica is started — turns that have
// already begun proposed what they had (possibly a noop) and later commands
// wait for the next turn.
//
// A command is rejected (false, counted in Dropped) when the replica is
// Done — it will never propose again, so accepting would leak the command
// forever — when the queue is at its bound (Config.QueueLimit), or, with
// batching on, when the command alone exceeds the batch wire bounds and so
// could never be encoded.
func (r *Replica) Submit(cmd string) bool {
	if r.Done() {
		r.dropped++
		return false
	}
	if r.batchSize() > 1 && len(cmd) > wire.MaxBatchBytes {
		r.dropped++
		return false
	}
	if limit := r.queueLimit(); limit > 0 && len(r.queue) >= limit {
		r.dropped++
		return false
	}
	r.queue = append(r.queue, cmd)
	return true
}

// queueLimit resolves Config.QueueLimit: 0 means DefaultQueueLimit,
// negative means unbounded (returned as 0).
func (r *Replica) queueLimit() int {
	switch {
	case r.cfg.QueueLimit > 0:
		return r.cfg.QueueLimit
	case r.cfg.QueueLimit < 0:
		return 0
	default:
		return DefaultQueueLimit
	}
}

// Dropped returns how many submitted commands were rejected by the queue
// bound, the batch wire bounds, or submission after Done.
func (r *Replica) Dropped() int { return r.dropped }

// QueueLen returns how many accepted commands await a proposing turn.
func (r *Replica) QueueLen() int { return len(r.queue) }

// Log returns the retained committed entries (copy) — the full log without
// checkpointing, the suffix above the last certified cut with it. It copies
// the whole retained log on every call and exists for test assertions only;
// every non-test caller polls through LogLen (O(1) probe) and LogSince
// (O(new entries) tail reads).
func (r *Replica) Log() []Entry { return append([]Entry(nil), r.log...) }

// LogLen returns how many committed entries the replica retains, without
// copying anything — the O(1) "did anything commit since I looked" probe
// for per-delivery polling.
func (r *Replica) LogLen() int { return len(r.log) }

// LogSince returns a copy of the retained entries with Slot >= slot. A
// poller that tracks the next slot it has not seen pays O(new entries) per
// call instead of Log's O(committed slots). Entries below the retention
// base (truncated at a certified cut) are gone; LogSince silently starts at
// the base, which Base() exposes so callers can detect the gap.
func (r *Replica) LogSince(slot int) []Entry {
	// Entries are ordered by slot but a slot may hold a whole batch, so the
	// first retained entry of a slot is found by search, not arithmetic.
	idx := sort.Search(len(r.log), func(i int) bool { return r.log[i].Slot >= slot })
	if idx >= len(r.log) {
		return nil
	}
	return append([]Entry(nil), r.log[idx:]...)
}

// Base returns the first retained slot: 0 without checkpointing, the last
// installed or certified cut with it.
func (r *Replica) Base() int { return r.base }

// LogDigest returns the chained digest over the replica's complete
// committed history [0, Slot()) — including entries truncated at checkpoint
// cuts, whose contribution the certified cut pinned (see ckpt.FoldEntry).
func (r *Replica) LogDigest() uint64 { return r.logDigest }

// Slot returns the next undecided slot index.
func (r *Replica) Slot() int { return r.slot }

// CertifiedCut returns the latest certified checkpoint cut this replica
// knows (0 if none or checkpointing is off).
func (r *Replica) CertifiedCut() int {
	if r.tracker == nil {
		return 0
	}
	cert, ok := r.tracker.Latest()
	if !ok {
		return 0
	}
	return cert.Slot
}

// Transfers returns how many state transfers this replica has installed.
func (r *Replica) Transfers() int { return r.transfers }

// TransferRetries returns how many reactive re-requests this replica sent
// after a stale or unverifiable transfer response.
func (r *Replica) TransferRetries() int { return r.retries }

// StaleResponses counts full transfer responses (certificate plus snapshot)
// that arrived at or below this replica's own frontier — what a
// stale-certificate responder serves.
func (r *Replica) StaleResponses() int { return r.staleResponses }

// UnverifiableResponses counts certificate payloads that failed
// verification: forged votes, sub-quorum certificates, or a snapshot that
// does not digest to the certified state.
func (r *Replica) UnverifiableResponses() int { return r.badResponses }

// StoreErrors counts durable-store failures survived: rejected or
// unverifiable records at boot and failed saves (each falls back to the
// network path).
func (r *Replica) StoreErrors() int { return r.storeErrors }

// RestoredCut returns the cut installed from the durable store at boot
// (0 = booted empty).
func (r *Replica) RestoredCut() int { return r.restoredCut }

// SuffixDivergence counts re-committed entries that contradicted the
// durable record's log suffix — must stay 0, by agreement plus the
// certificate pinning the prefix.
func (r *Replica) SuffixDivergence() int { return r.suffixDivergence }

// PendingCuts returns how many uncertified cuts the checkpoint tracker
// holds votes for (0 with checkpointing off; bounded by the pending-cut
// cap however much a Byzantine voter spams).
func (r *Replica) PendingCuts() int {
	if r.tracker == nil {
		return 0
	}
	return r.tracker.PendingCuts()
}

// LatestCert returns this replica's highest certified checkpoint
// certificate (ok = false when none or checkpointing is off).
func (r *Replica) LatestCert() (ckpt.Certificate, bool) {
	if r.tracker == nil {
		return ckpt.Certificate{}, false
	}
	return r.tracker.Latest()
}

// TransferPayload builds the wire form of this replica's latest certificate
// — with the retained snapshot at the cut when withSnapshot is set — or ok
// = false when it holds no certificate (or no snapshot for it). Harnesses
// and fault injectors use it; the replica itself serves transfers through
// the request path.
func (r *Replica) TransferPayload(withSnapshot bool) (*types.CkptCertPayload, bool) {
	if r.tracker == nil {
		return nil, false
	}
	return r.tracker.CertPayload(withSnapshot)
}

// StateDigest returns the digest of the machine's current snapshot (ok =
// false when the machine is not a Snapshotter).
func (r *Replica) StateDigest() (uint64, bool) {
	if r.snap == nil {
		if s, ok := r.cfg.Machine.(Snapshotter); ok {
			return ckpt.Digest(s.Snapshot()), true
		}
		return 0, false
	}
	return ckpt.Digest(r.snap.Snapshot()), true
}

// RBCDigestBytes returns the bytes the dissemination layer retains in
// compact delivered-digest records — the per-slot residue checkpointing
// retires (see rbc.Broadcaster.DigestBytes).
func (r *Replica) RBCDigestBytes() int { return r.values.DigestBytes() }

// RBCLiveInstances and RBCCompacted expose the dissemination layer's
// windowing state: full-fidelity instances retained vs slots released to
// compact delivered-digest records (diagnostics for the windowing tests).
func (r *Replica) RBCLiveInstances() int { return r.values.Instances() }

// RBCCompacted returns how many dissemination instances have been released
// to compact delivered-digest records.
func (r *Replica) RBCCompacted() int { return r.values.Compacted() }

// proposer returns the proposer of a slot.
func (r *Replica) proposer(slot int) types.ProcessID {
	return r.cfg.Rotation[slot%len(r.cfg.Rotation)]
}

// batchSize resolves Config.Batch (0 or 1 = unbatched).
func (r *Replica) batchSize() int {
	if r.cfg.Batch > 1 {
		return r.cfg.Batch
	}
	return 1
}

// depth resolves Config.Depth (0 or 1 = disseminate only the current slot).
func (r *Replica) depth() int {
	if r.cfg.Depth > 1 {
		return r.cfg.Depth
	}
	return 1
}

// propose disseminates this replica's candidates for its not-yet-proposed
// turns within the pipeline horizon, appending into out. At Depth 1 that is
// exactly the current slot; at Depth > 1 dissemination runs ahead of the
// agreement frontier — the RBC for a turn in [slot, slot+Depth) proceeds
// while the current slot's agreement is still deciding — and every replica
// buffers the early candidates (cands) until agreement reaches them.
func (r *Replica) propose(out []types.Message) []types.Message {
	if r.Done() {
		return out
	}
	horizon := r.slot + r.depth()
	if r.cfg.MaxSlots > 0 && horizon > r.cfg.MaxSlots {
		horizon = r.cfg.MaxSlots
	}
	for s := r.slot; s < horizon; s++ {
		if r.proposer(s) != r.cfg.Me || r.waiting[s] {
			continue
		}
		body := r.takeProposal()
		r.waiting[s] = true
		out = r.values.AppendBroadcast(out, types.Tag{Seq: dissemNS + s}, body)
	}
	return out
}

// proposalTake returns how many queued commands the next proposing turn
// consumes: 0 on an empty queue (the turn proposes a noop), 1 unbatched,
// and with batching up to Batch commands further capped by the batch wire
// bounds — but always at least one, so a queue can never wedge. It is the
// single consumption policy: takeProposal consumes through it when a turn
// actually disseminates, and install mirrors it for the turns a state-
// transfer jump skips, keeping "what would this turn have taken" identical
// on both paths.
func (r *Replica) proposalTake() int {
	if len(r.queue) == 0 {
		return 0
	}
	b := r.batchSize()
	if b <= 1 {
		return 1
	}
	if b > len(r.queue) {
		b = len(r.queue)
	}
	if b > wire.MaxBatchCommands {
		b = wire.MaxBatchCommands
	}
	total := 0
	for i := 0; i < b; i++ {
		total += len(r.queue[i])
		if total > wire.MaxBatchBytes && i > 0 {
			return i
		}
	}
	return b
}

// takeProposal pops the next proposal body off the submit queue: with
// batching off, one raw command — wire-identical to the pre-batching
// format, which is what keeps Batch<=1 runs bitwise equal to the goldens —
// and with Batch > 1 a canonical batch body bundling up to Batch commands.
// An empty queue yields the explicit Noop either way.
func (r *Replica) takeProposal() string {
	k := r.proposalTake()
	if k == 0 {
		return Noop
	}
	if r.batchSize() <= 1 {
		cmd := r.queue[0]
		r.queue = r.queue[1:]
		return cmd
	}
	body, err := wire.EncodeBatch(r.queue[:k])
	if err != nil {
		// Unreachable: Submit bounds each command and proposalTake bounds
		// count and total, which is everything EncodeBatch checks.
		panic(fmt.Sprintf("smr: encoding %d-command batch: %v", k, err))
	}
	r.queue = r.queue[k:]
	return body
}

// Deliver implements sim.Node.
func (r *Replica) Deliver(m types.Message) []types.Message {
	if r.Done() {
		return nil
	}
	out := r.Take()
	switch inst, kind := classify(m); kind {
	case trafficValues:
		var deliveries []rbc.Delivery
		switch p := m.Payload.(type) {
		case *types.RBCPayload:
			r.noteFrontier(p.ID.Tag.Seq - dissemNS)
			out, deliveries = r.values.AppendHandle(out, m.From, p)
		case *types.RBCFragPayload:
			r.noteFrontier(p.ID.Tag.Seq - dissemNS)
			out, deliveries = r.values.AppendHandleFrag(out, m.From, p)
		case *types.RBCSumPayload:
			r.noteFrontier(p.ID.Tag.Seq - dissemNS)
			out, deliveries = r.values.AppendHandleSum(out, m.From, p)
		}
		for _, d := range deliveries {
			slot := d.ID.Tag.Seq - dissemNS
			if slot < 0 || d.ID.Sender != r.proposer(slot) {
				continue // only the slot's proposer may fill it
			}
			if _, dup := r.cands[slot]; !dup {
				r.cands[slot] = d.Body
			}
		}
	case trafficBinary:
		r.noteFrontier(inst - 1)
		switch {
		case inst == r.slot+1 && r.bin != nil:
			out = r.deliverBin(out, m)
		case inst > r.slot && inst <= r.slot+1_000_000:
			r.pending[inst] = append(r.pending[inst], m)
		}
	case trafficCoin:
		if r.bin != nil {
			out = r.deliverBin(out, m)
		}
	case trafficCkpt:
		if r.tracker != nil {
			out = r.onCkpt(out, m)
		}
	}
	out = r.maybeRequest(out)
	return r.step(out)
}

// noteFrontier tracks the highest slot named by live traffic — the
// behind-detection input of the catch-up path. Slot numbers in
// dissemination and consensus traffic are unauthenticated claims (and a
// Byzantine voter can self-sign a vote for any cut), so the frontier is
// treated as a hint, never a suppressant: it decides *whether* this replica
// looks behind, while the retry cadence below decides *when* requests fire.
// An inflated frontier therefore costs bounded periodic requests — answered
// at most once per cut by each peer — and can never prevent a genuinely
// lagging replica from requesting.
func (r *Replica) noteFrontier(slot int) {
	if r.tracker != nil && slot > r.frontier {
		r.frontier = slot
	}
}

// lagging reports whether this replica sits a full checkpoint interval
// behind the observed frontier — a restarted process (whose in-flight
// messages died with it) or one lagging past the window.
func (r *Replica) lagging() bool {
	return r.tracker != nil && r.frontier-r.slot >= r.tracker.Interval()
}

// maybeRequest sends a state-transfer request while this replica is
// lagging. Requests are *targeted*, one peer per request, rotating
// deterministically with the nonce, and paced by deliveries rather than
// frontier growth: one request per ~interval's worth of cluster traffic
// while the gap persists, so an unanswered request (no cut certified yet,
// responder crashed or Byzantine-silent) rotates to the next peer
// unconditionally rather than waiting on a signal an adversary could have
// pre-spent. A response that comes back stale or unverifiable does not wait
// for the pacer — noteBadResponse re-requests from the next peer
// immediately, once per responder per catch-up epoch.
func (r *Replica) maybeRequest(out []types.Message) []types.Message {
	if !r.lagging() {
		return out
	}
	if r.sinceRequest > 0 {
		r.sinceRequest--
		return out
	}
	return r.sendRequest(out)
}

// sendRequest targets the next responder in the rotation with a fresh
// nonce and resets the pacer.
func (r *Replica) sendRequest(out []types.Message) []types.Message {
	r.sinceRequest = r.tracker.Interval() * len(r.cfg.Peers)
	target, ok := r.nextResponder()
	if !ok {
		return out
	}
	req := &types.CkptRequestPayload{Slot: r.slot, Nonce: r.reqNonce}
	r.reqNonce++
	if r.cfg.Telemetry != nil && r.reqAt == 0 {
		// Request→install is measured from the first request of the
		// catch-up epoch; retries within the epoch keep the original mark.
		r.reqAt = r.cfg.Telemetry.Now()
	}
	return append(out, types.Message{From: r.cfg.Me, To: target, Payload: req})
}

// nextResponder picks the request target: the nonce rotation's next peer,
// skipping responders that already answered badly this epoch. When every
// peer has been marked bad the set resets — the fallback loop must stay
// live, and a lost response (not the responder's fault) looks identical to
// a hostile one from here.
func (r *Replica) nextResponder() (types.ProcessID, bool) {
	if len(r.others) == 0 {
		return 0, false
	}
	start := r.reqNonce % len(r.others)
	for i := 0; i < len(r.others); i++ {
		p := r.others[(start+i)%len(r.others)]
		if !r.reqBad[p] {
			return p, true
		}
	}
	clear(r.reqBad)
	return r.others[start], true
}

// noteBadResponse reacts to a transfer response that cannot help: stale
// (a full response at or below our own frontier) or unverifiable (forged
// votes or a poisoned snapshot). While lagging, the responder is marked and
// the request falls over to the next peer immediately; the per-responder
// mark bounds reactive retries to one per peer per catch-up epoch (the
// marks clear when a transfer installs).
func (r *Replica) noteBadResponse(out []types.Message, from types.ProcessID, stale bool) []types.Message {
	if stale {
		r.staleResponses++
	} else {
		r.badResponses++
	}
	if !r.lagging() || r.reqBad[from] {
		return out
	}
	if r.reqBad == nil {
		r.reqBad = make(map[types.ProcessID]bool, len(r.others))
	}
	r.reqBad[from] = true
	r.retries++
	return r.sendRequest(out)
}

// onCkpt handles the three checkpoint-plane payloads.
func (r *Replica) onCkpt(out []types.Message, m types.Message) []types.Message {
	switch p := m.Payload.(type) {
	case *types.CkptVotePayload:
		cert, advanced, verified := r.tracker.NoteVote(m.From, p)
		if advanced {
			out = r.afterCertified(out, cert)
		}
		if verified {
			// A verified vote also reveals the frontier: its voter claims
			// to have committed through p.Slot. Unverified votes reveal
			// nothing and must not touch any state.
			r.noteFrontier(p.Slot)
		}
	case *types.CkptRequestPayload:
		// Serve state transfer — latest certificate plus the snapshot at
		// its cut — if we are ahead of the requester and hold both. The
		// tracker dedups per (requester, cut, nonce): retries with fresh
		// nonces get re-served up to a small cap, replays cost nothing.
		cert, ok := r.tracker.Latest()
		if !ok || cert.Slot <= p.Slot {
			break
		}
		payload, ok := r.tracker.CertPayload(true)
		if !ok || !r.tracker.ShouldServe(m.From, p.Nonce) {
			break
		}
		out = append(out, types.Message{From: r.cfg.Me, To: m.From, Payload: payload})
	case *types.CkptCertPayload:
		cert, ok := r.tracker.VerifyCertPayload(p)
		if !ok {
			// Forged votes, sub-quorum, or snapshot/digest mismatch: count
			// it and, if we are waiting on a transfer, fall over to the
			// next responder.
			out = r.noteBadResponse(out, m.From, false)
			break
		}
		// A verified certificate is solid evidence the cluster committed
		// through its cut — unlike raw slot numbers in consensus traffic,
		// which are unauthenticated hints.
		r.noteFrontier(cert.Slot)
		if p.Snapshot != "" && cert.Slot > r.slot {
			out = r.install(out, cert, p.Snapshot)
			break
		}
		if p.Snapshot != "" && cert.Slot <= r.slot {
			// A full response that cannot advance us: what a stale-
			// certificate responder serves a catching-up replica.
			out = r.noteBadResponse(out, m.From, true)
		}
		if r.tracker.Adopt(cert, p.Snapshot) {
			// A bare certificate (or one not worth installing) still
			// advances our certified cut and releases residue.
			out = r.afterCertified(out, cert)
		}
	}
	return out
}

// afterCertified releases everything a freshly certified cut settles. The
// release floor is the cut capped at our own frontier: a cut certified
// ahead of this replica's progress (the cluster outran us) must not touch
// the live slots we are still working through.
func (r *Replica) afterCertified(out []types.Message, cert ckpt.Certificate) []types.Message {
	// Vote→certify latency: charged only for cuts this replica voted on
	// itself (a certificate adopted for a cut we never reached measures
	// the cluster, not this replica's checkpoint round-trip). Settled
	// entries are released so the map stays bounded by pending cuts.
	if start, ok := r.voteAt[cert.Slot]; ok {
		r.cfg.Telemetry.Observe(sim.PhaseCkptCertify, start)
	}
	for s := range r.voteAt {
		if s <= cert.Slot {
			delete(r.voteAt, s)
		}
	}
	floor := cert.Slot
	if floor > r.slot {
		floor = r.slot
	}
	// The hook fires before truncation, so an embedding harness that tails
	// the log (LogSince) can drain the entries the cut is about to release.
	if r.cfg.OnCertified != nil {
		r.cfg.OnCertified(floor)
	}
	r.truncateLog(floor)
	r.values.DropSeqBelow(dissemNS + floor)
	r.persist()
	r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
		Note: fmt.Sprintf("ckpt certified cut %d (floor %d)", cert.Slot, floor)})
	return out
}

// persist saves the latest certificate, its snapshot, and the retained log
// suffix to the durable store. Skipped when the snapshot at the cut is not
// held (certified from others' votes before reaching the cut locally — the
// older record on disk stays the recovery point until voteCheckpoint
// arms this cut). A failed save is counted and survived: the in-memory
// replica is still correct, only the recovery point ages.
func (r *Replica) persist() {
	if r.store == nil {
		return
	}
	p, ok := r.tracker.CertPayload(true)
	if !ok {
		return
	}
	rec := &ckpt.Record{Cert: *p}
	if len(r.log) > 0 {
		rec.Suffix = make([]ckpt.LogEntry, 0, len(r.log))
		for _, e := range r.log {
			rec.Suffix = append(rec.Suffix, ckpt.LogEntry{Slot: e.Slot, Index: e.Index, Proposer: e.Proposer, Command: e.Command})
		}
	}
	if err := r.store.Save(rec); err != nil {
		r.storeErrors++
		r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
			Note: fmt.Sprintf("ckpt store save failed: %v", err)})
	}
}

// truncateLog drops committed entries below the floor; logDigest keeps
// covering them (the certificate pinned the prefix digest).
func (r *Replica) truncateLog(floor int) {
	if floor <= r.base {
		return
	}
	k := sort.Search(len(r.log), func(i int) bool { return r.log[i].Slot >= floor })
	r.log = r.log[:copy(r.log, r.log[k:])]
	r.base = floor
}

// install applies a verified state transfer: the snapshot becomes the new
// log base and the replica rejoins at the cut.
func (r *Replica) install(out []types.Message, cert ckpt.Certificate, snapshot string) []types.Message {
	if err := r.snap.Restore(snapshot); err != nil {
		// VerifyCertPayload checked the digest, so only a machine that
		// cannot parse its own snapshot format ends here; installing
		// nothing is the safe outcome.
		r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
			Note: fmt.Sprintf("ckpt install at %d failed: %v", cert.Slot, err)})
		return out
	}
	r.transfers++
	if r.reqAt != 0 {
		r.cfg.Telemetry.Observe(sim.PhaseCkptInstall, r.reqAt)
		r.reqAt = 0
	}
	// Proposing turns the jump skips consume their queued commands: the
	// cluster committed those slots without us (as noops, or as whatever a
	// pre-crash instance disseminated), so re-proposing a consumed command
	// at a later slot would diverge from the log the cluster actually built.
	// Consumption mirrors proposalTake exactly — each skipped turn takes
	// what it would have taken had it disseminated (one command, or a whole
	// batch) — so nothing consumed is re-proposed and nothing unconsumed is
	// dropped.
	for s := r.slot; s < cert.Slot; s++ {
		if r.proposer(s) != r.cfg.Me || r.waiting[s] {
			continue
		}
		k := r.proposalTake()
		if k == 0 {
			break
		}
		r.queue = r.queue[k:]
	}
	r.bin = nil
	r.slot = cert.Slot
	r.base = cert.Slot
	r.log = r.log[:0]
	r.logDigest = cert.LogDigest
	for s := range r.cands {
		if s < r.slot {
			delete(r.cands, s)
		}
	}
	for s := range r.waiting {
		if s < r.slot {
			delete(r.waiting, s)
		}
	}
	for inst := range r.pending {
		if inst <= r.slot {
			delete(r.pending, inst) // binary instance s+1 serves slot s
		}
	}
	r.values.DropSeqBelow(dissemNS + r.slot)
	r.tracker.Adopt(cert, snapshot)
	// A fresh catch-up epoch: the responders marked bad were judged against
	// the previous cut, and the installed snapshot is the new recovery point.
	clear(r.reqBad)
	for k := range r.restoreSuffix {
		if k.slot < r.slot {
			delete(r.restoreSuffix, k) // these slots will never re-commit here
		}
	}
	r.persist()
	if r.cfg.OnCertified != nil {
		r.cfg.OnCertified(r.slot)
	}
	r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
		Note: fmt.Sprintf("ckpt installed cut %d via state transfer", cert.Slot)})
	// It may be our turn at the cut, and buffered candidates/decides for
	// the slots above it resume in step().
	return r.propose(out)
}

// deliverBin feeds one message to the current slot's consensus instance,
// copies its emissions into out, and hands the instance's slice straight
// back for reuse (the inner zero-allocation loop).
func (r *Replica) deliverBin(out []types.Message, m types.Message) []types.Message {
	msgs := r.bin.Deliver(m)
	out = append(out, msgs...)
	r.bin.Recycle(msgs)
	return out
}

type trafficKind int

const (
	trafficValues trafficKind = iota + 1
	trafficBinary
	trafficCoin
	trafficCkpt
)

func classify(m types.Message) (int, trafficKind) {
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		if p.ID.Tag.Seq >= dissemNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.RBCFragPayload:
		if p.ID.Tag.Seq >= dissemNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.RBCSumPayload:
		if p.ID.Tag.Seq >= dissemNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.DecidePayload:
		return p.Instance, trafficBinary
	case *types.CoinSharePayload:
		return 0, trafficCoin
	case *types.CkptVotePayload, *types.CkptRequestPayload, *types.CkptCertPayload:
		return 0, trafficCkpt
	default:
		return 0, trafficBinary
	}
}

// step starts the current slot's consensus once its candidate arrived and
// finalizes slots as they decide, appending all emissions to out.
func (r *Replica) step(out []types.Message) []types.Message {
	for !r.Done() {
		if r.bin == nil {
			if _, ok := r.cands[r.slot]; !ok {
				return out
			}
			bin, err := core.New(core.Config{
				Me: r.cfg.Me, Peers: r.cfg.Peers, Spec: r.spec,
				Coin:      r.cfg.NewCoin(r.slot),
				Proposal:  types.One, // candidate in hand
				Instance:  r.slot + 1,
				Window:    r.cfg.Window,
				Recorder:  r.cfg.Recorder,
				Telemetry: r.cfg.Telemetry,
			})
			if err != nil {
				panic(fmt.Sprintf("smr: starting slot %d: %v", r.slot, err))
			}
			r.bin = bin
			msgs := bin.Start()
			out = append(out, msgs...)
			bin.Recycle(msgs)
			for _, m := range r.pending[r.slot+1] {
				out = r.deliverBin(out, m)
			}
			delete(r.pending, r.slot+1)
		}
		v, decided := r.bin.Decided()
		if !decided || !r.bin.Done() {
			return out
		}
		proposer := r.proposer(r.slot)
		switch body := r.cands[r.slot]; {
		case v != types.One:
			// 0-decision: the slot commits empty and nothing is applied.
			r.commitEntry(Entry{Slot: r.slot, Proposer: proposer}, false)
		case r.batchSize() > 1 && body != Noop:
			// Unbatch: one log entry per bundled command, in batch order,
			// each applied and digest-folded individually so every
			// entry-granular invariant (checkpoint cuts, state transfer,
			// suffix re-commit) holds with batching on. A body that is not
			// a canonical batch (a Byzantine proposer can disseminate any
			// bytes) commits as a single raw entry — the same deterministic
			// rule at every replica.
			if cmds, err := wire.DecodeBatch(body); err == nil {
				for i, cmd := range cmds {
					r.commitEntry(Entry{Slot: r.slot, Index: i, Proposer: proposer, Command: cmd}, true)
				}
			} else {
				r.commitEntry(Entry{Slot: r.slot, Proposer: proposer, Command: body}, true)
			}
		default:
			r.commitEntry(Entry{Slot: r.slot, Proposer: proposer, Command: body}, true)
		}
		// Per-slot pruning, the log layer's version of the per-round
		// invariant: a slot's candidate, dissemination flag, and RBC
		// dissemination instance are dead once the slot commits, so a long
		// log keeps a bounded working set instead of every candidate ever
		// proposed. The RBC instance compacts to a delivered-digest record
		// (a no-op while non-terminal; see internal/rbc's windowing
		// contract), so late echoes from lagging replicas still meet the
		// exact silence the full state would have given them.
		r.values.Compact(types.InstanceID{
			Sender: r.proposer(r.slot),
			Tag:    types.Tag{Seq: dissemNS + r.slot},
		})
		delete(r.cands, r.slot)
		delete(r.waiting, r.slot)
		r.slot++
		r.bin = nil
		if r.tracker != nil && r.slot%r.cfg.CheckpointEvery == 0 {
			out = r.voteCheckpoint(out)
		}
		out = r.propose(out)
	}
	return out
}

// commitEntry appends one committed entry: applies it (when the slot
// decided 1 and the command is not the explicit noop), folds it into the
// chained log digest, and checks it against the durable restore suffix.
func (r *Replica) commitEntry(e Entry, apply bool) {
	if apply && e.Command != Noop {
		if err := r.cfg.Machine.Apply(e.Command); err != nil {
			r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
				Note: fmt.Sprintf("apply slot %d: %v", e.Slot, err)})
		}
	}
	r.log = append(r.log, e)
	r.logDigest = ckpt.FoldEntry(r.logDigest, e.Slot, e.Proposer, e.Command)
	if r.restoreSuffix == nil {
		return
	}
	// Cross-restart divergence detector: an entry the pre-crash replica
	// had committed re-commits now (the restore resumed at the cut), and
	// must re-commit identically — agreement across the crash.
	k := suffixKey{e.Slot, e.Index}
	if want, ok := r.restoreSuffix[k]; ok {
		if want.Proposer != e.Proposer || want.Command != e.Command {
			r.suffixDivergence++
			r.record(trace.Event{Kind: trace.KindNote, P: r.cfg.Me,
				Note: fmt.Sprintf("ckpt suffix divergence at slot %d entry %d", e.Slot, e.Index)})
		}
		delete(r.restoreSuffix, k)
		if len(r.restoreSuffix) == 0 {
			r.restoreSuffix = nil
		}
	}
}

// voteCheckpoint takes this replica's checkpoint at the cut it just
// committed through — snapshot, digests, signed vote — retains the snapshot
// for state transfer, and broadcasts the vote. If the local vote completes
// a quorum (the rest of the cluster voted first), certification fires
// immediately.
func (r *Replica) voteCheckpoint(out []types.Message) []types.Message {
	snapshot := r.snap.Snapshot()
	c := ckpt.Checkpoint{
		Slot:        r.slot,
		StateDigest: ckpt.Digest(snapshot),
		LogDigest:   r.logDigest,
	}
	vote, cert, advanced := r.tracker.RecordLocal(c, snapshot)
	if r.cfg.Telemetry != nil {
		if r.voteAt == nil {
			r.voteAt = make(map[int]sim.Time)
		}
		r.voteAt[c.Slot] = r.cfg.Telemetry.Now()
	}
	out = types.AppendBroadcast(out, r.cfg.Me, r.others, vote)
	if advanced {
		out = r.afterCertified(out, cert)
	} else if latest, ok := r.tracker.Latest(); ok && latest.Slot == c.Slot {
		// The cluster certified this cut before we reached it (afterCertified
		// already fired with a capped floor); reaching it arms the snapshot,
		// so the durable recovery point can advance now.
		r.persist()
	}
	return out
}

func (r *Replica) record(e trace.Event) {
	if r.cfg.Recorder.Enabled() {
		r.cfg.Recorder.Record(e)
	}
}
