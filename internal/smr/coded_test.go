package smr

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// buildCodedSMR is buildBatchedSMR with the coded dissemination plane on.
func buildCodedSMR(t *testing.T, n, f, maxSlots, batch, depth, per int, seed int64) ([]*Replica, []*kvMachine) {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, n)
	machines := make([]*kvMachine, 0, n)
	for _, p := range peers {
		p := p
		m := newKV()
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(seed + int64(p)*1000 + int64(slot))
			},
			Machine:  m,
			MaxSlots: maxSlots,
			Batch:    batch,
			Depth:    depth,
			Coded:    true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < per; c++ {
			if !rep.Submit(fmt.Sprintf("set k%d-%d v%d", p, c, c)) {
				t.Fatalf("preload submission %d rejected at %v", c, p)
			}
		}
		replicas = append(replicas, rep)
		machines = append(machines, m)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, rep := range replicas {
			if !rep.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return replicas, machines
}

// TestSMRCodedClusterAgrees: with erasure-coded dissemination the cluster
// still commits one identical log everywhere — and that log, entry for entry
// and digest for digest, is the log the uncoded cluster commits under the
// same configuration. Coding is a transport optimization; nothing above the
// dissemination plane may notice it.
func TestSMRCodedClusterAgrees(t *testing.T) {
	const n, f, slots, batch, depth, per, seed = 4, 1, 8, 3, 2, 6, 5
	coded, codedMachines := buildCodedSMR(t, n, f, slots, batch, depth, per, seed)
	uncoded, _ := buildBatchedSMR(t, n, f, slots, batch, depth, per, seed)

	first := coded[0].Log()
	for _, rep := range coded[1:] {
		if !reflect.DeepEqual(rep.Log(), first) {
			t.Fatalf("coded log divergence:\n%v\nvs\n%v", rep.Log(), first)
		}
	}
	for _, m := range codedMachines[1:] {
		if !reflect.DeepEqual(m.applied, codedMachines[0].applied) {
			t.Fatalf("coded apply-order divergence")
		}
	}
	if !reflect.DeepEqual(first, uncoded[0].Log()) {
		t.Fatalf("coded log differs from uncoded control:\n%v\nvs\n%v", first, uncoded[0].Log())
	}
	if coded[0].LogDigest() != uncoded[0].LogDigest() {
		t.Fatalf("coded digest %x, uncoded %x", coded[0].LogDigest(), uncoded[0].LogDigest())
	}
}

// TestSMRCodedRejectsLargeClusters: rscode caps n at 255; the Config seam
// must surface that at construction, not at the first dispersal.
func TestSMRCodedSmallCluster(t *testing.T) {
	// n=1 f=0 (k=1): the degenerate single-replica cluster still works coded.
	replicas, _ := buildCodedSMR(t, 1, 0, 2, 1, 1, 2, 3)
	if got := len(replicas[0].Log()); got != 2 {
		t.Fatalf("singleton coded cluster committed %d entries, want 2", got)
	}
}

// BenchmarkSMRCodedDelivery is BenchmarkSMRBatchedDelivery with coded
// dissemination live: the zero-allocation delivery gate must hold when
// proposing turns disperse fragments and commits decode them (the per-slot
// coding work amortizes across the slot's thousands of deliveries, like the
// consensus setup itself).
func BenchmarkSMRCodedDelivery(b *testing.B) {
	const n, f = 16, 5
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 25},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(int64(p)*1000 + int64(slot))
			},
			Machine: newKV(),
			Batch:   8,
			Depth:   2,
			Coded:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		for c := 0; c < 4096; c++ {
			rep.Submit(fmt.Sprintf("set k%d-%d v%d", p, c, c))
		}
		if err := net.Add(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}
