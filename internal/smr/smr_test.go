package smr

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// kvMachine is a tiny deterministic state machine: "set k v" commands.
type kvMachine struct {
	applied []string
	state   map[string]string
}

func newKV() *kvMachine { return &kvMachine{state: make(map[string]string)} }

func (m *kvMachine) Apply(cmd string) error {
	m.applied = append(m.applied, cmd)
	parts := strings.Fields(cmd)
	if len(parts) != 3 || parts[0] != "set" {
		return fmt.Errorf("bad command %q", cmd)
	}
	m.state[parts[1]] = parts[2]
	return nil
}

// buildSMR wires n replicas (last `crashed` absent), submits the given
// commands at their proposers, and runs for maxSlots slots.
func buildSMR(t *testing.T, n, f, crashed, maxSlots int, seed int64) ([]*Replica, []*kvMachine) {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	live := peers[:n-crashed]

	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, len(live))
	machines := make([]*kvMachine, 0, len(live))
	for _, p := range live {
		m := newKV()
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(seed + int64(p)*1000 + int64(slot))
			},
			Rotation: live,
			Machine:  m,
			MaxSlots: maxSlots,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, rep)
		machines = append(machines, m)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	// Preload each replica's queue before starting.
	for i, rep := range replicas {
		rep.Submit(fmt.Sprintf("set key%d val%d", i, i))
		rep.Submit(fmt.Sprintf("set extra%d yes", i))
	}
	if _, err := net.Run(func() bool {
		for _, rep := range replicas {
			if !rep.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return replicas, machines
}

func TestSMRIdenticalLogsAndStates(t *testing.T) {
	replicas, machines := buildSMR(t, 4, 1, 1, 6, 3)
	first := replicas[0].Log()
	if len(first) != 6 {
		t.Fatalf("log has %d entries, want 6", len(first))
	}
	for _, rep := range replicas[1:] {
		if !reflect.DeepEqual(rep.Log(), first) {
			t.Fatalf("log divergence:\n%v\nvs\n%v", rep.Log(), first)
		}
	}
	for _, m := range machines[1:] {
		if !reflect.DeepEqual(m.applied, machines[0].applied) {
			t.Fatalf("apply-order divergence: %v vs %v", m.applied, machines[0].applied)
		}
		if !reflect.DeepEqual(m.state, machines[0].state) {
			t.Fatalf("state divergence: %v vs %v", m.state, machines[0].state)
		}
	}
	// All six slots committed (proposers all live): every entry non-skip.
	for _, e := range first {
		if e.Command == "" {
			t.Errorf("slot %d was skipped despite a live proposer", e.Slot)
		}
	}
}

func TestSMRSubmittedCommandsCommitInOrder(t *testing.T) {
	replicas, machines := buildSMR(t, 4, 1, 1, 6, 9)
	// p1 proposes slots 0 and 3; its two commands must land there, in order.
	log := replicas[0].Log()
	if log[0].Command != "set key0 val0" {
		t.Errorf("slot 0 = %q", log[0].Command)
	}
	if log[3].Command != "set extra0 yes" {
		t.Errorf("slot 3 = %q", log[3].Command)
	}
	if got := machines[0].state["key0"]; got != "val0" {
		t.Errorf("state[key0] = %q", got)
	}
}

func TestSMRNoopWhenQueueEmpty(t *testing.T) {
	// No submissions: every slot commits a noop and machines stay empty.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.Immediate{}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	replicas := make([]*Replica, 0, 4)
	machines := make([]*kvMachine, 0, 4)
	for _, p := range peers {
		m := newKV()
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin:  func(slot int) coin.Coin { return coin.NewIdeal(int64(slot)) },
			Machine:  m,
			MaxSlots: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		replicas = append(replicas, rep)
		machines = append(machines, m)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(nil); err != nil {
		t.Fatal(err)
	}
	for i, rep := range replicas {
		log := rep.Log()
		if len(log) != 3 {
			t.Fatalf("replica %d log has %d entries", i, len(log))
		}
		for _, e := range log {
			if e.Command != Noop {
				t.Errorf("expected noop, got %q", e.Command)
			}
		}
		if len(machines[i].applied) != 0 {
			t.Errorf("noop reached the state machine: %v", machines[i].applied)
		}
	}
}

func TestSMRConfigValidation(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	factory := func(int) coin.Coin { return coin.NewIdeal(1) }
	good := Config{Me: 1, Peers: peers, Spec: spec, NewCoin: factory, Machine: newKV()}

	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"no coin", func(c *Config) { c.NewCoin = nil }, ErrNoCoinFactory},
		{"no machine", func(c *Config) { c.Machine = nil }, ErrNoMachine},
		{"bad peers", func(c *Config) { c.Peers = peers[:1] }, ErrBadPeers},
		{"me absent", func(c *Config) { c.Me = 99 }, ErrBadPeers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestSMRBasics(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	rep, err := New(Config{
		Me: 2, Peers: peers, Spec: spec,
		NewCoin:  func(int) coin.Coin { return coin.NewIdeal(1) },
		Machine:  newKV(),
		MaxSlots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID() != 2 || rep.Done() || rep.Slot() != 0 {
		t.Error("fresh replica accessors wrong")
	}
	// p2 is not slot 0's proposer (rotation default starts at p1): Start
	// sends nothing.
	if msgs := rep.Start(); len(msgs) != 0 {
		t.Errorf("non-proposer Start sent %d messages", len(msgs))
	}
	rep.Submit("set a b") // enqueue only; dissemination happens on our turn
	// Fake proposer path: replica 1 proposes immediately on Start.
	rep1, err := New(Config{
		Me: 1, Peers: peers, Spec: spec,
		NewCoin:  func(int) coin.Coin { return coin.NewIdeal(1) },
		Machine:  newKV(),
		MaxSlots: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if msgs := rep1.Start(); len(msgs) != 4 {
		t.Errorf("proposer Start sent %d messages, want 4 (noop dissemination)", len(msgs))
	}
	// Garbage payloads are inert.
	if out := rep1.Deliver(types.Message{From: 2, To: 1, Payload: &types.PlainPayload{Round: 1, Step: types.Step1}}); len(out) != 0 {
		t.Errorf("plain payload produced output")
	}
}

// BenchmarkSMRDelivery measures the full per-delivery cost of the
// replicated log on the simulator: candidate dissemination, one binary
// consensus instance per slot, commit, and the next proposal — the
// workload a replicated-log deployment actually runs, forever (MaxSlots
// 0 never stops, so all b.N deliveries are steady state). Per-slot setup
// (the consensus instance and its coin) amortizes across the slot's
// thousands of deliveries. Run with -benchmem: expect 0 allocs/op.
func BenchmarkSMRDelivery(b *testing.B) {
	const n, f = 16, 5
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 25},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(int64(p)*1000 + int64(slot))
			},
			Machine: newKV(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Add(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}

// TestSMRSteadyStateDeliveryAllocations pins the strict per-delivery hot
// path of a warm replica at exactly zero allocations: duplicate echo
// counting on the dissemination plane must produce no garbage.
func TestSMRSteadyStateDeliveryAllocations(t *testing.T) {
	// Measure a replica that is mid-protocol: run an unbounded log for a
	// fixed prefix of deliveries, then replay a duplicate echo at it.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 25}, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	fresh := make([]*Replica, 0, 4)
	for _, p := range peers {
		p := p
		rep, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(slot int) coin.Coin {
				return coin.NewLocal(6 + int64(p)*1000 + int64(slot))
			},
			Machine: newKV(),
		})
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, rep)
		if err := net.Add(rep); err != nil {
			t.Fatal(err)
		}
	}
	count := 0
	if _, err := net.Run(func() bool { count++; return count >= 2000 }); err != nil {
		t.Fatal(err)
	}
	rep := fresh[0]
	echo := types.Message{From: 2, To: rep.ID(), Payload: &types.RBCPayload{
		Phase: types.KindRBCEcho,
		ID:    types.InstanceID{Sender: 1, Tag: types.Tag{Seq: dissemNS}},
		Body:  "replayed-body",
	}}
	rep.Recycle(rep.Deliver(echo))
	allocs := testing.AllocsPerRun(200, func() {
		rep.Recycle(rep.Deliver(echo))
	})
	if allocs != 0 {
		t.Errorf("steady-state SMR delivery cost %.1f allocs/op, want 0", allocs)
	}
}

func TestSMRManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(0); seed < 6; seed++ {
		replicas, _ := buildSMR(t, 4, 1, 1, 4, seed)
		first := replicas[0].Log()
		for _, rep := range replicas[1:] {
			if !reflect.DeepEqual(rep.Log(), first) {
				t.Fatalf("seed %d: log divergence", seed)
			}
		}
	}
}
