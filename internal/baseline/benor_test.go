package baseline

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func runBenOr(t *testing.T, n, f int, proposals []types.Value, seed int64) []*Node {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, n)
	for i, p := range peers {
		nodes[i], err = New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewLocal(seed + int64(p)*31),
			Proposal: proposals[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := net.Add(nodes[i]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, nd := range nodes {
			if !nd.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func observe(nodes []*Node) check.ConsensusObservation {
	obs := check.ConsensusObservation{
		Proposals: map[types.ProcessID]types.Value{},
		Decisions: map[types.ProcessID][]types.Value{},
		Quiesced:  true,
	}
	for _, nd := range nodes {
		obs.Correct = append(obs.Correct, nd.ID())
		obs.Proposals[nd.ID()] = nd.Proposal()
		if v, ok := nd.Decided(); ok {
			obs.Decisions[nd.ID()] = []types.Value{v}
		}
	}
	return obs
}

func TestBenOrUnanimousDecidesFast(t *testing.T) {
	for _, v := range []types.Value{types.Zero, types.One} {
		proposals := make([]types.Value, 6)
		for i := range proposals {
			proposals[i] = v
		}
		nodes := runBenOr(t, 6, 1, proposals, 3)
		for _, nd := range nodes {
			got, ok := nd.Decided()
			if !ok || got != v {
				t.Fatalf("%v decided (%v, %v), want %v", nd.ID(), got, ok, v)
			}
			if nd.DecidedRound() != 1 {
				t.Errorf("%v decided in round %d, want 1", nd.ID(), nd.DecidedRound())
			}
		}
		if vs := check.Consensus(observe(nodes)); len(vs) != 0 {
			t.Fatalf("violations: %v", vs)
		}
	}
}

func TestBenOrSplitEventuallyAgrees(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		proposals := []types.Value{0, 1, 0, 1, 0, 1}
		nodes := runBenOr(t, 6, 1, proposals, seed)
		if vs := check.Consensus(observe(nodes)); len(vs) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
	}
}

func TestBenOrStats(t *testing.T) {
	nodes := runBenOr(t, 6, 1, []types.Value{1, 1, 1, 1, 1, 1}, 1)
	for _, nd := range nodes {
		if nd.Stats().RoundsStarted < 1 {
			t.Errorf("%v RoundsStarted = %d", nd.ID(), nd.Stats().RoundsStarted)
		}
		if nd.Round() < 1 {
			t.Errorf("%v Round = %d", nd.ID(), nd.Round())
		}
	}
}

func TestBenOrConfigValidation(t *testing.T) {
	spec := quorum.MustNew(6, 1)
	peers := types.Processes(6)
	good := Config{Me: 1, Peers: peers, Spec: spec, Coin: coin.NewIdeal(1), Proposal: types.One}

	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"missing coin", func(c *Config) { c.Coin = nil }, ErrNoCoin},
		{"wrong peer count", func(c *Config) { c.Peers = peers[:3] }, ErrBadPeers},
		{"me not in peers", func(c *Config) { c.Me = 9 }, ErrBadPeers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
	t.Run("bad proposal", func(t *testing.T) {
		cfg := good
		cfg.Proposal = 3
		if _, err := New(cfg); err == nil {
			t.Error("invalid proposal accepted")
		}
	})
}

func TestBenOrIgnoresMalformedPlain(t *testing.T) {
	spec := quorum.MustNew(6, 1)
	peers := types.Processes(6)
	nd, err := New(Config{Me: 1, Peers: peers, Spec: spec, Coin: coin.NewIdeal(1), Proposal: types.One})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	bad := []*types.PlainPayload{
		{Round: 0, Step: types.Step1, V: 1},          // round 0
		{Round: 1, Step: types.Step3, V: 1},          // Ben-Or has two phases
		{Round: 1, Step: types.Step1, V: 5},          // invalid value
		{Round: 1, Step: types.Step1, V: 0, Q: true}, // ? only in phase 2
		{Round: 1, Step: types.Step1, V: 0, D: true}, // D only in phase 2
	}
	for _, p := range bad {
		nd.Deliver(types.Message{From: 2, To: 1, Payload: p})
	}
	if st := nd.got[slot{round: 1, phase: types.Step1}]; st != nil && len(st.msgs) != 0 {
		t.Error("malformed plain payloads were recorded")
	}
}

func TestBenOrDuplicateSenderCountsOnce(t *testing.T) {
	spec := quorum.MustNew(6, 1)
	peers := types.Processes(6)
	nd, err := New(Config{Me: 1, Peers: peers, Spec: spec, Coin: coin.NewIdeal(1), Proposal: types.One})
	if err != nil {
		t.Fatal(err)
	}
	nd.Start()
	for i := 0; i < 10; i++ {
		nd.Deliver(types.Message{From: 2, To: 1, Payload: &types.PlainPayload{Round: 1, Step: types.Step1, V: 1}})
	}
	got := 0
	if st := nd.got[slot{round: 1, phase: types.Step1}]; st != nil {
		got = len(st.msgs)
	}
	if got != 1 {
		t.Errorf("recorded %d messages from one sender, want 1", got)
	}
}

func TestBenOrHaltedIgnoresTraffic(t *testing.T) {
	nodes := runBenOr(t, 6, 1, []types.Value{1, 1, 1, 1, 1, 1}, 2)
	nd := nodes[0]
	if !nd.Done() {
		t.Fatal("node not halted")
	}
	if out := nd.Deliver(types.Message{From: 2, To: 1, Payload: &types.PlainPayload{Round: 9, Step: types.Step1, V: 0}}); out != nil {
		t.Error("halted node produced output")
	}
}

// BenchmarkBenOrDelivery measures the full per-delivery cost of the Ben-Or
// baseline on the simulator — the counterpart of core's zero-allocation
// treatment (recycled output buffers, bitset sender dedup, append-style
// fan-out). Run with -benchmem: the expected report is 0 allocs/op. The run
// never halts (the decide gadget is disabled), so every one of the b.N
// deliveries exercises the steady-state path.
func BenchmarkBenOrDelivery(b *testing.B) {
	const n, f = 16, 3 // n > 5f
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 20},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(int64(p) * 1000),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			// Far beyond any b.N: the default 1<<16 rounds would quiesce
			// the system at ~33M deliveries and fail the count assertion.
			MaxRounds: 1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Add(nd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}
