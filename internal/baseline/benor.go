// Package baseline implements Ben-Or's randomized Byzantine consensus
// (PODC 1983, "protocol B"), the algorithm Bracha's PODC-84 paper improves
// on. It predates both reliable broadcast and message validation: processes
// exchange plain point-to-point messages, so a Byzantine process can freely
// equivocate (tell different processes different things). The price is
// resilience: Ben-Or needs n > 5f where Bracha achieves the optimal n > 3f.
// Experiment E6 reproduces exactly this crossover.
//
// Round structure (process with current value x, thresholds over n and f):
//
//	phase 1: send (1, r, x) to all; await n−f messages (1, r, *).
//	         If more than (n+f)/2 carry the same v: send (2, r, v, D);
//	         otherwise send (2, r, ?).
//	phase 2: await n−f messages (2, r, *).
//	         If more than (n+f)/2 are D(v): decide v (and x ← v);
//	         else if at least f+1 are D(v): x ← v;
//	         else: x ← coin flip.
//
// Like Bracha's protocol (and like this repository's core package), deciding
// does not halt; the same DECIDE-amplification gadget is reused for halting
// so that latency comparisons between the two protocols are fair.
package baseline

import (
	"errors"
	"fmt"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

// DefaultMaxRounds bounds round progression, as in core.
const DefaultMaxRounds = 1 << 16

// Config configures a Ben-Or node.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption. Ben-Or is only safe for n > 5f; the
	// constructor does not enforce that, because experiment E6 runs it
	// beyond its resilience on purpose.
	Spec quorum.Spec
	// Coin supplies phase-2 randomness.
	Coin coin.Coin
	// Proposal is this process's input bit.
	Proposal types.Value
	// Recorder, when enabled, receives ROUND/COIN/DECIDE/HALT events.
	Recorder *trace.Recorder
	// DisableDecideGadget turns off DECIDE amplification.
	DisableDecideGadget bool
	// MaxRounds bounds round progression (0 = DefaultMaxRounds).
	MaxRounds int
}

// Node is one Ben-Or process. Deterministic state machine; not safe for
// concurrent use.
type Node struct {
	cfg  Config
	spec quorum.Spec

	round int
	phase types.Step // Step1 or Step2
	value types.Value

	// got[slot] holds the first message from each sender for that slot, in
	// arrival order. No reliable broadcast: equivocation shows up as
	// different processes holding different firsts.
	got map[slot]*slotState
	// peerIdx maps a peer to its dense bitset index; words is the bitset
	// length, as in internal/rbc. First-message-per-sender dedup is a bit
	// test instead of a map insert, keeping the delivery path allocation
	// free.
	peerIdx map[types.ProcessID]int32
	words   int

	waitingCoin bool
	stalled     bool

	decided      bool
	decision     types.Value
	decidedRound int

	sentDecide  bool
	decideVotes map[types.ProcessID]types.Value
	halted      bool

	// The embedded recycled output buffer (see sim.OutBuffer), as in core.
	sim.OutBuffer

	stats Stats
}

// Stats counts protocol activity.
type Stats struct {
	RoundsStarted int
	CoinsUsed     int
	Adopted       int
}

type slot struct {
	round int
	phase types.Step
}

// slotState is the per-slot message window: a bitset marking which senders
// already contributed plus their first messages in arrival order. msgs is
// allocated with capacity n once per slot, so appends never reallocate.
type slotState struct {
	seen []uint64
	msgs []*types.PlainPayload
}

// Config validation errors.
var (
	ErrNoCoin   = errors.New("baseline: config requires a coin")
	ErrBadPeers = errors.New("baseline: peers must include me and match spec size")
)

// New creates a Ben-Or node.
func New(cfg Config) (*Node, error) {
	if cfg.Coin == nil {
		return nil, ErrNoCoin
	}
	if len(cfg.Peers) != cfg.Spec.N() {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	if !cfg.Proposal.Valid() {
		return nil, fmt.Errorf("baseline: invalid proposal %d", cfg.Proposal)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	idx := make(map[types.ProcessID]int32, len(cfg.Peers))
	for i, p := range cfg.Peers {
		if _, dup := idx[p]; !dup {
			idx[p] = int32(i)
		}
	}
	return &Node{
		cfg:         cfg,
		spec:        cfg.Spec,
		value:       cfg.Proposal,
		got:         make(map[slot]*slotState),
		peerIdx:     idx,
		words:       (len(cfg.Peers) + 63) / 64,
		decideVotes: make(map[types.ProcessID]types.Value),
	}, nil
}

var (
	_ sim.Node     = (*Node)(nil)
	_ sim.Recycler = (*Node)(nil)
)

// ID implements sim.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Me }

// Done implements sim.Node.
func (n *Node) Done() bool { return n.halted }

// Start implements sim.Node.
func (n *Node) Start() []types.Message { return n.enterRound(n.Take(), 1) }

// Deliver implements sim.Node.
func (n *Node) Deliver(m types.Message) []types.Message {
	if n.halted {
		return nil
	}
	switch p := m.Payload.(type) {
	case *types.PlainPayload:
		n.onPlain(m.From, p)
		return n.advance(n.Take())
	case *types.CoinSharePayload:
		n.cfg.Coin.HandleShare(m.From, p)
		return n.advance(n.Take())
	case *types.DecidePayload:
		return n.onDecideVote(n.Take(), m.From, p)
	default:
		return nil
	}
}

// Decided reports whether the node decided and what.
func (n *Node) Decided() (types.Value, bool) { return n.decision, n.decided }

// DecidedRound returns the round of decision (0 if undecided).
func (n *Node) DecidedRound() int { return n.decidedRound }

// Round returns the current round.
func (n *Node) Round() int { return n.round }

// Proposal returns the input value.
func (n *Node) Proposal() types.Value { return n.cfg.Proposal }

// Stats returns activity counters.
func (n *Node) Stats() Stats { return n.stats }

// onPlain records the first message per (sender, slot). Values are checked
// for well-formedness only — Ben-Or has no validation, which is the point.
func (n *Node) onPlain(from types.ProcessID, p *types.PlainPayload) {
	pi, ok := n.peerIdx[from]
	if !ok {
		return // only peers hold votes
	}
	if p.Round < 1 || (p.Step != types.Step1 && p.Step != types.Step2) {
		return
	}
	if !p.Q && !p.V.Valid() {
		return
	}
	if p.Q && p.Step != types.Step2 {
		return // "?" exists only in phase 2
	}
	if p.D && p.Step != types.Step2 {
		return
	}
	s := slot{round: p.Round, phase: p.Step}
	st := n.got[s]
	if st == nil {
		st = &slotState{
			seen: make([]uint64, n.words),
			msgs: make([]*types.PlainPayload, 0, len(n.cfg.Peers)),
		}
		n.got[s] = st
	}
	w, bit := pi>>6, uint64(1)<<(pi&63)
	if st.seen[w]&bit != 0 {
		return
	}
	st.seen[w] |= bit
	st.msgs = append(st.msgs, p)
}

// advance applies transitions until blocked, appending emitted messages to
// out.
func (n *Node) advance(out []types.Message) []types.Message {
	for !n.halted && !n.stalled {
		if n.waitingCoin {
			s, ok := n.cfg.Coin.Value(n.round)
			if !ok {
				break
			}
			n.waitingCoin = false
			n.stats.CoinsUsed++
			n.record(trace.Event{Kind: trace.KindCoin, P: n.cfg.Me, Round: n.round, V: s})
			n.value = s
			out = n.enterRound(out, n.round+1)
			continue
		}
		st := n.got[slot{round: n.round, phase: n.phase}]
		q := n.spec.Quorum()
		if st == nil || len(st.msgs) < q {
			break
		}
		window := st.msgs[:q]
		if n.phase == types.Step1 {
			out = n.finishPhase1(out, window)
		} else {
			out = n.finishPhase2(out, window)
		}
	}
	return out
}

func (n *Node) finishPhase1(out []types.Message, window []*types.PlainPayload) []types.Message {
	var count [2]int
	for _, p := range window {
		if !p.Q {
			count[p.V]++
		}
	}
	threshold := n.spec.HonestSuperMajority()
	msg := &types.PlainPayload{Round: n.round, Step: types.Step2, Q: true}
	switch {
	case count[0] >= threshold:
		msg = &types.PlainPayload{Round: n.round, Step: types.Step2, V: types.Zero, D: true}
	case count[1] >= threshold:
		msg = &types.PlainPayload{Round: n.round, Step: types.Step2, V: types.One, D: true}
	}
	n.phase = types.Step2
	return types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, msg)
}

func (n *Node) finishPhase2(out []types.Message, window []*types.PlainPayload) []types.Message {
	var dCount [2]int
	for _, p := range window {
		if p.D && !p.Q {
			dCount[p.V]++
		}
	}
	v := types.Zero
	if dCount[1] > dCount[0] {
		v = types.One
	}
	// Release the round's coin unconditionally, as in core: a threshold
	// coin needs f+1 correct contributions whether or not this process
	// personally falls through to the flip.
	out = append(out, n.cfg.Coin.Release(n.round)...)
	switch {
	case dCount[v] >= n.spec.HonestSuperMajority():
		out = n.decide(out, v)
		n.value = v
		out = n.enterRound(out, n.round+1)
	case dCount[v] >= n.spec.Adopt():
		n.stats.Adopted++
		n.value = v
		out = n.enterRound(out, n.round+1)
	default:
		n.waitingCoin = true
	}
	return out
}

func (n *Node) enterRound(out []types.Message, r int) []types.Message {
	if r > n.cfg.MaxRounds {
		n.stalled = true
		return out
	}
	n.round = r
	n.phase = types.Step1
	n.stats.RoundsStarted++
	n.record(trace.Event{Kind: trace.KindRound, P: n.cfg.Me, Round: r})
	msg := &types.PlainPayload{Round: r, Step: types.Step1, V: n.value}
	return types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, msg)
}

func (n *Node) decide(out []types.Message, v types.Value) []types.Message {
	if !n.decided {
		n.decided = true
		n.decision = v
		n.decidedRound = n.round
		n.record(trace.Event{Kind: trace.KindDecide, P: n.cfg.Me, Round: n.round, V: v})
	}
	if n.cfg.DisableDecideGadget || n.sentDecide {
		return out
	}
	n.sentDecide = true
	return types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, &types.DecidePayload{V: v})
}

func (n *Node) onDecideVote(out []types.Message, from types.ProcessID, p *types.DecidePayload) []types.Message {
	if p == nil || !p.V.Valid() {
		return out
	}
	if _, dup := n.decideVotes[from]; dup {
		return out
	}
	n.decideVotes[from] = p.V
	var count [2]int
	for _, v := range n.decideVotes {
		count[v]++
	}
	v := p.V
	if count[v] >= n.spec.Adopt() && !n.sentDecide && !n.cfg.DisableDecideGadget {
		n.sentDecide = true
		out = types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, &types.DecidePayload{V: v})
	}
	if count[v] >= n.spec.Decide() {
		if !n.decided {
			n.decided = true
			n.decision = v
			n.decidedRound = n.round
			n.record(trace.Event{Kind: trace.KindDecide, P: n.cfg.Me, Round: n.round, V: v})
		}
		n.halted = true
		n.record(trace.Event{Kind: trace.KindHalt, P: n.cfg.Me, Round: n.round})
	}
	return out
}

func (n *Node) record(e trace.Event) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.Record(e)
	}
}
