// Package gf256 implements arithmetic in the finite field GF(2^8) with the
// AES reduction polynomial x^8 + x^4 + x^3 + x + 1 (0x11B). It is the
// algebraic substrate for the Shamir secret sharing used by the Rabin-style
// common coin dealer (internal/shamir, internal/coin).
//
// Multiplication and inversion are table-driven via discrete logarithms with
// the generator 0x03, so all operations are constant-time-ish table lookups —
// plenty fast for coin reconstruction, which handles n shares per round.
package gf256

// poly is the AES reduction polynomial (without the x^8 term, applied during
// reduction).
const poly = 0x1B

// generator 0x03 is a primitive element of GF(2^8) under poly.
const generator = 0x03

// tables holds the exp/log tables for the multiplicative group.
type tables struct {
	exp [512]byte // doubled so exp[log a + log b] needs no modular reduction
	log [256]byte
}

var _tables = buildTables()

func buildTables() *tables {
	t := &tables{}
	x := byte(1)
	for i := 0; i < 255; i++ {
		t.exp[i] = x
		t.log[x] = byte(i)
		x = mulSlow(x, generator)
	}
	for i := 255; i < 512; i++ {
		t.exp[i] = t.exp[i-255]
	}
	return t
}

// mulSlow is carry-less "Russian peasant" multiplication with reduction; it
// seeds the tables and serves as the reference implementation for tests.
func mulSlow(a, b byte) byte {
	var p byte
	for b > 0 {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= poly
		}
		b >>= 1
	}
	return p
}

// Add returns a+b in GF(2^8). Addition is XOR; it is its own inverse, so Sub
// is the same operation.
func Add(a, b byte) byte { return a ^ b }

// Sub returns a−b in GF(2^8) (identical to Add in characteristic 2).
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a·b in GF(2^8).
func Mul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+int(_tables.log[b])]
}

// MulSlow exposes the reference multiplication for cross-checking in tests.
func MulSlow(a, b byte) byte { return mulSlow(a, b) }

// Inv returns the multiplicative inverse of a. Inv(0) returns 0; callers
// dividing by field elements must guard the zero case themselves (Div does).
func Inv(a byte) byte {
	if a == 0 {
		return 0
	}
	return _tables.exp[255-int(_tables.log[a])]
}

// Div returns a/b in GF(2^8), and 0 if b is 0 (no panic: protocol code must
// treat division by zero as a validation failure before reaching here).
func Div(a, b byte) byte {
	if b == 0 || a == 0 {
		return 0
	}
	return _tables.exp[int(_tables.log[a])+255-int(_tables.log[b])]
}

// Pow returns a^e in GF(2^8) with the convention Pow(x, 0) = 1, including
// Pow(0, 0) = 1 (x⁰ is the empty product; the Reed–Solomon generator-matrix
// path in internal/rscode evaluates x⁰ at arbitrary points, so this case is
// load-bearing, not pedantry).
//
// Negative exponents are defined through the multiplicative group of order
// 255: for a ≠ 0, Pow(a, e) = a^(e mod 255), so Pow(a, -1) == Inv(a) and
// Pow(a, -e) == Pow(Inv(a), e). Pow(0, e) with e < 0 would be a division by
// zero and returns 0, mirroring Div's convention (protocol code must treat
// it as a validation failure before reaching here).
func Pow(a byte, e int) byte {
	if e == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	// The multiplicative group has order 255.
	le := (int(_tables.log[a]) * (e % 255)) % 255
	if le < 0 {
		le += 255
	}
	return _tables.exp[le]
}

// EvalPoly evaluates the polynomial with the given coefficients (constant
// term first) at x, using Horner's rule.
func EvalPoly(coeffs []byte, x byte) byte {
	var y byte
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = Add(Mul(y, x), coeffs[i])
	}
	return y
}

// Interpolate returns the value at x=0 of the unique polynomial of degree
// < len(xs) passing through the points (xs[i], ys[i]), via Lagrange
// interpolation. The xs must be distinct and non-zero; ok is false otherwise
// or when the slices are empty or of mismatched length.
func Interpolate(xs, ys []byte) (secret byte, ok bool) {
	if len(xs) == 0 || len(xs) != len(ys) {
		return 0, false
	}
	seen := make(map[byte]bool, len(xs))
	for _, x := range xs {
		if x == 0 || seen[x] {
			return 0, false
		}
		seen[x] = true
	}
	var acc byte
	for i := range xs {
		// Lagrange basis at 0: prod_{j≠i} x_j / (x_j − x_i).
		num, den := byte(1), byte(1)
		for j := range xs {
			if j == i {
				continue
			}
			num = Mul(num, xs[j])
			den = Mul(den, Sub(xs[j], xs[i]))
		}
		acc = Add(acc, Mul(ys[i], Div(num, den)))
	}
	return acc, true
}
