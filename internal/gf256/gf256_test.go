package gf256

import (
	"testing"
	"testing/quick"
)

func TestMulMatchesReference(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			got := Mul(byte(a), byte(b))
			want := MulSlow(byte(a), byte(b))
			if got != want {
				t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestKnownProducts(t *testing.T) {
	// Classic AES test vectors for GF(2^8) under 0x11B.
	tests := []struct {
		a, b, want byte
	}{
		{0x57, 0x83, 0xC1},
		{0x57, 0x13, 0xFE},
		{0x02, 0x87, 0x15},
		{0x01, 0xFF, 0xFF},
		{0x00, 0xAB, 0x00},
	}
	for _, tt := range tests {
		if got := Mul(tt.a, tt.b); got != tt.want {
			t.Errorf("Mul(%#x, %#x) = %#x, want %#x", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestAddIsXor(t *testing.T) {
	if Add(0x57, 0x83) != 0xD4 {
		t.Errorf("Add(0x57, 0x83) = %#x, want 0xD4", Add(0x57, 0x83))
	}
	prop := func(a, b byte) bool {
		return Add(a, b) == a^b && Sub(a, b) == a^b
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldAxioms(t *testing.T) {
	t.Run("multiplicative commutativity", func(t *testing.T) {
		prop := func(a, b byte) bool { return Mul(a, b) == Mul(b, a) }
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("multiplicative associativity", func(t *testing.T) {
		prop := func(a, b, c byte) bool { return Mul(Mul(a, b), c) == Mul(a, Mul(b, c)) }
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("distributivity", func(t *testing.T) {
		prop := func(a, b, c byte) bool { return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c)) }
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("multiplicative identity", func(t *testing.T) {
		prop := func(a byte) bool { return Mul(a, 1) == a }
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
	t.Run("additive identity and inverse", func(t *testing.T) {
		prop := func(a byte) bool { return Add(a, 0) == a && Add(a, a) == 0 }
		if err := quick.Check(prop, nil); err != nil {
			t.Error(err)
		}
	})
}

func TestInv(t *testing.T) {
	if Inv(0) != 0 {
		t.Error("Inv(0) must be 0 by convention")
	}
	for a := 1; a < 256; a++ {
		if got := Mul(byte(a), Inv(byte(a))); got != 1 {
			t.Fatalf("a·Inv(a) = %d for a = %d, want 1", got, a)
		}
	}
}

func TestDiv(t *testing.T) {
	if Div(5, 0) != 0 {
		t.Error("Div by zero must return 0")
	}
	if Div(0, 7) != 0 {
		t.Error("Div of zero must return 0")
	}
	prop := func(a, b byte) bool {
		if b == 0 {
			return Div(a, b) == 0
		}
		return Mul(Div(a, b), b) == a
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestPow(t *testing.T) {
	tests := []struct {
		a    byte
		e    int
		want byte
	}{
		{0, 0, 1},
		{0, 5, 0},
		{1, 100, 1},
		{2, 1, 2},
		{2, 8, 0x1B}, // x^8 reduces to the polynomial tail
		{3, 255, 1},  // group order
	}
	for _, tt := range tests {
		if got := Pow(tt.a, tt.e); got != tt.want {
			t.Errorf("Pow(%d, %d) = %#x, want %#x", tt.a, tt.e, got, tt.want)
		}
	}
	// Pow must agree with repeated multiplication.
	for a := 0; a < 256; a += 7 {
		acc := byte(1)
		for e := 0; e < 20; e++ {
			if got := Pow(byte(a), e); got != acc {
				t.Fatalf("Pow(%d, %d) = %d, want %d", a, e, got, acc)
			}
			acc = Mul(acc, byte(a))
		}
	}
}

// powRef is an independent reference for Pow: repeated MulSlow for e ≥ 0,
// and the Inv-based group identity a^(-e) = (a^-1)^e for e < 0.
func powRef(a byte, e int) byte {
	if e == 0 {
		return 1 // x⁰ = 1, including 0⁰ (empty product)
	}
	if a == 0 {
		return 0 // 0^e = 0 for e > 0; e < 0 is division by zero → 0 by convention
	}
	if e < 0 {
		return powRef(Inv(a), -e)
	}
	acc := byte(1)
	for i := 0; i < e; i++ {
		acc = MulSlow(acc, a)
	}
	return acc
}

// TestPowEdgeGrid drives Pow over every base × an exponent edge set chosen to
// straddle the group order (255), its multiples, zero, and negatives — the
// full a × e grid the doc contract promises: Pow(x, 0) = 1 including
// Pow(0, 0); Pow(a, e) = a^(e mod 255) for a ≠ 0; Pow(0, e<0) = 0.
func TestPowEdgeGrid(t *testing.T) {
	exponents := []int{
		-511, -510, -509, -256, -255, -254, -128, -3, -2, -1,
		0, 1, 2, 3, 127, 128, 253, 254, 255, 256, 257, 509, 510, 511,
	}
	for a := 0; a < 256; a++ {
		for _, e := range exponents {
			got := Pow(byte(a), e)
			want := powRef(byte(a), e)
			if got != want {
				t.Fatalf("Pow(%d, %d) = %#x, want %#x", a, e, got, want)
			}
		}
	}
	// Spot-check the documented identities directly.
	for a := 1; a < 256; a++ {
		if Pow(byte(a), -1) != Inv(byte(a)) {
			t.Fatalf("Pow(%d, -1) != Inv(%d)", a, a)
		}
		if Pow(byte(a), 255) != 1 {
			t.Fatalf("Pow(%d, 255) != 1", a)
		}
		if Pow(byte(a), 256) != byte(a) {
			t.Fatalf("Pow(%d, 256) != %d", a, a)
		}
	}
	if Pow(0, 0) != 1 {
		t.Fatal("Pow(0, 0) must be 1: x⁰ is the empty product")
	}
}

func TestEvalPoly(t *testing.T) {
	// p(x) = 5 + 3x + x^2 over GF(2^8).
	coeffs := []byte{5, 3, 1}
	if got := EvalPoly(coeffs, 0); got != 5 {
		t.Errorf("p(0) = %d, want 5", got)
	}
	want := Add(Add(5, Mul(3, 2)), Mul(2, 2))
	if got := EvalPoly(coeffs, 2); got != want {
		t.Errorf("p(2) = %d, want %d", got, want)
	}
	if got := EvalPoly(nil, 9); got != 0 {
		t.Errorf("empty poly = %d, want 0", got)
	}
}

func TestInterpolateRecoversConstantTerm(t *testing.T) {
	coeffs := []byte{0xA7, 0x14, 0x99} // degree 2, secret 0xA7
	xs := []byte{1, 2, 3}
	ys := make([]byte, len(xs))
	for i, x := range xs {
		ys[i] = EvalPoly(coeffs, x)
	}
	got, ok := Interpolate(xs, ys)
	if !ok || got != 0xA7 {
		t.Fatalf("Interpolate = %#x, %v; want 0xA7, true", got, ok)
	}
}

func TestInterpolateRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		xs   []byte
		ys   []byte
	}{
		{"empty", nil, nil},
		{"length mismatch", []byte{1, 2}, []byte{3}},
		{"zero x", []byte{0, 1}, []byte{1, 2}},
		{"duplicate x", []byte{2, 2}, []byte{1, 2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, ok := Interpolate(tt.xs, tt.ys); ok {
				t.Error("Interpolate accepted invalid input")
			}
		})
	}
}

// TestInterpolateProperty: for random polynomials of random degree, any
// d+1 distinct evaluation points recover the constant term.
func TestInterpolateProperty(t *testing.T) {
	prop := func(secret byte, rest []byte, perm uint) bool {
		degree := len(rest) % 8
		coeffs := append([]byte{secret}, rest[:degree]...)
		// Pick degree+1 distinct non-zero xs, offset by perm for variety.
		xs := make([]byte, degree+1)
		ys := make([]byte, degree+1)
		for i := range xs {
			xs[i] = byte(1 + (int(perm%255)+i*17)%255)
		}
		if hasDup(xs) {
			return true // skip degenerate sample
		}
		for i, x := range xs {
			ys[i] = EvalPoly(coeffs, x)
		}
		got, ok := Interpolate(xs, ys)
		return ok && got == secret
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func hasDup(xs []byte) bool {
	seen := map[byte]bool{}
	for _, x := range xs {
		if seen[x] {
			return true
		}
		seen[x] = true
	}
	return false
}
