package core_test

import (
	"fmt"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// Example runs a complete four-process consensus (tolerating one Byzantine
// process, here absent) on the simulated asynchronous network.
func Example() {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.Immediate{}, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	proposals := []types.Value{types.One, types.One, types.Zero, types.One}
	nodes := make([]*core.Node, len(peers))
	for i, p := range peers {
		nodes[i], err = core.New(core.Config{
			Me:       p,
			Peers:    peers,
			Spec:     spec,
			Coin:     coin.NewIdeal(7),
			Proposal: proposals[i],
		})
		if err != nil {
			fmt.Println(err)
			return
		}
		if err := net.Add(nodes[i]); err != nil {
			fmt.Println(err)
			return
		}
	}
	if _, err := net.Run(nil); err != nil {
		fmt.Println(err)
		return
	}
	for _, nd := range nodes {
		v, _ := nd.Decided()
		fmt.Printf("%v decided %v in round %d\n", nd.ID(), v, nd.DecidedRound())
	}
	// Output:
	// p1 decided 1 in round 1
	// p2 decided 1 in round 1
	// p3 decided 1 in round 1
	// p4 decided 1 in round 1
}
