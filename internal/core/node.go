// Package core implements the primary contribution of the PODC-84 paper:
// Bracha's asynchronous randomized Byzantine consensus with optimal
// resilience f < n/3. A Node is a deterministic state machine (sim.Node
// compatible) that composes the paper's three pieces:
//
//   - every step message is disseminated by reliable broadcast
//     (internal/rbc), so Byzantine processes cannot equivocate;
//
//   - received step messages count toward the n−f waits only once
//     *justified* (internal/validate), so Byzantine processes cannot send
//     implausible values;
//
//   - rounds of three steps drive values together, with a coin
//     (internal/coin) breaking symmetry:
//
//     step 1: broadcast value; await n−f; value ← majority.
//     step 2: broadcast value; await n−f; if some v holds > n/2, value ← D(v).
//     step 3: broadcast value; await n−f; if ≥ 2f+1 D(v): decide v;
//     else if ≥ f+1 D(v): value ← v; else value ← coin.
//
// Bracha's protocol decides but never halts (processes keep echoing forever
// so laggards can finish). For practical termination this implementation
// adds the standard decide-amplification gadget, a direct reuse of the
// paper's own READY amplification idea: a deciding process broadcasts
// DECIDE(v); any process relays on f+1 matching DECIDEs and halts on 2f+1.
// The gadget is configurable off (ablation A2) to measure the pure protocol.
package core

import (
	"errors"
	"fmt"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/validate"
	"repro/internal/wire"
)

// DefaultMaxRounds bounds how many rounds a node will start before stalling
// (a stalled node is detectable as a termination violation; the simulator's
// delivery budget is the usual backstop long before this).
const DefaultMaxRounds = 1 << 16

// Config configures a consensus node.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption (n = len(Peers), f tolerated).
	Spec quorum.Spec
	// Coin supplies the step-3 randomness. Required.
	Coin coin.Coin
	// Proposal is this process's input bit.
	Proposal types.Value
	// Recorder, when enabled, receives ROUND/COIN/DECIDE/HALT/RBC events.
	Recorder *trace.Recorder
	// Instance namespaces this consensus instance when several share one
	// network (replicated-log slots): reliable-broadcast tags carry it as
	// Tag.Seq and DECIDE gadget messages carry it explicitly, so traffic
	// from other instances is ignored rather than miscounted. Concurrent
	// instances using the common coin additionally need distinct dealers
	// (share MACs are bound to a dealer secret, so foreign shares are
	// rejected, but reusing one dealer would reuse the same coin values).
	Instance int
	// Coded switches step dissemination to erasure-coded reliable broadcast
	// (AVID-style, see internal/rbc: per-peer fragments plus a SHA-256
	// cross-checksum instead of full-body echoes). Delivered bodies — and
	// therefore every decision, digest, and trace event above the transport —
	// are identical to the uncoded mode; only the wire format changes.
	Coded bool
	// DisableValidation turns off message justification (ablation A1).
	DisableValidation bool
	// DisableDecideGadget turns off DECIDE amplification (ablation A2):
	// the node then decides but never halts, as in the paper's original
	// formulation.
	DisableDecideGadget bool
	// DisablePruning turns off per-round state pruning (accepted lists,
	// coin share state, RBC instance compaction, and the validator's seen
	// window are then retained for the whole execution, as the pre-pruning
	// implementation did). Pruning never changes behaviour — released state
	// is provably dead — so this knob exists only for the E11 memory
	// comparison.
	DisablePruning bool
	// Window is how many rounds of per-round state are retained behind the
	// decided frontier (0 = the default of 1, the tightest window the
	// invariant "state for round r is released once r+1 decides" allows).
	// On entering round r the node releases everything below r−Window:
	// accepted lists, coin share state, terminal RBC instances (compacted
	// to delivered-digest records), and the validator's seen entries.
	// Window never changes behaviour, only retention; ARCHITECTURE.md maps
	// every structure it governs.
	Window int
	// MaxRounds bounds round progression (0 = DefaultMaxRounds).
	MaxRounds int
	// Telemetry, when non-nil, receives the consensus phase marks (round
	// entry → decision) and is forwarded to the RBC layer for its quorum
	// marks. Must be the sink the owning network is charging, whose clock
	// supplies the mark times.
	Telemetry *sim.Telemetry
}

// Stats counts a node's protocol activity.
type Stats struct {
	RoundsStarted int // rounds this node entered (≥ 1 after Start)
	CoinsUsed     int // step-3 coin fallbacks taken
	Adopted       int // step-3 f+1 adoptions taken
	StepsDone     int // step transitions completed
	PrunedLate    int // justified messages dropped for already-pruned rounds
}

// Node is one Bracha consensus process. Not safe for concurrent use: drive
// it from a single loop (the simulator or a transport pump).
type Node struct {
	cfg   Config
	spec  quorum.Spec
	bcast *rbc.Broadcaster
	val   *validate.Validator

	round int
	step  types.Step
	value types.Value
	dFlag bool // value is a decision proposal (between steps 2 and 3)
	// roundEnteredAt marks when the current round began (telemetry clock;
	// meaningless without a sink).
	roundEnteredAt sim.Time

	accepted acceptedTable

	waitingCoin bool
	stalled     bool // hit MaxRounds

	decided      bool
	decision     types.Value
	decidedRound int

	sentDecide  bool
	decideVotes map[types.ProcessID]types.Value
	halted      bool

	// The embedded recycled output buffer (see sim.OutBuffer): once the
	// driver returns a delivered slice through Recycle, later Deliver
	// calls append into its backing array instead of allocating. Drivers
	// that never recycle simply leave the node allocating, as the seed
	// implementation always did.
	sim.OutBuffer

	stats Stats
}

// acceptedTable is the dense round-indexed store of justified step messages
// awaiting their quorum windows — the replacement for the seed's
// map[slot][]validate.Accepted, whose per-append map traffic was the last
// per-delivery allocation in core. Rounds are interned as offsets from a
// moving base: rounds[i] holds round base+i, a (round, step) slot resolves
// to two array indexes, and pruning advances base while recycling the
// released backing arrays through a free list, so steady-state appends
// allocate nothing and a long run's live table stays a fixed-size window.
type acceptedTable struct {
	base   int                   // lowest retained round; rounds below are pruned
	rounds []stepLists           // rounds[i] = round base+i
	free   [][]validate.Accepted // recycled backing arrays from pruned rounds
}

// stepLists holds one round's accepted messages, one list per protocol step.
type stepLists [3][]validate.Accepted

// add appends a justified message to its (round, step) slot. It reports
// false when the round was already pruned — the message is provably dead
// (quorum windows only ever read the current round, which is past it) — or
// lies beyond maxRounds, which the node can never enter.
func (t *acceptedTable) add(round int, step types.Step, acc validate.Accepted, maxRounds int) bool {
	if round < t.base || round > maxRounds {
		return false
	}
	for round-t.base >= len(t.rounds) {
		t.rounds = append(t.rounds, stepLists{})
	}
	list := &t.rounds[round-t.base][step-types.Step1]
	if *list == nil && len(t.free) > 0 {
		*list = t.free[len(t.free)-1]
		t.free = t.free[:len(t.free)-1]
	}
	*list = append(*list, acc)
	return true
}

// window returns the accepted list for a (round, step) slot (nil if empty
// or pruned).
func (t *acceptedTable) window(round int, step types.Step) []validate.Accepted {
	if round < t.base || round-t.base >= len(t.rounds) {
		return nil
	}
	return t.rounds[round-t.base][step-types.Step1]
}

// pruneBelow releases every round before r, recycling the released backing
// arrays for future appends.
func (t *acceptedTable) pruneBelow(r int) {
	if r <= t.base {
		return
	}
	k := r - t.base
	if k > len(t.rounds) {
		k = len(t.rounds)
	}
	for i := 0; i < k; i++ {
		for s := range t.rounds[i] {
			if c := t.rounds[i][s]; cap(c) > 0 {
				t.free = append(t.free, c[:0])
			}
			t.rounds[i][s] = nil
		}
	}
	t.rounds = t.rounds[:copy(t.rounds, t.rounds[k:])]
	t.base = r
}

// retained reports how many accepted messages the table currently holds
// (diagnostics for the pruning tests and the E11 memory experiment).
func (t *acceptedTable) retained() int {
	total := 0
	for i := range t.rounds {
		for s := range t.rounds[i] {
			total += len(t.rounds[i][s])
		}
	}
	return total
}

// Config validation errors.
var (
	ErrNoCoin   = errors.New("core: config requires a coin")
	ErrBadPeers = errors.New("core: peers must include me and match spec size")
)

// New creates a consensus node. Peers must contain Me and have exactly
// Spec.N() entries.
func New(cfg Config) (*Node, error) {
	if cfg.Coin == nil {
		return nil, ErrNoCoin
	}
	if len(cfg.Peers) != cfg.Spec.N() {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	if !cfg.Proposal.Valid() {
		return nil, fmt.Errorf("core: invalid proposal %d", cfg.Proposal)
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = DefaultMaxRounds
	}
	if cfg.Window < 0 {
		return nil, fmt.Errorf("core: negative window %d", cfg.Window)
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	newVal := validate.New
	if cfg.DisableValidation {
		newVal = validate.NewLax
	}
	newRBC := rbc.New
	if cfg.Coded {
		newRBC = rbc.NewCoded
	}
	bcast := newRBC(cfg.Me, cfg.Peers, cfg.Spec)
	bcast.SetTelemetry(cfg.Telemetry)
	return &Node{
		cfg:         cfg,
		spec:        cfg.Spec,
		bcast:       bcast,
		val:         newVal(cfg.Spec),
		value:       cfg.Proposal,
		accepted:    acceptedTable{base: 1},
		decideVotes: make(map[types.ProcessID]types.Value),
	}, nil
}

var (
	_ sim.Node     = (*Node)(nil)
	_ sim.Recycler = (*Node)(nil)
)

// ID implements sim.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Me }

// Done implements sim.Node: true once the node halted via the decide gadget.
func (n *Node) Done() bool { return n.halted }

// Start implements sim.Node: enter round 1 and broadcast the proposal.
func (n *Node) Start() []types.Message {
	return n.enterRound(n.Take(), 1)
}

// Deliver implements sim.Node.
func (n *Node) Deliver(m types.Message) []types.Message {
	if n.halted {
		return nil
	}
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		out := n.onRBC(n.Take(), m.From, p)
		return n.advance(out)
	case *types.RBCFragPayload:
		out, deliveries := n.bcast.AppendHandleFrag(n.Take(), m.From, p)
		return n.advance(n.onDeliveries(out, deliveries))
	case *types.RBCSumPayload:
		out, deliveries := n.bcast.AppendHandleSum(n.Take(), m.From, p)
		return n.advance(n.onDeliveries(out, deliveries))
	case *types.CoinSharePayload:
		n.cfg.Coin.HandleShare(m.From, p)
		return n.advance(n.Take())
	case *types.DecidePayload:
		return n.onDecideVote(n.Take(), m.From, p)
	default:
		return nil
	}
}

// Decided reports whether the node decided and what.
func (n *Node) Decided() (types.Value, bool) { return n.decision, n.decided }

// DecidedRound returns the round in which the node decided (0 if undecided).
func (n *Node) DecidedRound() int { return n.decidedRound }

// Round returns the node's current round.
func (n *Node) Round() int { return n.round }

// Proposal returns the node's input value.
func (n *Node) Proposal() types.Value { return n.cfg.Proposal }

// Stats returns protocol activity counters.
func (n *Node) Stats() Stats { return n.stats }

// AcceptedRetained returns how many justified messages the node currently
// retains in its quorum-wait table — with pruning on, a sliding window of
// Window+1 rounds; without it, the whole execution (diagnostics for the
// pruning tests and the E11 memory experiment).
func (n *Node) AcceptedRetained() int { return n.accepted.retained() }

// RBCLiveInstances returns how many reliable-broadcast instances the node
// retains at full fidelity (tallies and payloads); RBCCompacted returns how
// many it has released to compact delivered-digest records. With pruning on
// the live count stays bounded by the window plus non-terminal stragglers;
// without it, every instance of the execution stays live (diagnostics for
// the windowing tests and the E11 memory experiment).
func (n *Node) RBCLiveInstances() int { return n.bcast.Instances() }

// RBCCompacted returns the count of compact delivered-digest records held
// for pruned RBC instances.
func (n *Node) RBCCompacted() int { return n.bcast.Compacted() }

// ValidatorSeenRetained returns how many per-sender dedup entries the
// node's validator currently holds — windowed behind the decided frontier
// with pruning on, linear in rounds without.
func (n *Node) ValidatorSeenRetained() int { return n.val.SeenRetained() }

// RBCDigestBytes returns the bytes this node's broadcaster retains in
// compact delivered-digest records — the residue windowed pruning keeps
// forever, one record per terminal instance (see rbc.Broadcaster.DigestBytes).
func (n *Node) RBCDigestBytes() int { return n.bcast.DigestBytes() }

// JustificationsRetained returns how many per-round justification digests
// this node's validator retains — the other forever-residue of windowed
// pruning, one 64-byte digest per touched round.
func (n *Node) JustificationsRetained() int { return n.val.JustificationsRetained() }

// ReleaseResidueBelow retires the residue windowed pruning keeps forever:
// the compact RBC delivered-digest records of rounds below floor and the
// validator's justification digests below floor−1 (round floor's step-1
// justification reads round floor−1's digest, so that one stays). Late
// messages for the released rounds are silently refused rather than judged.
//
// This hook is never called by the node's own windowing (enterRound): it
// exists for a checkpointing layer above a long-lived instance, which must
// hold a protocol-level certificate that every round below floor is settled
// — the quorum cut of internal/ckpt, under which a process still missing
// those rounds is served state transfer instead of a replay.
func (n *Node) ReleaseResidueBelow(floor int) {
	n.bcast.DropRoundBelow(floor)
	n.val.ReleaseTalliesBelow(floor - 1)
}

// onRBC feeds a reliable-broadcast payload through the broadcaster, then
// processes whatever it delivered.
func (n *Node) onRBC(out []types.Message, from types.ProcessID, p *types.RBCPayload) []types.Message {
	out, deliveries := n.bcast.AppendHandle(out, from, p)
	return n.onDeliveries(out, deliveries)
}

// onDeliveries records every reliable-broadcast delivery — however
// disseminated, plain or coded — with the validator and appends newly
// justified messages to the quorum waits.
func (n *Node) onDeliveries(out []types.Message, deliveries []rbc.Delivery) []types.Message {
	for _, d := range deliveries {
		sm, err := wire.DecodeStep(d.Body)
		if err != nil {
			continue // Byzantine garbage body
		}
		// The RBC instance tag must match the body's slot, or a Byzantine
		// sender could use one broadcast to occupy another slot; foreign
		// consensus instances (different Seq) are not ours to count.
		if sm.Round != d.ID.Tag.Round || sm.Step != d.ID.Tag.Step || d.ID.Tag.Seq != n.cfg.Instance {
			continue
		}
		if n.cfg.Recorder.Enabled() {
			n.record(trace.Event{Kind: trace.KindRBC, P: n.cfg.Me, Round: sm.Round,
				Note: fmt.Sprintf("delivered %v from %v", sm, d.ID.Sender)})
		}
		for _, acc := range n.val.Record(d.ID.Sender, sm) {
			// Justified messages for pruned rounds are dead on arrival:
			// quorum windows only read the current round, which is already
			// past them. The validator still folded the message into its
			// round tallies above — those stay live, because justification
			// of in-flight current-round messages can reach back into them.
			if !n.accepted.add(acc.Msg.Round, acc.Msg.Step, acc, n.cfg.MaxRounds) {
				n.stats.PrunedLate++
			}
		}
	}
	return out
}

// advance applies every enabled transition until the node blocks on a wait,
// appending emitted messages to out.
func (n *Node) advance(out []types.Message) []types.Message {
	for !n.halted && !n.stalled {
		if n.waitingCoin {
			s, ok := n.cfg.Coin.Value(n.round)
			if !ok {
				break
			}
			n.waitingCoin = false
			n.stats.CoinsUsed++
			n.record(trace.Event{Kind: trace.KindCoin, P: n.cfg.Me, Round: n.round, V: s})
			n.value = s
			out = n.enterRound(out, n.round+1)
			continue
		}
		window, ok := n.quorumWindow()
		if !ok {
			break
		}
		n.stats.StepsDone++
		switch n.step {
		case types.Step1:
			n.value = majority(window)
			n.step = types.Step2
			out = n.broadcastStep(out)
		case types.Step2:
			if v, ok := superMajority(window, n.spec.SuperMajority()); ok {
				n.value = v
				n.dFlag = true
			} else {
				n.dFlag = false
			}
			n.step = types.Step3
			out = n.broadcastStep(out)
		case types.Step3:
			out = n.finishStep3(out, window)
		}
	}
	return out
}

// quorumWindow returns the first n−f accepted messages for the current
// slot, or false if the wait is not yet satisfied.
func (n *Node) quorumWindow() ([]validate.Accepted, bool) {
	list := n.accepted.window(n.round, n.step)
	q := n.spec.Quorum()
	if len(list) < q {
		return nil, false
	}
	return list[:q], true
}

// finishStep3 applies the decide/adopt/coin rule over the window and either
// moves to the next round or blocks on the coin.
func (n *Node) finishStep3(out []types.Message, window []validate.Accepted) []types.Message {
	// Release the round's coin unconditionally: with the common coin,
	// reconstruction needs f+1 correct shares, and only processes that
	// finished step 3 may contribute — so everyone must, whether or not
	// they personally fall through to the coin. Unpredictability is
	// preserved exactly as required: the coin stays secret until the first
	// correct process completes the round's step 3.
	out = append(out, n.cfg.Coin.Release(n.round)...)

	var dCount [2]int
	for _, acc := range window {
		if acc.Msg.D {
			dCount[acc.Msg.V]++
		}
	}
	// With validation on, at most one value can carry justified D-messages
	// in a round; pick the better-supported one defensively anyway (lax
	// ablations can produce both).
	v := types.Zero
	if dCount[1] > dCount[0] {
		v = types.One
	}
	switch {
	case dCount[v] >= n.spec.Decide():
		out = n.decide(out, v)
		n.value = v
		out = n.enterRound(out, n.round+1)
	case dCount[v] >= n.spec.Adopt():
		n.stats.Adopted++
		n.value = v
		out = n.enterRound(out, n.round+1)
	default:
		n.waitingCoin = true // advance() resumes when the coin lands
	}
	return out
}

// enterRound moves to the given round and broadcasts its step-1 message.
func (n *Node) enterRound(out []types.Message, r int) []types.Message {
	if r > n.cfg.MaxRounds {
		n.stalled = true
		n.record(trace.Event{Kind: trace.KindNote, P: n.cfg.Me, Round: r, Note: "max rounds reached; stalling"})
		return out
	}
	n.round = r
	n.step = types.Step1
	n.dFlag = false
	n.roundEnteredAt = n.cfg.Telemetry.Now()
	n.stats.RoundsStarted++
	if !n.cfg.DisablePruning {
		// The pruning invariant: state for round k is released once round
		// k+Window decides. Entering round r means r−1 decided, so with the
		// default Window of 1 everything below r−1 is released — accepted
		// lists recycle their backing arrays, a pruning-aware coin drops its
		// per-round share state (and any straggler shares that arrive
		// later), terminal RBC instances compact to delivered-digest
		// records, and the validator releases its per-sender seen entries.
		// The validator's per-round justification digests are deliberately
		// retained: justification of in-flight messages recurses into
		// previous rounds' digests, and they cost bytes per round, not
		// kilobytes.
		floor := r - n.cfg.Window
		n.accepted.pruneBelow(floor)
		if p, ok := n.cfg.Coin.(coin.Pruner); ok {
			p.Prune(floor)
		}
		n.bcast.PruneBelow(floor)
		n.val.PruneBelow(floor)
	}
	n.record(trace.Event{Kind: trace.KindRound, P: n.cfg.Me, Round: r})
	return n.broadcastStep(out)
}

// broadcastStep reliably broadcasts the node's current (round, step, value).
func (n *Node) broadcastStep(out []types.Message) []types.Message {
	sm := types.StepMessage{Round: n.round, Step: n.step, V: n.value, D: n.dFlag && n.step == types.Step3}
	body, err := wire.EncodeStep(sm)
	if err != nil {
		// All fields are internally generated and valid by construction.
		panic(fmt.Sprintf("core: encoding own step message %v: %v", sm, err))
	}
	return n.bcast.AppendBroadcast(out, types.Tag{Round: n.round, Step: n.step, Seq: n.cfg.Instance}, body)
}

// decide records the decision and, unless disabled, launches the DECIDE
// amplification.
func (n *Node) decide(out []types.Message, v types.Value) []types.Message {
	if !n.decided {
		n.decided = true
		n.decision = v
		n.decidedRound = n.round
		n.cfg.Telemetry.Observe(sim.PhaseRoundDecide, n.roundEnteredAt)
		n.record(trace.Event{Kind: trace.KindDecide, P: n.cfg.Me, Round: n.round, V: v})
	}
	if n.cfg.DisableDecideGadget || n.sentDecide {
		return out
	}
	n.sentDecide = true
	return types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, &types.DecidePayload{V: v, Instance: n.cfg.Instance})
}

// onDecideVote handles the DECIDE amplification: relay at f+1 matching
// votes, decide-and-halt at 2f+1. One vote per sender counts (Byzantine
// senders cannot stuff the count, and with at most f of them they can never
// reach f+1 alone).
func (n *Node) onDecideVote(out []types.Message, from types.ProcessID, p *types.DecidePayload) []types.Message {
	if p == nil || !p.V.Valid() || p.Instance != n.cfg.Instance {
		return out
	}
	if _, dup := n.decideVotes[from]; dup {
		return out
	}
	n.decideVotes[from] = p.V
	var count [2]int
	for _, v := range n.decideVotes {
		count[v]++
	}
	v := p.V
	if count[v] >= n.spec.Adopt() && !n.sentDecide && !n.cfg.DisableDecideGadget {
		n.sentDecide = true
		out = types.AppendBroadcast(out, n.cfg.Me, n.cfg.Peers, &types.DecidePayload{V: v, Instance: n.cfg.Instance})
	}
	if count[v] >= n.spec.Decide() {
		if !n.decided {
			n.decided = true
			n.decision = v
			n.decidedRound = n.round
			n.cfg.Telemetry.Observe(sim.PhaseRoundDecide, n.roundEnteredAt)
			n.record(trace.Event{Kind: trace.KindDecide, P: n.cfg.Me, Round: n.round, V: v})
		}
		n.halted = true
		n.record(trace.Event{Kind: trace.KindHalt, P: n.cfg.Me, Round: n.round})
	}
	return out
}

func (n *Node) record(e trace.Event) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.Record(e)
	}
}

// majority returns the majority value of a window, ties to 0 — the same
// deterministic rule the validator assumes.
func majority(window []validate.Accepted) types.Value {
	var count [2]int
	for _, acc := range window {
		count[acc.Msg.V]++
	}
	if count[1] > count[0] {
		return types.One
	}
	return types.Zero
}

// superMajority returns the value held by more than half of all n processes
// within the window, if any.
func superMajority(window []validate.Accepted, sm int) (types.Value, bool) {
	var count [2]int
	for _, acc := range window {
		count[acc.Msg.V]++
	}
	switch {
	case count[0] >= sm:
		return types.Zero, true
	case count[1] >= sm:
		return types.One, true
	default:
		return 0, false
	}
}
