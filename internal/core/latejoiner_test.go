package core

import (
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// slowStartNode wraps a consensus node whose entire participation is
// delayed: its Start messages and all of its sends are held back by the
// scheduler. It models a correct-but-extremely-slow process, which must
// still decide via the DECIDE amplification after the fast majority
// finishes.
func TestLateJoinerCatchesUpViaDecideGadget(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)

	// p4's outbound traffic is delayed by a huge constant: the other three
	// (n−f = 3) run the protocol among themselves, decide, and halt; p4
	// hears their DECIDEs long before its own round-1 traffic circulates.
	net, err := sim.New(sim.Config{
		Scheduler: sim.Compose{
			Base: sim.UniformDelay{Min: 1, Max: 10},
			Rules: []sim.Rule{
				func(m types.Message, at, _ sim.Time) sim.Time {
					if m.From == 4 && m.To != 4 {
						return at + 100_000
					}
					return at
				},
			},
		},
		Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	dealer := coin.NewDealer(spec, 6)
	nodes := make([]*Node, 0, 4)
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewCommon(p, peers, dealer),
			Proposal: types.Value(i % 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, nd := range nodes {
			if !nd.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	var first types.Value
	for i, nd := range nodes {
		v, ok := nd.Decided()
		if !ok {
			t.Fatalf("%v undecided (late joiner did not catch up)", nd.ID())
		}
		if i == 0 {
			first = v
		} else if v != first {
			t.Fatalf("agreement broken: %v vs %v", v, first)
		}
	}
	// The slow process must have decided without completing rounds itself:
	// its decision came from the gadget (decided round equals its current
	// round, which stayed at 1 since its own traffic never circulated).
	slow := nodes[3]
	if slow.Round() > 1 {
		t.Logf("note: slow process reached round %d", slow.Round())
	}
}
