package core

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// coinKind selects the randomization source for a test cluster.
type coinKind int

const (
	coinLocal coinKind = iota
	coinCommon
	coinIdeal
)

// cluster bundles a simulated all-correct consensus run.
type cluster struct {
	nodes []*Node
	stats sim.Stats
}

// runCluster runs n correct nodes (f is only the assumption) to quiescence.
func runCluster(t *testing.T, n, f int, proposals []types.Value, ck coinKind, seed int64, opts ...func(*Config)) cluster {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	var dealer *coin.Dealer
	if ck == coinCommon {
		dealer = coin.NewDealer(spec, seed+1)
	}
	nodes := make([]*Node, n)
	for i, p := range peers {
		var c coin.Coin
		switch ck {
		case coinLocal:
			c = coin.NewLocal(seed + int64(p)*1000)
		case coinCommon:
			c = coin.NewCommon(p, peers, dealer)
		case coinIdeal:
			c = coin.NewIdeal(seed)
		}
		cfg := Config{Me: p, Peers: peers, Spec: spec, Coin: c, Proposal: proposals[i]}
		for _, o := range opts {
			o(&cfg)
		}
		node, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := net.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := net.Run(func() bool {
		for _, nd := range nodes {
			if !nd.Done() {
				return false
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster{nodes: nodes, stats: stats}
}

// observe builds the checker observation for an all-correct cluster.
func observe(c cluster, quiesced bool) check.ConsensusObservation {
	obs := check.ConsensusObservation{
		Proposals: map[types.ProcessID]types.Value{},
		Decisions: map[types.ProcessID][]types.Value{},
		Quiesced:  quiesced,
	}
	for _, nd := range c.nodes {
		obs.Correct = append(obs.Correct, nd.ID())
		obs.Proposals[nd.ID()] = nd.Proposal()
		if v, ok := nd.Decided(); ok {
			obs.Decisions[nd.ID()] = []types.Value{v}
		}
	}
	return obs
}

func TestUnanimousDecidesProposal(t *testing.T) {
	for _, v := range []types.Value{types.Zero, types.One} {
		proposals := []types.Value{v, v, v, v}
		c := runCluster(t, 4, 1, proposals, coinLocal, 7)
		for _, nd := range c.nodes {
			got, ok := nd.Decided()
			if !ok {
				t.Fatalf("%v undecided", nd.ID())
			}
			if got != v {
				t.Fatalf("%v decided %v, want %v (strong validity)", nd.ID(), got, v)
			}
			if !nd.Done() {
				t.Fatalf("%v decided but not halted", nd.ID())
			}
			if nd.DecidedRound() != 1 {
				t.Errorf("%v decided in round %d, want 1 (unanimous input)", nd.ID(), nd.DecidedRound())
			}
		}
		if vs := check.Consensus(observe(c, true)); len(vs) != 0 {
			t.Fatalf("violations: %v", vs)
		}
	}
}

func TestSplitProposalsEventuallyAgree(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		proposals := []types.Value{0, 1, 0, 1}
		c := runCluster(t, 4, 1, proposals, coinLocal, seed)
		if vs := check.Consensus(observe(c, true)); len(vs) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
	}
}

func TestCommonCoinCluster(t *testing.T) {
	sizes := []struct{ n, f int }{{4, 1}, {7, 2}}
	for _, sz := range sizes {
		for seed := int64(0); seed < 5; seed++ {
			proposals := make([]types.Value, sz.n)
			for i := range proposals {
				proposals[i] = types.Value(i % 2)
			}
			c := runCluster(t, sz.n, sz.f, proposals, coinCommon, seed)
			if vs := check.Consensus(observe(c, true)); len(vs) != 0 {
				t.Fatalf("n=%d seed %d: violations: %v", sz.n, seed, vs)
			}
		}
	}
}

func TestDecideGadgetDisabledRunsForever(t *testing.T) {
	// Without the gadget nodes decide but never halt; bound the run with a
	// small delivery budget and confirm decisions still agree.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 5}, Seed: 3, MaxDeliveries: 60_000})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 4)
	for i, p := range peers {
		node, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewIdeal(9),
			Proposal:            types.One,
			DisableDecideGadget: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := net.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	allDecided := func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Decided(); !ok {
				return false
			}
		}
		return true
	}
	if _, err := net.Run(allDecided); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		v, ok := nd.Decided()
		if !ok || v != types.One {
			t.Fatalf("%v: decided=%v v=%v, want 1", nd.ID(), ok, v)
		}
		if nd.Done() {
			t.Fatalf("%v halted despite disabled gadget", nd.ID())
		}
	}
}

func TestSilentByzantineTolerated(t *testing.T) {
	// f processes are absent entirely (crashed at start — the simplest
	// Byzantine behaviour). The remaining n−f must still decide.
	n, f := 7, 2
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	correct := peers[:n-f]
	for seed := int64(0); seed < 5; seed++ {
		net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		dealer := coin.NewDealer(spec, seed)
		nodes := make([]*Node, 0, len(correct))
		for i, p := range correct {
			node, err := New(Config{
				Me: p, Peers: peers, Spec: spec,
				Coin:     coin.NewCommon(p, peers, dealer),
				Proposal: types.Value(i % 2),
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, node)
			if err := net.Add(node); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := net.Run(nil); err != nil {
			t.Fatal(err)
		}
		obs := check.ConsensusObservation{
			Proposals: map[types.ProcessID]types.Value{},
			Decisions: map[types.ProcessID][]types.Value{},
			Quiesced:  true,
		}
		for _, nd := range nodes {
			obs.Correct = append(obs.Correct, nd.ID())
			obs.Proposals[nd.ID()] = nd.Proposal()
			if v, ok := nd.Decided(); ok {
				obs.Decisions[nd.ID()] = []types.Value{v}
			}
		}
		if vs := check.Consensus(obs); len(vs) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
	}
}

func TestManySeedsNoViolations(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	for seed := int64(0); seed < 30; seed++ {
		proposals := []types.Value{
			types.Value(seed & 1), types.Value((seed >> 1) & 1),
			types.Value((seed >> 2) & 1), types.Value((seed >> 3) & 1),
			types.Value((seed >> 4) & 1), types.Value((seed >> 5) & 1),
			types.Value((seed >> 6) & 1),
		}
		c := runCluster(t, 7, 2, proposals, coinCommon, seed)
		if vs := check.Consensus(observe(c, true)); len(vs) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, vs)
		}
		if c.stats.Exhausted {
			t.Fatalf("seed %d: delivery budget exhausted", seed)
		}
	}
}

func TestStatsPopulated(t *testing.T) {
	c := runCluster(t, 4, 1, []types.Value{1, 1, 1, 1}, coinIdeal, 1)
	for _, nd := range c.nodes {
		st := nd.Stats()
		if st.RoundsStarted < 1 {
			t.Errorf("%v RoundsStarted = %d", nd.ID(), st.RoundsStarted)
		}
		if st.StepsDone < 3 {
			t.Errorf("%v StepsDone = %d, want ≥ 3", nd.ID(), st.StepsDone)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	good := Config{Me: 1, Peers: peers, Spec: spec, Coin: coin.NewIdeal(1), Proposal: types.One}

	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"missing coin", func(c *Config) { c.Coin = nil }, ErrNoCoin},
		{"wrong peer count", func(c *Config) { c.Peers = peers[:3] }, ErrBadPeers},
		{"me not in peers", func(c *Config) { c.Me = 9 }, ErrBadPeers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
	t.Run("bad proposal", func(t *testing.T) {
		cfg := good
		cfg.Proposal = 7
		if _, err := New(cfg); err == nil {
			t.Error("invalid proposal accepted")
		}
	})
}

func TestHaltedNodeIgnoresTraffic(t *testing.T) {
	c := runCluster(t, 4, 1, []types.Value{1, 1, 1, 1}, coinIdeal, 1)
	nd := c.nodes[0]
	if !nd.Done() {
		t.Fatal("node not halted after full run")
	}
	if out := nd.Deliver(types.Message{From: 2, To: 1, Payload: &types.DecidePayload{V: types.Zero}}); out != nil {
		t.Error("halted node produced output")
	}
}

func TestMaxRoundsStalls(t *testing.T) {
	// MaxRounds = 1 and a coin that disagrees with unanimity cannot happen;
	// force many rounds with split inputs and verify the node stalls rather
	// than running unbounded.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 5}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 4)
	for i, p := range peers {
		node, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(int64(p)), // independent coins: likely multi-round
			Proposal:            types.Value(i % 2),
			MaxRounds:           1, // stall after round 1
			DisableDecideGadget: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = node
		if err := net.Add(node); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := net.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exhausted {
		t.Fatal("run did not quiesce")
	}
	for _, nd := range nodes {
		if nd.Round() > 1 {
			t.Errorf("%v advanced to round %d despite MaxRounds=1", nd.ID(), nd.Round())
		}
	}
}
