package core

// Allocation-regression and pruning tests for the zero-allocation delivery
// spine. BenchmarkCoreDelivery is the honest end-to-end number (run with
// -benchmem: expect 0 allocs/op); the AllocsPerRun tests pin the strict
// steady-state paths at exactly zero so a future change cannot silently
// reintroduce per-delivery garbage; the pruning tests pin the invariant
// that state for round r is released once round r+1 decides, and that late
// messages for pruned rounds are dropped without disturbing decisions.

import (
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// BenchmarkCoreDelivery measures the full per-delivery cost of Bracha
// consensus on the simulator: recycled output buffers, dense accepted
// table, per-round pruning. The decide gadget is disabled so the run never
// halts and every one of the b.N deliveries exercises the steady-state
// path; per-round costs (three step broadcasts, fresh RBC instances, one
// validator tally) amortize across the ~2n³ deliveries each round takes.
func BenchmarkCoreDelivery(b *testing.B) {
	const n, f = 16, 5
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{
		Scheduler:     sim.UniformDelay{Min: 1, Max: 20},
		Seed:          1,
		MaxDeliveries: b.N,
	})
	if err != nil {
		b.Fatal(err)
	}
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(int64(p) * 1000),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			MaxRounds:           1 << 30,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := net.Add(nd); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	stats, err := net.Run(nil)
	if err != nil {
		b.Fatal(err)
	}
	if stats.Delivered != b.N {
		b.Fatalf("delivered %d, want %d", stats.Delivered, b.N)
	}
}

// stalledCluster runs an all-correct cluster with the decide gadget off
// until every node stalls at maxRounds, then returns the nodes — warm,
// round-advanced state for the steady-state and pruning tests below.
func stalledCluster(t *testing.T, n, f, maxRounds int, disablePruning bool) []*Node {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, n)
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(5 + int64(p)*1000),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			DisablePruning:      disablePruning,
			MaxRounds:           maxRounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if nd.Round() != maxRounds {
			t.Fatalf("%v stopped in round %d, want stall at %d", nd.ID(), nd.Round(), maxRounds)
		}
	}
	return nodes
}

// TestPruningBoundsRetainedState: with pruning on, a node's accepted table
// holds at most the current and previous rounds however long the run; with
// pruning off it holds the whole execution. Decisions are identical either
// way — pruning only ever releases provably dead state.
func TestPruningBoundsRetainedState(t *testing.T) {
	const n, f, rounds = 4, 1, 12
	pruned := stalledCluster(t, n, f, rounds, false)
	unpruned := stalledCluster(t, n, f, rounds, true)
	// Two retained rounds × 3 steps × ≤ n messages per slot.
	bound := 2 * 3 * n
	for i, nd := range pruned {
		if got := nd.AcceptedRetained(); got > bound {
			t.Errorf("%v retains %d accepted messages, want ≤ %d", nd.ID(), got, bound)
		}
		if got, want := nd.AcceptedRetained(), unpruned[i].AcceptedRetained(); got >= want {
			t.Errorf("%v pruned retention %d not below unpruned %d", nd.ID(), got, want)
		}
		pv, pok := nd.Decided()
		uv, uok := unpruned[i].Decided()
		if pok != uok || pv != uv {
			t.Errorf("%v pruning changed the decision: %v/%v vs %v/%v", nd.ID(), pv, pok, uv, uok)
		}
	}
}

// lateRoundOneReadies crafts the 2f+1 READY messages that make nd
// reliably-deliver a round-1 step-1 message from `sender` — a sender slot
// the node has never seen, so the validator folds it and the accepted
// table must decide whether to store it.
func lateRoundOneReadies(t *testing.T, nd *Node, sender types.ProcessID, peers []types.ProcessID) []types.Message {
	t.Helper()
	body, err := wire.EncodeStep(types.StepMessage{Round: 1, Step: types.Step1, V: types.Zero})
	if err != nil {
		t.Fatal(err)
	}
	id := types.InstanceID{Sender: sender, Tag: types.Tag{Round: 1, Step: types.Step1}}
	msgs := make([]types.Message, 0, len(peers))
	for _, p := range peers {
		msgs = append(msgs, types.Message{From: p, To: nd.ID(),
			Payload: &types.RBCPayload{Phase: types.KindRBCReady, ID: id, Body: body}})
	}
	return msgs
}

// TestLateMessageForPrunedRoundDropped: a straggler's round-1 broadcast
// arriving when the node is many rounds ahead is counted by the validator
// (its tallies stay live for justification) but dropped from the accepted
// table, without disturbing the node's decision or retained state.
func TestLateMessageForPrunedRoundDropped(t *testing.T) {
	const n, f, rounds = 4, 1, 8
	nodes := stalledCluster(t, n, f, rounds, false)
	nd := nodes[0]
	decidedBefore, okBefore := nd.Decided()
	retainedBefore := nd.AcceptedRetained()

	// A fifth process is not a peer; use a peer whose round-1 slot is
	// taken — no. Every peer's round-1 slot is already seen in a full
	// run, so replay a genuine peer's broadcast under a *different* tag:
	// round 1 was pruned (base = rounds−1), so the fold is dropped.
	sender := nodes[1].ID()
	for _, m := range lateRoundOneReadies(t, nd, sender, types.Processes(n)) {
		out := nd.Deliver(m)
		nd.Recycle(out)
	}
	if nd.Stats().PrunedLate != 0 {
		// The slot was already seen: the validator deduplicates it before
		// the accepted table is consulted, which is also a legal drop.
		t.Logf("late replay dropped by accepted table (%d)", nd.Stats().PrunedLate)
	}
	if got := nd.AcceptedRetained(); got != retainedBefore {
		t.Errorf("late pruned-round traffic grew the accepted table: %d -> %d", retainedBefore, got)
	}
	decidedAfter, okAfter := nd.Decided()
	if okBefore != okAfter || decidedBefore != decidedAfter {
		t.Errorf("late pruned-round traffic changed the decision: %v/%v -> %v/%v",
			decidedBefore, okBefore, decidedAfter, okAfter)
	}
}

// TestLateFoldForPrunedRoundCounted drives the accepted-table drop path
// directly: a cluster with one silent peer leaves that peer's round-1 slot
// unseen, so a late crafted broadcast from it folds through the validator
// and must be dropped by the pruned table (PrunedLate counts it).
func TestLateFoldForPrunedRoundCounted(t *testing.T) {
	const n, f, maxRounds = 4, 1, 8
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	silent := peers[n-1]
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, n-1)
	for i, p := range peers[:n-1] {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(7 + int64(p)*1000),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			MaxRounds:           maxRounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(nil); err != nil {
		t.Fatal(err)
	}
	nd := nodes[0]
	if nd.Round() != maxRounds {
		t.Fatalf("node stalled at round %d, want %d", nd.Round(), maxRounds)
	}
	retainedBefore := nd.AcceptedRetained()
	decidedBefore, okBefore := nd.Decided()
	for _, m := range lateRoundOneReadies(t, nd, silent, peers) {
		out := nd.Deliver(m)
		nd.Recycle(out)
	}
	if got := nd.Stats().PrunedLate; got == 0 {
		t.Error("late justified fold for a pruned round was not counted as dropped")
	}
	if got := nd.AcceptedRetained(); got != retainedBefore {
		t.Errorf("pruned-round fold grew the accepted table: %d -> %d", retainedBefore, got)
	}
	decidedAfter, okAfter := nd.Decided()
	if okBefore != okAfter || decidedBefore != decidedAfter {
		t.Errorf("pruned-round fold changed the decision: %v/%v -> %v/%v",
			decidedBefore, okBefore, decidedAfter, okAfter)
	}
}

// TestCoreSteadyStateDeliveryAllocations pins the strict hot paths of a
// warm, round-advanced node at exactly zero allocations per delivery:
// sub-threshold echo counting (the dominant delivery of any big-n run),
// duplicate votes, and late coin shares for pruned rounds.
func TestCoreSteadyStateDeliveryAllocations(t *testing.T) {
	const n, f, rounds = 4, 1, 8
	nodes := stalledCluster(t, n, f, rounds, false)
	nd := nodes[0]

	body, err := wire.EncodeStep(types.StepMessage{Round: rounds, Step: types.Step1, V: types.Zero})
	if err != nil {
		t.Fatal(err)
	}
	echo := types.Message{From: 2, To: nd.ID(), Payload: &types.RBCPayload{
		Phase: types.KindRBCEcho,
		ID:    types.InstanceID{Sender: 3, Tag: types.Tag{Round: rounds, Step: types.Step1}},
		Body:  body,
	}}
	// Warm the tally for this (instance, body) once, then measure.
	nd.Recycle(nd.Deliver(echo))
	cases := []struct {
		name string
		m    types.Message
	}{
		{"duplicate-echo", echo},
		{"duplicate-decide", types.Message{From: 2, To: nd.ID(),
			Payload: &types.DecidePayload{V: types.One}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			allocs := testing.AllocsPerRun(200, func() {
				nd.Recycle(nd.Deliver(tc.m))
			})
			if allocs != 0 {
				t.Errorf("steady-state delivery cost %.1f allocs/op, want 0", allocs)
			}
		})
	}
}

// TestPrunedCoinShareAllocations pins the pruned coin drop path: a common
// coin that has advanced past a round drops that round's late shares with
// zero allocations and zero retained growth.
func TestPrunedCoinShareAllocations(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	dealer := coin.NewDealer(spec, 3)
	c := coin.NewCommon(1, peers, dealer)
	// Obtain round 1 properly, then prune it away.
	c.Release(1)
	share, mac := dealer.ShareFor(2, 1)
	c.HandleShare(2, &types.CoinSharePayload{Round: 1, Share: share, MAC: mac})
	c.Prune(5)
	late := &types.CoinSharePayload{Round: 1, Share: share, MAC: mac}
	allocs := testing.AllocsPerRun(200, func() {
		c.HandleShare(2, late)
	})
	if allocs != 0 {
		t.Errorf("pruned coin share cost %.1f allocs/op, want 0", allocs)
	}
	if _, ok := c.Value(1); ok {
		t.Error("pruned round regrew a coin value from a late share")
	}
	if msgs := c.Release(1); msgs != nil {
		t.Errorf("pruned round released shares: %v", msgs)
	}
}
