package core

// Window tests: the per-round retention window must bound every retainer the
// node owns — accepted lists, live RBC instances, validator seen entries —
// by the window size rather than the rounds run, at any window, without
// moving a single decision.

import (
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// stalledClusterWindow is stalledCluster with an explicit retention window.
func stalledClusterWindow(t *testing.T, n, f, maxRounds, window int, disablePruning bool) []*Node {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, n)
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewLocal(5 + int64(p)*1000),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			DisablePruning:      disablePruning,
			Window:              window,
			MaxRounds:           maxRounds,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(nil); err != nil {
		t.Fatal(err)
	}
	for _, nd := range nodes {
		if nd.Round() != maxRounds {
			t.Fatalf("%v stopped in round %d, want stall at %d", nd.ID(), nd.Round(), maxRounds)
		}
	}
	return nodes
}

// TestWindowBoundsEveryRetainer: at windows 1 and 3, accepted messages,
// live RBC instances, and validator seen entries are all bounded by the
// window (not the rounds run), the compaction counter shows instances were
// actually released, and decisions match the unpruned cluster's exactly.
func TestWindowBoundsEveryRetainer(t *testing.T) {
	const n, f, rounds = 4, 1, 12
	unpruned := stalledClusterWindow(t, n, f, rounds, 1, true)
	for _, window := range []int{1, 3} {
		nodes := stalledClusterWindow(t, n, f, rounds, window, false)
		// Window+1 retained rounds × 3 steps × ≤ n messages (or instances,
		// or seen entries) per slot.
		bound := (window + 1) * 3 * n
		for i, nd := range nodes {
			if got := nd.AcceptedRetained(); got > bound {
				t.Errorf("window %d: %v retains %d accepted msgs, want ≤ %d", window, nd.ID(), got, bound)
			}
			if got := nd.RBCLiveInstances(); got > bound {
				t.Errorf("window %d: %v retains %d live RBC instances, want ≤ %d", window, nd.ID(), got, bound)
			}
			if got := nd.ValidatorSeenRetained(); got > bound {
				t.Errorf("window %d: %v retains %d validator seen entries, want ≤ %d", window, nd.ID(), got, bound)
			}
			if nd.RBCCompacted() == 0 {
				t.Errorf("window %d: %v compacted no RBC instances over %d rounds", window, nd.ID(), rounds)
			}
			u := unpruned[i]
			if got, want := nd.RBCLiveInstances(), u.RBCLiveInstances(); got >= want {
				t.Errorf("window %d: %v live instances %d not below unpruned %d", window, nd.ID(), got, want)
			}
			if got, want := nd.ValidatorSeenRetained(), u.ValidatorSeenRetained(); got >= want {
				t.Errorf("window %d: %v seen retention %d not below unpruned %d", window, nd.ID(), got, want)
			}
			pv, pok := nd.Decided()
			uv, uok := u.Decided()
			if pok != uok || pv != uv {
				t.Errorf("window %d: %v decision %v/%v differs from unpruned %v/%v", window, nd.ID(), pv, pok, uv, uok)
			}
		}
	}
}

// TestUnprunedRetainersGrowWithRounds is the control: without pruning, live
// RBC instances and seen entries scale with rounds run — the growth the
// window exists to cut off.
func TestUnprunedRetainersGrowWithRounds(t *testing.T) {
	const n, f = 4, 1
	short := stalledClusterWindow(t, n, f, 4, 1, true)
	long := stalledClusterWindow(t, n, f, 12, 1, true)
	if got, want := long[0].RBCLiveInstances(), short[0].RBCLiveInstances(); got <= want {
		t.Errorf("unpruned live instances did not grow with rounds: %d (12r) vs %d (4r)", got, want)
	}
	if got, want := long[0].ValidatorSeenRetained(), short[0].ValidatorSeenRetained(); got <= want {
		t.Errorf("unpruned seen entries did not grow with rounds: %d (12r) vs %d (4r)", got, want)
	}
}

// TestNegativeWindowRejected: the config contract.
func TestNegativeWindowRejected(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	_, err := New(Config{
		Me: 1, Peers: peers, Spec: spec,
		Coin: coin.NewLocal(1), Window: -1,
	})
	if err == nil {
		t.Fatal("negative window accepted")
	}
}

// TestReleaseResidueBelowRetiresDigestRecordsAndTallies: the checkpoint
// hook retires what windowing keeps forever — compact RBC digest records
// and justification digests — while keeping the boundary round's digest
// (round floor−1), which round floor's step-1 justification still reads.
func TestReleaseResidueBelowRetiresDigestRecordsAndTallies(t *testing.T) {
	const rounds = 12
	nodes := stalledClusterWindow(t, 4, 1, rounds, 1, false)
	nd := nodes[0]
	if nd.RBCDigestBytes() == 0 {
		t.Fatal("no digest-record residue accumulated before release")
	}
	justBefore := nd.JustificationsRetained()
	if justBefore < rounds-1 {
		t.Fatalf("justification digests = %d, want ≥ %d", justBefore, rounds-1)
	}

	floor := rounds - 2
	nd.ReleaseResidueBelow(floor)
	// Records below the floor are gone; the windowed live set is untouched.
	if got := nd.RBCDigestBytes(); got >= (rounds-floor+1)*3*4*40 {
		t.Errorf("digest bytes after release = %d, want bounded by the suffix", got)
	}
	// Digests for rounds ≥ floor−1 stay (boundary retained), older are gone.
	remaining := nd.JustificationsRetained()
	if want := justBefore - (floor - 2); remaining != want {
		t.Errorf("justification digests after release = %d, want %d", remaining, want)
	}
	// Idempotent and monotone.
	nd.ReleaseResidueBelow(floor)
	if nd.JustificationsRetained() != remaining {
		t.Error("repeated release changed retention")
	}
	nd.ReleaseResidueBelow(floor - 5)
	if nd.JustificationsRetained() != remaining {
		t.Error("lower release changed retention")
	}
}
