package core

import (
	"testing"

	"repro/internal/check"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
	"repro/internal/wire"
)

// newTestNode builds a standalone node for white-box delivery tests.
func newTestNode(t *testing.T, me types.ProcessID, instance int) *Node {
	t.Helper()
	nd, err := New(Config{
		Me: me, Peers: types.Processes(4), Spec: quorum.MustNew(4, 1),
		Coin: coin.NewIdeal(1), Proposal: types.One, Instance: instance,
	})
	if err != nil {
		t.Fatal(err)
	}
	return nd
}

// deliverRBCBody short-circuits reliable broadcast: it feeds the node the
// full SEND/ECHO/READY flow for one instance so the body is rbc-delivered.
func deliverRBCBody(nd *Node, sender types.ProcessID, tag types.Tag, body string) {
	id := types.InstanceID{Sender: sender, Tag: tag}
	nd.Deliver(types.Message{From: sender, To: nd.ID(),
		Payload: &types.RBCPayload{Phase: types.KindRBCSend, ID: id, Body: body}})
	for _, p := range types.Processes(4) {
		nd.Deliver(types.Message{From: p, To: nd.ID(),
			Payload: &types.RBCPayload{Phase: types.KindRBCEcho, ID: id, Body: body}})
	}
	for _, p := range types.Processes(4) {
		nd.Deliver(types.Message{From: p, To: nd.ID(),
			Payload: &types.RBCPayload{Phase: types.KindRBCReady, ID: id, Body: body}})
	}
}

func TestTagBodyMismatchIgnored(t *testing.T) {
	nd := newTestNode(t, 1, 0)
	nd.Start()

	// Byzantine p4 broadcasts a body claiming round 2 step 2 under a round-1
	// step-1 tag: the delivery must not be recorded anywhere.
	body, err := wire.EncodeStep(types.StepMessage{Round: 2, Step: types.Step2, V: types.One})
	if err != nil {
		t.Fatal(err)
	}
	before := nd.val.Tallied() + nd.val.Pending()
	deliverRBCBody(nd, 4, types.Tag{Round: 1, Step: types.Step1}, body)
	if got := nd.val.Tallied() + nd.val.Pending(); got != before {
		t.Errorf("mismatched tag/body was recorded (%d -> %d)", before, got)
	}
}

func TestGarbageBodyIgnored(t *testing.T) {
	nd := newTestNode(t, 1, 0)
	nd.Start()
	before := nd.val.Tallied() + nd.val.Pending()
	deliverRBCBody(nd, 4, types.Tag{Round: 1, Step: types.Step1}, "\xff\xff\xff garbage")
	if got := nd.val.Tallied() + nd.val.Pending(); got != before {
		t.Errorf("garbage body was recorded (%d -> %d)", before, got)
	}
}

func TestForeignInstanceIgnored(t *testing.T) {
	nd := newTestNode(t, 1, 7) // this node is instance 7
	nd.Start()

	// A well-formed message for instance 3 must be invisible to instance 7.
	body, err := wire.EncodeStep(types.StepMessage{Round: 1, Step: types.Step1, V: types.Zero})
	if err != nil {
		t.Fatal(err)
	}
	before := nd.val.Tallied() + nd.val.Pending()
	deliverRBCBody(nd, 2, types.Tag{Round: 1, Step: types.Step1, Seq: 3}, body)
	if got := nd.val.Tallied() + nd.val.Pending(); got != before {
		t.Errorf("foreign-instance step message recorded (%d -> %d)", before, got)
	}

	// Same for the decide gadget.
	for _, from := range []types.ProcessID{2, 3, 4} {
		nd.Deliver(types.Message{From: from, To: 1, Payload: &types.DecidePayload{V: types.One, Instance: 3}})
	}
	if _, decided := nd.Decided(); decided {
		t.Error("node decided from foreign-instance DECIDE quorum")
	}
}

func TestForgedDecidesBelowThresholdIgnored(t *testing.T) {
	nd := newTestNode(t, 1, 0)
	nd.Start()
	// f = 1 forged DECIDE: below the f+1 relay threshold, nothing happens.
	out := nd.Deliver(types.Message{From: 4, To: 1, Payload: &types.DecidePayload{V: types.Zero}})
	if len(out) != 0 {
		t.Errorf("single forged DECIDE triggered %d messages", len(out))
	}
	if _, decided := nd.Decided(); decided {
		t.Error("node decided from a single forged DECIDE")
	}
	// Duplicate from the same sender must not inch the count upward.
	for i := 0; i < 5; i++ {
		nd.Deliver(types.Message{From: 4, To: 1, Payload: &types.DecidePayload{V: types.Zero}})
	}
	if _, decided := nd.Decided(); decided {
		t.Error("repeated forged DECIDEs from one sender reached the threshold")
	}
}

func TestDecideGadgetQuorumHalts(t *testing.T) {
	nd := newTestNode(t, 1, 0)
	nd.Start()
	// f+1 = 2 matching DECIDEs: relay. 2f+1 = 3: decide and halt.
	out := nd.Deliver(types.Message{From: 2, To: 1, Payload: &types.DecidePayload{V: types.One}})
	if len(out) != 0 {
		t.Fatal("one DECIDE must not relay")
	}
	out = nd.Deliver(types.Message{From: 3, To: 1, Payload: &types.DecidePayload{V: types.One}})
	if len(out) != 4 {
		t.Fatalf("f+1 DECIDEs relayed %d messages, want broadcast of 4", len(out))
	}
	nd.Deliver(types.Message{From: 4, To: 1, Payload: &types.DecidePayload{V: types.One}})
	// The node's own relayed DECIDE also counts once delivered back; here
	// three distinct peers suffice.
	v, decided := nd.Decided()
	if !decided || v != types.One {
		t.Fatalf("decided=%v v=%v after 2f+1 DECIDEs", decided, v)
	}
	if !nd.Done() {
		t.Fatal("node must halt after the decide quorum")
	}
}

func TestMultiInstanceIsolationEndToEnd(t *testing.T) {
	// Two consensus instances with *opposite* unanimous inputs run over one
	// network. Instance 1 must decide 0 and instance 2 must decide 1 at
	// every process — any cross-talk would drag them together.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	type pair struct{ a, b *Node }
	pairs := make([]pair, 0, 4)
	for _, p := range peers {
		a, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin: coin.NewIdeal(1), Proposal: types.Zero, Instance: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin: coin.NewIdeal(2), Proposal: types.One, Instance: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		pairs = append(pairs, pair{a: a, b: b})
		if err := net.Add(&fanNode{id: p, parts: []*Node{a, b}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, pr := range pairs {
			if !pr.a.Done() || !pr.b.Done() {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	for _, pr := range pairs {
		if v, ok := pr.a.Decided(); !ok || v != types.Zero {
			t.Errorf("instance 1 at %v: decided=%v v=%v, want 0", pr.a.ID(), ok, v)
		}
		if v, ok := pr.b.Decided(); !ok || v != types.One {
			t.Errorf("instance 2 at %v: decided=%v v=%v, want 1", pr.b.ID(), ok, v)
		}
	}
}

// fanNode multiplexes several instance-scoped nodes of one process onto a
// single network identity, delivering every message to every part (the
// parts' instance filters do the routing).
type fanNode struct {
	id    types.ProcessID
	parts []*Node
}

func (f *fanNode) ID() types.ProcessID { return f.id }

func (f *fanNode) Start() []types.Message {
	var out []types.Message
	for _, p := range f.parts {
		out = append(out, p.Start()...)
	}
	return out
}

func (f *fanNode) Deliver(m types.Message) []types.Message {
	var out []types.Message
	for _, p := range f.parts {
		if !p.Done() {
			out = append(out, p.Deliver(m)...)
		}
	}
	return out
}

func (f *fanNode) Done() bool {
	for _, p := range f.parts {
		if !p.Done() {
			return false
		}
	}
	return true
}

func TestPermanentPartitionDetectedAsLivenessLoss(t *testing.T) {
	// Failure injection outside the model: permanently dropping all links
	// between two halves (the asynchronous model promises eventual delivery;
	// this breaks it). The run must quiesce undecided and the checkers must
	// report exactly a termination violation — no safety loss.
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	var links [][2]types.ProcessID
	for _, a := range peers[:2] {
		for _, b := range peers[2:] {
			links = append(links, [2]types.ProcessID{a, b}, [2]types.ProcessID{b, a})
		}
	}
	net, err := sim.New(sim.Config{
		Scheduler: sim.Compose{
			Base:  sim.UniformDelay{Min: 1, Max: 10},
			Rules: []sim.Rule{sim.DropLinks(links...)},
		},
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, 4)
	for i, p := range peers {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			Coin: coin.NewIdeal(3), Proposal: types.Value(i % 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	stats, err := net.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Exhausted {
		t.Fatal("partitioned run must quiesce, not exhaust")
	}
	obs := check.ConsensusObservation{
		Proposals: map[types.ProcessID]types.Value{},
		Decisions: map[types.ProcessID][]types.Value{},
		Quiesced:  true,
	}
	for i, nd := range nodes {
		obs.Correct = append(obs.Correct, nd.ID())
		obs.Proposals[nd.ID()] = types.Value(i % 2)
		if v, ok := nd.Decided(); ok {
			obs.Decisions[nd.ID()] = []types.Value{v}
		}
	}
	vs := check.Consensus(obs)
	if len(vs) == 0 {
		t.Fatal("permanent partition went undetected")
	}
	for _, v := range vs {
		if v.Property != check.PropTermination {
			t.Errorf("unexpected violation %v (only termination may fail under partition)", v)
		}
	}
}
