package validate

import (
	"math/rand"
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// This file cross-checks the validator's O(1) feasibility arithmetic
// against a brute-force oracle that literally enumerates every
// (n−f)-subset of the justified messages and applies the protocol's
// transition function — the definition straight from the paper. Any
// divergence between the closed-form predicates and the enumeration is a
// soundness or completeness bug in the validator.

// oracleMsg mirrors a tallied message for enumeration.
type oracleMsg struct {
	v types.Value
	d bool
}

// enumerate reports whether some q-subset of msgs satisfies pred.
func enumerate(msgs []oracleMsg, q int, pred func(sub []oracleMsg) bool) bool {
	n := len(msgs)
	if q > n {
		return false
	}
	idx := make([]int, q)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := make([]oracleMsg, q)
		for i, j := range idx {
			sub[i] = msgs[j]
		}
		if pred(sub) {
			return true
		}
		// Next combination.
		i := q - 1
		for i >= 0 && idx[i] == n-q+i {
			i--
		}
		if i < 0 {
			return false
		}
		idx[i]++
		for j := i + 1; j < q; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

func count(sub []oracleMsg, v types.Value, dOnly bool) int {
	c := 0
	for _, m := range sub {
		if m.v == v && (!dOnly || m.d) && (dOnly || !m.d) {
			c++
		}
	}
	return c
}

// oracleMajority: majority with ties to 0, exactly the protocol rule.
func oracleMajority(sub []oracleMsg) types.Value {
	ones := 0
	for _, m := range sub {
		if m.v == types.One {
			ones++
		}
	}
	if 2*ones > len(sub) {
		return types.One
	}
	return types.Zero
}

// buildOracleTally converts plain value counts into message lists.
func plainMsgs(c0, c1 int) []oracleMsg {
	out := make([]oracleMsg, 0, c0+c1)
	for i := 0; i < c0; i++ {
		out = append(out, oracleMsg{v: types.Zero})
	}
	for i := 0; i < c1; i++ {
		out = append(out, oracleMsg{v: types.One})
	}
	return out
}

func step3Msgs(p0, p1, d0, d1 int) []oracleMsg {
	out := plainMsgs(p0, p1)
	for i := 0; i < d0; i++ {
		out = append(out, oracleMsg{v: types.Zero, d: true})
	}
	for i := 0; i < d1; i++ {
		out = append(out, oracleMsg{v: types.One, d: true})
	}
	return out
}

// TestOracleStep2Majority exhaustively compares canMajority with subset
// enumeration for every step-1 tally up to n messages, for several system
// sizes.
func TestOracleStep2Majority(t *testing.T) {
	for _, sys := range []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}, {6, 1}} {
		spec := quorum.MustNew(sys.n, sys.f)
		q := spec.Quorum()
		for c0 := 0; c0 <= sys.n; c0++ {
			for c1 := 0; c0+c1 <= sys.n; c1++ {
				tl := &tally{step1: [2]int{c0, c1}}
				msgs := plainMsgs(c0, c1)
				for _, v := range []types.Value{types.Zero, types.One} {
					got := tl.canMajority(v, q)
					want := enumerate(msgs, q, func(sub []oracleMsg) bool {
						return oracleMajority(sub) == v
					})
					if got != want {
						t.Fatalf("n=%d f=%d c=[%d,%d] v=%v: canMajority=%v oracle=%v",
							sys.n, sys.f, c0, c1, v, got, want)
					}
				}
			}
		}
	}
}

// TestOracleStep3Proposal compares canSuperMajority and canNoSuperMajority
// with enumeration over every step-2 tally.
func TestOracleStep3Proposal(t *testing.T) {
	for _, sys := range []struct{ n, f int }{{4, 1}, {5, 1}, {7, 2}} {
		spec := quorum.MustNew(sys.n, sys.f)
		q, sm := spec.Quorum(), spec.SuperMajority()
		for c0 := 0; c0 <= sys.n; c0++ {
			for c1 := 0; c0+c1 <= sys.n; c1++ {
				tl := &tally{step2: [2]int{c0, c1}}
				msgs := plainMsgs(c0, c1)
				for _, v := range []types.Value{types.Zero, types.One} {
					got := tl.canSuperMajority(v, q, sm)
					want := enumerate(msgs, q, func(sub []oracleMsg) bool {
						return count(sub, v, false) >= sm
					})
					if got != want {
						t.Fatalf("n=%d c=[%d,%d] v=%v: canSuperMajority=%v oracle=%v",
							sys.n, c0, c1, v, got, want)
					}
				}
				got := tl.canNoSuperMajority(q, sm)
				want := enumerate(msgs, q, func(sub []oracleMsg) bool {
					return count(sub, types.Zero, false) < sm && count(sub, types.One, false) < sm
				})
				if got != want {
					t.Fatalf("n=%d c=[%d,%d]: canNoSuperMajority=%v oracle=%v",
						sys.n, c0, c1, got, want)
				}
			}
		}
	}
}

// TestOracleNextRound compares canAdopt and canCoin with enumeration over
// randomly sampled step-3 tallies (the 4-dimensional space is too large to
// exhaust; sampling plus the exhaustive small corners below covers it).
func TestOracleNextRound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, sys := range []struct{ n, f int }{{4, 1}, {7, 2}} {
		spec := quorum.MustNew(sys.n, sys.f)
		q, adopt, f := spec.Quorum(), spec.Adopt(), spec.F()
		checkTally := func(p0, p1, d0, d1 int) {
			tl := &tally{step3Plain: [2]int{p0, p1}, step3D: [2]int{d0, d1}}
			msgs := step3Msgs(p0, p1, d0, d1)
			for _, v := range []types.Value{types.Zero, types.One} {
				got := tl.canAdopt(v, q, adopt)
				want := enumerate(msgs, q, func(sub []oracleMsg) bool {
					return count(sub, v, true) >= adopt
				})
				if got != want {
					t.Fatalf("n=%d tally p=[%d,%d] d=[%d,%d] v=%v: canAdopt=%v oracle=%v",
						sys.n, p0, p1, d0, d1, v, got, want)
				}
			}
			got := tl.canCoin(q, f)
			want := enumerate(msgs, q, func(sub []oracleMsg) bool {
				return count(sub, types.Zero, true) < adopt && count(sub, types.One, true) < adopt
			})
			if got != want {
				t.Fatalf("n=%d tally p=[%d,%d] d=[%d,%d]: canCoin=%v oracle=%v",
					sys.n, p0, p1, d0, d1, got, want)
			}
		}
		// Exhaust the small corners (all tallies up to 4 messages total).
		for p0 := 0; p0 <= 4; p0++ {
			for p1 := 0; p0+p1 <= 4; p1++ {
				for d0 := 0; p0+p1+d0 <= 4; d0++ {
					for d1 := 0; p0+p1+d0+d1 <= 4; d1++ {
						checkTally(p0, p1, d0, d1)
					}
				}
			}
		}
		// Random sample of larger tallies up to n messages.
		for i := 0; i < 400; i++ {
			total := q + rng.Intn(sys.n-q+1)
			p0 := rng.Intn(total + 1)
			p1 := rng.Intn(total - p0 + 1)
			d0 := rng.Intn(total - p0 - p1 + 1)
			d1 := total - p0 - p1 - d0
			checkTally(p0, p1, d0, d1)
		}
	}
}
