package validate

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

func sm(round int, step types.Step, v types.Value) types.StepMessage {
	return types.StepMessage{Round: round, Step: step, V: v}
}

func dm(round int, v types.Value) types.StepMessage {
	return types.StepMessage{Round: round, Step: types.Step3, V: v, D: true}
}

// record feeds messages from consecutive senders starting at `from`,
// asserting each is newly recorded (tallied or pending).
func record(t *testing.T, v *Validator, from int, msgs ...types.StepMessage) {
	t.Helper()
	for i, m := range msgs {
		before := v.Tallied() + v.Pending()
		v.Record(types.ProcessID(from+i), m)
		if v.Tallied()+v.Pending() != before+1 {
			t.Fatalf("Record(%v from p%d) not recorded", m, from+i)
		}
	}
}

func TestRoundOneStepOneAlwaysJustified(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	if !v.Justified(sm(1, types.Step1, types.Zero)) || !v.Justified(sm(1, types.Step1, types.One)) {
		t.Fatal("round-1 step-1 values must be justified unconditionally")
	}
}

func TestMalformedNeverJustified(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	tests := []types.StepMessage{
		{Round: 0, Step: types.Step1, V: types.One},           // round 0
		{Round: 1, Step: 0, V: types.One},                     // bad step
		{Round: 1, Step: types.Step1, V: 5},                   // bad value
		{Round: 1, Step: types.Step1, V: types.One, D: true},  // D outside step 3
		{Round: 1, Step: types.Step2, V: types.Zero, D: true}, // D outside step 3
	}
	for _, m := range tests {
		if v.Justified(m) {
			t.Errorf("malformed %v justified", m)
		}
		v.Record(9, m)
		if v.Tallied()+v.Pending() != 0 {
			t.Errorf("malformed %v recorded", m)
		}
	}
}

func TestStepTwoMajority(t *testing.T) {
	// n=4, f=1, q=3. Step-1 tallies decide which step-2 values are
	// justifiable as "majority of some 3-subset".
	tests := []struct {
		name         string
		step1        []types.Value
		want0, want1 bool
	}{
		{"unanimous one", []types.Value{1, 1, 1}, false, true},
		{"two one one zero", []types.Value{1, 1, 0}, false, true}, // 0 can get at most 1-of-3
		{"two zero one one", []types.Value{0, 0, 1}, true, false},
		{"split two-two", []types.Value{1, 1, 0, 0}, true, true}, // {0,0,1} majors 0; {1,1,0} majors 1
		{"insufficient", []types.Value{1, 1}, false, false},      // fewer than q step-1 messages
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v := New(quorum.MustNew(4, 1))
			for i, val := range tt.step1 {
				record(t, v, i+1, sm(1, types.Step1, val))
			}
			if got := v.Justified(sm(1, types.Step2, types.Zero)); got != tt.want0 {
				t.Errorf("Justified(step2, 0) = %v, want %v", got, tt.want0)
			}
			if got := v.Justified(sm(1, types.Step2, types.One)); got != tt.want1 {
				t.Errorf("Justified(step2, 1) = %v, want %v", got, tt.want1)
			}
		})
	}
}

func TestStepTwoTieBreaksToZero(t *testing.T) {
	// n=5, f=1, q=4: a 2-2 subset ties; ties go to 0, so 0 is justifiable
	// and 1 is not (1 would need a strict majority: 3 of 4).
	v := New(quorum.MustNew(5, 1))
	record(t, v, 1,
		sm(1, types.Step1, types.One), sm(1, types.Step1, types.One),
		sm(1, types.Step1, types.Zero), sm(1, types.Step1, types.Zero))
	if !v.Justified(sm(1, types.Step2, types.Zero)) {
		t.Error("tie must justify 0")
	}
	if v.Justified(sm(1, types.Step2, types.One)) {
		t.Error("tie must not justify 1 (needs strict majority)")
	}
}

func TestStepThreeDecisionProposal(t *testing.T) {
	// n=4: sm=3. D(v) needs a 3-subset of step-2 messages with ≥3 v's.
	v := New(quorum.MustNew(4, 1))
	// Build justified step-1 (all 1) then step-2 (all 1).
	record(t, v, 1, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 1))
	record(t, v, 1, sm(1, types.Step2, 1), sm(1, types.Step2, 1), sm(1, types.Step2, 1))
	if !v.Justified(dm(1, types.One)) {
		t.Error("D(1) must be justified after unanimous step 2")
	}
	if v.Justified(dm(1, types.Zero)) {
		t.Error("D(0) must not be justified")
	}
	// With unanimous step-2, a plain step-3 is NOT justifiable: every
	// 3-subset has a supermajority.
	if v.Justified(sm(1, types.Step3, types.One)) {
		t.Error("plain step-3 must not be justified when every subset has a supermajority")
	}
}

func TestStepThreePlain(t *testing.T) {
	// n=4, step-2 tallies [1,2]: subsets without a supermajority exist, so
	// plain values are justified if their step-2 majority was possible.
	v := New(quorum.MustNew(4, 1))
	record(t, v, 1, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 0), sm(1, types.Step1, 0))
	record(t, v, 1, sm(1, types.Step2, 0), sm(1, types.Step2, 1), sm(1, types.Step2, 1))
	if !v.Justified(sm(1, types.Step3, types.One)) {
		t.Error("plain 1 must be justified (no-supermajority subset exists, majority-1 possible)")
	}
	if !v.Justified(sm(1, types.Step3, types.Zero)) {
		t.Error("plain 0 must be justified")
	}
	// But D(1) is also justifiable here? c2[1]=2 < sm=3: no.
	if v.Justified(dm(1, types.One)) {
		t.Error("D(1) must not be justified with only 2 step-2 ones")
	}
}

func TestNextRoundAdoption(t *testing.T) {
	// Unanimous round: only the unanimous value may enter round 2.
	v := New(quorum.MustNew(4, 1))
	record(t, v, 1, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 1))
	record(t, v, 1, sm(1, types.Step2, 1), sm(1, types.Step2, 1), sm(1, types.Step2, 1))
	record(t, v, 1, dm(1, 1), dm(1, 1), dm(1, 1))
	if !v.Justified(sm(2, types.Step1, types.One)) {
		t.Error("adopting the unanimous value in round 2 must be justified")
	}
	if v.Justified(sm(2, types.Step1, types.Zero)) {
		t.Error("the opposite value must not enter round 2 after unanimity")
	}
}

func TestNextRoundCoinFallback(t *testing.T) {
	// A split round where every correct process fell to the coin: both
	// values are legitimate in the next round.
	v := New(quorum.MustNew(4, 1))
	record(t, v, 1, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 0), sm(1, types.Step1, 0))
	record(t, v, 1, sm(1, types.Step2, 0), sm(1, types.Step2, 1), sm(1, types.Step2, 1))
	record(t, v, 1, sm(1, types.Step3, 1), sm(1, types.Step3, 0), sm(1, types.Step3, 1))
	for _, val := range []types.Value{types.Zero, types.One} {
		if !v.Justified(sm(2, types.Step1, val)) {
			t.Errorf("coin fallback must justify value %v in round 2", val)
		}
	}
}

// TestRecursiveGating is the heart of validation: unjustified Byzantine
// messages must not be counted when judging other messages, otherwise a
// Byzantine process can fake a "coin was possible" situation and re-inject a
// dead value into the next round (breaking the unanimity-preservation that
// drives termination).
func TestRecursiveGating(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	// Byzantine p4 front-runs with step-3 garbage for round 1: a plain 0,
	// recorded but unjustifiable.
	v.Record(4, sm(1, types.Step3, types.Zero))
	if v.Pending() != 1 {
		t.Fatal("recording Byzantine message failed")
	}
	// Correct unanimous round 1 with value 1 completes.
	record(t, v, 1, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 1))
	record(t, v, 1, sm(1, types.Step2, 1), sm(1, types.Step2, 1), sm(1, types.Step2, 1))
	record(t, v, 1, dm(1, 1), dm(1, 1), dm(1, 1))

	// p4's plain step-3 0 must still be pending: with unanimous step-2
	// tallies there is no no-supermajority subset, and majority-0 was never
	// possible.
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (the Byzantine step-3)", v.Pending())
	}
	// And crucially: 0 must not be justifiable for round 2 — the pending
	// Byzantine message must not count toward the coin-fallback check.
	if v.Justified(sm(2, types.Step1, types.Zero)) {
		t.Fatal("unjustified Byzantine message leaked into round-2 justification")
	}
	if !v.Justified(sm(2, types.Step1, types.One)) {
		t.Fatal("legitimate round-2 value rejected")
	}
}

func TestOutOfOrderCascade(t *testing.T) {
	// Messages recorded before their justification exists must fold in
	// automatically when it arrives.
	v := New(quorum.MustNew(4, 1))
	// Step-2 arrives first: pending.
	record(t, v, 1, sm(1, types.Step2, 1))
	if v.Pending() != 1 || v.Tallied() != 0 {
		t.Fatalf("pending/tallied = %d/%d, want 1/0", v.Pending(), v.Tallied())
	}
	// Step-1 quorum arrives: both the step-1 messages and the waiting
	// step-2 fold in one drain.
	record(t, v, 2, sm(1, types.Step1, 1), sm(1, types.Step1, 1), sm(1, types.Step1, 1))
	if v.Pending() != 0 {
		t.Fatalf("Pending = %d, want 0 after cascade", v.Pending())
	}
	if v.Tallied() != 4 {
		t.Fatalf("Tallied = %d, want 4", v.Tallied())
	}
}

func TestDuplicateSlotRejected(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	folded := v.Record(1, sm(1, types.Step1, 1))
	if len(folded) != 1 || folded[0].Sender != 1 {
		t.Fatalf("first record folded %v, want one acceptance from p1", folded)
	}
	v.Record(1, sm(1, types.Step1, 0))
	if v.Tallied()+v.Pending() != 1 {
		t.Fatal("second message from the same sender for the same slot accepted")
	}
	// Different slot from the same sender is fine.
	record(t, v, 1, sm(1, types.Step2, 1))
}

func TestJustifiedIsMonotone(t *testing.T) {
	// Once justified, always justified — across a long arbitrary feed.
	v := New(quorum.MustNew(7, 2))
	queries := []types.StepMessage{
		sm(1, types.Step2, 0), sm(1, types.Step2, 1),
		dm(1, 0), dm(1, 1),
		sm(1, types.Step3, 0), sm(1, types.Step3, 1),
		sm(2, types.Step1, 0), sm(2, types.Step1, 1),
		sm(2, types.Step2, 0), dm(2, 1),
	}
	wasJustified := make([]bool, len(queries))
	feed := []struct {
		sender int
		m      types.StepMessage
	}{
		{1, sm(1, types.Step1, 0)}, {2, sm(1, types.Step1, 1)}, {3, sm(1, types.Step1, 1)},
		{4, sm(1, types.Step1, 0)}, {5, sm(1, types.Step1, 1)}, {6, sm(1, types.Step1, 1)},
		{7, sm(1, types.Step1, 0)},
		{1, sm(1, types.Step2, 1)}, {2, sm(1, types.Step2, 1)}, {3, sm(1, types.Step2, 0)},
		{4, sm(1, types.Step2, 1)}, {5, sm(1, types.Step2, 1)}, {6, sm(1, types.Step2, 0)},
		{1, dm(1, 1)}, {2, dm(1, 1)}, {3, sm(1, types.Step3, 1)},
		{4, dm(1, 1)}, {5, dm(1, 1)}, {6, dm(1, 1)},
		{1, sm(2, types.Step1, 1)}, {2, sm(2, types.Step1, 1)},
	}
	for _, f := range feed {
		v.Record(types.ProcessID(f.sender), f.m)
		for i, qm := range queries {
			now := v.Justified(qm)
			if wasJustified[i] && !now {
				t.Fatalf("monotonicity broken for %v after feeding %v", qm, f.m)
			}
			wasJustified[i] = now
		}
	}
}

func TestCorrectUnanimousFlowJustifiesEverythingItSends(t *testing.T) {
	// Liveness sanity for n=7, f=2: everything a correct process sends in a
	// unanimous execution is justified at a validator that saw the same
	// traffic.
	v := New(quorum.MustNew(7, 2))
	for s := 1; s <= 5; s++ {
		record(t, v, s, sm(1, types.Step1, 1))
	}
	if !v.Justified(sm(1, types.Step2, 1)) {
		t.Fatal("step 2 not justified")
	}
	for s := 1; s <= 5; s++ {
		record(t, v, s, sm(1, types.Step2, 1))
	}
	if !v.Justified(dm(1, 1)) {
		t.Fatal("D(1) not justified")
	}
	for s := 1; s <= 5; s++ {
		record(t, v, s, dm(1, 1))
	}
	if !v.Justified(sm(2, types.Step1, 1)) {
		t.Fatal("round-2 adoption not justified")
	}
}

func TestByzantineCannotForgeDecisionAlone(t *testing.T) {
	// f Byzantine D(v) messages alone must never justify adopting v via the
	// D path. Setup: n=7, f=2, q=5, sm=4. A genuinely split round — three
	// 1s and three 0s at steps 1 and 2 (one Byzantine process participating
	// plausibly) — so no supermajority was ever possible and every correct
	// process coin-fell with a plain step-3 message.
	v := New(quorum.MustNew(7, 2))
	vals := []types.Value{1, 1, 1, 0, 0, 0} // senders 1..6 (p6 Byzantine but plausible)
	for s, val := range vals {
		record(t, v, s+1, sm(1, types.Step1, val))
	}
	for s, val := range vals {
		record(t, v, s+1, sm(1, types.Step2, val))
	}
	// Correct processes 1..5 coin-fell: plain step-3 messages.
	for s, val := range vals[:5] {
		record(t, v, s+1, sm(1, types.Step3, val))
	}
	// Byzantine p6, p7 inject D(0): with step-2 tallies [3,3] < sm=4, D(0)
	// is unjustifiable and must stay pending — it must not unlock the
	// "adopt 0 from f+1 D(0)" path for round 2.
	v.Record(6, dm(1, 0))
	v.Record(7, dm(1, 0))
	if got := v.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2 Byzantine D-messages", got)
	}
	// Both values remain legitimate in round 2, but only via the coin path
	// (5 plain step-3 messages ≥ q), never via adoption.
	if !v.Justified(sm(2, types.Step1, types.Zero)) || !v.Justified(sm(2, types.Step1, types.One)) {
		t.Fatal("coin fallback must justify both values")
	}
	prev := v.tally(1)
	if prev.canAdopt(types.Zero, v.spec.Quorum(), v.spec.Adopt()) {
		t.Fatal("Byzantine D(0) messages leaked into the adoption tally")
	}
}

func TestStats(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	if v.Tallied() != 0 || v.Pending() != 0 {
		t.Fatal("fresh validator must be empty")
	}
	record(t, v, 1, sm(1, types.Step1, 1))
	if v.Tallied() != 1 {
		t.Fatalf("Tallied = %d, want 1", v.Tallied())
	}
}
