package validate

// Windowing tests: PruneBelow must release only the per-sender dedup
// entries, leaving every justification answer, fold sequence, and diagnostic
// count identical to an unwindowed validator fed the same stream — the
// equivalence that lets the consensus core window the validator without
// moving a single golden replay hash.

import (
	"fmt"
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// driveRounds feeds v a clean n-process execution of the given rounds
// (every process sends step 1, 2, and plain step 3 per round), mirroring
// what a fault-free run delivers.
func driveRounds(t *testing.T, v *Validator, n, rounds int) {
	t.Helper()
	for r := 1; r <= rounds; r++ {
		for _, step := range []types.Step{types.Step1, types.Step2, types.Step3} {
			for p := 1; p <= n; p++ {
				// Step 3 carries D(0): with unanimous zeros a supermajority
				// exists, so the justified step-3 message is the decision
				// proposal, exactly as a correct process would send it.
				m := sm(r, step, types.Zero)
				if step == types.Step3 {
					m = dm(r, types.Zero)
				}
				if got := v.Record(types.ProcessID(p), m); len(got) != 1 {
					t.Fatalf("round %d %v from p%d: folded %d msgs, want 1", r, step, p, len(got))
				}
			}
		}
	}
}

func TestPruneBelowBoundsSeenRetention(t *testing.T) {
	const n, rounds = 4, 10
	v := New(quorum.MustNew(n, 1))
	driveRounds(t, v, n, rounds)
	if got, want := v.SeenRetained(), rounds*3*n; got != want {
		t.Fatalf("unwindowed SeenRetained = %d, want %d", got, want)
	}
	v.PruneBelow(rounds - 1)
	if got, want := v.SeenRetained(), 2*3*n; got != want {
		t.Errorf("windowed SeenRetained = %d, want %d (two retained rounds)", got, want)
	}
	// The floor never regresses.
	v.PruneBelow(1)
	if got, want := v.SeenRetained(), 2*3*n; got != want {
		t.Errorf("PruneBelow(1) after PruneBelow(%d) changed retention: %d, want %d", rounds-1, got, want)
	}
}

// TestWindowedAndUnwindowedValidatorsAgree replays one message stream —
// including late arrivals for long-pruned rounds — into a windowed and an
// unwindowed validator and requires identical observable behaviour
// throughout: same fold sequences out of Record, same justification
// answers, same tallied counts. This is the package-level statement of the
// behaviour-neutrality the golden replays pin end to end.
func TestWindowedAndUnwindowedValidatorsAgree(t *testing.T) {
	const n, rounds = 4, 8
	spec := quorum.MustNew(n, 1)
	windowed, plain := New(spec), New(spec)

	// One pre-recorded stream: a clean execution, except process 4's
	// round-2 messages are withheld and replayed at the very end — the
	// straggler whose ancient traffic arrives after its round was pruned.
	type event struct {
		from types.ProcessID
		m    types.StepMessage
	}
	var stream []event
	var late []event
	for r := 1; r <= rounds; r++ {
		for _, step := range []types.Step{types.Step1, types.Step2, types.Step3} {
			for p := 1; p <= n; p++ {
				m := sm(r, step, types.Zero)
				if step == types.Step3 {
					m = dm(r, types.Zero)
				}
				ev := event{types.ProcessID(p), m}
				if r == 2 && p == n {
					late = append(late, ev)
					continue
				}
				stream = append(stream, ev)
			}
		}
	}
	stream = append(stream, late...)

	for i, ev := range stream {
		a := windowed.Record(ev.from, ev.m)
		b := plain.Record(ev.from, ev.m)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("event %d (%v from %v): windowed folded %v, unwindowed %v", i, ev.m, ev.from, a, b)
		}
		// The window advances as a pruning owner would drive it: release
		// everything more than one round behind the stream's frontier.
		windowed.PruneBelow(ev.m.Round - 1)
	}
	for r := 1; r <= rounds; r++ {
		for _, step := range []types.Step{types.Step1, types.Step2, types.Step3} {
			for _, val := range []types.Value{types.Zero, types.One} {
				m := sm(r, step, val)
				if w, p := windowed.Justified(m), plain.Justified(m); w != p {
					t.Errorf("Justified(%v): windowed %v, unwindowed %v", m, w, p)
				}
				d := dm(r, val)
				if w, p := windowed.Justified(d), plain.Justified(d); w != p {
					t.Errorf("Justified(%v): windowed %v, unwindowed %v", d, w, p)
				}
			}
		}
	}
	if windowed.Tallied() != plain.Tallied() || windowed.Pending() != plain.Pending() {
		t.Errorf("tallied/pending diverged: %d/%d vs %d/%d",
			windowed.Tallied(), windowed.Pending(), plain.Tallied(), plain.Pending())
	}
	if windowed.SeenRetained() >= plain.SeenRetained() {
		t.Errorf("windowing retained %d seen entries, unwindowed %d — nothing was released",
			windowed.SeenRetained(), plain.SeenRetained())
	}
}

// TestFarFutureRoundCostsOneEntry: a Byzantine sender can put any round
// number in a well-formed message, so the per-round digests must cost one
// map entry per *touched* round — never storage proportional to the round
// number itself (a round-indexed array here would let a single message with
// Round=2^30 allocate gigabytes).
func TestFarFutureRoundCostsOneEntry(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	const farRound = 1 << 30
	allocs := testing.AllocsPerRun(1, func() {
		v.Record(types.ProcessID(2), sm(farRound, types.Step2, types.One))
	})
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1 (far-future message recorded, unjustified)", v.Pending())
	}
	// A handful of map/key allocations, not ~2^30 tally slots.
	if allocs > 64 {
		t.Errorf("far-future round cost %.0f allocs, want a constant handful", allocs)
	}
	if v.Justified(sm(farRound, types.Step1, types.Zero)) {
		t.Error("far-future non-initial message justified with empty prior tallies")
	}
}

// TestLateMessageBelowFloorStillFoldsAndValidates: a message for a round
// whose dedup window is long gone must still be judged against the retained
// justification digests and fold into them — pruned rounds keep full
// justification service.
func TestLateMessageBelowFloorStillFoldsAndValidates(t *testing.T) {
	const n, rounds = 4, 6
	v := New(quorum.MustNew(n, 1))
	// Hold back p4's round-1 step-1 message; run everything else.
	for r := 1; r <= rounds; r++ {
		for _, step := range []types.Step{types.Step1, types.Step2, types.Step3} {
			for p := 1; p <= n; p++ {
				if r == 1 && step == types.Step1 && p == n {
					continue
				}
				m := sm(r, step, types.Zero)
				if step == types.Step3 {
					m = dm(r, types.Zero)
				}
				v.Record(types.ProcessID(p), m)
			}
		}
	}
	v.PruneBelow(rounds - 1)
	talliedBefore := v.Tallied()
	m := sm(1, types.Step1, types.One)
	if !v.Justified(m) {
		t.Fatal("round-1 step-1 message not justified after windowing (it is unconditionally justified)")
	}
	folded := v.Record(types.ProcessID(n), m)
	if len(folded) != 1 || folded[0].Sender != types.ProcessID(n) {
		t.Fatalf("late below-floor message folded as %v, want exactly its own fold", folded)
	}
	if v.Tallied() != talliedBefore+1 {
		t.Errorf("Tallied = %d, want %d", v.Tallied(), talliedBefore+1)
	}
}
