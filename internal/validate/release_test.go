package validate

import (
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

// feedRound drives a full round of unanimous-v traffic from n senders
// through the validator, so every step's digest exists.
func feedRound(v *Validator, n, round int, val types.Value) {
	for step := types.Step1; step <= types.Step3; step++ {
		for p := 1; p <= n; p++ {
			m := types.StepMessage{Round: round, Step: step, V: val, D: step == types.Step3}
			v.Record(types.ProcessID(p), m)
		}
	}
}

func TestReleaseTalliesBelowDropsDigestsAndRefusesLateMessages(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	for r := 1; r <= 5; r++ {
		feedRound(v, 4, r, types.One)
	}
	if got := v.JustificationsRetained(); got != 5 {
		t.Fatalf("retained %d digests, want 5", got)
	}

	if got := v.ReleaseTalliesBelow(3); got != 2 {
		t.Fatalf("released %d digests, want 2 (rounds 1, 2)", got)
	}
	if got := v.JustificationsRetained(); got != 3 {
		t.Fatalf("retained %d digests after release, want 3", got)
	}

	// Messages at or below the watermark are refused (round 3's step-1
	// justification would need round 2's digest, which is gone).
	before := v.Tallied()
	for r := 1; r <= 3; r++ {
		if acc := v.Record(99, types.StepMessage{Round: r, Step: types.Step2, V: types.One}); len(acc) != 0 {
			t.Fatalf("round %d message accepted below the release watermark", r)
		}
	}
	if v.Tallied() != before || v.Pending() != 0 || v.JustificationsRetained() != 3 {
		t.Fatal("refused messages mutated validator state")
	}

	// Rounds above the watermark still justify normally: a round-4 step-1
	// adoption reads round 3's digest, which was retained.
	if !v.Justified(types.StepMessage{Round: 4, Step: types.Step1, V: types.One}) {
		t.Fatal("round above the watermark lost its justification basis")
	}
}

func TestReleaseTalliesBelowDropsPendingAndIsMonotone(t *testing.T) {
	v := New(quorum.MustNew(4, 1))
	feedRound(v, 4, 1, types.One)
	// A round-3 message with no round-2 history stays pending.
	v.Record(2, types.StepMessage{Round: 3, Step: types.Step2, V: types.One})
	if v.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", v.Pending())
	}
	v.ReleaseTalliesBelow(3)
	if v.Pending() != 0 {
		t.Fatal("pending message at the watermark survived release")
	}
	if got := v.ReleaseTalliesBelow(2); got != 0 {
		t.Fatalf("lower re-release dropped %d digests (watermark must be monotone)", got)
	}
}
