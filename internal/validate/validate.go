// Package validate implements the second contribution of the PODC-84 paper:
// message validation. A correct process counts a step message toward its
// n−f wait only once the message is *justified* — once some set of n−f
// already-justified messages of the previous step could have caused a
// correct process, following the protocol's transition function, to send it.
// Combined with reliable broadcast (which fixes one message per sender and
// slot), validation confines Byzantine processes to sending *plausible*
// values, which is what lifts resilience from Ben-Or's n > 5f to the
// optimal n > 3f.
//
// Justification is recursive, exactly as in the paper: justifying sets draw
// only from messages that are themselves justified, grounded at round 1
// step 1 where every input value is legitimate. The Validator maintains this
// fixpoint incrementally: delivered messages wait in a pending set and move
// into the justified tallies as soon as their predicate fires; since every
// predicate is monotone in the tallies, acceptance order does not matter and
// nothing ever needs to be retracted.
//
// Existence of a justifying (n−f)-subset is decided in O(1) from per-value
// counts rather than by subset search; see the feasibility helpers at the
// bottom for the arithmetic arguments.
//
// The protocol's transition rules being validated (binary values; majority
// ties broken to 0, a convention both the sender and the validator share):
//
//	step 1 (round 1):  any input value.
//	step 1 (round r):  v adopted from ≥ f+1 D(v) in step 3 of round r−1, or
//	                   any value if a coin fallback (< f+1 of each D) was
//	                   possible.
//	step 2:            v is the majority of some n−f justified step-1
//	                   messages.
//	step 3, D(v):      v held > n/2 of some n−f justified step-2 messages.
//	step 3, plain v:   some n−f justified step-2 messages have no > n/2
//	                   value, and v was justifiable as the sender's step-2
//	                   message (its step-1 majority).
//
// # Windowing contract
//
// A long-lived owner bounds the validator's memory with PruneBelow(r),
// which releases the per-sender dedup entries (the seen set) of every round
// below r. What survives forever is the justification digest: per touched
// round, a tally of justified-message counts by (step, value) — eight
// integers, the complete summary every justification predicate reads. Old tallies
// therefore still validate: a straggler's months-late message for round k is
// judged against exactly the counts an unwindowed validator would hold, it
// folds into the same tallies, and the fold order out of Record is
// unchanged — which is why windowing is invisible to the golden replays and
// to the owner's late-drop accounting.
//
// What a pruned round promises late messages: full justification service,
// minus duplicate suppression. The window releases only dedup state, so the
// caller must deliver at most one message per (sender, round, step) slot
// below the window — precisely what reliable broadcast's integrity already
// guarantees per instance (the consensus core's RBC layer can never hand
// the validator the same slot twice). Pending (recorded but not yet
// justified) messages are never pruned: a late fold must still happen so
// adjacent rounds' justification sees identical tallies either way.
package validate

import (
	"repro/internal/quorum"
	"repro/internal/types"
)

// Validator tracks justified step messages and answers justification
// queries. One Validator serves one process for one consensus instance. Not
// safe for concurrent use.
type Validator struct {
	spec quorum.Spec
	lax  bool // ablation A1: accept every well-formed message

	seen    map[slotKey]bool
	pending map[slotKey]types.StepMessage

	// rounds[r] is round r's justification digest: counts of justified
	// messages by (step, value). Retained for the whole execution — 64
	// bytes per touched round, the summary every justification query reads
	// — where the seen set (per-sender, the dominant per-round retainer)
	// is windowed behind the floor. Deliberately a map, not a dense array:
	// a Byzantine sender can put any round number in a well-formed message,
	// and a map spends one entry on it where a round-indexed array would
	// spend the round number.
	rounds map[int]*tally

	// floor is the seen-window watermark: dedup entries for rounds below it
	// have been released and are no longer recorded (see the windowing
	// contract in the package doc).
	floor int

	// talliesFloor is the protocol-level release watermark of
	// ReleaseTalliesBelow: digests below it are gone and messages at or
	// below it are refused on arrival (checkpoint-certified territory).
	talliesFloor int

	talliedCount int

	// keyScratch and foldScratch are reused across drain calls so the
	// steady-state Record path (empty or tiny pending set) allocates
	// nothing. foldScratch backs Record's return value, which is therefore
	// only valid until the next Record call — callers consume it
	// immediately (the consensus core copies each Accepted into its
	// quorum-wait table before returning).
	keyScratch  []slotKey
	foldScratch []Accepted
}

// slotKey identifies the one message a sender may contribute per (round,
// step) slot — reliable broadcast guarantees uniqueness for correct
// processes; the key deduplicates Byzantine attempts.
type slotKey struct {
	sender types.ProcessID
	round  int
	step   types.Step
}

// tally holds per-round counts of justified messages, by step and value.
// Counts are of distinct senders (guaranteed by slotKey dedup).
type tally struct {
	step1      [2]int
	step2      [2]int
	step3Plain [2]int
	step3D     [2]int
}

// New creates a Validator for the given system spec.
func New(spec quorum.Spec) *Validator {
	return &Validator{
		spec:    spec,
		seen:    make(map[slotKey]bool),
		pending: make(map[slotKey]types.StepMessage),
		rounds:  make(map[int]*tally),
	}
}

// NewLax creates a Validator that skips justification and accepts every
// well-formed message immediately. It exists solely for ablation A1
// ("validation off"), which demonstrates why the paper's validation matters;
// never use it otherwise.
func NewLax(spec quorum.Spec) *Validator {
	v := New(spec)
	v.lax = true
	return v
}

// Accepted is one message folded into the justified tallies: the consensus
// node appends these, in fold order, to its per-(round, step) quorum waits,
// so node acceptance and validator tallies can never disagree.
type Accepted struct {
	Sender types.ProcessID
	Msg    types.StepMessage
}

// Record ingests a reliably-delivered step message from sender and returns
// every message newly folded into the justified tallies, in fold order —
// possibly none (the new message is pending), possibly several (its arrival
// cascaded older pending messages in). The returned slice aliases an
// internal scratch buffer and is valid only until the next Record call.
func (v *Validator) Record(sender types.ProcessID, m types.StepMessage) []Accepted {
	if !wellFormed(m) {
		return nil
	}
	if m.Round <= v.talliesFloor {
		return nil // checkpoint-released round: unjudgeable and settled
	}
	k := slotKey{sender: sender, round: m.Round, step: m.Step}
	if v.seen[k] {
		return nil
	}
	// Dedup entries are kept only for rounds at or above the window floor;
	// below it, uniqueness per slot is the caller's contract (RBC integrity)
	// and recording the key would regrow released state.
	if m.Round >= v.floor {
		v.seen[k] = true
	}
	v.pending[k] = m
	return v.drain()
}

// Justified reports whether m could have been sent by a correct process,
// judged against the currently justified tallies. It is monotone: once true
// for a message, it stays true.
func (v *Validator) Justified(m types.StepMessage) bool {
	if !wellFormed(m) {
		return false
	}
	return v.justified(m)
}

// Tallied returns how many messages have been folded into the justified
// tallies (diagnostics).
func (v *Validator) Tallied() int { return v.talliedCount }

// Pending returns how many recorded messages are still unjustified
// (diagnostics; for correct traffic this returns to 0 as rounds complete).
func (v *Validator) Pending() int { return len(v.pending) }

// SeenRetained returns how many per-sender dedup entries the validator
// currently holds — the retainer PruneBelow windows. Bounded by the window
// under a pruning owner; linear in rounds without one.
func (v *Validator) SeenRetained() int { return len(v.seen) }

// JustificationsRetained returns how many per-round justification digests
// the validator holds — the residue PruneBelow deliberately keeps forever
// (64 bytes per touched round), growing one digest per round on infinite
// executions. A checkpointing owner retires it with ReleaseTalliesBelow;
// without one it is the measurable unbounded remainder (experiment E12).
func (v *Validator) JustificationsRetained() int { return len(v.rounds) }

// ReleaseTalliesBelow drops the justification digests (and any still-pending
// messages) of every round below r, returning how many digests it released.
// The bound becomes a watermark: messages for rounds at or below it are
// refused on arrival — at, not just below, because a round-r step-1 message
// is judged against round r−1's digest, which is gone.
//
// This is a *protocol-level* release, stronger than the windowing contract:
// a months-late message for a released round can no longer be judged — it is
// silently discarded rather than validated against its round's counts. The
// caller must hold a checkpoint certificate covering the refused rounds — a
// quorum's statement that their outcome is settled and no justification at
// or below r will ever matter again (internal/ckpt). A caller whose
// certificate settles rounds below floor f must therefore pass f−1, keeping
// round f−1's digest for round f's step-1 adoption checks.
func (v *Validator) ReleaseTalliesBelow(r int) int {
	if r <= v.talliesFloor {
		return 0
	}
	v.talliesFloor = r
	released := 0
	for round := range v.rounds {
		if round < r {
			delete(v.rounds, round)
			released++
		}
	}
	for k := range v.pending {
		if k.round <= r {
			delete(v.pending, k)
		}
	}
	return released
}

// PruneBelow releases the per-sender dedup entries of every round below r
// and stops recording new ones there. The justification digests (per-round
// tallies) and the pending set are deliberately retained — see the
// windowing contract in the package doc — so justification answers, fold
// order, and late folds are identical to an unwindowed validator's.
func (v *Validator) PruneBelow(r int) {
	if r <= v.floor {
		return
	}
	v.floor = r
	for k := range v.seen {
		if k.round < r {
			delete(v.seen, k)
		}
	}
}

// drain runs the fixpoint: move pending messages whose predicate fires into
// the tallies, repeating until nothing moves (each move can enable others).
// Within one pass, candidates are visited in a deterministic order (by
// sender, then round, then step) so executions replay identically.
func (v *Validator) drain() []Accepted {
	folded := v.foldScratch[:0]
	for moved := true; moved; {
		moved = false
		for _, k := range v.pendingKeys() {
			m := v.pending[k]
			if !v.justified(m) {
				continue
			}
			delete(v.pending, k)
			v.fold(m)
			folded = append(folded, Accepted{Sender: k.sender, Msg: m})
			moved = true
		}
	}
	v.foldScratch = folded
	if len(folded) == 0 {
		return nil
	}
	return folded
}

// pendingKeys returns the pending slot keys in a deterministic order. The
// slice is scratch, overwritten by the next call.
func (v *Validator) pendingKeys() []slotKey {
	keys := v.keyScratch[:0]
	for k := range v.pending {
		keys = append(keys, k)
	}
	v.keyScratch = keys
	// Insertion sort: the pending set is tiny (usually empty or a handful
	// of not-yet-justified messages), and unlike sort.Slice this never
	// allocates — the hot Record path must stay garbage-free.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keyLess(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// keyLess orders slot keys by round, step, then sender.
func keyLess(a, b slotKey) bool {
	if a.round != b.round {
		return a.round < b.round
	}
	if a.step != b.step {
		return a.step < b.step
	}
	return a.sender < b.sender
}

// fold adds a justified message to its round tally.
func (v *Validator) fold(m types.StepMessage) {
	t := v.tally(m.Round)
	switch {
	case m.Step == types.Step1:
		t.step1[m.V]++
	case m.Step == types.Step2:
		t.step2[m.V]++
	case m.D:
		t.step3D[m.V]++
	default:
		t.step3Plain[m.V]++
	}
	v.talliedCount++
}

// tally returns round's justification digest, creating it on first touch
// (one 64-byte entry per touched round, whatever the round number; the
// steady-state Record path only reads existing entries).
func (v *Validator) tally(round int) *tally {
	t, ok := v.rounds[round]
	if !ok {
		t = &tally{}
		v.rounds[round] = t
	}
	return t
}

func wellFormed(m types.StepMessage) bool {
	return m.Round >= 1 && m.Step.Valid() && m.V.Valid() && (!m.D || m.Step == types.Step3)
}

func (v *Validator) justified(m types.StepMessage) bool {
	if v.lax {
		return true // ablation A1: validation disabled
	}
	q := v.spec.Quorum()
	switch m.Step {
	case types.Step1:
		if m.Round == 1 {
			return true
		}
		prev := v.tally(m.Round - 1)
		return prev.canAdopt(m.V, q, v.spec.Adopt()) || prev.canCoin(q, v.spec.F())
	case types.Step2:
		return v.tally(m.Round).canMajority(m.V, q)
	case types.Step3:
		t := v.tally(m.Round)
		if m.D {
			return t.canSuperMajority(m.V, q, v.spec.SuperMajority())
		}
		return t.canNoSuperMajority(q, v.spec.SuperMajority()) && t.canMajority(m.V, q)
	default:
		return false
	}
}

// ---- Feasibility predicates -------------------------------------------
//
// Each predicate answers: does there exist a multiset of exactly q justified
// previous-step messages with the required shape? Counts are per value, so
// existence reduces to extremal arithmetic: put as many of the favourable
// value as available (capped at q), fill the remainder with the other value,
// and check the constraint. All predicates are monotone nondecreasing in
// every count.

// canMajority: some q-subset of the round's step-1 messages has majority v
// (ties to 0).
func (t *tally) canMajority(v types.Value, q int) bool {
	c := t.step1
	if c[0]+c[1] < q {
		return false
	}
	a := min(c[v], q) // favourable votes, maximized
	b := q - a        // the rest are the other value (available: total ≥ q)
	if v == types.Zero {
		return a >= b // 0 wins ties
	}
	return a > b
}

// canSuperMajority: some q-subset of step-2 messages holds > n/2 copies of
// v, i.e. at least sm = ⌊n/2⌋+1.
func (t *tally) canSuperMajority(v types.Value, q, sm int) bool {
	c := t.step2
	return c[0]+c[1] >= q && min(c[v], q) >= sm
}

// canNoSuperMajority: some q-subset of step-2 messages has no value reaching
// sm — both values capped at sm−1.
func (t *tally) canNoSuperMajority(q, sm int) bool {
	c := t.step2
	return min(c[0], sm-1)+min(c[1], sm-1) >= q
}

// canAdopt: some q-subset of step-3 messages contains ≥ f+1 D(v) — the
// sender could have adopted (or decided) v.
func (t *tally) canAdopt(v types.Value, q, adopt int) bool {
	total := t.step3Plain[0] + t.step3Plain[1] + t.step3D[0] + t.step3D[1]
	return total >= q && min(t.step3D[v], q) >= adopt
}

// canCoin: some q-subset of step-3 messages contains at most f D(b) for each
// value b — the sender could have fallen through to the coin, making any
// next-round value legitimate. Plain messages are unconstrained; at most f
// of each D value may be included.
func (t *tally) canCoin(q, f int) bool {
	plain := t.step3Plain[0] + t.step3Plain[1]
	return plain+min(t.step3D[0], f)+min(t.step3D[1], f) >= q
}
