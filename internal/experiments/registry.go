package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Title string
	Run   func(Options) (*metrics.Table, error)
}

// All returns every experiment and ablation, in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "Table 1 — RBC message complexity", Run: E1RBCMessages},
		{ID: "E2", Title: "Table 2 — resilience matrix", Run: E2Resilience},
		{ID: "E3", Title: "Figure 1 — expected rounds, local coin", Run: E3LocalCoinRounds},
		{ID: "E4", Title: "Figure 2 — expected rounds, common coin", Run: E4CommonCoinRounds},
		{ID: "E5", Title: "Table 3 — message complexity of consensus", Run: E5MessageComplexity},
		{ID: "E6", Title: "Figure 3 — Bracha vs Ben-Or crossover", Run: E6Crossover},
		{ID: "E7", Title: "Table 4 — tightness of f < n/3", Run: E7Tightness},
		{ID: "E8", Title: "Figure 4 — repeated-consensus throughput", Run: E8Throughput},
		{ID: "E9", Title: "Table 5 — asynchronous common subset (extension)", Run: E9ACS},
		{ID: "E10", Title: "Table 6 — adversarial property harness", Run: E10PropertyHarness},
		{ID: "E11", Title: "Table 7 — per-round pruning memory", Run: E11MemoryPruning},
		{ID: "E12", Title: "Table 8 — checkpoint & state-transfer residue", Run: E12ResidueCheckpointing},
		{ID: "E13", Title: "Table 9 — batched, pipelined log throughput", Run: E13BatchedThroughput},
		{ID: "E14", Title: "Table 10 — erasure-coded dissemination bandwidth", Run: E14CodedDissemination},
		{ID: "E15", Title: "Table 11 — scheduler-parameter search: liveness cliffs", Run: E15SearchCliffs},
		{ID: "E16", Title: "Table 12 — telemetry plane: wire costs, phases, critical paths", Run: E16Telemetry},
		{ID: "A1", Title: "Ablation — message validation", Run: A1Validation},
		{ID: "A2", Title: "Ablation — decide gadget", Run: A2Gadget},
		{ID: "A3", Title: "Ablation — FIFO vs reordering", Run: A3Scheduler},
		{ID: "A4", Title: "Ablation — reliable vs consistent broadcast", Run: A4Broadcast},
	}
}

// ByID finds one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiments: unknown id %q", id)
}
