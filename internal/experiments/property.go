package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// E10PropertyHarness regenerates Table 6: the adversarial property harness —
// every scenario of runner.Scenarios() swept across seeds through the
// streaming engine, at the n=64/128 frontier in full mode. The shape to
// verify: zero violations and full termination in every cell; this is the
// adversarial-schedule evidence behind the repository's safety claims at
// sizes the buffered sweeps of E2 never reached. Consensus runs at n=128
// cost seconds each, so their seed count is capped; `bench -sweep` resumes
// the same sweeps to arbitrary depth with checkpoints.
func E10PropertyHarness(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E10 / Table 6 — adversarial property harness (streaming sweeps)",
		"scenario", "kind", "n", "f", "seeds", "violations", "undecided", "exhausted", "mean msgs", "mean rounds")

	sizes := []int{64, 128}
	if o.Quick {
		sizes = []int{16}
	}
	for _, sc := range runner.Scenarios() {
		for _, n := range sizes {
			seeds := int64(o.Runs)
			if !sc.RBC {
				// Consensus frontier runs are expensive; cap the depth the
				// table regenerates per cell.
				switch {
				case n >= 128:
					seeds = min(seeds, 2)
				case n >= 64:
					seeds = min(seeds, 8)
				}
			}
			agg, err := runner.PropertySweep(runner.PropertySpec{
				N: n, F: -1, Scenario: sc,
				Seeds:   runner.SeedRange{From: o.Seed, To: o.Seed + seeds},
				Workers: o.Workers,
			})
			if err != nil {
				return nil, fmt.Errorf("scenario %s n=%d: %w", sc.Name, n, err)
			}
			kind := "consensus"
			undecided := agg.Runs - agg.Decided
			if sc.RBC {
				kind = "rbc"
				undecided = 0
			}
			t.AddRowf(sc.Name, kind, n, quorum.MaxByzantine(n), fmt.Sprint(agg.Runs),
				fmt.Sprint(agg.Checks.Violations), fmt.Sprint(undecided), fmt.Sprint(agg.Exhausted),
				agg.Messages.Stats.Mean, agg.Rounds.Stats.Mean)
		}
	}
	return t, nil
}
