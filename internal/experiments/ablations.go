package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// A1Validation regenerates ablation A1: message validation on versus off
// under the liar adversary. Expected shape: with validation, runs stay
// clean; without it, liar traffic is counted at face value and runs slow
// down or fail — contribution 2 of the paper is what buys the n/3 bound.
func A1Validation(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"A1 — validation on/off under the liar adversary (n=4, f=1)",
		"validation", "ok-runs", "mean rounds", "mean msgs")
	for _, disable := range []bool{false, true} {
		ok := 0
		var rounds, msgs metrics.Sample
		results, err := o.sweepSeeds(runner.Config{
			N: 4, F: 1, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvLiar, Scheduler: runner.SchedRushByz,
			Inputs:            runner.InputUnanimous1,
			DisableValidation: disable,
			MaxRounds:         40, MaxDeliveries: 400_000,
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if len(res.Violations) == 0 && res.AllDecided {
				ok++
				rounds.Add(res.MeanRounds)
			}
			msgs.AddInt(res.Messages)
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRowf(label, fmt.Sprintf("%d/%d", ok, o.Runs),
			rounds.Summary().Mean, msgs.Summary().Mean)
	}
	return t, nil
}

// A2Gadget regenerates ablation A2: DECIDE amplification on versus off.
// Expected shape: identical decision rounds (the gadget changes halting
// only); without it nodes never halt, so the run ends on the stop predicate
// instead of quiescence.
func A2Gadget(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"A2 — decide-amplification gadget on/off (n=7, f=2, silent faults)",
		"gadget", "ok-runs", "mean decision round", "halted processes")
	for _, disable := range []bool{false, true} {
		ok, halted := 0, 0
		var rounds metrics.Sample
		results, err := o.sweepSeeds(runner.Config{
			N: 7, F: 2, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
			Inputs:              runner.InputSplit,
			DisableDecideGadget: disable,
			MaxDeliveries:       400_000,
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if len(res.Violations) == 0 && res.AllDecided {
				ok++
				rounds.Add(res.MeanRounds)
			}
			// Halting is observable via the run ending by done-ness; with
			// the gadget disabled the protocol keeps running until the stop
			// predicate fires, so "halted" counts gadget completions only.
			if !disable {
				halted += len(res.Decisions)
			}
		}
		label := "on"
		if disable {
			label = "off"
		}
		t.AddRowf(label, fmt.Sprintf("%d/%d", ok, o.Runs), rounds.Summary().Mean, halted)
	}
	return t, nil
}

// A4Broadcast regenerates ablation A4: reliable broadcast (the paper's
// three-phase primitive) versus consistent broadcast (two phases, cheaper,
// no totality). Expected shape: consistent saves the n² READY messages but
// a partial-send Byzantine sender starves some correct processes, which the
// totality checker flags; reliable broadcast survives the same attack.
func A4Broadcast(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"A4 — reliable vs consistent broadcast (n=7, f=2)",
		"mode", "msgs (correct sender)", "violations (correct sender)",
		"totality violations (partial-send attack)")
	for _, mode := range []runner.BroadcastMode{runner.ModeReliable, runner.ModeConsistent} {
		var msgs metrics.Sample
		honestViolations, totalityViolations := 0, 0
		var cfgs []runner.RBCConfig
		for i := 0; i < o.Runs; i++ {
			cfgs = append(cfgs,
				runner.RBCConfig{N: 7, F: 2, Byzantine: 0, Mode: mode, Seed: o.Seed + int64(i)},
				runner.RBCConfig{
					N: 7, F: 2, Byzantine: 2, Mode: mode,
					SenderPartial: true, Seed: o.Seed + int64(i),
				})
		}
		results, err := o.sweepRBC(cfgs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			if cfgs[i].SenderPartial {
				totalityViolations += len(res.Violations)
			} else {
				msgs.AddInt(res.Messages)
				honestViolations += len(res.Violations)
			}
		}
		t.AddRowf(mode.String(), msgs.Summary().Mean, honestViolations, totalityViolations)
	}
	return t, nil
}

// A3Scheduler regenerates ablation A3: FIFO versus reordering delivery per
// coin type. Expected shape: correctness everywhere (Bracha's protocol does
// not need FIFO links); round counts comparable.
func A3Scheduler(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"A3 — FIFO vs reordering scheduler (n=7, f=2, liar adversary)",
		"scheduler", "coin", "ok-runs", "mean rounds")
	for _, sched := range []runner.SchedulerKind{runner.SchedUniform, runner.SchedFIFO} {
		for _, ck := range []runner.CoinKind{runner.CoinLocal, runner.CoinCommon} {
			ok := 0
			var rounds metrics.Sample
			results, err := o.sweepSeeds(runner.Config{
				N: 7, F: 2, Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: ck,
				Adversary: runner.AdvLiar, Scheduler: sched,
				Inputs:        runner.InputSplit,
				MaxDeliveries: 400_000,
			})
			if err != nil {
				return nil, err
			}
			for _, res := range results {
				if len(res.Violations) == 0 && res.AllDecided {
					ok++
					rounds.Add(res.MeanRounds)
				}
			}
			t.AddRowf(sched.String(), ck.String(), fmt.Sprintf("%d/%d", ok, o.Runs),
				rounds.Summary().Mean)
		}
	}
	return t, nil
}
