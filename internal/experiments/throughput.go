package experiments

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// E13BatchedThroughput regenerates Table 9: what batching and pipelined
// dissemination buy on the replicated log, measured in committed entries
// per unit of simulator work. One slot of Bracha agreement costs ~7n³
// deliveries whether its decided body carries one command or a batch, so
// entries per kilodelivery should scale near-linearly with the batch size;
// pipeline depth overlaps the dissemination of upcoming proposer turns
// with the current slot's agreement and shows up as reduced virtual end
// time, not reduced deliveries. Every row commits the same entry target so
// the ratios compare like-for-like.
//
// Columns:
//
//   - slots: agreement instances the row ran (ceil(entries/batch)) — the
//     headline of batching is this column shrinking while entries holds;
//   - entries: committed log entries in [0, slots) (>= the target; full
//     preloaded batches, no noop padding);
//   - deliveries / ent-per-kdeliv: the deterministic throughput figure;
//   - virtual time: simulator end time — the pipelining column;
//   - log digest: reference replica's chained entry digest, bitwise stable
//     across reruns, worker counts, and checkpoint cadences.
//
// The quick and default tables run n=16 and below; the n=64 and n=128
// frontier rows are gated behind REPRO_HARNESS_FULL=1 like every
// frontier-size property (an n=128 slot is ~15M deliveries — minutes, not
// CI seconds). Wall-clock entries/sec is deliberately absent: it is
// telemetry, and cmd/bench reports it on stderr where it cannot contaminate
// byte-stable output.
func E13BatchedThroughput(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E13 / Table 9 — batched, pipelined replicated log: committed entries per unit work",
		"n", "f", "batch", "depth", "slots", "entries", "deliveries",
		"ent-per-kdeliv", "virtual time", "log digest")
	type size struct {
		n, entries int
	}
	sizes := []size{{4, 32}, {16, 32}}
	if o.Quick {
		sizes = []size{{4, 24}, {16, 24}}
	}
	if os.Getenv("REPRO_HARNESS_FULL") != "" {
		sizes = append(sizes, size{64, 32}, size{128, 32})
	}
	batches := []int{1, 4, 16}
	depths := []int{1, 2}
	for _, s := range sizes {
		f := (s.n - 1) / 3
		points, err := runner.RunThroughput(runner.ThroughputConfig{
			N: s.n, F: f,
			Entries: s.entries,
			Batches: batches,
			Depths:  depths,
			Coin:    runner.CoinCommon,
			Seed:    o.Seed,
			Workers: o.Workers,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range points {
			if p.Mismatches != 0 || p.SubmitDropped != 0 || p.DuplicateCommands != 0 || p.Exhausted {
				return nil, fmt.Errorf("experiments: unhealthy throughput point n=%d batch=%d depth=%d: %+v",
					s.n, p.Batch, p.Depth, p)
			}
			t.AddRowf(s.n, f, p.Batch, p.Depth, p.Slots, p.Entries, p.Deliveries,
				fmt.Sprintf("%.2f", p.EntriesPerKDeliveries()), int(p.EndTime),
				fmt.Sprintf("%016x", p.LogDigest))
		}
	}
	return t, nil
}
