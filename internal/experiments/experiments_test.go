package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// quickOpts keeps the smoke tests fast; the full sweeps run in cmd/bench
// and the benchmarks.
func quickOpts() Options {
	return Options{Runs: 3, Quick: true, Seed: 1}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tbl, err := e.Run(quickOpts())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if tbl.NumRows() == 0 {
				t.Fatalf("%s produced an empty table", e.ID)
			}
			if out := tbl.Render(); !strings.Contains(out, "==") {
				t.Errorf("%s render missing title: %q", e.ID, out)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("E7")
	if err != nil || e.ID != "E7" {
		t.Fatalf("ByID(E7) = %+v, %v", e, err)
	}
	if _, err := ByID("E99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestDefaults(t *testing.T) {
	o := Defaults(Options{})
	if o.Runs != 25 {
		t.Errorf("Runs = %d, want 25", o.Runs)
	}
	q := Defaults(Options{Quick: true})
	if q.Runs != 5 {
		t.Errorf("quick Runs = %d, want 5", q.Runs)
	}
	if len(q.sizes()) >= len(o.sizes()) {
		t.Error("quick sizes must be smaller")
	}
}

// TestE1Shape verifies the headline shape of Table 1: message counts match
// the n+2n² model exactly for correct senders.
func TestE1Shape(t *testing.T) {
	tbl, err := E1RBCMessages(Options{Runs: 2, Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 3 {
		t.Fatalf("unexpected table: %s", out)
	}
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		n, err := strconv.Atoi(cols[0])
		if err != nil {
			t.Fatal(err)
		}
		want := float64(n + 2*n*n)
		got, err := strconv.ParseFloat(cols[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("n=%d: msgs = %v, want %v", n, got, want)
		}
		if cols[5] != "0" {
			t.Errorf("n=%d: violations = %s", n, cols[5])
		}
	}
}

// TestE7Shape verifies tightness: the oversized-f rows must report broken
// runs, the design-point rows must not.
func TestE7Shape(t *testing.T) {
	tbl, err := E7Tightness(Options{Runs: 3, Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(tbl.CSV()), "\n")
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		fAssumed, actual, broken := cols[1], cols[2], cols[3]
		if fAssumed == actual {
			if !strings.HasPrefix(broken, "0/") {
				t.Errorf("design point broke: %s", line)
			}
		} else {
			if strings.HasPrefix(broken, "0/") {
				t.Errorf("oversized f did not break: %s", line)
			}
		}
	}
}
