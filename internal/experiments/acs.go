package experiments

import (
	"fmt"

	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// E9ACS regenerates Table 5 (extension): Asynchronous Common Subset — the
// HoneyBadgerBFT core built from the paper's primitives. Expected shape:
// ≥ n−f inputs always included, identical subsets at all correct processes,
// cost ≈ n × (one RBC + one binary consensus) per agreement.
func E9ACS(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E9 / Table 5 — Asynchronous Common Subset (extension; BKR'94 over Bracha primitives)",
		"n", "f", "runs", "agreed subsets", "mean subset size", "mean msgs", "mean sim-time")
	for _, n := range o.sizes() {
		f := quorum.MaxByzantine(n)
		agreed := 0
		var size, msgs, simTime metrics.Sample
		for i := 0; i < o.Runs; i++ {
			res, err := runACS(n, f, o.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			if res.agreed {
				agreed++
				size.AddInt(res.subsetSize)
				msgs.AddInt(res.messages)
				simTime.Add(float64(res.endTime))
			}
		}
		t.AddRowf(n, f, o.Runs, fmt.Sprintf("%d/%d", agreed, o.Runs),
			size.Summary().Mean, msgs.Summary().Mean, simTime.Summary().Mean)
	}
	return t, nil
}

type acsResult struct {
	agreed     bool
	subsetSize int
	messages   int
	endTime    sim.Time
}

// runACS executes one ACS round with f silent Byzantine processes.
func runACS(n, f int, seed int64) (*acsResult, error) {
	spec, err := quorum.New(n, f)
	if err != nil {
		return nil, err
	}
	peers := types.Processes(n)
	dealers := make([]*coin.Dealer, n+1)
	for i := 1; i <= n; i++ {
		dealers[i] = coin.NewDealer(spec, seed+int64(i)*77)
	}
	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
	if err != nil {
		return nil, err
	}
	nodes := make([]*acs.Node, 0, n-f)
	for _, p := range peers[:n-f] {
		p := p
		nd, err := acs.New(acs.Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: func(inst int) coin.Coin {
				return coin.NewCommon(p, peers, dealers[inst])
			},
			Input: fmt.Sprintf("batch-%v", p),
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			return nil, err
		}
	}
	stats, err := net.Run(func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Output(); !ok {
				return false
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	res := &acsResult{messages: stats.Sent, endTime: stats.End}
	first, ok := nodes[0].Output()
	if !ok || len(first) < spec.Quorum() {
		return res, nil
	}
	for _, nd := range nodes[1:] {
		got, ok := nd.Output()
		if !ok || len(got) != len(first) {
			return res, nil
		}
		for i := range got {
			if got[i] != first[i] {
				return res, nil
			}
		}
	}
	res.agreed = true
	res.subsetSize = len(first)
	return res, nil
}
