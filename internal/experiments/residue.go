package experiments

import (
	"fmt"
	"strconv"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// E12ResidueCheckpointing regenerates Table 8: what the checkpoint &
// state-transfer subsystem (internal/ckpt) buys on long replicated-log
// executions. Windowed pruning (E11) bounds every per-round retainer but
// deliberately leaves a residue that grows with slots committed: one RBC
// delivered-digest record per slot per replica, one coin dealer per slot,
// and the committed log itself. Each row runs the identical log workload —
// same commands, same seeds — and reports that residue at the end of the
// run, with checkpointing off and at two cut cadences:
//
//   - log retained: committed entries still held across the cluster
//     (n·slots without checkpointing; the suffix above the cut with it);
//   - rbc records / rbc bytes: compact delivered-digest records of the
//     dissemination layer (the residue windowing kept on purpose);
//   - dealer slots / rounds: per-slot common-coin dealers and their dealt
//     sharings, released below the cluster's minimum certified cut;
//   - cut: the highest certified checkpoint at the end of the run.
//
// The shape to verify: with checkpointing off every residue column grows
// linearly with slots; with it, each is bounded by O(interval) per replica
// whatever the log length — the first sublinear memory row in the
// repository, and the reason infinite executions now run in bounded space.
// The log digest column must be identical down each slots group: the
// subsystem moves memory, never what commits (the golden acceptance of the
// checkpoint tests, re-demonstrated here at table scale).
//
// Determinism note: every column is a pure function of (config, seed) —
// byte-stable across reruns, machines, and worker counts, like all
// non-telemetry tables.
func E12ResidueCheckpointing(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E12 / Table 8 — checkpoint & state transfer: retained residue vs slots committed",
		"n", "slots", "ckpt-every", "cut", "log retained", "rbc records",
		"rbc bytes", "dealer slots", "dealer rounds", "log digest", "deliveries")
	slotSizes := []int{512, 1024}
	if o.Quick {
		slotSizes = []int{320}
	}
	const n, f = 4, 1
	intervals := []int{0, 64, 256}
	for _, slots := range slotSizes {
		for _, every := range intervals {
			res, err := runner.RunSMR(runner.SMRConfig{
				N: n, F: f,
				Slots:           slots,
				Commands:        8,
				CheckpointEvery: every,
				Coin:            runner.CoinCommon,
				Seed:            o.Seed,
			})
			if err != nil {
				return nil, err
			}
			label := "off"
			if every > 0 {
				label = strconv.Itoa(every)
			}
			t.AddRowf(n, slots, label, res.CertifiedCut, res.LogRetained,
				res.RBCRecords, res.RBCDigestBytes, res.DealerSlots,
				res.DealerRounds, fmt.Sprintf("%016x", res.LogDigest), res.Deliveries)
		}
	}
	return t, nil
}
