package experiments

import (
	"fmt"
	"os"

	"repro/internal/metrics"
	"repro/internal/runner"
)

// E14CodedDissemination regenerates Table 10: what erasure-coded
// dissemination (AVID-style coded reliable broadcast) buys on the wire.
// Every (n, batch) cell runs the identical replicated-log workload twice —
// plain Bracha dissemination versus the coded plane — and reports the
// total metered wire bytes of each. The committed logs must match bitwise
// (the run errors out on any digest divergence), so the only number coding
// is allowed to move is the bandwidth column.
//
// The shape to verify is the AVID communication bound: an uncoded broadcast
// echoes the full |v|-byte body n² times (O(n²·|v|) per broadcast), while
// the coded one ships each peer a |v|/k fragment plus a 32n-byte
// cross-checksum (O(n·|v| + n²·λ) total). The reduction column should
// therefore grow with both n and the body size — near break-even for tiny
// bodies at n=4, multiples once batches are KB-sized, and ≥3× at the n=64
// frontier. Total bytes include all the (uncoded, tiny) agreement traffic,
// so the reported reduction understates the dissemination-plane win.
//
// Columns:
//
//   - batch / body B: commands per proposal and the padded body size the
//     proposer disseminates (batch × 2 KiB commands, plus framing);
//   - uncoded B / coded B: total metered wire bytes of the two runs
//     (wire.MessageSize over every sent message, agreement included);
//   - coded B/slot: coded bytes amortized per agreement slot — the
//     per-broadcast figure of Table 10;
//   - reduction: uncoded ÷ coded total bytes;
//   - log digest: identical for both runs by construction (checked).
//
// The n=64 frontier row is gated behind REPRO_HARNESS_FULL=1 like every
// frontier-size workload; quick and default tables stay at CI-smoke sizes.
func E14CodedDissemination(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E14 / Table 10 — erasure-coded dissemination: wire bytes, coded vs uncoded",
		"n", "f", "batch", "body B", "slots", "uncoded B", "coded B",
		"coded B/slot", "reduction", "log digest")
	const commandBytes = 2048
	sizes := []int{4, 16}
	slots := 6
	batches := []int{1, 4, 16}
	if o.Quick {
		sizes = []int{4, 8}
		slots = 4
		batches = []int{1, 4}
	}
	if os.Getenv("REPRO_HARNESS_FULL") != "" {
		sizes = append(sizes, 64)
	}
	for _, n := range sizes {
		f := (n - 1) / 3
		for _, batch := range batches {
			// Preload full batches (ceil(slots/n) proposer turns each), so
			// every disseminated body carries batch × commandBytes of
			// payload, not noop padding.
			commands := (slots + n - 1) / n * batch
			base := runner.SMRConfig{
				N: n, F: f,
				Slots:        slots,
				Commands:     commands,
				CommandBytes: commandBytes,
				Batch:        batch,
				Depth:        2,
				Coin:         runner.CoinCommon,
				Seed:         o.Seed,
			}
			uncoded, err := runner.RunSMR(base)
			if err != nil {
				return nil, fmt.Errorf("experiments: E14 uncoded n=%d batch=%d: %w", n, batch, err)
			}
			codedCfg := base
			codedCfg.Coded = true
			coded, err := runner.RunSMR(codedCfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: E14 coded n=%d batch=%d: %w", n, batch, err)
			}
			for _, r := range []*runner.SMRResult{uncoded, coded} {
				if r.Exhausted || r.Mismatches != 0 || !r.FullStream {
					return nil, fmt.Errorf("experiments: E14 unhealthy run n=%d batch=%d coded=%v: exhausted=%v mismatches=%d full=%v",
						n, batch, r.Config.Coded, r.Exhausted, r.Mismatches, r.FullStream)
				}
			}
			if coded.LogDigest != uncoded.LogDigest || coded.StateDigest != uncoded.StateDigest {
				return nil, fmt.Errorf("experiments: E14 digest divergence n=%d batch=%d: coded (%016x, %016x) vs uncoded (%016x, %016x)",
					n, batch, coded.LogDigest, coded.StateDigest, uncoded.LogDigest, uncoded.StateDigest)
			}
			t.AddRowf(n, f, batch, batch*commandBytes, slots,
				uncoded.WireBytes, coded.WireBytes,
				coded.WireBytes/int64(slots),
				fmt.Sprintf("%.2f×", float64(uncoded.WireBytes)/float64(coded.WireBytes)),
				fmt.Sprintf("%016x", uncoded.LogDigest))
		}
	}
	return t, nil
}
