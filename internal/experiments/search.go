package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/runner"
	"repro/internal/search"
)

// E15SearchCliffs regenerates Table 11: the scheduler-parameter search. For
// every preset family the full axis lattice is evaluated (search.Grid) over
// a seed block, and the three worst points — the liveness cliffs — are
// tabulated. The shape to verify: zero violations everywhere (the cliffs
// are liveness cliffs, not safety holes), scores rising toward each
// family's hostile corner, and the worst discovered points matching the
// cliff scenarios pinned in runner.Scenarios() (the "adaptive-cliff"
// regression scenario is exactly the adaptive family's summit). `bench
// -search <family>` walks the same lattices interactively, with a resumable
// frontier for deeper seed blocks.
func E15SearchCliffs(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E15 / Table 11 — scheduler-parameter search: liveness cliffs",
		"family", "rank", "point", "seeds", "undecided", "exhausted", "violations", "mean rounds", "mean time", "score")

	n, seeds := 16, int64(min(o.Runs, 8))
	if o.Quick {
		n, seeds = 8, int64(min(o.Runs, 3))
	}
	for _, name := range search.Families() {
		spec, err := search.FamilySpec(name, n, -1, runner.SeedRange{From: o.Seed, To: o.Seed + seeds})
		if err != nil {
			return nil, err
		}
		spec.Workers = o.Workers
		out, err := search.Grid(spec)
		if err != nil {
			return nil, fmt.Errorf("family %s: %w", name, err)
		}
		for rank, p := range out.Points {
			if rank >= 3 {
				break
			}
			t.AddRowf(name, rank+1, p.Key, fmt.Sprint(p.Runs),
				fmt.Sprint(p.Runs-p.Decided), fmt.Sprint(p.Exhausted), fmt.Sprint(p.Violations),
				p.MeanRounds, p.MeanTime, p.Score)
		}
	}
	return t, nil
}
