// Package experiments regenerates every table and figure of the evaluation
// (EXPERIMENTS.md). The PODC-84 paper is a theory paper with no empirical
// section, so the experiments verify its theorems and claims empirically —
// resilience, termination, expected rounds per coin type, message
// complexity, the Ben-Or crossover, and the tightness of the f < n/3 bound —
// plus ablations of this implementation's design choices.
//
// Each experiment returns a metrics.Table whose rendered form is what
// cmd/bench prints and EXPERIMENTS.md records; bench_test.go wraps the same
// functions in testing.B benchmarks.
package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/runner"
)

// Options tunes experiment sizes. The zero value is replaced by Defaults.
type Options struct {
	// Runs is the number of seeded repetitions per configuration.
	Runs int
	// Seed offsets all run seeds (repetition i of a config uses Seed+i).
	Seed int64
	// Quick shrinks sweeps for smoke tests.
	Quick bool
	// Workers bounds the sweep worker pool (0 = GOMAXPROCS, 1 = serial).
	// Results are identical for every value: runs are independent and
	// runner.Sweep merges them by index, never by completion order.
	Workers int
}

// Defaults fills unset options.
func Defaults(o Options) Options {
	if o.Runs <= 0 {
		if o.Quick {
			o.Runs = 5
		} else {
			o.Runs = 25
		}
	}
	return o
}

// sweepSeeds runs cfg once per repetition with seeds Seed, Seed+1, ... —
// the standard repetition pattern of every experiment.
func (o Options) sweepSeeds(cfg runner.Config) ([]*runner.Result, error) {
	seeds := make([]int64, o.Runs)
	for i := range seeds {
		seeds[i] = o.Seed + int64(i)
	}
	return runner.SweepSeeds(cfg, seeds, o.Workers)
}

// sweepRBC is sweep for broadcast experiments.
func (o Options) sweepRBC(cfgs []runner.RBCConfig) ([]*runner.RBCResult, error) {
	return runner.SweepRBC(cfgs, o.Workers)
}

func (o Options) sizes() []int {
	if o.Quick {
		return []int{4, 7}
	}
	return []int{4, 7, 10, 13, 16}
}

// E1RBCMessages regenerates Table 1: reliable-broadcast message complexity
// versus n, with and without an equivocating Byzantine sender. The shape to
// verify: messages per broadcast grow as n + 2n² and agreement never breaks.
func E1RBCMessages(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E1 / Table 1 — Bracha reliable broadcast: messages per broadcast",
		"n", "f", "msgs(correct sender)", "n+2n² (model)", "msgs(equivocating sender)", "violations")
	sizes := o.sizes()
	if !o.Quick {
		// 64 and 128 are the ROADMAP's larger-n frontier, opened by the
		// streaming sweep engine (broadcast runs stay cheap there).
		sizes = append(sizes, 22, 31, 64, 128)
	}
	for _, n := range sizes {
		f := quorum.MaxByzantine(n)
		var honest, attacked metrics.Sample
		violations := 0
		var cfgs []runner.RBCConfig
		for i := 0; i < o.Runs; i++ {
			seed := o.Seed + int64(i)
			cfgs = append(cfgs, runner.RBCConfig{N: n, F: f, Byzantine: 0, Seed: seed})
			if f > 0 {
				cfgs = append(cfgs, runner.RBCConfig{
					N: n, F: f, Byzantine: f, SenderEquivocates: true, Seed: seed,
				})
			}
		}
		results, err := o.sweepRBC(cfgs)
		if err != nil {
			return nil, err
		}
		for i, res := range results {
			if cfgs[i].SenderEquivocates {
				attacked.AddInt(res.Messages)
			} else {
				honest.AddInt(res.Messages)
			}
			violations += len(res.Violations)
		}
		attackedMean := "-"
		if attacked.Len() > 0 {
			attackedMean = fmt.Sprintf("%.0f", attacked.Summary().Mean)
		}
		t.AddRowf(n, f, honest.Summary().Mean, n+2*n*n, attackedMean, violations)
	}
	return t, nil
}

// E2Resilience regenerates Table 2: consensus at optimal resilience
// f = ⌊(n−1)/3⌋ across every adversary and scheduler. The shape to verify:
// zero safety violations and 100% termination everywhere.
func E2Resilience(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E2 / Table 2 — consensus at f = ⌊(n−1)/3⌋: violations / runs",
		"n", "f", "adversary", "scheduler", "runs", "terminated", "violations")
	adversaries := []runner.Adversary{
		runner.AdvSilent, runner.AdvEquivocator, runner.AdvLiar,
		runner.AdvDecideForger, runner.AdvSplitBrain, runner.AdvCrashMidway,
	}
	schedulers := []runner.SchedulerKind{runner.SchedUniform, runner.SchedRushByz}
	sizes := o.sizes()
	if !o.Quick {
		sizes = []int{4, 7, 10, 16}
	}
	for _, n := range sizes {
		f := quorum.MaxByzantine(n)
		for _, adv := range adversaries {
			for _, sched := range schedulers {
				terminated, violations := 0, 0
				results, err := o.sweepSeeds(runner.Config{
					N: n, F: f, Byzantine: -1,
					Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
					Adversary: adv, Scheduler: sched,
					Inputs: runner.InputSplit,
				})
				if err != nil {
					return nil, err
				}
				for _, res := range results {
					if res.AllDecided {
						terminated++
					}
					violations += len(res.Violations)
				}
				t.AddRowf(n, f, adv.String(), sched.String(), o.Runs,
					fmt.Sprintf("%d/%d", terminated, o.Runs), violations)
			}
		}
	}
	return t, nil
}

// E3LocalCoinRounds regenerates Figure 1: expected decision rounds with the
// local (Ben-Or-style) coin, by input pattern. The shape to verify:
// unanimous inputs decide in round 1 regardless of n; split inputs cost
// more rounds, growing with n (the exponential trend randomization theory
// predicts for private coins).
func E3LocalCoinRounds(o Options) (*metrics.Table, error) {
	return coinRounds(o, runner.CoinLocal,
		"E3 / Figure 1 — expected rounds, local coin (private flips)")
}

// E4CommonCoinRounds regenerates Figure 2: expected decision rounds with the
// Rabin-style common coin. The shape to verify: a flat, small constant in n
// for every input pattern — the paper's constant-expected-time claim.
func E4CommonCoinRounds(o Options) (*metrics.Table, error) {
	return coinRounds(o, runner.CoinCommon,
		"E4 / Figure 2 — expected rounds, common coin (Rabin dealer)")
}

func coinRounds(o Options, ck runner.CoinKind, title string) (*metrics.Table, error) {
	o = Defaults(o)
	// Three workloads of increasing hostility. Benign runs converge in a
	// round or two with any coin; the coin's quality shows on the
	// adversarial series, where a liar keeps the system split and private
	// coins must all land on the same side by luck (expected rounds grow
	// with n) while the common coin re-unifies in one flip (flat).
	workloads := []struct {
		name      string
		inputs    runner.Inputs
		adversary runner.Adversary
		scheduler runner.SchedulerKind
	}{
		{"unanimous", runner.InputUnanimous1, runner.AdvSilent, runner.SchedUniform},
		{"random", runner.InputRandom, runner.AdvSilent, runner.SchedUniform},
		{"split+liar", runner.InputSplit, runner.AdvLiar, runner.SchedPartition},
	}
	series := make([]metrics.Series, len(workloads))
	for wi, w := range workloads {
		series[wi].Name = w.name
		for _, n := range o.sizes() {
			f := quorum.MaxByzantine(n)
			var rounds metrics.Sample
			results, err := o.sweepSeeds(runner.Config{
				N: n, F: f, Byzantine: -1,
				Protocol: runner.ProtocolBracha, Coin: ck,
				Adversary: w.adversary, Scheduler: w.scheduler,
				Inputs: w.inputs, MaxDeliveries: 1_000_000,
			})
			if err != nil {
				return nil, err
			}
			for _, res := range results {
				if res.AllDecided {
					rounds.Add(res.MeanRounds)
				}
			}
			series[wi].Add(float64(n), rounds.Summary().Mean)
		}
	}
	return metrics.Figure(title, "n", series...), nil
}

// E5MessageComplexity regenerates Table 3: messages and time per decided
// consensus instance versus n with the common coin. The shape to verify:
// messages grow as O(n³) per round (n reliable broadcasts of O(n²) each)
// while rounds stay constant.
func E5MessageComplexity(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E5 / Table 3 — messages per consensus (common coin, split inputs)",
		"n", "f", "mean msgs", "mean rounds", "msgs/n³", "mean sim-time")
	sizes := o.sizes()
	if !o.Quick {
		// The n=64 frontier: ~n³ messages per run, so this row alone moves
		// more traffic than the rest of the table combined (E10 pushes the
		// same workload to n=128 under adversarial schedules).
		sizes = append(sizes, 64)
	}
	for _, n := range sizes {
		f := quorum.MaxByzantine(n)
		var msgs, rounds, simTime metrics.Sample
		results, err := o.sweepSeeds(runner.Config{
			N: n, F: f, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
			Inputs: runner.InputSplit,
		})
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			msgs.AddInt(res.Messages)
			simTime.Add(float64(res.EndTime))
			if res.AllDecided {
				rounds.Add(res.MeanRounds)
			}
		}
		m := msgs.Summary().Mean
		t.AddRowf(n, f, m, rounds.Summary().Mean, m/float64(n*n*n), simTime.Summary().Mean)
	}
	return t, nil
}

// E6Crossover regenerates Figure 3: Bracha versus Ben-Or as the fault
// fraction grows, both under their worst adversary (equivocation, rushed).
// The shape to verify: both are clean while f < n/5; Ben-Or degrades once
// f ≥ n/5 while Bracha stays clean to f = ⌊(n−1)/3⌋ — the crossover that
// motivated the paper.
func E6Crossover(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E6 / Figure 3 — fault tolerance crossover (equivocating adversary)",
		"n", "f", "f/n", "benor ok-runs", "benor mean rounds", "bracha ok-runs", "bracha mean rounds")
	n := 16
	fs := []int{0, 1, 2, 3, 4, 5}
	if o.Quick {
		n = 11
		fs = []int{0, 2, 3}
	}
	for _, f := range fs {
		if f >= n/2 {
			continue
		}
		var benorOK, brachaOK int
		var benorRounds, brachaRounds metrics.Sample
		adv := runner.AdvEquivocator
		if f == 0 {
			adv = runner.AdvNone
		}
		benorResults, err := o.sweepSeeds(runner.Config{
			N: n, F: f, Byzantine: -1,
			Protocol: runner.ProtocolBenOr, Coin: runner.CoinCommon,
			Adversary: adv, Scheduler: runner.SchedRushByz,
			Inputs:    runner.InputSplit,
			MaxRounds: 80, MaxDeliveries: 400_000,
		})
		if err != nil {
			return nil, err
		}
		brachaResults, err := o.sweepSeeds(runner.Config{
			N: n, F: f, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: adv, Scheduler: runner.SchedRushByz,
			Inputs: runner.InputSplit,
		})
		if err != nil {
			return nil, err
		}
		for _, benor := range benorResults {
			if len(benor.Violations) == 0 && benor.AllDecided {
				benorOK++
				benorRounds.Add(benor.MeanRounds)
			}
		}
		for _, bracha := range brachaResults {
			if len(bracha.Violations) == 0 && bracha.AllDecided {
				brachaOK++
				brachaRounds.Add(bracha.MeanRounds)
			}
		}
		t.AddRowf(n, f, float64(f)/float64(n),
			fmt.Sprintf("%d/%d", benorOK, o.Runs), benorRounds.Summary().Mean,
			fmt.Sprintf("%d/%d", brachaOK, o.Runs), brachaRounds.Summary().Mean)
	}
	return t, nil
}

// E7Tightness regenerates Table 4: the resilience bound is tight. With
// f_actual = ⌊(n−1)/3⌋+1 split-brain colluders the protocol must break
// (agreement violations or non-termination); with f_actual = ⌊(n−1)/3⌋ the
// identical attack must be harmless.
func E7Tightness(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E7 / Table 4 — tightness of f < n/3 (split-brain attack)",
		"n", "f assumed", "byzantine actual", "broken runs", "agreement violations", "non-termination")
	sizes := []int{4, 7}
	if !o.Quick {
		sizes = []int{4, 7, 10}
	}
	for _, n := range sizes {
		f := quorum.MaxByzantine(n)
		for _, actual := range []int{f, f + 1} {
			broken, agreements, nonterm := 0, 0, 0
			results, err := o.sweepSeeds(runner.Config{
				N: n, F: f, Byzantine: actual,
				Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
				Adversary: runner.AdvSplitBrain, Scheduler: runner.SchedRushByz,
				Inputs:    runner.InputSplit,
				MaxRounds: 50, MaxDeliveries: 400_000,
			})
			if err != nil {
				return nil, err
			}
			for _, res := range results {
				bad := false
				for _, v := range res.Violations {
					bad = true
					if v.Property == "agreement" {
						agreements++
					}
				}
				if !res.AllDecided {
					nonterm++
					bad = true
				}
				if bad {
					broken++
				}
			}
			t.AddRowf(n, f, actual, fmt.Sprintf("%d/%d", broken, o.Runs), agreements, nonterm)
		}
	}
	return t, nil
}

// E8Throughput regenerates Figure 4: sequential consensus instances (the
// replicated-log workload that motivates protocols like HoneyBadger) versus
// n. The shape to verify: per-instance message cost grows ~n³ so decisions
// per message budget fall accordingly, while rounds per instance stay flat.
func E8Throughput(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	instances := 10
	if o.Quick {
		instances = 4
	}
	t := metrics.NewTable(
		fmt.Sprintf("E8 / Figure 4 — %d sequential instances (common coin)", instances),
		"n", "f", "instances decided", "mean msgs/instance", "mean rounds", "mean sim-time/instance")
	for _, n := range o.sizes() {
		f := quorum.MaxByzantine(n)
		var msgs, rounds, simTime metrics.Sample
		decided := 0
		seeds := make([]int64, instances)
		for k := range seeds {
			seeds[k] = o.Seed + int64(k)*131
		}
		results, err := runner.SweepSeeds(runner.Config{
			N: n, F: f, Byzantine: -1,
			Protocol: runner.ProtocolBracha, Coin: runner.CoinCommon,
			Adversary: runner.AdvSilent, Scheduler: runner.SchedUniform,
			Inputs: runner.InputRandom,
		}, seeds, o.Workers)
		if err != nil {
			return nil, err
		}
		for _, res := range results {
			if res.AllDecided {
				decided++
				msgs.AddInt(res.Messages)
				rounds.Add(res.MeanRounds)
				simTime.Add(float64(res.EndTime))
			}
		}
		t.AddRowf(n, f, fmt.Sprintf("%d/%d", decided, instances),
			msgs.Summary().Mean, rounds.Summary().Mean, simTime.Summary().Mean)
	}
	return t, nil
}
