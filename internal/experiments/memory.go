package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// E11MemoryPruning regenerates Table 7: the memory effect of per-round state
// pruning ("state for round r is released once round r+1 decides"). Each row
// runs the identical fixed-round, non-halting consensus workload — the
// decide gadget off and MaxRounds pinned, so pruned and unpruned runs do
// exactly the same protocol work — and measures what the cluster holds on to.
// The shape to verify: retained accepted messages (a deterministic count)
// stay a constant two-round window with pruning on and grow linearly with
// rounds with pruning off, and the heap numbers follow. Peak heap is sampled
// with runtime.ReadMemStats every few thousand deliveries; retained heap is
// measured after a forced GC with the nodes still live. Runs are serial —
// concurrent workers would share the heap under measurement.
//
// Determinism note: deliveries, retained accepted msgs, and allocs are pure
// functions of (config, seed) — byte-stable across reruns, worker counts,
// and machines, like every other table. The two heap columns are runtime
// telemetry (GC timing moves them a few percent between processes) and are
// exempt from the bitwise-regeneration contract, exactly like the per-table
// timing suffixes bench prints.
func E11MemoryPruning(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E11 / Table 7 — per-round pruning: peak memory, pruned vs unpruned",
		"n", "f", "rounds", "pruning", "deliveries", "retained accepted msgs", "retained heap", "peak heap", "allocs")
	sizes := []int{64, 128}
	if o.Quick {
		sizes = []int{16}
	}
	const rounds = 12
	for _, n := range sizes {
		for _, pruning := range []bool{true, false} {
			res, err := runMemoryWorkload(n, rounds, o.Seed, !pruning)
			if err != nil {
				return nil, err
			}
			label := "on"
			if !pruning {
				label = "off"
			}
			t.AddRowf(n, quorum.MaxByzantine(n), rounds, label, res.deliveries,
				res.retainedAccepted, mib(res.retainedHeap), mib(res.peakHeap), res.allocs)
		}
	}
	return t, nil
}

// mib renders a byte count as MiB with two decimals.
func mib(b uint64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

type memoryResult struct {
	deliveries       int
	retainedAccepted int    // accepted messages still held (deterministic)
	retainedHeap     uint64 // live heap after run + forced GC, nodes alive
	peakHeap         uint64 // max sampled HeapAlloc during the run
	allocs           uint64 // Mallocs delta across the run
}

// runMemoryWorkload drives one all-correct common-coin cluster for a fixed
// number of rounds with the decide gadget off, so every node marches through
// exactly `rounds` rounds whatever it decides — the state-retention workload
// behind E11 and the pruning claims in EXPERIMENTS.md.
func runMemoryWorkload(n, rounds int, seed int64, disablePruning bool) (*memoryResult, error) {
	f := quorum.MaxByzantine(n)
	spec, err := quorum.New(n, f)
	if err != nil {
		return nil, err
	}
	peers := types.Processes(n)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	net, err := sim.New(sim.Config{
		Scheduler: sim.UniformDelay{Min: 1, Max: 20},
		Seed:      seed,
		// The workload is bounded by MaxRounds, not the delivery budget.
		MaxDeliveries: 1 << 62,
	})
	if err != nil {
		return nil, err
	}
	dealer := coin.NewDealer(spec, seed+1)
	nodes := make([]*core.Node, 0, n)
	for i, p := range peers {
		nd, err := core.New(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewCommon(p, peers, dealer),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			DisablePruning:      disablePruning,
			MaxRounds:           rounds,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			return nil, err
		}
	}

	peak := uint64(0)
	delivered := 0
	sample := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
	}
	stats, err := net.Run(func() bool {
		delivered++
		if delivered%(1<<14) == 0 {
			sample()
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	sample()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res := &memoryResult{
		deliveries: stats.Delivered,
		peakHeap:   peak,
		allocs:     after.Mallocs - before.Mallocs,
	}
	if after.HeapAlloc > before.HeapAlloc {
		res.retainedHeap = after.HeapAlloc - before.HeapAlloc
	}
	for _, nd := range nodes {
		res.retainedAccepted += nd.AcceptedRetained()
	}
	runtime.KeepAlive(net)
	return res, nil
}
