package experiments

import (
	"fmt"
	"runtime"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
	"repro/internal/types"
)

// E11MemoryPruning regenerates Table 7: the memory effect of per-round state
// pruning ("state for round r is released once round r+Window decides").
// Each row runs the identical fixed-round, non-halting consensus workload —
// the decide gadget off and MaxRounds pinned, so every configuration does
// exactly the same protocol work — and measures what the cluster holds on
// to, retainer by retainer (the lifecycle of each is mapped in
// ARCHITECTURE.md):
//
//   - accepted msgs: justified step messages in the quorum-wait tables
//     (constant (Window+1)·3·n per node pruned; rounds·3·n unpruned);
//   - rbc live inst: full-fidelity reliable-broadcast instances (tallies and
//     payloads — the dominant retainer before windowing), with rbc digests
//     counting the compact delivered-digest records that replaced pruned
//     ones;
//   - val seen: the validators' per-sender dedup entries, windowed behind
//     the decided frontier;
//   - dealer rounds: the common-coin dealer's memoized sharings, pruned by
//     the cluster low-watermark (minimum round across nodes).
//
// The shape to verify: with pruning on, every retainer is bounded by the
// window (live-instance and seen counts scale with Window, not rounds run);
// with pruning off, all of them grow linearly with rounds — and the heap
// columns follow. Peak heap is sampled with runtime.ReadMemStats every few
// thousand deliveries; retained heap is measured after a forced GC with the
// nodes still live. Runs are serial — concurrent workers would share the
// heap under measurement.
//
// Determinism note: deliveries and all retainer counts are pure functions
// of (config, seed) — byte-stable across reruns, worker counts, and
// machines, like every other table. The two heap columns and the allocs
// column are runtime telemetry: GC timing moves the heap numbers a few
// percent between processes, and Mallocs picks up a handful of scheduler
// allocations left over from other experiments' worker pools, so all three
// are exempt from the bitwise-regeneration contract, exactly like the
// per-table timing suffixes bench prints.
func E11MemoryPruning(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E11 / Table 7 — windowed per-round pruning: retained state by retainer, pruned vs unpruned",
		"n", "f", "rounds", "pruning", "window", "deliveries", "accepted msgs",
		"rbc live inst", "rbc digests", "val seen", "dealer rounds",
		"retained heap", "peak heap", "allocs")
	sizes := []int{64, 128}
	if o.Quick {
		sizes = []int{16}
	}
	const rounds = 12
	type variant struct {
		label   string
		window  int
		noPrune bool
	}
	variants := []variant{
		{label: "on", window: 1},
		{label: "on", window: 4},
		{label: "off", window: 1, noPrune: true},
	}
	for _, n := range sizes {
		for _, v := range variants {
			res, err := runMemoryWorkload(n, rounds, o.Seed, v.window, v.noPrune)
			if err != nil {
				return nil, err
			}
			t.AddRowf(n, quorum.MaxByzantine(n), rounds, v.label, v.window, res.deliveries,
				res.retainedAccepted, res.rbcLive, res.rbcDigests, res.valSeen,
				res.dealerRounds, mib(res.retainedHeap), mib(res.peakHeap), res.allocs)
		}
	}
	return t, nil
}

// mib renders a byte count as MiB with two decimals.
func mib(b uint64) string {
	return fmt.Sprintf("%.2f MiB", float64(b)/(1<<20))
}

type memoryResult struct {
	deliveries       int
	retainedAccepted int    // accepted messages still held (deterministic)
	rbcLive          int    // full-fidelity RBC instances still held
	rbcDigests       int    // compact delivered-digest records
	valSeen          int    // validator per-sender dedup entries still held
	dealerRounds     int    // dealer sharings still memoized
	retainedHeap     uint64 // live heap after run + forced GC, nodes alive
	peakHeap         uint64 // max sampled HeapAlloc during the run
	allocs           uint64 // Mallocs delta across the run
}

// runMemoryWorkload drives one all-correct common-coin cluster for a fixed
// number of rounds with the decide gadget off, so every node marches through
// exactly `rounds` rounds whatever it decides — the state-retention workload
// behind E11 and the pruning claims in EXPERIMENTS.md. The dealer is pruned
// by the cluster low-watermark on the same delivery cadence the runner uses.
func runMemoryWorkload(n, rounds int, seed int64, window int, disablePruning bool) (*memoryResult, error) {
	f := quorum.MaxByzantine(n)
	spec, err := quorum.New(n, f)
	if err != nil {
		return nil, err
	}
	peers := types.Processes(n)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	net, err := sim.New(sim.Config{
		Scheduler: sim.UniformDelay{Min: 1, Max: 20},
		Seed:      seed,
		// The workload is bounded by MaxRounds, not the delivery budget.
		MaxDeliveries: 1 << 62,
	})
	if err != nil {
		return nil, err
	}
	dealer := coin.NewDealer(spec, seed+1)
	nodes := make([]*core.Node, 0, n)
	for i, p := range peers {
		nd, err := core.New(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:                coin.NewCommon(p, peers, dealer),
			Proposal:            types.Value(i % 2),
			DisableDecideGadget: true,
			DisablePruning:      disablePruning,
			Window:              window,
			MaxRounds:           rounds,
		})
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			return nil, err
		}
	}

	peak := uint64(0)
	delivered := 0
	sample := func() {
		var m runtime.MemStats
		runtime.ReadMemStats(&m)
		if m.HeapAlloc > peak {
			peak = m.HeapAlloc
		}
	}
	stats, err := net.Run(func() bool {
		delivered++
		if !disablePruning && delivered%runner.DefaultLowWatermarkEvery == 0 {
			low := nodes[0].Round()
			for _, nd := range nodes[1:] {
				if r := nd.Round(); r < low {
					low = r
				}
			}
			dealer.Prune(runner.DealerFloor(low, window))
		}
		if delivered%(1<<14) == 0 {
			sample()
		}
		return false
	})
	if err != nil {
		return nil, err
	}
	sample()

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	res := &memoryResult{
		deliveries:   stats.Delivered,
		peakHeap:     peak,
		allocs:       after.Mallocs - before.Mallocs,
		dealerRounds: dealer.RoundsRetained(),
	}
	if after.HeapAlloc > before.HeapAlloc {
		res.retainedHeap = after.HeapAlloc - before.HeapAlloc
	}
	for _, nd := range nodes {
		res.retainedAccepted += nd.AcceptedRetained()
		res.rbcLive += nd.RBCLiveInstances()
		res.rbcDigests += nd.RBCCompacted()
		res.valSeen += nd.ValidatorSeenRetained()
	}
	runtime.KeepAlive(net)
	return res, nil
}
