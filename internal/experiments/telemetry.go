package experiments

import (
	"fmt"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/quorum"
	"repro/internal/runner"
	"repro/internal/sim"
)

// TelemetryFamily is one scheduler family of the telemetry comparison:
// everything but the schedule (adversary, coin, inputs) is held fixed, so
// the per-kind and per-phase numbers isolate what the schedule itself costs.
type TelemetryFamily struct {
	Name      string
	Scheduler runner.SchedulerKind
	Sched     runner.SchedParams
}

// TelemetryFamilies returns the three schedules E16 (and `bench -telemetry`)
// compares: fair uniform delays, adversarial newest-first reordering, and
// the searched adaptive-cliff summit (the liveness cliff pinned by the
// adaptive-cliff harness scenario; see internal/search).
func TelemetryFamilies() []TelemetryFamily {
	return []TelemetryFamily{
		{Name: "uniform", Scheduler: runner.SchedUniform},
		{Name: "reorder", Scheduler: runner.SchedReorder},
		{Name: "adaptive-cliff", Scheduler: runner.SchedAdaptiveRush,
			Sched: runner.SchedParams{TargetLag: 480}},
	}
}

// TelemetryConfig builds the family's run config: Bracha with a liar
// adversary at optimal resilience, common coin, random inputs — the same
// setup as the reorder and adaptive-cliff harness scenarios, so the only
// independent variable across families is the schedule.
func TelemetryConfig(fam TelemetryFamily, n int, seed int64) runner.Config {
	return runner.Config{
		N: n, F: quorum.MaxByzantine(n),
		Protocol:      runner.ProtocolBracha,
		Coin:          runner.CoinCommon,
		Adversary:     runner.AdvLiar,
		Scheduler:     fam.Scheduler,
		Sched:         fam.Sched,
		Inputs:        runner.InputRandom,
		MaxDeliveries: runner.DeliveryBudget(n),
		Seed:          seed,
		Telemetry:     true,
	}
}

// E16Telemetry regenerates Table 12: where the time and bandwidth of a run
// actually go, per scheduler family. Each family sweeps the same seeds with
// the telemetry plane attached (per-kind wire counters and latency
// histograms, protocol phase histograms), merges the per-run sinks in index
// order — bitwise worker-count independent, since the integer merge is
// exactly associative and commutative — and adds one traced run whose
// decision critical paths (internal/obs) attribute decision time to wire
// versus handler ("think") hops.
//
// The shape to verify: "reorder" and "adaptive-cliff" run the identical
// adversary, coin, and inputs, yet the cliff costs strictly more rounds.
// The phase columns say why — the adaptive schedule stretches the
// round-decide phase (it lags exactly the traffic the frontier process
// needs) while the per-hop wire latencies stay comparable; chaos alone
// (reorder) barely moves either. The wire-share column shows decisions are
// wire-dominated in every family: the protocol thinks for free and waits
// for quorums.
//
// Columns:
//
//   - rounds: mean decision round over the sweep;
//   - msgs / dropped / wire B: merged per-kind totals (dropped counts
//     scheduler drops plus messages expiring at finished processes);
//   - top kind: the payload kind carrying the most bytes;
//   - decide p50/p99: the round-entry → decision phase histogram, in sim
//     ticks, over every decision of every run;
//   - deliver p99: queue-to-delivery wire latency across all kinds;
//   - hops: mean critical-path length of the traced run's decisions;
//   - crit t: mean decision time on those critical paths, in sim ticks.
//     (The wire/think decomposition the paths also carry is degenerate
//     here by construction — handlers execute in zero sim time, so wire
//     is 100% of every path; obs's tests pin the identity.)
func E16Telemetry(o Options) (*metrics.Table, error) {
	o = Defaults(o)
	t := metrics.NewTable(
		"E16 / Table 12 — telemetry plane: per-kind wire costs, phase latencies, critical paths",
		"family", "n", "runs", "rounds", "msgs", "dropped", "wire B",
		"top kind", "decide p50", "decide p99", "deliver p99", "hops", "crit t")
	n := 16
	if o.Quick {
		n = 8
	}
	for _, fam := range TelemetryFamilies() {
		cfg := TelemetryConfig(fam, n, 0)
		results, err := o.sweepSeeds(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: E16 %s: %w", fam.Name, err)
		}
		merged := sim.NewTelemetry()
		var roundSum float64
		var msgs, dropped int
		var wireBytes int64
		for _, r := range results {
			if len(r.Violations) > 0 || !r.AllDecided {
				return nil, fmt.Errorf("experiments: E16 %s seed %d: violations=%d allDecided=%v",
					fam.Name, r.Config.Seed, len(r.Violations), r.AllDecided)
			}
			merged.Merge(r.Telemetry)
			roundSum += r.MeanRounds
			msgs += r.Messages
			dropped += r.Dropped
			wireBytes += r.WireBytes
		}
		// Queue-to-delivery latency across every kind: merge the per-kind
		// histograms (exact — integer buckets).
		var wireLat metrics.Hist
		for k := range merged.Kinds {
			wireLat.Merge(merged.Kinds[k].Latency)
		}
		topKind := "-"
		if top := merged.TopKindsByBytes(1); len(top) > 0 {
			topKind = top[0]
		}
		decide := &merged.Phases[sim.PhaseRoundDecide]

		// One traced run attributes decision time to wire vs think hops.
		tcfg := TelemetryConfig(fam, n, o.Seed)
		tcfg.Telemetry = false
		tcfg.Trace = true
		traced, err := runner.Run(tcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: E16 %s traced: %w", fam.Name, err)
		}
		report := obs.Analyze(traced.Recorder.Events())
		var hops int
		for _, d := range report.Decisions {
			hops += d.Hops
		}
		meanHops := 0.0
		if len(report.Decisions) > 0 {
			meanHops = float64(hops) / float64(len(report.Decisions))
		}

		t.AddRowf(fam.Name, n, len(results),
			fmt.Sprintf("%.2f", roundSum/float64(len(results))),
			msgs, dropped, wireBytes, topKind,
			decide.Quantile(0.50), decide.Quantile(0.99),
			wireLat.Quantile(0.99),
			fmt.Sprintf("%.1f", meanHops),
			fmt.Sprintf("%.1f", report.MeanDecisionTime()))
	}
	return t, nil
}
