package ckpt

// The durable snapshot store: crash-safe persistence of one replica's
// latest certified checkpoint, so a whole-cluster power cycle recovers from
// disk instead of stalling forever (every replica's in-flight messages are
// gone, and with nobody ahead there is no peer to transfer from).
//
// One record holds {certificate+snapshot, committed log suffix}. The
// certificate is the wire-encoded CkptCertPayload with the snapshot
// attached — exactly the bytes a state-transfer response would carry, so a
// load is verified by the same VerifyCertPayload gate as a network transfer
// and a corrupted file can never install more than a hostile responder
// could (nothing). The suffix records the entries the replica had committed
// at or above the cut when it saved; a restored replica resumes *at the
// cut* (the suffix slots re-commit through ordinary consensus, which under
// heterogeneous reboots is the only live resumption point) and uses the
// suffix as a cross-restart divergence detector.
//
// Write path: encode body, prepend magic/version/SHA-256 header, write to a
// temp file, fsync, rename over the record. A kill -9 at any instant leaves
// either the old record (rename not reached) or the new one (rename
// atomic); a torn temp file is never looked at. Load path: magic, version,
// checksum, then a strict decode that rejects truncation and trailing
// bytes; any failure returns ErrCorrupt and the replica starts empty,
// falling back to network state transfer.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/types"
	"repro/internal/wire"
)

// Store errors.
var (
	// ErrNoRecord reports a missing record file (a fresh deployment, not a
	// failure).
	ErrNoRecord = errors.New("ckpt: no durable record")
	// ErrCorrupt reports a record that failed the checksum or the strict
	// decode — a torn write, bit rot, or tampering. Callers fall back to
	// network state transfer.
	ErrCorrupt = errors.New("ckpt: durable record corrupt")
)

const (
	// storeVersion 2 added the per-slot batch Index to suffix entries; a
	// version-1 record is rejected at load like any other unreadable record,
	// so a replica upgraded across the format change boots empty and catches
	// up by network state transfer instead of misreading old bytes.
	storeVersion = 2
	// storeHeaderLen is magic (4) + version (1) + SHA-256 of the body (32).
	storeHeaderLen = 4 + 1 + sha256.Size
	// maxSuffixEntries bounds the decoded suffix before any allocation, like
	// every other hostile-length guard in the wire codec.
	maxSuffixEntries = 1 << 20
)

var storeMagic = [4]byte{'R', 'C', 'K', 'P'}

// LogEntry mirrors one committed log entry in a durable record. (It is the
// smr layer's Entry shape; the checkpoint package sits below smr and keeps
// its own copy of the triple.)
type LogEntry struct {
	Slot int
	// Index is the entry's position within its slot's batch (0 for the
	// first or only entry; batched proposals commit several entries per slot).
	Index    int
	Proposer types.ProcessID
	Command  string
}

// Record is what one replica persists: its latest certificate with the
// snapshot at the cut, plus the log suffix it had committed at save time.
type Record struct {
	Cert   types.CkptCertPayload
	Suffix []LogEntry
}

// Store reads and writes one replica's durable checkpoint record at a fixed
// path.
type Store struct {
	path string
}

// NewStore names the record file. Nothing touches the filesystem until Save
// or Load.
func NewStore(path string) *Store { return &Store{path: path} }

// Path returns the record file path.
func (s *Store) Path() string { return s.path }

// Save atomically replaces the record: temp file, fsync, rename. The record
// must carry a snapshot — a certificate alone cannot restore a machine.
func (s *Store) Save(rec *Record) error {
	if rec == nil || rec.Cert.Snapshot == "" {
		return fmt.Errorf("ckpt: store save needs a certificate with a snapshot")
	}
	body, err := appendRecord(nil, rec)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(body)
	buf := make([]byte, 0, storeHeaderLen+len(body))
	buf = append(buf, storeMagic[:]...)
	buf = append(buf, storeVersion)
	buf = append(buf, sum[:]...)
	buf = append(buf, body...)

	// The record's directory is created on first save, so pointing a fresh
	// deployment at a not-yet-existing store directory works; the temp file
	// always lives beside the record, keeping the rename on one filesystem.
	if dir := filepath.Dir(s.path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("ckpt: store save: %w", err)
		}
	}
	tmp := s.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("ckpt: store save: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: store save: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: store save: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: store save: %w", err)
	}
	if err := os.Rename(tmp, s.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: store save: %w", err)
	}
	return nil
}

// Load reads and strictly validates the record. ErrNoRecord means no file;
// ErrCorrupt wraps every integrity failure (bad magic, version, checksum,
// truncated or trailing bytes, malformed fields). The caller must still
// verify the certificate itself (VerifyCertPayload): the checksum detects
// corruption, only the MAC quorum authenticates the content.
func (s *Store) Load() (*Record, error) {
	data, err := os.ReadFile(s.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNoRecord
		}
		return nil, fmt.Errorf("ckpt: store load: %w", err)
	}
	if len(data) < storeHeaderLen {
		return nil, fmt.Errorf("%w: %d-byte file", ErrCorrupt, len(data))
	}
	if !bytes.Equal(data[:4], storeMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if data[4] != storeVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, data[4])
	}
	body := data[storeHeaderLen:]
	sum := sha256.Sum256(body)
	if !bytes.Equal(data[5:storeHeaderLen], sum[:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	rec, rest, err := readRecord(body)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCorrupt)
	}
	if rec.Cert.Snapshot == "" {
		return nil, fmt.Errorf("%w: record without snapshot", ErrCorrupt)
	}
	return rec, nil
}

// appendRecord encodes a record body: length-prefixed wire certificate,
// then the suffix entries.
func appendRecord(buf []byte, rec *Record) ([]byte, error) {
	cert, err := wire.EncodePayload(&rec.Cert)
	if err != nil {
		return nil, fmt.Errorf("ckpt: store save: %w", err)
	}
	buf = binary.AppendUvarint(buf, uint64(len(cert)))
	buf = append(buf, cert...)
	buf = binary.AppendUvarint(buf, uint64(len(rec.Suffix)))
	for _, e := range rec.Suffix {
		if e.Slot < 0 || e.Index < 0 || e.Proposer < 0 {
			return nil, fmt.Errorf("ckpt: store save: negative suffix field")
		}
		buf = binary.AppendUvarint(buf, uint64(e.Slot))
		buf = binary.AppendUvarint(buf, uint64(e.Index))
		buf = binary.AppendUvarint(buf, uint64(int64(e.Proposer)))
		buf = binary.AppendUvarint(buf, uint64(len(e.Command)))
		buf = append(buf, e.Command...)
	}
	return buf, nil
}

// readRecord decodes a record body.
func readRecord(buf []byte) (*Record, []byte, error) {
	certLen, buf, err := readLen(buf, wire.MaxBodyLen*2)
	if err != nil {
		return nil, nil, err
	}
	if certLen > len(buf) {
		return nil, nil, fmt.Errorf("certificate truncated")
	}
	p, err := wire.DecodePayload(buf[:certLen])
	if err != nil {
		return nil, nil, err
	}
	cert, ok := p.(*types.CkptCertPayload)
	if !ok {
		return nil, nil, fmt.Errorf("record holds %T, want certificate", p)
	}
	buf = buf[certLen:]
	count, buf, err := readLen(buf, maxSuffixEntries)
	if err != nil {
		return nil, nil, err
	}
	rec := &Record{Cert: *cert}
	if count > 0 {
		rec.Suffix = make([]LogEntry, 0, min(count, 4096))
	}
	for i := 0; i < count; i++ {
		slot, rest, err := readLen(buf, 1<<40)
		if err != nil {
			return nil, nil, err
		}
		index, rest, err := readLen(rest, 1<<40)
		if err != nil {
			return nil, nil, err
		}
		proposer, rest, err := readLen(rest, 1<<40)
		if err != nil {
			return nil, nil, err
		}
		cmdLen, rest, err := readLen(rest, wire.MaxBodyLen)
		if err != nil {
			return nil, nil, err
		}
		if cmdLen > len(rest) {
			return nil, nil, fmt.Errorf("suffix entry truncated")
		}
		rec.Suffix = append(rec.Suffix, LogEntry{
			Slot:     slot,
			Index:    index,
			Proposer: types.ProcessID(proposer),
			Command:  string(rest[:cmdLen]),
		})
		buf = rest[cmdLen:]
	}
	return rec, buf, nil
}

// readLen reads one bounded non-negative uvarint.
func readLen(buf []byte, max int) (int, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, fmt.Errorf("truncated varint")
	}
	if v > uint64(max) {
		return 0, nil, fmt.Errorf("length %d exceeds %d", v, max)
	}
	return int(v), buf[n:], nil
}
