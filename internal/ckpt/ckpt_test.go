package ckpt

import (
	"fmt"
	"testing"

	"repro/internal/quorum"
	"repro/internal/types"
)

const testSecret = "cluster-secret"

var testPeers = types.Processes(4)

// authorityOf returns process p's endpoint of the vote-authentication
// scheme (each process holds its own keyring slice).
func authorityOf(p types.ProcessID) *Authority {
	return NewAuthority([]byte(testSecret), p, testPeers)
}

// vote builds voter's signed vote payload, exactly as the voter itself
// would (its own authority signs the full vector).
func vote(voter types.ProcessID, c Checkpoint) *types.CkptVotePayload {
	return &types.CkptVotePayload{
		Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
		MACs: authorityOf(voter).SignVector(c),
	}
}

func newTestTracker(t *testing.T, me types.ProcessID) *Tracker {
	t.Helper()
	tr, err := NewTracker(me, quorum.MustNew(4, 1), authorityOf(me), 8)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func noteVote(t *testing.T, tr *Tracker, voter types.ProcessID, c Checkpoint) (Certificate, bool) {
	t.Helper()
	cert, advanced, verified := tr.NoteVote(voter, vote(voter, c))
	if !verified {
		t.Fatalf("genuine vote by %v did not verify", voter)
	}
	return cert, advanced
}

func TestVoteQuorumCertifies(t *testing.T) {
	tr := newTestTracker(t, 1)
	c := Checkpoint{Slot: 8, StateDigest: 11, LogDigest: 22}
	if _, adv := noteVote(t, tr, 2, c); adv {
		t.Fatal("one vote certified")
	}
	if _, adv := noteVote(t, tr, 3, c); adv {
		t.Fatal("two votes certified")
	}
	cert, adv := noteVote(t, tr, 4, c)
	if !adv {
		t.Fatal("2f+1 votes did not certify")
	}
	if cert.Slot != 8 || len(cert.Voters) != 3 {
		t.Fatalf("cert = %+v", cert)
	}
	// The assembled certificate verifies at every cluster member: the MAC
	// vectors travel whole.
	for _, p := range testPeers {
		if !authorityOf(p).VerifyCert(cert, quorum.MustNew(4, 1)) {
			t.Fatalf("assembled certificate does not verify at %v", p)
		}
	}
	if got, ok := tr.Latest(); !ok || got.Slot != 8 {
		t.Fatalf("Latest = %+v, %v", got, ok)
	}
}

func TestForgedAndDuplicateVotesIgnored(t *testing.T) {
	tr := newTestTracker(t, 1)
	c := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 2}
	// A vector minted under the wrong cluster secret is rejected.
	forged := &types.CkptVotePayload{
		Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
		MACs: NewAuthority([]byte("wrong"), 2, testPeers).SignVector(c),
	}
	if _, adv, verified := tr.NoteVote(2, forged); adv || verified {
		t.Fatal("forged vote accepted")
	}
	// A vote attributed to the wrong voter is rejected: the MAC entries
	// were signed under voter 2's link keys, not voter 3's.
	stolen := vote(2, c)
	if _, adv, verified := tr.NoteVote(3, stolen); adv || verified {
		t.Fatal("reattributed vote accepted")
	}
	// A Byzantine relay cannot fabricate a correct voter's vote: it holds
	// only its own links' keys, so a vector it signs itself fails at
	// receiver 1 when attributed to voter 2.
	fabricated := &types.CkptVotePayload{
		Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest,
		MACs: authorityOf(4).SignVector(c),
	}
	if _, adv, verified := tr.NoteVote(2, fabricated); adv || verified {
		t.Fatal("a relay's self-signed vector passed as another voter's")
	}
	// Duplicates never double-count: three copies of one voter's vote plus
	// one other voter stay below quorum.
	tr.NoteVote(2, vote(2, c))
	tr.NoteVote(2, vote(2, c))
	tr.NoteVote(2, vote(2, c))
	if _, adv, _ := tr.NoteVote(3, vote(3, c)); adv {
		t.Fatal("duplicate votes reached quorum")
	}
}

func TestEquivocatingVoterCannotSplitCut(t *testing.T) {
	tr := newTestTracker(t, 1)
	good := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 2}
	bad := Checkpoint{Slot: 8, StateDigest: 9, LogDigest: 9}
	// Voter 2 equivocates; its first vote wins, the second is dropped, and
	// only votes matching the full digest pair count toward the quorum.
	noteVote(t, tr, 2, bad)
	tr.NoteVote(2, vote(2, good))
	noteVote(t, tr, 3, good)
	if _, adv := noteVote(t, tr, 4, good); adv {
		t.Fatal("quorum formed with a mismatched vote in it")
	}
	// A third matching voter still certifies the good checkpoint.
	if _, adv := noteVote(t, tr, 1, good); !adv {
		t.Fatal("matching quorum failed to certify")
	}
}

func TestOffCadenceAndStaleVotesRejected(t *testing.T) {
	tr := newTestTracker(t, 1)
	for _, slot := range []int{3, 12, -8, 0} {
		c := Checkpoint{Slot: slot}
		if _, adv, _ := tr.NoteVote(2, vote(2, c)); adv {
			t.Fatalf("off-cadence slot %d accepted", slot)
		}
	}
	if tr.PendingCuts() != 0 {
		t.Fatalf("off-cadence votes retained: %d cuts", tr.PendingCuts())
	}
	// Certify cut 8, then votes at or below it are dead.
	c8 := Checkpoint{Slot: 8, StateDigest: 5, LogDigest: 6}
	for _, v := range []types.ProcessID{2, 3, 4} {
		tr.NoteVote(v, vote(v, c8))
	}
	if _, adv, _ := tr.NoteVote(2, vote(2, c8)); adv {
		t.Fatal("re-vote at certified cut accepted")
	}
	if tr.PendingCuts() != 0 {
		t.Fatalf("stale votes retained: %d cuts", tr.PendingCuts())
	}
}

func TestFarFutureVoteSpamBounded(t *testing.T) {
	tr := newTestTracker(t, 1)
	// A Byzantine voter mints votes for thousands of distinct future cuts
	// (self-signed, so they verify); the table stays capped and low cuts
	// stay trackable.
	for i := 1; i <= 2_000; i++ {
		c := Checkpoint{Slot: 8 * i * 100}
		tr.NoteVote(4, vote(4, c))
	}
	if got := tr.PendingCuts(); got > DefaultMaxPendingCuts {
		t.Fatalf("vote table grew to %d cuts, cap %d", got, DefaultMaxPendingCuts)
	}
	// Honest certification at a low cut still proceeds: the spam evicts
	// itself (largest first), never the lowest pending cuts.
	c := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 1}
	noteVote(t, tr, 2, c)
	noteVote(t, tr, 3, c)
	if _, adv := noteVote(t, tr, 1, c); !adv {
		t.Fatal("spam displaced an honest low cut")
	}
}

func TestCertPayloadRoundTripAndSnapshotVerification(t *testing.T) {
	serving := newTestTracker(t, 1)
	snapshot := "k1=v1\nk2=v2\n"
	c := Checkpoint{Slot: 8, StateDigest: Digest(snapshot), LogDigest: 77}
	vp, _, _ := serving.RecordLocal(c, snapshot)
	if _, _, verified := newTestTracker(t, 2).NoteVote(1, vp); !verified {
		t.Fatal("RecordLocal vote does not verify at a peer")
	}
	for _, v := range []types.ProcessID{2, 3} {
		serving.NoteVote(v, vote(v, c))
	}
	if _, ok := serving.Latest(); !ok {
		t.Fatal("quorum incl. local vote did not certify")
	}
	full, ok := serving.CertPayload(true)
	if !ok || full.Snapshot != snapshot {
		t.Fatalf("CertPayload(true) = %+v, %v", full, ok)
	}

	receiving := newTestTracker(t, 4)
	cert, ok := receiving.VerifyCertPayload(full)
	if !ok {
		t.Fatal("valid cert payload rejected")
	}
	// Tampered snapshots and tampered digests both fail verification.
	bad := *full
	bad.Snapshot = "k1=evil\n"
	if _, ok := receiving.VerifyCertPayload(&bad); ok {
		t.Fatal("tampered snapshot accepted")
	}
	bad = *full
	bad.LogDigest++
	if _, ok := receiving.VerifyCertPayload(&bad); ok {
		t.Fatal("tampered log digest accepted")
	}
	bad = *full
	bad.Voters = bad.Voters[:2]
	bad.VoteMACs = bad.VoteMACs[:2]
	if _, ok := receiving.VerifyCertPayload(&bad); ok {
		t.Fatal("sub-quorum certificate accepted")
	}
	bad = *full
	bad.Voters = []types.ProcessID{bad.Voters[0], bad.Voters[0], bad.Voters[1]}
	if _, ok := receiving.VerifyCertPayload(&bad); ok {
		t.Fatal("duplicate-voter certificate accepted")
	}

	if !receiving.Adopt(cert, full.Snapshot) {
		t.Fatal("Adopt rejected a fresh certificate")
	}
	if got, okL := receiving.Latest(); !okL || got.Slot != 8 {
		t.Fatalf("adopted Latest = %+v, %v", got, okL)
	}
	// Having adopted the snapshot and the whole vectors, the receiver can
	// serve the certificate onward — and it verifies at a third replica.
	relayed, ok := receiving.CertPayload(true)
	if !ok || relayed.Snapshot != snapshot {
		t.Fatal("adopted snapshot not servable")
	}
	if _, ok := newTestTracker(t, 3).VerifyCertPayload(relayed); !ok {
		t.Fatal("relayed certificate does not verify at a third replica")
	}
}

func TestPoisonedVectorCannotForgeQuorum(t *testing.T) {
	// A Byzantine voter's vector may verify at the assembling replica and
	// nowhere else; receivers count only entries valid for themselves, so
	// a certificate whose quorum leans on poisoned vectors is rejected
	// rather than installed.
	c := Checkpoint{Slot: 8, StateDigest: 3, LogDigest: 4}
	poisoned := authorityOf(4).SignVector(c)
	poisoned[0] = "garbage" // entry for receiver 1 corrupted
	cert := Certificate{
		Checkpoint: c,
		Voters:     []types.ProcessID{2, 3, 4},
		VoteMACs: [][]string{
			authorityOf(2).SignVector(c),
			authorityOf(3).SignVector(c),
			poisoned,
		},
	}
	spec := quorum.MustNew(4, 1)
	if authorityOf(1).VerifyCert(cert, spec) {
		t.Fatal("receiver 1 accepted a quorum leaning on a poisoned entry")
	}
	// The same certificate verifies at receiver 2, whose entries are fine —
	// the documented symmetric-MAC tradeoff (delay, never unsafe install).
	if !authorityOf(2).VerifyCert(cert, spec) {
		t.Fatal("receiver 2 rejected a certificate valid for it")
	}
}

func TestShouldServeDedupsPerRequesterAndCut(t *testing.T) {
	tr := newTestTracker(t, 1)
	c := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 1}
	tr.RecordLocal(c, "snap")
	for _, v := range []types.ProcessID{2, 3} {
		tr.NoteVote(v, vote(v, c))
	}
	if !tr.ShouldServe(4, 0) {
		t.Fatal("first request refused")
	}
	if tr.ShouldServe(4, 0) {
		t.Fatal("replayed nonce served twice at one cut")
	}
	if !tr.ShouldServe(3, 0) {
		t.Fatal("distinct requester refused")
	}
	// A new cut resets the dedup for the new cut only.
	c2 := Checkpoint{Slot: 16, StateDigest: 2, LogDigest: 2}
	tr.RecordLocal(c2, "snap2")
	for _, v := range []types.ProcessID{2, 3} {
		tr.NoteVote(v, vote(v, c2))
	}
	if !tr.ShouldServe(4, 0) {
		t.Fatal("request at the new cut refused")
	}
}

func TestShouldServeRetryNoncesAndCap(t *testing.T) {
	tr := newTestTracker(t, 1)
	c := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 1}
	tr.RecordLocal(c, "snap")
	for _, v := range []types.ProcessID{2, 3} {
		tr.NoteVote(v, vote(v, c))
	}
	if !tr.ShouldServe(4, 5) {
		t.Fatal("first request refused")
	}
	if tr.ShouldServe(4, 5) {
		t.Fatal("replayed nonce re-served")
	}
	if tr.ShouldServe(4, 3) {
		t.Fatal("older nonce re-served")
	}
	if !tr.ShouldServe(4, 6) {
		t.Fatal("genuine retry (higher nonce) refused")
	}
	if !tr.ShouldServe(4, 9) {
		t.Fatal("third response (under the cap) refused")
	}
	// The amplification cap: however many fresh nonces the requester burns,
	// responses per (requester, cut) stop at maxServesPerCut.
	for nonce := 10; nonce < 30; nonce++ {
		if tr.ShouldServe(4, nonce) {
			t.Fatalf("nonce %d served beyond the per-cut cap", nonce)
		}
	}
	// Another requester is unaffected by 4's burn.
	if !tr.ShouldServe(3, 0) {
		t.Fatal("distinct requester refused after another's cap")
	}
}

func TestFoldEntryChainIsInjectiveAcrossBoundaries(t *testing.T) {
	// Folding ("ab", "c") and ("a", "bc") must differ: the length prefix in
	// FoldEntry keeps the chain injective across command boundaries.
	h1 := FoldEntry(FoldEntry(InitialLogDigest, 0, 1, "ab"), 1, 2, "c")
	h2 := FoldEntry(FoldEntry(InitialLogDigest, 0, 1, "a"), 1, 2, "bc")
	if h1 == h2 {
		t.Fatal("chain digest collided across command boundaries")
	}
	if FoldEntry(InitialLogDigest, 0, 1, "x") == FoldEntry(InitialLogDigest, 1, 1, "x") {
		t.Fatal("chain digest ignores slot")
	}
	if FoldEntry(InitialLogDigest, 0, 1, "x") == FoldEntry(InitialLogDigest, 0, 2, "x") {
		t.Fatal("chain digest ignores proposer")
	}
}

func TestTrackerConfigValidation(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	if _, err := NewTracker(1, spec, nil, 8); err == nil {
		t.Error("nil authority accepted")
	}
	if _, err := NewTracker(1, spec, authorityOf(1), 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSnapshotRetentionBounded(t *testing.T) {
	tr := newTestTracker(t, 1)
	for cut := 8; cut <= 800; cut += 8 {
		c := Checkpoint{Slot: cut, StateDigest: uint64(cut), LogDigest: uint64(cut)}
		tr.RecordLocal(c, fmt.Sprintf("snap-%d", cut))
		for _, v := range []types.ProcessID{2, 3} {
			tr.NoteVote(v, vote(v, c))
		}
	}
	if got := tr.SnapshotsRetained(); got != 1 {
		t.Fatalf("retained %d snapshots after 100 certified cuts, want 1", got)
	}
	if got := tr.PendingCuts(); got != 0 {
		t.Fatalf("retained %d pending cuts, want 0", got)
	}
}

func TestPendingCutCapConfigurable(t *testing.T) {
	tr := newTestTracker(t, 1)
	tr.SetMaxPendingCuts(4)
	if got := tr.MaxPendingCuts(); got != 4 {
		t.Fatalf("cap = %d after SetMaxPendingCuts(4)", got)
	}
	// Out-of-range overrides are ignored: a tracker must always be able to
	// hold at least the cut it is certifying.
	tr.SetMaxPendingCuts(0)
	tr.SetMaxPendingCuts(-3)
	if got := tr.MaxPendingCuts(); got != 4 {
		t.Fatalf("cap = %d after invalid overrides, want 4", got)
	}
	// Spam far-future cuts well past the tightened cap.
	for i := 1; i <= 200; i++ {
		tr.NoteVote(4, vote(4, Checkpoint{Slot: 8 * (i + 10)}))
	}
	if got := tr.PendingCuts(); got > 4 {
		t.Fatalf("vote table grew to %d cuts under cap 4", got)
	}
	// Honest certification at the lowest cut still proceeds: eviction is
	// largest-first, so spam displaces spam, never the honest cut.
	c := Checkpoint{Slot: 8, StateDigest: 1, LogDigest: 1}
	noteVote(t, tr, 2, c)
	noteVote(t, tr, 3, c)
	if _, adv := noteVote(t, tr, 1, c); !adv {
		t.Fatal("spam displaced the honest cut under a tight cap")
	}
}
