package ckpt

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/types"
)

// testRecord builds a record whose certificate actually verifies: a real
// 2f+1 vote quorum over a snapshot-consistent checkpoint, plus a committed
// suffix.
func testRecord(t *testing.T) *Record {
	t.Helper()
	tr := newTestTracker(t, 1)
	snapshot := "#2\nk v\n"
	c := Checkpoint{Slot: 8, StateDigest: Digest(snapshot), LogDigest: 77}
	tr.RecordLocal(c, snapshot)
	for _, v := range []types.ProcessID{2, 3} {
		tr.NoteVote(v, vote(v, c))
	}
	p, ok := tr.CertPayload(true)
	if !ok {
		t.Fatal("no certified payload to persist")
	}
	return &Record{
		Cert: *p,
		Suffix: []LogEntry{
			{Slot: 8, Proposer: 1, Command: "set a b"},
			{Slot: 9, Proposer: 2, Command: "\x00noop"},
		},
	}
}

func TestStoreSaveLoadRoundTrip(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "replica.ckpt"))
	rec := testRecord(t)
	if err := s.Save(rec); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cert.Slot != rec.Cert.Slot || got.Cert.Snapshot != rec.Cert.Snapshot {
		t.Fatalf("certificate mangled: %+v", got.Cert)
	}
	if len(got.Cert.Voters) != len(rec.Cert.Voters) {
		t.Fatalf("voters mangled: %v", got.Cert.Voters)
	}
	if len(got.Suffix) != 2 || got.Suffix[0] != rec.Suffix[0] || got.Suffix[1] != rec.Suffix[1] {
		t.Fatalf("suffix mangled: %+v", got.Suffix)
	}
	// The loaded certificate still passes the state-transfer verification
	// gate — the property the restore path depends on.
	if _, ok := newTestTracker(t, 2).VerifyCertPayload(&got.Cert); !ok {
		t.Fatal("round-tripped certificate fails verification")
	}
}

func TestStoreLoadMissing(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "absent.ckpt"))
	if _, err := s.Load(); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("missing file: %v, want ErrNoRecord", err)
	}
}

func TestStoreSaveRequiresSnapshot(t *testing.T) {
	s := NewStore(filepath.Join(t.TempDir(), "replica.ckpt"))
	rec := testRecord(t)
	rec.Cert.Snapshot = ""
	if err := s.Save(rec); err == nil {
		t.Fatal("snapshotless record saved")
	}
	if err := s.Save(nil); err == nil {
		t.Fatal("nil record saved")
	}
}

// TestStoreRejectsTornWrites is the kill -9 battery: every prefix
// truncation of a valid record file — the torn states an interrupted
// non-atomic write could leave, were the rename not atomic — must be
// rejected, never half-loaded.
func TestStoreRejectsTornWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.ckpt")
	s := NewStore(path)
	if err := s.Save(testRecord(t)); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(valid); n++ {
		if err := os.WriteFile(path, valid[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(); err == nil {
			t.Fatalf("torn record of %d/%d bytes loaded", n, len(valid))
		} else if n > 0 && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("torn record of %d bytes: %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage after a valid record is equally rejected (the
	// checksum covers exactly the body; extra bytes change it).
	if err := os.WriteFile(path, append(append([]byte{}, valid...), 0xEE), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("record with trailing garbage: %v, want ErrCorrupt", err)
	}
}

// TestStoreRejectsBitFlips: single-bit corruption anywhere in the file —
// header, checksum, certificate, snapshot, suffix — fails the load.
func TestStoreRejectsBitFlips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.ckpt")
	s := NewStore(path)
	if err := s.Save(testRecord(t)); err != nil {
		t.Fatal(err)
	}
	valid, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(valid); i++ {
		flipped := append([]byte{}, valid...)
		flipped[i] ^= 0x01
		if err := os.WriteFile(path, flipped, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Load(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("bit flip at byte %d: %v, want ErrCorrupt", i, err)
		}
	}
}

// TestStoreLeftoverTempFile: a crash between the temp write and the rename
// leaves a .tmp beside the record; Load reads the (old, intact) record and
// the next Save replaces both.
func TestStoreLeftoverTempFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.ckpt")
	s := NewStore(path)
	rec := testRecord(t)
	if err := s.Save(rec); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".tmp", []byte("torn half-written garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cert.Slot != rec.Cert.Slot {
		t.Fatalf("leftover temp file corrupted the load: %+v", got.Cert)
	}
	if err := s.Save(rec); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load(); err != nil {
		t.Fatal(err)
	}
}

func TestStoreSaveIsAtomicReplacement(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "replica.ckpt")
	s := NewStore(path)
	rec := testRecord(t)
	if err := s.Save(rec); err != nil {
		t.Fatal(err)
	}
	// A second save at a later cut fully replaces the record.
	tr := newTestTracker(t, 1)
	snapshot2 := "#4\nk v2\n"
	c2 := Checkpoint{Slot: 16, StateDigest: Digest(snapshot2), LogDigest: 99}
	tr.RecordLocal(c2, snapshot2)
	for _, v := range []types.ProcessID{2, 3} {
		tr.NoteVote(v, vote(v, c2))
	}
	p2, ok := tr.CertPayload(true)
	if !ok {
		t.Fatal("no second payload")
	}
	if err := s.Save(&Record{Cert: *p2}); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cert.Slot != 16 || len(got.Suffix) != 0 {
		t.Fatalf("replacement incomplete: slot %d, %d suffix entries", got.Cert.Slot, len(got.Suffix))
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}
