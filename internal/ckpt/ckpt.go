// Package ckpt is the protocol-level checkpoint and state-transfer subsystem
// layered on the replicated log (internal/smr). It is what lets an infinite
// execution run in bounded memory: the windowed pruning of PR 4 bounds every
// *per-round* retainer, but the residue it deliberately keeps — compact RBC
// delivered-digest records, per-round justification digests, per-slot coin
// dealers — still grows linearly with slots committed. Checkpointing retires
// that residue at quorum-certified cuts, the same shape production
// asynchronous BFT systems use (PBFT's stable checkpoints, PARSEC's
// stable-block garbage collection, the vote-based checkpoint construction of
// Xu et al. 2024):
//
//	every Interval slots, a replica hashes its application state and log
//	frontier into a Checkpoint{Slot, StateDigest, LogDigest}, signs a vote
//	for it, and broadcasts the vote;
//
//	2f+1 votes on the same checkpoint form a Certificate — proof that the
//	log prefix below the cut and the state it produces are settled, however
//	asynchronous the network is (two certificates at one cut would need a
//	correct double-voter, which does not exist);
//
//	a certified checkpoint becomes the new log base: everything below the
//	cut — log entries, RBC digest records, justification digests, dealer
//	sharings — is released, because any process that still needs the prefix
//	can be served the certificate plus a snapshot instead of a replay.
//
// State transfer is the catch-up path that makes the release safe: a replica
// that lost messages (restarted) or lagged more than an interval behind the
// frontier requests the latest certificate and snapshot from its peers,
// verifies the snapshot against the certified StateDigest, installs it as
// its new log base, and rejoins live slots. Nothing uncertified is ever
// installed.
//
// Vote authentication rides the existing auth layer's pairwise link keys,
// PBFT-style: a vote carries a *MAC vector* — one entry per receiver, each
// computed under the symmetric key of the (voter, receiver) link — binding
// (voter, slot, state digest, log digest). A Byzantine replica holds only
// the keys on its own links, so it can sign its own votes (which it is
// entitled to) but cannot fabricate a correct voter's entry for a correct
// receiver. Point-to-point authentication alone would not suffice, because
// certificates are *transferable*: a replica verifies votes it never
// received first-hand, relayed inside a certificate by an untrusted peer —
// each receiver checks its own entry of every relayed vector. The
// symmetric-MAC tradeoff is PBFT's: a Byzantine *voter* can craft a vector
// whose entries verify at some receivers and not others, which can delay a
// specific replica's state transfer until a later cut certifies from
// correct votes, but can never make anyone install an uncertified state.
package ckpt

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"repro/internal/auth"
	"repro/internal/quorum"
	"repro/internal/types"
)

// Checkpoint is one cut of the replicated log: slots below Slot are covered.
// StateDigest fingerprints the application state after applying every
// committed command below the cut, LogDigest is the chained digest of the
// committed entries themselves (see FoldEntry).
type Checkpoint struct {
	Slot        int
	StateDigest uint64
	LogDigest   uint64
}

// Certificate is a checkpoint plus the quorum of votes that certifies it.
// Voters and VoteMACs are index-aligned: VoteMACs[i] is voter i's full MAC
// vector (one entry per cluster member), so the certificate stays
// verifiable — and re-servable — at every receiver. A valid certificate
// carries at least 2f+1 distinct voters whose entries for the verifying
// receiver check out.
type Certificate struct {
	Checkpoint
	Voters   []types.ProcessID
	VoteMACs [][]string
}

// InitialLogDigest is the chain seed of an empty log.
//
// The two digest kinds in this package differ deliberately. The chained
// *log* digest is the repository's shared FNV-1a (types.FNV1aString and
// friends): it is never an acceptance gate for adversary-supplied bytes —
// entries fold in as they commit through consensus, and a transferred
// replica installs the certificate's digest as an opaque continuation
// value — so, like RBC's delivered-digest records, it only needs to make
// accidental divergence loud. The *state* digest is different: state
// transfer accepts a snapshot byte string from a single untrusted
// responder if and only if it digests to the quorum-certified value, which
// makes second-preimage resistance load-bearing — FNV-1a is algebraically
// invertible and would let a Byzantine responder craft a poisoned snapshot
// matching an honest digest. Digest therefore truncates SHA-256: finding a
// second preimage of a value fixed by honest voters costs ~2^64 work (the
// 64-bit truncation is the wire-format tradeoff; collisions do not help an
// attacker, because the digest is certified before any adversary input).
const InitialLogDigest uint64 = types.FNV1aInit

// Digest fingerprints a snapshot for certification and state-transfer
// verification: the first eight bytes of SHA-256 (see the discussion at
// InitialLogDigest for why this one digest must be cryptographic).
func Digest(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// FoldEntry extends a chained log digest by one committed entry. The chain
// starts at InitialLogDigest; after folding entries 0..s-1 in slot order the
// digest identifies the full committed history — which is how a replica
// whose in-memory log is a post-checkpoint suffix still proves its complete
// history: the certificate pins the prefix digest and the chain continues
// from it.
func FoldEntry(prev uint64, slot int, proposer types.ProcessID, command string) uint64 {
	h := types.FNV1aUint64(prev, uint64(slot))
	h = types.FNV1aUint64(h, uint64(int64(proposer)))
	h = types.FNV1aUint64(h, uint64(len(command)))
	return types.FNV1aString(h, command)
}

// Authority is one replica's endpoint of the vote-authentication scheme: a
// keyring of pairwise link keys (derived, like the transport's, from the
// cluster master secret via internal/auth) plus the cluster membership,
// which fixes every vector's receiver indexing. A replica signs its votes
// as a full vector — one MAC per receiver — and verifies relayed votes by
// checking its own entry under the (voter, me) link key, which a Byzantine
// relay cannot know for correct pairs.
type Authority struct {
	keyring *auth.Keyring
	peers   []types.ProcessID
	index   map[types.ProcessID]int
}

// NewAuthority builds the vote authenticator of process me among peers,
// from the cluster checkpoint secret (trusted setup: each process receives
// only its own links' keys).
func NewAuthority(secret []byte, me types.ProcessID, peers []types.ProcessID) *Authority {
	a := &Authority{
		keyring: auth.NewKeyring(auth.DeriveKey(secret, "ckpt-vote"), me),
		peers:   append([]types.ProcessID(nil), peers...),
		index:   make(map[types.ProcessID]int, len(peers)),
	}
	for i, p := range peers {
		if _, dup := a.index[p]; !dup {
			a.index[p] = i
		}
	}
	return a
}

// voteMsg is the byte string every entry of a vote's MAC vector covers:
// voter, slot, both digests. (The receiver is bound by the link key, not
// the message.)
func voteMsg(voter types.ProcessID, c Checkpoint) []byte {
	var buf [32]byte
	binary.BigEndian.PutUint64(buf[0:], uint64(int64(voter)))
	binary.BigEndian.PutUint64(buf[8:], uint64(int64(c.Slot)))
	binary.BigEndian.PutUint64(buf[16:], c.StateDigest)
	binary.BigEndian.PutUint64(buf[24:], c.LogDigest)
	return buf[:]
}

// SignVector MACs this replica's own vote for every receiver, in peer
// order.
func (a *Authority) SignVector(c Checkpoint) []string {
	msg := voteMsg(a.keyring.Owner(), c)
	macs := make([]string, len(a.peers))
	for i, p := range a.peers {
		macs[i] = string(a.keyring.Sign(p, msg))
	}
	return macs
}

// VerifyEntry reports whether this replica's entry of a vote's MAC vector
// authenticates voter's vote for c.
func (a *Authority) VerifyEntry(voter types.ProcessID, c Checkpoint, macs []string) bool {
	me, ok := a.index[a.keyring.Owner()]
	if !ok || len(macs) != len(a.peers) {
		return false
	}
	// The uniform path covers relayed copies of this replica's own votes
	// too: SignVector MACed the self entry under the (me, me) link key.
	return a.keyring.Check(voter, voteMsg(voter, c), []byte(macs[me])) == nil
}

// VerifyCert reports whether cert carries a quorum (spec.Decide() = 2f+1)
// of distinct voters whose entries verify *at this replica*. A Byzantine
// voter may have crafted a vector that verifies here and nowhere else —
// which is why receivers re-verify rather than trust a relayed "valid"
// claim, and why certificates keep every matching voter instead of a bare
// quorum.
func (a *Authority) VerifyCert(cert Certificate, spec quorum.Spec) bool {
	if len(cert.Voters) != len(cert.VoteMACs) || len(cert.Voters) < spec.Decide() {
		return false
	}
	seen := make(map[types.ProcessID]bool, len(cert.Voters))
	valid := 0
	for i, voter := range cert.Voters {
		if !voter.Valid() || seen[voter] {
			return false
		}
		seen[voter] = true
		if a.VerifyEntry(voter, cert.Checkpoint, cert.VoteMACs[i]) {
			valid++
		}
	}
	return valid >= spec.Decide()
}

// DefaultMaxPendingCuts bounds the distinct uncertified cuts a tracker holds
// votes for (overridable per tracker via SetMaxPendingCuts). Honest clusters
// have at most a handful in flight (the spread between the slowest voter's
// cut and the fastest's); the cap is what stops a Byzantine voter minting
// votes for unboundedly many far-future cuts from growing the vote table.
// Eviction is deterministic — the largest tracked cut goes first, and new
// cuts beyond a full table are rejected — so spam can only displace other
// spam: certification always proceeds at the lowest pending cuts, which is
// where honest votes are.
const DefaultMaxPendingCuts = 64

// maxServesPerCut bounds how many full state-transfer responses one replica
// sends a single requester for a single cut, however many retry nonces the
// requester burns. Three covers the honest worst case — the first response
// evaporating in the requester's outage, plus one crash/retry cycle — while
// keeping a Byzantine re-requester's amplification a small constant.
const maxServesPerCut = 3

// Tracker is one replica's checkpoint state: it folds votes into pending
// cuts, certifies at quorum, retains the snapshots this replica took at its
// own cuts (for serving state transfer), and deduplicates the transfers it
// serves. Not safe for concurrent use; the owning replica serializes input.
type Tracker struct {
	me   types.ProcessID
	spec quorum.Spec
	auth *Authority

	interval   int
	maxPending int

	votes     map[int]*cutVotes // pending votes by cut slot
	latest    Certificate
	certified bool

	snapshots map[int]string // serialized app state at locally reached cuts
	served    map[serveKey]*serveRec
}

type serveKey struct {
	to  types.ProcessID
	cut int
}

// serveRec tracks the transfers already sent for one (requester, cut) pair:
// the highest request nonce answered and how many responses went out.
type serveRec struct {
	lastNonce int
	count     int
}

// cutVotes accumulates one cut's votes: first vote per voter wins, counted
// per (state, log) digest pair.
type cutVotes struct {
	voters map[types.ProcessID]voteRec
}

type voteRec struct {
	c    Checkpoint
	macs []string // the vote's full MAC vector, retained for relaying
}

// NewTracker creates a tracker for one replica. interval is the checkpoint
// cadence in slots (> 0).
func NewTracker(me types.ProcessID, spec quorum.Spec, a *Authority, interval int) (*Tracker, error) {
	if a == nil {
		return nil, fmt.Errorf("ckpt: tracker requires an authority")
	}
	if interval <= 0 {
		return nil, fmt.Errorf("ckpt: interval %d, want > 0", interval)
	}
	return &Tracker{
		me:         me,
		spec:       spec,
		auth:       a,
		interval:   interval,
		maxPending: DefaultMaxPendingCuts,
		votes:      make(map[int]*cutVotes),
		snapshots:  make(map[int]string),
		served:     make(map[serveKey]*serveRec),
	}, nil
}

// Interval returns the checkpoint cadence in slots.
func (t *Tracker) Interval() int { return t.interval }

// SetMaxPendingCuts overrides the pending-cut cap (DefaultMaxPendingCuts).
// Values below one are ignored: a tracker must always be able to hold at
// least the cut it is certifying.
func (t *Tracker) SetMaxPendingCuts(n int) {
	if n >= 1 {
		t.maxPending = n
	}
}

// MaxPendingCuts returns the active pending-cut cap.
func (t *Tracker) MaxPendingCuts() int { return t.maxPending }

// RecordLocal registers this replica's own checkpoint at a cut it just
// committed through: the snapshot is retained for state transfer, the vote
// is signed and folded locally, and the payload to broadcast is returned.
// If the local vote completes a quorum (the rest of the cluster voted
// first), the new certificate is returned with advanced == true.
func (t *Tracker) RecordLocal(c Checkpoint, snapshot string) (*types.CkptVotePayload, Certificate, bool) {
	if c.Slot >= t.floor() {
		// Below the certified cut the snapshot is already superseded; at or
		// above it, retain it — reaching a cut the cluster certified early
		// (from the others' votes) is what arms this replica to serve
		// state transfer for it.
		t.snapshots[c.Slot] = snapshot
	}
	macs := t.auth.SignVector(c)
	cert, advanced := t.noteVote(t.me, c, macs)
	return &types.CkptVotePayload{
		Slot: c.Slot, StateDigest: c.StateDigest, LogDigest: c.LogDigest, MACs: macs,
	}, cert, advanced
}

// NoteVote folds a received vote. It returns the newly formed certificate
// with advanced == true when this vote completed a quorum above the current
// latest cut, and with verified == true whenever the vote's MAC entry for
// this replica checked out (callers must not act on any field of an
// unverified vote, its claimed slot included). Malformed, mis-signed,
// duplicate, stale, and off-cadence votes fold nothing.
func (t *Tracker) NoteVote(from types.ProcessID, p *types.CkptVotePayload) (cert Certificate, advanced, verified bool) {
	if p == nil {
		return Certificate{}, false, false
	}
	c := Checkpoint{Slot: p.Slot, StateDigest: p.StateDigest, LogDigest: p.LogDigest}
	if !t.auth.VerifyEntry(from, c, p.MACs) {
		return Certificate{}, false, false
	}
	cert, advanced = t.noteVote(from, c, p.MACs)
	return cert, advanced, true
}

func (t *Tracker) noteVote(from types.ProcessID, c Checkpoint, macs []string) (Certificate, bool) {
	if c.Slot <= t.floor() || c.Slot%t.interval != 0 {
		return Certificate{}, false
	}
	cv := t.votes[c.Slot]
	if cv == nil {
		if len(t.votes) >= t.maxPending && !t.evictFor(c.Slot) {
			return Certificate{}, false
		}
		cv = &cutVotes{voters: make(map[types.ProcessID]voteRec)}
		t.votes[c.Slot] = cv
	}
	if _, dup := cv.voters[from]; dup {
		return Certificate{}, false // one vote per voter per cut, first wins
	}
	cv.voters[from] = voteRec{c: c, macs: macs}
	matching := 0
	for _, rec := range cv.voters {
		if rec.c == c {
			matching++
		}
	}
	if matching < t.spec.Decide() {
		return Certificate{}, false
	}
	// Every matching voter goes into the certificate, not a bare quorum: a
	// Byzantine voter's vector may fail to verify at other receivers, and
	// the extra correct votes are what keep the certificate installable
	// there anyway.
	cert := Certificate{Checkpoint: c}
	for voter, rec := range cv.voters {
		if rec.c == c {
			cert.Voters = append(cert.Voters, voter)
		}
	}
	sortVoters(cert.Voters)
	cert.VoteMACs = make([][]string, len(cert.Voters))
	for i, voter := range cert.Voters {
		cert.VoteMACs[i] = cv.voters[voter].macs
	}
	t.adopt(cert)
	return cert, true
}

// evictFor makes room in a full vote table for a new cut. Far-future cuts
// beyond everything tracked are rejected; otherwise the largest tracked cut
// is dropped (deterministic, and always spam-first: honest cuts certify and
// leave the table long before 64 of them accumulate).
func (t *Tracker) evictFor(slot int) bool {
	largest := -1
	for s := range t.votes {
		if s > largest {
			largest = s
		}
	}
	if slot >= largest {
		return false
	}
	delete(t.votes, largest)
	return true
}

// VerifyCertPayload validates a received certificate payload: quorum of
// distinct, correctly signed votes, and — when the payload carries a
// snapshot — the snapshot digesting to the certified StateDigest. It does
// not touch tracker state.
func (t *Tracker) VerifyCertPayload(p *types.CkptCertPayload) (Certificate, bool) {
	if p == nil {
		return Certificate{}, false
	}
	cert := Certificate{
		Checkpoint: Checkpoint{Slot: p.Slot, StateDigest: p.StateDigest, LogDigest: p.LogDigest},
		Voters:     p.Voters,
		VoteMACs:   p.VoteMACs,
	}
	if !t.auth.VerifyCert(cert, t.spec) {
		return Certificate{}, false
	}
	if p.Snapshot != "" && Digest(p.Snapshot) != p.StateDigest {
		return Certificate{}, false
	}
	return cert, true
}

// Adopt installs an externally received certificate (with the snapshot that
// came with it) as the latest, if it is ahead of the current one. The caller
// must have verified both via VerifyCertPayload.
func (t *Tracker) Adopt(cert Certificate, snapshot string) bool {
	if t.certified && cert.Slot <= t.latest.Slot {
		return false
	}
	if snapshot != "" {
		// A bare certificate (no snapshot) still advances the cut, but
		// leaves nothing to serve; only real snapshots are retained.
		t.snapshots[cert.Slot] = snapshot
	}
	t.adopt(cert)
	return true
}

// adopt sets the latest certificate and releases everything below it: votes
// for superseded cuts and snapshots below the cut (the one *at* the cut is
// what state transfer serves).
func (t *Tracker) adopt(cert Certificate) {
	t.latest = cert
	t.certified = true
	for s := range t.votes {
		if s <= cert.Slot {
			delete(t.votes, s)
		}
	}
	for s := range t.snapshots {
		if s < cert.Slot {
			delete(t.snapshots, s)
		}
	}
	for k := range t.served {
		if k.cut < cert.Slot {
			delete(t.served, k)
		}
	}
}

// Latest returns the highest certified checkpoint.
func (t *Tracker) Latest() (Certificate, bool) { return t.latest, t.certified }

// CertPayload builds the wire form of the latest certificate. withSnapshot
// attaches the retained snapshot at the cut (for state-transfer responses);
// ok is false when no certificate exists or a requested snapshot is not
// held (certified from votes without ever reaching the cut locally).
func (t *Tracker) CertPayload(withSnapshot bool) (*types.CkptCertPayload, bool) {
	if !t.certified {
		return nil, false
	}
	p := &types.CkptCertPayload{
		Slot:        t.latest.Slot,
		StateDigest: t.latest.StateDigest,
		LogDigest:   t.latest.LogDigest,
		Voters:      t.latest.Voters,
		VoteMACs:    t.latest.VoteMACs,
	}
	if withSnapshot {
		snap, ok := t.snapshots[t.latest.Slot]
		if !ok {
			return nil, false
		}
		p.Snapshot = snap
	}
	return p, true
}

// ShouldServe reports whether a state transfer of the latest cut to the
// given requester should go out, and marks it served. The first request for
// a (requester, cut) pair is always served; afterwards only a strictly
// higher nonce — the requester's retry counter, incremented per request —
// gets another response, and never more than maxServesPerCut in total. A
// genuine retry (the previous response was lost in the requester's outage,
// or came back stale/unverifiable from a Byzantine responder) therefore
// gets through, while replayed or duplicated requests stay deduplicated and
// a hostile re-requester is amplification-bounded by a small constant.
func (t *Tracker) ShouldServe(to types.ProcessID, nonce int) bool {
	if !t.certified {
		return false
	}
	k := serveKey{to: to, cut: t.latest.Slot}
	rec := t.served[k]
	if rec == nil {
		t.served[k] = &serveRec{lastNonce: nonce, count: 1}
		return true
	}
	if nonce <= rec.lastNonce || rec.count >= maxServesPerCut {
		return false
	}
	rec.lastNonce = nonce
	rec.count++
	return true
}

// floor is the cut at or below which votes are dead (already certified).
func (t *Tracker) floor() int {
	if !t.certified {
		return 0
	}
	return t.latest.Slot
}

// PendingCuts returns how many uncertified cuts hold votes (diagnostics;
// bounded by the pending-cut cap).
func (t *Tracker) PendingCuts() int { return len(t.votes) }

// SnapshotAt returns the retained snapshot at a cut this replica reached
// locally or installed by transfer (ok = false when released or never held).
func (t *Tracker) SnapshotAt(cut int) (string, bool) {
	s, ok := t.snapshots[cut]
	return s, ok
}

// SnapshotsRetained returns how many cut snapshots the tracker holds
// (diagnostics; bounded by the pending cuts above the certified one, plus
// the certified cut's own snapshot).
func (t *Tracker) SnapshotsRetained() int { return len(t.snapshots) }

// sortVoters orders process IDs ascending (insertion sort; quorum-sized).
func sortVoters(ps []types.ProcessID) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}
