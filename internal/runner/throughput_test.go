package runner

import (
	"os"
	"reflect"
	"testing"
)

// TestThroughputWorkerIndependence: the whole grid's output must be bitwise
// identical whatever the worker count — points are keyed by grid index, and
// each point is a pure function of (config, seed).
func TestThroughputWorkerIndependence(t *testing.T) {
	cfg := ThroughputConfig{
		N: 4, F: 1,
		Entries: 24,
		Batches: []int{1, 4},
		Depths:  []int{1, 2},
		Seed:    7,
	}
	cfg.Workers = 1
	serial, err := RunThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := RunThroughput(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("throughput grid depends on worker count:\n 1: %+v\n 4: %+v", serial, parallel)
	}
}

// TestThroughputBatchScaling: batching must raise committed entries per
// delivery — the point of the whole engine. Each point must also be healthy
// (no mismatches, drops, duplicates, or budget exhaustion) and meet its
// entry target.
func TestThroughputBatchScaling(t *testing.T) {
	points, err := RunThroughput(ThroughputConfig{
		N: 4, F: 1,
		Entries: 48,
		Batches: []int{1, 8},
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Mismatches != 0 || p.SubmitDropped != 0 || p.DuplicateCommands != 0 || p.Exhausted {
			t.Fatalf("unhealthy point %+v", p)
		}
		if p.Entries < 48 {
			t.Fatalf("batch=%d committed %d entries, want >= 48", p.Batch, p.Entries)
		}
	}
	base, batched := points[0], points[1]
	if batched.EntriesPerKDeliveries() < 4*base.EntriesPerKDeliveries() {
		t.Fatalf("batch=8 throughput %.2f entries/kdelivery, want >= 4x batch=1's %.2f",
			batched.EntriesPerKDeliveries(), base.EntriesPerKDeliveries())
	}
}

// TestThroughputCheckpointIndependence: at equal frontiers the digests must
// not depend on the checkpoint cadence, batched or not — checkpointing
// retires residue, it never moves what commits.
func TestThroughputCheckpointIndependence(t *testing.T) {
	run := func(every int) []*ThroughputPoint {
		points, err := RunThroughput(ThroughputConfig{
			N: 4, F: 1,
			Entries:         32,
			Batches:         []int{4},
			Depths:          []int{2},
			CheckpointEvery: every,
			Seed:            5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return points
	}
	off, on := run(0), run(4)
	for i := range off {
		if off[i].LogDigest != on[i].LogDigest || off[i].StateDigest != on[i].StateDigest {
			t.Fatalf("digests depend on checkpoint cadence:\n off: %+v\n on:  %+v", off[i], on[i])
		}
		if off[i].Entries != on[i].Entries {
			t.Fatalf("entry count depends on checkpoint cadence: %d vs %d", off[i].Entries, on[i].Entries)
		}
	}
}

// TestThroughputPipelinedRestartCatchup: the PR 5 kill/restart invariant
// must hold with batching and pipelining on — a victim revived empty
// catches up by state transfer and its digests match the log everyone else
// built.
func TestThroughputPipelinedRestartCatchup(t *testing.T) {
	cfg := RestartCatchupSpec(4, 32, 8, 9)
	cfg.Batch = 4
	cfg.Depth = 2
	res, err := RunSMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatalf("batched restart run exhausted its budget: %+v", res)
	}
	if res.VictimDown {
		t.Fatalf("victim never came back: %+v", res)
	}
	if res.Mismatches != 0 || res.DuplicateCommands != 0 {
		t.Fatalf("batched restart run diverged: mismatches=%d duplicates=%d", res.Mismatches, res.DuplicateCommands)
	}
	if res.Transfers == 0 {
		t.Fatalf("victim caught up without a state transfer (crash schedule too gentle): %+v", res)
	}
}

// TestThroughputFrontier runs the n=64 grid point the experiment table
// reports, gated like every frontier-size property.
func TestThroughputFrontier(t *testing.T) {
	if os.Getenv("REPRO_HARNESS_FULL") == "" {
		t.Skip("set REPRO_HARNESS_FULL=1 for frontier-size (n=64) throughput runs")
	}
	points, err := RunThroughput(ThroughputConfig{
		N: 64, F: 21,
		Entries: 32,
		Batches: []int{1, 16},
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Mismatches != 0 || p.SubmitDropped != 0 || p.DuplicateCommands != 0 || p.Exhausted {
			t.Fatalf("unhealthy frontier point %+v", p)
		}
	}
	if points[1].EntriesPerKDeliveries() < 4*points[0].EntriesPerKDeliveries() {
		t.Fatalf("frontier batching win too small: %.3f vs %.3f entries/kdelivery",
			points[1].EntriesPerKDeliveries(), points[0].EntriesPerKDeliveries())
	}
}
