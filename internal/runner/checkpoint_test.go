package runner

import (
	"encoding/json"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// ckConfig is the small, fast, adversarial configuration the checkpoint
// tests sweep.
func ckConfig() Config {
	return Config{
		N: 7, F: 2, Byzantine: -1,
		Protocol: ProtocolBracha, Coin: CoinCommon,
		Adversary: AdvEquivocator, Scheduler: SchedRushByz,
		Inputs: InputSplit,
	}
}

// aggJSON renders an aggregate for byte comparison.
func aggJSON(t *testing.T, agg *Aggregate) string {
	t.Helper()
	buf, err := json.Marshal(agg)
	if err != nil {
		t.Fatal(err)
	}
	return string(buf)
}

// TestSweepSeedRangeMatchesSerialFold: the streamed, checkpointed aggregate
// must equal folding serial Run results into a fresh aggregate by hand.
func TestSweepSeedRangeMatchesSerialFold(t *testing.T) {
	seeds := SeedRange{From: 5, To: 45}
	want := NewAggregate()
	for s := seeds.From; s < seeds.To; s++ {
		cfg := ckConfig()
		cfg.Seed = s
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want.Observe(s, res)
	}
	got, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if aggJSON(t, got) != aggJSON(t, want) {
		t.Errorf("streamed aggregate differs from serial fold:\n got %s\nwant %s",
			aggJSON(t, got), aggJSON(t, want))
	}
}

// TestSweepSeedRangeWorkerIndependence: the aggregate is byte-identical for
// every worker count.
func TestSweepSeedRangeWorkerIndependence(t *testing.T) {
	seeds := SeedRange{From: 1, To: 33}
	base, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5, 16} {
		got, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if aggJSON(t, got) != aggJSON(t, base) {
			t.Errorf("workers=%d: aggregate differs from workers=1", workers)
		}
	}
}

// runInterrupted sweeps the spec to completion, killing it via the Stop hook
// after pseudo-random numbers of runs and resuming from the checkpoint each
// time, and returns the final aggregate and the number of kills.
func runInterrupted(t *testing.T, spec SweepSpec, rng *rand.Rand) (*Aggregate, int) {
	t.Helper()
	kills := 0
	for attempt := 0; ; attempt++ {
		if attempt > 1000 {
			t.Fatal("sweep never completed")
		}
		remaining := 1 + rng.Intn(9)
		spec.Stop = func() bool {
			remaining--
			return remaining <= 0
		}
		agg, err := SweepSeedRange(spec)
		if errors.Is(err, ErrStopped) {
			kills++
			spec.Resume = true
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		return agg, kills
	}
}

// TestCheckpointResumeBitwiseIdentical is the interruption property test: a
// sweep killed at random points and resumed from its checkpoints — any
// number of times, at any worker count — must end with an aggregate and a
// final checkpoint file byte-identical to an uninterrupted sweep's.
func TestCheckpointResumeBitwiseIdentical(t *testing.T) {
	seeds := SeedRange{From: 1, To: 49}
	dir := t.TempDir()

	// The uninterrupted reference.
	refPath := filepath.Join(dir, "ref.json")
	refAgg, err := SweepSeedRange(SweepSpec{
		Cfg: ckConfig(), Seeds: seeds, Workers: 3, Checkpoint: refPath, Every: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	refFile, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(99))
	for _, workers := range []int{1, 2, 6} {
		path := filepath.Join(dir, "interrupted.json")
		if err := os.RemoveAll(path); err != nil {
			t.Fatal(err)
		}
		agg, kills := runInterrupted(t, SweepSpec{
			Cfg: ckConfig(), Seeds: seeds, Workers: workers, Checkpoint: path, Every: 7,
		}, rng)
		if kills == 0 {
			t.Fatalf("workers=%d: sweep was never killed; test is vacuous", workers)
		}
		if aggJSON(t, agg) != aggJSON(t, refAgg) {
			t.Errorf("workers=%d after %d kills: aggregate differs from uninterrupted sweep", workers, kills)
		}
		file, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(file) != string(refFile) {
			t.Errorf("workers=%d after %d kills: final checkpoint file differs from uninterrupted sweep", workers, kills)
		}
	}
}

// TestCheckpointResumeRBC: the same kill/resume identity holds for
// reliable-broadcast sweeps.
func TestCheckpointResumeRBC(t *testing.T) {
	rbcCfg := RBCConfig{N: 10, F: 3, Byzantine: 3, SenderEquivocates: true}
	seeds := SeedRange{From: 1, To: 41}
	dir := t.TempDir()

	refAgg, err := SweepSeedRange(SweepSpec{RBC: &rbcCfg, Seeds: seeds, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "rbc.json")
	rng := rand.New(rand.NewSource(7))
	agg, kills := runInterrupted(t, SweepSpec{
		RBC: &rbcCfg, Seeds: seeds, Workers: 4, Checkpoint: path, Every: 5,
	}, rng)
	if kills == 0 {
		t.Fatal("sweep was never killed; test is vacuous")
	}
	if aggJSON(t, agg) != aggJSON(t, refAgg) {
		t.Error("resumed RBC aggregate differs from uninterrupted sweep")
	}
}

// TestCheckpointValidation: resume rejects missing files, foreign configs,
// and foreign seed ranges.
func TestCheckpointValidation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.json")
	seeds := SeedRange{From: 1, To: 9}

	if _, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Resume: true}); err == nil {
		t.Error("resume without checkpoint path accepted")
	}
	if _, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Checkpoint: path, Resume: true}); err == nil {
		t.Error("resume from missing checkpoint accepted")
	}

	if _, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Checkpoint: path, Workers: 2}); err != nil {
		t.Fatal(err)
	}

	other := ckConfig()
	other.Adversary = AdvLiar
	if _, err := SweepSeedRange(SweepSpec{Cfg: other, Seeds: seeds, Checkpoint: path, Resume: true}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("config mismatch error = %v, want ErrCheckpointMismatch", err)
	}
	if _, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: SeedRange{From: 1, To: 99}, Checkpoint: path, Resume: true}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("seed-range mismatch error = %v, want ErrCheckpointMismatch", err)
	}
	rbcCfg := RBCConfig{N: 7, F: 2}
	if _, err := SweepSeedRange(SweepSpec{RBC: &rbcCfg, Seeds: seeds, Checkpoint: path, Resume: true}); !errors.Is(err, ErrCheckpointMismatch) {
		t.Errorf("kind mismatch error = %v, want ErrCheckpointMismatch", err)
	}

	// Resuming a completed sweep is a no-op that returns the final state.
	agg, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Runs != seeds.Len() {
		t.Errorf("resumed completed sweep reports %d runs, want %d", agg.Runs, seeds.Len())
	}
}

// TestCheckpointResumeIgnoresSpecSeed: the Seed field inside the swept
// config is documented as ignored, so a caller-supplied nonzero Seed must
// neither change results nor break the resume match, and must never be
// mutated in the caller's RBCConfig.
func TestCheckpointResumeIgnoresSpecSeed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	seeds := SeedRange{From: 1, To: 21}
	cfg := ckConfig()
	cfg.Seed = 7777
	stopped := 0
	_, err := SweepSeedRange(SweepSpec{
		Cfg: cfg, Seeds: seeds, Checkpoint: path, Every: 4,
		Stop: func() bool { stopped++; return stopped >= 9 },
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("stop hook did not fire: %v", err)
	}
	agg, err := SweepSeedRange(SweepSpec{Cfg: cfg, Seeds: seeds, Checkpoint: path, Resume: true})
	if err != nil {
		t.Fatalf("resume with nonzero spec seed rejected: %v", err)
	}
	plain, err := SweepSeedRange(SweepSpec{Cfg: ckConfig(), Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if aggJSON(t, agg) != aggJSON(t, plain) {
		t.Error("nonzero spec seed changed sweep results")
	}

	rbcCfg := RBCConfig{N: 7, F: 2, Seed: 42}
	if _, err := SweepSeedRange(SweepSpec{RBC: &rbcCfg, Seeds: SeedRange{From: 1, To: 5}}); err != nil {
		t.Fatal(err)
	}
	if rbcCfg.Seed != 42 {
		t.Errorf("caller's RBCConfig mutated: seed = %d", rbcCfg.Seed)
	}
}

// TestCheckpointRejectsCorruptManifest: tampered or truncated manifests are
// refused instead of being resumed into nonsense.
func TestCheckpointRejectsCorruptManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	seeds := SeedRange{From: 1, To: 9}
	stops := 0
	if _, err := SweepSeedRange(SweepSpec{
		Cfg: ckConfig(), Seeds: seeds, Checkpoint: path,
		Stop: func() bool { stops++; return stops >= 4 },
	}); !errors.Is(err, ErrStopped) {
		t.Fatalf("setup sweep: %v", err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(mutate func(*Checkpoint)) error {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(ck)
		if err := ck.Save(path); err != nil {
			t.Fatal(err)
		}
		_, err = LoadCheckpoint(path)
		return err
	}
	if err := tamper(func(ck *Checkpoint) { ck.Completed.To = 999 }); err == nil {
		t.Error("completed range beyond seeds accepted")
	}
	if err := tamper(func(ck *Checkpoint) { ck.Completed = SeedRange{From: 4, To: 6} }); err == nil {
		t.Error("completed range not anchored at seeds.from accepted")
	}
	if err := tamper(func(ck *Checkpoint) { ck.Aggregate.Runs = 1 }); err == nil {
		t.Error("aggregate run count disagreeing with completed range accepted")
	}
	if err := tamper(func(ck *Checkpoint) { ck.Aggregate.Messages = nil }); err == nil {
		t.Error("aggregate with missing summaries accepted")
	}
}
