// Checkpointable streaming sweeps.
//
// A seed-range sweep ([SeedA, SeedB) × one configuration) streams every run
// through SweepStream into an Aggregate — online mean/variance/percentile
// sketches (internal/metrics) plus a violation tally (internal/check) — so a
// million-run sweep costs O(workers) memory, and writes periodic checkpoint
// files so a killed sweep resumes where it left off.
//
// # Checkpoint file format
//
// A checkpoint is a JSON manifest (written atomically: temp file + rename):
//
//	{
//	  "version": 1,                 // manifest format version
//	  "kind": "consensus",          // or "rbc"
//	  "config": { ... },            // the swept runner.Config (or "rbc_config")
//	  "seeds": {"from": a, "to": b},     // the full half-open seed range
//	  "completed": {"from": a, "to": c}, // the reduced prefix, a ≤ c ≤ b
//	  "aggregate": { ... }          // full reducer state, see Aggregate
//	}
//
// Because runs are reduced in strict seed order, the completed work is always
// a single prefix [a, c) of the range: resuming means restoring the aggregate
// and continuing at seed c.
//
// # Determinism contract
//
// Each run is a pure function of (config, seed) and the reducer consumes
// results in seed order, so the aggregate after seed s is a pure function of
// (config, [SeedA, s]) — independent of worker count, GOMAXPROCS, goroutine
// scheduling, and of whether the sweep was interrupted and resumed zero or
// more times at arbitrary checkpoints. Every sketch in the aggregate
// serializes its entire state losslessly (Go's JSON float64 encoding
// round-trips exactly), so a resumed sweep's final aggregate — and its final
// checkpoint file — is byte-identical to an uninterrupted sweep's. The
// property tests in checkpoint_test.go enforce exactly this.

package runner

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"repro/internal/check"
	"repro/internal/metrics"
)

// SeedRange is a half-open interval of run seeds [From, To).
type SeedRange struct {
	From int64 `json:"from"`
	To   int64 `json:"to"`
}

// Len returns the number of seeds in the range.
func (r SeedRange) Len() int64 {
	if r.To < r.From {
		return 0
	}
	return r.To - r.From
}

// String implements fmt.Stringer.
func (r SeedRange) String() string { return fmt.Sprintf("[%d, %d)", r.From, r.To) }

// Aggregate is the constant-memory reduction of a sweep: counters, streaming
// summaries of the per-run measurements, and the violation tally. Its whole
// state is JSON-serializable and restores bit for bit (see the package
// comment's determinism contract).
type Aggregate struct {
	// Runs counts reduced runs; Decided those where every correct process
	// decided; Exhausted those that ran out of delivery budget.
	Runs      int64 `json:"runs"`
	Decided   int64 `json:"decided"`
	Exhausted int64 `json:"exhausted"`
	// Messages/Deliveries/SimTime summarize per-run simulator totals;
	// Rounds summarizes the mean decision round of decided runs.
	Messages   *metrics.OnlineSummary `json:"messages"`
	Deliveries *metrics.OnlineSummary `json:"deliveries"`
	Rounds     *metrics.OnlineSummary `json:"rounds"`
	SimTime    *metrics.OnlineSummary `json:"sim_time"`
	// Checks tallies property violations across all runs.
	Checks check.Tally `json:"checks"`
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{
		Messages:   metrics.NewOnlineSummary(),
		Deliveries: metrics.NewOnlineSummary(),
		Rounds:     metrics.NewOnlineSummary(),
		SimTime:    metrics.NewOnlineSummary(),
	}
}

// Observe folds one consensus run into the aggregate.
func (a *Aggregate) Observe(seed int64, res *Result) {
	a.Runs++
	if res.AllDecided {
		a.Decided++
		a.Rounds.Add(res.MeanRounds)
	}
	if res.Exhausted {
		a.Exhausted++
	}
	a.Messages.AddInt(res.Messages)
	a.Deliveries.AddInt(res.Deliveries)
	a.SimTime.Add(float64(res.EndTime))
	a.Checks.Observe(seed, res.Violations)
}

// ObserveRBC folds one reliable-broadcast run into the aggregate (Decided
// and Rounds do not apply).
func (a *Aggregate) ObserveRBC(seed int64, res *RBCResult) {
	a.Runs++
	a.Messages.AddInt(res.Messages)
	a.Deliveries.AddInt(res.Deliveries)
	a.SimTime.Add(float64(res.EndTime))
	a.Checks.Observe(seed, res.Violations)
}

// Table renders the aggregate as a metrics table, one row per measurement.
func (a *Aggregate) Table(title string) *metrics.Table {
	t := metrics.NewTable(title, "metric", "value", "mean", "sd", "min", "p50", "p90", "p99", "max")
	count := func(name string, v int64) {
		t.AddRow(name, fmt.Sprint(v))
	}
	count("runs", a.Runs)
	count("decided", a.Decided)
	count("exhausted", a.Exhausted)
	count("violated runs", a.Checks.ViolatedRuns)
	count("violations", a.Checks.Violations)
	row := func(name string, s *metrics.OnlineSummary) {
		sum := s.Summary()
		t.AddRowf(name, fmt.Sprint(sum.Count), sum.Mean, sum.StdDev, sum.Min, sum.P50, sum.P90, sum.P99, sum.Max)
	}
	row("messages", a.Messages)
	row("deliveries", a.Deliveries)
	row("rounds", a.Rounds)
	row("sim-time", a.SimTime)
	return t
}

// SweepSpec describes one checkpointable streaming sweep.
type SweepSpec struct {
	// Cfg is the consensus configuration swept; its Seed field is ignored
	// (each run uses its own seed from Seeds).
	Cfg Config `json:"config"`
	// RBC, when non-nil, sweeps reliable-broadcast runs of this
	// configuration instead of consensus runs (again, Seed is per run).
	RBC *RBCConfig `json:"rbc,omitempty"`
	// Seeds is the half-open seed range to sweep.
	Seeds SeedRange `json:"seeds"`

	// Workers sizes the pool (0 = GOMAXPROCS; results are identical for
	// every value, per the determinism contract).
	Workers int `json:"-"`
	// Checkpoint is the manifest path; empty disables checkpointing.
	Checkpoint string `json:"-"`
	// Every is the number of runs between checkpoint writes
	// (0 = DefaultCheckpointEvery).
	Every int `json:"-"`
	// Resume restores Checkpoint and continues after its completed prefix.
	// The manifest must exist and match Cfg/RBC/Seeds exactly.
	Resume bool `json:"-"`
	// Stop, when non-nil, is polled after every reduced run; returning true
	// saves a checkpoint (if checkpointing is on) and aborts the sweep with
	// ErrStopped. It is how cmd/bench turns SIGINT into a clean, resumable
	// shutdown.
	Stop func() bool `json:"-"`
	// Progress, when non-nil, is called after every reduced run with the
	// completed and total run counts.
	Progress func(done, total int64) `json:"-"`
}

// kind names the sweep's run type in the checkpoint manifest.
func (s *SweepSpec) kind() string {
	if s.RBC != nil {
		return "rbc"
	}
	return "consensus"
}

// DefaultCheckpointEvery is the checkpoint cadence when SweepSpec.Every is 0.
const DefaultCheckpointEvery = 256

// checkpointVersion is the manifest format version this build writes.
const checkpointVersion = 1

// Checkpoint is the on-disk resume manifest of a sweep (see the package
// comment for the format and guarantees).
type Checkpoint struct {
	Version   int        `json:"version"`
	Kind      string     `json:"kind"`
	Config    *Config    `json:"config,omitempty"`
	RBCConfig *RBCConfig `json:"rbc_config,omitempty"`
	Seeds     SeedRange  `json:"seeds"`
	Completed SeedRange  `json:"completed"`
	Aggregate *Aggregate `json:"aggregate"`
}

// Checkpoint errors.
var (
	// ErrStopped reports that a sweep was stopped by its Stop hook; the
	// checkpoint (when enabled) holds the completed prefix.
	ErrStopped = errors.New("runner: sweep stopped before completion")
	// ErrCheckpointMismatch reports a resume against a manifest recorded for
	// different parameters.
	ErrCheckpointMismatch = errors.New("runner: checkpoint does not match sweep spec")
)

// LoadCheckpoint reads and validates a checkpoint manifest.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runner: reading checkpoint: %w", err)
	}
	var ck Checkpoint
	if err := json.Unmarshal(buf, &ck); err != nil {
		return nil, fmt.Errorf("runner: parsing checkpoint %s: %w", path, err)
	}
	if ck.Version != checkpointVersion {
		return nil, fmt.Errorf("runner: checkpoint %s has version %d, want %d", path, ck.Version, checkpointVersion)
	}
	agg := ck.Aggregate
	if agg == nil || agg.Messages == nil || agg.Deliveries == nil || agg.Rounds == nil || agg.SimTime == nil {
		return nil, fmt.Errorf("runner: checkpoint %s has incomplete aggregate state", path)
	}
	if ck.Completed.From != ck.Seeds.From || ck.Completed.To < ck.Seeds.From || ck.Completed.To > ck.Seeds.To {
		return nil, fmt.Errorf("runner: checkpoint %s completed range %v is not a prefix of %v",
			path, ck.Completed, ck.Seeds)
	}
	if agg.Runs != ck.Completed.Len() {
		return nil, fmt.Errorf("runner: checkpoint %s aggregate holds %d runs for completed range %v",
			path, agg.Runs, ck.Completed)
	}
	return &ck, nil
}

// Save writes the manifest atomically (temp file + rename), so a crash
// mid-write never corrupts an existing checkpoint.
func (c *Checkpoint) Save(path string) error {
	buf, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("runner: encoding checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("runner: writing checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("runner: committing checkpoint: %w", err)
	}
	return nil
}

// matches reports whether the manifest was recorded for spec.
func (c *Checkpoint) matches(spec *SweepSpec) error {
	if c.Kind != spec.kind() {
		return fmt.Errorf("%w: kind %q vs %q", ErrCheckpointMismatch, c.Kind, spec.kind())
	}
	if c.Seeds != spec.Seeds {
		return fmt.Errorf("%w: seeds %v vs %v", ErrCheckpointMismatch, c.Seeds, spec.Seeds)
	}
	if spec.RBC != nil {
		want, _ := json.Marshal(spec.RBC)
		got, _ := json.Marshal(c.RBCConfig)
		if !bytes.Equal(want, got) {
			return fmt.Errorf("%w: rbc config changed", ErrCheckpointMismatch)
		}
		return nil
	}
	want, _ := json.Marshal(spec.Cfg)
	got, _ := json.Marshal(c.Config)
	if !bytes.Equal(want, got) {
		return fmt.Errorf("%w: config changed", ErrCheckpointMismatch)
	}
	return nil
}

// checkpointFor snapshots the sweep's state after `done` reduced runs.
func checkpointFor(spec *SweepSpec, agg *Aggregate, done int64) *Checkpoint {
	ck := &Checkpoint{
		Version:   checkpointVersion,
		Kind:      spec.kind(),
		Seeds:     spec.Seeds,
		Completed: SeedRange{From: spec.Seeds.From, To: spec.Seeds.From + done},
		Aggregate: agg,
	}
	if spec.RBC != nil {
		rbcCfg := *spec.RBC
		ck.RBCConfig = &rbcCfg
	} else {
		cfg := spec.Cfg
		ck.Config = &cfg
	}
	return ck
}

// SweepSeedRange executes a checkpointable streaming sweep and returns its
// aggregate. On ErrStopped the returned aggregate holds the completed prefix
// (also saved to the checkpoint when one is configured).
func SweepSeedRange(spec SweepSpec) (*Aggregate, error) {
	total := spec.Seeds.Len()
	every := spec.Every
	if every <= 0 {
		every = DefaultCheckpointEvery
	}

	// Seed fields inside the swept config are per run; zero them before the
	// resume match so a caller-supplied Seed can never cause a spurious
	// checkpoint mismatch (manifests always record the zeroed form).
	spec.Cfg.Seed = 0
	if spec.RBC != nil {
		rbcCfg := *spec.RBC
		rbcCfg.Seed = 0
		spec.RBC = &rbcCfg
	}

	agg := NewAggregate()
	var start int64
	if spec.Resume {
		if spec.Checkpoint == "" {
			return nil, errors.New("runner: resume requires a checkpoint path")
		}
		ck, err := LoadCheckpoint(spec.Checkpoint)
		if err != nil {
			return nil, err
		}
		if err := ck.matches(&spec); err != nil {
			return nil, err
		}
		agg = ck.Aggregate
		start = ck.Completed.Len()
	}

	done := start
	save := func() error {
		if spec.Checkpoint == "" {
			return nil
		}
		return checkpointFor(&spec, agg, done).Save(spec.Checkpoint)
	}
	after := func() error {
		done++
		if spec.Progress != nil {
			spec.Progress(done, total)
		}
		if done%int64(every) == 0 && done < total {
			if err := save(); err != nil {
				return err
			}
		}
		// A stop request landing on the final run is just completion.
		if spec.Stop != nil && done < total && spec.Stop() {
			if err := save(); err != nil {
				return err
			}
			return ErrStopped
		}
		return nil
	}

	n := int(total - start)
	var err error
	if spec.RBC != nil {
		err = SweepStreamRBC(n, spec.Workers, func(i int) RBCConfig {
			cfg := *spec.RBC
			cfg.Seed = spec.Seeds.From + start + int64(i)
			return cfg
		}, func(i int, res *RBCResult) error {
			agg.ObserveRBC(spec.Seeds.From+start+int64(i), res)
			return after()
		})
	} else {
		err = SweepStream(n, spec.Workers, func(i int) Config {
			cfg := spec.Cfg
			cfg.Seed = spec.Seeds.From + start + int64(i)
			return cfg
		}, func(i int, res *Result) error {
			agg.Observe(spec.Seeds.From+start+int64(i), res)
			return after()
		})
	}
	if err != nil {
		if errors.Is(err, ErrStopped) {
			return agg, err
		}
		return nil, err
	}
	if err := save(); err != nil {
		return nil, err
	}
	return agg, nil
}
