package runner

import (
	"errors"
	"testing"

	"repro/internal/check"
	"repro/internal/quorum"
)

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	return res
}

func requireClean(t *testing.T, res *Result) {
	t.Helper()
	if len(res.Violations) != 0 {
		t.Fatalf("violations: %v (config %+v)", check.Render(res.Violations), res.Config)
	}
	if !res.AllDecided {
		t.Fatalf("not all correct processes decided (config %+v)", res.Config)
	}
	if res.Exhausted {
		t.Fatalf("delivery budget exhausted (config %+v)", res.Config)
	}
}

func TestBrachaAllCorrectAcrossSizes(t *testing.T) {
	for _, n := range []int{4, 7, 10} {
		for seed := int64(0); seed < 3; seed++ {
			res := mustRun(t, Config{
				N: n, F: quorum.MaxByzantine(n), Byzantine: 0,
				Protocol: ProtocolBracha, Coin: CoinCommon,
				Adversary: AdvNone, Scheduler: SchedUniform,
				Inputs: InputSplit, Seed: seed,
			})
			requireClean(t, res)
		}
	}
}

func TestBrachaFullByzantineMatrix(t *testing.T) {
	// Every adversary × scheduler at optimal resilience: safety and
	// termination must hold everywhere.
	adversaries := []Adversary{AdvSilent, AdvEquivocator, AdvLiar, AdvDecideForger, AdvSplitBrain}
	schedulers := []SchedulerKind{SchedUniform, SchedFIFO, SchedRushByz, SchedPartition}
	for _, adv := range adversaries {
		for _, sched := range schedulers {
			t.Run(adv.String()+"/"+sched.String(), func(t *testing.T) {
				for seed := int64(0); seed < 3; seed++ {
					res := mustRun(t, Config{
						N: 7, F: 2, Byzantine: -1,
						Protocol: ProtocolBracha, Coin: CoinCommon,
						Adversary: adv, Scheduler: sched,
						Inputs: InputSplit, Seed: seed,
					})
					requireClean(t, res)
				}
			})
		}
	}
}

func TestBrachaLocalCoinWithAdversaries(t *testing.T) {
	for _, adv := range []Adversary{AdvSilent, AdvLiar} {
		for seed := int64(0); seed < 3; seed++ {
			res := mustRun(t, Config{
				N: 4, F: 1, Byzantine: -1,
				Protocol: ProtocolBracha, Coin: CoinLocal,
				Adversary: adv, Scheduler: SchedUniform,
				Inputs: InputRandom, Seed: seed,
			})
			requireClean(t, res)
		}
	}
}

func TestBenOrWithinResilience(t *testing.T) {
	// n=11, f=2 < 11/5: Ben-Or must be correct, even against plain
	// equivocators.
	for _, adv := range []Adversary{AdvNone, AdvSilent, AdvEquivocator} {
		for seed := int64(0); seed < 3; seed++ {
			res := mustRun(t, Config{
				N: 11, F: 2, Byzantine: -1,
				Protocol: ProtocolBenOr, Coin: CoinCommon,
				Adversary: adv, Scheduler: SchedUniform,
				Inputs: InputSplit, Seed: seed,
			})
			requireClean(t, res)
		}
	}
}

func TestBenOrBeyondResilienceDegrades(t *testing.T) {
	// n=7, f=2 > ⌈7/5⌉−1 = 1: beyond Ben-Or's n > 5f bound. With plain
	// equivocators some runs must go wrong (safety or liveness); Bracha on
	// the identical configuration must stay clean. This is the E6 crossover
	// in miniature.
	var benorBad, brachaBad int
	const seeds = 12
	for seed := int64(0); seed < seeds; seed++ {
		benor := mustRun(t, Config{
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBenOr, Coin: CoinLocal,
			Adversary: AdvEquivocator, Scheduler: SchedRushByz,
			Inputs: InputSplit, Seed: seed,
			MaxRounds: 60, MaxDeliveries: 300_000,
		})
		if len(benor.Violations) > 0 || !benor.AllDecided {
			benorBad++
		}
		bracha := mustRun(t, Config{
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvEquivocator, Scheduler: SchedRushByz,
			Inputs: InputSplit, Seed: seed,
		})
		if len(bracha.Violations) > 0 || !bracha.AllDecided {
			brachaBad++
		}
	}
	if benorBad == 0 {
		t.Error("Ben-Or at f=2, n=7 (beyond n>5f) never degraded; expected failures")
	}
	if brachaBad != 0 {
		t.Errorf("Bracha degraded on %d/%d runs at its design point", brachaBad, seeds)
	}
}

func TestTightnessSplitBrainBreaksOversizedF(t *testing.T) {
	// E7: n=4 with f_assumed=1 but 2 actual split-brain colluders. The
	// resilience bound is tight, so agreement must break (with the rushing
	// scheduler making the attack deterministic).
	res := mustRun(t, Config{
		N: 4, F: 1, Byzantine: 2,
		Protocol: ProtocolBracha, Coin: CoinCommon,
		Adversary: AdvSplitBrain, Scheduler: SchedRushByz,
		Inputs: InputSplit, Seed: 1,
		MaxDeliveries: 200_000, MaxRounds: 50,
	})
	broke := len(res.Violations) > 0 || !res.AllDecided
	if !broke {
		t.Fatalf("f = ⌊(n−1)/3⌋+1 split-brain attack caused no violation; decisions: %v", res.Decisions)
	}
}

func TestTightnessSameAttackHarmlessAtDesignPoint(t *testing.T) {
	// The same split-brain attack with only f=1 attacker on n=4 must be
	// harmless.
	for seed := int64(0); seed < 5; seed++ {
		res := mustRun(t, Config{
			N: 4, F: 1, Byzantine: 1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSplitBrain, Scheduler: SchedRushByz,
			Inputs: InputSplit, Seed: seed,
		})
		requireClean(t, res)
	}
}

func TestAblationValidationOffDegradesUnderLiar(t *testing.T) {
	// A1: with validation disabled, liar traffic can stall progress or
	// spoil rounds. We only require that the ablation is *observably worse*
	// over a seed sweep: more rounds on average or outright failures.
	var onRounds, offRounds float64
	var offBad int
	const seeds = 8
	for seed := int64(0); seed < seeds; seed++ {
		on := mustRun(t, Config{
			N: 4, F: 1, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvLiar, Scheduler: SchedRushByz,
			Inputs: InputUnanimous1, Seed: seed,
		})
		requireClean(t, on)
		onRounds += on.MeanRounds
		off, err := Run(Config{
			N: 4, F: 1, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvLiar, Scheduler: SchedRushByz,
			Inputs: InputUnanimous1, Seed: seed,
			DisableValidation: true,
			MaxRounds:         40, MaxDeliveries: 300_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(off.Violations) > 0 || !off.AllDecided {
			offBad++
		}
		offRounds += off.MeanRounds
	}
	if offBad == 0 && offRounds <= onRounds {
		t.Errorf("validation-off showed no degradation: on=%.2f off=%.2f bad=%d",
			onRounds/seeds, offRounds/seeds, offBad)
	}
}

func TestAblationGadgetOffStillDecides(t *testing.T) {
	// A2: without the gadget, decisions still happen and agree; nodes just
	// never halt (the runner stops once every correct process decided).
	res := mustRun(t, Config{
		N: 4, F: 1, Byzantine: 0,
		Protocol: ProtocolBracha, Coin: CoinIdeal,
		Adversary: AdvNone, Scheduler: SchedUniform,
		Inputs: InputUnanimous1, Seed: 4,
		DisableDecideGadget: true,
		MaxDeliveries:       200_000,
	})
	if len(res.Violations) != 0 || !res.AllDecided {
		t.Fatalf("gadget-off run failed: %v all=%v", res.Violations, res.AllDecided)
	}
}

func TestUnanimousInputsDecideRoundOne(t *testing.T) {
	for _, inputs := range []Inputs{InputUnanimous0, InputUnanimous1} {
		res := mustRun(t, Config{
			N: 7, F: 2, Byzantine: 2,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSilent, Scheduler: SchedUniform,
			Inputs: inputs, Seed: 9,
		})
		requireClean(t, res)
		want := uint8(0)
		if inputs == InputUnanimous1 {
			want = 1
		}
		for p, v := range res.Decisions {
			if uint8(v) != want {
				t.Errorf("%v decided %v, want %d", p, v, want)
			}
		}
		if res.MaxRound != 1 {
			t.Errorf("inputs %v: MaxRound = %d, want 1", inputs, res.MaxRound)
		}
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	res := mustRun(t, Config{
		N: 4, F: 1, Byzantine: 0,
		Protocol: ProtocolBracha, Coin: CoinIdeal,
		Adversary: AdvNone, Scheduler: SchedUniform,
		Inputs: InputUnanimous0, Seed: 5, Trace: true,
	})
	requireClean(t, res)
	if res.Messages == 0 || res.Deliveries == 0 {
		t.Error("message metrics empty")
	}
	if res.MeanRounds < 1 {
		t.Errorf("MeanRounds = %v", res.MeanRounds)
	}
	if res.Recorder == nil || res.Recorder.Len() == 0 {
		t.Error("trace requested but empty")
	}
	if len(res.Rounds) != 4 {
		t.Errorf("Rounds has %d entries, want 4", len(res.Rounds))
	}
}

func TestDeterministicReplay(t *testing.T) {
	cfg := Config{
		N: 7, F: 2, Byzantine: -1,
		Protocol: ProtocolBracha, Coin: CoinCommon,
		Adversary: AdvLiar, Scheduler: SchedUniform,
		Inputs: InputRandom, Seed: 99,
	}
	a := mustRun(t, cfg)
	b := mustRun(t, cfg)
	if a.Messages != b.Messages || a.Deliveries != b.Deliveries || a.EndTime != b.EndTime {
		t.Errorf("replay diverged: %d/%d/%d vs %d/%d/%d",
			a.Messages, a.Deliveries, a.EndTime, b.Messages, b.Deliveries, b.EndTime)
	}
	for p, v := range a.Decisions {
		if b.Decisions[p] != v {
			t.Errorf("decision of %v diverged", p)
		}
	}
}

func TestConfigErrors(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"bad n", Config{N: 0, F: 0, Protocol: ProtocolBracha, Coin: CoinIdeal}},
		{"byzantine everyone", Config{N: 4, F: 1, Byzantine: 4, Protocol: ProtocolBracha, Coin: CoinIdeal, Adversary: AdvSilent}},
		{"benor with validation ablation", Config{N: 4, F: 1, Protocol: ProtocolBenOr, Coin: CoinIdeal, DisableValidation: true}},
		{"unknown protocol", Config{N: 4, F: 1, Coin: CoinIdeal}},
		{"unknown coin", Config{N: 4, F: 1, Protocol: ProtocolBracha}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Run(tt.cfg); !errors.Is(err, ErrBadConfig) {
				t.Errorf("error = %v, want ErrBadConfig", err)
			}
		})
	}
}

func TestEnumStrings(t *testing.T) {
	pairs := []struct {
		got, want string
	}{
		{ProtocolBracha.String(), "bracha"},
		{ProtocolBenOr.String(), "benor"},
		{CoinLocal.String(), "local"},
		{CoinCommon.String(), "common"},
		{CoinIdeal.String(), "ideal"},
		{AdvNone.String(), "none"},
		{AdvSplitBrain.String(), "split-brain"},
		{SchedUniform.String(), "uniform"},
		{SchedPartition.String(), "partition"},
		{SchedLossy.String(), "lossy"},
		{SchedTopology.String(), "topology"},
		{SchedAdaptive.String(), "adaptive"},
		{SchedAdaptiveRush.String(), "adaptive-rush"},
		{InputSplit.String(), "split"},
		{InputRandom.String(), "random"},
		{Protocol(9).String(), "Protocol(9)"},
		{CoinKind(9).String(), "CoinKind(9)"},
		{Adversary(9).String(), "Adversary(9)"},
		{SchedulerKind(99).String(), "SchedulerKind(99)"},
		{Inputs(9).String(), "Inputs(9)"},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Errorf("String() = %q, want %q", p.got, p.want)
		}
	}
}

func TestRunRBCModes(t *testing.T) {
	t.Run("consistent honest is cheaper", func(t *testing.T) {
		rel, err := RunRBC(RBCConfig{N: 7, F: 2, Byzantine: 0, Mode: ModeReliable, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		con, err := RunRBC(RBCConfig{N: 7, F: 2, Byzantine: 0, Mode: ModeConsistent, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		if len(rel.Violations) != 0 || len(con.Violations) != 0 {
			t.Fatalf("honest violations: %v / %v", rel.Violations, con.Violations)
		}
		if rel.Messages != 7+2*49 || con.Messages != 7+49 {
			t.Errorf("messages = %d / %d, want %d / %d", rel.Messages, con.Messages, 7+2*49, 7+49)
		}
	})
	t.Run("partial-send attack separates totality", func(t *testing.T) {
		rel, err := RunRBC(RBCConfig{N: 7, F: 2, Byzantine: 2, Mode: ModeReliable, SenderPartial: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(rel.Violations) != 0 {
			t.Errorf("reliable broadcast violated under partial send: %v", rel.Violations)
		}
		con, err := RunRBC(RBCConfig{N: 7, F: 2, Byzantine: 2, Mode: ModeConsistent, SenderPartial: true, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if !hasProp(con.Violations, check.PropRBCTotality) {
			t.Errorf("consistent broadcast under partial send: violations = %v, want totality", con.Violations)
		}
	})
	t.Run("partial sender needs byzantine", func(t *testing.T) {
		if _, err := RunRBC(RBCConfig{N: 4, F: 1, Byzantine: 0, SenderPartial: true}); !errors.Is(err, ErrBadConfig) {
			t.Errorf("error = %v, want ErrBadConfig", err)
		}
	})
}

func hasProp(vs []check.Violation, prop string) bool {
	for _, v := range vs {
		if v.Property == prop {
			return true
		}
	}
	return false
}

func TestBroadcastModeString(t *testing.T) {
	if ModeReliable.String() != "reliable" || ModeConsistent.String() != "consistent" {
		t.Error("unexpected mode names")
	}
}

func TestCrashMidwayTolerated(t *testing.T) {
	for _, sched := range []SchedulerKind{SchedUniform, SchedRushByz} {
		for seed := int64(0); seed < 5; seed++ {
			res := mustRun(t, Config{
				N: 7, F: 2, Byzantine: -1,
				Protocol: ProtocolBracha, Coin: CoinCommon,
				Adversary: AdvCrashMidway, Scheduler: sched,
				Inputs: InputSplit, Seed: seed,
			})
			requireClean(t, res)
		}
	}
}
