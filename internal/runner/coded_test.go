package runner

import (
	"testing"

	"repro/internal/types"
)

// This file is the coded-dissemination equivalence battery: erasure-coded
// reliable broadcast replaces the dissemination wire format and nothing
// else, so every digest an uncoded run produces must reproduce bitwise under
// coding — through hostile schedules, checkpoint-plane attacks, and the
// restart/state-transfer path — while WireBytes is the one number allowed
// (required) to move.

// TestCodedBrachaClean: the consensus harness with coded step dissemination
// holds the full property set; under unanimous inputs validity pins the
// decision value in both modes.
func TestCodedBrachaClean(t *testing.T) {
	for _, n := range []int{4, 7} {
		for seed := int64(0); seed < 3; seed++ {
			res := mustRun(t, Config{
				N: n, F: 1, Byzantine: 0,
				Protocol: ProtocolBracha, Coin: CoinCommon,
				Adversary: AdvNone, Scheduler: SchedUniform,
				Inputs: InputUnanimous0, Seed: seed,
				Coded: true,
			})
			requireClean(t, res)
			for p, v := range res.Decisions {
				if v != types.Zero {
					t.Fatalf("n=%d seed %d: %v decided %v under unanimous-0", n, seed, p, v)
				}
			}
			if res.WireBytes == 0 {
				t.Fatalf("n=%d seed %d: wire meter never ran", n, seed)
			}
		}
	}
	// Coded + Ben-Or is a config error, not a silent fallback.
	if _, err := Run(Config{
		N: 4, F: 1, Protocol: ProtocolBenOr, Coin: CoinLocal,
		Adversary: AdvNone, Scheduler: SchedUniform, Inputs: InputSplit,
		Coded: true,
	}); err == nil {
		t.Fatal("coded Ben-Or accepted")
	}
}

// TestCodedSMRMatchesUncodedAcrossSchedules: the committed log is a pure
// function of (config minus Coded, seed) — reorder, straggler, and
// split-heal schedules included.
func TestCodedSMRMatchesUncodedAcrossSchedules(t *testing.T) {
	for _, sched := range []SchedulerKind{SchedUniform, SchedReorder, SchedStraggler, SchedSplitHeal} {
		t.Run(sched.String(), func(t *testing.T) {
			for _, seed := range []int64{1, 2} {
				base := SMRConfig{
					N: 8, F: 2,
					Slots: 12, Commands: 4, Batch: 3, Depth: 2,
					CheckpointEvery: 4,
					Sched:           sched,
					Seed:            seed,
				}
				uncoded, err := RunSMR(base)
				if err != nil {
					t.Fatalf("seed %d: uncoded: %v", seed, err)
				}
				coded := base
				coded.Coded = true
				res, err := RunSMR(coded)
				if err != nil {
					t.Fatalf("seed %d: coded: %v", seed, err)
				}
				for _, r := range []*SMRResult{uncoded, res} {
					if r.Exhausted || r.Mismatches != 0 || !r.FullStream {
						t.Fatalf("seed %d coded=%v: exhausted=%v mismatches=%d full=%v",
							seed, r.Config.Coded, r.Exhausted, r.Mismatches, r.FullStream)
					}
				}
				if res.LogDigest != uncoded.LogDigest || res.StateDigest != uncoded.StateDigest {
					t.Errorf("seed %d: coded digests (%016x, %016x) != uncoded (%016x, %016x)",
						seed, res.LogDigest, res.StateDigest, uncoded.LogDigest, uncoded.StateDigest)
				}
			}
		})
	}
}

// TestCodedCkptScenariosMatchUncoded runs the full checkpoint-adversary
// battery in coded mode against the *uncoded* attack-free control: one
// equality crossing both the attack axis and the dissemination axis.
func TestCodedCkptScenariosMatchUncoded(t *testing.T) {
	n, slots, every := 8, 16, 4
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = []int64{1}
	}
	for _, sc := range CkptScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, seed := range seeds {
				control, err := RunSMR(sc.Control(n, slots, every, seed))
				if err != nil {
					t.Fatalf("seed %d: control: %v", seed, err)
				}
				cfg := sc.Spec(n, slots, every, seed)
				cfg.Coded = true
				res, err := RunSMR(cfg)
				if err != nil {
					t.Fatalf("seed %d: coded: %v", seed, err)
				}
				if res.Exhausted || res.Mismatches != 0 || !res.FullStream || res.SuffixDivergence != 0 {
					t.Fatalf("seed %d: exhausted=%v mismatches=%d full=%v divergence=%d",
						seed, res.Exhausted, res.Mismatches, res.FullStream, res.SuffixDivergence)
				}
				if sc.Restart && res.Transfers < 1 {
					t.Errorf("seed %d: coded victim installed no state transfer", seed)
				}
				if res.LogDigest != control.LogDigest || res.StateDigest != control.StateDigest {
					t.Errorf("seed %d: coded attack digests (%016x, %016x) != uncoded control (%016x, %016x)",
						seed, res.LogDigest, res.StateDigest, control.LogDigest, control.StateDigest)
				}
			}
		})
	}
}

// TestCodedRestartCatchup: a replica revived with empty state catches up by
// checkpoint state transfer while its peers disseminate in coded mode, and
// lands on the same digests as the uncoded restart run.
func TestCodedRestartCatchup(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		base := RestartCatchupSpec(4, 24, 4, seed)
		uncoded, err := RunSMR(base)
		if err != nil {
			t.Fatalf("seed %d: uncoded: %v", seed, err)
		}
		coded := base
		coded.Coded = true
		res, err := RunSMR(coded)
		if err != nil {
			t.Fatalf("seed %d: coded: %v", seed, err)
		}
		if res.Exhausted || res.Mismatches != 0 || !res.FullStream {
			t.Fatalf("seed %d: exhausted=%v mismatches=%d full=%v",
				seed, res.Exhausted, res.Mismatches, res.FullStream)
		}
		if res.Transfers < 1 || res.VictimCommitted < 3 {
			t.Errorf("seed %d: coded victim never caught up (transfers=%d committed=%d)",
				seed, res.Transfers, res.VictimCommitted)
		}
		if res.LogDigest != uncoded.LogDigest || res.StateDigest != uncoded.StateDigest {
			t.Errorf("seed %d: coded digests (%016x, %016x) != uncoded (%016x, %016x)",
				seed, res.LogDigest, res.StateDigest, uncoded.LogDigest, uncoded.StateDigest)
		}
	}
}

// TestCodedCutsWireBytes pins the bandwidth claim at a mid scale: with
// batch-sized bodies, coded dissemination cuts total wire bytes at least 3×
// against the uncoded run — total, including all the (uncoded, tiny)
// agreement traffic diluting the win.
func TestCodedCutsWireBytes(t *testing.T) {
	base := SMRConfig{
		N: 16, F: 5,
		Slots: 6, Commands: 4, CommandBytes: 2048, Batch: 4, Depth: 2,
		Seed: 1,
	}
	uncoded, err := RunSMR(base)
	if err != nil {
		t.Fatal(err)
	}
	coded := base
	coded.Coded = true
	res, err := RunSMR(coded)
	if err != nil {
		t.Fatal(err)
	}
	if res.LogDigest != uncoded.LogDigest {
		t.Fatalf("digest mismatch: %016x vs %016x", res.LogDigest, uncoded.LogDigest)
	}
	if res.WireBytes <= 0 || uncoded.WireBytes <= 0 {
		t.Fatalf("wire meter never ran: coded %d, uncoded %d", res.WireBytes, uncoded.WireBytes)
	}
	if res.WireBytes*3 > uncoded.WireBytes {
		t.Errorf("coded %d bytes vs uncoded %d: want ≥3× reduction", res.WireBytes, uncoded.WireBytes)
	}
}
