package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/types"
)

// sortedProcs orders a decision map's keys for stable hashing.
func sortedProcs(m map[types.ProcessID]types.Value) []types.ProcessID {
	ps := make([]types.ProcessID, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// replayConfigs is the matrix the replay-equality test pins down: every
// scheduler kind, both protocols, all three coins and a spread of
// adversaries, at sizes small enough to run in milliseconds.
func replayConfigs() map[string]Config {
	return map[string]Config{
		"bracha/common/uniform": {
			N: 4, F: 1, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSilent, Scheduler: SchedUniform,
			Inputs: InputSplit, Seed: 42,
		},
		"bracha/common/fifo": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSilent, Scheduler: SchedFIFO,
			Inputs: InputSplit, Seed: 43,
		},
		"bracha/common/rush-byz/liar": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvLiar, Scheduler: SchedRushByz,
			Inputs: InputSplit, Seed: 44,
		},
		"bracha/local/partition/equivocator": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinLocal,
			Adversary: AdvEquivocator, Scheduler: SchedPartition,
			Inputs: InputRandom, Seed: 45, MaxDeliveries: 400_000,
		},
		"bracha/ideal/uniform/crash-midway": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinIdeal,
			Adversary: AdvCrashMidway, Scheduler: SchedUniform,
			Inputs: InputUnanimous1, Seed: 46,
		},
		"benor/local/uniform": {
			N: 6, F: 1, Byzantine: -1,
			Protocol: ProtocolBenOr, Coin: CoinLocal,
			Adversary: AdvSilent, Scheduler: SchedUniform,
			Inputs: InputSplit, Seed: 47, MaxRounds: 60, MaxDeliveries: 400_000,
		},
	}
}

// traceHash runs cfg with tracing enabled and digests the full event
// sequence plus the run's summary numbers. Two runs with the same hash
// delivered the same messages in the same order and reached the same
// decisions — the strongest replay-equality statement the harness offers.
func traceHash(t *testing.T, cfg Config) string {
	t.Helper()
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	h := sha256.New()
	io.WriteString(h, res.Recorder.Dump())
	fmt.Fprintf(h, "msgs=%d deliveries=%d end=%d exhausted=%v\n",
		res.Messages, res.Deliveries, res.EndTime, res.Exhausted)
	for _, p := range sortedProcs(res.Decisions) {
		fmt.Fprintf(h, "decision %v=%v round=%d\n", p, res.Decisions[p], res.Rounds[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenTraceHashes pins the exact per-run executions of the seed
// implementation (interface-boxed container/heap queue, map node lookup,
// per-call codec allocations). The optimized hot path must reproduce them
// byte for byte: any divergence in delivery order, message content, or
// decisions changes the hash.
var goldenTraceHashes = map[string]string{
	"bracha/common/uniform":              "a6de9363a050203bc211723244fdb4446dfb21396316a902da8f3326fc881852",
	"bracha/common/fifo":                 "1cad09b34b2ad1989b5d0c329b91c22c0baa71591e22a46196e99a1bc5ae57f8",
	"bracha/common/rush-byz/liar":        "0def7f1fee03e4991844298c564eadaac0b5aba7c982f74591df2d6ddffe9c72",
	"bracha/local/partition/equivocator": "61c9f757a4993504a47f5c91948d969e731ac26f51469e4392f67b3e154974db",
	"bracha/ideal/uniform/crash-midway":  "489df161468e4dfc1658b7a2d75896030e120454c9faa18a8223f866a3cd83d8",
	"benor/local/uniform":                "d7e05db40182d9f60969d085a179955a365e27cf3f1d11d5e1e8277321ef1a61",
}

// TestReplayEqualityGolden proves the zero-allocation rewrite preserved
// every execution: for each pinned configuration, the trace hash today
// equals the hash recorded from the seed implementation.
func TestReplayEqualityGolden(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Run(name, func(t *testing.T) {
			got := traceHash(t, cfg)
			want, ok := goldenTraceHashes[name]
			if !ok {
				t.Fatalf("no golden hash for %q (got %s)", name, got)
			}
			if got != want {
				t.Errorf("trace hash diverged from seed implementation:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestReplaySameSeedTwice checks pure determinism: running the identical
// (config, seed) twice in one process produces identical traces.
func TestReplaySameSeedTwice(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Run(name, func(t *testing.T) {
			if a, b := traceHash(t, cfg), traceHash(t, cfg); a != b {
				t.Errorf("same seed, different traces: %s vs %s", a, b)
			}
		})
	}
}

// TestGoldenHashesPrint regenerates the golden table when run with
// -run TestGoldenHashesPrint -v; it never fails. Used once to pin the seed
// implementation and kept for forensics when an intentional protocol change
// legitimately moves the hashes.
func TestGoldenHashesPrint(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Logf("%q: %q,", name, traceHash(t, cfg))
	}
}
