package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"testing"

	"repro/internal/acs"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/trace"
	"repro/internal/types"
)

// sortedProcs orders a decision map's keys for stable hashing.
func sortedProcs(m map[types.ProcessID]types.Value) []types.ProcessID {
	ps := make([]types.ProcessID, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	return ps
}

// replayConfigs is the matrix the replay-equality test pins down: every
// scheduler kind, both protocols, all three coins and a spread of
// adversaries, at sizes small enough to run in milliseconds.
func replayConfigs() map[string]Config {
	return map[string]Config{
		"bracha/common/uniform": {
			N: 4, F: 1, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSilent, Scheduler: SchedUniform,
			Inputs: InputSplit, Seed: 42,
		},
		"bracha/common/fifo": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvSilent, Scheduler: SchedFIFO,
			Inputs: InputSplit, Seed: 43,
		},
		"bracha/common/rush-byz/liar": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinCommon,
			Adversary: AdvLiar, Scheduler: SchedRushByz,
			Inputs: InputSplit, Seed: 44,
		},
		"bracha/local/partition/equivocator": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinLocal,
			Adversary: AdvEquivocator, Scheduler: SchedPartition,
			Inputs: InputRandom, Seed: 45, MaxDeliveries: 400_000,
		},
		"bracha/ideal/uniform/crash-midway": {
			N: 7, F: 2, Byzantine: -1,
			Protocol: ProtocolBracha, Coin: CoinIdeal,
			Adversary: AdvCrashMidway, Scheduler: SchedUniform,
			Inputs: InputUnanimous1, Seed: 46,
		},
		"benor/local/uniform": {
			N: 6, F: 1, Byzantine: -1,
			Protocol: ProtocolBenOr, Coin: CoinLocal,
			Adversary: AdvSilent, Scheduler: SchedUniform,
			Inputs: InputSplit, Seed: 47, MaxRounds: 60, MaxDeliveries: 400_000,
		},
	}
}

// traceHash runs cfg with tracing enabled and digests the full event
// sequence plus the run's summary numbers. Two runs with the same hash
// delivered the same messages in the same order and reached the same
// decisions — the strongest replay-equality statement the harness offers.
func traceHash(t *testing.T, cfg Config) string {
	t.Helper()
	cfg.Trace = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run(%+v): %v", cfg, err)
	}
	h := sha256.New()
	io.WriteString(h, res.Recorder.Dump())
	fmt.Fprintf(h, "msgs=%d deliveries=%d end=%d exhausted=%v\n",
		res.Messages, res.Deliveries, res.EndTime, res.Exhausted)
	for _, p := range sortedProcs(res.Decisions) {
		fmt.Fprintf(h, "decision %v=%v round=%d\n", p, res.Decisions[p], res.Rounds[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// goldenTraceHashes pins the exact per-run executions of the seed
// implementation (interface-boxed container/heap queue, map node lookup,
// per-call codec allocations). The optimized hot path must reproduce them
// byte for byte: any divergence in delivery order, message content, or
// decisions changes the hash.
var goldenTraceHashes = map[string]string{
	"bracha/common/uniform":              "a6de9363a050203bc211723244fdb4446dfb21396316a902da8f3326fc881852",
	"bracha/common/fifo":                 "1cad09b34b2ad1989b5d0c329b91c22c0baa71591e22a46196e99a1bc5ae57f8",
	"bracha/common/rush-byz/liar":        "0def7f1fee03e4991844298c564eadaac0b5aba7c982f74591df2d6ddffe9c72",
	"bracha/local/partition/equivocator": "61c9f757a4993504a47f5c91948d969e731ac26f51469e4392f67b3e154974db",
	"bracha/ideal/uniform/crash-midway":  "489df161468e4dfc1658b7a2d75896030e120454c9faa18a8223f866a3cd83d8",
	"benor/local/uniform":                "d7e05db40182d9f60969d085a179955a365e27cf3f1d11d5e1e8277321ef1a61",
}

// TestReplayEqualityGolden proves the zero-allocation rewrite preserved
// every execution: for each pinned configuration, the trace hash today
// equals the hash recorded from the seed implementation.
func TestReplayEqualityGolden(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Run(name, func(t *testing.T) {
			got := traceHash(t, cfg)
			want, ok := goldenTraceHashes[name]
			if !ok {
				t.Fatalf("no golden hash for %q (got %s)", name, got)
			}
			if got != want {
				t.Errorf("trace hash diverged from seed implementation:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestReplayEqualityGoldenWindowed proves windowed pruning is behaviour-
// neutral at any window size: every pinned configuration reproduces its
// golden hash — recorded from the seed implementation, which retained all
// per-round state forever — with the retention window set to 2 and to 4
// rounds. Together with the default-window run of TestReplayEqualityGolden
// (window 1, the tightest), this is the replay half of the windowing
// contract; the CI sweep diff covers the aggregate half.
func TestReplayEqualityGoldenWindowed(t *testing.T) {
	for _, window := range []int{2, 3, 4} {
		for name, cfg := range replayConfigs() {
			cfg.Window = window
			t.Run(fmt.Sprintf("w%d/%s", window, name), func(t *testing.T) {
				got := traceHash(t, cfg)
				want, ok := goldenTraceHashes[name]
				if !ok {
					t.Fatalf("no golden hash for %q (got %s)", name, got)
				}
				if got != want {
					t.Errorf("window %d moved the trace hash:\n got %s\nwant %s", window, got, want)
				}
			})
		}
	}
}

// TestReplaySameSeedTwice checks pure determinism: running the identical
// (config, seed) twice in one process produces identical traces.
func TestReplaySameSeedTwice(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Run(name, func(t *testing.T) {
			if a, b := traceHash(t, cfg), traceHash(t, cfg); a != b {
				t.Errorf("same seed, different traces: %s vs %s", a, b)
			}
		})
	}
}

// TestGoldenHashesPrint regenerates the golden table when run with
// -run TestGoldenHashesPrint -v; it never fails. Used once to pin the seed
// implementation and kept for forensics when an intentional protocol change
// legitimately moves the hashes.
func TestGoldenHashesPrint(t *testing.T) {
	for name, cfg := range replayConfigs() {
		t.Logf("%q: %q,", name, traceHash(t, cfg))
	}
}

// ---- ACS and SMR replay equality ---------------------------------------
//
// The ACS and SMR layers multiplex many core instances over one network, so
// their executions exercise every delivery path of the stack at once. These
// golden hashes were recorded from the pre-zero-allocation implementation
// (fresh slices per delivery, map-backed accepted lists, no pruning); the
// refactored delivery spine must reproduce them bitwise.

// stackConfig describes one ACS or SMR replay run.
type stackConfig struct {
	smr       bool // false = ACS, true = SMR
	n, f      int
	absent    int    // trailing processes that never start (silent faults)
	coin      string // "local", "common" (ACS), "ideal" (SMR per-slot)
	scheduler string // "uniform", "fifo", "reorder"
	maxSlots  int    // SMR only
	seed      int64
	window    int // per-round retention window of the inner instances (0 = default)
}

// stackReplayConfigs is the ACS/SMR golden matrix: both layers, all three
// coin constructions they use, three scheduler kinds, with and without
// silent faults.
func stackReplayConfigs() map[string]stackConfig {
	return map[string]stackConfig{
		"acs/local/uniform": {
			n: 4, f: 1, absent: 1, coin: "local", scheduler: "uniform", seed: 7,
		},
		"acs/common/fifo": {
			n: 4, f: 1, absent: 0, coin: "common", scheduler: "fifo", seed: 8,
		},
		"acs/common/reorder": {
			n: 7, f: 2, absent: 2, coin: "common", scheduler: "reorder", seed: 9,
		},
		"smr/local/uniform": {
			smr: true, n: 4, f: 1, absent: 1, coin: "local", scheduler: "uniform",
			maxSlots: 4, seed: 10,
		},
		"smr/ideal/fifo": {
			smr: true, n: 4, f: 1, absent: 0, coin: "ideal", scheduler: "fifo",
			maxSlots: 3, seed: 11,
		},
		"smr/local/reorder": {
			smr: true, n: 7, f: 2, absent: 0, coin: "local", scheduler: "reorder",
			maxSlots: 3, seed: 12,
		},
	}
}

func stackScheduler(t *testing.T, kind string) sim.Scheduler {
	t.Helper()
	switch kind {
	case "uniform":
		return sim.UniformDelay{Min: 1, Max: 20}
	case "fifo":
		return sim.NewFIFODelay(1, 20)
	case "reorder":
		return sim.ReorderDelay{Span: 48}
	default:
		t.Fatalf("unknown scheduler %q", kind)
		return nil
	}
}

// stackTraceHash runs one ACS or SMR configuration with network-level
// tracing and digests the complete event sequence plus every node's output
// (the agreed subset, or the committed log). Identical hashes mean identical
// executions: same messages, same order, same results.
func stackTraceHash(t *testing.T, cfg stackConfig) string {
	t.Helper()
	spec := quorum.MustNew(cfg.n, cfg.f)
	peers := types.Processes(cfg.n)
	live := peers[:cfg.n-cfg.absent]
	rec := trace.New(0)
	net, err := sim.New(sim.Config{
		Scheduler: stackScheduler(t, cfg.scheduler),
		Seed:      cfg.seed,
		Recorder:  rec,
	})
	if err != nil {
		t.Fatal(err)
	}

	h := sha256.New()
	if cfg.smr {
		replicas := make([]*smr.Replica, 0, len(live))
		for _, p := range live {
			p := p
			var newCoin func(int) coin.Coin
			switch cfg.coin {
			case "local":
				newCoin = func(slot int) coin.Coin {
					return coin.NewLocal(cfg.seed + int64(p)*1000 + int64(slot))
				}
			case "ideal":
				newCoin = func(slot int) coin.Coin {
					return coin.NewIdeal(cfg.seed + int64(slot))
				}
			default:
				t.Fatalf("unknown SMR coin %q", cfg.coin)
			}
			rep, err := smr.New(smr.Config{
				Me: p, Peers: peers, Spec: spec,
				NewCoin:  newCoin,
				Rotation: live,
				Machine:  discardMachine{},
				MaxSlots: cfg.maxSlots,
				Window:   cfg.window,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep.Submit(fmt.Sprintf("set k%d v%d", p, p))
			replicas = append(replicas, rep)
			if err := net.Add(rep); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := net.Run(func() bool {
			for _, rep := range replicas {
				if !rep.Done() {
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(h, rec.Dump())
		fmt.Fprintf(h, "msgs=%d deliveries=%d end=%d exhausted=%v\n",
			stats.Sent, stats.Delivered, stats.End, stats.Exhausted)
		for _, rep := range replicas {
			fmt.Fprintf(h, "log %v:", rep.ID())
			for _, e := range rep.Log() {
				fmt.Fprintf(h, " %d/%v/%q", e.Slot, e.Proposer, e.Command)
			}
			fmt.Fprintln(h)
		}
	} else {
		var dealers []*coin.Dealer
		if cfg.coin == "common" {
			dealers = make([]*coin.Dealer, cfg.n+1)
			for i := 1; i <= cfg.n; i++ {
				dealers[i] = coin.NewDealer(spec, cfg.seed+int64(i)*77)
			}
		}
		nodes := make([]*acs.Node, 0, len(live))
		for _, p := range live {
			p := p
			var newCoin func(int) coin.Coin
			switch cfg.coin {
			case "local":
				newCoin = func(inst int) coin.Coin {
					return coin.NewLocal(cfg.seed + int64(p)*1000 + int64(inst))
				}
			case "common":
				newCoin = func(inst int) coin.Coin {
					return coin.NewCommon(p, peers, dealers[inst])
				}
			default:
				t.Fatalf("unknown ACS coin %q", cfg.coin)
			}
			nd, err := acs.New(acs.Config{
				Me: p, Peers: peers, Spec: spec,
				NewCoin: newCoin,
				Input:   fmt.Sprintf("input-%v", p),
				Window:  cfg.window,
			})
			if err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, nd)
			if err := net.Add(nd); err != nil {
				t.Fatal(err)
			}
		}
		stats, err := net.Run(func() bool {
			for _, nd := range nodes {
				if _, ok := nd.Output(); !ok {
					return false
				}
			}
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		io.WriteString(h, rec.Dump())
		fmt.Fprintf(h, "msgs=%d deliveries=%d end=%d exhausted=%v\n",
			stats.Sent, stats.Delivered, stats.End, stats.Exhausted)
		for _, nd := range nodes {
			out, ok := nd.Output()
			fmt.Fprintf(h, "output %v ok=%v:", nd.ID(), ok)
			for _, pr := range out {
				fmt.Fprintf(h, " %v=%q", pr.Proposer, pr.Value)
			}
			fmt.Fprintln(h)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// discardMachine is a no-op state machine for replay hashing (the committed
// log itself is hashed; applying it adds nothing).
type discardMachine struct{}

func (discardMachine) Apply(string) error { return nil }

// goldenStackHashes pins the ACS and SMR executions of the pre-refactor
// implementation (fresh output slices per delivery, map-backed accepted
// lists, no per-round pruning). Recorded before the zero-allocation delivery
// spine landed — after first verifying the old implementation reproduced
// its own traces across repeated runs and processes (its map ranges were
// order-insensitive in effect; see TestStackReplaySameSeedTwice) — and the
// refactor must reproduce them bitwise.
var goldenStackHashes = map[string]string{
	"acs/local/uniform":  "e1c4937aaeaa41ec8b841cd9aeb028910888f987bce8fb5f18506476eff6cfbb",
	"acs/common/fifo":    "8ee151f07d51bd76e53eb4fefe43a815cb833a9ed7f6c1e49fef58b81c6ff7e8",
	"acs/common/reorder": "cbe5da48a6c02bae02828c8f250242c9ccef3fff7b9c41af88a4189d3f6abb9e",
	"smr/local/uniform":  "a8f9eaabc163021292f8b0f6827d98a45a736cf8028e98d386297284b867be78",
	"smr/ideal/fifo":     "581aa8bf23d3c8872f1f7fc67a65fa9ab1e1bf0865ed7f2fb325354155b39fa6",
	"smr/local/reorder":  "6c25dd3ec593474c37543cd038bd566437d86c91d149b732857caa943f2ddbd0",
}

// TestStackReplayEqualityGolden proves the ACS/SMR zero-allocation rewrite
// preserved every execution byte for byte.
func TestStackReplayEqualityGolden(t *testing.T) {
	for name, cfg := range stackReplayConfigs() {
		t.Run(name, func(t *testing.T) {
			got := stackTraceHash(t, cfg)
			want, ok := goldenStackHashes[name]
			if !ok {
				t.Fatalf("no golden hash for %q (got %s)", name, got)
			}
			if got != want {
				t.Errorf("trace hash diverged from pre-refactor implementation:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestStackReplayEqualityGoldenWindowed proves the window knob is
// behaviour-neutral through the layered protocols too: the ACS/SMR golden
// hashes — recorded from the pre-refactor, retain-everything implementation
// — reproduce with every inner consensus instance running 2-, 3-, and
// 4-round retention windows.
func TestStackReplayEqualityGoldenWindowed(t *testing.T) {
	for _, window := range []int{2, 3, 4} {
		for name, cfg := range stackReplayConfigs() {
			cfg.window = window
			t.Run(fmt.Sprintf("w%d/%s", window, name), func(t *testing.T) {
				got := stackTraceHash(t, cfg)
				want, ok := goldenStackHashes[name]
				if !ok {
					t.Fatalf("no golden hash for %q (got %s)", name, got)
				}
				if got != want {
					t.Errorf("window %d moved the stack trace hash:\n got %s\nwant %s", window, got, want)
				}
			})
		}
	}
}

// TestStackReplaySameSeedTwice checks pure determinism of the ACS/SMR
// layers: the identical (config, seed) run twice in one process produces
// identical traces. The pre-refactor ACS fanned coin shares over a Go map
// range; that was verified order-insensitive (only the instance whose coin
// state changed emits, all other iteration-order effects cancel) and
// cross-process stable before the goldens were recorded, but the property
// held by accident. The dense tables make iteration order structurally
// deterministic, which this test now pins.
func TestStackReplaySameSeedTwice(t *testing.T) {
	for name, cfg := range stackReplayConfigs() {
		t.Run(name, func(t *testing.T) {
			if a, b := stackTraceHash(t, cfg), stackTraceHash(t, cfg); a != b {
				t.Errorf("same seed, different traces: %s vs %s", a, b)
			}
		})
	}
}

// TestStackGoldenHashesPrint regenerates the ACS/SMR golden table with
// -run TestStackGoldenHashesPrint -v; it never fails.
func TestStackGoldenHashesPrint(t *testing.T) {
	for name, cfg := range stackReplayConfigs() {
		t.Logf("%q: %q,", name, stackTraceHash(t, cfg))
	}
}
