package runner

import (
	"runtime"
	"testing"

	"repro/internal/sim"
)

// byteMeter is the fingerprint of one run's wire metering: every aggregate
// the simulator's Stats fold produces. Two runs of the same (config, seed)
// must agree on all of it exactly — the metering is part of the determinism
// contract, not a statistic.
type byteMeter struct {
	WireBytes  int64
	Messages   int
	Deliveries int
	EndTime    sim.Time
	MeanRounds float64
}

func meterOf(res *Result) byteMeter {
	return byteMeter{
		WireBytes:  res.WireBytes,
		Messages:   res.Messages,
		Deliveries: res.Deliveries,
		EndTime:    res.EndTime,
		MeanRounds: res.MeanRounds,
	}
}

// byteBattery spans the scheduler families whose metering paths differ:
// uniform (the plain path), lossy (retransmit lag plus the duplicate path —
// duplicates are metered sends), topology (relay lag), and the adaptive
// rush adversary (frontier-dependent delivery order).
func byteBattery() []Config {
	var cfgs []Config
	for _, sched := range []SchedulerKind{SchedUniform, SchedLossy, SchedTopology, SchedAdaptiveRush} {
		for seed := int64(1); seed <= 3; seed++ {
			cfgs = append(cfgs, Config{
				N: 5, F: 1, Byzantine: -1,
				Protocol:  ProtocolBracha,
				Coin:      CoinCommon,
				Adversary: AdvEquivocator,
				Scheduler: sched,
				Inputs:    InputSplit,
				Seed:      seed,
			})
		}
	}
	return cfgs
}

// TestWireBytesDeterministic pins that Stats.Bytes — surfaced as
// Result.WireBytes — and the rest of the wire meter are bitwise independent
// of the worker count and of GOMAXPROCS, and identical between Sweep and
// SweepStream over the same configurations. The duplicate path (lossy
// scheduler) is in the battery on purpose: duplicated deliveries meter
// bytes too, and a meter that double-counted nondeterministically would
// only show up under exactly this comparison.
func TestWireBytesDeterministic(t *testing.T) {
	cfgs := byteBattery()

	base, err := Sweep(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byteMeter, len(base))
	for i, res := range base {
		if res.WireBytes <= 0 {
			t.Fatalf("cfg %d (%v): wire meter never ran (WireBytes = %d)", i, cfgs[i].Scheduler, res.WireBytes)
		}
		want[i] = meterOf(res)
	}

	check := func(t *testing.T, got []byteMeter) {
		t.Helper()
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("cfg %d (%v seed %d): meter %+v, want %+v",
					i, cfgs[i].Scheduler, cfgs[i].Seed, got[i], want[i])
			}
		}
	}

	for _, workers := range []int{2, 4} {
		results, err := Sweep(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := make([]byteMeter, len(results))
		for i, res := range results {
			got[i] = meterOf(res)
		}
		check(t, got)
	}

	// GOMAXPROCS must not leak into the meter either: pin it to 1 (the
	// harshest scheduling change) and sweep with the default worker count.
	prev := runtime.GOMAXPROCS(1)
	results, err := Sweep(cfgs, 0)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byteMeter, len(results))
	for i, res := range results {
		got[i] = meterOf(res)
	}
	check(t, got)

	// SweepStream folds results through emit in strict index order; the
	// meters it observes must be the same bytes Sweep returned.
	streamed := make([]byteMeter, len(cfgs))
	err = SweepStream(len(cfgs), 4, func(i int) Config { return cfgs[i] }, func(i int, res *Result) error {
		streamed[i] = meterOf(res)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	check(t, streamed)
}
