package runner

import (
	"repro/internal/adversary"
	"repro/internal/quorum"
)

// This file is the checkpoint-adversary scenario registry: the robustness
// battery of the checkpoint and state-transfer subsystem, kept separate from
// Scenarios() (whose entries are consensus-shaped PropertySpecs; these are
// SMR workload configs). Each scenario composes one checkpoint-plane
// attacker (adversary.CkptByzantine) with a hostile delivery schedule and,
// for the transfer-facing attacks, the restart-catchup victim — the replica
// the attack is actually aimed at. The acceptance bar is uniform: every
// property the attack-free run holds (agreement, full reference stream, no
// suffix divergence) plus digest equality against the attack-free control
// run at the same (config, seed) — the benign workload commits the same
// entries whatever the checkpoint plane suffers, so the attack run's digests
// must reproduce the control's bitwise.

// CkptScenario is one checkpoint-adversary scenario: an attack, the
// schedule it composes with, and whether the restart-catchup victim is in
// play.
type CkptScenario struct {
	Name   string
	Attack adversary.CkptAttack
	Sched  SchedulerKind
	// Restart adds the kill/revive victim (the replica state transfer must
	// rescue through the attack).
	Restart bool
	// MaxPendingCuts, when nonzero, shrinks the tracker's pending-cut cap —
	// the vote-spam scenarios assert the table never exceeds it.
	MaxPendingCuts int
}

// CkptScenarios returns the checkpoint-adversary battery. Every entry must
// hold all properties at every seed and scale (the quick battery and the
// frontier battery run the same list).
func CkptScenarios() []CkptScenario {
	return []CkptScenario{
		// A cut-equivocating voter sends every receiver a different,
		// correctly self-signed digest pair; per-digest match counting keeps
		// its votes out of every quorum, and the restarted victim still
		// catches up.
		{Name: "cut-equivocate/restart", Attack: adversary.CkptCutEquivocate, Sched: SchedUniform, Restart: true},
		// A MAC forger emits hostile vote vectors (wrong length and garbage
		// entries) plus forged certificates claiming honest voters over
		// digest-consistent poisoned snapshots, under adversarial
		// reordering; per-receiver MAC verification rejects all of it.
		{Name: "mac-forge/reorder", Attack: adversary.CkptMACForge, Sched: SchedReorder, Restart: true},
		// A vote spammer floods self-signed votes for far-future cuts while
		// one honest replica straggles behind the window; the shrunken
		// pending-cut cap must bound the vote table and the straggler must
		// still certify and prune.
		{Name: "future-spam/straggler", Attack: adversary.CkptFutureSpam, Sched: SchedStraggler, MaxPendingCuts: 16},
		// A stale responder answers the victim's transfer requests with the
		// previous certificate; the victim must detect staleness and fall
		// over to the next peer.
		{Name: "stale-responder/restart", Attack: adversary.CkptStaleResponder, Sched: SchedUniform, Restart: true},
		// A corrupt responder serves the latest certificate with a mangled
		// snapshot across a healing partition; the digest check rejects it
		// and the fallback loop completes the catch-up.
		{Name: "corrupt-responder/split-heal", Attack: adversary.CkptCorruptResponder, Sched: SchedSplitHeal, Restart: true},
	}
}

// Spec builds the scenario's SMR workload config at a given scale and seed.
func (s CkptScenario) Spec(n, slots, every int, seed int64) SMRConfig {
	cfg := SMRConfig{
		N: n, F: quorum.MaxByzantine(n),
		Slots:           slots,
		Commands:        4,
		CheckpointEvery: every,
		Coin:            CoinLocal,
		Seed:            seed,
		Attack:          s.Attack,
		Byzantine:       1,
		Sched:           s.Sched,
		MaxPendingCuts:  s.MaxPendingCuts,
	}
	if s.Restart {
		cfg.Restart = &SMRRestart{CrashAfter: 80 * n, ReviveAfter: 160 * n}
	}
	return cfg
}

// Control builds the attack-free control run: identical config minus the
// attacker, whose digests the attack run must reproduce bitwise.
func (s CkptScenario) Control(n, slots, every int, seed int64) SMRConfig {
	cfg := s.Spec(n, slots, every, seed)
	cfg.Attack = 0
	cfg.Byzantine = 0
	return cfg
}
