package runner

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/adversary"
)

// checkCkptScenario runs one checkpoint-adversary scenario at one scale and
// seed against its attack-free control and asserts the full property set:
// no agreement violations, a gap-free reference stream, no suffix
// divergence, catch-up completing where a victim is in play, the pending-cut
// cap holding where one is set — and the control run's digests reproduced
// bitwise (the attack may change traffic, never what commits).
func checkCkptScenario(t *testing.T, sc CkptScenario, n, slots, every int, seed int64) {
	t.Helper()
	control, err := RunSMR(sc.Control(n, slots, every, seed))
	if err != nil {
		t.Fatalf("%s n=%d seed %d: control: %v", sc.Name, n, seed, err)
	}
	if !control.FullStream || control.Mismatches != 0 || control.Exhausted {
		t.Fatalf("%s n=%d seed %d: bad control run: full=%v mismatches=%d exhausted=%v",
			sc.Name, n, seed, control.FullStream, control.Mismatches, control.Exhausted)
	}
	res, err := RunSMR(sc.Spec(n, slots, every, seed))
	if err != nil {
		t.Fatalf("%s n=%d seed %d: %v", sc.Name, n, seed, err)
	}
	if res.Exhausted {
		t.Fatalf("%s n=%d seed %d: delivery budget exhausted (liveness lost under attack)", sc.Name, n, seed)
	}
	if res.Mismatches != 0 {
		t.Errorf("%s n=%d seed %d: %d cross-replica log mismatches", sc.Name, n, seed, res.Mismatches)
	}
	if !res.FullStream {
		t.Errorf("%s n=%d seed %d: reference stream gapped", sc.Name, n, seed)
	}
	if res.SuffixDivergence != 0 {
		t.Errorf("%s n=%d seed %d: %d suffix divergences", sc.Name, n, seed, res.SuffixDivergence)
	}
	if res.LogDigest != control.LogDigest {
		t.Errorf("%s n=%d seed %d: log digest %016x, control %016x",
			sc.Name, n, seed, res.LogDigest, control.LogDigest)
	}
	if res.StateDigest != control.StateDigest {
		t.Errorf("%s n=%d seed %d: state digest %016x, control %016x",
			sc.Name, n, seed, res.StateDigest, control.StateDigest)
	}
	for i, c := range res.Committed {
		if c < slots {
			t.Errorf("%s n=%d seed %d: replica %d stopped at slot %d < %d", sc.Name, n, seed, i, c, slots)
		}
	}
	if sc.Restart && res.Transfers < 1 {
		t.Errorf("%s n=%d seed %d: victim installed no state transfer", sc.Name, n, seed)
	}
	if sc.MaxPendingCuts > 0 && res.PendingCutsMax > sc.MaxPendingCuts {
		t.Errorf("%s n=%d seed %d: pending cuts peaked at %d, cap %d",
			sc.Name, n, seed, res.PendingCutsMax, sc.MaxPendingCuts)
	}
}

// TestCkptScenariosHoldQuick is the quick checkpoint-adversary battery:
// every scenario, every seed, at n=16 (n=8 and one seed under -short).
func TestCkptScenariosHoldQuick(t *testing.T) {
	n, slots, seeds := 16, 24, []int64{1, 2, 3}
	if testing.Short() {
		n, seeds = 8, []int64{1}
	}
	for _, sc := range CkptScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			for _, seed := range seeds {
				checkCkptScenario(t, sc, n, slots, 8, seed)
			}
		})
	}
}

// TestCkptScenariosHoldFrontier re-runs the battery at the frontier scale.
// An n=64 slot costs ~n³ deliveries, so the scenarios run in parallel and
// the whole battery needs go test -timeout headroom (CI and the harness
// runbook use -timeout 60m).
func TestCkptScenariosHoldFrontier(t *testing.T) {
	if os.Getenv("REPRO_HARNESS_FULL") == "" {
		t.Skip("set REPRO_HARNESS_FULL=1 to run the n=64 checkpoint-adversary battery")
	}
	for _, sc := range CkptScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1, 2} {
				checkCkptScenario(t, sc, 64, 16, 8, seed)
			}
		})
	}
}

// TestVictimRetriesPastHostileResponders pins the retry/fallback loop
// end-to-end: with a stale or corrupt responder among the victim's peers,
// the victim must still catch up and commit — and across the battery the
// hostile responses and reactive retries must actually have fired (a battery
// that never routes a request to the attacker tests nothing).
func TestVictimRetriesPastHostileResponders(t *testing.T) {
	hostileHits := 0
	for _, kind := range []adversary.CkptAttack{adversary.CkptStaleResponder, adversary.CkptCorruptResponder} {
		for _, seed := range seedsUnderTest(t, 6) {
			// A tight interval over a long run keeps the revived victim
			// trailing the frontier through several paced requests, and the
			// attacker sits early in the responder rotation — so the hostile
			// response and the reactive retry fire on every seed.
			cfg := RestartCatchupSpec(4, 96, 4, seed)
			cfg.Attack = kind
			cfg.Byzantine = 1
			res, err := RunSMR(cfg)
			if err != nil {
				t.Fatalf("%v seed %d: %v", kind, seed, err)
			}
			if res.Exhausted || res.Mismatches != 0 || !res.FullStream {
				t.Errorf("%v seed %d: exhausted=%v mismatches=%d full=%v",
					kind, seed, res.Exhausted, res.Mismatches, res.FullStream)
			}
			if res.Transfers < 1 || res.VictimCommitted < 3 {
				t.Errorf("%v seed %d: victim never caught up (transfers=%d committed=%d)",
					kind, seed, res.Transfers, res.VictimCommitted)
			}
			hostileHits += res.StaleResponses + res.UnverifiableResponses + res.VictimRetries
		}
	}
	if hostileHits == 0 {
		t.Error("no hostile response was ever served or retried past: the battery has no fallback coverage")
	}
}

// TestSMRPowerCycleRecoversFromDisk is the whole-cluster power-cycle gate:
// a run persisting to a durable store directory, stopped at slot 24, then
// restarted over the same directory to slot 48, must reproduce the
// uninterrupted 48-slot run's digests bitwise — every replica boots from its
// own record (heterogeneous cuts), the ones behind catch up via announced
// certificates and state transfer, and re-committed suffix slots never
// contradict the persisted log.
func TestSMRPowerCycleRecoversFromDisk(t *testing.T) {
	for _, seed := range seedsUnderTest(t, 4) {
		dir := t.TempDir()
		base := SMRConfig{N: 4, F: 1, Slots: 48, Commands: 4, CheckpointEvery: 8, Seed: seed}
		uninterrupted, err := RunSMR(base)
		if err != nil {
			t.Fatal(err)
		}
		if !uninterrupted.FullStream || uninterrupted.Mismatches != 0 {
			t.Fatalf("seed %d: bad uninterrupted run: %+v", seed, uninterrupted)
		}

		phase1 := base
		phase1.Slots = 24
		phase1.CkptDir = dir
		p1, err := RunSMR(phase1)
		if err != nil {
			t.Fatal(err)
		}
		if p1.StoreErrors != 0 || p1.RestoredCuts != 0 {
			t.Fatalf("seed %d: phase 1 storeErrors=%d restored=%d", seed, p1.StoreErrors, p1.RestoredCuts)
		}
		if p1.Mismatches != 0 || p1.Exhausted {
			t.Fatalf("seed %d: bad phase 1 run: %+v", seed, p1)
		}

		phase2 := base
		phase2.CkptDir = dir
		p2, err := RunSMR(phase2)
		if err != nil {
			t.Fatal(err)
		}
		if p2.RestoredCuts != 4 {
			t.Errorf("seed %d: %d of 4 replicas booted from disk", seed, p2.RestoredCuts)
		}
		if p2.StoreErrors != 0 {
			t.Errorf("seed %d: phase 2 survived %d store errors, want 0", seed, p2.StoreErrors)
		}
		if p2.SuffixDivergence != 0 {
			t.Errorf("seed %d: %d re-committed entries contradicted the persisted suffix", seed, p2.SuffixDivergence)
		}
		if p2.Mismatches != 0 || !p2.FullStream || p2.Exhausted {
			t.Errorf("seed %d: phase 2 mismatches=%d full=%v exhausted=%v",
				seed, p2.Mismatches, p2.FullStream, p2.Exhausted)
		}
		if p2.LogDigest != uninterrupted.LogDigest {
			t.Errorf("seed %d: power-cycled log digest %016x, uninterrupted %016x",
				seed, p2.LogDigest, uninterrupted.LogDigest)
		}
		if p2.StateDigest != uninterrupted.StateDigest {
			t.Errorf("seed %d: power-cycled state digest %016x, uninterrupted %016x",
				seed, p2.StateDigest, uninterrupted.StateDigest)
		}
	}
}

// TestSMRStoreCorruptionFallsBackToNetwork: a replica whose durable record
// was corrupted on disk (torn write, bit rot) boots empty, reports the
// rejected load, and catches up through network state transfer — and the
// cluster's digests are unaffected.
func TestSMRStoreCorruptionFallsBackToNetwork(t *testing.T) {
	seed := int64(3)
	dir := t.TempDir()
	base := SMRConfig{N: 4, F: 1, Slots: 48, Commands: 4, CheckpointEvery: 8, Seed: seed}
	uninterrupted, err := RunSMR(base)
	if err != nil {
		t.Fatal(err)
	}

	phase1 := base
	phase1.Slots = 24
	phase1.CkptDir = dir
	if _, err := RunSMR(phase1); err != nil {
		t.Fatal(err)
	}

	// Bit-rot replica 2's record: its checksum must fail at boot.
	path := filepath.Join(dir, "replica-2.ckpt")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	phase2 := base
	phase2.CkptDir = dir
	p2, err := RunSMR(phase2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.StoreErrors == 0 {
		t.Error("corrupted record loaded without a store error")
	}
	if p2.RestoredCuts != 3 {
		t.Errorf("%d of 4 replicas booted from disk, want 3 (one record corrupted)", p2.RestoredCuts)
	}
	if p2.Mismatches != 0 || !p2.FullStream || p2.Exhausted || p2.SuffixDivergence != 0 {
		t.Errorf("phase 2 mismatches=%d full=%v exhausted=%v divergence=%d",
			p2.Mismatches, p2.FullStream, p2.Exhausted, p2.SuffixDivergence)
	}
	if p2.LogDigest != uninterrupted.LogDigest || p2.StateDigest != uninterrupted.StateDigest {
		t.Errorf("digests diverged after corrupted-record fallback: log %016x/%016x state %016x/%016x",
			p2.LogDigest, uninterrupted.LogDigest, p2.StateDigest, uninterrupted.StateDigest)
	}
}
