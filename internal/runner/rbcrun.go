package runner

import (
	"fmt"
	"strings"

	"repro/internal/adversary"
	"repro/internal/check"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/types"
)

// BroadcastMode selects the primitive under test.
type BroadcastMode int

// Broadcast modes.
const (
	// ModeReliable is Bracha reliable broadcast (SEND/ECHO/READY) — the
	// paper's primitive, with totality.
	ModeReliable BroadcastMode = iota
	// ModeConsistent is echo broadcast (SEND/ECHO): one phase cheaper, no
	// totality. Ablation A4 contrasts the two.
	ModeConsistent
)

// String implements fmt.Stringer.
func (m BroadcastMode) String() string {
	if m == ModeConsistent {
		return "consistent"
	}
	return "reliable"
}

// RBCConfig describes one broadcast experiment (E1, A4): a single instance
// broadcast into a system with optional Byzantine processes.
type RBCConfig struct {
	N int
	F int
	// Byzantine is the actual number of faulty processes (-1 = F). Faulty
	// processes are silent unless the sender attacks.
	Byzantine int
	// Mode selects reliable (default) or consistent broadcast.
	Mode BroadcastMode
	// SenderEquivocates makes the broadcast sender Byzantine: half the
	// processes are SENT body "A", half "B", and the remaining Byzantine
	// processes echo both. Otherwise process 1 (correct) broadcasts.
	SenderEquivocates bool
	// SenderPartial makes the broadcast sender Byzantine in a subtler way:
	// it addresses (SEND + its own ECHO) only just-enough correct
	// processes to let them deliver, starving the rest — the attack that
	// separates totality (reliable) from its absence (consistent).
	SenderPartial bool
	// PayloadSize is the broadcast body length in bytes.
	PayloadSize int
	Seed        int64
}

// RBCResult is the outcome of one RBC run.
type RBCResult struct {
	Messages   int
	Deliveries int
	Violations []check.Violation
	EndTime    sim.Time
	// Delivered maps each correct process to the bodies it delivered.
	Delivered map[types.ProcessID][]string
}

// bcaster is the shared surface of rbc.Broadcaster and rbc.Consistent.
type bcaster interface {
	Broadcast(tag types.Tag, body string) []types.Message
	Handle(from types.ProcessID, p *types.RBCPayload) ([]types.Message, []rbc.Delivery)
}

// rbcNode adapts a broadcast endpoint to sim.Node for single-instance
// experiments.
type rbcNode struct {
	me       types.ProcessID
	bcast    bcaster
	isSender bool
	tag      types.Tag
	body     string

	delivered []string
}

func (r *rbcNode) ID() types.ProcessID { return r.me }

func (r *rbcNode) Start() []types.Message {
	if !r.isSender {
		return nil
	}
	return r.bcast.Broadcast(r.tag, r.body)
}

func (r *rbcNode) Deliver(m types.Message) []types.Message {
	p, ok := m.Payload.(*types.RBCPayload)
	if !ok {
		return nil
	}
	out, ds := r.bcast.Handle(m.From, p)
	for _, d := range ds {
		r.delivered = append(r.delivered, d.Body)
	}
	return out
}

func (r *rbcNode) Done() bool { return false }

// rbcEquivocator is the Byzantine sender of the E1 attack variant: split
// SENDs plus double ECHO/READY from its colluders is modelled by the
// colluders (also rbcEquivocator with isSender=false) echoing both bodies.
type rbcEquivocator struct {
	me      types.ProcessID
	peers   []types.ProcessID
	tag     types.Tag
	bodies  [2]string
	sender  bool
	flooded bool
}

func (e *rbcEquivocator) ID() types.ProcessID { return e.me }

func (e *rbcEquivocator) Start() []types.Message {
	if !e.sender {
		return nil
	}
	id := types.InstanceID{Sender: e.me, Tag: e.tag}
	out := make([]types.Message, 0, len(e.peers))
	for i, p := range e.peers {
		body := e.bodies[0]
		if i >= len(e.peers)/2 {
			body = e.bodies[1]
		}
		out = append(out, types.Message{
			From:    e.me,
			To:      p,
			Payload: &types.RBCPayload{Phase: types.KindRBCSend, ID: id, Body: body},
		})
	}
	return out
}

func (e *rbcEquivocator) Deliver(m types.Message) []types.Message {
	p, ok := m.Payload.(*types.RBCPayload)
	if !ok || e.flooded {
		return nil
	}
	e.flooded = true
	var out []types.Message
	for _, body := range e.bodies {
		for _, phase := range []types.Kind{types.KindRBCEcho, types.KindRBCReady} {
			pl := &types.RBCPayload{Phase: phase, ID: p.ID, Body: body}
			out = append(out, types.Broadcast(e.me, e.peers, pl)...)
		}
	}
	return out
}

func (e *rbcEquivocator) Done() bool { return false }

// rbcPartialSender is the totality attack: SEND and ECHO addressed to just
// enough correct processes to let them deliver, starving the rest. Against
// reliable broadcast the victims' READY amplification rescues everyone;
// against consistent broadcast the starved processes never deliver.
type rbcPartialSender struct {
	me      types.ProcessID
	peers   []types.ProcessID
	tag     types.Tag
	body    string
	targets int
}

func (s *rbcPartialSender) ID() types.ProcessID { return s.me }

func (s *rbcPartialSender) Start() []types.Message {
	id := types.InstanceID{Sender: s.me, Tag: s.tag}
	out := make([]types.Message, 0, 2*s.targets)
	for _, p := range s.peers[:s.targets] {
		out = append(out,
			types.Message{From: s.me, To: p, Payload: &types.RBCPayload{Phase: types.KindRBCSend, ID: id, Body: s.body}},
			types.Message{From: s.me, To: p, Payload: &types.RBCPayload{Phase: types.KindRBCEcho, ID: id, Body: s.body}},
		)
	}
	return out
}

func (s *rbcPartialSender) Deliver(types.Message) []types.Message { return nil }

func (s *rbcPartialSender) Done() bool { return false }

// RunRBC executes one reliable-broadcast experiment.
func RunRBC(cfg RBCConfig) (*RBCResult, error) {
	if cfg.Byzantine < 0 {
		cfg.Byzantine = cfg.F
	}
	spec, err := quorum.New(cfg.N, cfg.F)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.PayloadSize <= 0 {
		cfg.PayloadSize = 32
	}
	peers := types.Processes(cfg.N)
	tag := types.Tag{Seq: 1}
	bodyA := strings.Repeat("a", cfg.PayloadSize)
	bodyB := strings.Repeat("b", cfg.PayloadSize)

	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	byzSet := make(map[types.ProcessID]bool, cfg.Byzantine)
	for _, p := range peers[cfg.N-cfg.Byzantine:] {
		byzSet[p] = true
	}
	byzSender := cfg.SenderEquivocates || cfg.SenderPartial
	var sender types.ProcessID = 1
	if byzSender {
		if cfg.Byzantine == 0 {
			return nil, fmt.Errorf("%w: a Byzantine sender needs byzantine > 0", ErrBadConfig)
		}
		sender = peers[cfg.N-cfg.Byzantine] // first Byzantine process
	}

	correct := make([]*rbcNode, 0, cfg.N-cfg.Byzantine)
	for _, p := range peers {
		if byzSet[p] {
			var adv sim.Node
			switch {
			case cfg.SenderPartial && p == sender:
				adv = &rbcPartialSender{
					me: p, peers: peers, tag: tag, body: bodyA,
					targets: spec.Echo() - 1,
				}
			case cfg.SenderPartial:
				adv = &adversary.Silent{Me: p}
			default:
				adv = &rbcEquivocator{
					me: p, peers: peers, tag: tag,
					bodies: [2]string{bodyA, bodyB},
					sender: cfg.SenderEquivocates && p == sender,
				}
			}
			if err := net.Add(adv); err != nil {
				return nil, err
			}
			continue
		}
		var b bcaster
		if cfg.Mode == ModeConsistent {
			b = rbc.NewConsistent(p, peers, spec)
		} else {
			b = rbc.New(p, peers, spec)
		}
		node := &rbcNode{
			me:       p,
			bcast:    b,
			isSender: !byzSender && p == sender,
			tag:      tag,
			body:     bodyA,
		}
		correct = append(correct, node)
		if err := net.Add(node); err != nil {
			return nil, err
		}
	}

	stats, err := net.Run(nil)
	if err != nil {
		return nil, err
	}

	res := &RBCResult{
		Messages:   stats.Sent,
		Deliveries: stats.Delivered,
		EndTime:    stats.End,
		Delivered:  make(map[types.ProcessID][]string, len(correct)),
	}
	obs := check.RBCObservation{
		SenderCorrect: !byzSender,
		Broadcast:     bodyA,
		Delivered:     make(map[types.ProcessID][]string, len(correct)),
		Quiesced:      true,
	}
	for _, nd := range correct {
		obs.Correct = append(obs.Correct, nd.me)
		obs.Delivered[nd.me] = nd.delivered
		res.Delivered[nd.me] = nd.delivered
	}
	if byzSender {
		// A Byzantine sender legitimately may cause nothing to deliver:
		// totality only applies when someone delivered, which check.RBC
		// already encodes; validity does not apply.
		obs.Broadcast = ""
	}
	res.Violations = check.RBC(obs)
	return res, nil
}
