package runner

// Windowing tests at the harness level: the straggler catch-up scenario
// (totality after RBC instances were pruned at every peer) and the
// aggregate-equality statement (sweep aggregates are bitwise identical with
// and without windowing, at any window size).

import (
	"encoding/json"
	"testing"
)

// TestStragglerCatchUpAfterRBCPrune is the catch-up half of the windowing
// contract, asserted at every seed: one correct node runs rounds behind a
// free-running pack (continuous inbound lag, spare fault slot, non-halting
// formulation), so by the time its traffic lands, the pack has compacted
// the RBC instances of those rounds to delivered-digest records — and the
// straggler must still decide (RBC totality feeding consensus termination),
// with no property violated. At the default window (1, the invariant's
// tightest) the compaction counter proves the pruning actually happened
// before the catch-up at every seed; the wider window is additionally held
// to the same properties (its floor trails further back, so whether any
// round falls below it depends on how far the pack free-runs).
func TestStragglerCatchUpAfterRBCPrune(t *testing.T) {
	sc, err := ScenarioByName("straggler-prune")
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 2} {
		spec, err := PropertySpec{N: 8, F: -1, Scenario: sc,
			Seeds: SeedRange{From: 1, To: 9}, Window: window}.SweepSpec()
		if err != nil {
			t.Fatal(err)
		}
		for seed := spec.Seeds.From; seed < spec.Seeds.To; seed++ {
			cfg := spec.Cfg
			cfg.Seed = seed
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) > 0 {
				t.Fatalf("window %d seed %d: %v", window, seed, res.Violations)
			}
			if !res.AllDecided {
				t.Errorf("window %d seed %d: the straggler (or a pack node) failed to decide after its RBC instances were pruned", window, seed)
			}
			if window == 1 && res.RBCCompacted == 0 {
				t.Errorf("seed %d: no RBC instance was compacted — the scenario did not exercise catch-up", seed)
			}
			if res.Exhausted {
				t.Errorf("window %d seed %d: delivery budget exhausted", window, seed)
			}
		}
	}
}

// TestWindowedSweepAggregatesIdentical is the aggregate half of the
// windowing contract, the in-process version of the CI bench diff: one
// scenario swept at window 1, window 4, a non-default dealer low-watermark
// cadence, and with pruning disabled entirely must produce byte-identical
// aggregates — windowing releases only provably dead state, so nothing any
// reducer sees can move.
func TestWindowedSweepAggregatesIdentical(t *testing.T) {
	sc, err := ScenarioByName("straggler-prune")
	if err != nil {
		t.Fatal(err)
	}
	seeds := SeedRange{From: 1, To: 9}
	marshal := func(p PropertySpec) string {
		t.Helper()
		agg, err := PropertySweep(p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(agg)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	base := marshal(PropertySpec{N: 8, F: -1, Scenario: sc, Seeds: seeds, Workers: 2})
	variants := map[string]PropertySpec{
		"window=4":       {N: 8, F: -1, Scenario: sc, Seeds: seeds, Workers: 2, Window: 4},
		"lowwater-every": {N: 8, F: -1, Scenario: sc, Seeds: seeds, Workers: 2, LowWatermarkEvery: 64},
		"no-prune":       {N: 8, F: -1, Scenario: sc, Seeds: seeds, Workers: 2, DisablePruning: true},
	}
	for name, p := range variants {
		if got := marshal(p); got != base {
			t.Errorf("%s: aggregate diverged from the default-window sweep\n got: %s\nwant: %s", name, got, base)
		}
	}
}

// TestDealerLowWatermarkBoundsRetention: under the common coin, the runner's
// cluster low-watermark keeps the dealer's memoized sharings bounded by the
// cluster round spread instead of the rounds run, with disabling pruning as
// the retain-everything control. The pinned (scenario, seed) is a
// deterministic four-round execution (liar-partition, seed 2): long enough
// that the watermark demonstrably releases dealt rounds, short enough for
// the default suite. The frequent-scan cadence sharpens the bound without
// moving behaviour (the aggregate-equality test holds the cadence knob to
// that).
func TestDealerLowWatermarkBoundsRetention(t *testing.T) {
	sc, err := ScenarioByName("liar-partition")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := PropertySpec{N: 8, F: -1, Scenario: sc,
		Seeds: SeedRange{From: 2, To: 3}, LowWatermarkEvery: 64}.SweepSpec()
	if err != nil {
		t.Fatal(err)
	}
	base := spec.Cfg
	base.Seed = 2
	pruned, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	unprunedCfg := base
	unprunedCfg.DisablePruning = true
	unpruned, err := Run(unprunedCfg)
	if err != nil {
		t.Fatal(err)
	}
	if unpruned.DealerRoundsRetained < 4 {
		t.Fatalf("control run dealt only %d rounds — the pinned seed no longer runs long enough to test the watermark", unpruned.DealerRoundsRetained)
	}
	if pruned.DealerRoundsRetained >= unpruned.DealerRoundsRetained {
		t.Errorf("low-watermark retained %d dealer rounds, unpruned %d — nothing was released",
			pruned.DealerRoundsRetained, unpruned.DealerRoundsRetained)
	}
	// Behaviour equality on the side: same deliveries, decisions, rounds.
	if pruned.Deliveries != unpruned.Deliveries || pruned.MaxRound != unpruned.MaxRound {
		t.Errorf("dealer pruning changed the execution: %d/%d deliveries, %d/%d max round",
			pruned.Deliveries, unpruned.Deliveries, pruned.MaxRound, unpruned.MaxRound)
	}
}
