// Package runner is the experiment harness: it assembles a cluster (correct
// nodes of either protocol, Byzantine adversaries, a scheduler, a coin),
// runs it on the simulator to quiescence, applies the invariant checkers,
// and reports metrics. Every test sweep, benchmark, and cmd/bench experiment
// goes through Run, so "0 violations" always means machine-checked.
//
// Three layers build on Run:
//
//   - Sweep/SweepSeeds fan independent runs across a worker pool, buffering
//     all results (fine for table-sized sweeps).
//   - SweepStream/SweepSeedRange stream results through a constant-memory
//     reducer with periodic resumable checkpoints — the engine for
//     million-run sweeps (format and determinism contract: checkpoint.go).
//   - PropertySweep drives the adversarial property-test scenario battery
//     (harness.go) through the streaming engine.
package runner

import (
	"errors"
	"fmt"

	"repro/internal/adversary"
	"repro/internal/baseline"
	"repro/internal/check"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
	"repro/internal/wire"
)

// Protocol selects the consensus implementation.
type Protocol int

// Protocols.
const (
	ProtocolBracha Protocol = iota + 1 // the paper's protocol (n > 3f)
	ProtocolBenOr                      // the 1983 baseline (n > 5f)
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtocolBracha:
		return "bracha"
	case ProtocolBenOr:
		return "benor"
	default:
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
}

// CoinKind selects the randomization source.
type CoinKind int

// Coin kinds.
const (
	CoinLocal  CoinKind = iota + 1 // private per-process flips (Ben-Or style)
	CoinCommon                     // Rabin-style dealer coin
	CoinIdeal                      // test-only shared coin, no messages
)

// String implements fmt.Stringer.
func (c CoinKind) String() string {
	switch c {
	case CoinLocal:
		return "local"
	case CoinCommon:
		return "common"
	case CoinIdeal:
		return "ideal"
	default:
		return fmt.Sprintf("CoinKind(%d)", int(c))
	}
}

// Adversary selects the Byzantine behaviour of the faulty processes.
type Adversary int

// Adversary kinds.
const (
	AdvNone         Adversary = iota + 1 // no faulty processes at all
	AdvSilent                            // crash at time zero
	AdvEquivocator                       // RBC equivocation + double echo/ready
	AdvLiar                              // protocol-shaped value flipping
	AdvDecideForger                      // forged DECIDE gadget messages
	AdvSplitBrain                        // per-partition personalities (E7)
	AdvCrashMidway                       // correct participation, then mid-protocol crash
)

// String implements fmt.Stringer.
func (a Adversary) String() string {
	switch a {
	case AdvNone:
		return "none"
	case AdvSilent:
		return "silent"
	case AdvEquivocator:
		return "equivocator"
	case AdvLiar:
		return "liar"
	case AdvDecideForger:
		return "decide-forger"
	case AdvSplitBrain:
		return "split-brain"
	case AdvCrashMidway:
		return "crash-midway"
	default:
		return fmt.Sprintf("Adversary(%d)", int(a))
	}
}

// SchedulerKind selects message scheduling.
type SchedulerKind int

// Scheduler kinds.
const (
	SchedUniform      SchedulerKind = iota + 1 // uniform random delays (fair async)
	SchedFIFO                                  // uniform + per-link FIFO
	SchedRushByz                               // uniform, Byzantine traffic rushed
	SchedPartition                             // uniform, cross-partition traffic delayed
	SchedReorder                               // adversarial newest-first reordering (+ rushed Byzantine)
	SchedSplitHeal                             // network split between correct halves, healed mid-run
	SchedRejoin                                // one correct process unreachable, rejoining mid-run
	SchedStraggler                             // one correct process runs rounds behind on a continuously lagged inbox
	SchedLossy                                 // lossy/duplicating/jittery links under ARQ (loss converts to delay)
	SchedTopology                              // ring topology: traffic relayed along the overlay, HopLag per hop
	SchedAdaptive                              // adaptive adversary: delay targeted at the decision frontier
	SchedAdaptiveRush                          // adaptive + traffic-triggered rush of Byzantine traffic at the victim
)

// Default adversarial schedule timings (simulator ticks; base delays are
// 1..20, so a consensus round typically spans a few dozen ticks — these land
// the heal and the rejoin several rounds into the run). Each is the value a
// zero SchedParams field resolves to, so configs predating the parameterized
// zoo replay bitwise identically.
const (
	healTime     sim.Time = 240 // SchedSplitHeal: when cross-partition traffic thaws
	rejoinTime   sim.Time = 300 // SchedRejoin: when the victim's inbox floods back
	reorderSpan  sim.Time = 48  // SchedReorder: the newest-first reordering window
	stragglerLag sim.Time = 300 // SchedStraggler: extra delay on all straggler-bound links
	partitionLag sim.Time = 500 // SchedPartition: extra delay on cross-partition links

	defaultLossPct                = 20  // SchedLossy: per-attempt loss probability, percent
	defaultDupPct                 = 10  // SchedLossy: per-send duplication probability, percent
	defaultRetransmitLag sim.Time = 40  // SchedLossy: delay per lost attempt
	defaultTopoDegree             = 2   // SchedTopology: direct reach in ring hops
	defaultHopLag        sim.Time = 12  // SchedTopology: delay per relay hop
	defaultTargetLag     sim.Time = 120 // SchedAdaptive*: extra delay into the frontier process
)

// SchedParams parameterizes the scheduler zoo: every hardcoded timing of the
// adversarial schedule families, lifted into one searchable coordinate
// space. The zero value of every field means "the historical default", so a
// zero SchedParams reproduces the pre-parameterization schedules bitwise —
// the golden replay hashes pin this. internal/search walks this space
// hunting liveness cliffs; a point it finds can be pinned verbatim on a
// Scenario.
type SchedParams struct {
	HealTime     sim.Time `json:"healTime,omitempty"`     // SchedSplitHeal thaw time
	RejoinTime   sim.Time `json:"rejoinTime,omitempty"`   // SchedRejoin flood time
	ReorderSpan  sim.Time `json:"reorderSpan,omitempty"`  // SchedReorder window
	StragglerLag sim.Time `json:"stragglerLag,omitempty"` // SchedStraggler inbound lag
	PartitionLag sim.Time `json:"partitionLag,omitempty"` // SchedPartition cross-link lag

	LossPct       int      `json:"lossPct,omitempty"`       // SchedLossy loss percent
	DupPct        int      `json:"dupPct,omitempty"`        // SchedLossy duplication percent
	RetransmitLag sim.Time `json:"retransmitLag,omitempty"` // SchedLossy per-loss delay

	TopoDegree int      `json:"topoDegree,omitempty"` // SchedTopology ring reach
	HopLag     sim.Time `json:"hopLag,omitempty"`     // SchedTopology per-hop delay

	TargetLag sim.Time `json:"targetLag,omitempty"` // SchedAdaptive* frontier delay
}

// withDefaults resolves zero fields to the historical constants.
func (p SchedParams) withDefaults() SchedParams {
	if p.HealTime == 0 {
		p.HealTime = healTime
	}
	if p.RejoinTime == 0 {
		p.RejoinTime = rejoinTime
	}
	if p.ReorderSpan == 0 {
		p.ReorderSpan = reorderSpan
	}
	if p.StragglerLag == 0 {
		p.StragglerLag = stragglerLag
	}
	if p.PartitionLag == 0 {
		p.PartitionLag = partitionLag
	}
	if p.LossPct == 0 {
		p.LossPct = defaultLossPct
	}
	if p.DupPct == 0 {
		p.DupPct = defaultDupPct
	}
	if p.RetransmitLag == 0 {
		p.RetransmitLag = defaultRetransmitLag
	}
	if p.TopoDegree == 0 {
		p.TopoDegree = defaultTopoDegree
	}
	if p.HopLag == 0 {
		p.HopLag = defaultHopLag
	}
	if p.TargetLag == 0 {
		p.TargetLag = defaultTargetLag
	}
	return p
}

// String implements fmt.Stringer.
func (s SchedulerKind) String() string {
	switch s {
	case SchedUniform:
		return "uniform"
	case SchedFIFO:
		return "fifo"
	case SchedRushByz:
		return "rush-byz"
	case SchedPartition:
		return "partition"
	case SchedReorder:
		return "reorder"
	case SchedSplitHeal:
		return "split-heal"
	case SchedRejoin:
		return "rejoin"
	case SchedStraggler:
		return "straggler"
	case SchedLossy:
		return "lossy"
	case SchedTopology:
		return "topology"
	case SchedAdaptive:
		return "adaptive"
	case SchedAdaptiveRush:
		return "adaptive-rush"
	default:
		return fmt.Sprintf("SchedulerKind(%d)", int(s))
	}
}

// Inputs selects the proposal pattern of the correct processes.
type Inputs int

// Input patterns.
const (
	InputUnanimous0 Inputs = iota + 1
	InputUnanimous1
	InputSplit  // alternating 0, 1, 0, 1, ...
	InputRandom // seeded random bits
)

// String implements fmt.Stringer.
func (i Inputs) String() string {
	switch i {
	case InputUnanimous0:
		return "unanimous-0"
	case InputUnanimous1:
		return "unanimous-1"
	case InputSplit:
		return "split"
	case InputRandom:
		return "random"
	default:
		return fmt.Sprintf("Inputs(%d)", int(i))
	}
}

// Config describes one experiment run.
type Config struct {
	N int // total processes
	F int // assumed fault bound (thresholds derive from this)
	// Byzantine is the actual number of faulty processes; -1 means "equal
	// to F". Setting it above F reproduces the tightness experiment.
	Byzantine int

	Protocol  Protocol
	Coin      CoinKind
	Adversary Adversary
	Scheduler SchedulerKind
	Inputs    Inputs
	// Sched parameterizes the scheduler family (zero value = the historical
	// defaults, so pre-existing configs — and their golden replay hashes and
	// checkpoint manifests — are untouched). See SchedParams.
	Sched SchedParams `json:",omitzero"`

	Seed          int64
	MaxDeliveries int  // 0 = sim default
	MaxRounds     int  // 0 = protocol default
	Trace         bool // record events (slower, for debugging)
	// Telemetry attaches the deterministic telemetry plane: per-kind wire
	// counters and latency histograms plus protocol phase histograms,
	// surfaced as Result.Telemetry. Integer state only — the report is a
	// pure function of (Config, Seed), bitwise identical across worker
	// counts and GOMAXPROCS.
	Telemetry bool

	DisableValidation   bool // ablation A1 (Bracha only)
	DisableDecideGadget bool // ablation A2
	// Coded disseminates step messages over erasure-coded reliable broadcast
	// (Bracha only; Ben-Or has no RBC plane). Decisions and rounds are
	// identical to the uncoded mode; Result.WireBytes shows the cost side —
	// for step-sized bodies coding is a bandwidth *loss* (the checksum vector
	// dwarfs the body), which is exactly what experiment E14 quantifies
	// against the batch-sized bodies of the SMR plane.
	Coded bool
	// DisablePruning retains per-round state for the whole run (Bracha
	// only; behaviour-neutral by construction — the E11 memory comparison
	// and `bench -sweep -no-prune` are its only users).
	DisablePruning bool
	// Window is the per-round retention window of the correct Bracha nodes
	// (0 = the core default of 1; see core.Config.Window). Behaviour-
	// neutral at any value: the windowed golden-replay tests and the CI
	// sweep diff hold every run bitwise identical across window sizes.
	Window int
	// LowWatermarkEvery is how many deliveries pass between cluster
	// low-watermark scans for the common-coin dealer (0 = default). Each
	// scan takes the minimum current round across the correct nodes and
	// prunes the dealer's memoized sharings below it — the only per-round
	// retainer shared across the cluster, so no single node may prune it
	// alone. Behaviour-neutral: pruned rounds are ones no process will
	// release or query again.
	LowWatermarkEvery int
}

// DefaultLowWatermarkEvery is the default delivery cadence of dealer
// low-watermark scans: frequent enough that dealer retention tracks the
// cluster's slowest process closely, rare enough that the O(n) round scan
// is amortized to nothing against the ~n³ deliveries a round takes.
const DefaultLowWatermarkEvery = 1024

// DealerFloor is the dealer's pruning floor for a cluster whose slowest
// correct process is at minRound under retention window W (0 or less = the
// default of 1): everything below minRound − (W−1) is provably dead — no
// process will release or query a round below its own current round, and
// rounds only advance. Every low-watermark scan (runner.Run's delivery
// loop, experiment E11's workload) must derive its floor from this one
// function: the arithmetic is load-bearing for the never-re-deal guarantee
// (see coin.Dealer's windowing contract).
func DealerFloor(minRound, window int) int {
	if window <= 0 {
		window = 1
	}
	return minRound - (window - 1)
}

// Result is what one run produced.
type Result struct {
	Config     Config
	Violations []check.Violation
	Decisions  map[types.ProcessID]types.Value
	// Rounds maps each decided correct process to its decision round.
	Rounds map[types.ProcessID]int
	// MeanRounds averages Rounds over decided processes (0 if none).
	MeanRounds float64
	// MaxRound is the largest decision round (0 if none decided).
	MaxRound int
	// AllDecided reports whether every correct process decided.
	AllDecided bool
	// Messages / Deliveries / EndTime / Exhausted come from the simulator.
	Messages   int
	Deliveries int
	EndTime    sim.Time
	Exhausted  bool
	// WireBytes is the wire.MessageSize total over every sent message — the
	// run's bandwidth under the real codec, measured without encoding.
	WireBytes int64
	// Dropped counts messages the scheduler dropped or that expired when
	// their destination finished; Spoofed counts sends rejected for a forged
	// From (see sim.Stats).
	Dropped int
	Spoofed int
	// PrunedLate sums, over the correct Bracha nodes, the justified
	// messages that arrived for rounds already released by per-round
	// pruning and were dropped (see core.Stats.PrunedLate).
	PrunedLate int
	// RBCCompacted sums, over the correct Bracha nodes, the terminal RBC
	// instances released to compact delivered-digest records by windowed
	// pruning (0 with pruning disabled).
	RBCCompacted int
	// RBCDigestBytes sums the bytes the correct Bracha nodes retain in
	// compact delivered-digest records at the end of the run — the residue
	// windowed pruning keeps forever, retired only by protocol-level
	// checkpointing (internal/ckpt, experiment E12).
	RBCDigestBytes int
	// JustificationsRetained sums the per-round justification digests the
	// correct Bracha nodes' validators retain at the end of the run — the
	// other forever-residue of windowed pruning.
	JustificationsRetained int
	// DealerRoundsRetained is the common-coin dealer's memoized sharing
	// count at the end of the run (0 for other coins) — bounded by the
	// cluster round spread under low-watermark pruning, linear in rounds
	// without it.
	DealerRoundsRetained int
	// Recorder holds the trace when Config.Trace was set.
	Recorder *trace.Recorder
	// Telemetry holds the telemetry sink when Config.Telemetry was set.
	Telemetry *sim.Telemetry
}

// node is the common read surface of both protocol implementations.
type node interface {
	sim.Node
	Decided() (types.Value, bool)
	DecidedRound() int
	Round() int
	Proposal() types.Value
}

// Config errors.
var (
	ErrBadConfig = errors.New("runner: invalid config")
)

// Run executes one configured experiment.
func Run(cfg Config) (*Result, error) {
	if cfg.Byzantine < 0 {
		cfg.Byzantine = cfg.F
	}
	spec, err := quorum.New(cfg.N, cfg.F)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Byzantine >= cfg.N {
		return nil, fmt.Errorf("%w: %d byzantine of %d processes", ErrBadConfig, cfg.Byzantine, cfg.N)
	}
	if cfg.Adversary == AdvNone {
		cfg.Byzantine = 0
	}
	if cfg.Byzantine == 0 {
		cfg.Adversary = AdvNone
	}
	if cfg.Protocol == ProtocolBenOr && cfg.DisableValidation {
		return nil, fmt.Errorf("%w: Ben-Or has no validation to disable", ErrBadConfig)
	}
	if cfg.Protocol == ProtocolBenOr && cfg.Coded {
		return nil, fmt.Errorf("%w: Ben-Or has no broadcast plane to code", ErrBadConfig)
	}

	peers := types.Processes(cfg.N)
	correct := peers[:cfg.N-cfg.Byzantine]
	byz := peers[cfg.N-cfg.Byzantine:]
	groupA, groupB := splitGroups(correct)

	var rec *trace.Recorder
	if cfg.Trace {
		rec = trace.New(0)
	}
	var tele *sim.Telemetry
	if cfg.Telemetry {
		tele = sim.NewTelemetry()
	}
	net, err := sim.New(sim.Config{
		Scheduler:     buildScheduler(cfg, byz, groupA, groupB),
		Seed:          cfg.Seed,
		MaxDeliveries: cfg.MaxDeliveries,
		Recorder:      rec,
		Telemetry:     tele,
		Sizer:         wire.MessageSize,
	})
	if err != nil {
		return nil, err
	}

	var dealer *coin.Dealer
	if cfg.Coin == CoinCommon {
		dealer = coin.NewDealer(spec, cfg.Seed+1)
	}
	coinFor := func(p types.ProcessID) (coin.Coin, error) {
		switch cfg.Coin {
		case CoinLocal:
			return coin.NewLocal(cfg.Seed + 1000*int64(p)), nil
		case CoinCommon:
			return coin.NewCommon(p, peers, dealer), nil
		case CoinIdeal:
			return coin.NewIdeal(cfg.Seed + 2), nil
		default:
			return nil, fmt.Errorf("%w: coin %v", ErrBadConfig, cfg.Coin)
		}
	}

	nodes := make([]node, 0, len(correct))
	for i, p := range correct {
		c, err := coinFor(p)
		if err != nil {
			return nil, err
		}
		nd, err := buildCorrect(cfg, spec, p, peers, c, proposalFor(cfg, i, p), rec, tele)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			return nil, err
		}
	}
	for _, p := range byz {
		adv, err := buildAdversary(cfg, spec, p, peers, groupA, groupB)
		if err != nil {
			return nil, err
		}
		if adv == nil {
			continue // silent processes need no node at all
		}
		if err := net.Add(adv); err != nil {
			return nil, err
		}
	}

	stop := func() bool {
		for _, nd := range nodes {
			if cfg.DisableDecideGadget {
				if _, ok := nd.Decided(); !ok {
					return false
				}
			} else if !nd.Done() {
				return false
			}
		}
		return true
	}
	if dealer != nil && !cfg.DisablePruning && len(nodes) > 0 {
		// The dealer's memoized sharings are shared cluster state: prune
		// them by the cluster low-watermark — the minimum current round
		// across the correct nodes, a round no process will release or
		// query again (rounds only advance; ShareFor is only called for a
		// node's current round). Scanned every LowWatermarkEvery
		// deliveries inside the existing stop callback; the cadence moves
		// only retention, never behaviour, so it is exempt from the replay
		// contract the same way pruning itself is.
		every := cfg.LowWatermarkEvery
		if every <= 0 {
			every = DefaultLowWatermarkEvery
		}
		inner := stop
		countdown := every
		stop = func() bool {
			if countdown--; countdown <= 0 {
				countdown = every
				low := nodes[0].Round()
				for _, nd := range nodes[1:] {
					if r := nd.Round(); r < low {
						low = r
					}
				}
				dealer.Prune(DealerFloor(low, cfg.Window))
			}
			return inner()
		}
	}
	stats, err := net.Run(stop)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Config:     cfg,
		Decisions:  make(map[types.ProcessID]types.Value, len(nodes)),
		Rounds:     make(map[types.ProcessID]int, len(nodes)),
		Messages:   stats.Sent,
		Deliveries: stats.Delivered,
		EndTime:    stats.End,
		Exhausted:  stats.Exhausted,
		WireBytes:  stats.Bytes,
		Dropped:    stats.Dropped,
		Spoofed:    stats.Spoofed,
		Recorder:   rec,
		Telemetry:  tele,
		AllDecided: true,
	}
	obs := check.ConsensusObservation{
		Proposals: make(map[types.ProcessID]types.Value, len(nodes)),
		Decisions: make(map[types.ProcessID][]types.Value, len(nodes)),
		Quiesced:  true,
	}
	var roundSum int
	for _, nd := range nodes {
		id := nd.ID()
		obs.Correct = append(obs.Correct, id)
		obs.Proposals[id] = nd.Proposal()
		if cn, ok := nd.(*core.Node); ok {
			res.PrunedLate += cn.Stats().PrunedLate
			res.RBCCompacted += cn.RBCCompacted()
			res.RBCDigestBytes += cn.RBCDigestBytes()
			res.JustificationsRetained += cn.JustificationsRetained()
		}
		if v, ok := nd.Decided(); ok {
			obs.Decisions[id] = []types.Value{v}
			res.Decisions[id] = v
			r := nd.DecidedRound()
			res.Rounds[id] = r
			roundSum += r
			if r > res.MaxRound {
				res.MaxRound = r
			}
		} else {
			res.AllDecided = false
		}
	}
	if len(res.Rounds) > 0 {
		res.MeanRounds = float64(roundSum) / float64(len(res.Rounds))
	}
	if dealer != nil {
		res.DealerRoundsRetained = dealer.RoundsRetained()
	}
	res.Violations = check.Consensus(obs)
	return res, nil
}

// proposalFor derives the i-th correct process's input.
func proposalFor(cfg Config, i int, p types.ProcessID) types.Value {
	switch cfg.Inputs {
	case InputUnanimous1:
		return types.One
	case InputSplit:
		return types.Value(i % 2)
	case InputRandom:
		return types.Value(mixBits(cfg.Seed, int64(p)) & 1)
	default: // InputUnanimous0 and zero value
		return types.Zero
	}
}

// mixBits is a small deterministic mixer for input assignment.
func mixBits(seed, p int64) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(p)*0xBF58476D1CE4E5B9
	x ^= x >> 29
	x *= 0x94D049BB133111EB
	x ^= x >> 32
	return int64(x & 0x7FFFFFFFFFFFFFFF)
}

// splitGroups halves the correct processes (for SplitBrain and partition
// scheduling).
func splitGroups(correct []types.ProcessID) (a, b []types.ProcessID) {
	half := (len(correct) + 1) / 2
	return correct[:half], correct[half:]
}

// buildCorrect constructs a correct node of the configured protocol.
func buildCorrect(cfg Config, spec quorum.Spec, p types.ProcessID, peers []types.ProcessID,
	c coin.Coin, proposal types.Value, rec *trace.Recorder, tele *sim.Telemetry) (node, error) {
	switch cfg.Protocol {
	case ProtocolBracha:
		return core.New(core.Config{
			Me: p, Peers: peers, Spec: spec, Coin: c, Proposal: proposal,
			Recorder:            rec,
			Telemetry:           tele,
			Coded:               cfg.Coded,
			DisableValidation:   cfg.DisableValidation,
			DisableDecideGadget: cfg.DisableDecideGadget,
			DisablePruning:      cfg.DisablePruning,
			Window:              cfg.Window,
			MaxRounds:           cfg.MaxRounds,
		})
	case ProtocolBenOr:
		return baseline.New(baseline.Config{
			Me: p, Peers: peers, Spec: spec, Coin: c, Proposal: proposal,
			Recorder:            rec,
			DisableDecideGadget: cfg.DisableDecideGadget,
			MaxRounds:           cfg.MaxRounds,
		})
	default:
		return nil, fmt.Errorf("%w: protocol %v", ErrBadConfig, cfg.Protocol)
	}
}

// buildAdversary constructs one Byzantine node (nil for silent: absence is
// the behaviour).
func buildAdversary(cfg Config, spec quorum.Spec, p types.ProcessID, peers []types.ProcessID,
	groupA, groupB []types.ProcessID) (sim.Node, error) {
	switch cfg.Adversary {
	case AdvSilent:
		return nil, nil
	case AdvEquivocator:
		if cfg.Protocol == ProtocolBenOr {
			return adversary.NewPlainEquivocator(p, peers), nil
		}
		return &adversary.Equivocator{Me: p, Peers: peers}, nil
	case AdvLiar:
		if cfg.Protocol == ProtocolBenOr {
			return adversary.NewPlainEquivocator(p, peers), nil
		}
		return adversary.NewLiar(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewLocal(cfg.Seed + 7777*int64(p)),
			Proposal: types.Zero,
		})
	case AdvDecideForger:
		return &adversary.DecideForger{Me: p, Peers: peers, V: types.Value(int(p) % 2)}, nil
	case AdvSplitBrain:
		return adversary.NewSplitBrain(p, peers, spec, groupA, groupB, cfg.Seed+3)
	case AdvCrashMidway:
		if cfg.Protocol == ProtocolBenOr {
			return nil, nil // Ben-Or baseline: model as silent
		}
		// Crash somewhere inside the first round's traffic, varying by
		// seed and process so colluders die at different points.
		budget := 10 + int((cfg.Seed+int64(p)*7)%40)
		return adversary.NewCrashAfter(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewLocal(cfg.Seed + 991*int64(p)),
			Proposal: types.Value(int(p) % 2),
		}, budget)
	default:
		return nil, fmt.Errorf("%w: adversary %v", ErrBadConfig, cfg.Adversary)
	}
}

// buildScheduler assembles the configured scheduler, resolving the family's
// parameters through cfg.Sched (zero fields = historical defaults).
func buildScheduler(cfg Config, byz, groupA, groupB []types.ProcessID) sim.Scheduler {
	sp := cfg.Sched.withDefaults()
	uniform := sim.UniformDelay{Min: 1, Max: 20}
	base := sim.Scheduler(uniform)
	// withRush composes rules with rushed Byzantine traffic (the strongest
	// position for the adversary's own messages).
	withRush := func(b sim.Scheduler, rules ...sim.Rule) sim.Scheduler {
		if len(byz) > 0 {
			rules = append(rules, sim.RushFrom(byz...))
		}
		if len(rules) == 0 {
			return b
		}
		return sim.Compose{Base: b, Rules: rules}
	}
	switch cfg.Scheduler {
	case SchedFIFO:
		return sim.NewFIFODelay(1, 20)
	case SchedRushByz:
		return sim.Compose{Base: base, Rules: []sim.Rule{sim.RushFrom(byz...)}}
	case SchedPartition:
		var links [][2]types.ProcessID
		for _, a := range groupA {
			for _, b := range groupB {
				links = append(links, [2]types.ProcessID{a, b}, [2]types.ProcessID{b, a})
			}
		}
		return withRush(base, sim.DelayLinks(sp.PartitionLag, links...))
	case SchedReorder:
		return withRush(sim.ReorderDelay{Span: sp.ReorderSpan})
	case SchedSplitHeal:
		return withRush(base, sim.HealPartition(sp.HealTime, groupA, groupB))
	case SchedLossy:
		return withRush(sim.LossyDelay{
			Base:          uniform,
			LossPct:       sp.LossPct,
			DupPct:        sp.DupPct,
			RetransmitLag: sp.RetransmitLag,
		})
	case SchedTopology:
		return withRush(sim.TopologyDelay{
			Base:   uniform,
			N:      cfg.N,
			Degree: sp.TopoDegree,
			HopLag: sp.HopLag,
		})
	case SchedAdaptive:
		return sim.NewAdaptive(uniform, sp.TargetLag, false, byz)
	case SchedAdaptiveRush:
		return sim.NewAdaptive(uniform, sp.TargetLag, true, byz)
	case SchedRejoin:
		// The victim is the last correct process: unreachable until the
		// rejoin time, then flooded with everything it missed. Rules apply
		// in order, so the rush must come first — otherwise it would
		// override the hold for Byzantine traffic and pierce the outage
		// (rushed messages instead land at exactly the rejoin time).
		victims := groupB
		if len(victims) == 0 {
			victims = groupA
		}
		if len(victims) == 0 {
			return base
		}
		rules := []sim.Rule{sim.HoldUntil(sp.RejoinTime, victims[len(victims)-1])}
		if len(byz) > 0 {
			rules = append([]sim.Rule{sim.RushFrom(byz...)}, rules...)
		}
		return sim.Compose{Base: base, Rules: rules}
	case SchedStraggler:
		// Every link into the straggler (the last correct process,
		// including its loopback) carries a constant extra lag worth
		// several rounds, so it processes the protocol a fixed distance
		// behind everyone else for the whole run. Combined with a spare
		// fault slot (the pack's quorums never need the straggler) and
		// the non-halting formulation (the decided pack keeps starting
		// rounds until the straggler decides too), the pack stays rounds
		// ahead — and every message the straggler emits reaches peers
		// that pruned its round long ago, exercising the late-drop path
		// continuously. Only inbound traffic lags: the straggler's own
		// emissions travel normally, which is exactly what makes them
		// stale on arrival.
		victims := groupB
		if len(victims) == 0 {
			victims = groupA
		}
		if len(victims) == 0 {
			return base
		}
		straggler := victims[len(victims)-1]
		links := make([][2]types.ProcessID, 0, cfg.N)
		for _, p := range types.Processes(cfg.N) {
			links = append(links, [2]types.ProcessID{p, straggler})
		}
		return withRush(base, sim.DelayLinks(sp.StragglerLag, links...))
	default: // SchedUniform and zero value
		return base
	}
}
