package runner

import (
	"fmt"

	"repro/internal/quorum"
	"repro/internal/sim"
)

// This file is the adversarial property-test harness: a battery of named
// scenarios — each a seed-driven adversarial schedule plus Byzantine
// behaviour — swept across thousands of seeds through the streaming
// checkpointable engine, asserting the paper's properties (agreement,
// validity, integrity, termination for consensus; the four RBC properties
// for broadcast) on every single run via internal/check. Randomized
// asynchronous protocols are only trustworthy under adversarial schedules,
// so this harness, not the golden replays, is what backs the repository's
// "0 violations" claims at the n=64/128 frontier.

// Scenario is one adversarial property-test setup.
type Scenario struct {
	// Name identifies the scenario (cmd/bench -scenario).
	Name string
	// RBC marks a reliable-broadcast scenario; otherwise it is a full
	// consensus scenario.
	RBC bool

	// Consensus knobs.
	Adversary Adversary
	Scheduler SchedulerKind
	Coin      CoinKind
	Inputs    Inputs
	// Sched pins the scheduler family's parameters (zero = historical
	// defaults). Cliff scenarios found by internal/search carry the
	// offending point here verbatim.
	Sched SchedParams

	// RBC knobs (see RBCConfig).
	SenderEquivocates bool
	SenderPartial     bool

	// NoHalt runs the paper's original non-halting formulation (decide
	// gadget off): processes decide but keep starting rounds until every
	// correct process has decided. Scenarios that need decided processes
	// to keep running — so round skew between fast and slow processes
	// keeps growing — use this.
	NoHalt bool
	// SpareFault runs with one fewer actual Byzantine process than the
	// bound assumes (f−1 instead of f). The unused quorum slot means the
	// remaining correct processes can make progress with one of their own
	// cut off — the precondition for any scenario that wants genuine
	// round skew between correct processes at optimal resilience.
	SpareFault bool
	// BudgetScale multiplies the size-scaled delivery budget (0 = 1).
	// Scenarios whose schedules stretch the run far beyond the usual
	// constant number of rounds need the headroom.
	BudgetScale int

	// Doc is a one-line description of what the scenario attacks.
	Doc string
}

// Scenarios returns the harness battery. Every entry must hold all
// properties at optimal resilience — a single violation anywhere in a sweep
// is a failed run of the harness.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "equivocation-rush", Adversary: AdvEquivocator, Scheduler: SchedRushByz,
			Coin: CoinCommon, Inputs: InputSplit,
			Doc: "Byzantine echo equivocation with rushed adversarial traffic",
		},
		{
			Name: "liar-partition", Adversary: AdvLiar, Scheduler: SchedPartition,
			Coin: CoinCommon, Inputs: InputSplit,
			Doc: "protocol-shaped value flipping across a delayed partition",
		},
		{
			Name: "split-heal", Adversary: AdvEquivocator, Scheduler: SchedSplitHeal,
			Coin: CoinCommon, Inputs: InputSplit,
			Doc: "network split between correct halves, healed mid-run, equivocators throughout",
		},
		{
			Name: "reorder", Adversary: AdvLiar, Scheduler: SchedReorder,
			Coin: CoinCommon, Inputs: InputRandom,
			Doc: "adversarial newest-first message reordering under a liar",
		},
		{
			// The liveness cliff found by internal/search (the adaptive
			// family's summit, `bench -search adaptive`): the adaptive
			// adversary reads the decision frontier, lags all traffic toward
			// the most advanced correct process by the searched TargetLag,
			// and rushes Byzantine traffic there first. Against the same
			// liar/common-coin/random-input setup, this schedule costs
			// strictly more rounds to decide than "reorder"'s newest-first
			// span (TestAdaptiveCliffSlowerThanReorder pins the gap). Safety
			// and termination must still hold — the cliff is rounds, never
			// correctness.
			Name: "adaptive-cliff", Adversary: AdvLiar, Scheduler: SchedAdaptiveRush,
			Coin: CoinCommon, Inputs: InputRandom,
			Sched: SchedParams{TargetLag: 480},
			Doc:   "searched frontier-targeted delay + rush point that maximizes rounds-to-decide",
		},
		{
			Name: "crash-rejoin", Adversary: AdvCrashMidway, Scheduler: SchedRejoin,
			Coin: CoinCommon, Inputs: InputSplit,
			Doc: "mid-protocol crashes plus a correct process rejoining from a long outage",
		},
		{
			// Unanimous inputs with private coins: the run must decide in
			// round 1 whatever the schedule does, so any influence of the
			// forged DECIDEs (validity or integrity) is immediately visible.
			Name: "forger-reorder", Adversary: AdvDecideForger, Scheduler: SchedReorder,
			Coin: CoinLocal, Inputs: InputUnanimous1,
			Doc: "forged DECIDE gadget messages under reordering, unanimous inputs",
		},
		{
			// The per-round pruning stressor. One correct process is cut
			// off; the spare fault slot lets the rest keep completing
			// quorums, and with the decide gadget off (the paper's
			// original non-halting formulation) they keep starting rounds
			// the whole outage. When the straggler's inbox thaws it
			// fast-forwards through the backlog, emitting step messages
			// and coin shares for rounds its peers released many rounds
			// ago — the late-drop path of the pruning invariant — while
			// its own accepted table buffers rounds far ahead of it.
			// Agreement, validity, and termination must all survive
			// (TestStragglerScenarioExercisesPruning proves the drops
			// actually happen).
			Name: "straggler-prune", Adversary: AdvSilent, Scheduler: SchedStraggler,
			Coin: CoinCommon, Inputs: InputSplit,
			NoHalt: true, SpareFault: true, BudgetScale: 4,
			Doc: "a correct process returns many rounds behind a free-running pack; its late traffic hits pruned rounds",
		},
		{
			Name: "rbc-honest", RBC: true,
			Doc: "reliable broadcast, correct sender, silent faults",
		},
		{
			Name: "rbc-equivocate", RBC: true, SenderEquivocates: true,
			Doc: "reliable broadcast under a sender equivocating to the two halves",
		},
		{
			Name: "rbc-partial", RBC: true, SenderPartial: true,
			Doc: "reliable broadcast under a sender starving all but an echo quorum",
		},
	}
}

// ScenarioByName finds one scenario.
func ScenarioByName(name string) (Scenario, error) {
	for _, sc := range Scenarios() {
		if sc.Name == name {
			return sc, nil
		}
	}
	return Scenario{}, fmt.Errorf("runner: unknown scenario %q", name)
}

// PropertySpec configures one property sweep: a scenario at a system size,
// across a seed range, with optional checkpointing (all SweepSpec knobs pass
// through).
type PropertySpec struct {
	// N is the system size; F the fault bound (negative = ⌊(n−1)/3⌋, the
	// paper's optimal resilience; 0 is honoured as a genuinely fault-free
	// sweep).
	N int
	F int
	// Scenario selects the attack.
	Scenario Scenario
	// Seeds is the half-open seed range.
	Seeds SeedRange
	// MaxDeliveries overrides the per-run delivery budget (0 = scaled to
	// the system size; consensus traffic grows ~n³ per round).
	MaxDeliveries int
	// DisablePruning turns off per-round state pruning in the correct
	// nodes (consensus scenarios only) — the memory-comparison knob behind
	// `bench -sweep -no-prune` and experiment E11.
	DisablePruning bool
	// Window is the per-round retention window of the correct nodes
	// (consensus scenarios only; 0 = the core default of 1 — see
	// core.Config.Window). Behaviour-neutral: sweep aggregates are bitwise
	// identical at every window size, which the CI windowing diff enforces.
	Window int
	// LowWatermarkEvery is the delivery cadence of cluster low-watermark
	// scans for the common-coin dealer (0 = runner default; see
	// Config.LowWatermarkEvery).
	LowWatermarkEvery int

	// Pass-through sweep knobs (see SweepSpec).
	Workers    int
	Checkpoint string
	Every      int
	Resume     bool
	Stop       func() bool
	Progress   func(done, total int64)
}

// deliveryBudget scales the simulator budget to the system size: several
// common-coin rounds of ~2n³ deliveries each, floored at the simulator
// default. Exhausting it surfaces as a termination violation, which is
// exactly what the harness is listening for.
func deliveryBudget(n int) int {
	b := 16 * n * n * n
	if b < sim.DefaultMaxDeliveries {
		b = sim.DefaultMaxDeliveries
	}
	return b
}

// DeliveryBudget exposes the size-scaled per-run delivery budget to other
// packages (internal/search uses it to give searched points a budget whose
// exhaustion is a signal rather than a pathology).
func DeliveryBudget(n int) int { return deliveryBudget(n) }

// SweepSpec expands the property spec into the checkpointable sweep it runs.
func (p PropertySpec) SweepSpec() (SweepSpec, error) {
	f := p.F
	if f < 0 {
		f = quorum.MaxByzantine(p.N)
	}
	spec := SweepSpec{
		Seeds:      p.Seeds,
		Workers:    p.Workers,
		Checkpoint: p.Checkpoint,
		Every:      p.Every,
		Resume:     p.Resume,
		Stop:       p.Stop,
		Progress:   p.Progress,
	}
	sc := p.Scenario
	if sc.RBC {
		byz := f
		if !sc.SenderEquivocates && !sc.SenderPartial {
			byz = 0 // honest-sender scenario: all processes correct
		}
		spec.RBC = &RBCConfig{
			N: p.N, F: f, Byzantine: byz,
			SenderEquivocates: sc.SenderEquivocates,
			SenderPartial:     sc.SenderPartial,
		}
		return spec, nil
	}
	if sc.Adversary == 0 || sc.Scheduler == 0 {
		return SweepSpec{}, fmt.Errorf("runner: scenario %q is not runnable (zero adversary or scheduler)", sc.Name)
	}
	budget := p.MaxDeliveries
	if budget == 0 {
		budget = deliveryBudget(p.N)
		if sc.BudgetScale > 1 {
			budget *= sc.BudgetScale
		}
	}
	byzantine := -1 // = f
	if sc.SpareFault {
		byzantine = f - 1
		if byzantine < 0 {
			byzantine = 0
		}
	}
	spec.Cfg = Config{
		N: p.N, F: f, Byzantine: byzantine,
		Protocol:            ProtocolBracha,
		Coin:                sc.Coin,
		Adversary:           sc.Adversary,
		Scheduler:           sc.Scheduler,
		Sched:               sc.Sched,
		Inputs:              sc.Inputs,
		MaxDeliveries:       budget,
		DisableDecideGadget: sc.NoHalt,
		DisablePruning:      p.DisablePruning,
		Window:              p.Window,
		LowWatermarkEvery:   p.LowWatermarkEvery,
	}
	return spec, nil
}

// PropertySweep runs the scenario across the seed range and returns the
// aggregate. It does not judge the result: callers assert
// Aggregate.Checks.Clean() (and, for consensus, Decided == Runs) — the
// harness's definition of "the property held".
func PropertySweep(p PropertySpec) (*Aggregate, error) {
	spec, err := p.SweepSpec()
	if err != nil {
		return nil, err
	}
	return SweepSeedRange(spec)
}
