package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Sweep executes every configuration concurrently across a worker pool and
// returns the results in input order. workers <= 0 means GOMAXPROCS.
//
// Each run owns its simulator, RNG, and nodes outright (the sim package's
// determinism contract), so runs share no mutable state and the output is a
// pure function of cfgs: results are keyed by input index, never by
// completion order, making Sweep's output bitwise independent of the worker
// count, GOMAXPROCS, and goroutine scheduling. If any run fails, the error
// of the lowest-index failing configuration is returned (again independent
// of scheduling); results are discarded on error.
func Sweep(cfgs []Config, workers int) ([]*Result, error) {
	results := make([]*Result, len(cfgs))
	err := parallelFor(len(cfgs), workers, func(i int) error {
		res, err := Run(cfgs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// SweepSeeds runs one configuration across many seeds — the multi-seed
// repetition pattern of every experiment — returning per-seed results in
// seed order.
func SweepSeeds(cfg Config, seeds []int64, workers int) ([]*Result, error) {
	cfgs := make([]Config, len(seeds))
	for i, s := range seeds {
		cfgs[i] = cfg
		cfgs[i].Seed = s
	}
	return Sweep(cfgs, workers)
}

// SweepRBC is Sweep for reliable-broadcast experiments (E1, A4).
func SweepRBC(cfgs []RBCConfig, workers int) ([]*RBCResult, error) {
	results := make([]*RBCResult, len(cfgs))
	err := parallelFor(len(cfgs), workers, func(i int) error {
		res, err := RunRBC(cfgs[i])
		if err != nil {
			return err
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// parallelFor applies fn to every index in [0, n) using a pool of worker
// goroutines pulling indices from a shared atomic counter. Errors are
// recorded per index and the lowest-index error wins, so the returned error
// does not depend on which worker ran what.
func parallelFor(n, workers int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
