package runner

import (
	"testing"
)

// seedsUnderTest returns the scenario seed battery (shrunk under -short).
func seedsUnderTest(t *testing.T, n int) []int64 {
	t.Helper()
	if testing.Short() {
		n = 3
	}
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestSMRCheckpointedRunMatchesUncheckpointed is the behaviour-neutrality
// acceptance gate of the checkpoint subsystem: at every interval tested,
// the committed log digest and the state-machine digest at the Slots
// boundary are byte-identical to the uncheckpointed run's — checkpoint
// votes, certification, residue release, and log truncation change traffic
// and memory, never what commits.
func TestSMRCheckpointedRunMatchesUncheckpointed(t *testing.T) {
	for _, seed := range seedsUnderTest(t, 6) {
		base, err := RunSMR(SMRConfig{N: 4, F: 1, Slots: 32, Commands: 4, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !base.FullStream || base.Mismatches != 0 || base.Exhausted {
			t.Fatalf("seed %d: bad baseline run: %+v", seed, base)
		}
		for _, every := range []int{4, 8, 16} {
			res, err := RunSMR(SMRConfig{
				N: 4, F: 1, Slots: 32, Commands: 4, Seed: seed, CheckpointEvery: every,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !res.FullStream || res.Exhausted {
				t.Fatalf("seed %d every %d: stream gap or exhaustion", seed, every)
			}
			if res.Mismatches != 0 {
				t.Errorf("seed %d every %d: %d cross-replica log mismatches", seed, every, res.Mismatches)
			}
			if res.LogDigest != base.LogDigest {
				t.Errorf("seed %d every %d: log digest %x, uncheckpointed %x", seed, every, res.LogDigest, base.LogDigest)
			}
			if res.StateDigest != base.StateDigest {
				t.Errorf("seed %d every %d: state digest %x, uncheckpointed %x", seed, every, res.StateDigest, base.StateDigest)
			}
			if res.CertifiedCut == 0 {
				t.Errorf("seed %d every %d: no cut certified in 32 slots", seed, every)
			}
		}
	}
}

// TestRestartCatchupScenario is the state-transfer acceptance gate, run at
// every seed: a replica killed mid-run and revived with empty state — its
// peers' checkpoint long certified past anything it could replay — must
// install at least one certificate-verified transfer, rejoin, and commit
// slots itself, with every entry it commits identical to the cluster's.
func TestRestartCatchupScenario(t *testing.T) {
	for _, seed := range seedsUnderTest(t, 10) {
		res, err := RunSMR(RestartCatchupSpec(4, 48, 8, seed))
		if err != nil {
			t.Fatal(err)
		}
		if res.Exhausted {
			t.Fatalf("seed %d: delivery budget exhausted before catch-up (victim at %d/%d)",
				seed, res.VictimSlot, res.Config.Slots)
		}
		if res.Transfers < 1 {
			t.Errorf("seed %d: victim caught up without state transfer (transfers=0)", seed)
		}
		if res.VictimBase == 0 {
			t.Errorf("seed %d: victim never installed a certified base", seed)
		}
		if res.VictimCommitted < 3 {
			t.Errorf("seed %d: victim committed %d entries after revival, want ≥ 3", seed, res.VictimCommitted)
		}
		if res.Mismatches != 0 {
			t.Errorf("seed %d: %d log mismatches between the restarted replica and the cluster", seed, res.Mismatches)
		}
		if res.VictimSlot < res.Config.Slots {
			t.Errorf("seed %d: victim frontier %d below target %d", seed, res.VictimSlot, res.Config.Slots)
		}
	}
}

// TestRestartDeterminismProperty is the kill/restart determinism battery
// (mirroring the sweep kill/resume one): across seeds × crash points, a
// replica restarted from a certified checkpoint produces a log suffix and
// state digest bitwise identical to an uninterrupted run — proven by
// re-running the identical workload without the restart, stopped at the
// victim's final frontier, and comparing full-history digests.
func TestRestartDeterminismProperty(t *testing.T) {
	crashPoints := []int{120, 320, 640}
	if testing.Short() {
		crashPoints = crashPoints[:1]
	}
	for _, seed := range seedsUnderTest(t, 4) {
		for _, crashAfter := range crashPoints {
			cfg := RestartCatchupSpec(4, 40, 8, seed)
			cfg.Restart.CrashAfter = crashAfter
			restarted, err := RunSMR(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if restarted.Exhausted || restarted.Transfers < 1 {
				t.Fatalf("seed %d crash %d: scenario did not exercise transfer: %+v",
					seed, crashAfter, restarted)
			}
			// The victim's frontier is where we compare: an uninterrupted
			// run with the same rotation, stopped there.
			control := cfg
			control.Restart = nil
			control.SpareRotation = true
			control.Slots = restarted.VictimSlot
			uninterrupted, err := RunSMR(control)
			if err != nil {
				t.Fatal(err)
			}
			if !uninterrupted.FullStream {
				t.Fatalf("seed %d crash %d: control run gapped", seed, crashAfter)
			}
			if restarted.VictimLogDigest != uninterrupted.LogDigest {
				t.Errorf("seed %d crash %d: victim log digest %x, uninterrupted %x",
					seed, crashAfter, restarted.VictimLogDigest, uninterrupted.LogDigest)
			}
			if restarted.VictimStateDigest != uninterrupted.StateDigest {
				t.Errorf("seed %d crash %d: victim state digest %x, uninterrupted %x",
					seed, crashAfter, restarted.VictimStateDigest, uninterrupted.StateDigest)
			}
		}
	}
}

// TestSMRRunIsDeterministic: RunSMR is a pure function of (config, seed),
// like everything else the harness runs.
func TestSMRRunIsDeterministic(t *testing.T) {
	cfg := RestartCatchupSpec(4, 32, 8, 7)
	a, err := RunSMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunSMR(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.LogDigest != b.LogDigest || a.Deliveries != b.Deliveries ||
		a.Messages != b.Messages || a.Transfers != b.Transfers ||
		a.VictimLogDigest != b.VictimLogDigest || a.VictimSlot != b.VictimSlot {
		t.Errorf("same (config, seed), different runs:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSMRCheckpointBoundsResidue: with checkpointing on, the end-of-run
// residue — RBC digest records, retained log entries, per-slot dealers — is
// bounded by O(window + interval), not O(slots); without it, it grows with
// the log. This is the memory claim E12 tabulates, asserted here at a fixed
// bound so CI catches regressions without running the experiment.
func TestSMRCheckpointBoundsResidue(t *testing.T) {
	const slots, every, n = 96, 8, 4
	with, err := RunSMR(SMRConfig{
		N: n, F: 1, Slots: slots, Commands: 4, Seed: 5,
		CheckpointEvery: every, Coin: CoinCommon,
	})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunSMR(SMRConfig{
		N: n, F: 1, Slots: slots, Commands: 4, Seed: 5, Coin: CoinCommon,
	})
	if err != nil {
		t.Fatal(err)
	}
	if with.Exhausted || without.Exhausted {
		t.Fatal("residue workload exhausted its budget")
	}
	// Uncheckpointed: one digest record per committed slot per replica, one
	// dealer per slot, the whole log retained.
	if without.RBCRecords < n*(slots-2) {
		t.Errorf("uncheckpointed RBC records = %d, want ≥ %d", without.RBCRecords, n*(slots-2))
	}
	if without.LogRetained < n*slots {
		t.Errorf("uncheckpointed retained log = %d, want ≥ %d", without.LogRetained, n*slots)
	}
	if without.DealerSlots < slots {
		t.Errorf("uncheckpointed dealers = %d, want ≥ %d", without.DealerSlots, slots)
	}
	// Checkpointed: everything below the certified cut is gone. Each
	// replica may retain up to ~2 intervals (its own frontier past the last
	// certified cut) plus in-flight slots; 4 intervals per replica is a
	// generous fixed bound that an unbounded retainer blows through
	// immediately at 96 slots.
	bound := n * 4 * every
	if with.RBCRecords > bound {
		t.Errorf("checkpointed RBC records = %d, want ≤ %d", with.RBCRecords, bound)
	}
	if with.LogRetained > bound {
		t.Errorf("checkpointed retained log = %d, want ≤ %d", with.LogRetained, bound)
	}
	if with.DealerSlots > 4*every {
		t.Errorf("checkpointed dealers = %d, want ≤ %d", with.DealerSlots, 4*every)
	}
	if with.CertifiedCut < slots-2*every {
		t.Errorf("certified cut %d lags the frontier %d by more than two intervals", with.CertifiedCut, slots)
	}
	// And the run is still the same run.
	if with.LogDigest != without.LogDigest || with.StateDigest != without.StateDigest {
		t.Error("residue workload digests diverged between checkpointed and not")
	}
}

// TestRunSMRConfigValidation: the config contract.
func TestRunSMRConfigValidation(t *testing.T) {
	if _, err := RunSMR(SMRConfig{N: 4, F: 1}); err == nil {
		t.Error("Slots = 0 accepted")
	}
	if _, err := RunSMR(SMRConfig{N: 4, F: 1, Slots: 8, Restart: &SMRRestart{CrashAfter: 1, ReviveAfter: 1}}); err == nil {
		t.Error("restart without checkpointing accepted")
	}
	if _, err := RunSMR(SMRConfig{N: 0, F: 0, Slots: 8}); err == nil {
		t.Error("empty system accepted")
	}
	if _, err := RunSMR(SMRConfig{N: 4, F: 1, Slots: 8, Crashed: 3}); err == nil {
		t.Error("single live replica accepted")
	}
}
