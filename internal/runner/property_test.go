package runner

import (
	"testing"
	"testing/quick"
)

// TestRBCPropertyRandomized fuzzes reliable broadcast over random system
// sizes, fault counts, schedules, and sender behaviour: the four RBC
// properties must hold on every run.
func TestRBCPropertyRandomized(t *testing.T) {
	prop := func(seed int64, nRaw, byzRaw uint8, equivocate bool) bool {
		n := 4 + int(nRaw)%10 // 4..13
		f := (n - 1) / 3
		byz := int(byzRaw) % (f + 1)
		if equivocate && byz == 0 {
			equivocate = false
		}
		res, err := RunRBC(RBCConfig{
			N: n, F: f, Byzantine: byz,
			SenderEquivocates: equivocate,
			Seed:              seed,
		})
		if err != nil {
			t.Logf("config error: %v", err)
			return false
		}
		if len(res.Violations) > 0 {
			t.Logf("n=%d f=%d byz=%d equiv=%v seed=%d: %v", n, f, byz, equivocate, seed, res.Violations)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestConsensusPropertyRandomized fuzzes full consensus over random sizes,
// coins, adversaries, and schedulers at optimal resilience: no run may
// violate safety, and every run must terminate.
func TestConsensusPropertyRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep")
	}
	coins := []CoinKind{CoinLocal, CoinCommon, CoinIdeal}
	advs := []Adversary{AdvNone, AdvSilent, AdvEquivocator, AdvLiar, AdvDecideForger, AdvSplitBrain}
	scheds := []SchedulerKind{
		SchedUniform, SchedFIFO, SchedRushByz, SchedPartition,
		SchedLossy, SchedTopology, SchedAdaptive, SchedAdaptiveRush,
	}
	inputs := []Inputs{InputUnanimous0, InputUnanimous1, InputSplit, InputRandom}

	prop := func(seed int64, nRaw, coinRaw, advRaw, schedRaw, inRaw uint8) bool {
		n := 4 + int(nRaw)%7 // 4..10
		f := (n - 1) / 3
		cfg := Config{
			N: n, F: f, Byzantine: -1,
			Protocol:  ProtocolBracha,
			Coin:      coins[int(coinRaw)%len(coins)],
			Adversary: advs[int(advRaw)%len(advs)],
			Scheduler: scheds[int(schedRaw)%len(scheds)],
			Inputs:    inputs[int(inRaw)%len(inputs)],
			Seed:      seed,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Logf("run error: %v (cfg %+v)", err, cfg)
			return false
		}
		if len(res.Violations) > 0 || !res.AllDecided || res.Exhausted {
			t.Logf("cfg %+v: violations=%v decided=%v exhausted=%v",
				cfg, res.Violations, res.AllDecided, res.Exhausted)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
