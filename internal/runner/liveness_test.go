package runner

import "testing"

// TestSchedulerFamiliesLiveness runs every scheduler family — including the
// parameterized lossy, topology, and adaptive families — at n=16 across a
// seed block: each run must decide within budget with zero violations. This
// is the liveness floor for the zoo; the search in internal/search hunts for
// parameter points that break it, and anything it finds gets pinned in
// Scenarios().
func TestSchedulerFamiliesLiveness(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness sweep")
	}
	families := []SchedulerKind{
		SchedUniform, SchedFIFO, SchedRushByz, SchedPartition, SchedReorder,
		SchedSplitHeal, SchedRejoin, SchedStraggler,
		SchedLossy, SchedTopology, SchedAdaptive, SchedAdaptiveRush,
	}
	const n, seeds = 16, 6
	for _, sched := range families {
		sched := sched
		t.Run(sched.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= seeds; seed++ {
				cfg := Config{
					N: n, F: (n - 1) / 3, Byzantine: -1,
					Protocol:      ProtocolBracha,
					Coin:          CoinCommon,
					Adversary:     AdvEquivocator,
					Scheduler:     sched,
					Inputs:        InputSplit,
					Seed:          seed,
					MaxDeliveries: deliveryBudget(n) * 4,
				}
				res, err := Run(cfg)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if len(res.Violations) > 0 {
					t.Fatalf("seed %d: violations %v", seed, res.Violations)
				}
				if !res.AllDecided || res.Exhausted {
					t.Fatalf("seed %d: decided=%v exhausted=%v (deliveries=%d)",
						seed, res.AllDecided, res.Exhausted, res.Deliveries)
				}
			}
		})
	}
}

// TestAdaptiveAdversarySlower pins the adaptive adversary's teeth: on the
// same configuration and seed block, targeting delay at the decision
// frontier must cost strictly more rounds-to-decide (summed over the block)
// than spreading the same base delay uniformly. If this ever fails, the
// adaptive scheduler has degenerated into noise.
func TestAdaptiveAdversarySlower(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness sweep")
	}
	const n, seeds = 8, 16
	total := func(sched SchedulerKind) float64 {
		var sum float64
		for seed := int64(1); seed <= seeds; seed++ {
			cfg := Config{
				N: n, F: (n - 1) / 3, Byzantine: -1,
				Protocol:      ProtocolBracha,
				Coin:          CoinCommon,
				Adversary:     AdvLiar,
				Scheduler:     sched,
				Inputs:        InputRandom,
				Seed:          seed,
				MaxDeliveries: deliveryBudget(n) * 8,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatalf("%v seed %d: %v", sched, seed, err)
			}
			if !res.AllDecided || res.Exhausted {
				t.Fatalf("%v seed %d: decided=%v exhausted=%v", sched, seed, res.AllDecided, res.Exhausted)
			}
			sum += res.MeanRounds
		}
		return sum
	}
	uniform := total(SchedUniform)
	adaptive := total(SchedAdaptiveRush)
	t.Logf("rounds-to-decide over %d seeds: uniform=%.2f adaptive-rush=%.2f", seeds, uniform, adaptive)
	if adaptive <= uniform {
		t.Errorf("adaptive adversary is not slower: uniform=%.2f adaptive-rush=%.2f", uniform, adaptive)
	}
}

// TestAdaptiveCliffSlowerThanReorder is the regression pin for the searched
// cliff scenario: over a seed block at n=8, the "adaptive-cliff" schedule
// (the adaptive family's grid summit, TargetLag=480) must cost strictly more
// rounds-to-decide than the pre-existing "reorder" scenario — the two share
// the liar adversary, common coin, and random inputs, so the scheduler is
// the only variable. Both must stay clean: every run decides, zero
// violations. If the cliff ever flattens below reorder, either the adaptive
// scheduler regressed or the searched point went stale — re-run
// `bench -search adaptive` and re-pin.
func TestAdaptiveCliffSlowerThanReorder(t *testing.T) {
	if testing.Short() {
		t.Skip("liveness sweep")
	}
	const n = 8
	seeds := SeedRange{From: 1, To: 33}
	sweep := func(name string) float64 {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := PropertySweep(PropertySpec{N: n, F: -1, Scenario: sc, Seeds: seeds})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !agg.Checks.Clean() {
			t.Fatalf("%s: violations %+v", name, agg.Checks)
		}
		if agg.Decided != agg.Runs {
			t.Fatalf("%s: decided %d of %d runs", name, agg.Decided, agg.Runs)
		}
		return agg.Rounds.Summary().Mean
	}
	reorder := sweep("reorder")
	cliff := sweep("adaptive-cliff")
	t.Logf("mean rounds over seeds %v at n=%d: reorder=%.3f adaptive-cliff=%.3f", seeds, n, reorder, cliff)
	if cliff <= reorder {
		t.Errorf("searched cliff is not a cliff: reorder=%.3f adaptive-cliff=%.3f", reorder, cliff)
	}
}
