package runner

import (
	"os"
	"testing"
)

// assertClean fails the test if a property sweep observed any violation,
// undecided run, or exhausted budget.
func assertClean(t *testing.T, label string, sc Scenario, agg *Aggregate) {
	t.Helper()
	if !agg.Checks.Clean() {
		t.Errorf("%s: %v", label, agg.Checks.String())
	}
	if !sc.RBC && agg.Decided != agg.Runs {
		t.Errorf("%s: only %d/%d runs fully decided", label, agg.Decided, agg.Runs)
	}
	if agg.Exhausted > 0 {
		t.Errorf("%s: %d runs exhausted their delivery budget", label, agg.Exhausted)
	}
}

func TestScenarioByName(t *testing.T) {
	sc, err := ScenarioByName("crash-rejoin")
	if err != nil || sc.Adversary != AdvCrashMidway || sc.Scheduler != SchedRejoin {
		t.Errorf("crash-rejoin = %+v, err %v", sc, err)
	}
	if _, err := ScenarioByName("no-such-attack"); err == nil {
		t.Error("unknown scenario accepted")
	}
	seen := map[string]bool{}
	for _, sc := range Scenarios() {
		if sc.Name == "" || sc.Doc == "" {
			t.Errorf("scenario %+v missing name or doc", sc)
		}
		if seen[sc.Name] {
			t.Errorf("duplicate scenario name %q", sc.Name)
		}
		seen[sc.Name] = true
	}
}

// TestStragglerScenarioExercisesPruning proves the straggler-prune scenario
// does what its doc claims: across a seed spread, the advanced processes
// actually receive and drop justified messages for rounds they already
// released — the late-drop edge case the per-round pruning invariant is
// about — while every property still holds (the battery sweep asserts that
// part; here we assert the drops happen at all).
func TestStragglerScenarioExercisesPruning(t *testing.T) {
	sc, err := ScenarioByName("straggler-prune")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := PropertySpec{N: 8, F: -1, Scenario: sc, Seeds: SeedRange{From: 1, To: 9}}.SweepSpec()
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	for seed := spec.Seeds.From; seed < spec.Seeds.To; seed++ {
		cfg := spec.Cfg
		cfg.Seed = seed
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) > 0 {
			t.Fatalf("seed %d: %v", seed, res.Violations)
		}
		drops += res.PrunedLate
	}
	if drops == 0 {
		t.Error("straggler-prune never dropped a late message for a pruned round across the seed spread")
	}
}

// TestScenariosHoldSmall: every scenario in the battery must hold all
// properties at optimal resilience on small systems, across a seed spread.
func TestScenariosHoldSmall(t *testing.T) {
	seeds := SeedRange{From: 1, To: 17}
	if testing.Short() {
		seeds.To = 5
	}
	for _, sc := range Scenarios() {
		for _, n := range []int{8, 13} {
			agg, err := PropertySweep(PropertySpec{
				N: n, F: -1, Scenario: sc, Seeds: seeds, Workers: 4,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", sc.Name, n, err)
			}
			if agg.Runs != seeds.Len() {
				t.Fatalf("%s n=%d: %d runs, want %d", sc.Name, n, agg.Runs, seeds.Len())
			}
			assertClean(t, sc.Name, sc, agg)
		}
	}
}

// TestHarnessFrontier: the harness at the n=64/128 frontier the ROADMAP
// targets — full RBC battery at both sizes, plus consensus spot checks at
// n=64 (the full-depth frontier run lives in TestHarnessFullScale).
func TestHarnessFrontier(t *testing.T) {
	if testing.Short() {
		t.Skip("large-n frontier sweep")
	}
	for _, sc := range Scenarios() {
		if !sc.RBC {
			continue
		}
		for _, n := range []int{64, 128} {
			seeds := SeedRange{From: 1, To: 41}
			agg, err := PropertySweep(PropertySpec{
				N: n, F: -1, Scenario: sc, Seeds: seeds, Workers: 0,
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", sc.Name, n, err)
			}
			assertClean(t, sc.Name, sc, agg)
		}
	}
	for _, name := range []string{"equivocation-rush", "crash-rejoin"} {
		sc, err := ScenarioByName(name)
		if err != nil {
			t.Fatal(err)
		}
		agg, err := PropertySweep(PropertySpec{
			N: 64, F: -1, Scenario: sc, Seeds: SeedRange{From: 1, To: 3}, Workers: 0,
		})
		if err != nil {
			t.Fatalf("%s n=64: %v", name, err)
		}
		assertClean(t, name+" n=64", sc, agg)
	}
}

// TestHarnessFullScale is the acceptance-depth run: the full scenario
// battery at n=64 and n=128 across 1000 seeds each, streamed with O(1)
// memory. It takes hours on a single core, so it is gated behind
// REPRO_HARNESS_FULL=1; the same sweeps are reachable incrementally (with
// checkpoint/resume) through `bench -sweep`, which is the recommended way to
// run them.
func TestHarnessFullScale(t *testing.T) {
	if os.Getenv("REPRO_HARNESS_FULL") == "" {
		t.Skip("set REPRO_HARNESS_FULL=1 to run the full-depth frontier sweep")
	}
	seeds := SeedRange{From: 1, To: 1001}
	for _, sc := range Scenarios() {
		for _, n := range []int{64, 128} {
			agg, err := PropertySweep(PropertySpec{
				N: n, F: -1, Scenario: sc, Seeds: seeds, Workers: 0,
				Progress: func(done, total int64) {
					if done%100 == 0 {
						t.Logf("%s n=%d: %d/%d", sc.Name, n, done, total)
					}
				},
			})
			if err != nil {
				t.Fatalf("%s n=%d: %v", sc.Name, n, err)
			}
			assertClean(t, sc.Name, sc, agg)
			t.Logf("%s n=%d: %s", sc.Name, n, agg.Checks.String())
		}
	}
}
