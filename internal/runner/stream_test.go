package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// TestSweepStreamMatchesSweep: the streaming engine must hand emit exactly
// the results the buffered Sweep produces, in strict index order, for every
// worker count.
func TestSweepStreamMatchesSweep(t *testing.T) {
	cfgs := sweepMatrix()
	want, err := Sweep(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 8} {
		next := 0
		err := SweepStream(len(cfgs), workers, func(i int) Config { return cfgs[i] },
			func(i int, res *Result) error {
				if i != next {
					t.Fatalf("workers=%d: emit index %d, want %d (out of order)", workers, i, next)
				}
				next++
				if !reflect.DeepEqual(res, want[i]) {
					t.Errorf("workers=%d cfg %d: streamed result differs from Sweep", workers, i)
				}
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if next != len(cfgs) {
			t.Fatalf("workers=%d: emitted %d of %d results", workers, next, len(cfgs))
		}
	}
}

// TestSweepStreamErrorSemantics: the lowest-index failing run's error wins,
// emit never sees indices at or beyond the failure, and errors returned by
// emit abort the sweep.
func TestSweepStreamErrorSemantics(t *testing.T) {
	cfgs := sweepMatrix()
	bad := Config{N: 4, F: 2} // violates f < n
	cfgs[5] = bad
	cfgs[9] = bad
	for _, workers := range []int{1, 4} {
		var got []int
		err := SweepStream(len(cfgs), workers, func(i int) Config { return cfgs[i] },
			func(i int, _ *Result) error {
				got = append(got, i)
				return nil
			})
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("workers=%d: error = %v, want ErrBadConfig", workers, err)
		}
		if len(got) != 5 {
			t.Errorf("workers=%d: emitted %v, want exactly indices 0..4", workers, got)
		}
	}

	sentinel := errors.New("emit says stop")
	err := SweepStream(12, 4, func(i int) Config { return sweepMatrix()[i] },
		func(i int, _ *Result) error {
			if i == 3 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Errorf("emit error not propagated: %v", err)
	}
}

// TestSweepStreamConstantMemory: a 10k-seed streaming sweep of traced runs
// (each result retains its full event trace, tens of kilobytes) must hold
// only the reorder window alive — live heap stays flat where buffering all
// results would grow past it by an order of magnitude.
func TestSweepStreamConstantMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-run sweep")
	}
	const runs = 10_000
	cfg := Config{
		N: 4, F: 1, Byzantine: -1,
		Protocol: ProtocolBracha, Coin: CoinIdeal,
		Adversary: AdvNone, Scheduler: SchedUniform,
		Inputs: InputUnanimous1,
		Trace:  true, // make every retained result expensive
	}
	var before runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	// Allow the window's worth of traced results plus slack; buffering 10k
	// traced results costs hundreds of megabytes and fails this bound.
	limit := before.HeapAlloc + 64<<20

	emitted := 0
	err := SweepStream(runs, 4, func(i int) Config {
		c := cfg
		c.Seed = int64(i + 1)
		return c
	}, func(i int, res *Result) error {
		if res.Recorder == nil || res.Recorder.Len() == 0 {
			return fmt.Errorf("run %d: missing trace", i)
		}
		emitted++
		if emitted%1000 == 0 {
			var ms runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > limit {
				return fmt.Errorf("after %d runs: live heap %d MiB exceeds bound %d MiB — results are accumulating",
					emitted, ms.HeapAlloc>>20, limit>>20)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if emitted != runs {
		t.Fatalf("emitted %d of %d", emitted, runs)
	}
}

// TestSweepStreamEmptyAndTiny: degenerate sizes work.
func TestSweepStreamEmptyAndTiny(t *testing.T) {
	if err := SweepStream(0, 8, nil, nil); err != nil {
		t.Fatal(err)
	}
	calls := 0
	err := SweepStream(1, 8, func(int) Config { return sweepMatrix()[0] },
		func(i int, res *Result) error {
			calls++
			if res == nil {
				t.Error("nil result")
			}
			return nil
		})
	if err != nil || calls != 1 {
		t.Fatalf("err=%v calls=%d", err, calls)
	}
}
