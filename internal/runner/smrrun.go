package runner

import (
	"fmt"
	"path/filepath"
	"strings"

	"repro/internal/adversary"
	"repro/internal/ckpt"
	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/smr"
	"repro/internal/types"
	"repro/internal/wire"
)

// This file is the replicated-log (SMR) workload harness: the run mode
// behind the checkpoint experiments (E12), the `bench -smr` CLI, and the
// restart-catchup scenario. Where Run drives one consensus instance to a
// decision, RunSMR drives a whole log — n replicas committing Slots slots,
// optionally checkpointing every CheckpointEvery slots, optionally with one
// replica killed mid-run and revived with empty state (sim.Restart), forced
// to catch up through ckpt state transfer.
//
// The harness tails every replica's log per delivery through the LogLen/
// LogSince accessors (O(new entries), not O(committed slots)), maintaining:
//
//   - a canonical entry per slot (first observer wins) against which every
//     other replica's entries are checked — Mismatches counts cross-replica
//     log disagreements, the SMR form of an agreement violation;
//   - the chained log digest and a shadow state machine for the reference
//     replica (p1), captured exactly at the Slots boundary — the run-to-run
//     comparison point that must be bitwise identical whatever the
//     checkpoint interval, which CI enforces via `bench -smr`.
//
// Replicas run unbounded (MaxSlots 0) and the harness stops the network
// once every live replica's frontier reached Slots (and, in restart runs,
// the revived victim has committed MinCommits entries itself) — the
// non-halting formulation, so peers keep serving state transfer while the
// victim catches up.

// SMRConfig describes one replicated-log workload run.
type SMRConfig struct {
	N int // total processes
	F int // fault bound
	// Slots is the commit frontier every live replica must reach (> 0).
	Slots int
	// Commands preloads this many "set" commands per rotation member
	// (further slots commit noops).
	Commands int
	// CommandBytes, when > 0, pads every preloaded command to at least this
	// many bytes (a deterministic filler in the value field). The bandwidth
	// experiments (E14) use it to sweep dissemination body sizes; the default
	// short commands exercise the protocol, not the wire.
	CommandBytes int
	// Coded switches candidate dissemination to erasure-coded reliable
	// broadcast (smr.Config.Coded). The committed log, and every digest in
	// this result, is bitwise identical to the uncoded run of the same
	// (config, seed); WireBytes shows what changes.
	Coded bool
	// Batch caps how many queued commands one proposing turn bundles into a
	// single dissemination body (0 or 1 = one command per slot; see
	// smr.Config.Batch). A slot then unbatches into up to Batch committed
	// entries.
	Batch int
	// Depth is the dissemination pipeline depth (0 or 1 = off; see
	// smr.Config.Depth): proposing turns up to Depth-1 slots past the
	// agreement frontier disseminate early.
	Depth int
	// CheckpointEvery is the checkpoint cadence in slots (0 = off).
	CheckpointEvery int
	// Window is the per-round retention window of the inner consensus
	// instances (0 = core default).
	Window int
	// Coin selects the per-slot coin: CoinLocal, CoinIdeal, or CoinCommon
	// (per-slot dealers via coin.DealerSet, released below certified cuts).
	Coin CoinKind
	// Seed drives the run; everything is a pure function of (config, seed).
	Seed int64
	// Crashed trailing processes are absent for the whole run (silent).
	Crashed int
	// Restart, when set, wraps the last live replica in a deterministic
	// kill/revive (requires checkpointing: a restarted replica's in-flight
	// messages are gone, so only state transfer can bring it back).
	Restart *SMRRestart
	// SpareRotation excludes the last live replica from the proposer
	// rotation without restarting it — the control configuration for the
	// kill/restart determinism property, whose committed log must be
	// comparable (same proposers, same commands) to a Restart run's.
	SpareRotation bool
	// Attack, when nonzero, turns Byzantine live replicas into
	// checkpoint-plane attackers of the given kind (adversary.CkptByzantine;
	// requires CheckpointEvery > 0). Attackers run genuine replicas
	// underneath — they stay in the proposer rotation and commit honestly —
	// so an attack run's committed log, and therefore its digests, must
	// match the attack-free control run's bitwise.
	Attack adversary.CkptAttack
	// Byzantine is how many attackers run the Attack (default 1 when Attack
	// is set; at most F). They occupy the live slots right after the
	// reference replica, early in every catching-up replica's responder
	// rotation — so transfer requests actually reach them.
	Byzantine int
	// Sched selects the delivery schedule the attack composes with: 0 or
	// SchedUniform (fair uniform delays), SchedReorder, SchedStraggler (the
	// second live replica's links slowed until it lags past the checkpoint
	// window), or SchedSplitHeal (half/half partition healed at healTime).
	Sched SchedulerKind
	// CkptDir, when set, gives every honest replica a durable snapshot
	// store at <dir>/replica-<id>.ckpt (requires CheckpointEvery > 0):
	// replicas persist their latest certified checkpoint and, on a later
	// run over the same directory, boot from it — the whole-cluster
	// power-cycle recovery path.
	CkptDir string
	// MaxPendingCuts overrides the checkpoint tracker's pending-cut cap
	// (0 = ckpt.DefaultMaxPendingCuts).
	MaxPendingCuts int
	// MaxDeliveries bounds the run (0 = a Slots- and n-scaled default).
	MaxDeliveries int
	// Telemetry attaches the deterministic telemetry plane (shared by every
	// replica): per-kind wire counters and latency histograms plus the
	// checkpoint-plane phase histograms (vote→certify, request→install),
	// surfaced as SMRResult.Telemetry.
	Telemetry bool
}

// smrStragglerLag is the extra delay on every link touching the SMR
// straggler — enough, against 1..20 base delays, to drop it a checkpoint
// interval behind the frontier under load (the straggler-prune pressure
// schedule) without pushing the run into its delivery budget.
const smrStragglerLag sim.Time = 60

// scheduler builds the sim scheduler for this config. The straggler is the
// first honest live replica after the reference and the attackers (never
// the reference, never an attacker — the point is an *honest* replica
// lagging behind the checkpoint window), slowed on every link; the
// partition splits the live replicas in half and heals at healTime, after
// which the held cross-half traffic arrives in a burst.
func (cfg SMRConfig) scheduler(live []types.ProcessID) sim.Scheduler {
	base := sim.UniformDelay{Min: 1, Max: 20}
	switch cfg.Sched {
	case SchedReorder:
		return sim.ReorderDelay{Span: 24}
	case SchedStraggler:
		straggler := live[(1+cfg.Byzantine)%len(live)]
		var links [][2]types.ProcessID
		for _, q := range live {
			if q != straggler {
				links = append(links, [2]types.ProcessID{straggler, q}, [2]types.ProcessID{q, straggler})
			}
		}
		return sim.Compose{Base: base, Rules: []sim.Rule{sim.DelayLinks(smrStragglerLag, links...)}}
	case SchedSplitHeal:
		half := len(live) / 2
		return sim.Compose{Base: base, Rules: []sim.Rule{
			sim.HealPartition(healTime, live[:half], live[half:]),
		}}
	default:
		return base
	}
}

// SMRRestart is the deterministic kill/revive schedule of the victim (the
// last live, non-proposing replica).
type SMRRestart struct {
	// CrashAfter is how many deliveries the victim processes before dying.
	CrashAfter int
	// ReviveAfter is how many further deliveries evaporate before a fresh
	// replica (empty log, empty state) takes over.
	ReviveAfter int
	// MinCommits is how many entries the revived victim must commit itself
	// before the run may stop (0 = 3): "catches up and commits subsequent
	// slots", made a stop condition.
	MinCommits int
}

// SMRResult is what one replicated-log run produced.
type SMRResult struct {
	Config SMRConfig

	// LogDigest and StateDigest are the reference replica's chained log
	// digest and shadow-machine state digest at exactly the Slots boundary
	// — identical across checkpoint intervals, worker counts, and machines
	// for a given (config, seed).
	LogDigest   uint64
	StateDigest uint64
	// FullStream reports that the reference replica's entry stream was
	// observed gap-free from slot 0 (always true in practice; a false value
	// voids the digests).
	FullStream bool
	// Mismatches counts cross-replica committed-entry disagreements (the
	// agreement check; must be 0).
	Mismatches int
	// Slots observed committed per replica index, and the max certified cut.
	Committed    []int
	CertifiedCut int
	// Entries counts the distinct committed entries observed in [0, Slots) —
	// equal to Slots without batching, up to Batch× it with batching (the
	// throughput numerator).
	Entries int
	// SubmitDropped sums the commands the replicas' bounded submit queues
	// rejected (must be 0 in a well-sized run; see smr.Replica.Dropped).
	SubmitDropped int
	// DuplicateCommands counts non-noop commands observed at more than one
	// log position (must be 0: a command is consumed exactly once, even
	// across state-transfer jumps).
	DuplicateCommands int

	// Robustness telemetry, summed over the replicas alive at the end of
	// the run (attackers report their honest inner replica's counters).
	TotalInstalls         int // state transfers installed cluster-wide
	TransferRetries       int // reactive re-requests after stale/unverifiable responses
	StaleResponses        int // full transfer responses at or below the receiver's frontier
	UnverifiableResponses int // certificate payloads that failed verification
	StoreErrors           int // durable-store failures survived (rejected loads, failed saves)
	SuffixDivergence      int // re-committed entries contradicting a durable log suffix (must be 0)
	PendingCutsMax        int // largest per-replica pending-cut table at the end (cap-bounded)
	RestoredCuts          int // replicas that booted from a durable record

	// Victim telemetry (Restart runs).
	//
	// VictimDown reports the victim was still dead when the run ended (its
	// revival never happened, or its revived instance never came back up):
	// every other Victim* field is then zero because there was no live
	// replica to read — not because catch-up failed while live. Together
	// with Exhausted it separates "the delivery budget ran out mid-outage"
	// from "the victim revived and failed to catch up", which a zero
	// Transfers alone conflates.
	VictimDown      bool
	VictimID        types.ProcessID
	VictimRetries   int // the victim's own reactive re-requests
	Transfers       int // state transfers the victim installed
	VictimBase      int // the victim's final log base (its last installed cut)
	VictimCommitted int // entries the revived victim committed itself
	// VictimSlot, VictimLogDigest, and VictimStateDigest capture the
	// victim's final frontier and its full-history log/state digests at it
	// — comparable bitwise against an uninterrupted run stopped at the same
	// frontier (the kill/restart determinism property).
	VictimSlot        int
	VictimLogDigest   uint64
	VictimStateDigest uint64

	// Residue at the end of the run, summed across live replicas: the
	// memory the checkpoint subsystem exists to bound (E12).
	RBCDigestBytes int // dissemination digest-record bytes
	RBCRecords     int // dissemination digest records
	RBCLive        int // live dissemination instances
	LogRetained    int // committed entries still held
	DealerSlots    int // per-slot dealers retained (CoinCommon)
	DealerRounds   int // dealt rounds retained across them (CoinCommon)

	Messages   int
	Deliveries int
	EndTime    sim.Time
	Exhausted  bool
	// WireBytes is the wire.MessageSize total over every sent message — the
	// run's bandwidth under the real codec (the E14 measurement surface).
	WireBytes int64
	// Dropped counts messages the scheduler dropped or that expired when
	// their destination finished; Spoofed counts sends rejected for a
	// forged From (see sim.Stats).
	Dropped int
	Spoofed int
	// Telemetry holds the telemetry sink when Config.Telemetry was set.
	Telemetry *sim.Telemetry
}

// smrObserver tails one replica's log.
type smrObserver struct {
	rep     *smr.Replica
	wrapper *sim.Restart // non-nil for the victim
	next    int          // next absolute slot not yet observed
	gapped  bool         // a truncation or install outran observation
	revived bool         // the victim's revival was noticed (cursor reset)
}

// current returns the live replica behind this observer: nil while the
// victim is down (the pre-crash instance is discarded state, not a replica
// to read), the fresh instance after revival.
func (o *smrObserver) current() *smr.Replica {
	if o.wrapper != nil {
		if o.wrapper.Down() {
			return nil
		}
		if rep, ok := o.wrapper.Inner().(*smr.Replica); ok {
			o.rep = rep
		}
	}
	return o.rep
}

// RunSMR executes one replicated-log workload.
func RunSMR(cfg SMRConfig) (*SMRResult, error) {
	spec, err := quorum.New(cfg.N, cfg.F)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("%w: SMR run needs Slots > 0", ErrBadConfig)
	}
	if cfg.Batch < 0 || cfg.Depth < 0 {
		return nil, fmt.Errorf("%w: negative batch (%d) or pipeline depth (%d)", ErrBadConfig, cfg.Batch, cfg.Depth)
	}
	if cfg.CommandBytes < 0 || cfg.CommandBytes > wire.MaxBatchBytes {
		return nil, fmt.Errorf("%w: CommandBytes %d outside [0, %d]", ErrBadConfig, cfg.CommandBytes, wire.MaxBatchBytes)
	}
	if cfg.Restart != nil && cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("%w: a restarted replica can only catch up via checkpoint state transfer; set CheckpointEvery", ErrBadConfig)
	}
	if (cfg.Attack != 0 || cfg.CkptDir != "") && cfg.CheckpointEvery <= 0 {
		return nil, fmt.Errorf("%w: checkpoint attacks and durable stores need CheckpointEvery", ErrBadConfig)
	}
	if cfg.Attack != 0 && cfg.Byzantine == 0 {
		cfg.Byzantine = 1
	}
	if cfg.Attack == 0 {
		cfg.Byzantine = 0
	}
	if cfg.Byzantine > cfg.F {
		return nil, fmt.Errorf("%w: %d attackers exceed the fault bound f=%d", ErrBadConfig, cfg.Byzantine, cfg.F)
	}
	switch cfg.Sched {
	case 0, SchedUniform, SchedReorder, SchedStraggler, SchedSplitHeal:
	default:
		return nil, fmt.Errorf("%w: SMR runs support uniform/reorder/straggler/split-heal schedules, not %v", ErrBadConfig, cfg.Sched)
	}
	if cfg.Coin == 0 {
		cfg.Coin = CoinLocal
	}
	peers := types.Processes(cfg.N)
	live := peers[:cfg.N-cfg.Crashed]
	if len(live) < 2 {
		return nil, fmt.Errorf("%w: %d live replicas", ErrBadConfig, len(live))
	}
	rotation := live
	var victim types.ProcessID
	if cfg.Restart != nil {
		victim = live[len(live)-1]
	}
	if cfg.Restart != nil || cfg.SpareRotation {
		rotation = live[:len(live)-1] // the victim must not hold up slots
	}
	// Attackers occupy the live slots right after the reference replica: the
	// reference (first live) stays honest, so the digest chain reads an
	// honest log; the victim (last live) stays honest, so catch-up is tested
	// against the attack rather than run by it; and sitting early in the
	// responder rotation means a catching-up replica's transfer requests
	// actually reach the attackers instead of always being rescued by honest
	// peers first.
	attacker := make([]bool, len(live))
	if cfg.Byzantine > 0 {
		hi := len(live)
		if cfg.Restart != nil || cfg.SpareRotation {
			hi--
		}
		if 1+cfg.Byzantine > hi {
			return nil, fmt.Errorf("%w: %d attackers leave no honest reference replica", ErrBadConfig, cfg.Byzantine)
		}
		for k := 1; k <= cfg.Byzantine; k++ {
			attacker[k] = true
		}
	}

	budget := cfg.MaxDeliveries
	if budget <= 0 {
		// Each slot runs a full ACS — n parallel broadcasts of O(n²)
		// deliveries each — so a healthy run costs ~n³ deliveries per slot
		// (measured ~7·n³ at n=16..64). Budget roughly twice that, floored
		// at the sim default so small-n runs keep generous headroom; a run
		// that exhausts it has genuinely lost liveness.
		//
		// Calibration is per *slot*, deliberately not per committed entry:
		// batching commits up to Batch entries per slot at the same ~7·n³
		// delivery cost (the per-entry cost falls to ~7·n³/Batch — that is
		// the whole throughput win), so scaling the budget by entries would
		// overshoot by Batch×. Pipelining does add traffic past the stop
		// frontier — up to Depth-1 proposing turns' dissemination is in
		// flight when slot Slots decides — so those slots get headroom.
		slots := cfg.Slots
		if cfg.Depth > 1 {
			slots += cfg.Depth - 1
		}
		budget = 16 * slots * cfg.N * cfg.N * cfg.N
		if budget < sim.DefaultMaxDeliveries {
			budget = sim.DefaultMaxDeliveries
		}
	}
	var tele *sim.Telemetry
	if cfg.Telemetry {
		tele = sim.NewTelemetry()
	}
	net, err := sim.New(sim.Config{
		Scheduler:     cfg.scheduler(live),
		Seed:          cfg.Seed,
		MaxDeliveries: budget,
		Telemetry:     tele,
		Sizer:         wire.MessageSize,
	})
	if err != nil {
		return nil, err
	}

	var dealers *coin.DealerSet
	if cfg.Coin == CoinCommon {
		dealers = coin.NewDealerSet(spec, cfg.Seed+1)
	}
	newCoin := func(p types.ProcessID) func(int) coin.Coin {
		switch cfg.Coin {
		case CoinIdeal:
			return func(slot int) coin.Coin { return coin.NewIdeal(cfg.Seed + int64(slot)) }
		case CoinCommon:
			return func(slot int) coin.Coin { return coin.NewCommon(p, peers, dealers.For(slot)) }
		default: // CoinLocal
			return func(slot int) coin.Coin {
				return coin.NewLocal(cfg.Seed + int64(p)*1000 + int64(slot))
			}
		}
	}
	secret := []byte(fmt.Sprintf("smr-ckpt-%d", cfg.Seed))

	observers := make([]*smrObserver, len(live))
	machines := make([]*smr.KVMachine, len(live)) // each replica's live machine
	cuts := make([]int, len(live))                // per-replica certified cut (monotone)
	releaseDealers := func() {
		if dealers == nil {
			return
		}
		low := cuts[0]
		for _, c := range cuts[1:] {
			if c < low {
				low = c
			}
		}
		// The dealer set is cluster-shared: release by the minimum certified
		// cut across replicas, the same low-watermark shape as round-level
		// dealer pruning (and re-creation below the floor is deterministic
		// anyway; see coin.DealerSet).
		dealers.ReleaseBelow(low)
	}

	// canonical holds the first-observed committed entry per log position;
	// batching commits several entries per slot, so positions are keyed by
	// (slot, index within the slot's batch).
	type entryKey struct{ slot, index int }
	canonical := make(map[entryKey]smr.Entry, cfg.Slots)
	mismatches := 0
	refDigest := ckpt.InitialLogDigest
	refMachine := smr.NewKVMachine()
	refCount := 0 // slots fully folded into the reference chain
	var digestAt, stateAt uint64
	capture := func() {
		digestAt = refDigest
		stateAt = ckpt.Digest(refMachine.Snapshot())
	}
	victimCommitted := 0

	// drain tails one replica's new entries into the canonical map and the
	// reference digest chain. Called per delivery and from OnCertified
	// (pre-truncation), so no entry is released unobserved. A slot's whole
	// batch commits within one delivery, so ents always holds complete
	// slots — which is what lets refCount advance per slot below.
	drain := func(i int) {
		o := observers[i]
		if o == nil {
			return
		}
		rep := o.current()
		if rep == nil {
			return // victim is down
		}
		if o.wrapper != nil && o.wrapper.Restarted() && !o.revived {
			// Fresh victim: restart the tail from slot 0 so everything it
			// commits — including slots its pre-crash self already committed
			// — is checked against the canonical log.
			o.revived = true
			o.next = 0
		}
		ents := rep.LogSince(o.next)
		if len(ents) == 0 {
			if b := rep.Base(); b > o.next {
				// The replica jumped past slots this observer never saw
				// (state transfer installed a cut). Expected for the victim;
				// the reference replica's chain re-seeds from the installed
				// certificate — its LogDigest is the full-history digest at
				// the cut and the machine was just restored to the certified
				// state — and is voided only if no certificate explains the
				// jump.
				if i == 0 && !o.gapped && refCount < cfg.Slots {
					cert, ok := rep.LatestCert()
					if ok && cert.Slot == b && b <= cfg.Slots &&
						refMachine.Restore(machines[0].Snapshot()) == nil {
						refDigest = cert.LogDigest
						refCount = b
						if refCount == cfg.Slots {
							capture()
						}
					} else {
						o.gapped = true
					}
				}
				o.next = b
			}
			return
		}
		if ents[0].Slot > o.next && i == 0 {
			o.gapped = true
		}
		for idx, e := range ents {
			k := entryKey{e.Slot, e.Index}
			if have, ok := canonical[k]; ok {
				if have != e {
					mismatches++
				}
			} else {
				canonical[k] = e
			}
			if i == 0 && !o.gapped && e.Slot >= refCount {
				refDigest = ckpt.FoldEntry(refDigest, e.Slot, e.Proposer, e.Command)
				if e.Command != "" && e.Command != smr.Noop {
					refMachine.Apply(e.Command)
				}
				// The slot is fully folded once its last entry is (the next
				// entry belongs to a later slot, or the tail ends — slots are
				// complete). Capture the reference digests exactly when the
				// fold frontier lands on the Slots boundary, before any entry
				// of a later slot folds in.
				if idx == len(ents)-1 || ents[idx+1].Slot != e.Slot {
					refCount = e.Slot + 1
					if refCount == cfg.Slots {
						capture()
					}
				}
			}
			if o.wrapper != nil && o.wrapper.Restarted() {
				victimCommitted++
			}
		}
		o.next = ents[len(ents)-1].Slot + 1
	}

	buildCfg := func(i int, p types.ProcessID) smr.Config {
		machines[i] = smr.NewKVMachine()
		rcfg := smr.Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin:  newCoin(p),
			Rotation: rotation,
			Machine:  machines[i],
			Window:   cfg.Window,
			Batch:    cfg.Batch,
			Depth:    cfg.Depth,
			Coded:    cfg.Coded,

			Telemetry: tele,
		}
		if cfg.Commands > smr.DefaultQueueLimit {
			// The harness preloads every command up front; keep the queue
			// bounded but sized to the workload so a well-formed run never
			// drops (drops would surface in SubmitDropped).
			rcfg.QueueLimit = cfg.Commands
		}
		if cfg.CheckpointEvery > 0 {
			rcfg.CheckpointEvery = cfg.CheckpointEvery
			rcfg.CheckpointSecret = secret
			rcfg.MaxPendingCuts = cfg.MaxPendingCuts
			if cfg.CkptDir != "" {
				rcfg.Store = ckpt.NewStore(filepath.Join(cfg.CkptDir, fmt.Sprintf("replica-%d.ckpt", p)))
			}
			rcfg.OnCertified = func(cut int) {
				drain(i)
				if cut > cuts[i] {
					cuts[i] = cut
					releaseDealers()
				}
			}
		}
		return rcfg
	}
	build := func(i int, p types.ProcessID) (*smr.Replica, error) {
		return smr.New(buildCfg(i, p))
	}

	commandsFor := func(p types.ProcessID) []string {
		cmds := make([]string, cfg.Commands)
		for c := range cmds {
			cmds[c] = fmt.Sprintf("set k%d-%d v%d-%d", p, c, p, c)
			if pad := cfg.CommandBytes - len(cmds[c]); pad > 0 {
				// Deterministic filler in the value field: the command still
				// parses as a KV set, just with a body-sized value.
				cmds[c] += strings.Repeat("x", pad)
			}
		}
		return cmds
	}

	for i, p := range live {
		i, p := i, p
		if p == victim && cfg.Restart != nil {
			observers[i] = &smrObserver{}
			wrapper := sim.NewRestart(func() sim.Node {
				rep, err := build(i, p)
				if err != nil {
					// The identical config already built every other
					// replica; a failure here is a harness bug, not input.
					panic(fmt.Sprintf("runner: building victim %v: %v", p, err))
				}
				observers[i].rep = rep
				return rep
			}, cfg.Restart.CrashAfter, cfg.Restart.ReviveAfter)
			observers[i].wrapper = wrapper
			if err := net.Add(wrapper); err != nil {
				return nil, err
			}
			continue
		}
		if attacker[i] {
			rcfg := buildCfg(i, p)
			// Attackers never persist: their honest inner replica exists to
			// keep the cluster comparable, not to exercise the store.
			rcfg.Store = nil
			byz, err := adversary.NewCkptByzantine(cfg.Attack, rcfg)
			if err != nil {
				return nil, err
			}
			// The inner replica commits honestly, so its log joins the
			// cross-replica agreement check like any other.
			observers[i] = &smrObserver{rep: byz.Inner()}
			for _, cmd := range commandsFor(p) {
				byz.Inner().Submit(cmd)
			}
			if err := net.Add(byz); err != nil {
				return nil, err
			}
			continue
		}
		rep, err := build(i, p)
		if err != nil {
			return nil, err
		}
		o := &smrObserver{rep: rep}
		observers[i] = o
		cmds := commandsFor(p)
		if b := rep.Base(); b > 0 {
			// The replica booted from its durable record and resumes at the
			// cut: the observer tails from there, the reference digest chain
			// re-seeds from the restored certificate and machine, and the
			// command queue drops the proposals the pre-crash self already
			// consumed (so re-proposed slots carry the same commands an
			// uninterrupted run would).
			o.next = b
			if i == 0 {
				if b <= cfg.Slots && refMachine.Restore(machines[0].Snapshot()) == nil {
					refDigest = rep.LogDigest()
					refCount = b
					if refCount == cfg.Slots {
						digestAt = refDigest
						stateAt = ckpt.Digest(refMachine.Snapshot())
					}
				} else {
					o.gapped = true
				}
			}
			// Each pre-cut proposing turn consumed a full take: one command
			// unbatched, up to Batch with batching (the harness's short
			// commands never hit the batch byte caps, so the take is exactly
			// min(Batch, remaining) — mirroring smr's proposalTake).
			take := 1
			if cfg.Batch > 1 {
				take = cfg.Batch
			}
			consumed := 0
			for s := 0; s < b; s++ {
				if rotation[s%len(rotation)] == p {
					consumed += take
				}
			}
			if consumed > len(cmds) {
				consumed = len(cmds)
			}
			cmds = cmds[consumed:]
		}
		for _, cmd := range cmds {
			rep.Submit(cmd)
		}
		if err := net.Add(rep); err != nil {
			return nil, err
		}
	}

	minCommits := 0
	if cfg.Restart != nil {
		minCommits = cfg.Restart.MinCommits
		if minCommits <= 0 {
			minCommits = 3
		}
	}
	stop := func() bool {
		done := true
		for i := range observers {
			drain(i)
			rep := observers[i].current()
			if rep == nil || rep.Slot() < cfg.Slots {
				done = false
			}
		}
		if cfg.Restart != nil && victimCommitted < minCommits {
			done = false
		}
		return done
	}
	stats, err := net.Run(stop)
	if err != nil {
		return nil, err
	}
	for i := range observers {
		drain(i)
	}

	res := &SMRResult{
		Config:      cfg,
		LogDigest:   digestAt,
		StateDigest: stateAt,
		FullStream:  !observers[0].gapped && refCount >= cfg.Slots,
		Mismatches:  mismatches,
		Committed:   make([]int, len(live)),
		VictimID:    victim,
		Messages:    stats.Sent,
		Deliveries:  stats.Delivered,
		EndTime:     stats.End,
		Exhausted:   stats.Exhausted,
		WireBytes:   stats.Bytes,
		Dropped:     stats.Dropped,
		Spoofed:     stats.Spoofed,
		Telemetry:   tele,
	}
	for i, o := range observers {
		rep := o.current()
		if rep == nil {
			// The victim was still down at the end (typically the budget ran
			// out mid-outage): its telemetry stays zero rather than reporting
			// the discarded pre-crash instance's state as final, and
			// VictimDown records *why* those fields are zero — Exhausted then
			// tells budget starvation apart from a revival that never came.
			res.VictimDown = true
			continue
		}
		res.Committed[i] = rep.Slot()
		if cut := rep.CertifiedCut(); cut > res.CertifiedCut {
			res.CertifiedCut = cut
		}
		res.SubmitDropped += rep.Dropped()
		res.RBCDigestBytes += rep.RBCDigestBytes()
		res.RBCRecords += rep.RBCCompacted()
		res.RBCLive += rep.RBCLiveInstances()
		res.LogRetained += rep.LogLen()
		res.TotalInstalls += rep.Transfers()
		res.TransferRetries += rep.TransferRetries()
		res.StaleResponses += rep.StaleResponses()
		res.UnverifiableResponses += rep.UnverifiableResponses()
		res.StoreErrors += rep.StoreErrors()
		res.SuffixDivergence += rep.SuffixDivergence()
		if pc := rep.PendingCuts(); pc > res.PendingCutsMax {
			res.PendingCutsMax = pc
		}
		if rep.RestoredCut() > 0 {
			res.RestoredCuts++
		}
		if o.wrapper != nil {
			res.Transfers = rep.Transfers()
			res.VictimRetries = rep.TransferRetries()
			res.VictimBase = rep.Base()
			res.VictimSlot = rep.Slot()
			res.VictimLogDigest = rep.LogDigest()
			res.VictimStateDigest, _ = rep.StateDigest()
		}
	}
	res.VictimCommitted = victimCommitted
	// Throughput numerator and the exactly-once check: count the canonical
	// entries inside the measured frontier, and flag any non-noop command
	// observed at two log positions (a consumed command re-proposed — the
	// install-jump bug class — or a duplicate submission).
	seenCmd := make(map[string]entryKey, len(canonical))
	for k, e := range canonical {
		if k.slot >= cfg.Slots {
			continue
		}
		res.Entries++
		if e.Command == "" || e.Command == smr.Noop {
			continue
		}
		if _, dup := seenCmd[e.Command]; dup {
			res.DuplicateCommands++
		} else {
			seenCmd[e.Command] = k
		}
	}
	if dealers != nil {
		res.DealerSlots = dealers.DealersRetained()
		res.DealerRounds = dealers.RoundsRetained()
	}
	return res, nil
}

// RestartCatchupSpec is the canonical restart-catchup scenario: n replicas
// checkpointing every `every` slots, the last live replica killed after a
// third of the expected traffic and revived an interval's worth of
// deliveries later — long past its window, with everything sent in between
// gone — so only certificate-verified state transfer can bring it back.
// The stop condition demands the victim then commits slots itself.
func RestartCatchupSpec(n, slots, every int, seed int64) SMRConfig {
	return SMRConfig{
		N: n, F: quorum.MaxByzantine(n),
		Slots:           slots,
		Commands:        4,
		CheckpointEvery: every,
		Coin:            CoinLocal,
		Seed:            seed,
		Restart: &SMRRestart{
			CrashAfter:  80 * n,
			ReviveAfter: 160 * n,
		},
	}
}
