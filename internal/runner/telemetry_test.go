package runner_test

// Telemetry-plane determinism properties: the merged telemetry report is a
// pure function of (configs, seeds) — bitwise independent of the sweep
// worker count, of GOMAXPROCS, and of the order per-run sinks are merged in
// (the integer merge is exactly associative and commutative, so even
// completion order would do) — and the causal JSONL trace dump of a run is
// byte-stable across repetitions. These are the properties the CI telemetry
// smoke re-checks end-to-end through cmd/bench.

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/runner"
	"repro/internal/sim"
)

// telemetryConfigs builds a small cross-family config block, every run with
// the telemetry plane attached.
func telemetryConfigs(tb testing.TB, runs int) []runner.Config {
	tb.Helper()
	var cfgs []runner.Config
	for _, sched := range []struct {
		kind  runner.SchedulerKind
		sched runner.SchedParams
	}{
		{kind: runner.SchedUniform},
		{kind: runner.SchedReorder},
		{kind: runner.SchedAdaptiveRush, sched: runner.SchedParams{TargetLag: 480}},
	} {
		for i := 0; i < runs; i++ {
			cfgs = append(cfgs, runner.Config{
				N: 8, F: 2,
				Protocol:      runner.ProtocolBracha,
				Coin:          runner.CoinCommon,
				Adversary:     runner.AdvLiar,
				Scheduler:     sched.kind,
				Sched:         sched.sched,
				Inputs:        runner.InputRandom,
				MaxDeliveries: runner.DeliveryBudget(8),
				Seed:          int64(1 + i),
				Telemetry:     true,
			})
		}
	}
	return cfgs
}

// mergedReportJSON sweeps the configs and renders the index-order-merged
// telemetry report as JSON.
func mergedReportJSON(tb testing.TB, cfgs []runner.Config, workers int) []byte {
	tb.Helper()
	results, err := runner.Sweep(cfgs, workers)
	if err != nil {
		tb.Fatal(err)
	}
	merged := sim.NewTelemetry()
	for _, r := range results {
		if r.Telemetry == nil {
			tb.Fatalf("seed %d: Config.Telemetry set but Result.Telemetry nil", r.Config.Seed)
		}
		merged.Merge(r.Telemetry)
	}
	out, err := json.Marshal(merged.Report())
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// TestTelemetryWorkerIndependence: the merged report is bitwise identical
// across worker counts and GOMAXPROCS values.
func TestTelemetryWorkerIndependence(t *testing.T) {
	cfgs := telemetryConfigs(t, 3)
	want := mergedReportJSON(t, cfgs, 1)
	if len(want) == 0 || bytes.Equal(want, []byte(`{"kinds":null,"phases":null}`)) {
		t.Fatalf("empty telemetry report: %s", want)
	}
	for _, workers := range []int{2, 4} {
		if got := mergedReportJSON(t, cfgs, workers); !bytes.Equal(got, want) {
			t.Errorf("workers=%d: merged report diverged\n got: %s\nwant: %s", workers, got, want)
		}
	}
	old := runtime.GOMAXPROCS(2)
	defer runtime.GOMAXPROCS(old)
	if got := mergedReportJSON(t, cfgs, 4); !bytes.Equal(got, want) {
		t.Errorf("GOMAXPROCS=2: merged report diverged")
	}
}

// TestTelemetryMergeOrderIndependence: folding the per-run sinks in any
// permutation — the completion orders a worker pool could produce — yields
// the identical report, because the merge is associative and commutative
// over pure integer state.
func TestTelemetryMergeOrderIndependence(t *testing.T) {
	cfgs := telemetryConfigs(t, 2)
	results, err := runner.Sweep(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	fold := func(order []int) []byte {
		merged := sim.NewTelemetry()
		for _, i := range order {
			merged.Merge(results[i].Telemetry)
		}
		out, err := json.Marshal(merged.Report())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	want := fold(order)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		if got := fold(order); !bytes.Equal(got, want) {
			t.Fatalf("trial %d: merge order %v changed the report", trial, order)
		}
	}
}

// TestTraceJSONLByteStable: two runs of the identical config produce
// byte-identical causal JSONL dumps (what the CI trace smoke diffs through
// `bench -trace`).
func TestTraceJSONLByteStable(t *testing.T) {
	cfg := runner.Config{
		N: 4, F: 1,
		Protocol:  runner.ProtocolBracha,
		Coin:      runner.CoinCommon,
		Adversary: runner.AdvNone,
		Scheduler: runner.SchedUniform,
		Inputs:    runner.InputSplit,
		Seed:      42,
		Trace:     true,
	}
	dump := func() []byte {
		res, err := runner.Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.Recorder.WriteJSONL(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if len(a) == 0 {
		t.Fatal("empty JSONL dump")
	}
	if !bytes.Equal(a, b) {
		t.Fatal("identical runs produced different JSONL dumps")
	}
}

// TestTelemetryMatchesResultCounters: the per-kind totals agree exactly with
// the run's headline counters, including the newly surfaced drop counter.
func TestTelemetryMatchesResultCounters(t *testing.T) {
	res, err := runner.Run(runner.Config{
		N: 8, F: 2,
		Protocol:  runner.ProtocolBracha,
		Coin:      runner.CoinCommon,
		Adversary: runner.AdvEquivocator,
		Scheduler: runner.SchedRushByz,
		Inputs:    runner.InputSplit,
		Seed:      5,
		Telemetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var sent, delivered, dropped, bytesTotal int64
	for k := range res.Telemetry.Kinds {
		ks := &res.Telemetry.Kinds[k]
		sent += ks.Sent
		delivered += ks.Delivered
		dropped += ks.Dropped
		bytesTotal += ks.Bytes
	}
	if sent != int64(res.Messages) || delivered != int64(res.Deliveries) {
		t.Errorf("telemetry sent/delivered %d/%d != result %d/%d", sent, delivered, res.Messages, res.Deliveries)
	}
	if dropped != int64(res.Dropped) {
		t.Errorf("telemetry dropped %d != result dropped %d", dropped, res.Dropped)
	}
	if bytesTotal != res.WireBytes {
		t.Errorf("telemetry bytes %d != wire bytes %d", bytesTotal, res.WireBytes)
	}
}

// TestSMRTelemetryPhases: a checkpointing replicated-log run charges the
// vote→certify phase, and a restart run charges request→install — the
// checkpoint-plane marks wired through internal/smr.
func TestSMRTelemetryPhases(t *testing.T) {
	base := runner.SMRConfig{
		N: 4, F: 1,
		Slots:           48,
		Commands:        8,
		CheckpointEvery: 8,
		Coin:            runner.CoinCommon,
		Seed:            3,
		Telemetry:       true,
	}
	res, err := runner.RunSMR(base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry == nil {
		t.Fatal("SMRConfig.Telemetry set but SMRResult.Telemetry nil")
	}
	if c := res.Telemetry.Phases[sim.PhaseCkptCertify].Count; c == 0 {
		t.Error("no vote→certify phase observations in a checkpointing run")
	}
	if c := res.Telemetry.Phases[sim.PhaseRBCDeliver].Count; c == 0 {
		t.Error("no RBC deliver observations in a dissemination-driven run")
	}

	restart := base
	restart.Restart = &runner.SMRRestart{CrashAfter: 320, ReviveAfter: 640}
	rres, err := runner.RunSMR(restart)
	if err != nil {
		t.Fatal(err)
	}
	if rres.Transfers == 0 {
		t.Skip("victim never installed a transfer at this seed; install phase untestable")
	}
	if c := rres.Telemetry.Phases[sim.PhaseCkptInstall].Count; c == 0 {
		t.Error("victim installed a transfer but request→install phase is empty")
	}
}
