package runner

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"testing"
)

// sweepMatrix is a mixed bag of configurations exercising both protocols,
// several coins, adversaries, and schedulers across a spread of seeds.
func sweepMatrix() []Config {
	var cfgs []Config
	for seed := int64(1); seed <= 6; seed++ {
		cfgs = append(cfgs,
			Config{
				N: 4, F: 1, Byzantine: -1,
				Protocol: ProtocolBracha, Coin: CoinCommon,
				Adversary: AdvSilent, Scheduler: SchedUniform,
				Inputs: InputSplit, Seed: seed,
			},
			Config{
				N: 7, F: 2, Byzantine: -1,
				Protocol: ProtocolBracha, Coin: CoinLocal,
				Adversary: AdvLiar, Scheduler: SchedRushByz,
				Inputs: InputRandom, Seed: seed, MaxDeliveries: 400_000,
			},
			Config{
				N: 6, F: 1, Byzantine: -1,
				Protocol: ProtocolBenOr, Coin: CoinLocal,
				Adversary: AdvSilent, Scheduler: SchedFIFO,
				Inputs: InputSplit, Seed: seed, MaxRounds: 60, MaxDeliveries: 400_000,
			})
	}
	return cfgs
}

// TestSweepMatchesRun: the sweep engine must produce exactly what serial
// Run calls produce, in input order.
func TestSweepMatchesRun(t *testing.T) {
	cfgs := sweepMatrix()
	want := make([]*Result, len(cfgs))
	for i, cfg := range cfgs {
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res
	}
	got, err := Sweep(cfgs, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Errorf("cfg %d: sweep result differs from serial Run\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestSweepWorkerCountIndependence: results must be bitwise identical for
// every worker count — completion order must never leak into the output.
func TestSweepWorkerCountIndependence(t *testing.T) {
	cfgs := sweepMatrix()
	base, err := Sweep(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 32} {
		got, err := Sweep(cfgs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range cfgs {
			if !reflect.DeepEqual(got[i], base[i]) {
				t.Errorf("workers=%d cfg %d: result differs from workers=1", workers, i)
			}
		}
	}
}

// TestSweepGOMAXPROCSIndependence: with workers=0 the pool sizes itself
// from GOMAXPROCS; changing GOMAXPROCS must not change the results.
func TestSweepGOMAXPROCSIndependence(t *testing.T) {
	cfgs := sweepMatrix()
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	runtime.GOMAXPROCS(1)
	base, err := Sweep(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(4)
	got, err := Sweep(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfgs {
		if !reflect.DeepEqual(got[i], base[i]) {
			t.Errorf("cfg %d: GOMAXPROCS=4 result differs from GOMAXPROCS=1", i)
		}
	}
}

// TestSweepTraceIndependence: even full event traces (the strictest
// observable) are identical across worker counts.
func TestSweepTraceIndependence(t *testing.T) {
	cfg := Config{
		N: 7, F: 2, Byzantine: -1,
		Protocol: ProtocolBracha, Coin: CoinCommon,
		Adversary: AdvEquivocator, Scheduler: SchedRushByz,
		Inputs: InputSplit, Trace: true,
	}
	seeds := []int64{11, 12, 13, 14, 15, 16, 17, 18}
	hashes := func(workers int) []string {
		results, err := SweepSeeds(cfg, seeds, workers)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]string, len(results))
		for i, res := range results {
			out[i] = fmt.Sprintf("%x", res.Recorder.Dump())
		}
		return out
	}
	serial, parallel := hashes(1), hashes(8)
	for i := range seeds {
		if serial[i] != parallel[i] {
			t.Errorf("seed %d: trace differs between workers=1 and workers=8", seeds[i])
		}
	}
}

// TestSweepErrorDeterministic: the reported error is the lowest-index
// failing configuration regardless of scheduling, and errors do not abort
// sibling bookkeeping.
func TestSweepErrorDeterministic(t *testing.T) {
	cfgs := sweepMatrix()
	bad := Config{N: 4, F: 2} // violates n > 3f
	cfgs[5] = bad
	cfgs[9] = bad
	wantErr := func() error {
		_, err := Run(bad)
		return err
	}()
	if wantErr == nil {
		t.Fatal("expected bad config to fail")
	}
	for _, workers := range []int{1, 4} {
		res, err := Sweep(cfgs, workers)
		if err == nil || err.Error() != wantErr.Error() {
			t.Errorf("workers=%d: error = %v, want %v", workers, err, wantErr)
		}
		if res != nil {
			t.Errorf("workers=%d: results not discarded on error", workers)
		}
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("workers=%d: error does not wrap ErrBadConfig: %v", workers, err)
		}
	}
}
