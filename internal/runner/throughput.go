package runner

import (
	"fmt"

	"repro/internal/sim"
)

// This file is the committed-entries throughput mode: a (batch, pipeline
// depth) grid over the replicated-log workload, each point sized to commit
// at least a target number of entries, run across the same index-keyed
// worker pool as Sweep so the full grid's output is bitwise independent of
// worker count. Every reported number is deterministic — entries, virtual
// end time, deliveries, digests — a pure function of (config, seed);
// wall-clock rates are the caller's business (cmd/bench measures them and
// keeps them out of the comparable JSON).

// ThroughputConfig describes one throughput sweep.
type ThroughputConfig struct {
	N int // total processes
	F int // fault bound
	// Entries is the committed-entry target per grid point (> 0): each
	// point sizes its slot count as ceil(Entries/batch) and preloads full
	// batches, so every point commits at least Entries entries.
	Entries int
	// Batches and Depths are the grid axes (empty = {1}); the grid runs
	// batch-major in the given order.
	Batches []int
	Depths  []int
	// CheckpointEvery is the checkpoint cadence in slots (0 = off);
	// throughput numbers must not depend on it (the digests certainly do
	// not — CI diffs them).
	CheckpointEvery int
	// Window is the inner consensus retention window (0 = core default).
	Window int
	// Coin selects the per-slot coin (0 = CoinLocal).
	Coin CoinKind
	// CommandBytes pads every preloaded command to at least this many bytes
	// (0 = short protocol-exercising commands; see SMRConfig.CommandBytes).
	CommandBytes int
	// Coded switches candidate dissemination to erasure-coded reliable
	// broadcast (SMRConfig.Coded). Digests must be bitwise identical either
	// way; WireBytes is what moves.
	Coded bool
	// Seed drives every point; the whole grid is a pure function of
	// (config, seed).
	Seed int64
	// Workers sizes the pool (<= 0 = GOMAXPROCS). Results are keyed by
	// grid index, never completion order.
	Workers int
}

// ThroughputPoint is one grid point's deterministic outcome.
type ThroughputPoint struct {
	Batch int
	Depth int
	// Slots is the agreement instances the point ran (ceil(Entries/Batch)):
	// the whole win of batching is that Entries entries cost Slots — not
	// Entries — consensus rounds.
	Slots int
	// Entries is the committed entries observed in [0, Slots).
	Entries int
	// Deliveries, Messages, and EndTime (virtual sim time) are the
	// deterministic denominators: entries per delivery and entries per
	// virtual tick compare across batch/depth without wall-clock noise.
	Deliveries int
	Messages   int
	EndTime    sim.Time
	// WireBytes is the run's wire.MessageSize total — the bandwidth figure
	// the dissemination experiment (E14) reports per grid point.
	WireBytes int64
	// LogDigest and StateDigest are the reference replica's digests at the
	// Slots boundary — bitwise equal across worker counts and checkpoint
	// cadences for a given (config, seed, batch, depth).
	LogDigest   uint64
	StateDigest uint64
	// Health: all must be zero in a well-formed run.
	Mismatches        int
	SubmitDropped     int
	DuplicateCommands int
	Exhausted         bool
}

// EntriesPerKDeliveries returns committed entries per thousand deliveries —
// the deterministic throughput figure (deliveries are the simulator's unit
// of work, so this is the batch-efficiency ratio the experiment tables
// report).
func (p *ThroughputPoint) EntriesPerKDeliveries() float64 {
	if p.Deliveries == 0 {
		return 0
	}
	return float64(p.Entries) * 1000 / float64(p.Deliveries)
}

// RunThroughput executes the grid and returns one point per (batch, depth)
// pair, batch-major in input order.
func RunThroughput(cfg ThroughputConfig) ([]*ThroughputPoint, error) {
	if cfg.Entries <= 0 {
		return nil, fmt.Errorf("%w: throughput sweep needs Entries > 0", ErrBadConfig)
	}
	batches := cfg.Batches
	if len(batches) == 0 {
		batches = []int{1}
	}
	depths := cfg.Depths
	if len(depths) == 0 {
		depths = []int{1}
	}
	for _, b := range batches {
		if b <= 0 {
			return nil, fmt.Errorf("%w: batch %d", ErrBadConfig, b)
		}
	}
	for _, d := range depths {
		if d <= 0 {
			return nil, fmt.Errorf("%w: pipeline depth %d", ErrBadConfig, d)
		}
	}

	type gridPoint struct{ batch, depth int }
	grid := make([]gridPoint, 0, len(batches)*len(depths))
	for _, b := range batches {
		for _, d := range depths {
			grid = append(grid, gridPoint{b, d})
		}
	}

	points := make([]*ThroughputPoint, len(grid))
	err := parallelFor(len(grid), cfg.Workers, func(i int) error {
		g := grid[i]
		slots := (cfg.Entries + g.batch - 1) / g.batch
		// Preload full batches: each rotation member proposes at most
		// ceil(slots/n) turns, each consuming up to batch commands, so this
		// many commands per member keeps every disseminated batch full (no
		// noop padding diluting the entry count).
		n := cfg.N
		commands := (slots + n - 1) / n * g.batch
		res, err := RunSMR(SMRConfig{
			N: cfg.N, F: cfg.F,
			Slots:           slots,
			Commands:        commands,
			CommandBytes:    cfg.CommandBytes,
			Batch:           g.batch,
			Depth:           g.depth,
			CheckpointEvery: cfg.CheckpointEvery,
			Window:          cfg.Window,
			Coin:            cfg.Coin,
			Coded:           cfg.Coded,
			Seed:            cfg.Seed,
		})
		if err != nil {
			return fmt.Errorf("throughput point batch=%d depth=%d: %w", g.batch, g.depth, err)
		}
		points[i] = &ThroughputPoint{
			Batch: g.batch, Depth: g.depth,
			Slots:             slots,
			Entries:           res.Entries,
			Deliveries:        res.Deliveries,
			Messages:          res.Messages,
			EndTime:           res.EndTime,
			WireBytes:         res.WireBytes,
			LogDigest:         res.LogDigest,
			StateDigest:       res.StateDigest,
			Mismatches:        res.Mismatches,
			SubmitDropped:     res.SubmitDropped,
			DuplicateCommands: res.DuplicateCommands,
			Exhausted:         res.Exhausted,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}
