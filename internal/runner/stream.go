package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// streamWindowPerWorker sizes the reorder window of a streaming sweep: up to
// this many completed-but-not-yet-emitted results may exist per worker. The
// window is what bounds a streaming sweep's memory — O(workers), never
// O(sweep length).
const streamWindowPerWorker = 4

// SweepStream executes cfgAt(i) for every i in [0, n) across a worker pool
// and calls emit(i, result) in strict index order — the constant-memory
// streaming form of Sweep. Results are handed to emit as soon as the in-order
// prefix completes and are never accumulated: at most
// streamWindowPerWorker×workers results are alive at any moment, so a
// million-run sweep costs the same memory as a hundred-run one.
//
// Determinism contract (the streaming extension of Sweep's): because emit
// observes results in input order, any state emit folds them into — the
// checkpoint engine's Aggregate, a hash, a running reducer — goes through
// exactly the serial sequence of states, bitwise independent of the worker
// count, GOMAXPROCS, and goroutine scheduling.
//
// Errors: the error of the lowest-index failing run wins (again independent
// of scheduling), emit is never called for indices at or beyond the failing
// one, and an error returned by emit stops the sweep with that error. In
// every case all workers have exited before SweepStream returns.
func SweepStream(n, workers int, cfgAt func(int) Config, emit func(int, *Result) error) error {
	return sweepStream(n, workers, func(i int) (*Result, error) {
		return Run(cfgAt(i))
	}, emit)
}

// SweepStreamRBC is SweepStream for reliable-broadcast runs.
func SweepStreamRBC(n, workers int, cfgAt func(int) RBCConfig, emit func(int, *RBCResult) error) error {
	return sweepStream(n, workers, func(i int) (*RBCResult, error) {
		return RunRBC(cfgAt(i))
	}, emit)
}

// streamItem is one completed run in flight between a worker and the
// in-order consumer.
type streamItem[T any] struct {
	i   int
	res T
	err error
}

// sweepStream is the generic engine behind SweepStream and SweepStreamRBC: a
// worker pool pulling indices from an atomic counter, a ticket semaphore
// bounding how many results may be in flight, and a single consumer emitting
// in index order through a reorder buffer.
func sweepStream[T any](n, workers int, run func(int) (T, error), emit func(int, T) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial fast path — also the reference semantics of the engine.
		for i := 0; i < n; i++ {
			res, err := run(i)
			if err != nil {
				return err
			}
			if err := emit(i, res); err != nil {
				return err
			}
		}
		return nil
	}

	window := streamWindowPerWorker * workers
	if window > n {
		window = n
	}
	var (
		next atomic.Int64
		stop atomic.Bool
		wg   sync.WaitGroup
	)
	// tickets bounds in-flight results; items carries them to the consumer.
	// Invariant: (running runs) + (items buffered) + (pending map entries)
	// ≤ window, so sends on items never block and memory stays O(window).
	tickets := make(chan struct{}, window)
	items := make(chan streamItem[T], window)
	for k := 0; k < window; k++ {
		tickets <- struct{}{}
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for range tickets {
				if stop.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				res, err := run(i)
				items <- streamItem[T]{i: i, res: res, err: err}
			}
		}()
	}

	// The consumer: buffer out-of-order arrivals, emit the in-order prefix,
	// return one ticket per emitted result.
	pending := make(map[int]streamItem[T], window)
	var firstErr error
	emitted := 0
consume:
	for emitted < n {
		for {
			it, ok := pending[emitted]
			if !ok {
				break
			}
			delete(pending, emitted)
			if it.err != nil {
				firstErr = it.err
				break consume
			}
			if err := emit(emitted, it.res); err != nil {
				firstErr = err
				break consume
			}
			emitted++
			tickets <- struct{}{}
		}
		if emitted >= n {
			break
		}
		it := <-items
		pending[it.i] = it
	}

	// Shut down: wake ticket-blocked workers, then drain the item channel so
	// in-flight workers finish their sends and exit.
	stop.Store(true)
	close(tickets)
	go func() {
		wg.Wait()
		close(items)
	}()
	for range items {
	}
	return firstErr
}
