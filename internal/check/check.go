// Package check verifies protocol invariants over completed executions. The
// experiment runner feeds it what each correct process proposed, decided, and
// delivered; it returns the list of violated properties. Every consensus and
// broadcast property of the paper is checked on every run of every
// experiment, so "0 violations" in EXPERIMENTS.md is machine-checked, and the
// tightness experiment (E7) relies on these checkers to detect that the
// protocol actually breaks beyond f = ⌊(n−1)/3⌋.
package check

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/types"
)

// Violation is one broken property.
type Violation struct {
	Property string // e.g. "agreement"
	Detail   string
}

// String implements fmt.Stringer.
func (v Violation) String() string { return v.Property + ": " + v.Detail }

// Render formats a violation list, "none" when empty.
func Render(vs []Violation) string {
	if len(vs) == 0 {
		return "none"
	}
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = v.String()
	}
	return strings.Join(parts, "; ")
}

// Consensus properties (Definition: strong Byzantine consensus, binary).
const (
	PropAgreement   = "agreement"
	PropValidity    = "validity"
	PropIntegrity   = "integrity"
	PropTermination = "termination"
)

// ConsensusObservation is what the harness observed of one consensus
// execution, restricted to correct processes (the paper guarantees nothing
// for faulty ones).
type ConsensusObservation struct {
	// Correct lists the correct processes.
	Correct []types.ProcessID
	// Proposals maps each correct process to its input value.
	Proposals map[types.ProcessID]types.Value
	// Decisions maps each correct process to every decide event it emitted,
	// in order. A correct implementation emits exactly one.
	Decisions map[types.ProcessID][]types.Value
	// Quiesced reports that the run ended (network quiescent or budget
	// spent) — at which point non-decision is a termination violation.
	Quiesced bool
}

// Consensus checks agreement, strong validity, and integrity; termination is
// checked only when the observation quiesced (asynchronous runs stopped
// early prove nothing about liveness).
func Consensus(obs ConsensusObservation) []Violation {
	var out []Violation

	// Integrity: no correct process decides twice.
	for _, p := range sortedIDs(obs.Correct) {
		if n := len(obs.Decisions[p]); n > 1 {
			out = append(out, Violation{
				Property: PropIntegrity,
				Detail:   fmt.Sprintf("%v decided %d times: %v", p, n, obs.Decisions[p]),
			})
		}
	}

	// Agreement: no two correct processes decide differently.
	decided := map[types.Value][]types.ProcessID{}
	for _, p := range sortedIDs(obs.Correct) {
		if len(obs.Decisions[p]) > 0 {
			v := obs.Decisions[p][0]
			decided[v] = append(decided[v], p)
		}
	}
	if len(decided) > 1 {
		out = append(out, Violation{
			Property: PropAgreement,
			Detail:   fmt.Sprintf("conflicting decisions: %v", renderDecisionGroups(decided)),
		})
	}

	// Strong validity (binary form): a decided value must have been proposed
	// by some correct process.
	proposed := map[types.Value]bool{}
	for _, p := range obs.Correct {
		proposed[obs.Proposals[p]] = true
	}
	for v, who := range decided {
		if !proposed[v] {
			out = append(out, Violation{
				Property: PropValidity,
				Detail:   fmt.Sprintf("value %v decided by %v but proposed by no correct process", v, who),
			})
		}
	}

	// Termination: all correct processes decide (only meaningful at the end
	// of a quiesced run — probabilistic termination says the probability of
	// this failing vanishes with the round budget).
	if obs.Quiesced {
		var undecided []types.ProcessID
		for _, p := range sortedIDs(obs.Correct) {
			if len(obs.Decisions[p]) == 0 {
				undecided = append(undecided, p)
			}
		}
		if len(undecided) > 0 {
			out = append(out, Violation{
				Property: PropTermination,
				Detail:   fmt.Sprintf("undecided correct processes: %v", undecided),
			})
		}
	}
	return out
}

// Reliable-broadcast properties (Bracha broadcast).
const (
	PropRBCValidity  = "rbc-validity"
	PropRBCAgreement = "rbc-agreement"
	PropRBCIntegrity = "rbc-integrity"
	PropRBCTotality  = "rbc-totality"
)

// RBCObservation is what the harness observed of one reliable-broadcast
// instance.
type RBCObservation struct {
	// Correct lists the correct processes.
	Correct []types.ProcessID
	// SenderCorrect reports whether the instance's sender followed the
	// protocol; Broadcast is its body in that case.
	SenderCorrect bool
	Broadcast     string
	// Delivered maps each correct process to the bodies it rbc-delivered
	// for this instance, in order (a correct implementation delivers at
	// most one).
	Delivered map[types.ProcessID][]string
	// Quiesced reports that the run ended, enabling the totality check.
	Quiesced bool
}

// RBC checks the four reliable-broadcast properties on one instance.
func RBC(obs RBCObservation) []Violation {
	var out []Violation

	// Integrity: at most one delivery; if the sender is correct, only its
	// body may be delivered.
	for _, p := range sortedIDs(obs.Correct) {
		ds := obs.Delivered[p]
		if len(ds) > 1 {
			out = append(out, Violation{
				Property: PropRBCIntegrity,
				Detail:   fmt.Sprintf("%v delivered %d bodies", p, len(ds)),
			})
		}
		if obs.SenderCorrect && len(ds) > 0 && ds[0] != obs.Broadcast {
			out = append(out, Violation{
				Property: PropRBCIntegrity,
				Detail:   fmt.Sprintf("%v delivered %q, sender broadcast %q", p, ds[0], obs.Broadcast),
			})
		}
	}

	// Agreement: no two correct processes deliver different bodies.
	byBody := map[string][]types.ProcessID{}
	for _, p := range sortedIDs(obs.Correct) {
		if ds := obs.Delivered[p]; len(ds) > 0 {
			byBody[ds[0]] = append(byBody[ds[0]], p)
		}
	}
	if len(byBody) > 1 {
		out = append(out, Violation{
			Property: PropRBCAgreement,
			Detail:   fmt.Sprintf("conflicting deliveries across %d bodies", len(byBody)),
		})
	}

	// Validity: a correct sender's broadcast is delivered by all correct
	// processes (checkable once quiesced).
	if obs.Quiesced && obs.SenderCorrect {
		for _, p := range sortedIDs(obs.Correct) {
			if len(obs.Delivered[p]) == 0 {
				out = append(out, Violation{
					Property: PropRBCValidity,
					Detail:   fmt.Sprintf("%v never delivered the correct sender's broadcast", p),
				})
			}
		}
	}

	// Totality: if any correct process delivered, all must (once quiesced).
	if obs.Quiesced && len(byBody) > 0 {
		for _, p := range sortedIDs(obs.Correct) {
			if len(obs.Delivered[p]) == 0 {
				out = append(out, Violation{
					Property: PropRBCTotality,
					Detail:   fmt.Sprintf("%v delivered nothing while others delivered", p),
				})
			}
		}
	}
	return dedupe(out)
}

// maxSampleSeeds bounds how many offending seeds a Tally retains: enough to
// reproduce failures, small enough to keep the tally constant-memory.
const maxSampleSeeds = 16

// Tally accumulates check results across many runs in constant memory — the
// reducer the streaming sweep engine (internal/runner) folds every run's
// violation list into. Its whole state is exported with JSON tags and
// contains only integers and a sorted-key map, so a marshalled tally
// restores bit for bit (the checkpoint/resume guarantee).
type Tally struct {
	// Runs counts observed runs; ViolatedRuns those with ≥ 1 violation.
	Runs         int64 `json:"runs"`
	ViolatedRuns int64 `json:"violated_runs"`
	// Violations is the total violation count across all runs.
	Violations int64 `json:"violations"`
	// ByProperty counts violations per property name.
	ByProperty map[string]int64 `json:"by_property,omitempty"`
	// SampleSeeds holds the seeds of the first few violated runs, so a
	// failure found deep inside a million-run sweep replays with a single
	// targeted run.
	SampleSeeds []int64 `json:"sample_seeds,omitempty"`
}

// Observe folds one run's violations into the tally. seed identifies the run
// for SampleSeeds.
func (t *Tally) Observe(seed int64, vs []Violation) {
	t.Runs++
	if len(vs) == 0 {
		return
	}
	t.ViolatedRuns++
	t.Violations += int64(len(vs))
	if t.ByProperty == nil {
		t.ByProperty = make(map[string]int64)
	}
	for _, v := range vs {
		t.ByProperty[v.Property]++
	}
	if len(t.SampleSeeds) < maxSampleSeeds {
		t.SampleSeeds = append(t.SampleSeeds, seed)
	}
}

// Clean reports whether no violation was observed.
func (t *Tally) Clean() bool { return t.Violations == 0 }

// String implements fmt.Stringer.
func (t *Tally) String() string {
	if t.Clean() {
		return fmt.Sprintf("%d runs, no violations", t.Runs)
	}
	props := make([]string, 0, len(t.ByProperty))
	for p := range t.ByProperty {
		props = append(props, p)
	}
	sort.Strings(props)
	parts := make([]string, 0, len(props))
	for _, p := range props {
		parts = append(parts, fmt.Sprintf("%s=%d", p, t.ByProperty[p]))
	}
	return fmt.Sprintf("%d/%d runs violated (%s; first seeds %v)",
		t.ViolatedRuns, t.Runs, strings.Join(parts, " "), t.SampleSeeds)
}

func renderDecisionGroups(decided map[types.Value][]types.ProcessID) string {
	vals := make([]int, 0, len(decided))
	for v := range decided {
		vals = append(vals, int(v))
	}
	sort.Ints(vals)
	parts := make([]string, 0, len(vals))
	for _, v := range vals {
		parts = append(parts, fmt.Sprintf("%d<-%v", v, decided[types.Value(v)]))
	}
	return strings.Join(parts, " vs ")
}

func sortedIDs(ps []types.ProcessID) []types.ProcessID {
	out := append([]types.ProcessID(nil), ps...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupe(vs []Violation) []Violation {
	seen := map[Violation]bool{}
	out := vs[:0]
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
