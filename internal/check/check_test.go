package check

import (
	"strings"
	"testing"

	"repro/internal/types"
)

func props(vs []Violation) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.Property
	}
	return out
}

func hasProp(vs []Violation, p string) bool {
	for _, v := range vs {
		if v.Property == p {
			return true
		}
	}
	return false
}

func TestConsensusClean(t *testing.T) {
	obs := ConsensusObservation{
		Correct:   types.Processes(3),
		Proposals: map[types.ProcessID]types.Value{1: 0, 2: 1, 3: 1},
		Decisions: map[types.ProcessID][]types.Value{1: {1}, 2: {1}, 3: {1}},
		Quiesced:  true,
	}
	if vs := Consensus(obs); len(vs) != 0 {
		t.Errorf("clean run reported violations: %v", vs)
	}
}

func TestConsensusViolations(t *testing.T) {
	tests := []struct {
		name string
		obs  ConsensusObservation
		want []string
	}{
		{
			name: "agreement broken",
			obs: ConsensusObservation{
				Correct:   types.Processes(2),
				Proposals: map[types.ProcessID]types.Value{1: 0, 2: 1},
				Decisions: map[types.ProcessID][]types.Value{1: {0}, 2: {1}},
			},
			want: []string{PropAgreement},
		},
		{
			name: "validity broken: unanimous proposals overridden",
			obs: ConsensusObservation{
				Correct:   types.Processes(2),
				Proposals: map[types.ProcessID]types.Value{1: 0, 2: 0},
				Decisions: map[types.ProcessID][]types.Value{1: {1}, 2: {1}},
			},
			want: []string{PropValidity},
		},
		{
			name: "integrity broken: double decide",
			obs: ConsensusObservation{
				Correct:   types.Processes(1),
				Proposals: map[types.ProcessID]types.Value{1: 1},
				Decisions: map[types.ProcessID][]types.Value{1: {1, 1}},
			},
			want: []string{PropIntegrity},
		},
		{
			name: "termination broken on quiesced run",
			obs: ConsensusObservation{
				Correct:   types.Processes(2),
				Proposals: map[types.ProcessID]types.Value{1: 1, 2: 1},
				Decisions: map[types.ProcessID][]types.Value{1: {1}},
				Quiesced:  true,
			},
			want: []string{PropTermination},
		},
		{
			name: "no termination check while running",
			obs: ConsensusObservation{
				Correct:   types.Processes(2),
				Proposals: map[types.ProcessID]types.Value{1: 1, 2: 1},
				Decisions: map[types.ProcessID][]types.Value{},
				Quiesced:  false,
			},
			want: nil,
		},
		{
			name: "multiple violations at once",
			obs: ConsensusObservation{
				Correct:   types.Processes(3),
				Proposals: map[types.ProcessID]types.Value{1: 0, 2: 0, 3: 0},
				Decisions: map[types.ProcessID][]types.Value{1: {0, 1}, 2: {1}, 3: {0}},
				Quiesced:  true,
			},
			want: []string{PropIntegrity, PropAgreement, PropValidity},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vs := Consensus(tt.obs)
			for _, want := range tt.want {
				if !hasProp(vs, want) {
					t.Errorf("missing %q in %v", want, props(vs))
				}
			}
			if len(tt.want) == 0 && len(vs) != 0 {
				t.Errorf("unexpected violations: %v", vs)
			}
		})
	}
}

func TestRBCClean(t *testing.T) {
	obs := RBCObservation{
		Correct:       types.Processes(3),
		SenderCorrect: true,
		Broadcast:     "m",
		Delivered:     map[types.ProcessID][]string{1: {"m"}, 2: {"m"}, 3: {"m"}},
		Quiesced:      true,
	}
	if vs := RBC(obs); len(vs) != 0 {
		t.Errorf("clean RBC reported violations: %v", vs)
	}
}

func TestRBCByzantineSenderSilence(t *testing.T) {
	// A Byzantine sender that causes no delivery violates nothing.
	obs := RBCObservation{
		Correct:       types.Processes(3),
		SenderCorrect: false,
		Delivered:     map[types.ProcessID][]string{},
		Quiesced:      true,
	}
	if vs := RBC(obs); len(vs) != 0 {
		t.Errorf("silent Byzantine instance reported violations: %v", vs)
	}
}

func TestRBCViolations(t *testing.T) {
	tests := []struct {
		name string
		obs  RBCObservation
		want []string
	}{
		{
			name: "agreement broken: split deliveries",
			obs: RBCObservation{
				Correct:   types.Processes(2),
				Delivered: map[types.ProcessID][]string{1: {"a"}, 2: {"b"}},
				Quiesced:  true,
			},
			want: []string{PropRBCAgreement},
		},
		{
			name: "integrity broken: double delivery",
			obs: RBCObservation{
				Correct:   types.Processes(1),
				Delivered: map[types.ProcessID][]string{1: {"a", "a"}},
			},
			want: []string{PropRBCIntegrity},
		},
		{
			name: "integrity broken: wrong body from correct sender",
			obs: RBCObservation{
				Correct:       types.Processes(1),
				SenderCorrect: true,
				Broadcast:     "m",
				Delivered:     map[types.ProcessID][]string{1: {"x"}},
			},
			want: []string{PropRBCIntegrity},
		},
		{
			name: "validity broken: correct sender, no delivery",
			obs: RBCObservation{
				Correct:       types.Processes(2),
				SenderCorrect: true,
				Broadcast:     "m",
				Delivered:     map[types.ProcessID][]string{},
				Quiesced:      true,
			},
			want: []string{PropRBCValidity},
		},
		{
			name: "totality broken: one delivered, one did not",
			obs: RBCObservation{
				Correct:   types.Processes(2),
				Delivered: map[types.ProcessID][]string{1: {"a"}},
				Quiesced:  true,
			},
			want: []string{PropRBCTotality},
		},
		{
			name: "no liveness checks before quiescence",
			obs: RBCObservation{
				Correct:       types.Processes(2),
				SenderCorrect: true,
				Broadcast:     "m",
				Delivered:     map[types.ProcessID][]string{1: {"m"}},
				Quiesced:      false,
			},
			want: nil,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			vs := RBC(tt.obs)
			for _, want := range tt.want {
				if !hasProp(vs, want) {
					t.Errorf("missing %q in %v", want, props(vs))
				}
			}
			if len(tt.want) == 0 && len(vs) != 0 {
				t.Errorf("unexpected violations: %v", vs)
			}
		})
	}
}

func TestRender(t *testing.T) {
	if Render(nil) != "none" {
		t.Errorf("Render(nil) = %q", Render(nil))
	}
	vs := []Violation{{Property: "a", Detail: "x"}, {Property: "b", Detail: "y"}}
	got := Render(vs)
	if !strings.Contains(got, "a: x") || !strings.Contains(got, "b: y") {
		t.Errorf("Render = %q", got)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Property: PropAgreement, Detail: "boom"}
	if v.String() != "agreement: boom" {
		t.Errorf("String() = %q", v.String())
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	if !tl.Clean() {
		t.Fatal("zero tally not clean")
	}
	tl.Observe(1, nil)
	tl.Observe(2, []Violation{{Property: PropAgreement, Detail: "x"}})
	tl.Observe(3, []Violation{
		{Property: PropAgreement, Detail: "y"},
		{Property: PropValidity, Detail: "z"},
	})
	if tl.Runs != 3 || tl.ViolatedRuns != 2 || tl.Violations != 3 {
		t.Errorf("tally = %+v", tl)
	}
	if tl.ByProperty[PropAgreement] != 2 || tl.ByProperty[PropValidity] != 1 {
		t.Errorf("by-property = %v", tl.ByProperty)
	}
	if len(tl.SampleSeeds) != 2 || tl.SampleSeeds[0] != 2 || tl.SampleSeeds[1] != 3 {
		t.Errorf("sample seeds = %v", tl.SampleSeeds)
	}
	if tl.Clean() {
		t.Error("violated tally reported clean")
	}
	s := tl.String()
	for _, want := range []string{"2/3 runs violated", "agreement=2", "validity=1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestTallySampleSeedsBounded(t *testing.T) {
	var tl Tally
	for seed := int64(0); seed < 100; seed++ {
		tl.Observe(seed, []Violation{{Property: PropTermination, Detail: "late"}})
	}
	if len(tl.SampleSeeds) != maxSampleSeeds {
		t.Errorf("retained %d seeds, want %d", len(tl.SampleSeeds), maxSampleSeeds)
	}
}
