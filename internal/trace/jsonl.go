package trace

// Strict JSONL export: one JSON object per event, one event per line, with a
// fixed field set in a fixed order (encoding/json emits struct fields in
// declaration order). The rendering is a pure function of the recorded
// events, so two identical runs dump byte-identical files — CI diffs them —
// and internal/obs or any external tool (jq, a notebook) can parse a trace
// without knowing this repository's types.

import (
	"bufio"
	"encoding/json"
	"io"
)

// jsonlEvent is the export schema. Numeric identifiers are plain integers
// (p, from, to are process IDs; seq/parent are wire sequence numbers); kinds
// render by name. Omitted fields mean "not applicable to this event kind",
// except v, which is a string ("0"/"1") precisely so a decided Zero is not
// swallowed by omitempty.
type jsonlEvent struct {
	T      int64  `json:"t"`
	Kind   string `json:"kind"`
	P      int    `json:"p"`
	Seq    uint64 `json:"seq,omitempty"`
	Parent uint64 `json:"parent,omitempty"`
	Msg    string `json:"msg,omitempty"`
	From   int    `json:"from,omitempty"`
	To     int    `json:"to,omitempty"`
	Round  int    `json:"round,omitempty"`
	V      string `json:"v,omitempty"`
	Note   string `json:"note,omitempty"`
}

// WriteJSONL renders every stored event to w in record order.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range r.Events() {
		je := jsonlEvent{
			T:      e.Time,
			Kind:   e.Kind.String(),
			P:      int(e.P),
			Seq:    e.Seq,
			Parent: e.Parent,
			Note:   e.Note,
		}
		switch e.Kind {
		case KindSend, KindDeliver, KindDrop:
			if e.Msg.Payload != nil {
				je.Msg = e.Msg.Payload.Kind().String()
			}
			je.From, je.To = int(e.Msg.From), int(e.Msg.To)
		case KindDecide, KindCoin:
			je.V = e.V.String()
			je.Round = e.Round
		case KindRound:
			je.Round = e.Round
		}
		if err := enc.Encode(je); err != nil {
			return err
		}
	}
	return bw.Flush()
}
