package trace

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/types"
)

func TestZeroRecorderDisabled(t *testing.T) {
	var r Recorder
	r.Record(Event{Kind: KindNote})
	if r.Enabled() || r.Len() != 0 || r.Events() != nil || r.Dropped() != 0 {
		t.Error("zero Recorder must be inert")
	}
	var nilR *Recorder
	if nilR.Enabled() {
		t.Error("nil Recorder must report disabled")
	}
	nilR.Record(Event{}) // must not panic
	if nilR.Len() != 0 || nilR.Dropped() != 0 {
		t.Error("nil Recorder must be inert")
	}
}

func TestRecordAndQuery(t *testing.T) {
	r := New(0)
	r.Record(Event{Time: 1, Kind: KindSend, P: 1})
	r.Record(Event{Time: 2, Kind: KindDeliver, P: 2})
	r.Record(Event{Time: 3, Kind: KindDecide, P: 1, V: types.One, Round: 2})
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	if got := r.ByKind(KindDecide); len(got) != 1 || got[0].V != types.One {
		t.Errorf("ByKind(KindDecide) = %v", got)
	}
	if got := r.ByProcess(1); len(got) != 2 {
		t.Errorf("ByProcess(1) returned %d events, want 2", len(got))
	}
	if got := r.Filter(func(e Event) bool { return e.Time > 1 }); len(got) != 2 {
		t.Errorf("Filter returned %d events, want 2", len(got))
	}
}

func TestLimit(t *testing.T) {
	r := New(2)
	for i := 0; i < 5; i++ {
		r.Record(Event{Time: int64(i), Kind: KindNote})
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
	if r.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", r.Dropped())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	r := New(0)
	r.Record(Event{Time: 1, Kind: KindNote})
	evs := r.Events()
	evs[0].Time = 99
	if r.Events()[0].Time != 1 {
		t.Error("Events must return a copy")
	}
}

func TestConcurrentRecord(t *testing.T) {
	r := New(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Record(Event{Kind: KindNote})
			}
		}()
	}
	wg.Wait()
	if r.Len() != 800 {
		t.Errorf("Len = %d, want 800", r.Len())
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		name string
		e    Event
		want []string
	}{
		{
			"send",
			Event{Time: 5, Kind: KindSend, P: 1, Msg: types.Message{From: 1, To: 2, Payload: &types.DecidePayload{V: types.One}}},
			[]string{"SEND", "p1", "p1->p2", "DECIDE[1]"},
		},
		{
			"decide",
			Event{Time: 9, Kind: KindDecide, P: 3, V: types.Zero, Round: 4},
			[]string{"DECIDE", "p3", "v=0", "round=4"},
		},
		{
			"round",
			Event{Kind: KindRound, P: 2, Round: 7},
			[]string{"ROUND", "round=7"},
		},
		{
			"coin",
			Event{Kind: KindCoin, P: 2, Round: 3, V: types.One},
			[]string{"COIN", "v=1", "round=3"},
		},
		{
			"note",
			Event{Kind: KindNote, P: 1, Note: "hello"},
			[]string{"NOTE", "(hello)"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := tt.e.String()
			for _, want := range tt.want {
				if !strings.Contains(s, want) {
					t.Errorf("String() = %q missing %q", s, want)
				}
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if KindSend.String() != "SEND" || KindRBC.String() != "RBC" {
		t.Error("unexpected kind names")
	}
	// Unknown kinds render to one stable constant — the same string for
	// every out-of-range value (including 0), so no formatting, no
	// allocation, and no attacker-controlled bytes in a dump.
	if got := Kind(222).String(); got != kindUnknown {
		t.Errorf("unknown kind String() = %q, want %q", got, kindUnknown)
	}
	if got := Kind(0).String(); got != kindUnknown {
		t.Errorf("zero kind String() = %q, want %q", got, kindUnknown)
	}
}

// TestKindStringAllocFree pins the dense-array rendering at zero
// allocations for known and unknown kinds alike (the map+Sprintf rendering
// it replaced allocated on every unknown kind).
func TestKindStringAllocFree(t *testing.T) {
	var sink string
	allocs := testing.AllocsPerRun(100, func() {
		sink = KindSend.String()
		sink = KindNote.String()
		sink = Kind(222).String()
	})
	_ = sink
	if allocs != 0 {
		t.Errorf("Kind.String cost %.1f allocs/op, want 0", allocs)
	}
}

// BenchmarkKindString measures the dense-array name lookup (compare against
// a map probe by checking out the previous revision).
func BenchmarkKindString(b *testing.B) {
	b.ReportAllocs()
	var sink string
	for i := 0; i < b.N; i++ {
		sink = Kind(i % 11).String()
	}
	_ = sink
}

func TestDump(t *testing.T) {
	r := New(0)
	r.Record(Event{Time: 1, Kind: KindNote, P: 1, Note: "a"})
	r.Record(Event{Time: 2, Kind: KindNote, P: 2, Note: "b"})
	d := r.Dump()
	if strings.Count(d, "\n") != 2 {
		t.Errorf("Dump = %q, want 2 lines", d)
	}
	if !strings.Contains(d, "(a)") || !strings.Contains(d, "(b)") {
		t.Errorf("Dump missing notes: %q", d)
	}
}
