// Package trace records structured execution events. The simulator and the
// protocol nodes emit events into a Recorder; tests and the invariant
// checkers (internal/check) read them back to verify what actually happened,
// and cmd/brachasim can dump them for debugging a single run.
//
// The zero Recorder is disabled (records nothing, costs two branches), so
// benchmark runs pay nothing for tracing.
package trace

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/types"
)

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	KindSend    Kind = iota + 1 // a message was handed to the network
	KindDeliver                 // a message was delivered to a process
	KindDecide                  // a process decided a value
	KindHalt                    // a process halted
	KindRound                   // a process advanced to a round
	KindCoin                    // a process obtained a coin value for a round
	KindRBC                     // a reliable-broadcast instance delivered at a process
	KindDrop                    // the network dropped a message (failure injection / spoof)
	KindNote                    // free-form annotation
)

// kindNames is a dense array, not a map: Kind.String() on the hot rendering
// paths (Dump folds it per event, JSONL export per line) is a bounds check
// and an index, never a map probe or an allocation.
var kindNames = [...]string{
	KindSend:    "SEND",
	KindDeliver: "DELIVER",
	KindDecide:  "DECIDE",
	KindHalt:    "HALT",
	KindRound:   "ROUND",
	KindCoin:    "COIN",
	KindRBC:     "RBC",
	KindDrop:    "DROP",
	KindNote:    "NOTE",
}

// kindUnknown is the stable rendering of any out-of-range Kind: one constant
// string for every unknown value, so rendering never allocates and corrupt
// kinds cannot smuggle variable bytes into a dump.
const kindUnknown = "KIND(?)"

// String implements fmt.Stringer. Alloc-free for every input.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		if s := kindNames[k]; s != "" {
			return s
		}
	}
	return kindUnknown
}

// Event is one recorded occurrence. Fields beyond Kind, Time and P are
// populated per kind: Msg for SEND/DELIVER/DROP, V for DECIDE/COIN, Round for
// ROUND/COIN, Note for NOTE and DROP reasons.
//
// Seq and Parent carry the causal structure (see internal/obs): Seq is the
// wire sequence number of the message a SEND/DELIVER/DROP event concerns,
// and Parent is the wire sequence of the delivery whose handler recorded the
// event — the delivered message that *triggered* it (0 for events recorded
// during Start or outside a handler). Both are deliberately absent from
// String(), so the golden replay hashes over Dump() are unchanged by their
// introduction.
type Event struct {
	Time   int64
	Kind   Kind
	P      types.ProcessID
	Msg    types.Message
	Round  int
	V      types.Value
	Note   string
	Seq    uint64
	Parent uint64
}

// String implements fmt.Stringer.
func (e Event) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "t=%-6d %-8s %v", e.Time, e.Kind, e.P)
	switch e.Kind {
	case KindSend, KindDeliver, KindDrop:
		fmt.Fprintf(&b, " %v", e.Msg)
	case KindDecide:
		fmt.Fprintf(&b, " v=%v round=%d", e.V, e.Round)
	case KindCoin:
		fmt.Fprintf(&b, " v=%v round=%d", e.V, e.Round)
	case KindRound:
		fmt.Fprintf(&b, " round=%d", e.Round)
	}
	if e.Note != "" {
		fmt.Fprintf(&b, " (%s)", e.Note)
	}
	return b.String()
}

// Recorder collects events. It is safe for concurrent use (live transports
// deliver from multiple goroutines). The zero value is a disabled recorder;
// use New for an enabled one.
type Recorder struct {
	mu      sync.Mutex
	enabled bool
	limit   int
	dropped int
	// parent is the causal context: the wire seq of the delivery whose
	// handler is currently running (see SetParent). Stamped onto every
	// recorded event whose Parent is unset.
	parent uint64
	events []Event
}

// DefaultLimit bounds a Recorder's memory when no explicit limit is given.
const DefaultLimit = 1 << 20

// New returns an enabled Recorder holding at most limit events (DefaultLimit
// if limit ≤ 0); further events are counted but not stored.
func New(limit int) *Recorder {
	if limit <= 0 {
		limit = DefaultLimit
	}
	return &Recorder{enabled: true, limit: limit}
}

// Enabled reports whether r records events. A nil or zero Recorder is
// disabled.
func (r *Recorder) Enabled() bool { return r != nil && r.enabled }

// Record stores the event if the recorder is enabled and under its limit.
// An event with no explicit Parent inherits the current causal context —
// protocol nodes record DECIDE/ROUND/RBC events with no knowledge of wire
// sequencing, and the context set by the driver links them to the delivery
// that triggered them.
func (r *Recorder) Record(e Event) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.events) >= r.limit {
		r.dropped++
		return
	}
	if e.Parent == 0 {
		e.Parent = r.parent
	}
	r.events = append(r.events, e)
}

// SetParent sets (seq ≠ 0) or clears (seq = 0) the causal context stamped
// onto subsequently recorded events. The simulator brackets every delivery
// dispatch with it; single-threaded drivers get exact causality, concurrent
// drivers (live transports) should leave it unset.
func (r *Recorder) SetParent(seq uint64) {
	if !r.Enabled() {
		return
	}
	r.mu.Lock()
	r.parent = seq
	r.mu.Unlock()
}

// Events returns a copy of all stored events in record order.
func (r *Recorder) Events() []Event {
	if !r.Enabled() {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Dropped returns how many events exceeded the limit.
func (r *Recorder) Dropped() int {
	if !r.Enabled() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Len returns the number of stored events.
func (r *Recorder) Len() int {
	if !r.Enabled() {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// Filter returns the stored events matching pred, in order.
func (r *Recorder) Filter(pred func(Event) bool) []Event {
	var out []Event
	for _, e := range r.Events() {
		if pred(e) {
			out = append(out, e)
		}
	}
	return out
}

// ByKind returns the stored events of the given kind.
func (r *Recorder) ByKind(k Kind) []Event {
	return r.Filter(func(e Event) bool { return e.Kind == k })
}

// ByProcess returns the stored events for the given process.
func (r *Recorder) ByProcess(p types.ProcessID) []Event {
	return r.Filter(func(e Event) bool { return e.P == p })
}

// Dump renders all stored events, one per line.
func (r *Recorder) Dump() string {
	var b strings.Builder
	for _, e := range r.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
