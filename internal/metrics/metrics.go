// Package metrics aggregates experiment measurements and renders them as the
// aligned text tables and CSV series that cmd/bench and EXPERIMENTS.md use.
// It is deliberately dependency-free statistics: counts, means, percentiles.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample of float64 observations.
type Summary struct {
	Count         int
	Mean          float64
	StdDev        float64
	Min, Max      float64
	P50, P90, P99 float64
}

// Summarize computes a Summary. An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	var sq float64
	for _, x := range xs {
		d := x - s.Mean
		sq += d * d
	}
	s.StdDev = math.Sqrt(sq / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// percentile reads the q-quantile from an already sorted sample using the
// nearest-rank method.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.Count, s.Mean, s.StdDev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Sample accumulates observations incrementally.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// AddInt appends an integer observation.
func (s *Sample) AddInt(x int) { s.Add(float64(x)) }

// Len returns the number of observations.
func (s *Sample) Len() int { return len(s.xs) }

// Values returns a copy of the observations.
func (s *Sample) Values() []float64 { return append([]float64(nil), s.xs...) }

// Summary computes the summary of the accumulated observations.
func (s *Sample) Summary() Summary { return Summarize(s.xs) }

// Table renders experiment results as an aligned text table (for terminals
// and EXPERIMENTS.md) or CSV (for plotting). Rows hold formatted cells;
// formatting helpers keep numeric output consistent across experiments.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row of cells. Cells beyond the header width are kept;
// short rows are padded when rendering.
func (t *Table) AddRow(cells ...string) { t.rows = append(t.rows, cells) }

// AddRowf appends a row where each cell is formatted from the corresponding
// value: ints and process counts as %d, float64 as %.2f, everything else via
// %v.
func (t *Table) AddRowf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.2f", x)
		case string:
			cells[i] = x
		default:
			cells[i] = fmt.Sprint(v)
		}
	}
	t.AddRow(cells...)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Rows returns a copy of the data rows (for machine-readable output).
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i, r := range t.rows {
		out[i] = append([]string(nil), r...)
	}
	return out
}

// Render returns the aligned text form.
func (t *Table) Render() string {
	cols := len(t.Headers)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, cols)
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// CSV returns the comma-separated form (headers first). Cells containing
// commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points — one line of a figure.
type Series struct {
	Name   string
	Points []Point
}

// Point is one figure sample.
type Point struct {
	X float64
	Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Figure renders one or more series as a table keyed by X — the textual
// equivalent of a paper figure, one column per series.
func Figure(title, xLabel string, series ...Series) *Table {
	headers := append([]string{xLabel}, make([]string, len(series))...)
	for i, s := range series {
		headers[i+1] = s.Name
	}
	t := NewTable(title, headers...)
	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	sort.Float64s(xs)
	for _, x := range xs {
		row := make([]string, len(series)+1)
		row[0] = trimFloat(x)
		for i, s := range series {
			row[i+1] = "-"
			for _, p := range s.Points {
				if p.X == x {
					row[i+1] = fmt.Sprintf("%.2f", p.Y)
					break
				}
			}
		}
		t.AddRow(row...)
	}
	return t
}

func trimFloat(x float64) string {
	if x == math.Trunc(x) {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%.3f", x)
}
