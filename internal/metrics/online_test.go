package metrics

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestOnlineMatchesSummarize: the Welford accumulator must agree with the
// batch Summarize on count, mean, stddev, min, and max.
func TestOnlineMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var xs []float64
	var o Online
	for i := 0; i < 5000; i++ {
		x := rng.NormFloat64()*25 + 100
		xs = append(xs, x)
		o.Add(x)
	}
	want := Summarize(xs)
	if int(o.Count) != want.Count {
		t.Fatalf("count = %d, want %d", o.Count, want.Count)
	}
	approx := func(name string, got, want float64) {
		if math.Abs(got-want) > 1e-9*math.Max(1, math.Abs(want)) {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	approx("mean", o.Mean, want.Mean)
	approx("stddev", o.StdDev(), want.StdDev)
	approx("min", o.Min, want.Min)
	approx("max", o.Max, want.Max)
}

// TestPSquareAccuracy: P² estimates must land near the exact percentiles of
// a large sample.
func TestPSquareAccuracy(t *testing.T) {
	for _, q := range []float64{0.50, 0.90, 0.99} {
		rng := rand.New(rand.NewSource(11))
		p := NewPSquare(q)
		var xs []float64
		for i := 0; i < 20000; i++ {
			x := rng.Float64() * 1000
			xs = append(xs, x)
			p.Add(x)
		}
		// Exact value for Uniform(0, 1000) is 1000q; allow a few percent.
		exact := 1000 * q
		if got := p.Value(); math.Abs(got-exact) > 0.05*exact+5 {
			t.Errorf("q=%.2f: estimate %v too far from %v", q, got, exact)
		}
		_ = xs
	}
}

// TestPSquareSmallSamples: below the marker count the estimate is the exact
// nearest-rank percentile.
func TestPSquareSmallSamples(t *testing.T) {
	p := NewPSquare(0.50)
	for _, x := range []float64{9, 1, 5} {
		p.Add(x)
	}
	if got := p.Value(); got != 5 {
		t.Errorf("median of {9,1,5} = %v, want 5", got)
	}
	if empty := NewPSquare(0.9); empty.Value() != 0 {
		t.Errorf("empty sketch value = %v, want 0", empty.Value())
	}
}

// TestOnlineSummaryJSONRoundTrip: the sketch state must survive a JSON
// round trip bit for bit — the property the sweep engine's checkpoint/resume
// guarantee is built on.
func TestOnlineSummaryJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewOnlineSummary()
	for i := 0; i < 777; i++ {
		s.Add(rng.ExpFloat64() * 123.456)
	}
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	restored := NewOnlineSummary()
	if err := json.Unmarshal(buf, restored); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(s, restored) {
		t.Fatalf("state changed across JSON round trip:\n got %+v\nwant %+v", restored, s)
	}
	// And the round trip must be stable under further identical input.
	for i := 0; i < 100; i++ {
		x := rng.NormFloat64()
		s.Add(x)
		restored.Add(x)
	}
	if !reflect.DeepEqual(s, restored) {
		t.Fatal("restored sketch diverged from original under identical input")
	}
}

// TestOnlineSummaryDeterminism: two sketches fed the same sequence are
// identical, including their JSON form.
func TestOnlineSummaryDeterminism(t *testing.T) {
	feed := func() *OnlineSummary {
		s := NewOnlineSummary()
		rng := rand.New(rand.NewSource(42))
		for i := 0; i < 2500; i++ {
			s.Add(rng.Float64() * float64(i%97))
		}
		return s
	}
	a, b := feed(), feed()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) {
		t.Fatal("identical sequences produced different sketch states")
	}
}

// TestOnlineSummaryRendersSummary: the streaming Summary mirrors the batch
// shape and is exact for tiny samples.
func TestOnlineSummaryRendersSummary(t *testing.T) {
	s := NewOnlineSummary()
	for _, x := range []float64{2, 4} {
		s.Add(x)
	}
	sum := s.Summary()
	if sum.Count != 2 || sum.Mean != 3 || sum.Min != 2 || sum.Max != 4 {
		t.Errorf("summary = %+v", sum)
	}
	if s.Len() != 2 {
		t.Errorf("len = %d, want 2", s.Len())
	}
	if (&OnlineSummary{}).Summary() != (Summary{}) {
		t.Error("empty summary not zero")
	}
}
