package metrics

// Merge-order determinism tests for the sweep aggregation paths. Two
// different mechanisms are pinned here, matching how internal/runner
// actually aggregates:
//
//   - Hist.Merge is exactly associative and commutative (pure integer
//     state), so per-run telemetry may be folded in ANY order — worker
//     completion order included — and stay bitwise identical.
//   - OnlineSummary has no merge at all; its floating-point Add is
//     deterministic only per observation *sequence*. The sweep engine's
//     reorder window (internal/runner.SweepStream) therefore folds results
//     in strict index order regardless of which worker finished first, and
//     the property that makes that sufficient is pinned below: folding the
//     same observations in index order after any completion shuffle is a
//     no-op on the state.

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomHistObservations draws a latency-shaped sample: mostly small values
// with a heavy tail, plus zeros (same-tick delivery) and the occasional huge
// outlier crossing many buckets.
func randomHistObservations(rng *rand.Rand, n int) []int64 {
	xs := make([]int64, n)
	for i := range xs {
		switch rng.Intn(10) {
		case 0:
			xs[i] = 0
		case 1:
			xs[i] = rng.Int63n(1 << 40)
		default:
			xs[i] = rng.Int63n(512)
		}
	}
	return xs
}

// histOf builds a histogram from a sample.
func histOf(xs []int64) Hist {
	var h Hist
	for _, x := range xs {
		h.Observe(x)
	}
	return h
}

// TestHistMergeCommutativeAssociative: splitting one sample into random
// parts and merging the partial histograms in a random order — and with a
// random grouping (fold tree) — reproduces the single-pass histogram bit
// for bit, including the JSON rendering.
func TestHistMergeCommutativeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		xs := randomHistObservations(rng, 200+rng.Intn(400))
		want := histOf(xs)

		// Split into 1..12 contiguous parts.
		parts := 1 + rng.Intn(12)
		cuts := make([]int, 0, parts+1)
		cuts = append(cuts, 0)
		for i := 1; i < parts; i++ {
			cuts = append(cuts, rng.Intn(len(xs)))
		}
		cuts = append(cuts, len(xs))
		sort.Ints(cuts)
		hs := make([]Hist, 0, parts)
		for i := 1; i < len(cuts); i++ {
			hs = append(hs, histOf(xs[cuts[i-1]:cuts[i]]))
		}

		// Random permutation (commutativity) and random fold grouping
		// (associativity): repeatedly merge two random entries.
		rng.Shuffle(len(hs), func(i, j int) { hs[i], hs[j] = hs[j], hs[i] })
		for len(hs) > 1 {
			i := rng.Intn(len(hs) - 1)
			hs[i].Merge(hs[i+1])
			hs = append(hs[:i+1], hs[i+2:]...)
		}
		got := hs[0]

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merged state diverged\n got: %+v\nwant: %+v", trial, got, want)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if string(gj) != string(wj) {
			t.Fatalf("trial %d: JSON diverged\n got: %s\nwant: %s", trial, gj, wj)
		}
	}
}

// TestHistQuantileWithinBounds: quantiles are clamped to the exact extremes
// and never decrease in q.
func TestHistQuantileWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := randomHistObservations(rng, 500)
	h := histOf(xs)
	prev := h.Quantile(0)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < h.Min || v > h.Max {
			t.Fatalf("Quantile(%v) = %d outside [%d, %d]", q, v, h.Min, h.Max)
		}
		if v < prev {
			t.Fatalf("Quantile(%v) = %d decreased below %d", q, v, prev)
		}
		prev = v
	}
}

// TestHistZeroMergeIdentity: merging an empty histogram is a no-op in either
// direction.
func TestHistZeroMergeIdentity(t *testing.T) {
	h := histOf([]int64{3, 9, 200})
	want := h
	h.Merge(Hist{})
	if !reflect.DeepEqual(h, want) {
		t.Fatalf("merging zero changed state: %+v != %+v", h, want)
	}
	var z Hist
	z.Merge(want)
	if !reflect.DeepEqual(z, want) {
		t.Fatalf("merging into zero lost state: %+v != %+v", z, want)
	}
}

// TestOnlineSummaryIndexOrderFoldDeterminism models the sweep engine's
// reorder window: runs complete in arbitrary worker order, but the engine
// buffers completions and feeds the reducer in strict index order. Whatever
// the completion shuffle, the reducer state — Welford accumulator and all
// three P² sketches — must be bitwise identical, which is exactly why
// SweepStream's non-associative reducers stay worker-count independent.
func TestOnlineSummaryIndexOrderFoldDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 50 + rng.Intn(200)
		obs := make([]float64, n)
		for i := range obs {
			obs[i] = float64(rng.Int63n(1 << 30))
		}

		fold := func(completion []int) string {
			// Deliver results in `completion` order into a reorder buffer,
			// fold in index order — the SweepStream discipline.
			buffered := make(map[int]float64, n)
			s := NewOnlineSummary()
			next := 0
			for _, idx := range completion {
				buffered[idx] = obs[idx]
				for {
					x, ok := buffered[next]
					if !ok {
						break
					}
					s.Add(x)
					delete(buffered, next)
					next++
				}
			}
			j, err := json.Marshal(s)
			if err != nil {
				t.Fatal(err)
			}
			return string(j)
		}

		inOrder := make([]int, n)
		for i := range inOrder {
			inOrder[i] = i
		}
		want := fold(inOrder)
		for shuffles := 0; shuffles < 5; shuffles++ {
			perm := rng.Perm(n)
			if got := fold(perm); got != want {
				t.Fatalf("trial %d: index-order fold diverged under completion shuffle\n got: %s\nwant: %s", trial, got, want)
			}
		}
	}
}

// TestOnlineSummaryAddOrderSensitivity documents WHY the reorder window
// exists: feeding the same observations in a different order may produce
// different floating-point state. This is not a bug to fix but a property to
// respect — if this test ever starts failing (order-insensitive state), the
// reorder window could be dropped; until then it cannot be.
func TestOnlineSummaryAddOrderSensitivity(t *testing.T) {
	a := NewOnlineSummary()
	b := NewOnlineSummary()
	xs := []float64{1e17, 3, -1e17, 7, 11, 0.1, 2e16}
	for _, x := range xs {
		a.Add(x)
	}
	for i := len(xs) - 1; i >= 0; i-- {
		b.Add(xs[i])
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) == string(bj) {
		t.Skip("this sample happens to fold order-insensitively; the reorder window is still required in general")
	}
}
