package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 3 {
		t.Errorf("Mean = %v, want 3", s.Mean)
	}
	if s.Min != 1 || s.Max != 5 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 3 {
		t.Errorf("P50 = %v, want 3", s.P50)
	}
	if s.P99 != 5 {
		t.Errorf("P99 = %v, want 5", s.P99)
	}
	if math.Abs(s.StdDev-math.Sqrt(2)) > 1e-12 {
		t.Errorf("StdDev = %v, want sqrt(2)", s.StdDev)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Min != 7 || s.Max != 7 || s.P50 != 7 || s.P90 != 7 || s.StdDev != 0 {
		t.Errorf("single summary = %+v", s)
	}
}

func TestSummaryProperties(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Restrict to measurement-scale magnitudes: summing extreme
			// float64s overflows, which is out of scope for metrics.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Count == len(xs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSample(t *testing.T) {
	var s Sample
	s.AddInt(1)
	s.Add(2)
	s.AddInt(3)
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	if got := s.Summary(); got.Mean != 2 {
		t.Errorf("Mean = %v", got.Mean)
	}
	vs := s.Values()
	vs[0] = 99
	if s.Values()[0] != 1 {
		t.Error("Values must return a copy")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{2, 2})
	str := s.String()
	for _, want := range []string{"n=2", "mean=2.00", "p50=2.00"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() = %q missing %q", str, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T1", "n", "msgs", "note")
	tb.AddRowf(4, 123.456, "ok")
	tb.AddRowf(31, 9.0, "long note here")
	out := tb.Render()
	if !strings.Contains(out, "== T1 ==") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2 = 5
		// recompute: title line + header + rule + 2 data rows = 5
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "123.46") {
		t.Errorf("float not formatted: %s", out)
	}
	// Alignment: header and data lines must have equal rune width per column
	// separator positions; cheap check: all non-title lines same length.
	var widths []int
	for _, l := range lines[1:] {
		widths = append(widths, len(strings.TrimRight(l, " ")))
	}
	_ = widths // alignment is visual; presence checks above suffice
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1")           // short row: padded
	tb.AddRow("1", "2", "3") // long row: extra column kept
	out := tb.Render()
	if !strings.Contains(out, "3") {
		t.Errorf("extra cell lost:\n%s", out)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.AddRow("1", "x,y")
	tb.AddRow("2", `say "hi"`)
	csv := tb.CSV()
	want := "a,b\n1,\"x,y\"\n2,\"say \"\"hi\"\"\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestFigure(t *testing.T) {
	var a, b Series
	a.Name = "bracha"
	b.Name = "benor"
	a.Add(4, 2.0)
	a.Add(7, 2.5)
	b.Add(4, 3.0)
	b.Add(10, 9.0) // x=10 missing from series a
	fig := Figure("F1", "n", a, b)
	out := fig.Render()
	for _, want := range []string{"bracha", "benor", "2.50", "9.00"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure missing %q:\n%s", want, out)
		}
	}
	// Missing sample renders as "-".
	if !strings.Contains(out, "-") {
		t.Errorf("missing sample placeholder absent:\n%s", out)
	}
	// X column sorted ascending: 4 before 7 before 10.
	i4 := strings.Index(out, "\n4")
	i7 := strings.Index(out, "\n7")
	i10 := strings.Index(out, "\n10")
	if !(i4 < i7 && i7 < i10) {
		t.Errorf("x not sorted:\n%s", out)
	}
}

func TestTrimFloat(t *testing.T) {
	if trimFloat(4) != "4" {
		t.Errorf("trimFloat(4) = %q", trimFloat(4))
	}
	if trimFloat(0.25) != "0.250" {
		t.Errorf("trimFloat(0.25) = %q", trimFloat(0.25))
	}
}
