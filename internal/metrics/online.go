package metrics

import (
	"math"
	"sort"
)

// This file holds the constant-memory streaming statistics the checkpointable
// sweep engine reduces into (see internal/runner). Unlike Sample, which
// retains every observation, these sketches hold O(1) state regardless of how
// many observations arrive, so a million-run sweep aggregates in constant
// memory.
//
// Determinism contract: every sketch is a pure function of its observation
// *sequence* — no randomness, no clocks, no map iteration — and its entire
// state is exported with JSON tags. Go's encoding/json renders float64 with
// the shortest representation that round-trips exactly, and none of the
// fields can hold NaN or ±Inf, so marshalling a sketch and unmarshalling it
// reproduces the state bit for bit. The sweep engine's checkpoint/resume
// guarantee (a resumed sweep is byte-identical to an uninterrupted one)
// rests on exactly this property.

// Online is a Welford accumulator: streaming count, mean, variance, min, and
// max in constant memory.
type Online struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	// M2 is the running sum of squared deviations from the mean.
	M2  float64 `json:"m2"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
}

// Add absorbs one observation.
func (o *Online) Add(x float64) {
	if o.Count == 0 {
		o.Min, o.Max = x, x
	} else {
		if x < o.Min {
			o.Min = x
		}
		if x > o.Max {
			o.Max = x
		}
	}
	o.Count++
	delta := x - o.Mean
	o.Mean += delta / float64(o.Count)
	o.M2 += delta * (x - o.Mean)
}

// StdDev returns the population standard deviation (matching Summarize).
func (o *Online) StdDev() float64 {
	if o.Count == 0 {
		return 0
	}
	return math.Sqrt(o.M2 / float64(o.Count))
}

// psquareMarkers is the marker count of the P² algorithm.
const psquareMarkers = 5

// PSquare estimates one quantile of a stream in constant memory using the
// P² algorithm (Jain & Chlamtac, CACM 1985): five markers track the running
// minimum, the quantile and its two flanks, and the running maximum, adjusted
// by parabolic interpolation as observations arrive. The estimate is exact
// until five observations have been seen and an approximation afterwards.
type PSquare struct {
	// Q is the target quantile in (0, 1), e.g. 0.99.
	Q float64 `json:"q"`
	// N is the number of observations absorbed.
	N int64 `json:"n"`
	// Heights and Pos are the marker heights and 1-based marker positions,
	// meaningful once N ≥ 5.
	Heights [psquareMarkers]float64 `json:"heights"`
	Pos     [psquareMarkers]int64   `json:"pos"`
	// Init buffers the first observations until the markers activate.
	Init []float64 `json:"init,omitempty"`
}

// NewPSquare returns a sketch for quantile q.
func NewPSquare(q float64) PSquare { return PSquare{Q: q} }

// Add absorbs one observation.
func (p *PSquare) Add(x float64) {
	p.N++
	if p.N <= psquareMarkers {
		p.Init = append(p.Init, x)
		if p.N == psquareMarkers {
			sort.Float64s(p.Init)
			for i, v := range p.Init {
				p.Heights[i] = v
				p.Pos[i] = int64(i + 1)
			}
			p.Init = nil
		}
		return
	}

	// Locate the cell containing x, extending the extremes if needed.
	var k int
	switch {
	case x < p.Heights[0]:
		p.Heights[0] = x
		k = 0
	case x >= p.Heights[4]:
		p.Heights[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.Heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < psquareMarkers; i++ {
		p.Pos[i]++
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		want := p.desired(i)
		d := want - float64(p.Pos[i])
		if (d >= 1 && p.Pos[i+1]-p.Pos[i] > 1) || (d <= -1 && p.Pos[i-1]-p.Pos[i] < -1) {
			var step int64 = 1
			if d < 0 {
				step = -1
			}
			h := p.parabolic(i, step)
			if p.Heights[i-1] < h && h < p.Heights[i+1] {
				p.Heights[i] = h
			} else {
				p.Heights[i] = p.linear(i, step)
			}
			p.Pos[i] += step
		}
	}
}

// desired returns marker i's desired position after N observations.
func (p *PSquare) desired(i int) float64 {
	d := [psquareMarkers]float64{0, p.Q / 2, p.Q, (1 + p.Q) / 2, 1}
	return 1 + float64(p.N-1)*d[i]
}

// parabolic is the P² piecewise-parabolic height adjustment for marker i
// moving by step (±1).
func (p *PSquare) parabolic(i int, step int64) float64 {
	d := float64(step)
	qm, q, qp := p.Heights[i-1], p.Heights[i], p.Heights[i+1]
	nm, n, np := float64(p.Pos[i-1]), float64(p.Pos[i]), float64(p.Pos[i+1])
	return q + d/(np-nm)*((n-nm+d)*(qp-q)/(np-n)+(np-n-d)*(q-qm)/(n-nm))
}

// linear is the fallback height adjustment when the parabola leaves the
// bracketing heights.
func (p *PSquare) linear(i int, step int64) float64 {
	j := i + int(step)
	return p.Heights[i] + float64(step)*(p.Heights[j]-p.Heights[i])/float64(p.Pos[j]-p.Pos[i])
}

// Value returns the current quantile estimate (0 with no observations).
func (p *PSquare) Value() float64 {
	if p.N == 0 {
		return 0
	}
	if p.N < psquareMarkers {
		sorted := append([]float64(nil), p.Init...)
		sort.Float64s(sorted)
		return percentile(sorted, p.Q)
	}
	return p.Heights[2]
}

// OnlineSummary couples a Welford accumulator with P² sketches for the three
// percentiles the evaluation tables report. It is the streaming counterpart
// of Sample: same Summary output shape, constant memory.
type OnlineSummary struct {
	Stats Online  `json:"stats"`
	P50   PSquare `json:"p50"`
	P90   PSquare `json:"p90"`
	P99   PSquare `json:"p99"`
}

// NewOnlineSummary returns an empty streaming summary with the standard
// percentile targets.
func NewOnlineSummary() *OnlineSummary {
	return &OnlineSummary{
		P50: NewPSquare(0.50),
		P90: NewPSquare(0.90),
		P99: NewPSquare(0.99),
	}
}

// Add absorbs one observation into every sketch.
func (s *OnlineSummary) Add(x float64) {
	s.Stats.Add(x)
	s.P50.Add(x)
	s.P90.Add(x)
	s.P99.Add(x)
}

// AddInt absorbs an integer observation.
func (s *OnlineSummary) AddInt(x int) { s.Add(float64(x)) }

// Len returns the number of observations absorbed.
func (s *OnlineSummary) Len() int { return int(s.Stats.Count) }

// Summary renders the sketch state in the same shape Summarize produces.
// Mean/StdDev/Min/Max are exact; the percentiles are P² estimates (exact for
// samples of fewer than five observations).
func (s *OnlineSummary) Summary() Summary {
	if s.Stats.Count == 0 {
		return Summary{}
	}
	return Summary{
		Count:  int(s.Stats.Count),
		Mean:   s.Stats.Mean,
		StdDev: s.Stats.StdDev(),
		Min:    s.Stats.Min,
		Max:    s.Stats.Max,
		P50:    s.P50.Value(),
		P90:    s.P90.Value(),
		P99:    s.P99.Value(),
	}
}
