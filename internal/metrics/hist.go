package metrics

// This file holds the fixed-bucket logarithmic histogram the telemetry plane
// aggregates into (see internal/sim.Telemetry). Unlike the Welford/P² sketches
// in online.go — whose floating-point state is deterministic only under a
// fixed fold *order* — a Hist is pure integer arithmetic over fixed bucket
// boundaries, so Merge is exactly associative AND commutative: any grouping,
// any order of partial merges produces bit-identical state. That is the
// property that lets per-run telemetry from a parallel sweep be folded in
// worker completion order or index order interchangeably and still satisfy
// the repository's bitwise worker-independence contract.

import (
	"math"
	"math/bits"
)

// histMaxBucket is the largest bucket index: bucket 0 holds non-positive
// observations, bucket b ∈ [1, 64] holds v with bits.Len64(v) == b, i.e.
// v ∈ [2^(b-1), 2^b).
const histMaxBucket = 64

// Hist is a log2 fixed-bucket histogram of int64 observations (latencies in
// sim ticks, sizes in bytes). The entire state is exported integers with JSON
// tags, so marshalling round-trips bit for bit; Buckets is trimmed to the
// highest occupied bucket, which is a pure function of the observation
// multiset (the length is determined by the largest observation), keeping the
// JSON rendering canonical.
type Hist struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	// Min and Max are exact extremes, meaningful when Count > 0.
	Min int64 `json:"min"`
	Max int64 `json:"max"`
	// Buckets[b] counts observations in bucket b (see histMaxBucket).
	Buckets []int64 `json:"buckets,omitempty"`
}

// histBucket returns the bucket index for one observation.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// histUpper returns the largest value bucket b can hold — the value Quantile
// reports for ranks landing in b (clamped by the exact extremes).
func histUpper(b int) int64 {
	if b <= 0 {
		return 0
	}
	if b >= histMaxBucket {
		return math.MaxInt64
	}
	return int64(1)<<uint(b) - 1
}

// Observe absorbs one observation.
func (h *Hist) Observe(v int64) {
	if h.Count == 0 {
		h.Min, h.Max = v, v
	} else {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
	}
	h.Count++
	h.Sum += v
	b := histBucket(v)
	for len(h.Buckets) <= b {
		h.Buckets = append(h.Buckets, 0)
	}
	h.Buckets[b]++
}

// Merge folds another histogram into h. Integer bucket addition and exact
// min/max make Merge associative and commutative — the property the
// merge-order determinism tests pin.
func (h *Hist) Merge(o Hist) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 {
		h.Min, h.Max = o.Min, o.Max
	} else {
		if o.Min < h.Min {
			h.Min = o.Min
		}
		if o.Max > h.Max {
			h.Max = o.Max
		}
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for len(h.Buckets) < len(o.Buckets) {
		h.Buckets = append(h.Buckets, 0)
	}
	for i, c := range o.Buckets {
		h.Buckets[i] += c
	}
}

// Mean returns the exact mean (0 with no observations).
func (h *Hist) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the q-quantile by nearest rank over the buckets: the upper
// bound of the bucket containing the rank, clamped to the exact [Min, Max].
// Resolution is a factor of two — enough to separate a 10-tick echo from a
// 500-tick adaptive stall — and, being a pure function of integer state, the
// answer is identical however the histogram was assembled.
func (h *Hist) Quantile(q float64) int64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for b, c := range h.Buckets {
		cum += c
		if cum >= rank {
			v := histUpper(b)
			if v > h.Max {
				v = h.Max
			}
			if v < h.Min {
				v = h.Min
			}
			return v
		}
	}
	return h.Max
}
