package quorum

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestNewRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		n, f int
	}{
		{"zero processes", 0, 0},
		{"negative processes", -1, 0},
		{"negative faults", 4, -1},
		{"all faulty", 4, 4},
		{"more faults than processes", 3, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := New(tt.n, tt.f); !errors.Is(err, ErrInvalid) {
				t.Errorf("New(%d, %d) error = %v, want ErrInvalid", tt.n, tt.f, err)
			}
		})
	}
}

func TestThresholds(t *testing.T) {
	tests := []struct {
		n, f                                        int
		quorum, decide, adopt, super, echo, honestS int
	}{
		{4, 1, 3, 3, 2, 3, 3, 3},
		{7, 2, 5, 5, 3, 4, 5, 5},
		{10, 3, 7, 7, 4, 6, 7, 7},
		{13, 4, 9, 9, 5, 7, 9, 9},
		{16, 5, 11, 11, 6, 9, 11, 11},
		{31, 10, 21, 21, 11, 16, 21, 21},
		{5, 1, 4, 3, 2, 3, 4, 4},  // n > 3f+1: quorum exceeds decide threshold
		{9, 2, 7, 5, 3, 5, 6, 6},  // non-tight configuration
		{11, 2, 9, 5, 3, 6, 7, 7}, // Ben-Or-safe configuration (n > 5f)
	}
	for _, tt := range tests {
		s := MustNew(tt.n, tt.f)
		if got := s.Quorum(); got != tt.quorum {
			t.Errorf("(%v).Quorum() = %d, want %d", s, got, tt.quorum)
		}
		if got := s.Decide(); got != tt.decide {
			t.Errorf("(%v).Decide() = %d, want %d", s, got, tt.decide)
		}
		if got := s.Adopt(); got != tt.adopt {
			t.Errorf("(%v).Adopt() = %d, want %d", s, got, tt.adopt)
		}
		if got := s.SuperMajority(); got != tt.super {
			t.Errorf("(%v).SuperMajority() = %d, want %d", s, got, tt.super)
		}
		if got := s.Echo(); got != tt.echo {
			t.Errorf("(%v).Echo() = %d, want %d", s, got, tt.echo)
		}
		if got := s.HonestSuperMajority(); got != tt.honestS {
			t.Errorf("(%v).HonestSuperMajority() = %d, want %d", s, got, tt.honestS)
		}
	}
}

func TestAccessors(t *testing.T) {
	s := MustNew(7, 2)
	if s.N() != 7 || s.F() != 2 {
		t.Errorf("N, F = %d, %d; want 7, 2", s.N(), s.F())
	}
	if s.String() != "n=7 f=2" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestIsOptimal(t *testing.T) {
	tests := []struct {
		n, f int
		want bool
	}{
		{4, 1, true},
		{7, 2, true},
		{3, 1, false}, // n = 3f
		{6, 2, false}, // n = 3f
		{7, 3, false}, // n < 3f+1
		{100, 33, true},
		{99, 33, false},
	}
	for _, tt := range tests {
		if got := MustNew(tt.n, tt.f).IsOptimal(); got != tt.want {
			t.Errorf("IsOptimal(n=%d, f=%d) = %v, want %v", tt.n, tt.f, got, tt.want)
		}
	}
}

func TestMaxByzantine(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{0, 0}, {1, 0}, {3, 0}, {4, 1}, {6, 1}, {7, 2}, {10, 3}, {100, 33},
	}
	for _, tt := range tests {
		if got := MaxByzantine(tt.n); got != tt.want {
			t.Errorf("MaxByzantine(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestMinProcesses(t *testing.T) {
	tests := []struct {
		f, want int
	}{
		{-1, 1}, {0, 1}, {1, 4}, {2, 7}, {3, 10},
	}
	for _, tt := range tests {
		if got := MinProcesses(tt.f); got != tt.want {
			t.Errorf("MinProcesses(%d) = %d, want %d", tt.f, got, tt.want)
		}
	}
}

func TestBenOrMaxByzantine(t *testing.T) {
	tests := []struct {
		n, want int
	}{
		{0, 0}, {5, 0}, {6, 1}, {10, 1}, {11, 2}, {16, 3},
	}
	for _, tt := range tests {
		if got := BenOrMaxByzantine(tt.n); got != tt.want {
			t.Errorf("BenOrMaxByzantine(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

// boundedSpec produces a valid Spec from arbitrary fuzz input.
func boundedSpec(rawN, rawF int) Spec {
	n := 1 + abs(rawN)%200
	f := 0
	if n > 1 {
		f = abs(rawF) % n
	}
	return MustNew(n, f)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// TestQuorumIntersectionProperty checks the core safety fact the protocol
// relies on: any two (n−f)-quorums intersect in at least n−2f processes, and
// when n > 3f that intersection must contain a correct process.
func TestQuorumIntersectionProperty(t *testing.T) {
	prop := func(rawN, rawF int) bool {
		s := boundedSpec(rawN, rawF)
		inter := 2*s.Quorum() - s.N() // minimum overlap of two quorums
		if inter != s.N()-2*s.F() {
			return false
		}
		if s.IsOptimal() && inter <= s.F() {
			return false // intersection would be coverable by Byzantine processes
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestDecideImpliesAdoptProperty checks the agreement hand-off: if one
// process sees 2f+1 matching witnesses inside its quorum, every other
// quorum contains at least f+1 of them (the adoption threshold).
func TestDecideImpliesAdoptProperty(t *testing.T) {
	prop := func(rawN, rawF int) bool {
		s := boundedSpec(rawN, rawF)
		if !s.IsOptimal() {
			return true // the guarantee is only claimed under n > 3f
		}
		// 2f+1 witnesses; another quorum misses at most n - quorum = f of them.
		return s.Decide()-s.F() >= s.Adopt()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestEchoExclusivityProperty checks that two different bodies cannot both
// reach the RBC echo threshold: that would need Echo()*2 echo votes, but only
// n+f exist (each correct process echoes one body, Byzantine ones may echo
// both).
func TestEchoExclusivityProperty(t *testing.T) {
	prop := func(rawN, rawF int) bool {
		s := boundedSpec(rawN, rawF)
		return 2*s.Echo() > s.N()+s.F()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// TestQuorumReachableProperty checks liveness of waits: with f actually
// faulty processes silent, the n−f correct ones alone still reach every wait
// threshold a correct process uses.
func TestQuorumReachableProperty(t *testing.T) {
	prop := func(rawN, rawF int) bool {
		s := boundedSpec(rawN, rawF)
		correct := s.N() - s.F()
		if correct < s.Quorum() {
			return false
		}
		if s.IsOptimal() {
			// Echo and decide thresholds must also be reachable without
			// Byzantine help.
			return correct >= s.Echo() && correct >= s.Decide()
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestSuperMajorityExclusive(t *testing.T) {
	// Two disjoint sets cannot both exceed n/2.
	prop := func(rawN, rawF int) bool {
		s := boundedSpec(rawN, rawF)
		return 2*s.SuperMajority() > s.N()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNew(0, 0) did not panic")
		}
	}()
	MustNew(0, 0)
}
