// Package quorum centralizes the threshold arithmetic of Bracha's protocol
// suite. Every magic number of the paper — n−f waits, 2f+1 decision quorums,
// f+1 adoption/amplification thresholds, >n/2 supermajorities, and the
// reliable-broadcast echo threshold ⌈(n+f+1)/2⌉ — lives here, so protocol
// code states intent (`q.Decide()`) instead of arithmetic.
package quorum

import (
	"errors"
	"fmt"
)

// ErrInvalid is returned by New for nonsensical (n, f) combinations.
var ErrInvalid = errors.New("quorum: invalid system size")

// Spec captures the failure assumption of a run: n processes of which at most
// f may be Byzantine. The zero value is invalid; construct with New.
//
// Spec does not require f < n/3: experiment E7 deliberately instantiates
// over-optimistic specs (more actual faults than assumed) to demonstrate the
// tightness of the resilience bound. Use Optimal/IsOptimal/Tolerates to
// reason about the bound itself.
type Spec struct {
	n int
	f int
}

// New returns a Spec for n processes tolerating f Byzantine faults.
// It requires n ≥ 1, f ≥ 0, and f < n (at least one correct process);
// it does not require the Byzantine bound f < n/3 (see Spec).
func New(n, f int) (Spec, error) {
	switch {
	case n < 1:
		return Spec{}, fmt.Errorf("%w: n = %d", ErrInvalid, n)
	case f < 0:
		return Spec{}, fmt.Errorf("%w: f = %d", ErrInvalid, f)
	case f >= n:
		return Spec{}, fmt.Errorf("%w: f = %d with n = %d leaves no correct process", ErrInvalid, f, n)
	}
	return Spec{n: n, f: f}, nil
}

// MustNew is New for statically known good parameters; it panics on error.
// Intended for tests and examples only.
func MustNew(n, f int) Spec {
	s, err := New(n, f)
	if err != nil {
		panic(err)
	}
	return s
}

// N returns the total number of processes.
func (s Spec) N() int { return s.n }

// F returns the assumed maximum number of Byzantine processes.
func (s Spec) F() int { return s.f }

// Quorum returns n−f, the number of messages a process waits for at each
// protocol step: the most it can expect without risking waiting on a
// Byzantine process forever.
func (s Spec) Quorum() int { return s.n - s.f }

// Decide returns 2f+1, the number of matching D(v) step-3 messages (or
// DECIDE gadget messages) required to decide: any two (n−f)-sets intersect in
// ≥ n−2f ≥ f+1 processes, so 2f+1 witnesses guarantee every other correct
// process sees at least f+1 of them.
func (s Spec) Decide() int { return 2*s.f + 1 }

// Adopt returns f+1, the number of matching witnesses that guarantees at
// least one correct process among them (adoption threshold in step 3 and the
// relay threshold of the READY / DECIDE amplifications).
func (s Spec) Adopt() int { return s.f + 1 }

// SuperMajority returns ⌊n/2⌋+1, the smallest count strictly greater than
// n/2 (the step-2 decision-proposal threshold).
func (s Spec) SuperMajority() int { return s.n/2 + 1 }

// Echo returns ⌈(n+f+1)/2⌉, the reliable-broadcast echo threshold: two
// echo quorums for different bodies would need n+f+1 distinct echoes, more
// than the n+f signatures-worth of echo power even Byzantine processes can
// muster, so at most one body can reach it.
func (s Spec) Echo() int { return (s.n + s.f + 2) / 2 }

// HonestSuperMajority returns ⌊(n+f)/2⌋+1, the Ben-Or baseline's phase
// threshold (strictly more than (n+f)/2 matching values).
func (s Spec) HonestSuperMajority() int { return (s.n+s.f)/2 + 1 }

// IsOptimal reports whether the spec satisfies the paper's resilience bound
// n > 3f.
func (s Spec) IsOptimal() bool { return s.n > 3*s.f }

// String implements fmt.Stringer.
func (s Spec) String() string { return fmt.Sprintf("n=%d f=%d", s.n, s.f) }

// MaxByzantine returns ⌊(n−1)/3⌋, the largest f Bracha's protocol tolerates
// for a given n — the paper's optimal resilience.
func MaxByzantine(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 3
}

// MinProcesses returns 3f+1, the smallest system that tolerates f Byzantine
// processes.
func MinProcesses(f int) int {
	if f < 0 {
		return 1
	}
	return 3*f + 1
}

// BenOrMaxByzantine returns ⌈n/5⌉−1, the largest f the Ben-Or (1983)
// baseline tolerates (it requires n > 5f).
func BenOrMaxByzantine(n int) int {
	if n < 1 {
		return 0
	}
	return (n - 1) / 5
}
