package quorum_test

import (
	"fmt"

	"repro/internal/quorum"
)

// Example shows every protocol threshold for the classic n = 3f+1 system.
func Example() {
	spec := quorum.MustNew(7, 2)
	fmt.Println("quorum (n-f):   ", spec.Quorum())
	fmt.Println("decide (2f+1):  ", spec.Decide())
	fmt.Println("adopt (f+1):    ", spec.Adopt())
	fmt.Println("supermajority:  ", spec.SuperMajority())
	fmt.Println("echo threshold: ", spec.Echo())
	fmt.Println("optimal:        ", spec.IsOptimal())
	// Output:
	// quorum (n-f):    5
	// decide (2f+1):   5
	// adopt (f+1):     3
	// supermajority:   4
	// echo threshold:  5
	// optimal:         true
}

// ExampleMaxByzantine shows the paper's resilience bound.
func ExampleMaxByzantine() {
	for _, n := range []int{4, 7, 10, 100} {
		fmt.Printf("n=%d tolerates f=%d\n", n, quorum.MaxByzantine(n))
	}
	// Output:
	// n=4 tolerates f=1
	// n=7 tolerates f=2
	// n=10 tolerates f=3
	// n=100 tolerates f=33
}
