package search

import (
	"fmt"
	"sort"

	"repro/internal/runner"
)

// family is one preset search: a scheduler family under the adversary and
// inputs that stress it, with the axes worth walking.
type family struct {
	doc  string
	base func(n, f int) runner.Config
	axes []Axis
}

// consensusBase is the shared preset scaffold: Bracha at the given size with
// a delivery budget tight enough that a stuck schedule exhausts it (a few
// multiples of the size-scaled budget, not the 2M simulator default — the
// exhaustion rate is half the score).
func consensusBase(n, f int, adv runner.Adversary, sched runner.SchedulerKind, coin runner.CoinKind, in runner.Inputs) runner.Config {
	return runner.Config{
		N: n, F: f, Byzantine: -1,
		Protocol:      runner.ProtocolBracha,
		Coin:          coin,
		Adversary:     adv,
		Scheduler:     sched,
		Inputs:        in,
		MaxDeliveries: 4 * runner.DeliveryBudget(n),
	}
}

// families is the preset vocabulary of `bench -search <family>`.
var families = map[string]family{
	"reorder": {
		doc: "newest-first reordering span under a liar",
		base: func(n, f int) runner.Config {
			return consensusBase(n, f, runner.AdvLiar, runner.SchedReorder, runner.CoinCommon, runner.InputRandom)
		},
		axes: []Axis{
			{Name: "reorder-span", Values: []int64{2, 4, 8, 16, 32, 48, 96, 192}},
		},
	},
	"lossy": {
		doc: "ARQ loss/duplication rates and retransmit lag under equivocators",
		base: func(n, f int) runner.Config {
			return consensusBase(n, f, runner.AdvEquivocator, runner.SchedLossy, runner.CoinCommon, runner.InputSplit)
		},
		axes: []Axis{
			{Name: "loss-pct", Values: []int64{10, 30, 50, 70, 90}},
			{Name: "retransmit-lag", Values: []int64{20, 60, 120}},
		},
	},
	"topology": {
		doc: "ring reach and relay lag (local-broadcast model) under equivocators",
		base: func(n, f int) runner.Config {
			return consensusBase(n, f, runner.AdvEquivocator, runner.SchedTopology, runner.CoinCommon, runner.InputSplit)
		},
		axes: []Axis{
			{Name: "topo-degree", Values: []int64{1, 2, 4, 8}},
			{Name: "hop-lag", Values: []int64{6, 12, 24, 48}},
		},
	},
	"adaptive": {
		doc: "frontier-targeted delay with traffic-triggered rush under a liar",
		base: func(n, f int) runner.Config {
			return consensusBase(n, f, runner.AdvLiar, runner.SchedAdaptiveRush, runner.CoinCommon, runner.InputRandom)
		},
		axes: []Axis{
			{Name: "target-lag", Values: []int64{30, 60, 120, 240, 480}},
		},
	},
	"straggler": {
		doc: "inbound lag of a stragglered correct process under silent faults",
		base: func(n, f int) runner.Config {
			cfg := consensusBase(n, f, runner.AdvSilent, runner.SchedStraggler, runner.CoinCommon, runner.InputSplit)
			cfg.MaxDeliveries = 16 * runner.DeliveryBudget(n)
			return cfg
		},
		axes: []Axis{
			{Name: "straggler-lag", Values: []int64{50, 100, 200, 300, 600}},
		},
	},
}

// Families lists the preset names, sorted.
func Families() []string {
	out := make([]string, 0, len(families))
	for name := range families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FamilyDoc returns the preset's one-line description.
func FamilyDoc(name string) string { return families[name].doc }

// FamilySpec builds the preset search for a family at system size n with
// optimal resilience (f < 0) or the given fault bound, scored over the seed
// block.
func FamilySpec(name string, n, f int, seeds runner.SeedRange) (Spec, error) {
	fam, ok := families[name]
	if !ok {
		return Spec{}, fmt.Errorf("%w: unknown family %q (have %v)", ErrBadSpec, name, Families())
	}
	if f < 0 {
		f = (n - 1) / 3
	}
	return Spec{
		Base:  fam.base(n, f),
		Axes:  append([]Axis(nil), fam.axes...),
		Seeds: seeds,
	}, nil
}
