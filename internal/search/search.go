// Package search hunts liveness cliffs in the scheduler-parameter space.
//
// The protocol's liveness argument is probabilistic over schedules, so its
// hardest inputs are specific parameter settings of the adversarial
// schedules — reorder spans, loss rates, relay lags — that hand-written
// scenarios never hit. This package walks runner.SchedParams space with two
// deterministic strategies (exhaustive Grid and coordinate Descend), scores
// every point by rounds-to-decide and budget-exhaustion rate across a fixed
// seed block, and reports the worst points found. A cliff, once found, is
// pinned back into runner.Scenarios() as a named regression scenario.
//
// # Determinism contract
//
// A point's score is the deterministic reduction (runner.Aggregate) of pure
// (config, seed) runs folded in seed order, and points are evaluated and
// ranked in a fixed order — so a search's full output is a pure function of
// (Spec.Base, Spec.Axes, Spec.Seeds): bitwise independent of worker count,
// GOMAXPROCS, and of interruption/resume at any frontier write. Parallelism
// lives entirely inside each point's sweep, which carries the same contract
// (see internal/runner/checkpoint.go).
//
// # Frontier file
//
// With Spec.Frontier set, every evaluated point is recorded in a JSON
// manifest (written atomically: temp file + rename):
//
//	{
//	  "version": 1,
//	  "config": { ... },            // the base runner.Config, seed zeroed
//	  "axes": [{"name": ..., "values": [...]}, ...],
//	  "seeds": {"from": a, "to": b},
//	  "points": {"<key>": {point result}, ...}
//	}
//
// Resume loads the manifest (which must match Base/Axes/Seeds exactly) and
// reuses every recorded point instead of re-running it; since evaluation is
// pure, a resumed search's output is byte-identical to an uninterrupted one.
package search

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"strings"

	"repro/internal/runner"
	"repro/internal/sim"
)

// timeOf converts an axis value to simulator ticks.
func timeOf(v int64) sim.Time { return sim.Time(v) }

// ExhaustPenaltyRounds is the rounds-to-decide equivalent charged to a run
// that failed to decide within its delivery budget. It dominates any real
// round count, so exhaustion-heavy points always outrank slow-but-live ones.
const ExhaustPenaltyRounds = 1024

// Axis is one searched coordinate of runner.SchedParams: a parameter name
// (see Apply for the vocabulary) and the ordered lattice of values it may
// take. Values must be non-zero — zero means "historical default" to
// SchedParams and would alias another point.
type Axis struct {
	Name   string  `json:"name"`
	Values []int64 `json:"values"`
}

// Spec configures one search.
type Spec struct {
	// Base is the configuration every point shares; each point overrides
	// Base.Sched along the axes. Base.Seed is ignored (seeds come from
	// Seeds); Base.MaxDeliveries should be a budget tight enough that a
	// genuinely stuck schedule exhausts it (runner.DeliveryBudget scaled a
	// few times, not the simulator default).
	Base runner.Config
	// Axes are the searched coordinates, in significance order: Grid
	// iterates the last axis fastest, Descend walks them in order.
	Axes []Axis
	// Seeds is the half-open seed block every point is scored over.
	Seeds runner.SeedRange

	// Workers sizes each point's sweep pool (0 = GOMAXPROCS; scores are
	// identical for every value).
	Workers int
	// Frontier is the resumable manifest path; empty disables it.
	Frontier string
	// Resume loads Frontier and reuses its recorded points.
	Resume bool
	// MaxPasses bounds Descend's passes over the axes (0 = 2×len(Axes),
	// enough for convergence on every lattice tried so far). Grid ignores
	// it.
	MaxPasses int
	// Stop, when non-nil, is polled between points; returning true saves
	// the frontier and aborts with ErrStopped.
	Stop func() bool
	// Progress, when non-nil, is called after every evaluated or reused
	// point with the count so far (total is only known for Grid; Descend
	// reports 0).
	Progress func(done, total int)
}

// PointResult is one evaluated parameter point.
type PointResult struct {
	// Key canonically names the point: "axis=value,..." in axis order.
	Key string `json:"key"`
	// Params is the full SchedParams the point ran under.
	Params runner.SchedParams `json:"params"`
	// Runs/Decided/Exhausted/Violations count the seed block's outcomes.
	Runs       int64 `json:"runs"`
	Decided    int64 `json:"decided"`
	Exhausted  int64 `json:"exhausted"`
	Violations int64 `json:"violations"`
	// MeanRounds is the mean decision round over decided runs; MeanTime
	// the mean simulated end time over all runs.
	MeanRounds float64 `json:"meanRounds"`
	MeanTime   float64 `json:"meanTime"`
	// Score is the liveness cost the search maximizes: mean over the seed
	// block of (rounds-to-decide, or ExhaustPenaltyRounds for a run that
	// never decided). Higher = worse liveness.
	Score float64 `json:"score"`
}

// Outcome is a completed search: every evaluated point, worst first.
type Outcome struct {
	// Points holds all evaluated points sorted by score descending, key
	// ascending — the liveness-cliff table.
	Points []PointResult `json:"points"`
	// Best is Points[0] (the worst point for the protocol).
	Best PointResult `json:"best"`
	// Evaluated counts points actually run this invocation (reused
	// frontier points are not included). Excluded from the JSON output so
	// a resumed search emits bytes identical to an uninterrupted one.
	Evaluated int `json:"-"`
}

// Worse orders points by liveness cost: higher Score first (rounds and
// exhaustion dominate), then higher MeanTime (among equally fast deciders,
// the schedule that stretches simulated time most is the worse one), then
// key ascending — a strict total order, so ranking and coordinate descent
// are pure functions of the scores.
func Worse(a, b PointResult) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.MeanTime != b.MeanTime {
		return a.MeanTime > b.MeanTime
	}
	return a.Key < b.Key
}

// Search errors.
var (
	// ErrStopped reports a search aborted by its Stop hook; the frontier
	// (when enabled) holds every completed point.
	ErrStopped = errors.New("search: stopped before completion")
	// ErrFrontierMismatch reports a resume against a frontier recorded for
	// different parameters.
	ErrFrontierMismatch = errors.New("search: frontier does not match spec")
	// ErrBadSpec reports an unusable spec.
	ErrBadSpec = errors.New("search: invalid spec")
)

// Apply sets the named parameter on p. The vocabulary is exactly the
// searchable fields of runner.SchedParams.
func Apply(p *runner.SchedParams, name string, v int64) error {
	switch name {
	case "heal-time":
		p.HealTime = timeOf(v)
	case "rejoin-time":
		p.RejoinTime = timeOf(v)
	case "reorder-span":
		p.ReorderSpan = timeOf(v)
	case "straggler-lag":
		p.StragglerLag = timeOf(v)
	case "partition-lag":
		p.PartitionLag = timeOf(v)
	case "loss-pct":
		p.LossPct = int(v)
	case "dup-pct":
		p.DupPct = int(v)
	case "retransmit-lag":
		p.RetransmitLag = timeOf(v)
	case "topo-degree":
		p.TopoDegree = int(v)
	case "hop-lag":
		p.HopLag = timeOf(v)
	case "target-lag":
		p.TargetLag = timeOf(v)
	default:
		return fmt.Errorf("%w: unknown axis %q", ErrBadSpec, name)
	}
	return nil
}

// point is one lattice position: the value index chosen on each axis.
type point []int

// key renders the canonical point name.
func (s *Spec) key(pt point) string {
	var b strings.Builder
	for i, ax := range s.Axes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", ax.Name, ax.Values[pt[i]])
	}
	return b.String()
}

// params materializes the lattice position over the base parameters.
func (s *Spec) params(pt point) (runner.SchedParams, error) {
	p := s.Base.Sched
	for i, ax := range s.Axes {
		if err := Apply(&p, ax.Name, ax.Values[pt[i]]); err != nil {
			return runner.SchedParams{}, err
		}
	}
	return p, nil
}

// validate rejects unusable specs up front.
func (s *Spec) validate() error {
	if len(s.Axes) == 0 {
		return fmt.Errorf("%w: no axes", ErrBadSpec)
	}
	for _, ax := range s.Axes {
		if len(ax.Values) == 0 {
			return fmt.Errorf("%w: axis %q has no values", ErrBadSpec, ax.Name)
		}
		var probe runner.SchedParams
		for _, v := range ax.Values {
			if v == 0 {
				return fmt.Errorf("%w: axis %q includes 0 (zero means the historical default and would alias a distinct point)", ErrBadSpec, ax.Name)
			}
			if err := Apply(&probe, ax.Name, v); err != nil {
				return err
			}
		}
	}
	if s.Seeds.Len() == 0 {
		return fmt.Errorf("%w: empty seed range %v", ErrBadSpec, s.Seeds)
	}
	if s.Resume && s.Frontier == "" {
		return fmt.Errorf("%w: resume requires a frontier path", ErrBadSpec)
	}
	return nil
}

// searcher carries one search's shared state: the frontier cache and
// bookkeeping common to Grid and Descend.
type searcher struct {
	spec   *Spec
	points map[string]PointResult // every known point, by key
	order  []string               // keys in first-seen order (for Outcome)
	fresh  int                    // points evaluated this invocation
	done   int                    // points visited (evaluated or reused)
	total  int                    // grid size, 0 when unknown
}

func newSearcher(spec *Spec) (*searcher, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	// Seed is per run; zero it so the frontier match (and the sweeps) see
	// the canonical form.
	spec.Base.Seed = 0
	s := &searcher{spec: spec, points: make(map[string]PointResult)}
	if spec.Resume {
		f, err := loadFrontier(spec.Frontier)
		if err != nil {
			return nil, err
		}
		if err := f.matches(spec); err != nil {
			return nil, err
		}
		for k, p := range f.Points {
			s.points[k] = p
			s.order = append(s.order, k)
		}
		// Restored points precede anything new in a deterministic order.
		sort.Strings(s.order)
	}
	return s, nil
}

// visit returns the point's result, evaluating it if the frontier does not
// already hold it.
func (s *searcher) visit(pt point) (PointResult, error) {
	k := s.spec.key(pt)
	res, ok := s.points[k]
	if !ok {
		var err error
		res, err = s.evaluate(k, pt)
		if err != nil {
			return PointResult{}, err
		}
		s.points[k] = res
		s.order = append(s.order, k)
		s.fresh++
		if err := s.save(); err != nil {
			return PointResult{}, err
		}
	}
	s.done++
	if s.spec.Progress != nil {
		s.spec.Progress(s.done, s.total)
	}
	if s.spec.Stop != nil && s.spec.Stop() {
		return PointResult{}, ErrStopped
	}
	return res, nil
}

// evaluate scores one parameter point over the seed block.
func (s *searcher) evaluate(key string, pt point) (PointResult, error) {
	params, err := s.spec.params(pt)
	if err != nil {
		return PointResult{}, err
	}
	cfg := s.spec.Base
	cfg.Sched = params
	agg, err := runner.SweepSeedRange(runner.SweepSpec{
		Cfg:     cfg,
		Seeds:   s.spec.Seeds,
		Workers: s.spec.Workers,
	})
	if err != nil {
		return PointResult{}, fmt.Errorf("search: point %s: %w", key, err)
	}
	return scorePoint(key, params, agg), nil
}

// scorePoint reduces a point's sweep aggregate to its liveness cost.
func scorePoint(key string, params runner.SchedParams, agg *runner.Aggregate) PointResult {
	rounds := agg.Rounds.Summary()
	times := agg.SimTime.Summary()
	res := PointResult{
		Key:        key,
		Params:     params,
		Runs:       agg.Runs,
		Decided:    agg.Decided,
		Exhausted:  agg.Exhausted,
		Violations: agg.Checks.Violations,
		MeanRounds: rounds.Mean,
		MeanTime:   times.Mean,
	}
	if agg.Runs > 0 {
		// Decided runs cost their mean decision round; undecided runs the
		// flat penalty. Rounds only aggregates decided runs, so its sum is
		// exactly the decided side of the numerator.
		sum := rounds.Mean*float64(agg.Decided) + ExhaustPenaltyRounds*float64(agg.Runs-agg.Decided)
		res.Score = sum / float64(agg.Runs)
	}
	return res
}

// save writes the frontier when one is configured.
func (s *searcher) save() error {
	if s.spec.Frontier == "" {
		return nil
	}
	return frontierFor(s.spec, s.points).save(s.spec.Frontier)
}

// outcome ranks every known point, worst first.
func (s *searcher) outcome() *Outcome {
	out := &Outcome{Evaluated: s.fresh}
	for _, k := range s.order {
		out.Points = append(out.Points, s.points[k])
	}
	sort.Slice(out.Points, func(i, j int) bool {
		return Worse(out.Points[i], out.Points[j])
	})
	if len(out.Points) > 0 {
		out.Best = out.Points[0]
	}
	return out
}

// frontierVersion is the manifest format version this build writes.
const frontierVersion = 1

// frontier is the on-disk resume manifest of a search.
type frontier struct {
	Version int                    `json:"version"`
	Config  runner.Config          `json:"config"`
	Axes    []Axis                 `json:"axes"`
	Seeds   runner.SeedRange       `json:"seeds"`
	Points  map[string]PointResult `json:"points"`
}

func frontierFor(spec *Spec, points map[string]PointResult) *frontier {
	return &frontier{
		Version: frontierVersion,
		Config:  spec.Base,
		Axes:    spec.Axes,
		Seeds:   spec.Seeds,
		Points:  points,
	}
}

func loadFrontier(path string) (*frontier, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("search: reading frontier: %w", err)
	}
	var f frontier
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, fmt.Errorf("search: parsing frontier %s: %w", path, err)
	}
	if f.Version != frontierVersion {
		return nil, fmt.Errorf("search: frontier %s has version %d, want %d", path, f.Version, frontierVersion)
	}
	if f.Points == nil {
		f.Points = make(map[string]PointResult)
	}
	return &f, nil
}

// matches reports whether the manifest was recorded for spec.
func (f *frontier) matches(spec *Spec) error {
	want, _ := json.Marshal(frontierFor(spec, nil))
	got, _ := json.Marshal(frontierFor(&Spec{Base: f.Config, Axes: f.Axes, Seeds: f.Seeds}, nil))
	if string(want) != string(got) {
		return fmt.Errorf("%w: base config, axes, or seed range changed", ErrFrontierMismatch)
	}
	return nil
}

// save writes the manifest atomically (temp file + rename).
func (f *frontier) save(path string) error {
	buf, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("search: encoding frontier: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(buf, '\n'), 0o644); err != nil {
		return fmt.Errorf("search: writing frontier: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("search: committing frontier: %w", err)
	}
	return nil
}
