package search

import (
	"encoding/json"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/runner"
)

// testSpec is a small, fast lattice: 2 axes over the lossy family at n=5.
func testSpec(t *testing.T) Spec {
	t.Helper()
	spec, err := FamilySpec("lossy", 5, -1, runner.SeedRange{From: 1, To: 4})
	if err != nil {
		t.Fatal(err)
	}
	spec.Axes = []Axis{
		{Name: "loss-pct", Values: []int64{10, 30, 60}},
		{Name: "retransmit-lag", Values: []int64{20, 40, 80}},
	}
	return spec
}

// TestGridDeterministicAcrossWorkers pins the contract the whole package
// exists to provide: identical output (byte for byte, via JSON) regardless
// of worker count.
func TestGridDeterministicAcrossWorkers(t *testing.T) {
	var outs [][]byte
	for _, workers := range []int{1, 4} {
		spec := testSpec(t)
		spec.Workers = workers
		out, err := Grid(spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		buf, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		outs = append(outs, buf)
	}
	if string(outs[0]) != string(outs[1]) {
		t.Errorf("grid output differs across worker counts:\n1: %s\n4: %s", outs[0], outs[1])
	}
}

// TestGridStopResumeIdentity kills the search after every possible prefix
// and resumes from the frontier: the final outcome must be byte-identical
// to an uninterrupted run's, with only the remaining points re-evaluated.
func TestGridStopResumeIdentity(t *testing.T) {
	base, err := json.Marshal(mustGrid(t, testSpec(t)))
	if err != nil {
		t.Fatal(err)
	}
	for stopAfter := 1; stopAfter <= 8; stopAfter++ {
		dir := t.TempDir()
		frontier := filepath.Join(dir, "frontier.json")

		spec := testSpec(t)
		spec.Frontier = frontier
		visited := 0
		spec.Stop = func() bool { visited++; return visited >= stopAfter }
		if _, err := Grid(spec); !errors.Is(err, ErrStopped) {
			t.Fatalf("stopAfter=%d: err = %v, want ErrStopped", stopAfter, err)
		}

		spec = testSpec(t)
		spec.Frontier = frontier
		spec.Resume = true
		out, err := Grid(spec)
		if err != nil {
			t.Fatalf("resume after %d: %v", stopAfter, err)
		}
		if want := 9 - stopAfter; out.Evaluated != want {
			t.Errorf("resume after %d: evaluated %d points, want %d", stopAfter, out.Evaluated, want)
		}
		buf, err := json.Marshal(out)
		if err != nil {
			t.Fatal(err)
		}
		if string(buf) != string(base) {
			t.Errorf("resume after %d: outcome differs from uninterrupted run:\ngot  %s\nwant %s", stopAfter, buf, base)
		}
	}
}

// TestFrontierMismatch pins that a frontier recorded for different
// parameters is rejected rather than silently reused.
func TestFrontierMismatch(t *testing.T) {
	dir := t.TempDir()
	frontier := filepath.Join(dir, "frontier.json")
	spec := testSpec(t)
	spec.Frontier = frontier
	mustGrid(t, spec)

	for name, mutate := range map[string]func(*Spec){
		"seeds":  func(s *Spec) { s.Seeds.To++ },
		"axes":   func(s *Spec) { s.Axes[0].Values = []int64{10, 61} },
		"config": func(s *Spec) { s.Base.N = 6 },
	} {
		spec := testSpec(t)
		spec.Frontier = frontier
		spec.Resume = true
		mutate(&spec)
		if _, err := Grid(spec); !errors.Is(err, ErrFrontierMismatch) {
			t.Errorf("%s changed: err = %v, want ErrFrontierMismatch", name, err)
		}
	}
}

// TestDescendFindsGridWorst pins Descend against ground truth: on the test
// lattice, coordinate ascent must converge to the same worst point Grid
// finds exhaustively.
func TestDescendFindsGridWorst(t *testing.T) {
	grid := mustGrid(t, testSpec(t))
	desc, err := Descend(testSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if desc.Best.Key != grid.Best.Key {
		t.Errorf("Descend converged to %q (score %.1f), Grid's worst is %q (score %.1f)",
			desc.Best.Key, desc.Best.Score, grid.Best.Key, grid.Best.Score)
	}
	if desc.Evaluated > len(grid.Points) {
		t.Errorf("Descend evaluated %d points, more than the %d-point grid", desc.Evaluated, len(grid.Points))
	}
}

// TestDescendDeterministicAcrossWorkers mirrors the grid determinism pin
// for the coordinate walk.
func TestDescendDeterministicAcrossWorkers(t *testing.T) {
	var outs [][]byte
	for _, workers := range []int{1, 3} {
		spec := testSpec(t)
		spec.Workers = workers
		out, err := Descend(spec)
		if err != nil {
			t.Fatal(err)
		}
		buf, _ := json.Marshal(out)
		outs = append(outs, buf)
	}
	if string(outs[0]) != string(outs[1]) {
		t.Errorf("descend output differs across worker counts:\n1: %s\n3: %s", outs[0], outs[1])
	}
}

// TestOutcomeRanking pins the ranking order: score descending, key
// ascending, Best = Points[0].
func TestOutcomeRanking(t *testing.T) {
	out := mustGrid(t, testSpec(t))
	if len(out.Points) != 9 {
		t.Fatalf("got %d points, want 9", len(out.Points))
	}
	for i := 1; i < len(out.Points); i++ {
		if Worse(out.Points[i], out.Points[i-1]) {
			t.Errorf("points out of order at %d: %q before %q", i, out.Points[i-1].Key, out.Points[i].Key)
		}
	}
	if !reflect.DeepEqual(out.Best, out.Points[0]) {
		t.Errorf("Best = %+v, want Points[0] = %+v", out.Best, out.Points[0])
	}
}

// TestApplyVocabulary pins the axis-name vocabulary 1:1 against
// SchedParams' searchable fields.
func TestApplyVocabulary(t *testing.T) {
	var p runner.SchedParams
	names := []string{
		"heal-time", "rejoin-time", "reorder-span", "straggler-lag", "partition-lag",
		"loss-pct", "dup-pct", "retransmit-lag", "topo-degree", "hop-lag", "target-lag",
	}
	for i, name := range names {
		if err := Apply(&p, name, int64(i+1)); err != nil {
			t.Errorf("Apply(%q): %v", name, err)
		}
	}
	want := runner.SchedParams{
		HealTime: 1, RejoinTime: 2, ReorderSpan: 3, StragglerLag: 4, PartitionLag: 5,
		LossPct: 6, DupPct: 7, RetransmitLag: 8, TopoDegree: 9, HopLag: 10, TargetLag: 11,
	}
	if p != want {
		t.Errorf("Apply round-trip = %+v, want %+v", p, want)
	}
	if err := Apply(&p, "no-such-axis", 1); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown axis: err = %v, want ErrBadSpec", err)
	}
}

// TestSpecValidation pins the up-front spec rejections.
func TestSpecValidation(t *testing.T) {
	cases := map[string]func(*Spec){
		"no axes":     func(s *Spec) { s.Axes = nil },
		"empty axis":  func(s *Spec) { s.Axes[0].Values = nil },
		"zero value":  func(s *Spec) { s.Axes[0].Values = []int64{0, 10} },
		"bad axis":    func(s *Spec) { s.Axes[0].Name = "bogus" },
		"empty seeds": func(s *Spec) { s.Seeds = runner.SeedRange{From: 5, To: 5} },
		"bare resume": func(s *Spec) { s.Resume = true },
	}
	for name, mutate := range cases {
		spec := testSpec(t)
		mutate(&spec)
		if _, err := Grid(spec); err == nil {
			t.Errorf("%s: Grid accepted an invalid spec", name)
		}
	}
}

// TestFamilySpecs pins that every preset builds and validates.
func TestFamilySpecs(t *testing.T) {
	for _, name := range Families() {
		spec, err := FamilySpec(name, 8, -1, runner.SeedRange{From: 1, To: 2})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := spec.validate(); err != nil {
			t.Errorf("%s: preset does not validate: %v", name, err)
		}
		if FamilyDoc(name) == "" {
			t.Errorf("%s: missing doc line", name)
		}
	}
	if _, err := FamilySpec("no-such-family", 8, -1, runner.SeedRange{From: 1, To: 2}); !errors.Is(err, ErrBadSpec) {
		t.Errorf("unknown family: err = %v, want ErrBadSpec", err)
	}
}

func mustGrid(t *testing.T, spec Spec) *Outcome {
	t.Helper()
	out, err := Grid(spec)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
