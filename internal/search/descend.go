package search

// Descend runs deterministic coordinate ascent toward the worst point: from
// each axis's lattice midpoint it repeatedly sweeps the axes in order,
// evaluating every value on the current axis with the others held fixed and
// moving to the strictly worst one under the Worse order (a strict total
// order, so the walk is a pure function of the scores). It stops
// after a full pass with no move, or after MaxPasses passes. Points visited
// twice are served from the frontier cache, so convergence costs nothing
// beyond the frontier of new evaluations. The returned outcome ranks every
// visited point worst-first; on ErrStopped it holds the prefix completed.
//
// Descend trades Grid's exhaustiveness for cost: it evaluates
// O(passes × Σ|axis|) points instead of Π|axis|, which is the only way to
// search 3+ axes at a meaningful per-point seed block. Like any local
// search it can sit on a ridge; the family presets keep axes monotone
// enough in practice that the summit it finds is the grid's too (the tests
// pin this on a small lattice).
func Descend(spec Spec) (*Outcome, error) {
	s, err := newSearcher(&spec)
	if err != nil {
		return nil, err
	}
	passes := spec.MaxPasses
	if passes <= 0 {
		passes = 2 * len(spec.Axes)
	}
	cur := make(point, len(spec.Axes))
	for i, ax := range spec.Axes {
		cur[i] = len(ax.Values) / 2
	}
	best, err := s.visit(cur)
	if err != nil {
		return finish(s, err)
	}
	for pass := 0; pass < passes; pass++ {
		moved := false
		for i, ax := range spec.Axes {
			for j := range ax.Values {
				if j == cur[i] {
					continue
				}
				cand := append(point(nil), cur...)
				cand[i] = j
				res, err := s.visit(cand)
				if err != nil {
					return finish(s, err)
				}
				if Worse(res, best) {
					cur, best, moved = cand, res, true
				}
			}
		}
		if !moved {
			break
		}
	}
	return s.outcome(), nil
}

// finish maps a mid-walk error to the partial outcome (ErrStopped) or a
// plain failure.
func finish(s *searcher, err error) (*Outcome, error) {
	if err == ErrStopped {
		return s.outcome(), err
	}
	return nil, err
}
