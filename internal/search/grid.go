package search

// Grid exhaustively evaluates the full axis lattice in odometer order (last
// axis fastest) and returns every point ranked worst-first. On ErrStopped
// the returned outcome holds the points completed so far (also saved to the
// frontier when one is configured).
func Grid(spec Spec) (*Outcome, error) {
	s, err := newSearcher(&spec)
	if err != nil {
		return nil, err
	}
	s.total = 1
	for _, ax := range spec.Axes {
		s.total *= len(ax.Values)
	}
	pt := make(point, len(spec.Axes))
	for {
		if _, err := s.visit(pt); err != nil {
			if err == ErrStopped {
				return s.outcome(), err
			}
			return nil, err
		}
		// Advance the odometer; done when it wraps.
		i := len(pt) - 1
		for ; i >= 0; i-- {
			pt[i]++
			if pt[i] < len(spec.Axes[i].Values) {
				break
			}
			pt[i] = 0
		}
		if i < 0 {
			return s.outcome(), nil
		}
	}
}
