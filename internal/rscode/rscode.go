// Package rscode implements a systematic Reed–Solomon erasure code over
// GF(2^8) (internal/gf256), the coding substrate for AVID-style coded
// reliable broadcast (internal/rbc's coded mode).
//
// A body of L bytes is striped column-wise into k data shards of
// ⌈L/k⌉ bytes each (zero-padded), and extended to n total shards by
// evaluating, for every byte column, the unique degree-(k−1) polynomial
// through the k data points. Shard i lives at evaluation point x = i+1
// (x = 0 is reserved: it would leak a raw interpolation target), so the
// code is systematic — shards 0..k−1 are the body's bytes verbatim, and
// any k of the n shards reconstruct every column by Lagrange
// interpolation. n is capped at 255 by the field size.
//
// The per-column work is O(n·k) for Encode and O(k²) for Decode, with the
// Lagrange coefficients hoisted out of the column loop — one basis
// computation serves every byte of the shards.
package rscode

import (
	"errors"
	"fmt"

	"repro/internal/gf256"
)

// Code is an (n, k) systematic Reed–Solomon code: k data shards, n total.
// It is immutable after New and safe for concurrent use.
type Code struct {
	n, k int
	// parityBasis[p][d] is the Lagrange coefficient mapping data shard d to
	// parity shard p (evaluation at x = k+p+1 of the basis polynomial that
	// is 1 at x = d+1 and 0 at the other data points). Precomputed once so
	// Encode is pure table arithmetic.
	parityBasis [][]byte
}

// Errors reported by New, Encode, and Decode.
var (
	ErrBadParams    = errors.New("rscode: invalid code parameters")
	ErrBadShards    = errors.New("rscode: malformed shards")
	ErrTooFewShards = errors.New("rscode: not enough shards to decode")
)

// New constructs an (n, k) code. It requires 1 ≤ k ≤ n ≤ 255.
func New(n, k int) (*Code, error) {
	if k < 1 || n < k || n > 255 {
		return nil, fmt.Errorf("%w: n=%d k=%d (need 1 ≤ k ≤ n ≤ 255)", ErrBadParams, n, k)
	}
	c := &Code{n: n, k: k}
	if n > k {
		c.parityBasis = make([][]byte, n-k)
		for p := range c.parityBasis {
			c.parityBasis[p] = basisAt(point(k+p), k)
		}
	}
	return c, nil
}

// N returns the total number of shards.
func (c *Code) N() int { return c.n }

// K returns the number of data shards (the decode threshold).
func (c *Code) K() int { return c.k }

// point maps shard index i (0-based) to its field evaluation point.
func point(i int) byte { return byte(i + 1) }

// basisAt returns, for the evaluation point x, the k Lagrange coefficients
// l_d(x) of the basis polynomials through the data points 1..k: the value of
// any column polynomial at x is Σ_d data[d]·l_d(x).
func basisAt(x byte, k int) []byte {
	basis := make([]byte, k)
	for d := 0; d < k; d++ {
		num, den := byte(1), byte(1)
		for j := 0; j < k; j++ {
			if j == d {
				continue
			}
			num = gf256.Mul(num, gf256.Sub(x, point(j)))
			den = gf256.Mul(den, gf256.Sub(point(d), point(j)))
		}
		basis[d] = gf256.Div(num, den)
	}
	return basis
}

// ShardLen returns the per-shard byte length for a body of bodyLen bytes:
// ⌈bodyLen/k⌉, and 1 for an empty body so every shard is non-empty on the
// wire (an empty broadcast still needs a frame to vote on).
func (c *Code) ShardLen(bodyLen int) int {
	if bodyLen <= 0 {
		return 1
	}
	return (bodyLen + c.k - 1) / c.k
}

// Split encodes body into n shards of ShardLen(len(body)) bytes each. The
// first k shards are the body striped in order (zero-padded at the tail);
// the remaining n−k are parity. The body is not retained; shards are fresh
// allocations.
func (c *Code) Split(body []byte) [][]byte {
	shardLen := c.ShardLen(len(body))
	// One backing array for all shards keeps Split at a single allocation
	// beyond the slice headers.
	backing := make([]byte, c.n*shardLen)
	shards := make([][]byte, c.n)
	for i := range shards {
		shards[i] = backing[i*shardLen : (i+1)*shardLen]
	}
	for d := 0; d < c.k; d++ {
		copy(shards[d], body[min(d*shardLen, len(body)):min((d+1)*shardLen, len(body))])
	}
	for p, basis := range c.parityBasis {
		out := shards[c.k+p]
		for d := 0; d < c.k; d++ {
			coef := basis[d]
			if coef == 0 {
				continue
			}
			data := shards[d]
			for b := 0; b < shardLen; b++ {
				out[b] = gf256.Add(out[b], gf256.Mul(data[b], coef))
			}
		}
	}
	return shards
}

// Reconstruct recovers the first bodyLen bytes of the original body from any
// k shards. indices[i] is the 0-based shard index of shards[i]; indices must
// be distinct and in [0, n), shards equal-length and non-empty, and bodyLen
// at most k·shardLen. Extra shards beyond the first k usable are ignored.
func (c *Code) Reconstruct(indices []int, shards [][]byte, bodyLen int) ([]byte, error) {
	if len(indices) != len(shards) {
		return nil, fmt.Errorf("%w: %d indices for %d shards", ErrBadShards, len(indices), len(shards))
	}
	if len(shards) < c.k {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewShards, len(shards), c.k)
	}
	// Select the first k distinct valid shards (mirrors shamir.Reconstruct's
	// scan: a malformed entry is skipped, not fatal).
	useIdx := make([]int, 0, c.k)
	useShard := make([][]byte, 0, c.k)
	seen := make(map[int]bool, c.k)
	shardLen := 0
	for i, idx := range indices {
		if len(useIdx) == c.k {
			break
		}
		if idx < 0 || idx >= c.n || seen[idx] || len(shards[i]) == 0 {
			continue
		}
		if shardLen == 0 {
			shardLen = len(shards[i])
		} else if len(shards[i]) != shardLen {
			continue
		}
		seen[idx] = true
		useIdx = append(useIdx, idx)
		useShard = append(useShard, shards[i])
	}
	if len(useIdx) < c.k {
		return nil, fmt.Errorf("%w: only %d of %d shards usable (need %d)",
			ErrTooFewShards, len(useIdx), len(shards), c.k)
	}
	if bodyLen < 0 || bodyLen > c.k*shardLen {
		return nil, fmt.Errorf("%w: bodyLen %d exceeds %d×%d", ErrBadShards, bodyLen, c.k, shardLen)
	}
	body := make([]byte, bodyLen)
	// Fast path: every needed data shard is present verbatim (systematic).
	systematic := true
	dataAt := make([][]byte, c.k)
	for i, idx := range useIdx {
		if idx < c.k {
			dataAt[idx] = useShard[i]
		}
	}
	for d := 0; d < c.k; d++ {
		if dataAt[d] == nil && d*shardLen < bodyLen {
			systematic = false
			break
		}
	}
	if systematic {
		for d := 0; d < c.k && d*shardLen < bodyLen; d++ {
			copy(body[d*shardLen:min((d+1)*shardLen, bodyLen)], dataAt[d])
		}
		return body, nil
	}
	// General path: for each missing data shard d, interpolate the column
	// polynomials at x = d+1 from the k available points. Hoist the Lagrange
	// coefficients out of the byte loop.
	for d := 0; d < c.k; d++ {
		if d*shardLen >= bodyLen {
			break
		}
		dst := body[d*shardLen:min((d+1)*shardLen, bodyLen)]
		if dataAt[d] != nil {
			copy(dst, dataAt[d])
			continue
		}
		basis := lagrangeAt(point(d), useIdx)
		for b := range dst {
			var acc byte
			for i := range useIdx {
				acc = gf256.Add(acc, gf256.Mul(useShard[i][b], basis[i]))
			}
			dst[b] = acc
		}
	}
	return body, nil
}

// lagrangeAt returns the Lagrange coefficients evaluating at x the unique
// degree-(len(idxs)−1) polynomial through the points point(idxs[i]).
func lagrangeAt(x byte, idxs []int) []byte {
	basis := make([]byte, len(idxs))
	for i, xi := range idxs {
		num, den := byte(1), byte(1)
		for j, xj := range idxs {
			if j == i {
				continue
			}
			num = gf256.Mul(num, gf256.Sub(x, point(xj)))
			den = gf256.Mul(den, gf256.Sub(point(xi), point(xj)))
		}
		basis[i] = gf256.Div(num, den)
	}
	return basis
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
