package rscode

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/gf256"
)

func mustCode(t *testing.T, n, k int) *Code {
	t.Helper()
	c, err := New(n, k)
	if err != nil {
		t.Fatalf("New(%d, %d): %v", n, k, err)
	}
	return c
}

func TestNewRejectsBadParams(t *testing.T) {
	for _, tt := range []struct{ n, k int }{
		{0, 0}, {4, 0}, {4, -1}, {3, 4}, {256, 4}, {300, 300},
	} {
		if _, err := New(tt.n, tt.k); !errors.Is(err, ErrBadParams) {
			t.Errorf("New(%d, %d) error = %v, want ErrBadParams", tt.n, tt.k, err)
		}
	}
	// Degenerate but legal corners.
	for _, tt := range []struct{ n, k int }{{1, 1}, {255, 255}, {255, 1}} {
		if _, err := New(tt.n, tt.k); err != nil {
			t.Errorf("New(%d, %d): %v", tt.n, tt.k, err)
		}
	}
}

func TestSystematicPrefix(t *testing.T) {
	c := mustCode(t, 7, 3)
	body := []byte("systematic prefix check!")
	shards := c.Split(body)
	if len(shards) != 7 {
		t.Fatalf("got %d shards", len(shards))
	}
	sl := c.ShardLen(len(body))
	for d := 0; d < 3; d++ {
		lo := d * sl
		hi := min((d+1)*sl, len(body))
		want := make([]byte, sl)
		copy(want, body[lo:hi])
		if !bytes.Equal(shards[d], want) {
			t.Errorf("data shard %d = %x, want %x", d, shards[d], want)
		}
	}
}

func TestRoundTripAllKSubsets(t *testing.T) {
	const n, k = 6, 3
	c := mustCode(t, n, k)
	body := []byte("any k of n shards reconstruct the body")
	shards := c.Split(body)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for l := j + 1; l < n; l++ {
				idxs := []int{i, j, l}
				sub := [][]byte{shards[i], shards[j], shards[l]}
				got, err := c.Reconstruct(idxs, sub, len(body))
				if err != nil {
					t.Fatalf("subset %v: %v", idxs, err)
				}
				if !bytes.Equal(got, body) {
					t.Fatalf("subset %v reconstructed %q", idxs, got)
				}
			}
		}
	}
}

// TestShardsArePolynomialEvaluations cross-checks the encoder against an
// independent Pow-based reference: for every byte column, shard i must be
// the value at x = i+1 of the polynomial whose coefficients come from
// interpreting the data column as evaluations — equivalently, the column of
// shards must lie on a single degree-(k−1) polynomial. We verify via
// gf256.Pow by explicitly building the coefficient vector from the data
// points and evaluating Σ c_m·Pow(x, m) at every shard's point.
func TestShardsArePolynomialEvaluations(t *testing.T) {
	const n, k = 9, 4
	c := mustCode(t, n, k)
	rng := rand.New(rand.NewSource(99))
	body := make([]byte, 4*k+3)
	rng.Read(body)
	shards := c.Split(body)
	sl := c.ShardLen(len(body))
	for col := 0; col < sl; col++ {
		// Solve for the degree-(k−1) coefficients through the data points
		// (point(d), shards[d][col]) by Gaussian elimination over GF(2^8).
		coeffs := solveVandermonde(t, k, func(d int) byte { return shards[d][col] })
		for i := 0; i < n; i++ {
			x := point(i)
			var want byte
			for m, cm := range coeffs {
				want = gf256.Add(want, gf256.Mul(cm, gf256.Pow(x, m)))
			}
			if shards[i][col] != want {
				t.Fatalf("col %d shard %d: %#x off-polynomial (want %#x)", col, i, shards[i][col], want)
			}
		}
	}
}

// solveVandermonde returns the coefficients of the degree-(k−1) polynomial
// with p(point(d)) = y(d), via row reduction of the Vandermonde system built
// with gf256.Pow (independent of the encoder's Lagrange machinery).
func solveVandermonde(t *testing.T, k int, y func(int) byte) []byte {
	t.Helper()
	// Augmented matrix rows: [x^0 x^1 ... x^(k-1) | y].
	rows := make([][]byte, k)
	for d := 0; d < k; d++ {
		row := make([]byte, k+1)
		for m := 0; m < k; m++ {
			row[m] = gf256.Pow(point(d), m)
		}
		row[k] = y(d)
		rows[d] = row
	}
	for col := 0; col < k; col++ {
		pivot := -1
		for r := col; r < k; r++ {
			if rows[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			t.Fatal("singular Vandermonde system")
		}
		rows[col], rows[pivot] = rows[pivot], rows[col]
		inv := gf256.Inv(rows[col][col])
		for m := col; m <= k; m++ {
			rows[col][m] = gf256.Mul(rows[col][m], inv)
		}
		for r := 0; r < k; r++ {
			if r == col || rows[r][col] == 0 {
				continue
			}
			f := rows[r][col]
			for m := col; m <= k; m++ {
				rows[r][m] = gf256.Add(rows[r][m], gf256.Mul(f, rows[col][m]))
			}
		}
	}
	coeffs := make([]byte, k)
	for d := 0; d < k; d++ {
		coeffs[d] = rows[d][k]
	}
	return coeffs
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(20)
		k := 1 + rng.Intn(n)
		c := mustCode(t, n, k)
		body := make([]byte, rng.Intn(64))
		rng.Read(body)
		shards := c.Split(body)
		// Random k-subset in random order.
		perm := rng.Perm(n)[:k]
		idxs := make([]int, k)
		sub := make([][]byte, k)
		for i, p := range perm {
			idxs[i] = p
			sub[i] = shards[p]
		}
		got, err := c.Reconstruct(idxs, sub, len(body))
		if err != nil {
			t.Fatalf("trial %d (n=%d k=%d): %v", trial, n, k, err)
		}
		if !bytes.Equal(got, body) {
			t.Fatalf("trial %d (n=%d k=%d): mismatch", trial, n, k)
		}
	}
}

func TestEmptyBody(t *testing.T) {
	c := mustCode(t, 4, 2)
	shards := c.Split(nil)
	for i, s := range shards {
		if len(s) != 1 {
			t.Fatalf("shard %d len = %d, want 1 (empty body still frames)", i, len(s))
		}
	}
	got, err := c.Reconstruct([]int{2, 3}, [][]byte{shards[2], shards[3]}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("reconstructed %d bytes from empty body", len(got))
	}
}

func TestReconstructErrors(t *testing.T) {
	c := mustCode(t, 5, 3)
	body := []byte("errors")
	shards := c.Split(body)
	t.Run("too few", func(t *testing.T) {
		_, err := c.Reconstruct([]int{0, 1}, shards[:2], len(body))
		if !errors.Is(err, ErrTooFewShards) {
			t.Errorf("error = %v, want ErrTooFewShards", err)
		}
	})
	t.Run("length mismatch", func(t *testing.T) {
		_, err := c.Reconstruct([]int{0, 1}, shards[:3], len(body))
		if !errors.Is(err, ErrBadShards) {
			t.Errorf("error = %v, want ErrBadShards", err)
		}
	})
	t.Run("duplicate index skipped then insufficient", func(t *testing.T) {
		_, err := c.Reconstruct([]int{0, 0, 0}, [][]byte{shards[0], shards[0], shards[0]}, len(body))
		if !errors.Is(err, ErrTooFewShards) {
			t.Errorf("error = %v, want ErrTooFewShards", err)
		}
	})
	t.Run("out of range index skipped", func(t *testing.T) {
		got, err := c.Reconstruct([]int{7, 0, 1, 2}, [][]byte{shards[0], shards[0], shards[1], shards[2]}, len(body))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, body) {
			t.Error("valid tail should have reconstructed")
		}
	})
	t.Run("oversized bodyLen", func(t *testing.T) {
		_, err := c.Reconstruct([]int{0, 1, 2}, shards[:3], 3*c.ShardLen(len(body))+1)
		if !errors.Is(err, ErrBadShards) {
			t.Errorf("error = %v, want ErrBadShards", err)
		}
	})
}

func BenchmarkSplit(b *testing.B) {
	c, _ := New(16, 6)
	body := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(body)
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Split(body)
	}
}

func BenchmarkReconstructParityHeavy(b *testing.B) {
	c, _ := New(16, 6)
	body := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(body)
	shards := c.Split(body)
	// Worst case: all parity shards, no systematic fast path.
	idxs := []int{10, 11, 12, 13, 14, 15}
	sub := [][]byte{shards[10], shards[11], shards[12], shards[13], shards[14], shards[15]}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Reconstruct(idxs, sub, len(body)); err != nil {
			b.Fatal(err)
		}
	}
}
