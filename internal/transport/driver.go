package transport

import (
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// Driver binds one protocol state machine to a TCPNode: inbound messages
// pump into the node, node outputs go out over TCP. It is the deployment
// shape of this library — the same sim.Node code, fed by sockets.
type Driver struct {
	node sim.Node
	tr   *TCPNode

	mu   sync.Mutex
	wg   sync.WaitGroup
	once sync.Once
}

// NewDriver binds node to tr. Call Run to start.
func NewDriver(node sim.Node, tr *TCPNode) *Driver {
	return &Driver{node: node, tr: tr}
}

// Run emits the node's Start messages and pumps inbound traffic until the
// transport closes. Call at most once; it returns immediately (pumping
// continues in a goroutine). Use Inspect for state reads and Close to stop.
func (d *Driver) Run() {
	d.once.Do(func() {
		d.mu.Lock()
		out := d.node.Start()
		d.mu.Unlock()
		d.sendAll(out)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for m := range d.tr.Incoming() {
				d.mu.Lock()
				var out []types.Message
				if !d.node.Done() {
					out = d.node.Deliver(m)
				}
				d.mu.Unlock()
				d.sendAll(out)
			}
		}()
	})
}

// Inspect runs fn with exclusive access to the node's state.
func (d *Driver) Inspect(fn func(sim.Node)) {
	d.mu.Lock()
	defer d.mu.Unlock()
	fn(d.node)
}

// WaitUntil polls pred (under the node lock) until it holds or the timeout
// elapses.
func (d *Driver) WaitUntil(pred func(sim.Node) bool, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		var ok bool
		d.Inspect(func(n sim.Node) { ok = pred(n) })
		if ok {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close shuts down the transport and waits for the pump to exit.
func (d *Driver) Close() {
	_ = d.tr.Close()
	d.wg.Wait()
}

func (d *Driver) sendAll(msgs []types.Message) {
	for _, m := range msgs {
		// Sends to crashed/unknown peers fail; per the asynchronous model
		// the protocol never depends on any single peer, so drop and go on.
		_ = d.tr.Send(m)
	}
}
