package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/types"
)

// Cluster drives protocol nodes live, one pump goroutine per node, routing
// messages through in-process mailboxes. It is the goroutines-and-channels
// deployment of the same state machines the simulator runs — real
// concurrency, scheduler-order nondeterminism and all.
type Cluster struct {
	mu      sync.Mutex
	nodes   map[types.ProcessID]sim.Node
	boxes   map[types.ProcessID]*mailbox[types.Message]
	locks   map[types.ProcessID]*sync.Mutex
	started bool

	wg   sync.WaitGroup
	stop chan struct{}
}

// NewCluster creates an empty live cluster.
func NewCluster() *Cluster {
	return &Cluster{
		nodes: make(map[types.ProcessID]sim.Node),
		boxes: make(map[types.ProcessID]*mailbox[types.Message]),
		locks: make(map[types.ProcessID]*sync.Mutex),
		stop:  make(chan struct{}),
	}
}

// Cluster errors.
var (
	ErrStarted   = errors.New("transport: cluster already started")
	ErrDuplicate = errors.New("transport: duplicate node")
	ErrTimeout   = errors.New("transport: wait timed out")
)

// Add registers a node before Start.
func (c *Cluster) Add(node sim.Node) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return ErrStarted
	}
	id := node.ID()
	if _, dup := c.nodes[id]; dup {
		return fmt.Errorf("%w: %v", ErrDuplicate, id)
	}
	c.nodes[id] = node
	c.boxes[id] = newMailbox[types.Message]()
	c.locks[id] = &sync.Mutex{}
	return nil
}

// Start launches one pump goroutine per node and injects every node's Start
// messages. Call Stop (or Wait, then Stop) exactly once afterwards.
func (c *Cluster) Start() error {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return ErrStarted
	}
	c.started = true
	nodes := make([]sim.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		nodes = append(nodes, n)
	}
	c.mu.Unlock()

	for _, n := range nodes {
		c.route(n.ID(), n.Start())
	}
	for _, n := range nodes {
		node := n
		box := c.boxes[node.ID()]
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			c.pump(node, box)
		}()
	}
	return nil
}

// pump is one node's event loop: pop, deliver, route outputs. Node state is
// touched only under the node's lock so Inspect can read it concurrently.
func (c *Cluster) pump(node sim.Node, box *mailbox[types.Message]) {
	lock := c.locks[node.ID()]
	for {
		select {
		case <-c.stop:
			return
		default:
		}
		m, ok := box.pop()
		if !ok {
			return
		}
		lock.Lock()
		var out []types.Message
		if !node.Done() { // drain without delivering, mirroring the simulator
			out = node.Deliver(m)
		}
		lock.Unlock()
		c.route(node.ID(), out)
	}
}

// Inspect runs fn with exclusive access to a node's state — the only safe
// way to read protocol state (Decided, Round, ...) while the cluster runs.
func (c *Cluster) Inspect(id types.ProcessID, fn func(sim.Node)) bool {
	c.mu.Lock()
	node, ok := c.nodes[id]
	lock := c.locks[id]
	c.mu.Unlock()
	if !ok {
		return false
	}
	lock.Lock()
	defer lock.Unlock()
	fn(node)
	return true
}

// route distributes a node's output messages, enforcing the authenticated
// sender exactly like the simulator.
func (c *Cluster) route(from types.ProcessID, msgs []types.Message) {
	for _, m := range msgs {
		if m.From != from {
			continue // spoof attempt
		}
		if box, ok := c.boxes[m.To]; ok {
			box.push(m)
		}
	}
}

// Wait blocks until pred() holds (checked every poll interval) or the
// timeout elapses.
func (c *Cluster) Wait(pred func() bool, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if pred() {
			return nil
		}
		if time.Now().After(deadline) {
			return ErrTimeout
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Stop terminates all pumps and waits for them to exit. Safe to call once.
func (c *Cluster) Stop() {
	close(c.stop)
	c.mu.Lock()
	for _, box := range c.boxes {
		box.close()
	}
	c.mu.Unlock()
	c.wg.Wait()
}

// Queued reports the total number of undelivered messages (diagnostics).
func (c *Cluster) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, box := range c.boxes {
		total += box.len()
	}
	return total
}
