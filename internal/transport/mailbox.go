// Package transport runs the same protocol state machines that the
// simulator drives — but live: goroutine-pumped in-process clusters
// (Cluster) and real TCP endpoints with HMAC-authenticated frames (TCPNode).
// Nothing in the protocol packages changes between simulated and live
// execution; that equivalence is itself tested.
package transport

import "sync"

// mailbox is an unbounded FIFO queue with blocking receive. Protocol
// traffic is cyclic (a delivery triggers sends back to the sender), so
// bounded channels could deadlock two pumps against each other; unbounded
// mailboxes trade memory for progress, matching the asynchronous model's
// unbounded network.
type mailbox[T any] struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []T
	closed bool
}

func newMailbox[T any]() *mailbox[T] {
	m := &mailbox[T]{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// push enqueues an item; it reports false if the mailbox is closed.
func (m *mailbox[T]) push(item T) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return false
	}
	m.items = append(m.items, item)
	m.cond.Signal()
	return true
}

// pop blocks until an item is available or the mailbox closes; ok is false
// only on close-and-drained.
func (m *mailbox[T]) pop() (item T, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.items) == 0 && !m.closed {
		m.cond.Wait()
	}
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	item = m.items[0]
	m.items = m.items[1:]
	return item, true
}

// close wakes all waiters; pending items remain poppable.
func (m *mailbox[T]) close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.closed = true
	m.cond.Broadcast()
}

// len returns the queued item count.
func (m *mailbox[T]) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.items)
}
