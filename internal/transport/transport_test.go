package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

func TestMailbox(t *testing.T) {
	m := newMailbox[int]()
	if !m.push(1) || !m.push(2) {
		t.Fatal("push failed on open mailbox")
	}
	if m.len() != 2 {
		t.Fatalf("len = %d", m.len())
	}
	if v, ok := m.pop(); !ok || v != 1 {
		t.Fatalf("pop = %d, %v", v, ok)
	}
	m.close()
	if m.push(3) {
		t.Fatal("push succeeded on closed mailbox")
	}
	if v, ok := m.pop(); !ok || v != 2 {
		t.Fatalf("drained pop = %d, %v", v, ok)
	}
	if _, ok := m.pop(); ok {
		t.Fatal("pop on closed+empty returned ok")
	}
}

func TestMailboxBlockingPop(t *testing.T) {
	m := newMailbox[int]()
	done := make(chan int, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _ := m.pop()
		done <- v
	}()
	time.Sleep(5 * time.Millisecond)
	m.push(42)
	select {
	case v := <-done:
		if v != 42 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(time.Second):
		t.Fatal("pop never woke")
	}
	wg.Wait()
}

// buildNodes constructs a correct consensus cluster for live transports.
func buildNodes(t *testing.T, n, f int, proposals []types.Value, seed int64) []*core.Node {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	dealer := coin.NewDealer(spec, seed)
	nodes := make([]*core.Node, n)
	for i, p := range peers {
		nd, err := core.New(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewCommon(p, peers, dealer),
			Proposal: proposals[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = nd
	}
	return nodes
}

func TestClusterLiveConsensus(t *testing.T) {
	nodes := buildNodes(t, 4, 1, []types.Value{0, 1, 1, 0}, 5)
	c := NewCluster()
	for _, nd := range nodes {
		if err := c.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	allDone := func() bool {
		done := true
		for _, nd := range nodes {
			c.Inspect(nd.ID(), func(n sim.Node) {
				if !n.Done() {
					done = false
				}
			})
		}
		return done
	}
	if err := c.Wait(allDone, 10*time.Second); err != nil {
		t.Fatalf("live cluster did not finish: %v", err)
	}
	var first types.Value
	for i, nd := range nodes {
		c.Inspect(nd.ID(), func(n sim.Node) {
			v, ok := n.(*core.Node).Decided()
			if !ok {
				t.Errorf("%v undecided", n.ID())
				return
			}
			if i == 0 {
				first = v
			} else if v != first {
				t.Errorf("agreement broken live: %v vs %v", v, first)
			}
		})
	}
}

func TestClusterGuards(t *testing.T) {
	c := NewCluster()
	nodes := buildNodes(t, 4, 1, []types.Value{0, 0, 0, 0}, 1)
	if err := c.Add(nodes[0]); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(nodes[0]); err == nil {
		t.Fatal("duplicate Add accepted")
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if err := c.Start(); err == nil {
		t.Fatal("second Start accepted")
	}
	if err := c.Add(nodes[1]); err == nil {
		t.Fatal("Add after Start accepted")
	}
	if ok := c.Inspect(99, func(sim.Node) {}); ok {
		t.Fatal("Inspect of unknown node returned true")
	}
	if err := c.Wait(func() bool { return false }, 10*time.Millisecond); err == nil {
		t.Fatal("Wait with false predicate must time out")
	}
}

func TestTCPConsensusLoopback(t *testing.T) {
	master := []byte("integration-secret")
	nodes := buildNodes(t, 4, 1, []types.Value{1, 0, 1, 0}, 9)

	endpoints := make([]*TCPNode, len(nodes))
	addrs := make(map[types.ProcessID]string, len(nodes))
	for i, nd := range nodes {
		ep, err := ListenTCP(nd.ID(), "127.0.0.1:0", master)
		if err != nil {
			t.Fatal(err)
		}
		endpoints[i] = ep
		addrs[nd.ID()] = ep.Addr()
	}
	drivers := make([]*Driver, len(nodes))
	for i, nd := range nodes {
		endpoints[i].SetPeers(addrs)
		drivers[i] = NewDriver(nd, endpoints[i])
	}
	for _, d := range drivers {
		d.Run()
	}
	defer func() {
		for _, d := range drivers {
			d.Close()
		}
	}()

	var first types.Value
	for i, d := range drivers {
		ok := d.WaitUntil(func(n sim.Node) bool { return n.Done() }, 15*time.Second)
		if !ok {
			t.Fatalf("driver %d did not finish", i)
		}
		d.Inspect(func(n sim.Node) {
			v, decided := n.(*core.Node).Decided()
			if !decided {
				t.Fatalf("node %v undecided", n.ID())
			}
			if i == 0 {
				first = v
			} else if v != first {
				t.Fatalf("TCP agreement broken: %v vs %v", v, first)
			}
		})
	}
}

func TestTCPRejectsForgedFrames(t *testing.T) {
	master := []byte("secret-a")
	a, err := ListenTCP(1, "127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	// The forger holds a different master secret: its MACs must not verify.
	forger, err := ListenTCP(2, "127.0.0.1:0", []byte("other-secret"))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = forger.Close() }()
	forger.SetPeers(map[types.ProcessID]string{1: a.Addr()})

	msg := types.Message{From: 2, To: 1, Payload: &types.DecidePayload{V: types.One}}
	if err := forger.Send(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(2 * time.Second)
	for a.Dropped() == 0 {
		select {
		case m := <-a.Incoming():
			t.Fatalf("forged frame delivered: %v", m)
		case <-deadline:
			t.Fatal("forged frame neither delivered nor counted as dropped")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestTCPGenuineDelivery(t *testing.T) {
	master := []byte("shared")
	a, err := ListenTCP(1, "127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP(2, "127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	b.SetPeers(map[types.ProcessID]string{1: a.Addr()})

	want := types.Message{From: 2, To: 1, Payload: &types.DecidePayload{V: types.One}}
	if err := b.Send(want); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-a.Incoming():
		if got.From != 2 || got.To != 1 {
			t.Fatalf("got %v", got)
		}
		p, ok := got.Payload.(*types.DecidePayload)
		if !ok || p.V != types.One {
			t.Fatalf("payload = %v", got.Payload)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("genuine frame not delivered")
	}
}

func TestTCPSendErrors(t *testing.T) {
	a, err := ListenTCP(1, "127.0.0.1:0", []byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send(types.Message{From: 1, To: 9, Payload: &types.DecidePayload{}}); err == nil {
		t.Error("send to unknown peer succeeded")
	}
	if a.ID() != 1 {
		t.Errorf("ID = %v", a.ID())
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(types.Message{From: 1, To: 1, Payload: &types.DecidePayload{}}); err == nil {
		t.Error("send on closed node succeeded")
	}
	_ = a.Close() // double close must be safe
}

func TestClusterLiveConsensusUnderLiar(t *testing.T) {
	// The same liar adversary that the simulator matrix covers, over real
	// goroutines: live scheduling nondeterminism must not change the
	// verdicts (agreement + validity + termination).
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	dealer := coin.NewDealer(spec, 21)
	c := NewCluster()
	correct := make([]*core.Node, 0, 3)
	for i, p := range peers[:3] {
		nd, err := core.New(core.Config{
			Me: p, Peers: peers, Spec: spec,
			Coin:     coin.NewCommon(p, peers, dealer),
			Proposal: types.Value(i % 2),
		})
		if err != nil {
			t.Fatal(err)
		}
		correct = append(correct, nd)
		if err := c.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	liar, err := adversary.NewLiar(core.Config{
		Me: 4, Peers: peers, Spec: spec,
		Coin:     coin.NewCommon(4, peers, dealer),
		Proposal: types.Zero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Add(liar); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()

	allDone := func() bool {
		done := true
		for _, nd := range correct {
			c.Inspect(nd.ID(), func(n sim.Node) {
				if !n.Done() {
					done = false
				}
			})
		}
		return done
	}
	if err := c.Wait(allDone, 15*time.Second); err != nil {
		t.Fatalf("live cluster under liar did not finish: %v", err)
	}
	var first types.Value
	for i, nd := range correct {
		c.Inspect(nd.ID(), func(n sim.Node) {
			v, ok := n.(*core.Node).Decided()
			if !ok {
				t.Errorf("%v undecided", n.ID())
				return
			}
			if i == 0 {
				first = v
			} else if v != first {
				t.Errorf("live agreement broken under liar: %v vs %v", v, first)
			}
		})
	}
}

func TestTCPManyMessages(t *testing.T) {
	// Stress the framing: several hundred messages in both directions on
	// one pair of endpoints, none lost, none corrupted.
	master := []byte("stress")
	a, err := ListenTCP(1, "127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenTCP(2, "127.0.0.1:0", master)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	a.SetPeers(map[types.ProcessID]string{2: b.Addr()})
	b.SetPeers(map[types.ProcessID]string{1: a.Addr()})

	const burst = 300
	go func() {
		for i := 0; i < burst; i++ {
			_ = b.Send(types.Message{From: 2, To: 1, Payload: &types.PlainPayload{Round: i + 1, Step: types.Step1, V: types.One}})
		}
	}()
	seen := make(map[int]bool, burst)
	deadline := time.After(10 * time.Second)
	for len(seen) < burst {
		select {
		case m := <-a.Incoming():
			p, ok := m.Payload.(*types.PlainPayload)
			if !ok || m.From != 2 {
				t.Fatalf("unexpected message %v", m)
			}
			if seen[p.Round] {
				t.Fatalf("duplicate round %d", p.Round)
			}
			seen[p.Round] = true
		case <-deadline:
			t.Fatalf("received %d/%d messages", len(seen), burst)
		}
	}
	if a.Dropped() != 0 {
		t.Errorf("dropped %d frames under honest traffic", a.Dropped())
	}
}
