package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/auth"
	"repro/internal/types"
	"repro/internal/wire"
)

// Frame format: 4-byte big-endian payload length, the wire-encoded message,
// then a 32-byte HMAC-SHA256 over the payload under the (sender, receiver)
// link key. The MAC realizes the paper's authenticated-links assumption over
// real sockets: a frame whose claimed From does not hold the link key is
// dropped.

// maxFrame bounds a frame payload; larger length prefixes are treated as
// protocol errors and close the connection.
const maxFrame = 1 << 22

// TCPNode is one process's TCP endpoint: it listens for peers, dials lazily
// on first send, and delivers verified inbound messages on Incoming.
type TCPNode struct {
	me      types.ProcessID
	keyring *auth.Keyring

	listener net.Listener
	incoming chan types.Message

	mu      sync.Mutex
	peers   map[types.ProcessID]string
	conns   map[types.ProcessID]net.Conn
	inbound []net.Conn // accepted connections, closed on shutdown

	closeOnce sync.Once
	closed    chan struct{}
	wg        sync.WaitGroup

	dropped int // frames rejected (bad MAC / malformed); diagnostics
}

// TCP errors.
var (
	ErrClosed      = errors.New("transport: node closed")
	ErrUnknownPeer = errors.New("transport: unknown peer")
)

// ListenTCP starts an endpoint for process me on addr ("127.0.0.1:0" picks a
// free port). All processes of a deployment must share the master secret.
func ListenTCP(me types.ProcessID, addr string, master []byte) (*TCPNode, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCPNode{
		me:       me,
		keyring:  auth.NewKeyring(master, me),
		listener: l,
		incoming: make(chan types.Message, 1024),
		peers:    make(map[types.ProcessID]string),
		conns:    make(map[types.ProcessID]net.Conn),
		closed:   make(chan struct{}),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the bound listen address.
func (t *TCPNode) Addr() string { return t.listener.Addr().String() }

// ID returns this endpoint's process.
func (t *TCPNode) ID() types.ProcessID { return t.me }

// SetPeers installs the peer address book (required before Send).
func (t *TCPNode) SetPeers(peers map[types.ProcessID]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for p, a := range peers {
		t.peers[p] = a
	}
}

// Incoming delivers verified inbound messages. The channel closes when the
// node is closed.
func (t *TCPNode) Incoming() <-chan types.Message { return t.incoming }

// Dropped returns how many inbound frames failed verification or parsing.
func (t *TCPNode) Dropped() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Send transmits one message to m.To; m.From must be this process (the peer
// verifies the MAC against the claimed sender, so lying here only gets the
// frame dropped remotely).
func (t *TCPNode) Send(m types.Message) error {
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	if m.To == t.me {
		// Loopback without touching the network.
		return t.deliver(m)
	}
	payload, err := wire.EncodeMessage(m)
	if err != nil {
		return fmt.Errorf("transport: encode: %w", err)
	}
	conn, err := t.conn(m.To)
	if err != nil {
		return err
	}
	mac := t.keyring.Sign(m.To, payload)
	frame := make([]byte, 4, 4+len(payload)+len(mac))
	binary.BigEndian.PutUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = append(frame, mac...)
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, err := conn.Write(frame); err != nil {
		delete(t.conns, m.To) // force re-dial next time
		return fmt.Errorf("transport: write to %v: %w", m.To, err)
	}
	return nil
}

// conn returns (dialing if needed) the connection to peer.
func (t *TCPNode) conn(peer types.ProcessID) (net.Conn, error) {
	t.mu.Lock()
	if c, ok := t.conns[peer]; ok {
		t.mu.Unlock()
		return c, nil
	}
	addr, ok := t.peers[peer]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownPeer, peer)
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %v at %s: %w", peer, addr, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if existing, ok := t.conns[peer]; ok {
		// Lost the dial race; keep the existing connection.
		_ = c.Close()
		return existing, nil
	}
	t.conns[peer] = c
	return c, nil
}

// Close shuts the endpoint down and waits for its goroutines.
func (t *TCPNode) Close() error {
	t.closeOnce.Do(func() {
		close(t.closed)
		_ = t.listener.Close()
		t.mu.Lock()
		for _, c := range t.conns {
			_ = c.Close()
		}
		// Accepted connections must be closed here too: their read loops
		// otherwise block until the *peer* closes, and a fleet shutting
		// down in sequence would deadlock on that ordering.
		for _, c := range t.inbound {
			_ = c.Close()
		}
		t.mu.Unlock()
		t.wg.Wait()
		close(t.incoming)
	})
	return nil
}

func (t *TCPNode) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.inbound = append(t.inbound, conn)
		t.mu.Unlock()
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.readLoop(conn)
		}()
	}
}

// readLoop parses and verifies frames from one inbound connection until it
// errors or the node closes.
func (t *TCPNode) readLoop(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	var lenBuf [4]byte
	for {
		if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
			return
		}
		size := binary.BigEndian.Uint32(lenBuf[:])
		if size == 0 || size > maxFrame {
			return // hostile or corrupt framing: drop the connection
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(conn, payload); err != nil {
			return
		}
		mac := make([]byte, auth.MACSize)
		if _, err := io.ReadFull(conn, mac); err != nil {
			return
		}
		m, err := wire.DecodeMessage(payload)
		if err != nil {
			t.countDrop()
			continue
		}
		// Authenticated links: the MAC must verify under the link key of
		// the *claimed* sender, and the frame must be addressed to us.
		if m.To != t.me || t.keyring.Check(m.From, payload, mac) != nil {
			t.countDrop()
			continue
		}
		if err := t.deliver(m); err != nil {
			return
		}
	}
}

func (t *TCPNode) deliver(m types.Message) error {
	select {
	case t.incoming <- m:
		return nil
	case <-t.closed:
		return ErrClosed
	}
}

func (t *TCPNode) countDrop() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.dropped++
}
