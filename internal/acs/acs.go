// Package acs implements Asynchronous Common Subset (Ben-Or, Kelmer, Rabin
// PODC 1994) on top of this repository's two primitives — exactly the
// construction that HoneyBadgerBFT (CCS 2016) later industrialized, and the
// reason Bracha's PODC-84 building blocks are called the basis of modern
// asynchronous BFT.
//
// Every process contributes an arbitrary byte-string input; all correct
// processes output the *same* subset of at least n−f inputs. The protocol:
//
//  1. Each process disseminates its input with Bracha reliable broadcast.
//  2. For every process j there is one binary consensus instance BA_j
//     ("does j's input make it into the subset?"). A process votes 1 in
//     BA_j as soon as it rbc-delivers j's input.
//  3. Once n−f instances have decided 1, the process votes 0 in every
//     instance it has not voted in yet.
//  4. When all n instances have decided, the output is the inputs of the
//     instances that decided 1 (waiting, where needed, for their RBC
//     deliveries — guaranteed by binary validity + RBC totality: a 1
//     decision means some correct process delivered that input).
//
// Each BA_j is a full Bracha randomized consensus node (internal/core)
// namespaced by instance — n+1 protocols multiplexed over one network, with
// no change to the underlying implementations.
package acs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

// valueNS is the Tag.Seq namespace for input dissemination; binary
// instances use Seq 1..n. It bounds the number of processes, comfortably.
const valueNS = 1 << 20

// Proposal is one subset member: a process's contributed input.
type Proposal struct {
	Proposer types.ProcessID
	Value    string
}

// Config configures an ACS node.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption.
	Spec quorum.Spec
	// NewCoin builds the coin for one binary instance. Instances must not
	// share coin state; for the common coin give every instance its own
	// dealer. Required.
	NewCoin func(instance int) coin.Coin
	// Input is this process's contribution.
	Input string
	// Recorder, when enabled, receives protocol events.
	Recorder *trace.Recorder
}

// Node is one ACS participant. Deterministic state machine (sim.Node); not
// safe for concurrent use.
type Node struct {
	cfg  Config
	spec quorum.Spec

	values *rbc.Broadcaster // input dissemination

	bins    map[int]*core.Node      // binary instance per proposer index (1-based)
	pending map[int][]types.Message // traffic for instances not yet started
	inputs  map[int]string          // rbc-delivered inputs by proposer index
	decided map[int]types.Value     // binary decisions by proposer index
	voted   map[int]bool            // instances this node has an opinion in
	ones    int                     // instances decided 1
	output  []Proposal
	done    bool
}

// Config errors.
var (
	ErrNoCoinFactory = errors.New("acs: config requires NewCoin")
	ErrBadPeers      = errors.New("acs: peers must include me and match spec size")
)

// New creates an ACS node.
func New(cfg Config) (*Node, error) {
	if cfg.NewCoin == nil {
		return nil, ErrNoCoinFactory
	}
	if len(cfg.Peers) != cfg.Spec.N() || len(cfg.Peers) >= valueNS {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	return &Node{
		cfg:     cfg,
		spec:    cfg.Spec,
		values:  rbc.New(cfg.Me, cfg.Peers, cfg.Spec),
		bins:    make(map[int]*core.Node),
		pending: make(map[int][]types.Message),
		inputs:  make(map[int]string),
		decided: make(map[int]types.Value),
		voted:   make(map[int]bool),
	}, nil
}

var _ sim.Node = (*Node)(nil)

// ID implements sim.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Me }

// Done implements sim.Node. An ACS node never reports done: after producing
// its output it keeps serving RBC echoes and consensus traffic so laggards
// can finish (the caller stops the network once every correct node has
// output).
func (n *Node) Done() bool { return false }

// Start implements sim.Node: disseminate this process's input.
func (n *Node) Start() []types.Message {
	idx := n.indexOf(n.cfg.Me)
	return n.values.Broadcast(types.Tag{Seq: valueNS + idx}, n.cfg.Input)
}

// Deliver implements sim.Node.
func (n *Node) Deliver(m types.Message) []types.Message {
	var out []types.Message
	switch inst, kind := n.classify(m); kind {
	case trafficValues:
		p, ok := m.Payload.(*types.RBCPayload)
		if !ok {
			return nil
		}
		msgs, deliveries := n.values.Handle(m.From, p)
		out = append(out, msgs...)
		for _, d := range deliveries {
			idx := d.ID.Tag.Seq - valueNS
			if idx < 1 || idx > n.spec.N() || idx != n.indexOf(d.ID.Sender) {
				continue // input instances are bound to their proposer
			}
			if _, dup := n.inputs[idx]; dup {
				continue
			}
			n.inputs[idx] = d.Body
			// Seeing j's input is the trigger to vote 1 in BA_j.
			out = append(out, n.vote(idx, types.One)...)
		}
	case trafficCoin:
		// Coin shares carry a round but no instance; with per-instance
		// dealers the MACs bind each share to its dealer, so fan them to
		// every open instance — the right one accepts, the rest reject.
		for _, bin := range n.bins {
			out = append(out, bin.Deliver(m)...)
		}
	case trafficBinary:
		if bin, ok := n.bins[inst]; ok {
			out = append(out, bin.Deliver(m)...)
		} else if inst >= 1 && inst <= n.spec.N() {
			// Traffic for an instance this node has no opinion in yet:
			// buffer until an input arrives (vote 1) or the 0-voting phase
			// starts.
			n.pending[inst] = append(n.pending[inst], m)
		}
	}
	out = append(out, n.harvest()...)
	return out
}

// Output returns the agreed subset once available: proposals of every
// instance that decided 1, ordered by proposer.
func (n *Node) Output() ([]Proposal, bool) {
	if !n.done {
		return nil, false
	}
	return append([]Proposal(nil), n.output...), true
}

type trafficKind int

const (
	trafficValues trafficKind = iota + 1
	trafficBinary
	trafficCoin
)

// classify maps a message to the value-dissemination plane, a binary
// instance, or the coin plane.
func (n *Node) classify(m types.Message) (int, trafficKind) {
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		if p.ID.Tag.Seq >= valueNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.DecidePayload:
		return p.Instance, trafficBinary
	case *types.CoinSharePayload:
		return 0, trafficCoin
	default:
		return 0, trafficBinary
	}
}

// vote starts binary instance idx with the given proposal, if this node has
// not voted there yet, and replays buffered traffic into it.
func (n *Node) vote(idx int, v types.Value) []types.Message {
	if n.voted[idx] {
		return nil
	}
	n.voted[idx] = true
	bin, err := core.New(core.Config{
		Me:       n.cfg.Me,
		Peers:    n.cfg.Peers,
		Spec:     n.spec,
		Coin:     n.cfg.NewCoin(idx),
		Proposal: v,
		Instance: idx,
		Recorder: n.cfg.Recorder,
	})
	if err != nil {
		// Config is derived from our own validated Config; this cannot
		// fail for valid binary values.
		panic(fmt.Sprintf("acs: starting BA_%d: %v", idx, err))
	}
	n.bins[idx] = bin
	out := bin.Start()
	for _, m := range n.pending[idx] {
		out = append(out, bin.Deliver(m)...)
	}
	delete(n.pending, idx)
	return out
}

// harvest collects freshly decided instances, triggers the 0-voting phase,
// routes coin shares, and assembles the final output.
func (n *Node) harvest() []types.Message {
	var out []types.Message
	for idx, bin := range n.bins {
		if _, seen := n.decided[idx]; seen {
			continue
		}
		if v, ok := bin.Decided(); ok {
			n.decided[idx] = v
			if v == types.One {
				n.ones++
			}
			n.record(trace.Event{Kind: trace.KindNote, P: n.cfg.Me, Round: idx,
				Note: fmt.Sprintf("BA_%d decided %v", idx, v)})
		}
	}
	// Phase 3: n−f inclusions reached — vote 0 everywhere else.
	if n.ones >= n.spec.Quorum() {
		for idx := 1; idx <= n.spec.N(); idx++ {
			out = append(out, n.vote(idx, types.Zero)...)
		}
	}
	// Completion: all instances decided and all included inputs delivered.
	if !n.done && len(n.decided) == n.spec.N() {
		for idx := 1; idx <= n.spec.N(); idx++ {
			if n.decided[idx] == types.One {
				if _, ok := n.inputs[idx]; !ok {
					return out // an included input is still in flight
				}
			}
		}
		n.done = true
		for idx := 1; idx <= n.spec.N(); idx++ {
			if n.decided[idx] == types.One {
				n.output = append(n.output, Proposal{
					Proposer: n.cfg.Peers[idx-1],
					Value:    n.inputs[idx],
				})
			}
		}
		sort.Slice(n.output, func(i, j int) bool {
			return n.output[i].Proposer < n.output[j].Proposer
		})
	}
	return out
}

// indexOf returns the 1-based index of p in the peer list (0 if absent).
func (n *Node) indexOf(p types.ProcessID) int {
	for i, q := range n.cfg.Peers {
		if q == p {
			return i + 1
		}
	}
	return 0
}

func (n *Node) record(e trace.Event) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.Record(e)
	}
}
