// Package acs implements Asynchronous Common Subset (Ben-Or, Kelmer, Rabin
// PODC 1994) on top of this repository's two primitives — exactly the
// construction that HoneyBadgerBFT (CCS 2016) later industrialized, and the
// reason Bracha's PODC-84 building blocks are called the basis of modern
// asynchronous BFT.
//
// Every process contributes an arbitrary byte-string input; all correct
// processes output the *same* subset of at least n−f inputs. The protocol:
//
//  1. Each process disseminates its input with Bracha reliable broadcast.
//  2. For every process j there is one binary consensus instance BA_j
//     ("does j's input make it into the subset?"). A process votes 1 in
//     BA_j as soon as it rbc-delivers j's input.
//  3. Once n−f instances have decided 1, the process votes 0 in every
//     instance it has not voted in yet.
//  4. When all n instances have decided, the output is the inputs of the
//     instances that decided 1 (waiting, where needed, for their RBC
//     deliveries — guaranteed by binary validity + RBC totality: a 1
//     decision means some correct process delivered that input).
//
// Each BA_j is a full Bracha randomized consensus node (internal/core)
// namespaced by instance — n+1 protocols multiplexed over one network, with
// no change to the underlying implementations.
package acs

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/coin"
	"repro/internal/core"
	"repro/internal/quorum"
	"repro/internal/rbc"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/types"
)

// valueNS is the Tag.Seq namespace for input dissemination; binary
// instances use Seq 1..n. It bounds the number of processes, comfortably.
const valueNS = 1 << 20

// Proposal is one subset member: a process's contributed input.
type Proposal struct {
	Proposer types.ProcessID
	Value    string
}

// Config configures an ACS node.
type Config struct {
	// Me is this process; Peers lists all processes including Me.
	Me    types.ProcessID
	Peers []types.ProcessID
	// Spec is the failure assumption.
	Spec quorum.Spec
	// NewCoin builds the coin for one binary instance. Instances must not
	// share coin state; for the common coin give every instance its own
	// dealer. Required.
	NewCoin func(instance int) coin.Coin
	// Input is this process's contribution.
	Input string
	// Coded switches input dissemination — the one plane carrying large
	// bodies — to erasure-coded reliable broadcast (see internal/rbc). The
	// binary instances stay uncoded: their bodies are single step messages,
	// smaller than a fragment's checksum vector. The agreed subset is
	// byte-identical either way.
	Coded bool
	// Window is the per-round retention window handed to every binary
	// instance (0 = the core default); see core.Config.Window.
	Window int
	// Recorder, when enabled, receives protocol events.
	Recorder *trace.Recorder
	// Telemetry, when non-nil, is forwarded to the input-dissemination
	// broadcaster and every binary instance, so RBC quorum marks and
	// round→decide marks flow from all n+1 multiplexed protocols into one
	// sink (see sim.Telemetry).
	Telemetry *sim.Telemetry
}

// Node is one ACS participant. Deterministic state machine (sim.Node); not
// safe for concurrent use.
//
// All per-instance state lives in dense tables indexed by proposer index
// (1..n): instance lookup on the delivery path is an array index, and
// iteration order (coin fan-out, decision harvest, output assembly) is the
// peer order — deterministic by construction, where the seed's map ranges
// relied on emissions being order-insensitive.
type Node struct {
	cfg  Config
	spec quorum.Spec

	values *rbc.Broadcaster // input dissemination

	bins     []*core.Node      // binary instance per proposer index (1-based)
	pending  [][]types.Message // traffic for instances not yet started
	inputs   []string          // rbc-delivered inputs by proposer index
	hasInput []bool
	decided  []types.Value // binary decisions by proposer index
	resolved []bool        // decided[idx] is set
	voted    []bool        // instances this node has an opinion in
	ones     int           // instances decided 1
	resolves int           // instances decided (either way)
	output   []Proposal
	done     bool

	// The embedded recycled output buffer (see sim.OutBuffer): the
	// simulator hands consumed slices back and every delivery appends into
	// the same backing array. The inner consensus nodes recycle the same
	// way — their emissions are copied into out and the slices returned to
	// them (deliverBin) — so a steady-state ACS delivery allocates nothing
	// at any layer.
	sim.OutBuffer
}

// Config errors.
var (
	ErrNoCoinFactory = errors.New("acs: config requires NewCoin")
	ErrBadPeers      = errors.New("acs: peers must include me and match spec size")
)

// New creates an ACS node.
func New(cfg Config) (*Node, error) {
	if cfg.NewCoin == nil {
		return nil, ErrNoCoinFactory
	}
	if len(cfg.Peers) != cfg.Spec.N() || len(cfg.Peers) >= valueNS {
		return nil, fmt.Errorf("%w: %d peers for %v", ErrBadPeers, len(cfg.Peers), cfg.Spec)
	}
	found := false
	for _, p := range cfg.Peers {
		if p == cfg.Me {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: %v not in peers", ErrBadPeers, cfg.Me)
	}
	n := cfg.Spec.N()
	newRBC := rbc.New
	if cfg.Coded {
		newRBC = rbc.NewCoded
	}
	values := newRBC(cfg.Me, cfg.Peers, cfg.Spec)
	values.SetTelemetry(cfg.Telemetry)
	return &Node{
		cfg:      cfg,
		spec:     cfg.Spec,
		values:   values,
		bins:     make([]*core.Node, n+1),
		pending:  make([][]types.Message, n+1),
		inputs:   make([]string, n+1),
		hasInput: make([]bool, n+1),
		decided:  make([]types.Value, n+1),
		resolved: make([]bool, n+1),
		voted:    make([]bool, n+1),
	}, nil
}

var (
	_ sim.Node     = (*Node)(nil)
	_ sim.Recycler = (*Node)(nil)
)

// ID implements sim.Node.
func (n *Node) ID() types.ProcessID { return n.cfg.Me }

// Done implements sim.Node. An ACS node never reports done: after producing
// its output it keeps serving RBC echoes and consensus traffic so laggards
// can finish (the caller stops the network once every correct node has
// output).
func (n *Node) Done() bool { return false }

// Start implements sim.Node: disseminate this process's input.
func (n *Node) Start() []types.Message {
	idx := n.indexOf(n.cfg.Me)
	return n.values.AppendBroadcast(n.Take(), types.Tag{Seq: valueNS + idx}, n.cfg.Input)
}

// Deliver implements sim.Node.
func (n *Node) Deliver(m types.Message) []types.Message {
	out := n.Take()
	switch inst, kind := n.classify(m); kind {
	case trafficValues:
		var deliveries []rbc.Delivery
		switch p := m.Payload.(type) {
		case *types.RBCPayload:
			out, deliveries = n.values.AppendHandle(out, m.From, p)
		case *types.RBCFragPayload:
			out, deliveries = n.values.AppendHandleFrag(out, m.From, p)
		case *types.RBCSumPayload:
			out, deliveries = n.values.AppendHandleSum(out, m.From, p)
		}
		for _, d := range deliveries {
			idx := d.ID.Tag.Seq - valueNS
			if idx < 1 || idx > n.spec.N() || idx != n.indexOf(d.ID.Sender) {
				continue // input instances are bound to their proposer
			}
			if n.hasInput[idx] {
				continue
			}
			n.hasInput[idx] = true
			n.inputs[idx] = d.Body
			// The input is stored; if the dissemination instance is already
			// terminal its tallies are dead weight — compact it to a digest
			// record (a no-op if echoes are still owed; see internal/rbc's
			// windowing contract).
			n.values.Compact(d.ID)
			// Seeing j's input is the trigger to vote 1 in BA_j.
			out = n.vote(out, idx, types.One)
		}
	case trafficCoin:
		// Coin shares carry a round but no instance; with per-instance
		// dealers the MACs bind each share to its dealer, so fan them to
		// every open instance — the right one accepts, the rest reject.
		for idx := 1; idx <= n.spec.N(); idx++ {
			if bin := n.bins[idx]; bin != nil {
				out = n.deliverBin(out, bin, m)
			}
		}
	case trafficBinary:
		switch {
		case inst < 1 || inst > n.spec.N():
			// Not a plausible instance; ignore.
		case n.bins[inst] != nil:
			out = n.deliverBin(out, n.bins[inst], m)
		case !n.voted[inst]:
			// Traffic for an instance this node has no opinion in yet:
			// buffer until an input arrives (vote 1) or the 0-voting phase
			// starts.
			n.pending[inst] = append(n.pending[inst], m)
		}
	}
	return n.harvest(out)
}

// deliverBin feeds one message to a binary instance, copies its emissions
// into out, and hands the instance's slice straight back for reuse — the
// inner nodes' zero-allocation loop, with this Node playing the simulator's
// recycling role.
func (n *Node) deliverBin(out []types.Message, bin *core.Node, m types.Message) []types.Message {
	msgs := bin.Deliver(m)
	out = append(out, msgs...)
	bin.Recycle(msgs)
	return out
}

// Output returns the agreed subset once available: proposals of every
// instance that decided 1, ordered by proposer.
func (n *Node) Output() ([]Proposal, bool) {
	if !n.done {
		return nil, false
	}
	return append([]Proposal(nil), n.output...), true
}

type trafficKind int

const (
	trafficValues trafficKind = iota + 1
	trafficBinary
	trafficCoin
)

// classify maps a message to the value-dissemination plane, a binary
// instance, or the coin plane.
func (n *Node) classify(m types.Message) (int, trafficKind) {
	switch p := m.Payload.(type) {
	case *types.RBCPayload:
		if p.ID.Tag.Seq >= valueNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.RBCFragPayload:
		if p.ID.Tag.Seq >= valueNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.RBCSumPayload:
		if p.ID.Tag.Seq >= valueNS {
			return 0, trafficValues
		}
		return p.ID.Tag.Seq, trafficBinary
	case *types.DecidePayload:
		return p.Instance, trafficBinary
	case *types.CoinSharePayload:
		return 0, trafficCoin
	default:
		return 0, trafficBinary
	}
}

// vote starts binary instance idx with the given proposal, if this node has
// not voted there yet, and replays buffered traffic into it, appending all
// emissions to out.
func (n *Node) vote(out []types.Message, idx int, v types.Value) []types.Message {
	if n.voted[idx] {
		return out
	}
	n.voted[idx] = true
	bin, err := core.New(core.Config{
		Me:        n.cfg.Me,
		Peers:     n.cfg.Peers,
		Spec:      n.spec,
		Coin:      n.cfg.NewCoin(idx),
		Proposal:  v,
		Instance:  idx,
		Window:    n.cfg.Window,
		Recorder:  n.cfg.Recorder,
		Telemetry: n.cfg.Telemetry,
	})
	if err != nil {
		// Config is derived from our own validated Config; this cannot
		// fail for valid binary values.
		panic(fmt.Sprintf("acs: starting BA_%d: %v", idx, err))
	}
	n.bins[idx] = bin
	msgs := bin.Start()
	out = append(out, msgs...)
	bin.Recycle(msgs)
	for _, m := range n.pending[idx] {
		out = n.deliverBin(out, bin, m)
	}
	n.pending[idx] = nil
	return out
}

// harvest collects freshly decided instances, triggers the 0-voting phase,
// and assembles the final output, appending all emissions to out.
func (n *Node) harvest(out []types.Message) []types.Message {
	for idx := 1; idx <= n.spec.N(); idx++ {
		bin := n.bins[idx]
		if bin == nil || n.resolved[idx] {
			continue
		}
		if v, ok := bin.Decided(); ok {
			n.resolved[idx] = true
			n.decided[idx] = v
			n.resolves++
			if v == types.One {
				n.ones++
			}
			if n.cfg.Recorder.Enabled() {
				n.record(trace.Event{Kind: trace.KindNote, P: n.cfg.Me, Round: idx,
					Note: fmt.Sprintf("BA_%d decided %v", idx, v)})
			}
		}
	}
	// Phase 3: n−f inclusions reached — vote 0 everywhere else.
	if n.ones >= n.spec.Quorum() {
		for idx := 1; idx <= n.spec.N(); idx++ {
			out = n.vote(out, idx, types.Zero)
		}
	}
	// Completion: all instances decided and all included inputs delivered.
	if !n.done && n.resolves == n.spec.N() {
		for idx := 1; idx <= n.spec.N(); idx++ {
			if n.decided[idx] == types.One && !n.hasInput[idx] {
				return out // an included input is still in flight
			}
		}
		n.done = true
		for idx := 1; idx <= n.spec.N(); idx++ {
			// Output is assembled; any dissemination instance that became
			// terminal after its input landed can compact now.
			n.values.Compact(types.InstanceID{
				Sender: n.cfg.Peers[idx-1],
				Tag:    types.Tag{Seq: valueNS + idx},
			})
			if n.decided[idx] == types.One {
				n.output = append(n.output, Proposal{
					Proposer: n.cfg.Peers[idx-1],
					Value:    n.inputs[idx],
				})
			}
		}
		sort.Slice(n.output, func(i, j int) bool {
			return n.output[i].Proposer < n.output[j].Proposer
		})
	}
	return out
}

// indexOf returns the 1-based index of p in the peer list (0 if absent).
func (n *Node) indexOf(p types.ProcessID) int {
	for i, q := range n.cfg.Peers {
		if q == p {
			return i + 1
		}
	}
	return 0
}

func (n *Node) record(e trace.Event) {
	if n.cfg.Recorder.Enabled() {
		n.cfg.Recorder.Record(e)
	}
}
