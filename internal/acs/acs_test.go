package acs

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/coin"
	"repro/internal/quorum"
	"repro/internal/sim"
	"repro/internal/types"
)

// buildACS wires n ACS nodes (the last `silentByz` ones absent) into a
// simulated network and runs to completion.
func buildACS(t *testing.T, n, f, silentByz int, ck string, seed int64) []*Node {
	return buildACSMode(t, n, f, silentByz, ck, seed, false)
}

func buildACSMode(t *testing.T, n, f, silentByz int, ck string, seed int64, coded bool) []*Node {
	t.Helper()
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)

	var newCoin func(p types.ProcessID) func(int) coin.Coin
	switch ck {
	case "local":
		newCoin = func(p types.ProcessID) func(int) coin.Coin {
			return func(inst int) coin.Coin {
				return coin.NewLocal(seed + int64(p)*1000 + int64(inst))
			}
		}
	case "common":
		dealers := make([]*coin.Dealer, n+1)
		for i := 1; i <= n; i++ {
			dealers[i] = coin.NewDealer(spec, seed+int64(i)*77)
		}
		newCoin = func(p types.ProcessID) func(int) coin.Coin {
			return func(inst int) coin.Coin {
				return coin.NewCommon(p, peers, dealers[inst])
			}
		}
	default:
		t.Fatalf("unknown coin kind %q", ck)
	}

	net, err := sim.New(sim.Config{Scheduler: sim.UniformDelay{Min: 1, Max: 20}, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]*Node, 0, n-silentByz)
	for i, p := range peers[:n-silentByz] {
		nd, err := New(Config{
			Me: p, Peers: peers, Spec: spec,
			NewCoin: newCoin(p),
			Input:   fmt.Sprintf("input-of-%v-#%d", p, i),
			Coded:   coded,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, nd)
		if err := net.Add(nd); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := net.Run(func() bool {
		for _, nd := range nodes {
			if _, ok := nd.Output(); !ok {
				return false
			}
		}
		return true
	}); err != nil {
		t.Fatal(err)
	}
	return nodes
}

func TestACSAllCorrectAgreeOnSubset(t *testing.T) {
	for _, ck := range []string{"local", "common"} {
		t.Run(ck, func(t *testing.T) {
			nodes := buildACS(t, 4, 1, 0, ck, 3)
			first, ok := nodes[0].Output()
			if !ok {
				t.Fatal("no output")
			}
			if len(first) < 3 { // at least n−f inputs make it in
				t.Fatalf("subset too small: %d < n-f = 3", len(first))
			}
			for _, nd := range nodes[1:] {
				got, ok := nd.Output()
				if !ok {
					t.Fatalf("%v has no output", nd.ID())
				}
				if !reflect.DeepEqual(got, first) {
					t.Fatalf("subset mismatch:\n%v\nvs\n%v", got, first)
				}
			}
			// Every included value really is the proposer's input.
			for _, p := range first {
				want := fmt.Sprintf("input-of-%v-#%d", p.Proposer, int(p.Proposer)-1)
				if p.Value != want {
					t.Errorf("proposer %v value %q, want %q", p.Proposer, p.Value, want)
				}
			}
		})
	}
}

func TestACSCodedAgreesOnSubset(t *testing.T) {
	// Input dissemination over erasure-coded RBC: the agreement and output
	// contracts are unchanged — same-subset at every node, every included
	// value genuine.
	nodes := buildACSMode(t, 7, 2, 0, "common", 5, true)
	first, ok := nodes[0].Output()
	if !ok {
		t.Fatal("no output")
	}
	if len(first) < 5 {
		t.Fatalf("subset too small: %d < n-f = 5", len(first))
	}
	for _, nd := range nodes[1:] {
		got, ok := nd.Output()
		if !ok {
			t.Fatalf("%v has no output", nd.ID())
		}
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("subset mismatch:\n%v\nvs\n%v", got, first)
		}
	}
	for _, p := range first {
		want := fmt.Sprintf("input-of-%v-#%d", p.Proposer, int(p.Proposer)-1)
		if p.Value != want {
			t.Errorf("proposer %v value %q, want %q", p.Proposer, p.Value, want)
		}
	}
}

func TestACSWithSilentByzantine(t *testing.T) {
	// f silent processes: the subset still contains ≥ n−f inputs, all from
	// live processes, and all correct nodes agree.
	nodes := buildACS(t, 7, 2, 2, "common", 11)
	first, _ := nodes[0].Output()
	if len(first) < 5 {
		t.Fatalf("subset too small with silent faults: %d", len(first))
	}
	for _, p := range first {
		if p.Proposer > 5 {
			t.Errorf("silent process %v made it into the subset with value %q", p.Proposer, p.Value)
		}
	}
	for _, nd := range nodes[1:] {
		got, _ := nd.Output()
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("subset mismatch at %v", nd.ID())
		}
	}
}

func TestACSManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep")
	}
	for seed := int64(0); seed < 10; seed++ {
		nodes := buildACS(t, 4, 1, 1, "common", seed)
		first, _ := nodes[0].Output()
		for _, nd := range nodes[1:] {
			got, _ := nd.Output()
			if !reflect.DeepEqual(got, first) {
				t.Fatalf("seed %d: subset mismatch", seed)
			}
		}
	}
}

func TestACSConfigValidation(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	factory := func(int) coin.Coin { return coin.NewIdeal(1) }
	good := Config{Me: 1, Peers: peers, Spec: spec, NewCoin: factory, Input: "x"}

	tests := []struct {
		name   string
		mutate func(*Config)
		want   error
	}{
		{"missing factory", func(c *Config) { c.NewCoin = nil }, ErrNoCoinFactory},
		{"wrong peers", func(c *Config) { c.Peers = peers[:2] }, ErrBadPeers},
		{"me absent", func(c *Config) { c.Me = 9 }, ErrBadPeers},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := good
			tt.mutate(&cfg)
			if _, err := New(cfg); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestACSNodeBasics(t *testing.T) {
	spec := quorum.MustNew(4, 1)
	peers := types.Processes(4)
	nd, err := New(Config{
		Me: 2, Peers: peers, Spec: spec,
		NewCoin: func(int) coin.Coin { return coin.NewIdeal(1) },
		Input:   "hello",
	})
	if err != nil {
		t.Fatal(err)
	}
	if nd.ID() != 2 {
		t.Errorf("ID = %v", nd.ID())
	}
	if nd.Done() {
		t.Error("ACS nodes must never report done")
	}
	if _, ok := nd.Output(); ok {
		t.Error("output available before running")
	}
	msgs := nd.Start()
	if len(msgs) != 4 {
		t.Fatalf("start sent %d messages, want 4 (input dissemination)", len(msgs))
	}
	p, ok := msgs[0].Payload.(*types.RBCPayload)
	if !ok || p.ID.Tag.Seq != valueNS+2 || p.Body != "hello" {
		t.Fatalf("unexpected dissemination payload %v", msgs[0].Payload)
	}
	// Garbage in, nothing out.
	if out := nd.Deliver(types.Message{From: 1, To: 2, Payload: &types.PlainPayload{Round: 1, Step: types.Step1}}); len(out) != 0 {
		t.Errorf("plain payload produced output: %v", out)
	}
}

// BenchmarkACSDelivery measures the full per-delivery cost of the ACS
// stack on the simulator: the value-dissemination RBC plane, up to n
// multiplexed binary consensus instances, and the decision harvest, all
// through recycled output buffers. One agreement quiesces after a bounded
// number of deliveries, so fresh networks are chained until exactly b.N
// deliveries ran; per-agreement setup amortizes across its hundreds of
// thousands of deliveries. Run with -benchmem: expect 0 allocs/op.
func BenchmarkACSDelivery(b *testing.B) {
	const n, f = 16, 5
	spec := quorum.MustNew(n, f)
	peers := types.Processes(n)
	b.ReportAllocs()
	b.ResetTimer()
	remaining := b.N
	for seed := int64(1); remaining > 0; seed++ {
		net, err := sim.New(sim.Config{
			Scheduler:     sim.UniformDelay{Min: 1, Max: 20},
			Seed:          seed,
			MaxDeliveries: remaining,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range peers {
			p := p
			nd, err := New(Config{
				Me: p, Peers: peers, Spec: spec,
				NewCoin: func(inst int) coin.Coin {
					return coin.NewLocal(seed + int64(p)*1000 + int64(inst))
				},
				Input: "batch",
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := net.Add(nd); err != nil {
				b.Fatal(err)
			}
		}
		stats, err := net.Run(nil)
		if err != nil {
			b.Fatal(err)
		}
		if stats.Delivered == 0 {
			b.Fatal("agreement made no progress")
		}
		remaining -= stats.Delivered
	}
}

// TestACSSteadyStateDeliveryAllocations pins the strict per-delivery hot
// path of a warm ACS node at exactly zero allocations: sub-threshold and
// duplicate echo counting on the dissemination plane — the dominant
// delivery of any big-n agreement — must produce no garbage.
func TestACSSteadyStateDeliveryAllocations(t *testing.T) {
	nodes := buildACS(t, 4, 1, 0, "local", 8)
	nd := nodes[0]
	echo := types.Message{From: 2, To: nd.ID(), Payload: &types.RBCPayload{
		Phase: types.KindRBCEcho,
		ID:    types.InstanceID{Sender: 1, Tag: types.Tag{Seq: valueNS + 1}},
		Body:  "replayed-body",
	}}
	// First delivery may create the body's tally; every later one is the
	// steady-state bit-test path.
	nd.Recycle(nd.Deliver(echo))
	allocs := testing.AllocsPerRun(200, func() {
		nd.Recycle(nd.Deliver(echo))
	})
	if allocs != 0 {
		t.Errorf("steady-state ACS delivery cost %.1f allocs/op, want 0", allocs)
	}
}

func TestACSOutputIsCopy(t *testing.T) {
	nodes := buildACS(t, 4, 1, 0, "local", 8)
	a, _ := nodes[0].Output()
	if len(a) == 0 {
		t.Fatal("empty output")
	}
	a[0].Value = "tampered"
	b, _ := nodes[0].Output()
	if b[0].Value == "tampered" {
		t.Error("Output must return a copy")
	}
}
