package wire

import (
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func allPayloads() []types.Payload {
	return []types.Payload{
		&types.RBCPayload{
			Phase: types.KindRBCSend,
			ID:    types.InstanceID{Sender: 3, Tag: types.Tag{Round: 2, Step: types.Step1}},
			Body:  "hello",
		},
		&types.RBCPayload{
			Phase: types.KindRBCEcho,
			ID:    types.InstanceID{Sender: 1, Tag: types.Tag{Seq: 42}},
			Body:  "",
		},
		&types.RBCPayload{
			Phase: types.KindRBCReady,
			ID:    types.InstanceID{Sender: 250, Tag: types.Tag{Round: 100, Step: types.Step3}},
			Body:  string([]byte{0, 1, 2, 255}),
		},
		&types.CoinSharePayload{Round: 9, Share: "sh", MAC: "mac-bytes"},
		&types.CoinSharePayload{Round: 0, Share: "", MAC: ""},
		&types.DecidePayload{V: types.Zero},
		&types.DecidePayload{V: types.One},
		&types.PlainPayload{Round: 4, Step: types.Step2, V: types.One, D: true},
		&types.PlainPayload{Round: 1, Step: types.Step1, V: types.Zero, Q: true},
		&types.PlainPayload{Round: 7, Step: types.Step3, V: types.One},
		&types.CkptVotePayload{Slot: 64, StateDigest: 0xDEADBEEFCAFE, LogDigest: ^uint64(0), MACs: []string{"m1", "m2", "", "m4"}},
		&types.CkptVotePayload{Slot: 0, StateDigest: 0, LogDigest: 0},
		&types.CkptRequestPayload{Slot: 37, Nonce: 4},
		&types.CkptCertPayload{
			Slot: 128, StateDigest: 1, LogDigest: 2,
			Voters:   []types.ProcessID{1, 3, 4},
			VoteMACs: [][]string{{"a1", "a2"}, {"b1", "b2"}, {"c1", "c2"}},
			Snapshot: "k=v\n",
		},
		&types.CkptCertPayload{Slot: 8, StateDigest: 9, LogDigest: 10},
		&types.RBCFragPayload{
			ID:    types.InstanceID{Sender: 2, Tag: types.Tag{Seq: 1<<20 + 5}},
			Index: 1, TotalLen: 77,
			Sums: strings.Repeat("\x11", 3*SumLen),
			Frag: "fragment bytes",
		},
		&types.RBCFragPayload{
			ID:    types.InstanceID{Sender: 255, Tag: types.Tag{Round: 3, Step: types.Step2, Seq: 0}},
			Index: 0, TotalLen: 0,
			Sums: strings.Repeat("\x00", SumLen),
			Frag: "\x00",
		},
		&types.RBCSumPayload{
			ID:  types.InstanceID{Sender: 7, Tag: types.Tag{Seq: 42}},
			Sum: strings.Repeat("\xAB", SumLen),
		},
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	for _, p := range allPayloads() {
		t.Run(p.Kind().String(), func(t *testing.T) {
			buf, err := EncodePayload(p)
			if err != nil {
				t.Fatalf("EncodePayload: %v", err)
			}
			got, err := DecodePayload(buf)
			if err != nil {
				t.Fatalf("DecodePayload: %v", err)
			}
			if !reflect.DeepEqual(got, p) {
				t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, p)
			}
		})
	}
}

func TestMessageRoundTrip(t *testing.T) {
	for _, p := range allPayloads() {
		m := types.Message{From: 5, To: 11, Payload: p}
		buf, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("EncodeMessage: %v", err)
		}
		got, err := DecodeMessage(buf)
		if err != nil {
			t.Fatalf("DecodeMessage: %v", err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip mismatch:\n got %#v\nwant %#v", got, m)
		}
	}
}

func TestEncodeRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		p    types.Payload
		want error
	}{
		{"nil payload", nil, ErrBadValue},
		{"cert voters/MAC-vectors mismatch", &types.CkptCertPayload{Voters: []types.ProcessID{1}}, ErrBadValue},
		{"bad RBC phase", &types.RBCPayload{Phase: types.KindDecide}, ErrBadValue},
		{"bad decide value", &types.DecidePayload{V: 7}, ErrBadValue},
		{"bad plain value", &types.PlainPayload{V: 9}, ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EncodePayload(tt.p); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	good, err := EncodePayload(&types.DecidePayload{V: types.One})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		buf  []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"unknown kind", []byte{0xEE}, ErrUnknownKind},
		{"truncated decide", []byte{byte(types.KindDecide)}, ErrTruncated},
		{"bad decide value", []byte{byte(types.KindDecide), 9}, ErrBadValue},
		{"trailing bytes", append(append([]byte{}, good...), 0x00), ErrTrailing},
		{"truncated rbc", []byte{byte(types.KindRBCSend), 2}, ErrTruncated},
		{"truncated coin", []byte{byte(types.KindCoinShare)}, ErrTruncated},
		{"truncated plain", []byte{byte(types.KindPlain), 2, 2, 0}, ErrTruncated},
		{"bad plain flags", []byte{byte(types.KindPlain), 2, 2, 0, 9}, ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodePayload(tt.buf); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestDecodeRejectsHostileLength(t *testing.T) {
	// RBC send with an absurd body length prefix but no body.
	buf := []byte{byte(types.KindRBCSend)}
	buf = appendInt(buf, 1) // sender
	buf = appendInt(buf, 1) // round
	buf = appendInt(buf, 1) // step
	buf = appendInt(buf, 0) // seq
	buf = append(buf, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F)
	if _, err := DecodePayload(buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("error = %v, want ErrTooLarge", err)
	}
}

func TestStepRoundTrip(t *testing.T) {
	tests := []types.StepMessage{
		{Round: 1, Step: types.Step1, V: types.Zero},
		{Round: 1, Step: types.Step2, V: types.One},
		{Round: 3, Step: types.Step3, V: types.One, D: true},
		{Round: 1000000, Step: types.Step3, V: types.Zero, D: true},
	}
	for _, s := range tests {
		body, err := EncodeStep(s)
		if err != nil {
			t.Fatalf("EncodeStep(%v): %v", s, err)
		}
		got, err := DecodeStep(body)
		if err != nil {
			t.Fatalf("DecodeStep(%q): %v", body, err)
		}
		if got != s {
			t.Errorf("round trip: got %v, want %v", got, s)
		}
	}
}

func TestEncodeStepRejectsInvalid(t *testing.T) {
	tests := []struct {
		name string
		s    types.StepMessage
	}{
		{"round zero", types.StepMessage{Round: 0, Step: types.Step1, V: types.Zero}},
		{"bad step", types.StepMessage{Round: 1, Step: 5, V: types.Zero}},
		{"bad value", types.StepMessage{Round: 1, Step: types.Step1, V: 3}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EncodeStep(tt.s); !errors.Is(err, ErrBadValue) {
				t.Errorf("error = %v, want ErrBadValue", err)
			}
		})
	}
}

func TestDecodeStepRejectsMalformed(t *testing.T) {
	tests := []struct {
		name string
		body string
	}{
		{"empty", ""},
		{"short", "\x02"},
		{"bad step", string([]byte{2, 9, 0, 0})},
		{"bad value", string([]byte{2, 1, 9, 0})},
		{"bad flags", string([]byte{2, 1, 0, 2})},
		{"round zero", string([]byte{0, 1, 0, 0})},
		{"negative round", string([]byte{1, 1, 0, 0})}, // varint 1 decodes as -1 zig-zag
		{"trailing", string([]byte{2, 1, 0, 0, 0})},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeStep(tt.body); err == nil {
				t.Errorf("DecodeStep(%q) accepted malformed input", tt.body)
			}
		})
	}
}

// TestStepEncodingInjective: distinct step messages must map to distinct
// bodies (the RBC echo-counting keys on body equality).
func TestStepEncodingInjective(t *testing.T) {
	seen := map[string]types.StepMessage{}
	for round := 1; round <= 50; round++ {
		for _, step := range []types.Step{types.Step1, types.Step2, types.Step3} {
			for _, v := range []types.Value{types.Zero, types.One} {
				for _, d := range []bool{false, true} {
					if d && step != types.Step3 {
						continue // not encodable: D exists only in step 3
					}
					s := types.StepMessage{Round: round, Step: step, V: v, D: d}
					body, err := EncodeStep(s)
					if err != nil {
						t.Fatal(err)
					}
					if prev, dup := seen[body]; dup {
						t.Fatalf("collision: %v and %v both encode to %q", prev, s, body)
					}
					seen[body] = s
				}
			}
		}
	}
}

func TestBatchRoundTrip(t *testing.T) {
	tests := [][]string{
		{"a"},
		{""},
		{"set k v", "get k", "del k"},
		{string([]byte{0, 1, 2, 255}), "", "plain"},
		make([]string, 64),
	}
	for _, cmds := range tests {
		body, err := EncodeBatch(cmds)
		if err != nil {
			t.Fatalf("EncodeBatch(%q): %v", cmds, err)
		}
		got, err := DecodeBatch(body)
		if err != nil {
			t.Fatalf("DecodeBatch(%q): %v", body, err)
		}
		if !reflect.DeepEqual(got, cmds) {
			t.Errorf("round trip: got %q, want %q", got, cmds)
		}
	}
}

func TestEncodeBatchRejectsInvalid(t *testing.T) {
	if _, err := EncodeBatch(nil); !errors.Is(err, ErrBadValue) {
		t.Errorf("empty batch: error = %v, want ErrBadValue", err)
	}
	if _, err := EncodeBatch(make([]string, MaxBatchCommands+1)); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized count: error = %v, want ErrTooLarge", err)
	}
	big := string(make([]byte, MaxBatchBytes))
	if _, err := EncodeBatch([]string{big, "x"}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized payload: error = %v, want ErrTooLarge", err)
	}
}

func TestDecodeBatchRejectsMalformed(t *testing.T) {
	kind := byte(types.KindBatch)
	tests := []struct {
		name string
		body string
		want error
	}{
		{"empty", "", ErrBadValue},
		{"wrong kind", "\x01\x01\x01a", ErrBadValue},
		{"no count", string([]byte{kind}), ErrTruncated},
		{"zero count", string([]byte{kind, 0}), ErrBadValue},
		{"hostile count", string([]byte{kind, 0xFF, 0xFF, 0x7F}), ErrTooLarge},
		{"count beyond body", string([]byte{kind, 5, 1, 'a'}), ErrTruncated},
		{"truncated command", string([]byte{kind, 1, 4, 'a'}), ErrTruncated},
		{"trailing bytes", string([]byte{kind, 1, 1, 'a', 0}), ErrTrailing},
		// Count 1 encoded as a padded two-byte varint: same logical batch,
		// different bytes — must be rejected for body-equality soundness.
		{"non-canonical count", string([]byte{kind, 0x81, 0x00, 1, 'a'}), ErrBadValue},
		{"non-canonical length", string([]byte{kind, 1, 0x81, 0x00, 'a'}), ErrBadValue},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := DecodeBatch(tt.body); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestBatchEncodingInjective: distinct command sequences must map to
// distinct bodies — dissemination RBC keys on body equality, so a collision
// would let one broadcast commit two different command sequences.
func TestBatchEncodingInjective(t *testing.T) {
	seen := map[string][]string{}
	batches := [][]string{
		{"a"}, {"a", ""}, {"", "a"}, {"a", "b"}, {"ab"}, {"a", "b", ""},
		{"ab", ""}, {"", "ab"}, {"a\x00b"}, {"a", "\x00b"},
	}
	for _, cmds := range batches {
		body, err := EncodeBatch(cmds)
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[body]; dup {
			t.Fatalf("collision: %q and %q both encode to %q", prev, cmds, body)
		}
		seen[body] = cmds
	}
}

// TestPayloadPropertyRoundTrip fuzzes RBC payloads through the codec.
func TestPayloadPropertyRoundTrip(t *testing.T) {
	prop := func(sender uint16, round, seq int32, stepRaw uint8, body []byte, phaseRaw uint8) bool {
		phases := []types.Kind{types.KindRBCSend, types.KindRBCEcho, types.KindRBCReady}
		if len(body) > 1024 {
			body = body[:1024]
		}
		p := &types.RBCPayload{
			Phase: phases[int(phaseRaw)%3],
			ID: types.InstanceID{
				Sender: types.ProcessID(sender),
				Tag: types.Tag{
					Round: int(round),
					Step:  types.Step(stepRaw),
					Seq:   int(seq),
				},
			},
			Body: string(body),
		}
		buf, err := EncodePayload(p)
		if err != nil {
			return false
		}
		got, err := DecodePayload(buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(got, p)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestFragBoundaries exercises the fragment size seam at the exact limits:
// the largest legal fragment message must encode (and stay within
// MaxBodyLen), and every one-past-the-limit variant must be rejected with a
// typed error at encode time.
func TestFragBoundaries(t *testing.T) {
	id := types.InstanceID{Sender: 255, Tag: types.Tag{Round: 1 << 30, Step: types.Step3, Seq: 1 << 30}}
	maxSums := strings.Repeat("\xFF", MaxFragShards*SumLen)
	t.Run("maximal fragment fits MaxBodyLen", func(t *testing.T) {
		p := &types.RBCFragPayload{
			ID: id, Index: MaxFragShards - 1, TotalLen: MaxBodyLen,
			Sums: maxSums, Frag: strings.Repeat("\x7E", MaxFragLen),
		}
		buf, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("EncodePayload at the limit: %v", err)
		}
		if len(buf) > MaxBodyLen {
			t.Fatalf("maximal fragment encodes to %d bytes, exceeding MaxBodyLen %d", len(buf), MaxBodyLen)
		}
		got, err := DecodePayload(buf)
		if err != nil {
			t.Fatalf("DecodePayload at the limit: %v", err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Error("limit fragment round trip mismatch")
		}
	})
	t.Run("batch body in one fragment fits", func(t *testing.T) {
		// The seam the dissemination layer leans on: even the degenerate k=1
		// code must fit a maximal encoded batch body in a single fragment.
		cmds := make([]string, MaxBatchCommands)
		per := MaxBatchBytes / MaxBatchCommands
		for i := range cmds {
			cmds[i] = strings.Repeat("c", per)
		}
		body, err := EncodeBatch(cmds)
		if err != nil {
			t.Fatalf("EncodeBatch at the limit: %v", err)
		}
		if len(body) > MaxFragLen {
			t.Fatalf("maximal batch body (%d bytes) exceeds MaxFragLen (%d): the seam is broken", len(body), MaxFragLen)
		}
		p := &types.RBCFragPayload{ID: id, Index: 0, TotalLen: len(body), Sums: maxSums, Frag: body}
		if _, err := EncodePayload(p); err != nil {
			t.Fatalf("maximal batch body refused as a fragment: %v", err)
		}
	})
	oversize := []struct {
		name string
		p    types.Payload
		want error
	}{
		{"fragment one past MaxFragLen", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: 1, Sums: maxSums, Frag: strings.Repeat("x", MaxFragLen+1),
		}, ErrTooLarge},
		{"one checksum entry too many", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: 1, Sums: maxSums + strings.Repeat("\x00", SumLen), Frag: "x",
		}, ErrTooLarge},
		{"ragged checksum vector", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: 1, Sums: strings.Repeat("\x00", SumLen+1), Frag: "x",
		}, ErrBadValue},
		{"empty checksum vector", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: 1, Sums: "", Frag: "x",
		}, ErrBadValue},
		{"index out of range", &types.RBCFragPayload{
			ID: id, Index: 2, TotalLen: 1, Sums: strings.Repeat("\x00", 2*SumLen), Frag: "x",
		}, ErrBadValue},
		{"negative index", &types.RBCFragPayload{
			ID: id, Index: -1, TotalLen: 1, Sums: strings.Repeat("\x00", SumLen), Frag: "x",
		}, ErrBadValue},
		{"total length past MaxBodyLen", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: MaxBodyLen + 1, Sums: strings.Repeat("\x00", SumLen), Frag: "x",
		}, ErrBadValue},
		{"negative total length", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: -1, Sums: strings.Repeat("\x00", SumLen), Frag: "x",
		}, ErrBadValue},
		{"empty fragment", &types.RBCFragPayload{
			ID: id, Index: 0, TotalLen: 1, Sums: strings.Repeat("\x00", SumLen), Frag: "",
		}, ErrBadValue},
		{"short checksum key", &types.RBCSumPayload{ID: id, Sum: strings.Repeat("s", SumLen-1)}, ErrBadValue},
		{"long checksum key", &types.RBCSumPayload{ID: id, Sum: strings.Repeat("s", SumLen+1)}, ErrBadValue},
	}
	for _, tt := range oversize {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := EncodePayload(tt.p); !errors.Is(err, tt.want) {
				t.Errorf("error = %v, want %v", err, tt.want)
			}
		})
	}
}

// TestFragDecodeRejectsNonCanonical: a fragment whose varints are padded (or
// whose validation fails only at the semantic layer) must not parse even
// when structurally decodable.
func TestFragDecodeRejectsNonCanonical(t *testing.T) {
	p := &types.RBCFragPayload{
		ID:    types.InstanceID{Sender: 2, Tag: types.Tag{Seq: 9}},
		Index: 0, TotalLen: 4, Sums: strings.Repeat("\x22", SumLen), Frag: "abcd",
	}
	good, err := EncodePayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePayload(good); err != nil {
		t.Fatalf("canonical fragment must decode: %v", err)
	}
	// Pad the first varint (sender = 2 → zig-zag 4 → 0x04): the two-byte
	// encoding 0x84 0x00 denotes the same value.
	bad := append([]byte{good[0], 0x84, 0x00}, good[2:]...)
	if _, err := DecodePayload(bad); !errors.Is(err, ErrBadValue) {
		t.Errorf("padded-varint fragment error = %v, want ErrBadValue", err)
	}
	// Same for the checksum-key ready message.
	s := &types.RBCSumPayload{ID: p.ID, Sum: strings.Repeat("\x22", SumLen)}
	goodSum, err := EncodePayload(s)
	if err != nil {
		t.Fatal(err)
	}
	badSum := append([]byte{goodSum[0], 0x84, 0x00}, goodSum[2:]...)
	if _, err := DecodePayload(badSum); !errors.Is(err, ErrBadValue) {
		t.Errorf("padded-varint sum error = %v, want ErrBadValue", err)
	}
}

// TestPayloadSizeMatchesEncoder pins the arithmetic sizer to the real
// encoder across the full payload battery (plus messages): the simulator's
// bytes-on-wire metering is exactly what a transport would send.
func TestPayloadSizeMatchesEncoder(t *testing.T) {
	for _, p := range allPayloads() {
		buf, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("EncodePayload(%v): %v", p, err)
		}
		if got := PayloadSize(p); got != len(buf) {
			t.Errorf("PayloadSize(%v) = %d, encoder produced %d bytes", p, got, len(buf))
		}
		m := types.Message{From: 127, To: 128, Payload: p}
		mbuf, err := EncodeMessage(m)
		if err != nil {
			t.Fatal(err)
		}
		if got := MessageSize(m); got != len(mbuf) {
			t.Errorf("MessageSize = %d, encoder produced %d bytes", got, len(mbuf))
		}
	}
	if PayloadSize(nil) != 0 {
		t.Error("PayloadSize(nil) must be 0")
	}
}

// TestDecodeNeverPanics feeds random bytes to the decoder.
func TestDecodeNeverPanics(t *testing.T) {
	prop := func(buf []byte) bool {
		// Any outcome is fine except a panic, which quick would surface.
		_, _ = DecodePayload(buf)
		_, _ = DecodeMessage(buf)
		_, _ = DecodeStep(string(buf))
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
