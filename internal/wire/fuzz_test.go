package wire

import (
	"bytes"
	"testing"

	"repro/internal/types"
)

// FuzzDecodePayload: arbitrary bytes must never panic, and anything that
// decodes must re-encode to an equivalent payload (decode∘encode = id on
// the valid image).
func FuzzDecodePayload(f *testing.F) {
	for _, p := range []types.Payload{
		&types.DecidePayload{V: types.One, Instance: 3},
		&types.CoinSharePayload{Round: 2, Share: "s", MAC: "m"},
		&types.RBCPayload{Phase: types.KindRBCSend, ID: types.InstanceID{Sender: 1, Tag: types.Tag{Round: 1, Step: types.Step1}}, Body: "b"},
		&types.PlainPayload{Round: 1, Step: types.Step2, V: types.Zero, D: true},
	} {
		buf, err := EncodePayload(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return // malformed input is fine; panics are not
		}
		re, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("decoded payload failed to re-encode: %#v: %v", p, err)
		}
		back, err := DecodePayload(re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		buf1, _ := EncodePayload(back)
		if !bytes.Equal(re, buf1) {
			t.Fatalf("encoding not stable: %x vs %x", re, buf1)
		}
	})
}

// FuzzDecodeStep: step bodies are fully Byzantine-controlled; the decoder
// must never panic and must only accept well-formed steps.
func FuzzDecodeStep(f *testing.F) {
	for _, s := range []types.StepMessage{
		{Round: 1, Step: types.Step1, V: types.Zero},
		{Round: 7, Step: types.Step3, V: types.One, D: true},
	} {
		body, err := EncodeStep(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add("")
	f.Add("\x00\x00\x00\x00")

	f.Fuzz(func(t *testing.T, body string) {
		s, err := DecodeStep(body)
		if err != nil {
			return
		}
		if s.Round < 1 || !s.Step.Valid() || !s.V.Valid() || (s.D && s.Step != types.Step3) {
			t.Fatalf("decoder accepted malformed step %+v from %q", s, body)
		}
		re, err := EncodeStep(s)
		if err != nil {
			t.Fatalf("accepted step failed to re-encode: %v", err)
		}
		if re != body {
			t.Fatalf("encoding not canonical: %q vs %q", re, body)
		}
	})
}

// FuzzDecodeBatch: batch bodies are fully Byzantine-controlled RBC payloads;
// the decoder must never panic, must only accept bounded well-formed
// batches, and must accept exactly the canonical encoding.
func FuzzDecodeBatch(f *testing.F) {
	for _, cmds := range [][]string{
		{"a"},
		{"set k v", "get k"},
		{"", "", ""},
	} {
		body, err := EncodeBatch(cmds)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(body)
	}
	f.Add("")
	f.Add(string([]byte{byte(types.KindBatch), 0x81, 0x00, 1, 'a'}))

	f.Fuzz(func(t *testing.T, body string) {
		cmds, err := DecodeBatch(body)
		if err != nil {
			return
		}
		if len(cmds) == 0 || len(cmds) > MaxBatchCommands {
			t.Fatalf("decoder accepted out-of-bounds batch of %d from %q", len(cmds), body)
		}
		re, err := EncodeBatch(cmds)
		if err != nil {
			t.Fatalf("accepted batch failed to re-encode: %v", err)
		}
		if re != body {
			t.Fatalf("encoding not canonical: %q vs %q", re, body)
		}
	})
}

// FuzzDecodeFrag: coded-RBC fragment and checksum frames are fully
// Byzantine-controlled; the decoder must never panic, must enforce every
// fragment invariant (index in range, whole-SumLen checksum vector, bounded
// sizes), and must accept exactly the canonical encoding — a padded-varint
// double of a fragment must not parse.
func FuzzDecodeFrag(f *testing.F) {
	id := types.InstanceID{Sender: 3, Tag: types.Tag{Seq: 1 << 20}}
	sums := string(bytes.Repeat([]byte{0xAB}, 4*SumLen))
	for _, p := range []types.Payload{
		&types.RBCFragPayload{ID: id, Index: 0, TotalLen: 10, Sums: sums, Frag: "frag-zero"},
		&types.RBCFragPayload{ID: id, Index: 3, TotalLen: 0, Sums: sums, Frag: "x"},
		&types.RBCSumPayload{ID: id, Sum: sums[:SumLen]},
	} {
		buf, err := EncodePayload(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	// A truncated frag and a bare kind byte.
	f.Add([]byte{byte(types.KindRBCFrag), 0x02})
	f.Add([]byte{byte(types.KindRBCSum)})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := DecodePayload(data)
		if err != nil {
			return
		}
		switch v := p.(type) {
		case *types.RBCFragPayload:
			shards := len(v.Sums) / SumLen
			if len(v.Sums) == 0 || len(v.Sums)%SumLen != 0 || shards > MaxFragShards ||
				v.Index < 0 || v.Index >= shards ||
				v.TotalLen < 0 || v.TotalLen > MaxBodyLen ||
				len(v.Frag) == 0 || len(v.Frag) > MaxFragLen {
				t.Fatalf("decoder accepted malformed fragment %v from %x", v, data)
			}
		case *types.RBCSumPayload:
			if len(v.Sum) != SumLen {
				t.Fatalf("decoder accepted %d-byte checksum key from %x", len(v.Sum), data)
			}
		default:
			return // other kinds are FuzzDecodePayload's business
		}
		re, err := EncodePayload(p)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("encoding not canonical: %x vs %x", re, data)
		}
		if got := PayloadSize(p); got != len(re) {
			t.Fatalf("PayloadSize = %d, encoder produced %d bytes", got, len(re))
		}
	})
}

// FuzzDecodeMessage: full message frames from the network, seeded with every
// wire kind so the whole Kind dispatch is under fuzz. Three invariants, for
// arbitrary bytes: the decoder never panics; anything accepted re-encodes to
// exactly the input bytes (strict canonical decode — padded varints anywhere
// in the frame, addresses included, must not parse); and MessageSize's pure
// arithmetic matches the real frame length byte for byte.
func FuzzDecodeMessage(f *testing.F) {
	id := types.InstanceID{Sender: 1, Tag: types.Tag{Round: 2, Step: types.Step1, Seq: 3}}
	sums := string(bytes.Repeat([]byte{0xCD}, 2*SumLen))
	for _, p := range []types.Payload{
		&types.RBCPayload{Phase: types.KindRBCSend, ID: id, Body: "send"},
		&types.RBCPayload{Phase: types.KindRBCEcho, ID: id, Body: "echo"},
		&types.RBCPayload{Phase: types.KindRBCReady, ID: id, Body: ""},
		&types.CoinSharePayload{Round: 4, Share: "share", MAC: "mac"},
		&types.DecidePayload{V: types.One, Instance: 7},
		&types.PlainPayload{Round: 3, Step: types.Step3, V: types.Zero, D: true},
		&types.CkptVotePayload{Slot: 5, StateDigest: 0xDEAD, LogDigest: 0xBEEF, MACs: []string{"m0", "m1"}},
		&types.CkptRequestPayload{Slot: 5, Nonce: 99},
		&types.CkptCertPayload{Slot: 5, StateDigest: 1, LogDigest: 2,
			Voters: []types.ProcessID{0, 3}, VoteMACs: [][]string{{"a"}, {"b", "c"}}, Snapshot: "snap"},
		&types.RBCFragPayload{ID: id, Index: 1, TotalLen: 10, Sums: sums, Frag: "fr"},
		&types.RBCSumPayload{ID: id, Sum: sums[:SumLen]},
	} {
		buf, err := EncodeMessage(types.Message{From: 1, To: 2, Payload: p})
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	// A padded From varint (0x81 0x00 encodes the same value as 0x01): the
	// canonical check must reject it even though every field parses.
	if buf, err := EncodeMessage(types.Message{From: 1, To: 2, Payload: &types.DecidePayload{V: types.One}}); err == nil {
		f.Add(append([]byte{0x82, 0x00}, buf[1:]...))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeMessage(data)
		if err != nil {
			return
		}
		re, err := EncodeMessage(m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode not canonical: accepted %x, canonical form is %x", data, re)
		}
		if got := MessageSize(m); got != len(data) {
			t.Fatalf("MessageSize = %d, frame is %d bytes", got, len(data))
		}
	})
}
