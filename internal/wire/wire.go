// Package wire is the hand-rolled binary codec for every protocol payload.
// It serves two needs: the TCP transport frames (internal/transport) and the
// canonical encoding of consensus step messages into reliable-broadcast
// bodies (internal/core), where a compact, deterministic, comparable byte
// string is required.
//
// The format is a one-byte kind discriminator followed by the payload's
// fields as varints (signed fields zig-zag encoded) and length-prefixed byte
// strings. Decoding is strict: unknown kinds, truncated input, invalid enum
// values, and trailing garbage are all errors, so a Byzantine process cannot
// smuggle out-of-model values past the codec.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/types"
)

// Decoding errors.
var (
	ErrTruncated   = errors.New("wire: truncated input")
	ErrUnknownKind = errors.New("wire: unknown payload kind")
	ErrBadValue    = errors.New("wire: field out of range")
	ErrTrailing    = errors.New("wire: trailing bytes after payload")
	ErrTooLarge    = errors.New("wire: length prefix exceeds limit")
)

// MaxBodyLen bounds any length-prefixed field. It caps allocation from
// hostile length prefixes long before io limits would.
const MaxBodyLen = 1 << 20

// EncodePayload serializes any protocol payload.
func EncodePayload(p types.Payload) ([]byte, error) {
	switch v := p.(type) {
	case *types.RBCPayload:
		if v.Phase != types.KindRBCSend && v.Phase != types.KindRBCEcho && v.Phase != types.KindRBCReady {
			return nil, fmt.Errorf("%w: RBC phase %v", ErrBadValue, v.Phase)
		}
		buf := []byte{byte(v.Phase)}
		buf = appendInt(buf, int(v.ID.Sender))
		buf = appendInt(buf, v.ID.Tag.Round)
		buf = appendInt(buf, int(v.ID.Tag.Step))
		buf = appendInt(buf, v.ID.Tag.Seq)
		buf = appendBytes(buf, []byte(v.Body))
		return buf, nil
	case *types.CoinSharePayload:
		buf := []byte{byte(types.KindCoinShare)}
		buf = appendInt(buf, v.Round)
		buf = appendBytes(buf, []byte(v.Share))
		buf = appendBytes(buf, []byte(v.MAC))
		return buf, nil
	case *types.DecidePayload:
		if !v.V.Valid() {
			return nil, fmt.Errorf("%w: decide value %d", ErrBadValue, v.V)
		}
		buf := []byte{byte(types.KindDecide), byte(v.V)}
		return appendInt(buf, v.Instance), nil
	case *types.PlainPayload:
		if !v.V.Valid() {
			return nil, fmt.Errorf("%w: plain value %d", ErrBadValue, v.V)
		}
		buf := []byte{byte(types.KindPlain)}
		buf = appendInt(buf, v.Round)
		buf = appendInt(buf, int(v.Step))
		buf = append(buf, byte(v.V), flags(v.D, v.Q))
		return buf, nil
	case nil:
		return nil, fmt.Errorf("%w: nil payload", ErrBadValue)
	default:
		return nil, fmt.Errorf("%w: %T", ErrUnknownKind, p)
	}
}

// DecodePayload parses a payload produced by EncodePayload. It rejects
// trailing bytes.
func DecodePayload(buf []byte) (types.Payload, error) {
	p, rest, err := decodePayload(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, ErrTrailing
	}
	return p, nil
}

func decodePayload(buf []byte) (types.Payload, []byte, error) {
	if len(buf) == 0 {
		return nil, nil, ErrTruncated
	}
	kind := types.Kind(buf[0])
	buf = buf[1:]
	switch kind {
	case types.KindRBCSend, types.KindRBCEcho, types.KindRBCReady:
		sender, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		round, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		step, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		seq, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		body, buf, err := readBytes(buf)
		if err != nil {
			return nil, nil, err
		}
		p := &types.RBCPayload{
			Phase: kind,
			ID: types.InstanceID{
				Sender: types.ProcessID(sender),
				Tag:    types.Tag{Round: round, Step: types.Step(step), Seq: seq},
			},
			Body: string(body),
		}
		return p, buf, nil
	case types.KindCoinShare:
		round, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		share, buf, err := readBytes(buf)
		if err != nil {
			return nil, nil, err
		}
		mac, buf, err := readBytes(buf)
		if err != nil {
			return nil, nil, err
		}
		return &types.CoinSharePayload{Round: round, Share: string(share), MAC: string(mac)}, buf, nil
	case types.KindDecide:
		if len(buf) < 1 {
			return nil, nil, ErrTruncated
		}
		v := types.Value(buf[0])
		if !v.Valid() {
			return nil, nil, fmt.Errorf("%w: decide value %d", ErrBadValue, v)
		}
		instance, buf, err := readInt(buf[1:])
		if err != nil {
			return nil, nil, err
		}
		return &types.DecidePayload{V: v, Instance: instance}, buf, nil
	case types.KindPlain:
		round, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		step, buf, err := readInt(buf)
		if err != nil {
			return nil, nil, err
		}
		if len(buf) < 2 {
			return nil, nil, ErrTruncated
		}
		v := types.Value(buf[0])
		if !v.Valid() {
			return nil, nil, fmt.Errorf("%w: plain value %d", ErrBadValue, v)
		}
		d, q, err := parseFlags(buf[1])
		if err != nil {
			return nil, nil, err
		}
		p := &types.PlainPayload{Round: round, Step: types.Step(step), V: v, D: d, Q: q}
		return p, buf[2:], nil
	default:
		return nil, nil, fmt.Errorf("%w: %d", ErrUnknownKind, kind)
	}
}

// EncodeMessage serializes a full point-to-point message (for transports).
func EncodeMessage(m types.Message) ([]byte, error) {
	payload, err := EncodePayload(m.Payload)
	if err != nil {
		return nil, err
	}
	buf := appendInt(nil, int(m.From))
	buf = appendInt(buf, int(m.To))
	return append(buf, payload...), nil
}

// DecodeMessage parses a message produced by EncodeMessage.
func DecodeMessage(buf []byte) (types.Message, error) {
	from, buf, err := readInt(buf)
	if err != nil {
		return types.Message{}, err
	}
	to, buf, err := readInt(buf)
	if err != nil {
		return types.Message{}, err
	}
	p, rest, err := decodePayload(buf)
	if err != nil {
		return types.Message{}, err
	}
	if len(rest) != 0 {
		return types.Message{}, ErrTrailing
	}
	return types.Message{From: types.ProcessID(from), To: types.ProcessID(to), Payload: p}, nil
}

// EncodeStep canonically encodes a consensus step message for use as a
// reliable-broadcast body. The encoding is injective, so body equality
// (string comparison in the RBC instance) coincides with logical equality.
func EncodeStep(s types.StepMessage) (string, error) {
	if !s.Step.Valid() {
		return "", fmt.Errorf("%w: step %d", ErrBadValue, s.Step)
	}
	if !s.V.Valid() {
		return "", fmt.Errorf("%w: step value %d", ErrBadValue, s.V)
	}
	if s.Round < 1 {
		return "", fmt.Errorf("%w: round %d", ErrBadValue, s.Round)
	}
	if s.D && s.Step != types.Step3 {
		return "", fmt.Errorf("%w: decision proposal in step %v", ErrBadValue, s.Step)
	}
	buf := appendInt(nil, s.Round)
	buf = append(buf, byte(s.Step), byte(s.V), flags(s.D, false))
	return string(buf), nil
}

// DecodeStep parses an EncodeStep body. Byzantine senders control RBC
// bodies, so all fields are validated.
func DecodeStep(body string) (types.StepMessage, error) {
	round, rest, err := readInt([]byte(body))
	if err != nil {
		return types.StepMessage{}, err
	}
	if len(rest) != 3 {
		return types.StepMessage{}, ErrTruncated
	}
	s := types.StepMessage{Round: round, Step: types.Step(rest[0]), V: types.Value(rest[1])}
	if round < 1 || !s.Step.Valid() || !s.V.Valid() {
		return types.StepMessage{}, fmt.Errorf("%w: step body %q", ErrBadValue, body)
	}
	d, q, err := parseFlags(rest[2])
	if err != nil || q || (d && s.Step != types.Step3) {
		return types.StepMessage{}, fmt.Errorf("%w: step flags %q", ErrBadValue, body)
	}
	s.D = d
	// Canonicality: varints admit padded encodings of the same value, which
	// would let two distinct body strings carry the same logical step and
	// undermine the body-equality reasoning of reliable broadcast. Accept
	// only the exact bytes EncodeStep produces.
	canonical, err := EncodeStep(s)
	if err != nil || canonical != body {
		return types.StepMessage{}, fmt.Errorf("%w: non-canonical step body %q", ErrBadValue, body)
	}
	return s, nil
}

func flags(d, q bool) byte {
	var b byte
	if d {
		b |= 1
	}
	if q {
		b |= 2
	}
	return b
}

func parseFlags(b byte) (d, q bool, err error) {
	if b > 3 {
		return false, false, fmt.Errorf("%w: flags %#x", ErrBadValue, b)
	}
	return b&1 != 0, b&2 != 0, nil
}

func appendInt(buf []byte, v int) []byte {
	return binary.AppendVarint(buf, int64(v))
}

func readInt(buf []byte) (int, []byte, error) {
	v, n := binary.Varint(buf)
	if n <= 0 {
		return 0, nil, ErrTruncated
	}
	return int(v), buf[n:], nil
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func readBytes(buf []byte) ([]byte, []byte, error) {
	l, n := binary.Uvarint(buf)
	if n <= 0 {
		return nil, nil, ErrTruncated
	}
	if l > MaxBodyLen {
		return nil, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, l)
	}
	buf = buf[n:]
	if uint64(len(buf)) < l {
		return nil, nil, ErrTruncated
	}
	out := make([]byte, l)
	copy(out, buf[:l])
	return out, buf[l:], nil
}
